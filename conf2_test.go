package cacheportal

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/balancer"
	"repro/internal/datacache"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/wire"
)

// TestConfigurationIILive assembles the paper's Configuration II with the
// real components: one shared DBMS behind the wire protocol, two app
// servers each with a middle-tier data cache, a load balancer in front —
// and verifies (a) the data caches absorb repeated queries, (b) the
// periodic delta sync propagates out-of-band updates within the interval,
// (c) a client's own writes are visible immediately through its cache.
func TestConfigurationIILive(t *testing.T) {
	// Shared DBMS.
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE items (id INT PRIMARY KEY, name TEXT, price FLOAT);
		INSERT INTO items VALUES (1, 'anvil', 45.0), (2, 'rope', 12.0);
	`); err != nil {
		t.Fatal(err)
	}
	dbSrv := wire.NewServer(db)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()

	// Two app-server "machines", each with its own data cache.
	stop := make(chan struct{})
	defer close(stop)
	var appURLs []string
	var dcaches []*datacache.DataCache
	for i := 0; i < 2; i++ {
		backPool, err := driver.NewPool(driver.NetDriver{}, dbAddr, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer backPool.Close()
		dc := datacache.New(backPool, 0)
		dcaches = append(dcaches, dc)
		logClient, err := wire.Dial(dbAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer logClient.Close()
		dc.StartSyncLoop(wirePuller{logClient}, 20*time.Millisecond, stop)

		pool, err := driver.NewPool(datacache.Driver{Cache: dc}, "", 4)
		if err != nil {
			t.Fatal(err)
		}
		defer pool.Close()
		sources := driver.NewRegistry()
		sources.Bind("db", pool)
		app := appserver.NewServer(sources, appserver.NewRequestLog(0))
		app.MustRegister(appserver.Meta{Name: "item", Keys: appserver.KeySpec{Get: []string{"id"}}},
			appserver.ServletFunc(func(ctx *appserver.Context) (*appserver.Page, error) {
				lease, err := ctx.Lease("db")
				if err != nil {
					return nil, err
				}
				defer lease.Release()
				res, err := lease.Query("SELECT name, price FROM items WHERE id = " + ctx.Param("id"))
				if err != nil {
					return nil, err
				}
				if len(res.Rows) == 0 {
					return &appserver.Page{Body: []byte("gone"), NoCache: true}, nil
				}
				return &appserver.Page{
					Body:    []byte(fmt.Sprintf("%s $%s", res.Rows[0][0], res.Rows[0][1])),
					NoCache: true, // Conf II does not cache pages
				}, nil
			}))
		ts := httptest.NewServer(app)
		defer ts.Close()
		appURLs = append(appURLs, ts.URL)
	}

	lb := httptest.NewServer(balancer.New(appURLs...))
	defer lb.Close()

	get := func() string {
		resp, err := http.Get(lb.URL + "/item?id=1")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	// Warm both data caches through the balancer.
	if got := get(); !strings.Contains(got, "anvil") {
		t.Fatalf("got %q", got)
	}
	get()
	get()
	get()
	hits := dcaches[0].Stats().Hits + dcaches[1].Stats().Hits
	if hits == 0 {
		t.Fatalf("data caches never hit: %+v %+v", dcaches[0].Stats(), dcaches[1].Stats())
	}

	// Out-of-band price change: within a sync interval both caches flush.
	if _, err := db.ExecSQL("UPDATE items SET price = 99.0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		a := get()
		b := get() // round-robin: both app servers
		if strings.Contains(a, "99") && strings.Contains(b, "99") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale data caches: %q %q", a, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	syncs := dcaches[0].Stats().Syncs + dcaches[1].Stats().Syncs
	if syncs == 0 {
		t.Fatal("sync loops never ran")
	}
}

// wirePuller adapts a wire client to the datacache LogPuller interface.
type wirePuller struct{ c *wire.Client }

func (p wirePuller) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	return p.c.LogSince(lsn)
}
