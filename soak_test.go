package cacheportal

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestSoakFeed is the event-driven endurance run: a full site in feed mode
// (hour-long fallback interval, so every eviction is stream-driven) under a
// sustained mixed read/write workload, followed by a goroutine-leak check.
// Gated behind SOAK_FEED=1 because it runs for SOAK_SECONDS (default 30)
// wall-clock seconds; `make soak-feed` runs it under the race detector.
func TestSoakFeed(t *testing.T) {
	if os.Getenv("SOAK_FEED") == "" {
		t.Skip("set SOAK_FEED=1 to run the event-driven soak (make soak-feed)")
	}
	dur := 30 * time.Second
	if v := os.Getenv("SOAK_SECONDS"); v != "" {
		secs, err := strconv.Atoi(v)
		if err != nil || secs <= 0 {
			t.Fatalf("bad SOAK_SECONDS=%q", v)
		}
		dur = time.Duration(secs) * time.Second
	}

	baseline := runtime.NumGoroutine()
	site := feedCarSite(t)
	url := site.CacheURL + "/under?price=20000"

	// Mixed workload until the deadline: fetch (fills the cache and feeds the
	// mapper), then a relevant write (must evict via the stream), then verify
	// the page eventually reflects the write. Every round uses a fresh model
	// name so staleness is detectable by content.
	deadline := time.Now().Add(dur)
	rounds, evictions := 0, 0
	for time.Now().Before(deadline) {
		model := fmt.Sprintf("Soak%d", rounds)
		if body, _, key := fetch(t, url); key != "" && !strings.Contains(body, model) {
			if err := site.Exec(fmt.Sprintf(
				"INSERT INTO Mileage VALUES ('%s', 30)", model)); err != nil {
				t.Fatal(err)
			}
			if err := site.Exec(fmt.Sprintf(
				"INSERT INTO Car VALUES ('Soaker', '%s', 17000)", model)); err != nil {
				t.Fatal(err)
			}
			evictDeadline := time.Now().Add(5 * time.Second)
			for {
				if _, present := site.Cache.Peek(key); !present {
					evictions++
					break
				}
				if time.Now().After(evictDeadline) {
					t.Fatalf("round %d: stream never evicted the stale page", rounds)
				}
				time.Sleep(time.Millisecond)
			}
			if body, _, _ := fetch(t, url); !strings.Contains(body, model) {
				t.Fatalf("round %d: refetched page stale: %q", rounds, body)
			}
		}
		rounds++
	}
	if evictions == 0 {
		t.Fatal("soak made no progress: no stream-driven evictions")
	}

	snap := site.Obs.Snapshot()
	if snap.Counters["invalidator.event_cycles_total"] < int64(evictions) {
		t.Fatalf("event cycles %d < evictions %d", snap.Counters["invalidator.event_cycles_total"], evictions)
	}
	if snap.Gauges["feed.resubscribes_total"] != 0 {
		t.Fatalf("healthy stream resubscribed %d times", snap.Gauges["feed.resubscribes_total"])
	}
	// Real ejects of mapped pages, not instant misses on an uncached page:
	// the freshness trace only records staleness for the former.
	if h := snap.Histograms["invalidator.staleness_seconds"]; h.Count < int64(evictions) {
		t.Fatalf("staleness samples %d < evictions %d (pages not actually cached?)", h.Count, evictions)
	}
	t.Logf("soak: %s, %d rounds, %d stream evictions, %d event cycles",
		dur, rounds, evictions, snap.Counters["invalidator.event_cycles_total"])

	// Leak check: tear the site down and the goroutine count must settle back
	// to the pre-site baseline (pumps, streams, long-poll parks, run loops
	// all exit). Snapshot the stacks on failure so the leak is attributable.
	site.Close()
	settleDeadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(settleDeadline) {
			var sb strings.Builder
			pprof.Lookup("goroutine").WriteTo(&sb, 1)
			t.Fatalf("goroutine leak after Close: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), sb.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}
