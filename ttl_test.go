package cacheportal

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/webcache"
)

// TestTTLBaselineServesStaleWithinWindow demonstrates the freshness gap the
// paper's introduction describes: a time-based cache (Oracle9i-style
// refresh) serves content up to MaxAge stale after an update, while
// CachePortal's invalidation removes exactly the affected page as soon as
// the invalidator observes the update.
func TestTTLBaselineServesStaleWithinWindow(t *testing.T) {
	var version int64 = 1
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cacheportal-Key", "page")
		w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
		fmt.Fprintf(w, "v%d", atomic.LoadInt64(&version))
	}))
	defer origin.Close()

	proxy := webcache.NewProxy(origin.URL, webcache.NewCache(0))
	proxy.MaxAge = 200 * time.Millisecond
	ttl := httptest.NewServer(proxy)
	defer ttl.Close()

	get := func() string {
		resp, err := http.Get(ttl.URL + "/page")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if got := get(); got != "v1" {
		t.Fatalf("first: %q", got)
	}
	// The "database" changes...
	atomic.StoreInt64(&version, 2)
	// ...but within the TTL window the cache still serves v1: STALE.
	if got := get(); got != "v1" {
		t.Fatalf("TTL cache should still serve stale v1, got %q", got)
	}
	// After expiry the fresh version appears (and a page that never
	// changed would have been refetched just the same — wasted work).
	time.Sleep(250 * time.Millisecond)
	if got := get(); got != "v2" {
		t.Fatalf("after TTL: %q", got)
	}
}

// TestCachePortalNoStaleWindowBeyondCycle contrasts: with CachePortal the
// staleness window is bounded by the invalidation cycle, not by a TTL
// guess, and untouched pages are never refetched.
func TestCachePortalNoStaleWindowBeyondCycle(t *testing.T) {
	site := carSite(t)
	urlTouched := site.CacheURL + "/under?price=20000"
	urlUntouched := site.CacheURL + "/under?price=16500"

	fetch := func(url string) (string, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b), resp.Header.Get(webcache.HitHeader)
	}
	fetch(urlTouched)
	fetch(urlUntouched)
	fetch(urlTouched)
	fetch(urlUntouched)

	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	// One synchronous cycle bounds the staleness window.
	site.Portal.Cycle()

	got, state := fetch(urlTouched)
	if state != "miss" || !strings.Contains(got, "Avalon") {
		t.Fatalf("touched page: %s %q", state, got)
	}
	// The untouched page was not refetched: still a hit (no TTL churn).
	if _, state := fetch(urlUntouched); state != "hit" {
		t.Fatalf("untouched page should stay cached, got %s", state)
	}
}
