package cacheportal

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// feedCarSite is carSite with event-driven invalidation and an hour-long
// fallback interval: any freshness the tests observe comes from the update
// stream, not the timer.
func feedCarSite(t testing.TB) *Site {
	t.Helper()
	site, err := NewSite(SiteConfig{
		Schema: `
			CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
			CREATE TABLE Mileage (model TEXT, EPA INT);
			INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000), ('BMW', 'M3', 70000);
			INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31), ('M3', 19), ('Avalon', 26);
		`,
		Servlets: []ServletDef{
			{
				Meta: Meta{Name: "under", Keys: KeySpec{Get: []string{"price"}}},
				Handler: func(ctx *Context) (*Page, error) {
					lease, err := ctx.Lease("db")
					if err != nil {
						return nil, err
					}
					defer lease.Release()
					res, err := lease.Query(
						"SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage " +
							"WHERE Car.model = Mileage.model AND Car.price < " + ctx.Param("price"))
					if err != nil {
						return nil, err
					}
					var b strings.Builder
					for _, r := range res.Rows {
						fmt.Fprintf(&b, "%s\n", r[1])
					}
					return &Page{Body: []byte(b.String())}, nil
				},
			},
		},
		Interval:    time.Hour,
		Feed:        true,
		MinEventGap: 2 * time.Millisecond,
		// The soak's workload invalidates the page on every round, which
		// policy discovery flags as cache-unfriendly after a few batches;
		// an uncached page would turn the stream-eviction assertions into
		// no-ops. Pin it cacheable the way an administrator would (§4.1.3).
		Rules: []Rule{{Servlet: "under", Action: AlwaysCache}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// TestSiteFeedEventDriven is the end-to-end event path: with the fallback
// timer effectively disabled, a backend update must still evict the cached
// page — the update-log stream wakes the portal, whose cycle maps the page
// from the request/query feeds and invalidates it. Nothing calls Cycle.
func TestSiteFeedEventDriven(t *testing.T) {
	site := feedCarSite(t)
	url := site.CacheURL + "/under?price=20000"

	body, _, key := fetch(t, url)
	if key == "" {
		t.Fatal("no cache key")
	}
	if !strings.Contains(body, "Corolla") || strings.Contains(body, "Avalon") {
		t.Fatalf("seed page: %q", body)
	}
	if _, hit, _ := fetch(t, url); hit != "hit" {
		t.Fatalf("second fetch: %s", hit)
	}

	// A relevant update: Avalon joins with Mileage and passes the predicate.
	if err := site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 18000)"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, present := site.Cache.Peek(key); !present {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("event-driven site never evicted the stale page")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if body, _, _ = fetch(t, url); !strings.Contains(body, "Avalon") {
		t.Fatalf("refetched page stale: %q", body)
	}

	// Irrelevant update: the page must stay cached (no spurious ejects from
	// the event path).
	_, _, key = fetch(t, url)
	if err := site.Exec("INSERT INTO Car VALUES ('Audi', 'A8', 90000)"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // give an event cycle time to run
	if _, present := site.Cache.Peek(key); !present {
		t.Fatal("irrelevant update evicted the page")
	}

	// The event machinery must actually have fired.
	snap := site.Obs.Snapshot()
	if snap.Counters["invalidator.event_cycles_total"] == 0 {
		t.Fatal("no event-driven cycles recorded")
	}
}
