// Carsite reproduces the paper's Example 4.1 end-to-end over real TCP and
// HTTP: the Car/Mileage database, a car-search page, and the three
// invalidation outcomes —
//
//  1. an insert that fails the query's local predicate is dismissed
//     without any DBMS work,
//  2. an insert that passes it triggers a polling query against Mileage;
//     a match invalidates the page,
//  3. one that polls empty leaves the page cached.
//
// Run with: go run ./examples/carsite
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"time"

	cacheportal "repro"
	"repro/internal/mem"
)

func main() {
	site, err := cacheportal.NewSite(cacheportal.SiteConfig{
		Schema: `
			CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
			CREATE TABLE Mileage (model TEXT, EPA INT);
			INSERT INTO Car VALUES
				('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000), ('BMW', 'M3', 70000);
			INSERT INTO Mileage VALUES
				('Corolla', 33), ('Civic', 31), ('M3', 19), ('Avalon', 26);
		`,
		Servlets: []cacheportal.ServletDef{{
			Meta: cacheportal.Meta{Name: "search", Keys: cacheportal.KeySpec{Get: []string{"min"}}},
			Handler: func(ctx *cacheportal.Context) (*cacheportal.Page, error) {
				lease, err := ctx.Lease("db")
				if err != nil {
					return nil, err
				}
				defer lease.Release()
				min, err := strconv.ParseFloat(ctx.Param("min"), 64)
				if err != nil {
					return nil, err
				}
				// Example 4.1's Query1 shape: join Car with Mileage,
				// filter by price. Prepared once per lease; the request
				// parameter arrives as a bound argument, not spliced text.
				st, err := lease.Prepare(
					"SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage " +
						"WHERE Car.model = Mileage.model AND Car.price > $1")
				if err != nil {
					return nil, err
				}
				defer st.Close()
				res, err := st.Exec([]mem.Value{mem.Float(min)})
				if err != nil {
					return nil, err
				}
				body := "Cars over $" + ctx.Param("min") + " (with EPA mileage):\n"
				for _, r := range res.Rows {
					body += fmt.Sprintf("  %s %s  $%s  %s mpg\n", r[0], r[1], r[2], r[3])
				}
				return &cacheportal.Page{Body: []byte(body)}, nil
			},
		}},
		Interval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	url := site.CacheURL + "/search?min=20000" // "URL1" of Example 4.1
	var key string
	fetch := func(label string) {
		resp, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		key = resp.Header.Get("X-Cacheportal-Key")
		fmt.Printf("--- %s [%s] ---\n%s\n", label, resp.Header.Get("X-Cacheportal-Cache"), body)
	}

	cached := func() bool {
		_, ok := site.Cache.Peek(key)
		return ok
	}
	settle := func() cacheportal.Report {
		var last cacheportal.Report
		for i := 0; i < 10; i++ {
			rep, err := site.Portal.Cycle()
			if err != nil {
				log.Fatal(err)
			}
			if rep.UpdateRecords > 0 || rep.Invalidated > 0 {
				last = rep
			}
			if rep.UpdateRecords == 0 && rep.Invalidated == 0 {
				break
			}
		}
		return last
	}

	fmt.Println("Example 4.1, live")
	fetch("URL1 generated and cached")

	fmt.Println(">>> INSERT ('Mitsubishi','Eclipse',20000): fails Car.price > 20000 locally")
	site.Exec("INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 20000)")
	rep := settle()
	fmt.Printf("    invalidator: polls=%d invalidated=%d — decided with no DBMS work\n", rep.Polls, rep.Invalidated)
	fmt.Printf("    page still cached: %v\n\n", cached())

	fmt.Println(">>> INSERT ('Dodge','Viper',90000): passes the price check, but no Mileage row")
	site.Exec("INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)")
	rep = settle()
	fmt.Printf("    invalidator: polls=%d invalidated=%d — polling query came back empty\n", rep.Polls, rep.Invalidated)
	fmt.Printf("    page still cached: %v\n\n", cached())

	fmt.Println(">>> INSERT ('Toyota','Avalon',25000): passes the check AND Mileage has 'Avalon'")
	site.Exec("INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
	rep = settle()
	fmt.Printf("    invalidator: polls=%d invalidated=%d — the paper's PollQuery found a match\n", rep.Polls, rep.Invalidated)
	fmt.Printf("    page still cached: %v\n\n", cached())

	fetch("URL1 regenerated — the Avalon appears")

	// Show the registered query type and its statistics.
	for _, qt := range site.Portal.Invalidator.Registry().Types() {
		st := site.Portal.Invalidator.Registry().StatsOf(qt)
		fmt.Printf("query type #%d: %s\n", qt.ID, qt.Key)
		fmt.Printf("  instances=%d polls=%d localDecisions=%d impacts=%d invalidationRatio=%.2f\n",
			st.Instances, st.Polls, st.LocalDecisions, st.Impacts, st.InvalidationRatioEWMA)
	}
}
