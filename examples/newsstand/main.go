// Newsstand runs a busier scenario: a news site with Zipf-skewed page
// popularity under a continuous stream of editorial updates. It drives the
// full stack with the workload generators and reports the cache hit ratio,
// invalidation counts and — crucially — verifies freshness at the end: every
// cached page must equal what the database would produce now.
//
// Run with: go run ./examples/newsstand
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"time"

	cacheportal "repro"
	"repro/internal/workload"
)

const sections = 8

func main() {
	var schema strings.Builder
	schema.WriteString("CREATE TABLE articles (id INT PRIMARY KEY, section INT, title TEXT, clicks INT);\n")
	rng := rand.New(rand.NewSource(7))
	schema.WriteString("INSERT INTO articles VALUES ")
	for i := 0; i < 400; i++ {
		if i > 0 {
			schema.WriteString(", ")
		}
		fmt.Fprintf(&schema, "(%d, %d, 'story %d', %d)", i, i%sections, i, rng.Intn(1000))
	}
	schema.WriteString(";")

	site, err := cacheportal.NewSite(cacheportal.SiteConfig{
		Schema: schema.String(),
		Servlets: []cacheportal.ServletDef{{
			Meta: cacheportal.Meta{Name: "section", Keys: cacheportal.KeySpec{Get: []string{"s"}}},
			Handler: func(ctx *cacheportal.Context) (*cacheportal.Page, error) {
				lease, err := ctx.Lease("db")
				if err != nil {
					return nil, err
				}
				defer lease.Release()
				res, err := lease.Query(
					"SELECT title, clicks FROM articles WHERE section = " + ctx.Param("s") +
						" ORDER BY clicks DESC LIMIT 10")
				if err != nil {
					return nil, err
				}
				var b strings.Builder
				b.WriteString("Top stories, section " + ctx.Param("s") + "\n")
				for _, r := range res.Rows {
					fmt.Fprintf(&b, "  [%s] %s\n", r[1], r[0])
				}
				return &cacheportal.Page{Body: []byte(b.String())}, nil
			},
		}},
		Interval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer site.Close()

	urls := make([]string, sections)
	for s := 0; s < sections; s++ {
		urls[s] = fmt.Sprintf("%s/section?s=%d", site.CacheURL, s)
	}

	fmt.Println("newsstand: 8 section pages, Zipf-skewed readers, continuous editorial updates")

	// Editorial updates: new stories and click-count bumps, concentrated in
	// the popular sections.
	nextID := 1000
	updates := workload.NewUpdateGen(25, 42,
		workload.ExecFunc(site.Exec),
		func(rng *rand.Rand) string {
			section := rng.Intn(3) // the busy sections
			if rng.Intn(3) == 0 {
				nextID++
				return fmt.Sprintf("INSERT INTO articles VALUES (%d, %d, 'breaking %d', %d)",
					nextID, section, nextID, 500+rng.Intn(1000))
			}
			return fmt.Sprintf("UPDATE articles SET clicks = clicks + %d WHERE id = %d",
				rng.Intn(50), rng.Intn(400))
		})

	done := make(chan struct{})
	go func() {
		defer close(done)
		issued, failed := updates.Run(3 * time.Second)
		fmt.Printf("updates: %d issued, %d failed\n", issued, failed)
	}()

	readers := workload.NewRequestGen(120, 9, urls...).WithZipf(1.3)
	stats := readers.Run(3 * time.Second)
	<-done

	cs := site.Cache.Stats()
	fmt.Printf("readers:  %d requests, %d errors\n", stats.Requests(), stats.Errors())
	fmt.Printf("latency:  mean %s, max %s\n", stats.MeanLatency(), stats.MaxLatency())
	fmt.Printf("cache:    hit ratio %.2f, %d invalidations, %d pages resident\n",
		cs.HitRatio(), cs.Invalidations, site.Cache.Len())

	// Freshness audit: quiesce the portal, then compare every page served
	// from the cache with a fresh render.
	for i := 0; i < 20; i++ {
		rep, _ := site.Portal.Cycle()
		if rep.UpdateRecords == 0 && rep.Invalidated == 0 {
			break
		}
	}
	stale := 0
	for _, url := range urls {
		r1, err := http.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		b1, _ := io.ReadAll(r1.Body)
		r1.Body.Close()
		served := string(b1)
		cacheState := r1.Header.Get("X-Cacheportal-Cache")

		// Direct render, bypassing the cache.
		r2, err := http.Get(site.AppURL + strings.TrimPrefix(url, site.CacheURL))
		if err != nil {
			log.Fatal(err)
		}
		b2, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if served != string(b2) {
			stale++
			fmt.Printf("STALE (%s): %s\n", cacheState, url)
		}
	}
	if stale == 0 {
		fmt.Println("freshness audit: all section pages match a direct database render ✓")
	} else {
		log.Fatalf("freshness audit: %d stale pages", stale)
	}
}
