package cacheportal

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/invalidator"
	"repro/internal/logexport"
	"repro/internal/sniffer"
	"repro/internal/webcache"
	"repro/internal/wire"
)

// TestDistributedFigure7Deployment exercises the paper's actual deployment
// topology end-to-end: four separate "machines" — DBMS (wire protocol),
// application server (with HTTP log export), web cache (reverse proxy),
// and the invalidator — communicating only over the network: logs fetched
// over HTTP, the update log pulled over the wire protocol, polling queries
// over the wire protocol, invalidations delivered as HTTP eject requests.
func TestDistributedFigure7Deployment(t *testing.T) {
	// Machine 1: the DBMS.
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
		CREATE TABLE Mileage (model TEXT, EPA INT);
		INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('BMW', 'M3', 70000);
		INSERT INTO Mileage VALUES ('Corolla', 33), ('M3', 19), ('Avalon', 26);
	`); err != nil {
		t.Fatal(err)
	}
	dbSrv := wire.NewServer(db)
	dbAddr, err := dbSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer dbSrv.Close()

	// Machine 2: the application server, logs exported over HTTP.
	qlog := driver.NewQueryLog(0)
	pool, err := driver.NewPool(driver.NewLoggingDriver(driver.NetDriver{}, qlog), dbAddr, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	sources := driver.NewRegistry()
	sources.Bind("db", pool)
	rlog := appserver.NewRequestLog(0)
	app := appserver.NewServer(sources, rlog)
	app.MustRegister(appserver.Meta{Name: "over", Keys: appserver.KeySpec{Get: []string{"min"}}},
		appserver.ServletFunc(func(ctx *appserver.Context) (*appserver.Page, error) {
			lease, err := ctx.Lease("db")
			if err != nil {
				return nil, err
			}
			defer lease.Release()
			res, err := lease.Query(
				"SELECT Car.model, Mileage.EPA FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price > " + ctx.Param("min"))
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			for _, r := range res.Rows {
				fmt.Fprintf(&b, "%s %s\n", r[0], r[1])
			}
			return &appserver.Page{Body: []byte(b.String())}, nil
		}))
	exporter := &logexport.Exporter{Requests: rlog, Queries: qlog}
	appHTTP := httptest.NewServer(exporter.Wrap(app))
	defer appHTTP.Close()

	// Machine 3: the web cache.
	cache := webcache.NewCache(0)
	cacheHTTP := httptest.NewServer(webcache.NewProxy(appHTTP.URL, cache))
	defer cacheHTTP.Close()

	// Machine 4: invalidatord — mirror + mapper + invalidator, all remote.
	mirror := logexport.NewMirror(appHTTP.URL)
	qiMap := sniffer.NewQIURLMap()
	mapper := sniffer.NewMapper(mirror.Requests, mirror.Queries, qiMap)
	logClient, err := wire.Dial(dbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer logClient.Close()
	pollConn, err := driver.NetDriver{}.Connect(dbAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pollConn.Close()
	inv := invalidator.New(invalidator.Config{
		Map:     qiMap,
		Mapper:  mapper,
		Puller:  invalidator.WireLogPuller{Client: logClient},
		Poller:  pollConn,
		Ejector: invalidator.HTTPEjector{CacheURLs: []string{cacheHTTP.URL}},
	})
	cycle := func() invalidator.Report {
		t.Helper()
		if _, err := mirror.Sync(); err != nil {
			t.Fatal(err)
		}
		rep, err := inv.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cycle() // swallow seed-data log records

	get := func() (string, string) {
		resp, err := http.Get(cacheHTTP.URL + "/over?min=20000")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get(webcache.HitHeader)
	}

	b1, h1 := get()
	if h1 != "miss" || !strings.Contains(b1, "M3") {
		t.Fatalf("first: %s %q", h1, b1)
	}
	if _, h := get(); h != "hit" {
		t.Fatalf("second: %s", h)
	}
	cycle() // ingest the mapping

	// Irrelevant insert: fails the price predicate, page stays cached.
	if _, err := db.ExecSQL("INSERT INTO Car VALUES ('Kia', 'Rio', 12000)"); err != nil {
		t.Fatal(err)
	}
	rep := cycle()
	if rep.Invalidated != 0 {
		t.Fatalf("irrelevant insert invalidated: %+v", rep)
	}
	if _, h := get(); h != "hit" {
		t.Fatalf("after irrelevant insert: %s", h)
	}

	// Relevant insert: poll over the wire finds Avalon's mileage row, the
	// HTTP eject lands on the cache machine.
	if _, err := db.ExecSQL("INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)"); err != nil {
		t.Fatal(err)
	}
	rep = cycle()
	if rep.Invalidated != 1 || rep.Polls != 1 {
		t.Fatalf("relevant insert: %+v", rep)
	}
	b3, h3 := get()
	if h3 != "miss" || !strings.Contains(b3, "Avalon") {
		t.Fatalf("after invalidation: %s %q", h3, b3)
	}
}

// TestDistributedMultipleCaches verifies the invalidator fans ejects out to
// several caches (front-end + edge caches in the paper's Figure 1).
func TestDistributedMultipleCaches(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Cacheportal-Key", "k1")
		w.Header().Set("Cache-Control", `private, owner="cacheportal"`)
		fmt.Fprint(w, "content")
	}))
	defer origin.Close()

	var caches []*webcache.Cache
	var urls []string
	for i := 0; i < 3; i++ {
		c := webcache.NewCache(0)
		caches = append(caches, c)
		srv := httptest.NewServer(webcache.NewProxy(origin.URL, c))
		defer srv.Close()
		urls = append(urls, srv.URL)
		// Warm each cache.
		resp, err := http.Get(srv.URL + "/page")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for i, c := range caches {
		if c.Len() != 1 {
			t.Fatalf("cache %d not warmed", i)
		}
	}

	ej := invalidator.HTTPEjector{CacheURLs: urls}
	if err := ej.Eject([]string{"k1"}); err != nil {
		t.Fatal(err)
	}
	for i, c := range caches {
		if c.Len() != 0 {
			t.Fatalf("cache %d not ejected", i)
		}
	}

	// Partial failure: one dead cache produces an error but the rest still
	// get the eject.
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()
	for _, u := range urls {
		resp, _ := http.Get(u + "/page")
		if resp != nil {
			resp.Body.Close()
		}
	}
	ej = invalidator.HTTPEjector{CacheURLs: append([]string{dead.URL}, urls...)}
	if err := ej.Eject([]string{"k1"}); err == nil {
		t.Fatal("want error from dead cache")
	}
	for i, c := range caches {
		if c.Len() != 0 {
			t.Fatalf("cache %d missed eject despite dead peer", i)
		}
	}
}

// TestSiteInterval confirms the Portal honours the configured cadence and
// MinSensitivity feedback.
func TestSiteInterval(t *testing.T) {
	site := carSite(t)
	if site.Portal.Interval() != 50*time.Millisecond {
		t.Fatalf("interval: %v", site.Portal.Interval())
	}
	if site.App.MinSensitivity != 50*time.Millisecond {
		t.Fatalf("min sensitivity: %v", site.App.MinSensitivity)
	}
}
