package cacheportal

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/demoapp"
	"repro/internal/webcache"
)

// demoSite builds the §5.2.1 evaluation application — the three page
// servlets plus the personalized "home" servlet — as a full site, in
// whole-page or fragment mode.
func demoSite(t testing.TB, fragments bool) *Site {
	t.Helper()
	defs := append(demoapp.Servlets("db"), demoapp.PersonalizedServlets("db")...)
	servlets := make([]ServletDef, 0, len(defs))
	for _, d := range defs {
		servlets = append(servlets, ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := NewSite(SiteConfig{
		Schema:    demoapp.SchemaSQL(100, 400, 1), // smaller tables keep the test quick
		Servlets:  servlets,
		Fragments: fragments,
		Interval:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

// fetchAs GETs url with a session cookie and returns body + hit header.
func fetchAs(t testing.TB, url, session string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if session != "" {
		req.AddCookie(&http.Cookie{Name: demoapp.SessionCookie, Value: session})
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get(webcache.HitHeader)
}

// TestFragmentEquivalence is the fragment refactor's core property: for
// every demoapp servlet, the page assembled from independently cached
// fragments is byte-identical to the whole page the unfragmented pipeline
// serves — across users, categories, update rounds, and concurrency
// levels. The page-mode site doubles as the Fragments=false regression:
// its behavior must match today's whole-page pipeline exactly.
func TestFragmentEquivalence(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			fragSite := demoSite(t, true)
			pageSite := demoSite(t, false)
			rng := rand.New(rand.NewSource(int64(workers)))
			nextStmt := demoapp.UpdateStatement()

			rounds := 3
			perWorker := 12
			if testing.Short() {
				rounds, perWorker = 2, 6
			}
			for round := 0; round < rounds; round++ {
				if round > 0 {
					// Identical backend updates on both sites, then one
					// synchronous cycle each so both caches have ejected
					// every impacted entry before requests resume.
					for i := 0; i < 3; i++ {
						stmt := nextStmt(rng)
						if err := fragSite.Exec(stmt); err != nil {
							t.Fatal(err)
						}
						if err := pageSite.Exec(stmt); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := fragSite.Portal.Cycle(); err != nil {
						t.Fatal(err)
					}
					if _, err := pageSite.Portal.Cycle(); err != nil {
						t.Fatal(err)
					}
				}
				var wg sync.WaitGroup
				errs := make(chan string, workers)
				for w := 0; w < workers; w++ {
					seed := int64(round*100 + w)
					wg.Add(1)
					go func() {
						defer wg.Done()
						wrng := rand.New(rand.NewSource(seed))
						for i := 0; i < perWorker; i++ {
							servlet := []string{"light", "medium", "heavy", "home"}[wrng.Intn(4)]
							cat := wrng.Intn(demoapp.JoinValues)
							user := ""
							if servlet == "home" {
								user = fmt.Sprintf("u%d", wrng.Intn(3))
							}
							path := fmt.Sprintf("/%s?cat=%d", servlet, cat)
							want, _ := fetchAs(t, pageSite.CacheURL+path, user)
							got, _ := fetchAs(t, fragSite.CacheURL+path, user)
							if got != want {
								errs <- fmt.Sprintf("%s user=%q: fragment site served %q, page site %q", path, user, got, want)
								return
							}
						}
					}()
				}
				wg.Wait()
				close(errs)
				for e := range errs {
					t.Fatal(e)
				}
			}
		})
	}
}

// TestFragmentInvalidationPrecision checks that a single-category row
// update ejects exactly the impacted shared listing fragments: other
// categories' listings, every per-session trim, and the assembly template
// survive.
func TestFragmentInvalidationPrecision(t *testing.T) {
	site := demoSite(t, true)

	// Populate: two users on cat=3, one on cat=4.
	fetchAs(t, site.CacheURL+"/home?cat=3", "u1")
	fetchAs(t, site.CacheURL+"/home?cat=3", "u2")
	fetchAs(t, site.CacheURL+"/home?cat=4", "u1")
	// A couple of cycles so every fragment's mapping is registered before
	// the update lands.
	if _, err := site.Portal.Cycle(); err != nil {
		t.Fatal(err)
	}

	find := func(substrs ...string) []string {
		var out []string
		for _, k := range site.Cache.Keys() {
			all := true
			for _, s := range substrs {
				if !strings.Contains(k, s) {
					all = false
					break
				}
			}
			if all {
				out = append(out, k)
			}
		}
		return out
	}
	listing3 := find("g:cat=3", "!frag=listing")
	if len(listing3) != 1 {
		t.Fatalf("listing fragment for cat=3: %v (keys %v)", listing3, site.Cache.Keys())
	}

	if err := site.Exec(demoapp.ListingUpdateStatement(30_000_000, 3)); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(listing3[0], 5*time.Second) {
		t.Fatalf("cat=3 listing fragment %q not ejected", listing3[0])
	}

	if got := find("g:cat=4", "!frag=listing"); len(got) != 1 {
		t.Fatalf("cat=4 listing should survive, cache keys: %v", site.Cache.Keys())
	}
	if got := find("!frag=trim"); len(got) != 3 {
		t.Fatalf("all 3 per-session trims should survive, got %v", got)
	}
	if got := find("!tmpl"); len(got) != 2 {
		t.Fatalf("both templates should survive, got %v", got)
	}

	// A returning cat=3 user reassembles with a fresh listing but the
	// cached trim and template: a partial, not a full page rebuild.
	body, hit := fetchAs(t, site.CacheURL+"/home?cat=3", "u1")
	if hit != "partial" {
		t.Fatalf("after precise eject: %s, want partial", hit)
	}
	if !strings.Contains(body, "hello u1") {
		t.Fatalf("trim lost: %q", body)
	}
	if !strings.Contains(body, "f30000000") {
		t.Fatalf("listing not refreshed: %q", body)
	}
}

// TestFragmentHitRatioBeatsPageMode measures the headline win: with
// per-user personalization, fragment-level caching turns most of every
// page into shared hits, while whole-page caching misses once per
// (user, category) pair.
func TestFragmentHitRatioBeatsPageMode(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement test")
	}
	fragSite := demoSite(t, true)
	pageSite := demoSite(t, false)

	run := func(site *Site) float64 {
		site.Cache.ResetStats()
		for i := 0; i < 120; i++ {
			user := fmt.Sprintf("u%d", i%12)
			cat := (i / 2) % 5
			fetchAs(t, fmt.Sprintf("%s/home?cat=%d", site.CacheURL, cat), user)
		}
		return site.Cache.Stats().HitRatio()
	}
	frag := run(fragSite)
	page := run(pageSite)
	t.Logf("hit ratio: fragment=%.3f page=%.3f", frag, page)
	if frag <= page {
		t.Fatalf("fragment-mode hit ratio %.3f should exceed page-mode %.3f", frag, page)
	}
}
