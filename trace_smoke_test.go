package cacheportal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/invalidator"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/trace"
	"repro/internal/webcache"
)

// TestTraceSmoke is the Figure-7 smoke test for end-to-end tracing: a feed-
// mode site with every trace sampled, a handful of commit→evict rounds, and
// the assertion that each committed update produced a complete span chain —
// engine.commit root, feed.deliver wire hop, the invalidator's phase spans,
// and a terminal webcache.eject whose parent chain walks back to the commit.
// `make trace-smoke` runs exactly this test.
func TestTraceSmoke(t *testing.T) {
	tracer := trace.New(1, 8192) // sample everything
	site, err := NewSite(SiteConfig{
		Schema: `
			CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
			CREATE TABLE Mileage (model TEXT, EPA INT);
			INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('BMW', 'M3', 70000);
			INSERT INTO Mileage VALUES ('Corolla', 33), ('M3', 19);
		`,
		Servlets: []ServletDef{demoServletUnder()},
		Interval: 50 * time.Millisecond,
		Feed:     true,
		Rules:    []Rule{{Servlet: "under", Action: AlwaysCache}},
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer site.Close()

	const rounds = 5
	url := site.CacheURL + "/under?price=20000"
	for i := 0; i < rounds; i++ {
		_, _, key := fetch(t, url)
		if key == "" {
			t.Fatalf("round %d: no cache key", i)
		}
		if err := site.Exec(fmt.Sprintf(
			"INSERT INTO Car VALUES ('Smoke%d', 'Corolla', 17000)", i)); err != nil {
			t.Fatal(err)
		}
		if !site.WaitForInvalidation(key, 10*time.Second) {
			t.Fatalf("round %d: page %s never invalidated", i, key)
		}
	}

	complete := 0
	for _, sum := range tracer.Traces() {
		if !sum.Complete {
			continue
		}
		complete++
		spans := tracer.TraceSpans(sum.Trace)
		byID := make(map[int64]trace.Span, len(spans))
		names := make(map[string]int, len(spans))
		var terminal trace.Span
		for _, s := range spans {
			byID[s.ID] = s
			names[s.Name]++
			if s.Terminal {
				terminal = s
			}
		}
		for _, want := range []string{
			"engine.commit", "feed.deliver",
			"invalidator.pull", "invalidator.analyze", "invalidator.eject",
			"webcache.eject",
		} {
			if names[want] == 0 {
				t.Fatalf("trace %d: no %s span (spans: %v)", sum.Trace, want, names)
			}
		}
		// The terminal eject's parent chain must reach the commit root.
		seen := 0
		s := terminal
		for s.Parent != 0 {
			parent, ok := byID[s.Parent]
			if !ok {
				t.Fatalf("trace %d: span %s has dangling parent %d", sum.Trace, s.Name, s.Parent)
			}
			s = parent
			if seen++; seen > len(spans) {
				t.Fatalf("trace %d: parent cycle", sum.Trace)
			}
		}
		if s.Name != "engine.commit" {
			t.Fatalf("trace %d: terminal chain roots at %q, want engine.commit", sum.Trace, s.Name)
		}
	}
	// Every round committed one update, so at least that many traces must
	// have run root-to-eject. (Warm-up fetches may have produced more.)
	if complete < rounds {
		t.Fatalf("%d complete traces, want >= %d", complete, rounds)
	}

	// The /debug/trace surface over the same tracer: list, slow filter, and
	// by-id lookup must all serve the traces just recorded.
	ts := httptest.NewServer(trace.Handler(site.Tracer))
	defer ts.Close()
	var list struct {
		Stats  trace.Stats     `json:"stats"`
		Traces []trace.Summary `json:"traces"`
	}
	getJSON(t, ts.URL+"/?min_ms=0", &list)
	if len(list.Traces) == 0 || list.Stats.Recorded == 0 {
		t.Fatalf("/debug/trace served nothing: %+v", list)
	}
	var one struct {
		Trace int64        `json:"trace"`
		Spans []trace.Span `json:"spans"`
	}
	getJSON(t, fmt.Sprintf("%s/?trace=%d", ts.URL, list.Traces[0].Trace), &one)
	if one.Trace != list.Traces[0].Trace || len(one.Spans) == 0 {
		t.Fatalf("trace lookup: %+v", one)
	}
}

// demoServletUnder is the join servlet the staleness benchmark uses, shared
// here so the smoke test exercises the same analyze/poll path.
func demoServletUnder() ServletDef {
	return ServletDef{
		Meta: Meta{Name: "under", Keys: KeySpec{Get: []string{"price"}}},
		Handler: func(ctx *Context) (*Page, error) {
			lease, err := ctx.Lease("db")
			if err != nil {
				return nil, err
			}
			defer lease.Release()
			res, err := lease.Query(
				"SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage " +
					"WHERE Car.model = Mileage.model AND Car.price < " + ctx.Param("price"))
			if err != nil {
				return nil, err
			}
			body := ""
			for _, r := range res.Rows {
				body += fmt.Sprint(r[1]) + "\n"
			}
			return &Page{Body: []byte(body)}, nil
		},
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestTraceChaosExemplar drives the forced-sample hook with scripted chaos:
// head sampling is set so high that no trace would normally record, then an
// ejector that fails three consecutive cycles pushes one page through
// retry → retry → circuit breaker → bulk flush. The eject failure must
// force-sample the page's trace, so the staleness histogram's worst
// exemplar points at a trace whose spans tell the whole outlier story —
// the retries and the breaker — even though the commit-time decision was
// "skip".
func TestTraceChaosExemplar(t *testing.T) {
	tracer := trace.New(1<<30, 4096) // nothing head-sampled: only Force records
	reg := obs.NewRegistry()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(
		"CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);"); err != nil {
		t.Fatal(err)
	}
	db.SetTracer(tracer)

	cache := webcache.NewCache(0)
	cache.Put(&webcache.Entry{Key: "k"})
	inj := faults.New(faults.Config{Seed: 1})
	inj.Disable() // scripted faults only
	m := sniffer.NewQIURLMap()
	inv := invalidator.New(invalidator.Config{
		Map:    m,
		Puller: invalidator.EngineLogPuller{Log: db.Log()},
		Ejector: faults.Ejector{
			Next: invalidator.CacheEjector{Cache: cache, Tracer: tracer},
			Inj:  inj,
		},
		Obs:    reg,
		Tracer: tracer,
	})
	m.Record("k", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM Car WHERE price < 15500"}})
	if _, err := inv.Cycle(); err != nil { // ingest the mapping
		t.Fatal(err)
	}

	// The stale-making commit. Its trace is allocated but not sampled.
	if _, err := db.ExecSQL("INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000)"); err != nil {
		t.Fatal(err)
	}
	for cycle := 1; cycle <= invalidator.DefaultBreakerThreshold; cycle++ {
		inj.FailNext(faults.Error)
		rep, err := inv.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.EjectErr == nil {
			t.Fatalf("cycle %d: scripted eject fault did not fire", cycle)
		}
	}
	// Breaker tripped on the last cycle and the (unscripted) bulk flush
	// landed: the page is finished and its staleness sample recorded.
	if cache.Len() != 0 {
		t.Fatal("breaker did not flush the cache")
	}
	if got := reg.Counter("invalidator.breaker_trips_total").Value(); got != 1 {
		t.Fatalf("breaker_trips_total = %d, want 1", got)
	}
	if tracer.Stats().Forced == 0 {
		t.Fatal("eject failure did not force-sample the trace")
	}

	ex := reg.Histogram("invalidator.staleness_seconds").Snapshot().WorstExemplar()
	if ex.Trace == 0 {
		t.Fatal("staleness histogram kept no traced exemplar")
	}
	spans := tracer.TraceSpans(ex.Trace)
	names := make(map[string]int, len(spans))
	for _, s := range spans {
		names[s.Name]++
	}
	if names["invalidator.retry"] < 2 {
		t.Fatalf("exemplar trace: %d retry spans, want >= 2 (spans: %v)", names["invalidator.retry"], names)
	}
	if names["invalidator.breaker"] != 1 {
		t.Fatalf("exemplar trace: %d breaker spans, want 1 (spans: %v)", names["invalidator.breaker"], names)
	}
	if names["webcache.flush"] != 1 {
		t.Fatalf("exemplar trace: no terminal flush span (spans: %v)", names)
	}
	// The head decision really was "skip": the commit span was never
	// recorded, only the post-failure spans — exactly the forced-sample
	// contract.
	if names["engine.commit"] != 0 {
		t.Fatalf("head-sampled-out trace has a commit span (spans: %v)", names)
	}
}
