package cacheportal

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/appserver"
	"repro/internal/balancer"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/invalidator"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/webcache"
	"repro/internal/wire"
)

// ServletDef pairs a servlet's registration metadata with its handler.
type ServletDef struct {
	Meta    Meta
	Handler ServletFunc
}

// ClusterConfig configures the distributed web-cache tier: N cache nodes
// with consistent-hash key placement, a ConsistentHash front balancer
// routing by the same projection, invalidation delivered over a
// cursor-resumable eject stream (or routed HTTP pushes), and optionally a
// shard manager replicating hot slots at runtime. The zero value (or
// CacheNodes <= 1) keeps the single-cache topology byte-identical to
// before.
type ClusterConfig struct {
	// CacheNodes is how many webcache nodes to run (<= 1 = single cache,
	// no cluster machinery at all).
	CacheNodes int
	// Slots is the hash-ring slot count (cluster.DefaultSlots when 0).
	Slots int
	// HotReplicas caps extra owners the shard manager may add per slot
	// (default 1). Only meaningful with Manager.
	HotReplicas int
	// Manager runs the adaptive shard manager: it probes each node's
	// per-slot load at /debug/cluster and adds/drops hot-slot replicas.
	Manager bool
	// ManagerInterval is the manager's probe cadence (default 250ms).
	ManagerInterval time.Duration
	// HotFactor overrides the manager's hot-slot threshold (default 4×
	// the mean slot load).
	HotFactor float64
	// MinLoad overrides the manager's per-round request floor below which
	// a slot is never replicated (default 16).
	MinLoad int64
	// PushEjects delivers invalidations as routed per-cache HTTP pushes
	// (HTTPEjector + shard-map router) instead of the default eject
	// stream. The stream is the resilient choice — a node that drops and
	// rejoins resumes from its cursor — pushes are the A/B comparison.
	PushEjects bool
	// EjectRetain bounds the eject stream's retention in records
	// (cluster.DefaultEjectRetain when 0). A consumer that falls further
	// behind than this sees the truncation signal and clears its cache.
	EjectRetain int
	// FrontPolicy selects how the front balancer routes requests to the
	// cache nodes: "hash" (default, empty) sends each key straight to an
	// owner; "rr" round-robins across all nodes — the topology where
	// clients reach arbitrary edge caches and non-owners pay the one-hop
	// forward that hot-slot replication then amortizes.
	FrontPolicy string
}

// SiteConfig describes a complete single-process Configuration III site.
type SiteConfig struct {
	// Schema is a SQL script creating and seeding the database (required).
	Schema string
	// Servlets are the application (required, at least one).
	Servlets []ServletDef
	// CacheCapacity bounds the web cache (0 = unbounded).
	CacheCapacity int
	// PoolSize is each app server's DB connection pool (default 8).
	PoolSize int
	// WebServers is how many app-server instances to run behind a
	// round-robin balancer (default 1; >1 adds the paper's LocalDirector
	// tier in front of the farm).
	WebServers int
	// Interval is the CachePortal cycle cadence (default 200ms; the paper
	// used 1s).
	Interval time.Duration
	// Feed switches the site to event-driven invalidation: the portal
	// subscribes to the DB server's update-log stream (wire.LogFeed) and
	// cycles as soon as records arrive, the mapper consumes the request and
	// query logs as feed subscriptions, and Interval degrades to the
	// fallback cadence. Invalidation outcomes are identical to polling;
	// commit-to-eject staleness drops from O(Interval) to O(MinEventGap +
	// cycle time).
	Feed bool
	// FeedBuffer bounds the feed buffering (update-log stream and mapper
	// subscriptions; package defaults when 0).
	FeedBuffer int
	// MinEventGap is the burst-coalescing window of event-driven cycles
	// (invalidator.DefaultMinEventGap when 0). Only used with Feed.
	MinEventGap time.Duration
	// PollBudget bounds per-cycle polling time (0 = unbounded).
	PollBudget time.Duration
	// Workers bounds the invalidator's evaluation parallelism (0 =
	// GOMAXPROCS, 1 = sequential).
	Workers int
	// PollConns is how many DB connections the invalidator polls over
	// (default 1; >1 lets concurrent workers poll in parallel).
	PollConns int
	// Fragments enables fragment-level caching and edge assembly: the app
	// servers answer composite-negotiated requests with fragment pieces,
	// the proxy stores each fragment under its own key and assembles pages
	// at the edge, and the invalidator (key-agnostic) ejects individual
	// fragments. Off, everything runs at whole-page granularity exactly as
	// before.
	Fragments bool
	// CookieAllow is the proxy's per-servlet cookie allowlist for cache
	// keys (webcache.Proxy.CookieAllow). Only meaningful on the proxy tier;
	// servlets' own KeySpec cookie lists are unaffected.
	CookieAllow map[string][]string
	// Rules are administrator invalidation policies.
	Rules []Rule
	// SourceName is the data source name servlets use (default "db").
	SourceName string
	// DisablePredIndex turns off the invalidator's predicate index and
	// restores the per-instance registry scan (identical invalidation
	// outcomes; A/B measurement and escape hatch).
	DisablePredIndex bool
	// DisableWireBinary keeps every wire connection (app-server pools, the
	// invalidator's poll connections, the update-log stream) on JSON
	// framing instead of the negotiated binary codec. Identical behavior;
	// A/B measurement and escape hatch.
	DisableWireBinary bool
	// AutoIndex lets the database create hash and ordered indexes from the
	// WHERE shapes of interned query templates, so the invalidator's
	// polling queries probe instead of scanning.
	AutoIndex bool
	// Cluster configures the distributed web-cache tier (zero = off).
	Cluster ClusterConfig
	// Obs receives metrics from every tier (cache, sniffer, invalidator,
	// freshness trace). Nil allocates a registry; reach it via Site.Obs.
	Obs *obs.Registry
	// Chaos, when set, injects faults on the invalidation path: the
	// update-log puller and the cache ejector are wrapped with the
	// injector's decorators, and the injector's counters are registered
	// with the site's Obs registry. The fault model is crash/omission
	// (delay, error, drop, black-hole) — never corrupted data — so the
	// site must stay correct, just slower to converge.
	Chaos *faults.Injector
	// Tracer, when set, threads end-to-end pipeline tracing through every
	// hop: commits stamp trace contexts into the update log
	// (engine.commit), the feed advances them across the wire
	// (feed.deliver), the invalidator records the cycle phases and the
	// eject closes the trace in the cache (webcache.eject). nil = tracing
	// off; the commit path then pays one atomic load.
	Tracer *trace.Tracer
}

// Site is a running Configuration III deployment: DBMS over TCP, servlet
// container behind a caching reverse proxy, and a CachePortal keeping the
// cache fresh. Use CacheURL as the end-user entry point.
type Site struct {
	DB       *engine.Database
	DBServer *wire.Server
	DBAddr   string

	QueryLog   *QueryLog
	RequestLog *RequestLog

	// App is the first (or only) app server; Apps lists all of them.
	App  *appserver.Server
	Apps []*appserver.Server
	// AppURL is the origin the cache forwards to: the single app server,
	// or the balancer when WebServers > 1. AppURLs lists each server.
	AppURL  string
	AppURLs []string
	// Cache/Proxy are the first (or only) cache node; with a cluster,
	// Caches/Proxies/CacheURLs list every node. CacheURL stays the one
	// end-user entry point (the front balancer when clustered).
	Cache     *webcache.Cache
	Proxy     *webcache.Proxy
	CacheURL  string
	Caches    []*webcache.Cache
	Proxies   []*webcache.Proxy
	CacheURLs []string
	// ClusterView is the placement map shared by the front balancer, the
	// eject router and the shard manager (nil when not clustered).
	ClusterView *cluster.View
	// EjectLog is the invalidation stream the cache nodes consume
	// (nil in single-node or push-eject mode); EjectStreamURL is its
	// HTTP endpoint.
	EjectLog       *cluster.EjectLog
	EjectStreamURL string
	// Manager is the running shard manager (nil unless Cluster.Manager).
	Manager *cluster.Manager

	Portal *Portal
	// Obs is the site-wide metrics registry (SiteConfig.Obs or the one
	// allocated by NewSite). Serve it with obs.MetricsHandler, or snapshot
	// it directly.
	Obs *obs.Registry
	// Tracer is the pipeline tracer from SiteConfig (nil when tracing is
	// off). Serve it with trace.Handler, or read Traces() directly.
	Tracer *trace.Tracer

	feed      *wire.LogFeed
	appHTTP   []*http.Server
	proxyHTTP *http.Server
	appLn     []net.Listener
	proxyLn   net.Listener
	lbHTTP    *http.Server
	lbLn      net.Listener
	appLB     *balancer.Balancer
	pools     []*driver.Pool
	pollConn  driver.Conn
	pollConns []driver.Conn

	cacheHTTP   []*http.Server
	cacheLB     *balancer.Balancer
	cacheLBHTTP *http.Server
	streamHTTP  *http.Server
	consumers   []*ejectConsumer
	managerStop chan struct{}
}

// ejectConsumer pairs a cache node's stream consumer with its lifecycle
// channels, so tests can drop and rejoin a node.
type ejectConsumer struct {
	c    *cluster.Consumer
	stop chan struct{}
	done chan struct{}
}

// NewSite assembles and starts a Site.
func NewSite(cfg SiteConfig) (*Site, error) {
	if cfg.Schema == "" {
		return nil, fmt.Errorf("cacheportal: SiteConfig.Schema is required")
	}
	if len(cfg.Servlets) == 0 {
		return nil, fmt.Errorf("cacheportal: at least one servlet is required")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 8
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.SourceName == "" {
		cfg.SourceName = "db"
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}

	s := &Site{Obs: cfg.Obs, Tracer: cfg.Tracer}
	ok := false
	defer func() {
		if !ok {
			s.Close()
		}
	}()

	// Database server. The tracer attaches after the schema script runs so
	// seed records don't open traces nobody will ever finish.
	s.DB = engine.NewDatabase()
	s.DB.SetAutoIndex(cfg.AutoIndex)
	if _, err := s.DB.ExecScript(cfg.Schema); err != nil {
		return nil, fmt.Errorf("cacheportal: schema: %w", err)
	}
	s.DB.SetTracer(cfg.Tracer)
	s.DBServer = wire.NewServer(s.DB)
	s.DBServer.Instrument(cfg.Obs, "dbserver")
	addr, err := s.DBServer.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s.DBAddr = addr

	// Application server farm with logging driver + pool + data source.
	// All servers share the two logs, so the sniffer sees the whole farm.
	s.QueryLog = driver.NewQueryLog(0)
	s.RequestLog = appserver.NewRequestLog(0)
	netDriver := driver.NetDriver{DisableBinary: cfg.DisableWireBinary}
	logged := driver.NewLoggingDriver(netDriver, s.QueryLog)
	nServers := cfg.WebServers
	if nServers < 1 {
		nServers = 1
	}
	for i := 0; i < nServers; i++ {
		pool, err := driver.NewPool(logged, addr, cfg.PoolSize)
		if err != nil {
			return nil, err
		}
		s.pools = append(s.pools, pool)
		reg := driver.NewRegistry()
		reg.Bind(cfg.SourceName, pool)
		app := appserver.NewServer(reg, s.RequestLog)
		app.Fragments = cfg.Fragments
		app.MinSensitivity = cfg.Interval
		if cfg.Feed {
			// Event-driven invalidation bounds staleness by the coalescing
			// window plus cycle time, not the fallback interval, so
			// temporally sensitive servlets stay cacheable.
			app.MinSensitivity = cfg.MinEventGap
			if app.MinSensitivity <= 0 {
				app.MinSensitivity = invalidator.DefaultMinEventGap
			}
		}
		for _, def := range cfg.Servlets {
			if err := app.Register(def.Meta, def.Handler); err != nil {
				return nil, err
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: app}
		go hs.Serve(ln)
		s.Apps = append(s.Apps, app)
		s.appHTTP = append(s.appHTTP, hs)
		s.appLn = append(s.appLn, ln)
		s.AppURLs = append(s.AppURLs, "http://"+ln.Addr().String())
	}
	s.App = s.Apps[0]
	s.AppURL = s.AppURLs[0]
	if nServers > 1 {
		s.appLB = balancer.New(s.AppURLs...)
		s.lbLn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		s.lbHTTP = &http.Server{Handler: s.appLB}
		go s.lbHTTP.Serve(s.lbLn)
		s.AppURL = "http://" + s.lbLn.Addr().String()
	}

	// Caching reverse proxy tier (the dynamic web content cache): a single
	// proxy, or — with Cluster.CacheNodes > 1 — a consistent-hash cluster
	// of them behind a hash-routing front balancer.
	if cfg.Cluster.CacheNodes > 1 {
		if err := s.buildCacheCluster(cfg); err != nil {
			return nil, err
		}
	} else {
		s.Cache = webcache.NewCache(cfg.CacheCapacity)
		s.Cache.Instrument(cfg.Obs, "webcache")
		s.Proxy = webcache.NewProxy(s.AppURL, s.Cache)
		s.Proxy.Tracer = cfg.Tracer
		s.Proxy.Fragments = cfg.Fragments
		s.Proxy.CookieAllow = cfg.CookieAllow
		s.proxyLn, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		s.proxyHTTP = &http.Server{Handler: s.Proxy}
		go s.proxyHTTP.Serve(s.proxyLn)
		s.CacheURL = "http://" + s.proxyLn.Addr().String()
	}

	// CachePortal: reads the update log over the wire — streamed when
	// cfg.Feed, polled otherwise — polls via its own connection, ejects
	// directly into the cache.
	var logClient *wire.Client
	var notifier invalidator.LogNotifier
	var puller invalidator.LogPuller
	if cfg.Feed {
		feedClient, err := wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		feedClient.Binary = !cfg.DisableWireBinary
		s.feed = wire.NewLogFeed(feedClient, 1, cfg.FeedBuffer)
		s.feed.Instrument(cfg.Obs, "feed")
		s.feed.SetTracer(cfg.Tracer)
		puller = s.feed
		notifier = s.feed
	} else {
		logClient, err = wire.Dial(addr)
		if err != nil {
			return nil, err
		}
		logClient.Binary = !cfg.DisableWireBinary
		puller = invalidator.WireLogPuller{Client: logClient}
	}
	closeLog := func() {
		if logClient != nil {
			logClient.Close()
		}
	}
	s.pollConn, err = netDriver.Connect(addr)
	if err != nil {
		closeLog()
		return nil, err
	}
	poller := invalidator.Poller(s.pollConn)
	if cfg.PollConns > 1 {
		conns := []invalidator.Poller{s.pollConn}
		for i := 1; i < cfg.PollConns; i++ {
			c, err := netDriver.Connect(addr)
			if err != nil {
				closeLog()
				return nil, err
			}
			s.pollConns = append(s.pollConns, c)
			conns = append(conns, c)
		}
		poller = invalidator.NewConcurrentPoller(conns...)
	}
	var ejector invalidator.Ejector
	switch {
	case s.EjectLog != nil:
		// Cluster, stream mode: the portal appends to the eject log and
		// every cache node's consumer applies it from its own cursor.
		ejector = cluster.StreamEjector{Log: s.EjectLog}
	case len(s.Caches) > 1:
		// Cluster, push mode: routed HTTP ejects, each key only to the
		// nodes the shard map says may hold it.
		ejector = invalidator.HTTPEjector{
			CacheURLs: s.CacheURLs,
			Router:    cluster.Router{View: s.ClusterView},
			Obs:       cfg.Obs,
		}
	default:
		ejector = invalidator.CacheEjector{Cache: s.Cache, Tracer: cfg.Tracer}
	}
	if cfg.Chaos != nil {
		cfg.Chaos.Instrument(cfg.Obs, "")
		puller = faults.Puller{Next: puller, Inj: cfg.Chaos}
		ejector = faults.Ejector{Next: ejector, Inj: cfg.Chaos}
	}
	portal, err := core.New(core.Options{
		RequestLog:  s.RequestLog,
		QueryLog:    s.QueryLog,
		Puller:      puller,
		Poller:      poller,
		Ejector:     ejector,
		Interval:    cfg.Interval,
		PollBudget:  cfg.PollBudget,
		Workers:     cfg.Workers,
		Rules:       cfg.Rules,
		Obs:         cfg.Obs,
		EventDriven: cfg.Feed,
		Notifier:    notifier,
		MinEventGap: cfg.MinEventGap,
		UseFeeds:    cfg.Feed,
		FeedBuffer:  cfg.FeedBuffer,
		Tracer:      cfg.Tracer,

		DisablePredIndex: cfg.DisablePredIndex,
	})
	if err != nil {
		closeLog()
		return nil, err
	}
	s.Portal = portal
	for _, app := range s.Apps {
		app.Cacheable = portal.CacheableServlet
	}
	// In feed mode, wait for the stream to catch up with the schema-seeding
	// records before the swallow cycle below, so they are actually in the
	// feed's buffer to be skipped.
	if s.feed != nil {
		head := s.DB.Log().NextLSN()
		deadline := time.Now().Add(5 * time.Second)
		for s.feed.Next() < head && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	// Let the portal skip the schema-seeding log records so the cache
	// doesn't churn on startup. Under chaos the skip cycle itself may be
	// faulted; that only means the seed records are processed later, so it
	// is not fatal.
	if _, err := portal.Cycle(); err != nil && cfg.Chaos == nil {
		return nil, err
	}
	if err := portal.Start(); err != nil {
		return nil, err
	}

	ok = true
	return s, nil
}

// buildCacheCluster assembles the distributed cache tier: CacheNodes
// proxies (each a ClusterNode over its own shard of the hash ring, with
// node-ID-prefixed metrics so multi-node scrapes don't collide), a
// ConsistentHash front balancer as the one CacheURL entry point, the eject
// stream server plus one resuming consumer per node (unless PushEjects),
// and — when asked — the shard manager probing /debug/cluster.
func (s *Site) buildCacheCluster(cfg SiteConfig) error {
	n := cfg.Cluster.CacheNodes
	nodes := make([]cluster.NodeInfo, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		lns[i] = ln
		nodes[i] = cluster.NodeInfo{ID: fmt.Sprintf("node%d", i), URL: "http://" + ln.Addr().String()}
	}
	initial := cluster.NewMap(cfg.Cluster.Slots, nodes)
	// The control view (balancer, eject router, manager) and each node's
	// own view start from the same map; manager publishes reach the nodes
	// through their /debug/cluster endpoints, exactly as across machines.
	s.ClusterView = cluster.NewView(initial)
	for i := 0; i < n; i++ {
		cache := webcache.NewCache(cfg.CacheCapacity)
		cache.Instrument(cfg.Obs, "webcache."+nodes[i].ID)
		node := webcache.NewClusterNode(nodes[i].ID, cluster.NewView(initial), cache)
		node.Instrument(cfg.Obs, "cluster."+nodes[i].ID)
		proxy := webcache.NewProxy(s.AppURL, cache)
		proxy.Tracer = cfg.Tracer
		proxy.Fragments = cfg.Fragments
		proxy.CookieAllow = cfg.CookieAllow
		proxy.Cluster = node
		hs := &http.Server{Handler: proxy}
		go hs.Serve(lns[i])
		s.Caches = append(s.Caches, cache)
		s.Proxies = append(s.Proxies, proxy)
		s.cacheHTTP = append(s.cacheHTTP, hs)
		s.CacheURLs = append(s.CacheURLs, nodes[i].URL)
	}
	s.Cache, s.Proxy = s.Caches[0], s.Proxies[0]

	s.cacheLB = balancer.New(s.CacheURLs...)
	switch cfg.Cluster.FrontPolicy {
	case "", "hash":
		s.cacheLB.Policy = balancer.ConsistentHash
		s.cacheLB.View = s.ClusterView
	case "rr":
		s.cacheLB.Policy = balancer.RoundRobin
	default:
		return fmt.Errorf("cluster: unknown FrontPolicy %q (want \"hash\" or \"rr\")", cfg.Cluster.FrontPolicy)
	}
	lbLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.cacheLBHTTP = &http.Server{Handler: s.cacheLB}
	go s.cacheLBHTTP.Serve(lbLn)
	s.CacheURL = "http://" + lbLn.Addr().String()

	if !cfg.Cluster.PushEjects {
		s.EjectLog = cluster.NewEjectLog(cfg.Cluster.EjectRetain)
		mux := http.NewServeMux()
		mux.Handle("/ejects", s.EjectLog.Handler())
		streamLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		s.streamHTTP = &http.Server{Handler: mux}
		go s.streamHTTP.Serve(streamLn)
		s.EjectStreamURL = "http://" + streamLn.Addr().String() + "/ejects"
		for i := 0; i < n; i++ {
			cache := s.Caches[i]
			s.consumers = append(s.consumers, &ejectConsumer{c: &cluster.Consumer{
				URL:   s.EjectStreamURL,
				Apply: func(keys []string) { cache.InvalidateMany(keys) },
				Clear: cache.Clear,
				Wait:  time.Second,
			}})
			s.ResumeEjectConsumer(i)
		}
	}

	if cfg.Cluster.Manager {
		probes := make([]cluster.Probe, n)
		for i := range probes {
			probes[i] = cluster.HTTPProbe{URL: s.CacheURLs[i]}
		}
		s.Manager = &cluster.Manager{
			View:        s.ClusterView,
			Probes:      probes,
			MaxReplicas: cfg.Cluster.HotReplicas,
			HotFactor:   cfg.Cluster.HotFactor,
			MinLoad:     cfg.Cluster.MinLoad,
			Obs:         cfg.Obs,
		}
		interval := cfg.Cluster.ManagerInterval
		if interval <= 0 {
			interval = 250 * time.Millisecond
		}
		s.managerStop = make(chan struct{})
		go s.Manager.Run(interval, s.managerStop)
	}
	return nil
}

// StopEjectConsumer stops cache node i's eject-stream consumer — the test
// hook for "a replica dropped off the invalidation feed". The node keeps
// serving whatever it has; its cursor is preserved for the rejoin.
func (s *Site) StopEjectConsumer(i int) {
	if i < 0 || i >= len(s.consumers) {
		return
	}
	ec := s.consumers[i]
	if ec.stop == nil {
		return
	}
	close(ec.stop)
	<-ec.done
	ec.stop, ec.done = nil, nil
}

// ResumeEjectConsumer (re)starts node i's consumer from its saved cursor —
// the rejoin path: it catches up on every eject it missed, or clears the
// node's cache if the stream truncated past its cursor.
func (s *Site) ResumeEjectConsumer(i int) {
	if i < 0 || i >= len(s.consumers) {
		return
	}
	ec := s.consumers[i]
	if ec.stop != nil {
		return
	}
	ec.stop, ec.done = make(chan struct{}), make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ec.c.Run(stop)
	}(ec.stop, ec.done)
}

// EjectConsumerCursor returns node i's stream resume cursor.
func (s *Site) EjectConsumerCursor(i int) int64 {
	if i < 0 || i >= len(s.consumers) {
		return 0
	}
	return s.consumers[i].c.Cursor()
}

// EjectStreamLag reports how many stream records the slowest running
// consumer still has to apply (0 when not in stream mode; stopped
// consumers don't count — they are lagging on purpose).
func (s *Site) EjectStreamLag() int64 {
	if s.EjectLog == nil {
		return 0
	}
	head := s.EjectLog.NextSeq()
	var lag int64
	for _, ec := range s.consumers {
		if ec.stop == nil {
			continue
		}
		if d := head - ec.c.Cursor(); d > lag {
			lag = d
		}
	}
	return lag
}

// WaitEjectStream blocks until every running consumer has applied the
// whole eject log (or the timeout passes), reporting success. The
// convergence barrier cluster tests quiesce on.
func (s *Site) WaitEjectStream(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.EjectStreamLag() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// allCaches lists every cache node (the single cache when not clustered).
func (s *Site) allCaches() []*webcache.Cache {
	if len(s.Caches) > 0 {
		return s.Caches
	}
	return []*webcache.Cache{s.Cache}
}

// Close shuts every component down. Safe on partially built sites.
func (s *Site) Close() {
	if s.Portal != nil {
		s.Portal.Close()
	}
	if s.managerStop != nil {
		close(s.managerStop)
		s.managerStop = nil
	}
	for i := range s.consumers {
		s.StopEjectConsumer(i)
	}
	if s.feed != nil {
		s.feed.Close()
	}
	if s.proxyHTTP != nil {
		s.proxyHTTP.Close()
	}
	if s.streamHTTP != nil {
		s.streamHTTP.Close()
	}
	if s.cacheLB != nil {
		s.cacheLB.Close()
	}
	if s.cacheLBHTTP != nil {
		s.cacheLBHTTP.Close()
	}
	for _, hs := range s.cacheHTTP {
		hs.Close()
	}
	if s.appLB != nil {
		s.appLB.Close()
	}
	if s.lbHTTP != nil {
		s.lbHTTP.Close()
	}
	for _, hs := range s.appHTTP {
		hs.Close()
	}
	for _, p := range s.pools {
		p.Close()
	}
	if s.pollConn != nil {
		s.pollConn.Close()
	}
	for _, c := range s.pollConns {
		c.Close()
	}
	if s.DBServer != nil {
		s.DBServer.Close()
	}
}

// Exec runs a backend update against the database (the paper's "Upd"
// arrow: changes arriving outside the web path).
func (s *Site) Exec(sql string) error {
	_, err := s.DB.ExecSQL(sql)
	return err
}

// WaitForInvalidation runs portal cycles until the page with the given
// cache key is gone from the cache or the timeout elapses. It returns
// whether the page was invalidated. Intended for tests and demos; the
// background loop does the same work on its own cadence.
func (s *Site) WaitForInvalidation(cacheKey string, timeout time.Duration) bool {
	gone := func() bool {
		for _, c := range s.allCaches() {
			if _, present := c.Peek(cacheKey); present {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if gone() {
			return true
		}
		s.Portal.Cycle()
		time.Sleep(5 * time.Millisecond)
	}
	return gone()
}
