package cacheportal

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// farmSite builds a Configuration III site with a 3-server web farm behind
// the balancer.
func farmSite(t testing.TB) *Site {
	t.Helper()
	site, err := NewSite(SiteConfig{
		Schema: `
			CREATE TABLE stock (sym TEXT, qty INT);
			INSERT INTO stock VALUES ('AAA', 100), ('BBB', 5), ('CCC', 40);
		`,
		Servlets: []ServletDef{{
			Meta: Meta{Name: "low", Keys: KeySpec{Get: []string{"below"}}},
			Handler: func(ctx *Context) (*Page, error) {
				lease, err := ctx.Lease("db")
				if err != nil {
					return nil, err
				}
				defer lease.Release()
				res, err := lease.Query("SELECT sym, qty FROM stock WHERE qty < " + ctx.Param("below"))
				if err != nil {
					return nil, err
				}
				var b strings.Builder
				for _, r := range res.Rows {
					fmt.Fprintf(&b, "%s:%s\n", r[0], r[1])
				}
				return &Page{Body: []byte(b.String())}, nil
			},
		}},
		WebServers: 3,
		Interval:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(site.Close)
	return site
}

func TestFarmServesThroughBalancer(t *testing.T) {
	site := farmSite(t)
	if len(site.Apps) != 3 || len(site.AppURLs) != 3 {
		t.Fatalf("farm size: %d", len(site.Apps))
	}
	url := site.CacheURL + "/low?below=50"

	// Concurrent misses across distinct pages spread over the farm.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/low?below=%d", site.CacheURL, 10+i))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	// Every app server saw some share of the load.
	total := int64(0)
	for i, app := range site.Apps {
		st, ok := app.StatsFor("low")
		if !ok {
			t.Fatalf("app %d has no stats", i)
		}
		if st.Requests == 0 {
			t.Fatalf("app %d got no requests (balancer not spreading)", i)
		}
		total += st.Requests
	}
	if total != 12 {
		t.Fatalf("farm served %d requests", total)
	}

	// Invalidation still works across the farm: any server may regenerate.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	key := resp.Header.Get("X-Cacheportal-Key")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err := site.Exec("UPDATE stock SET qty = 3 WHERE sym = 'AAA'"); err != nil {
		t.Fatal(err)
	}
	if !site.WaitForInvalidation(key, 5*time.Second) {
		t.Fatal("farm page not invalidated")
	}
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "AAA:3") {
		t.Fatalf("stale after farm invalidation: %q", body)
	}
}

// TestFarmMapperAttribution checks the sniffer maps correctly when several
// farm servers interleave requests on the shared logs (lease affinity must
// disambiguate).
func TestFarmMapperAttribution(t *testing.T) {
	site := farmSite(t)
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/low?below=%d", site.CacheURL, 100+i))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(i)
	}
	wg.Wait()
	site.Portal.Cycle()

	// Every mapped page must carry exactly one query, with the matching
	// bound literal — interval overlap across the farm must not leak
	// queries between pages.
	pages, _ := site.Portal.Map.Snapshot()
	if len(pages) != 30 {
		t.Fatalf("mapped %d pages", len(pages))
	}
	for _, pm := range pages {
		if len(pm.Queries) != 1 {
			t.Fatalf("page %s has %d queries: %+v", pm.CacheKey, len(pm.Queries), pm.Queries)
		}
		// The bound literal in the SQL must match the page key's parameter.
		var below int
		if _, err := fmt.Sscanf(pm.CacheKey[strings.Index(pm.CacheKey, "below=")+6:], "%d", &below); err != nil {
			t.Fatalf("key %q: %v", pm.CacheKey, err)
		}
		if !strings.Contains(pm.Queries[0].SQL, fmt.Sprintf("qty < %d", below)) {
			t.Fatalf("page %s mapped to wrong query %q", pm.CacheKey, pm.Queries[0].SQL)
		}
	}
}
