package cacheportal

import (
	"fmt"
	"testing"

	"repro/internal/fragment"
)

// BenchmarkFragmentAssembly measures the edge-assembly cost itself: the
// marker scan + splice a proxy pays on every fragment-mode hit, without any
// HTTP or cache machinery around it.
func BenchmarkFragmentAssembly(b *testing.B) {
	for _, nFrags := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("fragments=%d", nFrags), func(b *testing.B) {
			tmpl := []byte("<html><body>")
			bodies := make(map[string][]byte, nFrags)
			for i := 0; i < nFrags; i++ {
				name := fmt.Sprintf("frag%d", i)
				tmpl = append(tmpl, []byte("<div>"+fragment.Marker(name)+"</div>")...)
				body := make([]byte, 1024)
				for j := range body {
					body[j] = byte('a' + (i+j)%26)
				}
				bodies[name] = body
			}
			tmpl = append(tmpl, []byte("</body></html>")...)
			lookup := func(name string) ([]byte, bool) {
				bb, ok := bodies[name]
				return bb, ok
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fragment.Assemble(tmpl, lookup); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(tmpl) + nFrags*1024))
		})
	}
}

// BenchmarkFragmentHitRatio drives the personalized "home" page on a full
// site — 12 users across 5 categories — in fragment and whole-page mode,
// and reports the cache's measured hit ratio for each. Fragment mode turns
// the shared header/listing into cross-user hits, so its ratio must come
// out above page mode's (asserted functionally by
// TestFragmentHitRatioBeatsPageMode; here the numbers are recorded for
// BENCH_invalidator.json).
func BenchmarkFragmentHitRatio(b *testing.B) {
	for _, mode := range []struct {
		name string
		frag bool
	}{{"fragment", true}, {"page", false}} {
		b.Run(mode.name, func(b *testing.B) {
			site := demoSite(b, mode.frag)
			b.ResetTimer()
			// Each iteration is one cold-start sweep over the whole
			// population, so the reported ratio is independent of b.N.
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				site.Cache.Clear()
				site.Cache.ResetStats()
				b.StartTimer()
				for i := 0; i < 120; i++ {
					user := fmt.Sprintf("u%d", i%12)
					cat := (i / 2) % 5
					fetchAs(b, fmt.Sprintf("%s/home?cat=%d", site.CacheURL, cat), user)
				}
			}
			b.ReportMetric(site.Cache.Stats().HitRatio(), "hit-ratio")
		})
	}
}
