// Command dbserver runs the reproduction's in-memory DBMS as a standalone
// server speaking the wire protocol (the Oracle box of the paper's
// figures). Clients connect with internal/driver's NetDriver; the
// invalidator pulls its update log with the logsince operation.
//
// Usage:
//
//	dbserver -listen :7000 -init schema.sql
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/engine"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to listen on")
	initFile := flag.String("init", "", "SQL script to execute at startup")
	initSQL := flag.String("exec", "", "SQL script text to execute at startup")
	flag.Parse()

	db := engine.NewDatabase()
	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("dbserver: %v", err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			log.Fatalf("dbserver: init script: %v", err)
		}
	}
	if *initSQL != "" {
		if _, err := db.ExecScript(*initSQL); err != nil {
			log.Fatalf("dbserver: exec: %v", err)
		}
	}

	srv := wire.NewServer(db)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("dbserver: %v", err)
	}
	fmt.Printf("dbserver listening on %s (tables: %v)\n", addr, db.TableNames())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("dbserver: served %d queries, shutting down\n", srv.Queries())
	srv.Close()
}
