// Command dbserver runs the reproduction's in-memory DBMS as a standalone
// server speaking the wire protocol (the Oracle box of the paper's
// figures). Clients connect with internal/driver's NetDriver; the
// invalidator pulls its update log with the logsince operation.
//
// Usage:
//
//	dbserver -listen :7000 -init schema.sql
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to listen on")
	initFile := flag.String("init", "", "SQL script to execute at startup")
	initSQL := flag.String("exec", "", "SQL script text to execute at startup")
	debugAddr := flag.String("debug-addr", "127.0.0.1:7001", "address for /debug/metrics and /debug/vars (empty = off)")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/ on the debug address")
	obsLog := flag.Duration("obs-log", 0, "log a metrics snapshot at this interval (0 = never)")
	stmtCache := flag.Int("stmt-cache-size", 0, "prepared-statement cache capacity (0 = default)")
	feedHeartbeat := flag.Duration("feed-heartbeat", 0, "idle heartbeat interval on update-log subscriptions (0 = default)")
	wireBinary := flag.Bool("wire-binary", true, "accept the binary wire framing when clients offer it (false = JSON only, as a pre-binary server)")
	autoIndex := flag.Bool("auto-index", true, "create hash/ordered indexes from the WHERE shapes of prepared query templates")
	traceOn := flag.Bool("trace", false, "stamp pipeline-trace contexts into committed update records; serves /debug/trace")
	traceSample := flag.Int("trace-sample", trace.DefaultSample, "head-sample every Nth trace (<=1 = all)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultBuffer, "span ring-buffer capacity")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceSample, *traceBuffer)
	}

	db := engine.NewDatabase()
	db.SetAutoIndex(*autoIndex)
	if *stmtCache > 0 {
		db.SetStmtCacheCapacity(*stmtCache)
	}
	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			log.Fatalf("dbserver: %v", err)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			log.Fatalf("dbserver: init script: %v", err)
		}
	}
	if *initSQL != "" {
		if _, err := db.ExecScript(*initSQL); err != nil {
			log.Fatalf("dbserver: exec: %v", err)
		}
	}
	// Attach after the init scripts so seed rows don't open traces.
	db.SetTracer(tracer)

	srv := wire.NewServer(db)
	srv.DisableBinary = !*wireBinary
	if *feedHeartbeat > 0 {
		srv.HeartbeatInterval = *feedHeartbeat
	}
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("dbserver: %v", err)
	}
	fmt.Printf("dbserver listening on %s (tables: %v)\n", addr, db.TableNames())

	reg := obs.NewRegistry()
	reg.RuntimeMetrics()
	srv.Instrument(reg, "dbserver")
	if *debugAddr != "" {
		dbg := obs.ServeWith(*debugAddr, reg, *withPprof, func(err error) {
			log.Printf("dbserver: debug server: %v", err)
		}, func(mux *http.ServeMux) {
			mux.Handle("/debug/trace", trace.Handler(tracer))
		})
		defer dbg.Close()
		fmt.Printf("dbserver: debug endpoints on http://%s/debug/metrics\n", *debugAddr)
	}
	if *obsLog > 0 {
		go obs.LogLoop(reg, *obsLog, log.Printf, make(chan struct{}))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("dbserver: served %d queries, shutting down\n", srv.Queries())
	srv.Close()
}
