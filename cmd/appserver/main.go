// Command appserver runs the demo application's servlet container (the
// BEA WebLogic box of the paper's figures) against a dbserver, with the
// request logger and the JDBC-wrapper query logger in place.
//
// Usage:
//
//	appserver -listen :8080 -db 127.0.0.1:7000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/appserver"
	"repro/internal/demoapp"
	"repro/internal/driver"
	"repro/internal/logexport"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP address to listen on")
	dbAddr := flag.String("db", "127.0.0.1:7000", "dbserver address")
	pool := flag.Int("pool", 8, "database connection pool size")
	debugAddr := flag.String("debug-addr", "127.0.0.1:8081", "address for /debug/metrics and /debug/vars (empty = off)")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/ on the debug address")
	obsLog := flag.Duration("obs-log", 0, "log a metrics snapshot at this interval (0 = never)")
	longpollMax := flag.Duration("longpoll-max", 0, "cap on log-export long-poll waits (0 = default)")
	fragments := flag.Bool("fragments", false, "fragment mode: answer composite-negotiated requests with fragment pieces the cache can store and assemble independently")
	wireBinary := flag.Bool("wire-binary", true, "offer the binary wire framing on DB connections (an old server declines harmlessly; false = JSON only)")
	traceOn := flag.Bool("trace", false, "serve /debug/trace (the app server originates no pipeline spans; the endpoint keeps the debug surface uniform)")
	traceSample := flag.Int("trace-sample", trace.DefaultSample, "head-sample every Nth trace (<=1 = all)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultBuffer, "span ring-buffer capacity")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceSample, *traceBuffer)
	}

	qlog := driver.NewQueryLog(0)
	logged := driver.NewLoggingDriver(driver.NetDriver{DisableBinary: !*wireBinary}, qlog)
	p, err := driver.NewPool(logged, *dbAddr, *pool)
	if err != nil {
		log.Fatalf("appserver: %v", err)
	}
	reg := driver.NewRegistry()
	reg.Bind("db", p)

	rlog := appserver.NewRequestLog(0)
	srv := appserver.NewServer(reg, rlog)
	srv.Fragments = *fragments
	for _, def := range demoapp.Servlets("db") {
		srv.MustRegister(def.Meta, def.Handler)
	}
	for _, def := range demoapp.PersonalizedServlets("db") {
		srv.MustRegister(def.Meta, def.Handler)
	}

	// Export the request and query logs so a remote invalidatord can fetch
	// them (the paper's Figure 7 deployment).
	exporter := &logexport.Exporter{Requests: rlog, Queries: qlog, MaxWait: *longpollMax}

	oreg := obs.NewRegistry()
	oreg.RuntimeMetrics()
	handler := obs.HTTPMiddleware(oreg, "appserver", exporter.Wrap(srv))
	if *debugAddr != "" {
		dbg := obs.ServeWith(*debugAddr, oreg, *withPprof, func(err error) {
			log.Printf("appserver: debug server: %v", err)
		}, func(mux *http.ServeMux) {
			mux.Handle("/debug/trace", trace.Handler(tracer))
		})
		defer dbg.Close()
		fmt.Printf("appserver: debug endpoints on http://%s/debug/metrics\n", *debugAddr)
	}
	if *obsLog > 0 {
		go obs.LogLoop(oreg, *obsLog, log.Printf, make(chan struct{}))
	}

	fmt.Printf("appserver on %s (db %s): /light /medium /heavy ?cat=0..9\n", *listen, *dbAddr)
	fmt.Printf("log export under %s/logs/{requests,queries}\n", logexport.DefaultPathPrefix)
	log.Fatal(http.ListenAndServe(*listen, handler))
}
