// Command invalidatord is CachePortal deployed as the paper's Figure 7
// prescribes: a standalone process on its own machine that (a) fetches the
// HTTP-request and query logs from the application server at regular
// intervals, (b) pulls the database update log over the wire protocol,
// (c) runs the sniffer's request-to-query mapper and the invalidator's
// analysis/polling pipeline, and (d) sends `Cache-Control: eject` requests
// to the web caches.
//
// Usage (with dbserver, appserver and webcached already running):
//
//	invalidatord -app http://127.0.0.1:8080 -db 127.0.0.1:7000 \
//	             -cache http://127.0.0.1:8090 -interval 1s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/driver"
	"repro/internal/invalidator"
	"repro/internal/logexport"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/trace"
	"repro/internal/wire"
)

func main() {
	appURL := flag.String("app", "http://127.0.0.1:8080", "application server base URL (log export)")
	dbAddr := flag.String("db", "127.0.0.1:7000", "dbserver address (update log + polling)")
	caches := flag.String("cache", "http://127.0.0.1:8090", "comma-separated web cache URLs to eject from")
	interval := flag.Duration("interval", time.Second, "invalidation cycle interval")
	pollBudget := flag.Duration("poll-budget", 0, "max polling time per cycle (0 = unbounded)")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	pollConns := flag.Int("poll-conns", 1, "DB connections for polling queries (>1 polls in parallel)")
	ejectBatch := flag.Int("eject-batch", 0, "keys per batched eject request (0 = default)")
	dbTimeout := flag.Duration("db-timeout", 0, "per-roundtrip deadline on the update-log connection (0 = default 10s, <0 = none)")
	httpTimeout := flag.Duration("http-timeout", 0, "request timeout for log fetch and ejects (0 = default 10s)")
	feed := flag.Bool("feed", false, "event-driven mode: subscribe to the update-log stream and long-poll the app-server logs; -interval becomes the fallback cadence")
	feedBuffer := flag.Int("feed-buffer", 0, "update-log stream buffer in records (0 = default)")
	minEventGap := flag.Duration("min-event-gap", 0, "burst-coalescing window for event-driven cycles (0 = default)")
	predIdx := flag.Bool("pred-index", true, "probe the predicate index for candidate query instances instead of scanning the registry (same invalidations either way)")
	fragments := flag.Bool("fragments", false, "annotate cycle logs with the fragment-vs-page eject split (the eject machinery itself is key-agnostic; pair with -fragments on webcached and appserver)")
	peers := flag.String("peers", "", "cache cluster membership as 'id=url,id=url'; ejects are routed to each key's shard owners instead of every cache (empty = fan out to -cache)")
	slots := flag.Int("slots", 0, "consistent-hash ring slots (0 = default; must match the webcached cluster)")
	ejectStreamOn := flag.Bool("eject-stream", false, "serve the cursor-addressed eject stream at /ejects on the debug address instead of pushing ejects to the caches; webcacheds consume it with -eject-stream")
	ejectRetain := flag.Int("eject-retain", 0, "eject-stream retention in records (0 = default)")
	clusterManage := flag.Bool("cluster-manage", false, "run the adaptive shard manager: probe the peers' /debug/cluster gauges and add/drop hot-shard replicas (requires -peers)")
	manageInterval := flag.Duration("manage-interval", time.Second, "shard-manager probe cadence")
	wireBinary := flag.Bool("wire-binary", true, "offer the binary wire framing on DB connections (an old server declines harmlessly; false = JSON only)")
	verbose := flag.Bool("v", false, "log every cycle")
	debugAddr := flag.String("debug-addr", "127.0.0.1:8071", "address for /debug/metrics and /debug/vars (empty = off)")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/ on the debug address")
	obsLog := flag.Duration("obs-log", 0, "log a metrics snapshot at this interval (0 = never)")
	traceOn := flag.Bool("trace", false, "record pipeline spans for sampled update records and forward contexts to the caches; serves /debug/trace")
	traceSample := flag.Int("trace-sample", trace.DefaultSample, "head-sample every Nth trace (<=1 = all; match the dbserver's setting)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultBuffer, "span ring-buffer capacity")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceSample, *traceBuffer)
	}

	logClient, err := wire.Dial(*dbAddr)
	if err != nil {
		log.Fatalf("invalidatord: update log: %v", err)
	}
	defer logClient.Close()
	logClient.Timeout = *dbTimeout
	logClient.Binary = *wireBinary
	var puller invalidator.LogPuller = invalidator.WireLogPuller{Client: logClient}
	var notifier invalidator.LogNotifier
	var logFeed *wire.LogFeed
	if *feed {
		// The stream needs its own dedicated connection; logClient stays
		// unused in feed mode but keeps the flag wiring uniform.
		feedClient, err := wire.Dial(*dbAddr)
		if err != nil {
			log.Fatalf("invalidatord: update log stream: %v", err)
		}
		feedClient.Timeout = *dbTimeout
		feedClient.Binary = *wireBinary
		logFeed = wire.NewLogFeed(feedClient, 1, *feedBuffer)
		defer logFeed.Close()
		logFeed.SetTracer(tracer)
		puller = logFeed
		notifier = logFeed
	}
	var httpClient *http.Client // nil = shared default with timeouts
	if *httpTimeout > 0 {
		httpClient = &http.Client{Timeout: *httpTimeout}
	}
	if *pollConns < 1 {
		*pollConns = 1
	}
	conns := make([]invalidator.Poller, 0, *pollConns)
	for i := 0; i < *pollConns; i++ {
		c, err := driver.NetDriver{DisableBinary: !*wireBinary}.Connect(*dbAddr)
		if err != nil {
			log.Fatalf("invalidatord: polling connection: %v", err)
		}
		defer c.Close()
		conns = append(conns, c)
	}
	reg := obs.NewRegistry()
	reg.RuntimeMetrics()
	if logFeed != nil {
		logFeed.Instrument(reg, "feed")
	}
	var poller invalidator.Poller = conns[0]
	if len(conns) > 1 {
		cp := invalidator.NewConcurrentPoller(conns...)
		cp.Instrument(reg, "poller")
		poller = cp
	}

	mirror := logexport.NewMirror(*appURL)
	mirror.Client = httpClient
	qiMap := sniffer.NewQIURLMap()
	mapper := sniffer.NewMapper(mirror.Requests, mirror.Queries, qiMap)
	mapper.Obs = reg

	// Cluster-aware ejection: with -peers the shard map narrows each key's
	// fan-out to its owners; with -eject-stream the ejects are appended to a
	// cursor-addressed log the caches pull instead of being pushed at all.
	cacheURLs := strings.Split(*caches, ",")
	var view *cluster.View
	if *peers != "" {
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("invalidatord: -peers: %v", err)
		}
		view = cluster.NewView(cluster.NewMap(*slots, nodes))
		// The peer list names the cache nodes; it supersedes -cache so the
		// router's owner URLs and the fallback full fan-out list agree.
		cacheURLs = make([]string, len(nodes))
		for i, n := range nodes {
			cacheURLs[i] = n.URL
		}
	}
	var ejectLog *cluster.EjectLog
	var ejector invalidator.Ejector
	if *ejectStreamOn {
		ejectLog = cluster.NewEjectLog(*ejectRetain)
		ejector = cluster.StreamEjector{Log: ejectLog}
	} else {
		he := invalidator.HTTPEjector{
			CacheURLs: cacheURLs,
			Client:    httpClient,
			MaxBatch:  *ejectBatch,
			Obs:       reg,
		}
		if view != nil {
			he.Router = cluster.Router{View: view}
		}
		ejector = he
	}

	inv := invalidator.New(invalidator.Config{
		Map:        qiMap,
		Mapper:     mapper,
		Puller:     puller,
		Poller:     poller,
		Ejector:    ejector,
		PollBudget: *pollBudget,
		Workers:    *workers,
		Obs:        reg,
		Tracer:     tracer,

		DisablePredIndex: !*predIdx,
	})

	fmt.Printf("invalidatord: app=%s db=%s caches=%s interval=%s\n",
		*appURL, *dbAddr, *caches, *interval)

	stop := make(chan struct{})
	if *debugAddr != "" {
		dbg := obs.ServeWith(*debugAddr, reg, *withPprof, func(err error) {
			log.Printf("invalidatord: debug server: %v", err)
		}, func(mux *http.ServeMux) {
			mux.Handle("/debug/trace", trace.Handler(tracer))
			if ejectLog != nil {
				mux.Handle("/ejects", ejectLog.Handler())
			}
		})
		defer dbg.Close()
		fmt.Printf("invalidatord: debug endpoints on http://%s/debug/metrics\n", *debugAddr)
		if ejectLog != nil {
			fmt.Printf("invalidatord: eject stream on http://%s/ejects\n", *debugAddr)
		}
	} else if ejectLog != nil {
		log.Fatal("invalidatord: -eject-stream needs -debug-addr to serve /ejects")
	}
	if *clusterManage {
		if view == nil {
			log.Fatal("invalidatord: -cluster-manage requires -peers")
		}
		probes := make([]cluster.Probe, len(cacheURLs))
		for i, u := range cacheURLs {
			probes[i] = cluster.HTTPProbe{URL: u, Client: httpClient}
		}
		mgr := &cluster.Manager{View: view, Probes: probes, Obs: reg}
		go mgr.Run(*manageInterval, stop)
	}
	if *obsLog > 0 {
		go obs.LogLoop(reg, *obsLog, log.Printf, stop)
	}
	if *feed {
		// Long-poll the app server's logs in the background so request and
		// query entries land in the mirror as they are appended; the
		// synchronous Sync at the head of each cycle stays as the soundness
		// backstop (a cycle must never consume update records while blind to
		// the requests that cached the affected pages).
		go mirror.Run(stop)
	}
	// One shared cadence loop for both modes (invalidator.RunLoop): pure
	// interval ticking by default; with -feed a cycle also runs as soon as
	// the stream signals new update records, bursts coalesced within
	// -min-event-gap and the interval timer kept as fallback. Consecutive
	// failures (log fetch or cycle) stretch the cadence with capped
	// exponential backoff instead of hammering a dead dependency; one clean
	// cycle restores the configured interval.
	cycle := func() error {
		if _, err := mirror.Sync(); err != nil {
			log.Printf("invalidatord: log fetch: %v", err)
			return err // app server may be restarting; retry after backoff
		}
		rep, err := inv.Cycle()
		if err != nil {
			log.Printf("invalidatord: cycle: %v", err)
			return err
		}
		if *verbose || rep.Invalidated > 0 {
			granularity := ""
			if *fragments {
				granularity = fmt.Sprintf(" fragments=%d pages=%d",
					rep.FragmentEjects, rep.Invalidated-rep.FragmentEjects)
			}
			log.Printf("cycle: mapped=%d updates=%d polls=%d invalidated=%d%s conservative=%d (%s)",
				rep.MappedPages, rep.UpdateRecords, rep.Polls,
				rep.Invalidated, granularity, rep.Conservative, rep.Duration)
		}
		return nil
	}
	gap := *minEventGap
	if gap <= 0 {
		gap = invalidator.DefaultMinEventGap
	}
	var onBurst func(int)
	if notifier != nil {
		eventCycles := reg.Counter("invalidator.event_cycles_total")
		burstWakes := reg.Histogram("invalidator.event_burst_wakes")
		onBurst = func(wakes int) {
			eventCycles.Inc()
			burstWakes.Observe(float64(wakes))
		}
	}
	go invalidator.RunLoop(*interval, gap, notifier, stop, cycle, onBurst)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	fmt.Println("invalidatord: shutting down")
}
