// Command invalidatord is CachePortal deployed as the paper's Figure 7
// prescribes: a standalone process on its own machine that (a) fetches the
// HTTP-request and query logs from the application server at regular
// intervals, (b) pulls the database update log over the wire protocol,
// (c) runs the sniffer's request-to-query mapper and the invalidator's
// analysis/polling pipeline, and (d) sends `Cache-Control: eject` requests
// to the web caches.
//
// Usage (with dbserver, appserver and webcached already running):
//
//	invalidatord -app http://127.0.0.1:8080 -db 127.0.0.1:7000 \
//	             -cache http://127.0.0.1:8090 -interval 1s
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/driver"
	"repro/internal/invalidator"
	"repro/internal/logexport"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/wire"
)

func main() {
	appURL := flag.String("app", "http://127.0.0.1:8080", "application server base URL (log export)")
	dbAddr := flag.String("db", "127.0.0.1:7000", "dbserver address (update log + polling)")
	caches := flag.String("cache", "http://127.0.0.1:8090", "comma-separated web cache URLs to eject from")
	interval := flag.Duration("interval", time.Second, "invalidation cycle interval")
	pollBudget := flag.Duration("poll-budget", 0, "max polling time per cycle (0 = unbounded)")
	workers := flag.Int("workers", 0, "evaluation worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	pollConns := flag.Int("poll-conns", 1, "DB connections for polling queries (>1 polls in parallel)")
	ejectBatch := flag.Int("eject-batch", 0, "keys per batched eject request (0 = default)")
	dbTimeout := flag.Duration("db-timeout", 0, "per-roundtrip deadline on the update-log connection (0 = default 10s, <0 = none)")
	httpTimeout := flag.Duration("http-timeout", 0, "request timeout for log fetch and ejects (0 = default 10s)")
	verbose := flag.Bool("v", false, "log every cycle")
	debugAddr := flag.String("debug-addr", "127.0.0.1:8071", "address for /debug/metrics and /debug/vars (empty = off)")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/ on the debug address")
	obsLog := flag.Duration("obs-log", 0, "log a metrics snapshot at this interval (0 = never)")
	flag.Parse()

	logClient, err := wire.Dial(*dbAddr)
	if err != nil {
		log.Fatalf("invalidatord: update log: %v", err)
	}
	defer logClient.Close()
	logClient.Timeout = *dbTimeout
	var httpClient *http.Client // nil = shared default with timeouts
	if *httpTimeout > 0 {
		httpClient = &http.Client{Timeout: *httpTimeout}
	}
	if *pollConns < 1 {
		*pollConns = 1
	}
	conns := make([]invalidator.Poller, 0, *pollConns)
	for i := 0; i < *pollConns; i++ {
		c, err := driver.NetDriver{}.Connect(*dbAddr)
		if err != nil {
			log.Fatalf("invalidatord: polling connection: %v", err)
		}
		defer c.Close()
		conns = append(conns, c)
	}
	reg := obs.NewRegistry()
	var poller invalidator.Poller = conns[0]
	if len(conns) > 1 {
		cp := invalidator.NewConcurrentPoller(conns...)
		cp.Instrument(reg, "poller")
		poller = cp
	}

	mirror := logexport.NewMirror(*appURL)
	mirror.Client = httpClient
	qiMap := sniffer.NewQIURLMap()
	mapper := sniffer.NewMapper(mirror.Requests, mirror.Queries, qiMap)
	mapper.Obs = reg

	inv := invalidator.New(invalidator.Config{
		Map:    qiMap,
		Mapper: mapper,
		Puller: invalidator.WireLogPuller{Client: logClient},
		Poller: poller,
		Ejector: invalidator.HTTPEjector{
			CacheURLs: strings.Split(*caches, ","),
			Client:    httpClient,
			MaxBatch:  *ejectBatch,
			Obs:       reg,
		},
		PollBudget: *pollBudget,
		Workers:    *workers,
		Obs:        reg,
	})

	fmt.Printf("invalidatord: app=%s db=%s caches=%s interval=%s\n",
		*appURL, *dbAddr, *caches, *interval)

	stop := make(chan struct{})
	if *debugAddr != "" {
		dbg := obs.Serve(*debugAddr, reg, *withPprof, func(err error) {
			log.Printf("invalidatord: debug server: %v", err)
		})
		defer dbg.Close()
		fmt.Printf("invalidatord: debug endpoints on http://%s/debug/metrics\n", *debugAddr)
	}
	if *obsLog > 0 {
		go obs.LogLoop(reg, *obsLog, log.Printf, stop)
	}
	go func() {
		// Consecutive failures (log fetch or cycle) stretch the cadence with
		// capped exponential backoff instead of hammering a dead dependency;
		// one clean cycle restores the configured interval.
		failures := 0
		timer := time.NewTimer(*interval)
		defer timer.Stop()
		for {
			select {
			case <-stop:
				return
			case <-timer.C:
			}
			if _, err := mirror.Sync(); err != nil {
				log.Printf("invalidatord: log fetch: %v", err)
				failures++
				timer.Reset(invalidator.NextCycleDelay(*interval, failures))
				continue // app server may be restarting; retry after backoff
			}
			rep, err := inv.Cycle()
			if err != nil {
				log.Printf("invalidatord: cycle: %v", err)
				failures++
				timer.Reset(invalidator.NextCycleDelay(*interval, failures))
				continue
			}
			failures = 0
			timer.Reset(*interval)
			if *verbose || rep.Invalidated > 0 {
				log.Printf("cycle: mapped=%d updates=%d polls=%d invalidated=%d conservative=%d (%s)",
					rep.MappedPages, rep.UpdateRecords, rep.Polls,
					rep.Invalidated, rep.Conservative, rep.Duration)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	close(stop)
	fmt.Println("invalidatord: shutting down")
}
