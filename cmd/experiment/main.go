// Command experiment regenerates every table of the paper's evaluation
// (§5.3) from the calibrated simulation, printing rows in the paper's
// layout, plus the ablation sweeps described in DESIGN.md §4.
//
// Usage:
//
//	experiment -table 2          # Table 2
//	experiment -table 3          # Table 3
//	experiment -table all        # both
//	experiment -sweep hitratio   # Conf III expected response vs hit ratio
//	experiment -sweep updates    # Conf II/III vs update rate (fine grid)
//	experiment -sweep threads    # Conf I response vs worker threads
//	experiment -staleness 30     # live pipeline: commit-to-eject staleness
//	experiment -chaos 20         # live pipeline under injected faults
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/configs"
)

func main() {
	table := flag.String("table", "all", "which paper table to regenerate: 2, 3, all, none")
	sweep := flag.String("sweep", "", "ablation sweep: hitratio, updates, threads")
	reps := flag.Int("reps", configs.Replications, "replications per cell")
	duration := flag.Float64("duration", 0, "override measured window (seconds)")
	seed := flag.Int64("seed", 1, "base random seed")
	staleness := flag.Int("staleness", 0, "run the live staleness experiment for N update rounds (skips tables/sweeps)")
	obsOut := flag.String("obs-out", "", "write the staleness run's metrics snapshot to this JSON file")
	chaos := flag.Int("chaos", 0, "run the live pipeline under injected faults for N update rounds (skips tables/sweeps)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault injector seed (chaos runs are reproducible per seed)")
	chaosError := flag.Float64("chaos-error", 0.2, "per-operation probability of an injected error")
	chaosDrop := flag.Float64("chaos-drop", 0.1, "per-operation probability of an injected connection drop")
	chaosDelay := flag.Float64("chaos-delay", 0.2, "per-operation probability of an injected delay")
	flag.Parse()

	if *chaos > 0 {
		err := runChaos(*chaos, chaosParams{
			Seed: *chaosSeed, ErrorRate: *chaosError, DropRate: *chaosDrop, DelayRate: *chaosDelay,
		})
		if err != nil {
			log.Fatalf("experiment: chaos: %v", err)
		}
		return
	}

	if *staleness > 0 {
		if err := runStaleness(*staleness, *obsOut); err != nil {
			log.Fatalf("experiment: staleness: %v", err)
		}
		return
	}

	base := configs.Defaults()
	base.Seed = *seed
	if *duration > 0 {
		base.Duration = *duration
	}

	switch *table {
	case "2":
		printTable("Table 2 (negligible middle-tier cache access overhead)", configs.Table2(base, *reps))
	case "3":
		printTable("Table 3 (non-negligible middle-tier cache access overhead)", configs.Table3(base, *reps))
	case "all":
		printTable("Table 2 (negligible middle-tier cache access overhead)", configs.Table2(base, *reps))
		fmt.Println()
		printTable("Table 3 (non-negligible middle-tier cache access overhead)", configs.Table3(base, *reps))
	case "none":
	default:
		log.Fatalf("experiment: unknown table %q", *table)
	}

	switch *sweep {
	case "":
	case "hitratio":
		sweepHitRatio(base, *reps)
	case "updates":
		sweepUpdates(base, *reps)
	case "threads":
		sweepThreads(base)
	default:
		log.Fatalf("experiment: unknown sweep %q", *sweep)
	}
}

func fmtMS(v float64) string {
	if v < 0 {
		return "N/A"
	}
	return fmt.Sprintf("%.0f", v)
}

// printTable renders a 3×3 grid in the paper's row layout: one line per
// update load per configuration with DB / miss / hit / expected columns.
func printTable(title string, cells []configs.Cell) {
	fmt.Println("==", title, "==")
	fmt.Println("(average response times in ms; 30 req/s: 10 light + 10 medium + 10 heavy)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "UpdateRate\tConf\tMiss DB\tMiss Resp\tHit Resp\tExp. Resp\t")
	for _, c := range cells {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t\n",
			c.Load, c.Config,
			fmtMS(c.Row.MissDB), fmtMS(c.Row.MissResp), fmtMS(c.Row.HitResp), fmtMS(c.Row.ExpResp))
	}
	w.Flush()
}

// sweepHitRatio: Configuration III expected response across cache hit
// ratios (ablation for the hit_ratio parameter of Table 1).
func sweepHitRatio(base configs.Params, reps int) {
	fmt.Println("== Ablation: Conf III expected response vs web-cache hit ratio ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "hit_ratio\tExp. Resp (ms)\tMiss Resp\tDB util\t")
	for _, hr := range []float64{0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		p := base
		p.HitRatio = hr
		r := configs.RunAveraged(p, reps, configs.RunConfigIII)
		fmt.Fprintf(w, "%.1f\t%.0f\t%.0f\t%.2f\t\n", hr, r.ExpResp, r.MissResp, r.DBUtil)
	}
	w.Flush()
}

// sweepUpdates: Conf II vs III on a finer update-rate grid, showing where
// the gap opens (the paper samples 0/20/48 only).
func sweepUpdates(base configs.Params, reps int) {
	fmt.Println("== Ablation: expected response vs update rate (Conf II vs III) ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "updates/s\tConf II (ms)\tConf III (ms)\tIII/II\t")
	for _, u := range []float64{0, 10, 20, 30, 40, 48, 60} {
		p := base
		p.UpdateRate = u
		r2 := configs.RunAveraged(p, reps, configs.RunConfigII)
		r3 := configs.RunAveraged(p, reps, configs.RunConfigIII)
		fmt.Fprintf(w, "%.0f\t%.0f\t%.0f\t%.2f\t\n", u, r2.ExpResp, r3.ExpResp, r3.ExpResp/r2.ExpResp)
	}
	w.Flush()
}

// sweepThreads: Configuration I's response versus worker-pool size — the
// resource-starvation knob (§5.3.1's explanation).
func sweepThreads(base configs.Params) {
	fmt.Println("== Ablation: Conf I response vs worker threads per PC ==")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "threads\tMiss DB (ms)\tExp. Resp (ms)\t")
	for _, k := range []int{4, 16, 64, 256, 512, 1024} {
		p := base
		p.ThreadsPerServer = k
		r := configs.RunAveraged(p, 3, configs.RunConfigI)
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t\n", k, r.MissDB, r.ExpResp)
	}
	w.Flush()
}
