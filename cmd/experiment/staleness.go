package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/demoapp"
	"repro/internal/httpx"
	"repro/internal/obs"

	cacheportal "repro"
)

// stalenessResult is the -obs-out document: the headline freshness figures
// plus the full metrics snapshot they were derived from.
type stalenessResult struct {
	Rounds        int          `json:"rounds"`
	StalenessP50  float64      `json:"staleness_p50_seconds"`
	StalenessP95  float64      `json:"staleness_p95_seconds"`
	StalenessP99  float64      `json:"staleness_p99_seconds"`
	StalenessMean float64      `json:"staleness_mean_seconds"`
	HitRatio      float64      `json:"hit_ratio"`
	PollsPerCycle float64      `json:"polls_per_cycle"`
	Snapshot      obs.Snapshot `json:"snapshot"`
}

// runStaleness measures the live pipeline rather than the calibrated
// simulation: it deploys the full Configuration III site in-process, drives
// update→invalidate round trips through it, and reports the freshness-trace
// histogram (commit-to-eject staleness) alongside hit ratio and polling
// effort. This is the paper's freshness/performance trade-off measured, not
// modeled.
func runStaleness(rounds int, obsOut string) error {
	var defs []cacheportal.ServletDef
	for _, d := range demoapp.Servlets("db") {
		defs = append(defs, cacheportal.ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := cacheportal.NewSite(cacheportal.SiteConfig{
		Schema:   demoapp.DefaultSchemaSQL(),
		Servlets: defs,
		Interval: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer site.Close()

	get := func(url string) (key string, err error) {
		resp, err := httpx.Default().Get(url)
		if err != nil {
			return "", err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return "", fmt.Errorf("GET %s: %d", url, resp.StatusCode)
		}
		return resp.Header.Get("X-Cacheportal-Key"), nil
	}

	nextID := 50_000_000
	for r := 0; r < rounds; r++ {
		cat := r % demoapp.JoinValues
		// Warm (or re-warm) the light page for this category; the second
		// fetch is the cache hit that makes the page worth keeping fresh.
		url := fmt.Sprintf("%s/light?cat=%d", site.CacheURL, cat)
		key, err := get(url)
		if err != nil {
			return err
		}
		if _, err := get(url); err != nil {
			return err
		}
		// Backend update touching the page's category, then wait for the
		// freshness trace to complete: commit → delta → analysis → eject.
		nextID++
		if err := site.Exec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d, 'x')", nextID, cat)); err != nil {
			return err
		}
		if !site.WaitForInvalidation(key, 5*time.Second) {
			return fmt.Errorf("round %d: page %s not invalidated", r, key)
		}
	}

	snap := site.Obs.Snapshot()
	h := snap.Histograms["invalidator.staleness_seconds"]
	st := site.Cache.Stats()
	cycles := snap.Counters["invalidator.cycles_total"]
	polls := snap.Counters["invalidator.polls_total"]
	res := stalenessResult{
		Rounds:        rounds,
		StalenessP50:  h.Quantile(0.50),
		StalenessP95:  h.Quantile(0.95),
		StalenessP99:  h.Quantile(0.99),
		StalenessMean: h.Mean(),
		HitRatio:      st.HitRatio(),
		Snapshot:      snap,
	}
	if cycles > 0 {
		res.PollsPerCycle = float64(polls) / float64(cycles)
	}

	fmt.Printf("== Live pipeline: commit-to-eject staleness over %d update rounds ==\n", rounds)
	fmt.Printf("staleness p50=%.1fms p95=%.1fms p99=%.1fms mean=%.1fms max=%.1fms (n=%d)\n",
		res.StalenessP50*1e3, res.StalenessP95*1e3, res.StalenessP99*1e3,
		res.StalenessMean*1e3, h.Max*1e3, h.Count)
	fmt.Printf("cache: hit ratio %.2f (%d hits / %d misses), %d invalidations, precision %.2f\n",
		st.HitRatio(), st.Hits, st.Misses, st.Invalidations, st.InvalidationPrecision())
	fmt.Printf("invalidator: %d cycles, %.2f polls/cycle, %d deduped, %d conservative\n",
		cycles, res.PollsPerCycle, snap.Counters["invalidator.polls_deduped_total"],
		snap.Counters["invalidator.conservative_total"])

	if obsOut != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(obsOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", obsOut)
	}
	return nil
}
