package main

import (
	"fmt"
	"io"
	"time"

	"repro/internal/demoapp"
	"repro/internal/faults"
	"repro/internal/httpx"

	cacheportal "repro"
)

// chaosParams are the -chaos-* flag values.
type chaosParams struct {
	Seed      int64
	ErrorRate float64
	DropRate  float64
	DelayRate float64
}

// runChaos deploys the full Configuration III site with a seeded fault
// injector on its invalidation path (log puller + ejector) and drives
// update→invalidate rounds through it: the live counterpart of the chaos
// integration test. Every run is reproducible from its seed. The assertion
// is the §4.2.4 guarantee under faults — every stale page is still ejected,
// just later — and the printout shows what that degradation cost.
func runChaos(rounds int, p chaosParams) error {
	inj := faults.New(faults.Config{
		Seed:      p.Seed,
		ErrorRate: p.ErrorRate,
		DropRate:  p.DropRate,
		DelayRate: p.DelayRate,
		Delay:     5 * time.Millisecond,
	})
	inj.Disable() // boot cleanly; faults start with the first round

	var defs []cacheportal.ServletDef
	for _, d := range demoapp.Servlets("db") {
		defs = append(defs, cacheportal.ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := cacheportal.NewSite(cacheportal.SiteConfig{
		Schema:   demoapp.DefaultSchemaSQL(),
		Servlets: defs,
		Interval: 50 * time.Millisecond,
		Chaos:    inj,
	})
	if err != nil {
		return err
	}
	defer site.Close()

	get := func(url string) (key string, err error) {
		resp, err := httpx.Default().Get(url)
		if err != nil {
			return "", err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			return "", fmt.Errorf("GET %s: %d", url, resp.StatusCode)
		}
		return resp.Header.Get("X-Cacheportal-Key"), nil
	}

	inj.Enable()
	nextID := 60_000_000
	for r := 0; r < rounds; r++ {
		cat := r % demoapp.JoinValues
		url := fmt.Sprintf("%s/light?cat=%d", site.CacheURL, cat)
		key, err := get(url)
		if err != nil {
			return err
		}
		nextID++
		if err := site.Exec(fmt.Sprintf("INSERT INTO small VALUES (%d, %d, 'x')", nextID, cat)); err != nil {
			return err
		}
		// Generous deadline: injected faults stretch convergence, they must
		// not break it. Retry/backoff/breaker make this bounded.
		if !site.WaitForInvalidation(key, 30*time.Second) {
			return fmt.Errorf("round %d: page %s never invalidated under chaos (permanent staleness)", r, key)
		}
	}
	inj.Heal()

	snap := site.Obs.Snapshot()
	h := snap.Histograms["invalidator.staleness_seconds"]
	fmt.Printf("== Chaos: %d update rounds, seed %d (error=%.2f drop=%.2f delay=%.2f) ==\n",
		rounds, p.Seed, p.ErrorRate, p.DropRate, p.DelayRate)
	fmt.Printf("faults injected: %d (%d errors, %d drops, %d delays)\n",
		snap.Counters["faults.injected_total"], snap.Counters["faults.errors_total"],
		snap.Counters["faults.drops_total"], snap.Counters["faults.delays_total"])
	fmt.Printf("invalidator: %d cycles, %d cycle errors, %d eject errors, %d breaker trips, %d truncations\n",
		snap.Counters["invalidator.cycles_total"], snap.Counters["invalidator.cycle_errors_total"],
		snap.Counters["invalidator.eject_errors_total"], snap.Counters["invalidator.breaker_trips_total"],
		snap.Counters["invalidator.truncations_total"])
	fmt.Printf("staleness under chaos: p50=%.1fms p95=%.1fms p99=%.1fms max=%.1fms (n=%d)\n",
		h.Quantile(0.50)*1e3, h.Quantile(0.95)*1e3, h.Quantile(0.99)*1e3, h.Max*1e3, h.Count)
	fmt.Println("no permanent staleness: every invalidated page was ejected")
	return nil
}
