// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so CI and EXPERIMENTS.md work from the same artifact:
//
//	go test -run xxx -bench BenchmarkInvalidatorCycleParallel . \
//	    | go run ./cmd/benchjson -out BENCH_invalidator.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Iters   int64              `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is the output document.
type Record struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
	// TraceOverhead is the p95-staleness ratio of the traced staleness
	// benchmark over the untraced one (1.00 = free), derived whenever both
	// BenchmarkCommitToEject/feed and /feed-traced results are present. The
	// PR acceptance bar is <= 1.05.
	TraceOverhead float64 `json:"trace_overhead,omitempty"`
	// Obs is an optional observability snapshot (from `experiment
	// -staleness -obs-out`) embedded verbatim, so the benchmark artifact
	// carries the live pipeline's staleness and hit-ratio figures next to
	// the microbenchmark numbers.
	Obs json.RawMessage `json:"obs,omitempty"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	obsFile := flag.String("obs", "", "JSON metrics snapshot to embed under \"obs\"")
	merge := flag.Bool("merge", false, "merge into -out instead of replacing it: results with the same name are updated, new ones appended, and the existing obs snapshot is kept unless -obs is given")
	flag.Parse()

	var rec Record
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Iters: iters, NsPerOp: ns}
		// Trailing custom metrics come in value/unit pairs.
		for i := 4; i+1 < len(fields); i += 2 {
			if v, err := strconv.ParseFloat(fields[i], 64); err == nil {
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		rec.Results = append(rec.Results, r)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	if *merge && *out != "" {
		if buf, err := os.ReadFile(*out); err == nil {
			var prev Record
			if err := json.Unmarshal(buf, &prev); err != nil {
				log.Fatalf("benchjson: -merge: %s: %v", *out, err)
			}
			rec = mergeRecords(prev, rec)
		} else if !os.IsNotExist(err) {
			log.Fatal(err)
		}
	}

	if *obsFile != "" {
		buf, err := os.ReadFile(*obsFile)
		if err != nil {
			log.Fatal(err)
		}
		if !json.Valid(buf) {
			log.Fatalf("benchjson: %s is not valid JSON", *obsFile)
		}
		rec.Obs = json.RawMessage(buf)
	}

	rec.TraceOverhead = traceOverhead(rec.Results)

	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(rec.Results), *out)
}

// traceOverhead computes the traced/untraced p95-staleness ratio from the
// commit-to-eject benchmark pair, or 0 when either half is missing.
func traceOverhead(results []Result) float64 {
	p95 := func(name string) float64 {
		for _, r := range results {
			// Strip the -<GOMAXPROCS> suffix go test appends to sub-benchmarks.
			n := r.Name
			if i := strings.LastIndex(n, "-"); i > 0 {
				if _, err := strconv.Atoi(n[i+1:]); err == nil {
					n = n[:i]
				}
			}
			if n == "BenchmarkCommitToEject/"+name {
				return r.Metrics["p95-staleness-ms"]
			}
		}
		return 0
	}
	base, traced := p95("feed"), p95("feed-traced")
	if base == 0 || traced == 0 {
		return 0
	}
	return traced / base
}

// mergeRecords folds the fresh run into the previous artifact: fresh
// results replace same-named entries in place (preserving order), new names
// append, and environment fields plus the obs snapshot fall back to the
// previous record when the fresh run did not produce them.
func mergeRecords(prev, fresh Record) Record {
	byName := make(map[string]int, len(prev.Results))
	for i, r := range prev.Results {
		byName[r.Name] = i
	}
	for _, r := range fresh.Results {
		if i, ok := byName[r.Name]; ok {
			prev.Results[i] = r
			continue
		}
		byName[r.Name] = len(prev.Results)
		prev.Results = append(prev.Results, r)
	}
	if fresh.Goos != "" {
		prev.Goos = fresh.Goos
	}
	if fresh.Goarch != "" {
		prev.Goarch = fresh.Goarch
	}
	if fresh.CPU != "" {
		prev.CPU = fresh.CPU
	}
	if len(fresh.Obs) > 0 {
		prev.Obs = fresh.Obs
	}
	return prev
}
