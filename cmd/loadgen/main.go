// Command loadgen is the paper's request and update generator (§5.2.2–
// 5.2.3) for driving a live site: Poisson HTTP requests against the demo
// pages plus random insert/delete updates over the wire protocol.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8090 -rate 30 -duration 30s \
//	        -db 127.0.0.1:7000 -update-rate 10
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/demoapp"
	"repro/internal/wire"
	"repro/internal/workload"
)

func main() {
	base := flag.String("url", "http://127.0.0.1:8090", "site base URL")
	rate := flag.Float64("rate", 30, "requests per second")
	updateRate := flag.Float64("update-rate", 0, "update statements per second")
	dbAddr := flag.String("db", "", "dbserver address for updates (required when update-rate > 0)")
	duration := flag.Duration("duration", 30*time.Second, "how long to run")
	seed := flag.Int64("seed", 1, "random seed")
	zipf := flag.Float64("zipf", 0, "Zipf skew for page popularity (0 = uniform, try 1.2)")
	wireBinary := flag.Bool("wire-binary", true, "offer the binary wire framing on the update connection (false = JSON only)")
	flag.Parse()

	gen := workload.NewRequestGen(*rate, *seed, demoapp.PageURLs(*base)...)
	if *zipf > 1 {
		gen = gen.WithZipf(*zipf)
	}

	var wg sync.WaitGroup
	var updIssued, updFailed int64
	if *updateRate > 0 {
		if *dbAddr == "" {
			log.Fatal("loadgen: -update-rate needs -db")
		}
		client, err := wire.Dial(*dbAddr)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		defer client.Close()
		client.Binary = *wireBinary
		target := workload.ExecFunc(func(sql string) error {
			_, err := client.Query(sql)
			return err
		})
		ug := workload.NewUpdateGen(*updateRate, *seed+1, target, demoapp.UpdateStatement())
		wg.Add(1)
		go func() {
			defer wg.Done()
			updIssued, updFailed = ug.Run(*duration)
		}()
	}

	fmt.Printf("loadgen: %g req/s (+%g upd/s) for %s against %s\n", *rate, *updateRate, *duration, *base)
	stats := gen.Run(*duration)
	wg.Wait()

	fmt.Printf("requests:     %d (%d errors)\n", stats.Requests(), stats.Errors())
	fmt.Printf("hit ratio:    %.3f\n", stats.HitRatio())
	fmt.Printf("mean latency: %s (max %s)\n", stats.MeanLatency(), stats.MaxLatency())
	if *updateRate > 0 {
		fmt.Printf("updates:      %d issued, %d failed\n", updIssued, updFailed)
	}
}
