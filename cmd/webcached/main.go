// Command webcached runs the dynamic-content web cache: a caching reverse
// proxy honouring `Cache-Control: private, owner="cacheportal"` for storage
// and `Cache-Control: eject` for invalidation (the NetCache box of the
// paper's Configuration III).
//
// Usage:
//
//	webcached -listen :8090 -origin http://127.0.0.1:8080 -capacity 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/webcache"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8090", "HTTP address to listen on")
	origin := flag.String("origin", "http://127.0.0.1:8080", "origin server base URL")
	capacity := flag.Int("capacity", 0, "max cached pages (0 = unbounded)")
	originTimeout := flag.Duration("origin-timeout", 0, "origin request timeout (0 = default 10s)")
	shards := flag.Int("shards", 0, "cache lock shards (0 = auto, 1 = single exact LRU)")
	fragments := flag.Bool("fragments", false, "fragment mode: negotiate composite responses with the origin, cache fragments under their own keys and assemble pages at the edge")
	nodeID := flag.String("node-id", "", "this node's identity in the cache cluster (required with -peers)")
	peers := flag.String("peers", "", "cluster membership as 'id=url,id=url' including this node (empty = single-node, byte-identical to before)")
	slots := flag.Int("slots", 0, "consistent-hash ring slots (0 = default; must match across the cluster)")
	ejectStream := flag.String("eject-stream", "", "invalidator eject-stream URL to consume with cursor resume (e.g. http://127.0.0.1:8071/ejects; empty = expect pushed ejects)")
	cookieAllow := flag.String("cookie-allow", "", "per-servlet cookie allowlist for cache keys, e.g. 'home=session,search=' (listed servlets key only on the named cookies; others keep keying on all)")
	statsEvery := flag.Duration("stats", 0, "print stats at this interval (0 = never)")
	debugAddr := flag.String("debug-addr", "127.0.0.1:8091", "address for /debug/metrics and /debug/vars (empty = off)")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/ on the debug address")
	obsLog := flag.Duration("obs-log", 0, "log a metrics snapshot at this interval (0 = never)")
	traceOn := flag.Bool("trace", false, "close pipeline traces arriving on eject requests (X-Cacheportal-Trace); serves /debug/trace")
	traceSample := flag.Int("trace-sample", trace.DefaultSample, "head-sample every Nth trace (<=1 = all)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultBuffer, "span ring-buffer capacity")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceSample, *traceBuffer)
		// Eject requests name traces the invalidator already chose to
		// record; this tracer's own head sampling must not drop them.
		tracer.SetForceAll(true)
	}

	reg := obs.NewRegistry()
	reg.RuntimeMetrics()
	cache := webcache.NewCacheSharded(*capacity, *shards)
	// With a cluster identity the gauges carry the node ID, so merging
	// several nodes' scrapes (benchjson) doesn't collide their metrics.
	metricsPrefix := "webcache"
	if *nodeID != "" {
		metricsPrefix = "webcache." + *nodeID
	}
	cache.Instrument(reg, metricsPrefix)
	proxy := webcache.NewProxy(*origin, cache)
	proxy.Tracer = tracer
	proxy.Fragments = *fragments

	var node *webcache.ClusterNode
	if *peers != "" {
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			log.Fatalf("webcached: -peers: %v", err)
		}
		if *nodeID == "" {
			log.Fatal("webcached: -node-id is required with -peers")
		}
		m := cluster.NewMap(*slots, nodes)
		if _, ok := m.Node(*nodeID); !ok {
			log.Fatalf("webcached: -node-id %q is not in -peers", *nodeID)
		}
		node = webcache.NewClusterNode(*nodeID, cluster.NewView(m), cache)
		node.Instrument(reg, "cluster."+*nodeID)
		proxy.Cluster = node
	}
	if *ejectStream != "" {
		consumer := &cluster.Consumer{
			URL:   *ejectStream,
			Apply: func(keys []string) { cache.InvalidateMany(keys) },
			Clear: cache.Clear,
			OnError: func(err error) {
				log.Printf("webcached: eject stream: %v", err)
			},
		}
		go consumer.Run(make(chan struct{}))
	}
	if *cookieAllow != "" {
		allow, err := webcache.ParseCookieAllow(*cookieAllow)
		if err != nil {
			log.Fatalf("webcached: -cookie-allow: %v", err)
		}
		proxy.CookieAllow = allow
	}
	if *originTimeout > 0 {
		proxy.Client = &http.Client{Timeout: *originTimeout}
	}
	handler := obs.HTTPMiddleware(reg, "proxy", proxy)

	if *debugAddr != "" {
		dbg := obs.ServeWith(*debugAddr, reg, *withPprof, func(err error) {
			log.Printf("webcached: debug server: %v", err)
		}, func(mux *http.ServeMux) {
			mux.Handle("/debug/trace", trace.Handler(tracer))
			if node != nil {
				// The shard manager probes and installs maps here too,
				// besides the proxy's own serving of the same path.
				mux.HandleFunc(cluster.DebugClusterPath, node.ServeDebug)
			}
		})
		defer dbg.Close()
		fmt.Printf("webcached: debug endpoints on http://%s/debug/metrics\n", *debugAddr)
	}
	if *obsLog > 0 {
		go obs.LogLoop(reg, *obsLog, log.Printf, make(chan struct{}))
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := cache.Stats()
				fmt.Printf("webcached: %d pages, hit ratio %.2f, %d invalidations, %d evictions\n",
					cache.Len(), st.HitRatio(), st.Invalidations, st.Evictions)
			}
		}()
	}

	fmt.Printf("webcached on %s → %s\n", *listen, *origin)
	log.Fatal(http.ListenAndServe(*listen, handler))
}
