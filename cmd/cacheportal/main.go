// Command cacheportal deploys the complete Configuration III site in one
// process: the in-memory DBMS served over TCP, the demo application's
// servlet container, the caching reverse proxy, and a running CachePortal
// (sniffer + invalidator) keeping the cache consistent with the database.
//
// Usage:
//
//	cacheportal -listen :8090 -interval 1s
//
// Then browse http://127.0.0.1:8090/light?cat=3 and apply updates with
// loadgen (or any wire client) against the printed DB address; watch pages
// get invalidated.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/demoapp"
	"repro/internal/obs"
	"repro/internal/trace"

	cacheportal "repro"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8090", "public (cache) HTTP address")
	interval := flag.Duration("interval", time.Second, "invalidation cycle interval")
	capacity := flag.Int("capacity", 0, "web cache capacity (0 = unbounded)")
	report := flag.Duration("report", 5*time.Second, "status report interval (0 = never)")
	debugAddr := flag.String("debug-addr", "127.0.0.1:8095", "address for /debug/metrics and /debug/vars (empty = off)")
	withPprof := flag.Bool("pprof", false, "also expose /debug/pprof/ on the debug address")
	obsLog := flag.Duration("obs-log", 0, "log a metrics snapshot at this interval (0 = never)")
	traceOn := flag.Bool("trace", false, "trace every pipeline hop commit→eject in-process; serves /debug/trace")
	traceSample := flag.Int("trace-sample", trace.DefaultSample, "head-sample every Nth trace (<=1 = all)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultBuffer, "span ring-buffer capacity")
	cacheNodes := flag.Int("cache-nodes", 1, "web cache nodes; >1 runs the consistent-hash cluster tier")
	clusterPolicy := flag.String("cluster-policy", "hash", "front balancer policy for the cluster: hash (route to owner) or rr (any node, one-hop forward)")
	clusterManage := flag.Bool("cluster-manage", false, "run the adaptive shard manager (hot-slot replication); needs -cache-nodes > 1")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOn {
		tracer = trace.New(*traceSample, *traceBuffer)
	}

	var defs []cacheportal.ServletDef
	for _, d := range demoapp.Servlets("db") {
		defs = append(defs, cacheportal.ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	if *clusterManage && *cacheNodes <= 1 {
		log.Fatal("cacheportal: -cluster-manage needs -cache-nodes > 1")
	}
	var cc cacheportal.ClusterConfig
	if *cacheNodes > 1 {
		cc = cacheportal.ClusterConfig{
			CacheNodes:  *cacheNodes,
			FrontPolicy: *clusterPolicy,
			Manager:     *clusterManage,
		}
	}
	site, err := cacheportal.NewSite(cacheportal.SiteConfig{
		Schema:        demoapp.DefaultSchemaSQL(),
		Servlets:      defs,
		CacheCapacity: *capacity,
		Interval:      *interval,
		Tracer:        tracer,
		Cluster:       cc,
	})
	if err != nil {
		log.Fatalf("cacheportal: %v", err)
	}
	defer site.Close()

	// Re-expose the cache tier on the requested public address: the proxy
	// itself single-node, the front balancer when running the cluster.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cacheportal: %v", err)
	}
	var public http.Handler = site.Proxy
	if *cacheNodes > 1 {
		front, err := url.Parse(site.CacheURL)
		if err != nil {
			log.Fatalf("cacheportal: %v", err)
		}
		public = httputil.NewSingleHostReverseProxy(front)
	}
	go http.Serve(ln, public)

	fmt.Printf("cacheportal site up:\n")
	fmt.Printf("  public (cached) URL: http://%s  (pages: /light /medium /heavy ?cat=0..9)\n", ln.Addr())
	fmt.Printf("  app server (uncached): %s\n", site.AppURL)
	fmt.Printf("  database (wire protocol): %s\n", site.DBAddr)
	fmt.Printf("  invalidation cycle: %s\n", *interval)

	site.Obs.RuntimeMetrics()
	if *debugAddr != "" {
		dbg := obs.ServeWith(*debugAddr, site.Obs, *withPprof, func(err error) {
			log.Printf("cacheportal: debug server: %v", err)
		}, func(mux *http.ServeMux) {
			mux.Handle("/debug/trace", trace.Handler(tracer))
		})
		defer dbg.Close()
		fmt.Printf("  debug endpoints: http://%s/debug/metrics\n", *debugAddr)
	}
	if *obsLog > 0 {
		go obs.LogLoop(site.Obs, *obsLog, log.Printf, make(chan struct{}))
	}

	if *report > 0 {
		go func() {
			for range time.Tick(*report) {
				st := site.Cache.Stats()
				rep, _, cycles := site.Portal.LastReport()
				fmt.Printf("[%s] pages=%d hitRatio=%.2f invalidations=%d cycles=%d lastCycle={polls=%d inval=%d}\n",
					time.Now().Format("15:04:05"), site.Cache.Len(), st.HitRatio(),
					st.Invalidations, cycles, rep.Polls, rep.Invalidated)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("cacheportal: shutting down")
}
