package cacheportal

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// benchStalenessSite builds the car site used by BenchmarkCommitToEject with
// the same 100ms cycle interval in both modes; only the trigger differs. In
// interval mode the timer is the sole driver, so commit-to-eject staleness is
// uniform over the interval plus cycle time. In feed mode the interval is
// merely the fallback and the update stream fires the cycle, so staleness
// collapses to the coalescing gap plus cycle time.
func benchStalenessSite(b *testing.B, feed, jsonWire bool, tracer *trace.Tracer) *Site {
	b.Helper()
	site, err := NewSite(SiteConfig{
		Tracer:            tracer,
		DisableWireBinary: jsonWire,
		Schema: `
			CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
			CREATE TABLE Mileage (model TEXT, EPA INT);
			INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000), ('BMW', 'M3', 70000);
			INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31), ('M3', 19);
		`,
		Servlets: []ServletDef{
			{
				Meta: Meta{Name: "under", Keys: KeySpec{Get: []string{"price"}}},
				Handler: func(ctx *Context) (*Page, error) {
					lease, err := ctx.Lease("db")
					if err != nil {
						return nil, err
					}
					defer lease.Release()
					res, err := lease.Query(
						"SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage " +
							"WHERE Car.model = Mileage.model AND Car.price < " + ctx.Param("price"))
					if err != nil {
						return nil, err
					}
					var sb strings.Builder
					for _, r := range res.Rows {
						fmt.Fprintf(&sb, "%s\n", r[1])
					}
					return &Page{Body: []byte(sb.String())}, nil
				},
			},
		},
		Interval:    100 * time.Millisecond,
		Feed:        feed,
		MinEventGap: 2 * time.Millisecond,
		// The workload invalidates 100% of the page's instances on every
		// update, which policy discovery rightly flags as cache-unfriendly
		// after a few batches — and an uncached page would make "eviction"
		// instant and the staleness numbers meaningless. Pin it cacheable the
		// way an administrator would (§4.1.3).
		Rules: []Rule{{Servlet: "under", Action: AlwaysCache}},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	return site
}

// BenchmarkCommitToEject measures the freshness half of the paper's
// trade-off end to end: a backend commit against a cached page, then a
// passive wait (nothing calls Cycle) until the page is gone from the web
// cache. ns/op is the wall-clock commit-to-eject window; the reported
// p50/p95-staleness-ms come from the pipeline's own freshness trace. The
// acceptance bar for event-driven mode is p95 strictly below the 100ms cycle
// interval that pull mode is bound by.
func BenchmarkCommitToEject(b *testing.B) {
	for _, mode := range []struct {
		name   string
		feed   bool
		traced bool
		json   bool
	}{
		{"interval", false, false, false},
		{"feed", true, false, false},
		// Tracing's worst case: every trace head-sampled, spans on every hop.
		// The acceptance bar is p95 staleness within 5% of the untraced feed
		// run (benchjson computes the ratio as "trace_overhead").
		{"feed-traced", true, true, false},
		// JSON framing on every wire connection: the pre-binary baseline the
		// negotiated codec must not regress against (binary p95 <= this).
		{"feed-json", true, false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var tracer *trace.Tracer
			if mode.traced {
				tracer = trace.New(1, trace.DefaultBuffer)
			}
			site := benchStalenessSite(b, mode.feed, mode.json, tracer)
			url := site.CacheURL + "/under?price=20000"
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, _, key := fetch(b, url)
				if key == "" {
					b.Fatal("no cache key")
				}
				b.StartTimer()
				// One update record per iteration, committed inside the timed
				// window: the new row joins an existing Mileage row and passes
				// the page's predicate, so it must evict.
				if err := site.Exec(fmt.Sprintf(
					"INSERT INTO Car VALUES ('Bencher%d', 'Corolla', 17000)", i)); err != nil {
					b.Fatal(err)
				}
				deadline := time.Now().Add(5 * time.Second)
				for {
					if _, present := site.Cache.Peek(key); !present {
						break
					}
					if time.Now().After(deadline) {
						b.Fatalf("iter %d: page never evicted", i)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			b.StopTimer()
			h := site.Obs.Snapshot().Histograms["invalidator.staleness_seconds"]
			if h.Count > 0 {
				b.ReportMetric(h.Quantile(0.50)*1e3, "p50-staleness-ms")
				b.ReportMetric(h.Quantile(0.95)*1e3, "p95-staleness-ms")
			}
		})
	}
}
