package cacheportal

// The benchmark harness regenerates every data artifact of the paper's
// evaluation section (DESIGN.md §4):
//
//   - BenchmarkTable2 / BenchmarkTable3 — one sub-benchmark per
//     (configuration, update load) cell, reporting the paper's four
//     columns (miss DB, miss, hit, expected response) as custom metrics in
//     milliseconds. The authoritative tables also print via
//     `go run ./cmd/experiment`.
//   - BenchmarkAblation* — the sweeps DESIGN.md calls out (hit ratio,
//     polling strategy, Conf I worker threads).
//   - BenchmarkInvalidator*/BenchmarkSniffer*/Benchmark<component> — micro
//     benchmarks of the core pipeline.
//
// Simulation cells run a reduced 120 s window per iteration so `go test
// -bench .` stays fast; cmd/experiment uses the full calibrated window.

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/configs"
	"repro/internal/demoapp"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/invalidator"
	"repro/internal/mem"
	"repro/internal/sniffer"
	"repro/internal/sqlparser"
	"repro/internal/webcache"
	"repro/internal/wire"
)

// benchParams is the reduced-window simulation setup for benchmarks.
func benchParams() configs.Params {
	p := configs.Defaults()
	p.Duration = 120
	return p
}

// reportRow publishes a simulation row as benchmark metrics.
func reportRow(b *testing.B, r configs.Row) {
	b.ReportMetric(r.MissDB, "missDB_ms")
	b.ReportMetric(r.MissResp, "miss_ms")
	if r.HitResp >= 0 {
		b.ReportMetric(r.HitResp, "hit_ms")
	}
	b.ReportMetric(r.ExpResp, "exp_ms")
}

// benchTable runs the 3×3 grid of one paper table as sub-benchmarks.
func benchTable(b *testing.B, mutate func(*configs.Params)) {
	for _, load := range configs.UpdateLoads {
		for _, cfg := range []struct {
			name string
			run  func(configs.Params) configs.Row
		}{
			{"ConfI", configs.RunConfigI},
			{"ConfII", configs.RunConfigII},
			{"ConfIII", configs.RunConfigIII},
		} {
			b.Run(fmt.Sprintf("upd=%s/%s", load.Label, cfg.name), func(b *testing.B) {
				var last configs.Row
				for i := 0; i < b.N; i++ {
					p := benchParams()
					p.UpdateRate = load.Rate
					p.Seed = int64(i + 1)
					if mutate != nil {
						mutate(&p)
					}
					last = cfg.run(p)
				}
				reportRow(b, last)
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2 (negligible middle-tier cache access
// overhead).
func BenchmarkTable2(b *testing.B) {
	benchTable(b, nil)
}

// BenchmarkTable3 regenerates Table 3 (the middle-tier cache is a local
// DBMS with per-access connection overhead).
func BenchmarkTable3(b *testing.B) {
	benchTable(b, func(p *configs.Params) {
		*p = configs.Table3Params(*p)
	})
}

// BenchmarkAblationHitRatio sweeps the web-cache hit ratio under
// Configuration III (the hit_ratio knob of the paper's Table 1).
func BenchmarkAblationHitRatio(b *testing.B) {
	for _, hr := range []float64{0, 0.3, 0.5, 0.7, 0.9} {
		b.Run(fmt.Sprintf("hit=%.1f", hr), func(b *testing.B) {
			var last configs.Row
			for i := 0; i < b.N; i++ {
				p := benchParams()
				p.HitRatio = hr
				p.Seed = int64(i + 1)
				last = configs.RunConfigIII(p)
			}
			reportRow(b, last)
		})
	}
}

// BenchmarkAblationThreads sweeps Configuration I's worker-pool size — the
// resource-starvation mechanism behind its collapse (§5.3.1).
func BenchmarkAblationThreads(b *testing.B) {
	for _, k := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("threads=%d", k), func(b *testing.B) {
			var last configs.Row
			for i := 0; i < b.N; i++ {
				p := benchParams()
				p.ThreadsPerServer = k
				p.Seed = int64(i + 1)
				last = configs.RunConfigI(p)
			}
			reportRow(b, last)
		})
	}
}

// ---------------------------------------------------------------------------
// Invalidator pipeline benchmarks
// ---------------------------------------------------------------------------

// invalidatorBench builds a harness with nPages cached join pages and
// returns (invalidator, database).
func invalidatorBench(b *testing.B, nPages int, withPoller, withIndex bool) (*invalidator.Invalidator, *engine.Database) {
	b.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(demoapp.DefaultSchemaSQL()); err != nil {
		b.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	cfg := invalidator.Config{
		Map:     m,
		Puller:  invalidator.EngineLogPuller{Log: db.Log()},
		Ejector: invalidator.FuncEjector(func([]string) error { return nil }),
	}
	if withPoller {
		conn, err := driver.DirectDriver{DB: db}.Connect("")
		if err != nil {
			b.Fatal(err)
		}
		cfg.Poller = conn
	}
	inv := invalidator.New(cfg)
	if withIndex {
		conn, _ := driver.DirectDriver{DB: db}.Connect("")
		if err := inv.Indexes().Maintain(conn, "large", "cat"); err != nil {
			b.Fatal(err)
		}
	}
	// Swallow the schema-seeding log records before any pages exist.
	if _, err := inv.Cycle(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nPages; i++ {
		// One query type, nPages instances differing in the id bound. The
		// only residue is the parameter-free equi-join, so a delta tuple
		// that passes the local id predicate costs exactly one existence
		// poll ("∃ large.cat = v"), which a maintained index can answer.
		sql := fmt.Sprintf(
			"SELECT small.id FROM small, large WHERE small.cat = large.cat AND small.id > %d", i)
		m.Record(fmt.Sprintf("page-%d", i), "s", int64(i), []sniffer.QueryInstance{{SQL: sql}})
	}
	if _, err := inv.Cycle(); err != nil { // ingest the page mappings
		b.Fatal(err)
	}
	return inv, db
}

// BenchmarkInvalidatorCycle measures one invalidation cycle processing one
// update against a population of cached pages. The inserted tuples fail
// every instance's local predicate (cat=99 is outside the pages' 0..9
// domain), so the population stays constant and each iteration measures the
// pure per-update analysis cost — the work §2.4 requires to stay off the
// critical path.
func BenchmarkInvalidatorCycle(b *testing.B) {
	for _, nPages := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("pages=%d", nPages), func(b *testing.B) {
			inv, db := invalidatorBench(b, nPages, true, false)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// id = -1-i fails every instance's "id > bound" locally:
				// per-update analysis cost with zero polls.
				db.ExecSQL(fmt.Sprintf("INSERT INTO small VALUES (%d, 99, 'x')", -1-i))
				rep, err := inv.Cycle()
				if err != nil {
					b.Fatal(err)
				}
				if rep.Invalidated != 0 {
					b.Fatal("population must stay constant")
				}
			}
		})
	}
}

// BenchmarkAblationPolling compares the three ways the invalidator can
// resolve a delta that needs residual information: polling the DBMS, a
// maintained index, and no poller at all (conservative).
func BenchmarkAblationPolling(b *testing.B) {
	modes := []struct {
		name       string
		withPoller bool
		withIndex  bool
	}{
		{"poll-dbms", true, false},
		{"maintained-index", true, true},
		{"conservative", false, false},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			inv, db := invalidatorBench(b, 100, mode.withPoller, mode.withIndex)
			b.ResetTimer()
			var polls, conservative, invalidated int
			for i := 0; i < b.N; i++ {
				// The tuple passes every local predicate but joins with
				// nothing (cat=42 has no large counterpart): polling modes
				// resolve it with one empty existence check and keep the
				// pages; conservative mode must invalidate.
				db.ExecSQL(fmt.Sprintf("INSERT INTO small VALUES (%d, 42, 'x')", 2_000_000+i))
				rep, err := inv.Cycle()
				if err != nil {
					b.Fatal(err)
				}
				polls += rep.Polls
				conservative += rep.Conservative
				invalidated += rep.Invalidated
			}
			b.ReportMetric(float64(polls)/float64(b.N), "polls/op")
			b.ReportMetric(float64(conservative)/float64(b.N), "conservative/op")
			b.ReportMetric(float64(invalidated)/float64(b.N), "invalidated/op")
		})
	}
}

// textPoller hides the connection's StmtPoller extension, forcing the
// invalidator to render and re-parse SQL text for every poll.
type textPoller struct{ c driver.Conn }

func (p textPoller) Query(sql string) (*engine.Result, error) { return p.c.Query(sql) }

// BenchmarkPollPath compares the two ways a polling query reaches the DBMS:
// rendered text (parse + canonicalize per poll, since each cycle's arguments
// produce fresh text) versus the compiled poll plan executing through the
// engine's statement cache (bind only). Every iteration's insert passes the
// pages' local predicates with a category no large-side row matches, so each
// cycle issues exactly one empty existence poll with cycle-unique arguments —
// the worst case for text caching and the best case for templates.
func BenchmarkPollPath(b *testing.B) {
	for _, mode := range []struct {
		name     string
		textOnly bool
	}{{"text", true}, {"prepared", false}} {
		b.Run(mode.name, func(b *testing.B) {
			db := engine.NewDatabase()
			if _, err := db.ExecScript(demoapp.DefaultSchemaSQL()); err != nil {
				b.Fatal(err)
			}
			conn, err := driver.DirectDriver{DB: db}.Connect("")
			if err != nil {
				b.Fatal(err)
			}
			var poller invalidator.Poller = conn
			if mode.textOnly {
				poller = textPoller{c: conn}
			}
			m := sniffer.NewQIURLMap()
			inv := invalidator.New(invalidator.Config{
				Map:     m,
				Puller:  invalidator.EngineLogPuller{Log: db.Log()},
				Poller:  poller,
				Ejector: invalidator.FuncEjector(func([]string) error { return nil }),
			})
			if _, err := inv.Cycle(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 100; i++ {
				sql := fmt.Sprintf(
					"SELECT small.id FROM small, large WHERE small.cat = large.cat AND small.id > %d", i)
				m.Record(fmt.Sprintf("page-%d", i), "s", int64(i), []sniffer.QueryInstance{{SQL: sql}})
			}
			if _, err := inv.Cycle(); err != nil {
				b.Fatal(err)
			}
			// The driving insert executes prepared in both modes, so the
			// timed difference isolates the poll path.
			ins, err := db.Prepare("INSERT INTO small VALUES ($1, $2, 'x')")
			if err != nil {
				b.Fatal(err)
			}
			before := db.StmtCacheStats()
			var polls, prepared int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ins.Exec([]mem.Value{mem.Int(int64(2_000_000 + i)), mem.Int(int64(100 + i))})
				rep, err := inv.Cycle()
				if err != nil {
					b.Fatal(err)
				}
				if rep.Invalidated != 0 {
					b.Fatal("population must stay constant")
				}
				polls += rep.Polls
				prepared += rep.PollsPrepared
			}
			b.StopTimer()
			st := db.StmtCacheStats()
			b.ReportMetric(float64(polls)/float64(b.N), "polls/op")
			b.ReportMetric(float64(prepared)/float64(b.N), "prepared/op")
			if hits, misses := st.TemplateHits-before.TemplateHits, st.TemplateMisses-before.TemplateMisses; hits+misses > 0 {
				b.ReportMetric(float64(hits)/float64(hits+misses), "stmt-hit-ratio")
			}
		})
	}
}

// BenchmarkTriggerOverhead quantifies the paper's §4 argument against
// DBMS-resident triggers: update latency with no invalidation at all, with
// CachePortal's asynchronous log-based invalidator (the update itself pays
// nothing), and with trigger-based invalidation running inside the write
// path across a growing cached-page population.
func BenchmarkTriggerOverhead(b *testing.B) {
	setupDB := func(b *testing.B) *engine.Database {
		db := engine.NewDatabase()
		if _, err := db.ExecScript(demoapp.DefaultSchemaSQL()); err != nil {
			b.Fatal(err)
		}
		return db
	}
	pageSQL := func(i int) string {
		return fmt.Sprintf(
			"SELECT small.id FROM small, large WHERE small.cat = large.cat AND small.cat = %d AND small.id > %d",
			i%demoapp.JoinValues, i)
	}
	// Inserts with cat=99 fail every page's local predicate: no page is
	// invalidated, so the population is stable and each mode measures the
	// steady per-update cost its architecture imposes on the write path.
	insert := func(b *testing.B, db *engine.Database, i int) {
		if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO small VALUES (%d, 99, 'x')", 3_000_000+i)); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("no-invalidation", func(b *testing.B) {
		db := setupDB(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			insert(b, db, i)
		}
	})
	b.Run("log-based-update-path", func(b *testing.B) {
		// The update path with CachePortal attached: identical to no
		// invalidation, because the invalidator is outside the DBMS.
		db := setupDB(b)
		m := sniffer.NewQIURLMap()
		inv := invalidator.New(invalidator.Config{
			Map:     m,
			Puller:  invalidator.EngineLogPuller{Log: db.Log()},
			Ejector: invalidator.FuncEjector(func([]string) error { return nil }),
		})
		inv.Cycle()
		for i := 0; i < 500; i++ {
			m.Record(fmt.Sprintf("pg%d", i), "s", int64(i), []sniffer.QueryInstance{{SQL: pageSQL(i)}})
		}
		inv.Cycle()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			insert(b, db, i)
		}
	})
	for _, nPages := range []int{50, 500} {
		b.Run(fmt.Sprintf("trigger-based/pages=%d", nPages), func(b *testing.B) {
			db := setupDB(b)
			m := sniffer.NewQIURLMap()
			tb := invalidator.NewTriggerBased(m, invalidator.FuncEjector(func([]string) error { return nil }))
			for i := 0; i < nPages; i++ {
				m.Record(fmt.Sprintf("pg%d", i), "s", int64(i), []sniffer.QueryInstance{{SQL: pageSQL(i)}})
			}
			tb.IngestMap()
			tb.Attach(db)
			defer tb.Detach()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				insert(b, db, i)
			}
		})
	}
}

// BenchmarkSnifferMapper measures request-to-query mapping throughput.
func BenchmarkSnifferMapper(b *testing.B) {
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	m := sniffer.NewQIURLMap()
	mp := sniffer.NewMapper(rlog, qlog, m)
	base := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := base.Add(time.Duration(i) * time.Millisecond)
		qlog.Append(driver.QueryLogEntry{
			LeaseID: int64(i), SQL: "SELECT * FROM small WHERE cat = 1",
			Receive: t0.Add(100 * time.Microsecond), Deliver: t0.Add(300 * time.Microsecond),
		})
		rlog.Append(appserver.RequestLogEntry{
			Servlet: "light", CacheKey: fmt.Sprintf("site/light?g:cat=%d", i%10),
			Cached: true, Receive: t0, Deliver: t0.Add(500 * time.Microsecond),
			LeaseIDs: []int64{int64(i)},
		})
		mp.Run()
	}
}

// BenchmarkAblationMapperMode compares the paper's pure interval-containment
// attribution (§3.3) with lease-affine attribution under overlapping
// requests: IntervalOnly produces extra (conservative) mappings, which show
// up as extra query instances per page.
func BenchmarkAblationMapperMode(b *testing.B) {
	for _, mode := range []struct {
		name string
		mode sniffer.MapperMode
	}{{"interval-only", sniffer.IntervalOnly}, {"lease-affine", sniffer.LeaseAffine}} {
		b.Run(mode.name, func(b *testing.B) {
			rlog := appserver.NewRequestLog(0)
			qlog := driver.NewQueryLog(0)
			m := sniffer.NewQIURLMap()
			mp := sniffer.NewMapper(rlog, qlog, m)
			mp.Mode = mode.mode
			base := time.Now()
			// Eight perfectly overlapping requests per round, one query each.
			totalQueries := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t0 := base.Add(time.Duration(i) * time.Millisecond)
				for r := 0; r < 8; r++ {
					lease := int64(i*8 + r + 1)
					qlog.Append(driver.QueryLogEntry{
						LeaseID: lease, SQL: fmt.Sprintf("SELECT * FROM t WHERE k = %d", r),
						Receive: t0.Add(10 * time.Microsecond), Deliver: t0.Add(20 * time.Microsecond),
					})
					rlog.Append(appserver.RequestLogEntry{
						Servlet: "s", CacheKey: fmt.Sprintf("pg-%d", r), Cached: true,
						Receive: t0, Deliver: t0.Add(30 * time.Microsecond),
						LeaseIDs: []int64{lease},
					})
				}
				mp.Run()
				pages, _ := m.Snapshot()
				for _, pm := range pages {
					totalQueries += len(pm.Queries)
				}
			}
			b.ReportMetric(float64(totalQueries)/float64(b.N*8), "queries/page")
		})
	}
}

// BenchmarkWireRoundTrip measures one query over the TCP wire protocol.
func BenchmarkWireRoundTrip(b *testing.B) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)"); err != nil {
		b.Fatal(err)
	}
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := wire.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query("SELECT a FROM t"); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Component micro benchmarks
// ---------------------------------------------------------------------------

// BenchmarkParser parses the paper's join query.
func BenchmarkParser(b *testing.B) {
	src := "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 20000 ORDER BY Car.price DESC LIMIT 10"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalize measures query-type extraction.
func BenchmarkCanonicalize(b *testing.B) {
	stmt := sqlparser.MustParse("SELECT * FROM Car WHERE maker = 'Toyota' AND price < 25000 AND model LIKE 'C%'")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sqlparser.Canonicalize(stmt)
	}
}

// BenchmarkEngineSelect measures the paper's light/medium/heavy queries on
// the demo database.
func BenchmarkEngineSelect(b *testing.B) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(demoapp.DefaultSchemaSQL()); err != nil {
		b.Fatal(err)
	}
	queries := map[string]string{
		"light":  "SELECT id, cat, val FROM small WHERE cat = 3",
		"medium": "SELECT id, cat, val FROM large WHERE cat = 3",
		"heavy":  "SELECT small.id, large.id FROM small, large WHERE small.cat = large.cat AND small.cat = 3",
	}
	for name, sql := range queries {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecSQL(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineInsert measures DML + update-log append.
func BenchmarkEngineInsert(b *testing.B) {
	db := engine.NewDatabase()
	db.ExecSQL("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecSQL(fmt.Sprintf("INSERT INTO t VALUES (%d, 'v')", i)); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelInvalidatorBench builds a poll-heavy harness: nTables
// independent join query types over a shared `upd` table, each needing one
// residual poll per update, with an artificial per-poll DBMS latency. This
// is the workload where evaluation parallelism pays: the cycle is
// round-trip-bound, not CPU-bound.
func parallelInvalidatorBench(b *testing.B, workers, nTables int, pollDelay time.Duration) (*invalidator.Invalidator, *engine.Database) {
	b.Helper()
	db := engine.NewDatabase()
	schema := "CREATE TABLE upd (a INT, b INT);\n"
	for i := 0; i < nTables; i++ {
		schema += fmt.Sprintf("CREATE TABLE j%d (a INT, b INT);\nINSERT INTO j%d VALUES (1, 1), (2, 2);\n", i, i)
	}
	if _, err := db.ExecScript(schema); err != nil {
		b.Fatal(err)
	}
	drv := driver.DirectDriver{DB: db}
	if pollDelay > 0 {
		drv.Delay = func(string) time.Duration { return pollDelay }
	}
	nConns := workers
	if nConns < 1 {
		nConns = 1
	}
	conns := make([]invalidator.Poller, nConns)
	for i := range conns {
		c, err := drv.Connect("")
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = c
	}
	var poller invalidator.Poller = conns[0]
	if len(conns) > 1 {
		poller = invalidator.NewConcurrentPoller(conns...)
	}
	m := sniffer.NewQIURLMap()
	inv := invalidator.New(invalidator.Config{
		Map:     m,
		Puller:  invalidator.EngineLogPuller{Log: db.Log()},
		Poller:  poller,
		Ejector: invalidator.FuncEjector(func([]string) error { return nil }),
		Workers: workers,
	})
	if _, err := inv.Cycle(); err != nil { // swallow schema-setup records
		b.Fatal(err)
	}
	for i := 0; i < nTables; i++ {
		// One type per table: the polling queries have distinct SQL, so
		// in-flight dedup cannot collapse them and every unit really polls.
		sql := fmt.Sprintf(
			"SELECT upd.a FROM upd, j%d WHERE upd.a = j%d.a AND upd.b > 5", i, i)
		m.Record(fmt.Sprintf("page-%d", i), "s", int64(i), []sniffer.QueryInstance{{SQL: sql}})
	}
	if _, err := inv.Cycle(); err != nil { // ingest the page mappings
		b.Fatal(err)
	}
	return inv, db
}

// BenchmarkInvalidatorCycleParallel sweeps the worker-pool size on the
// poll-heavy workload (24 types × one 200µs poll each per update). The
// inserted tuple passes every local predicate but joins with nothing, so
// the page population stays constant and each iteration measures one full
// polling cycle.
func BenchmarkInvalidatorCycleParallel(b *testing.B) {
	const nTables = 24
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			inv, db := parallelInvalidatorBench(b, workers, nTables, 200*time.Microsecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// a=999 exists in no j table: every type polls, none match.
				db.ExecSQL(fmt.Sprintf("INSERT INTO upd VALUES (999, %d)", 10+i))
				rep, err := inv.Cycle()
				if err != nil {
					b.Fatal(err)
				}
				if rep.Invalidated != 0 {
					b.Fatal("population must stay constant")
				}
				if rep.Polls != nTables {
					b.Fatalf("polls=%d, want %d", rep.Polls, nTables)
				}
			}
		})
	}
}

// BenchmarkWebCache measures the page cache's hot path.
func BenchmarkWebCache(b *testing.B) {
	c := webcache.NewCache(1024)
	for i := 0; i < 1024; i++ {
		c.Put(&webcache.Entry{Key: fmt.Sprintf("k%d", i), Body: []byte("body"), Servlet: "s"})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(fmt.Sprintf("k%d", i%1024))
	}
}

// BenchmarkWebCacheSharded measures the cache under concurrent mixed
// load (7:1 get:put) at different shard counts; shards=1 is the old
// single-mutex cache.
func BenchmarkWebCacheSharded(b *testing.B) {
	const population = 4096
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c := webcache.NewCacheSharded(population, shards)
			keys := make([]string, population)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%d", i)
				c.Put(&webcache.Entry{Key: keys[i], Body: []byte("body"), Servlet: "s"})
			}
			var goroutineID atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// Stagger goroutines across the key space so they contend
				// the way independent clients would, not in lockstep.
				i := int(goroutineID.Add(1)) * 997
				for pb.Next() {
					k := keys[i%population]
					if i%8 == 0 {
						c.Put(&webcache.Entry{Key: k, Body: []byte("body"), Servlet: "s"})
					} else {
						c.Get(k)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkEndToEnd measures a full request through cache → app server →
// DBMS over real TCP/HTTP, hit and miss paths.
func BenchmarkEndToEnd(b *testing.B) {
	var defs []ServletDef
	for _, d := range demoapp.Servlets("db") {
		defs = append(defs, ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := NewSite(SiteConfig{
		Schema:   demoapp.SchemaSQL(100, 500, 1),
		Servlets: defs,
		Interval: time.Hour, // no background cycles during the benchmark
	})
	if err != nil {
		b.Fatal(err)
	}
	defer site.Close()

	get := func(url string) {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.Run("hit", func(b *testing.B) {
		url := site.CacheURL + "/light?cat=1"
		get(url) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			get(url)
		}
	})
	b.Run("miss", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			site.Cache.Clear()
			get(site.CacheURL + "/light?cat=2")
		}
	})
}
