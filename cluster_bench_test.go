package cacheportal

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/demoapp"
	"repro/internal/workload"
)

// BenchmarkClusterFlashCrowd drives a flash crowd — most of the session
// mix concentrating on one shared page — at a 3-node cluster behind a
// round-robin front tier (clients reach arbitrary edge nodes, the paper's
// distributed-cache topology), with the shard manager off ("static": the
// hot slot has one owner, so two of three arrivals pay a one-hop forward
// to it and that owner serves the whole crowd) and on ("adaptive": the
// manager sees the hot slot and grows its replica set, halving the
// forwarded fraction and splitting the owner's load). Reported per
// sub-benchmark: request p95 latency, each node's cache hit ratio, and
// how many replica migrations the manager performed. ns/op is wall time
// per workload run and is not the interesting number.
func BenchmarkClusterFlashCrowd(b *testing.B) {
	for _, mode := range []struct {
		name    string
		manager bool
	}{{"static", false}, {"adaptive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			site := clusterBenchSite(b, mode.manager)
			urls := make([]string, 0, 8)
			for cat := 0; cat < 8; cat++ {
				urls = append(urls, fmt.Sprintf("%s/light?cat=%d", site.CacheURL, cat))
			}
			var mu sync.Mutex
			var lats []time.Duration // current iteration's latencies
			var total int
			var p50s, p95s []time.Duration
			var record bool
			gen := workload.NewSessionMix(2400, 1, 8, urls...)
			gen.FlashURL = site.CacheURL + "/light?cat=0"
			gen.FlashFraction = 0.9
			gen.OnResult = func(r workload.Result) {
				if r.Err != nil || r.Status >= 500 {
					return
				}
				mu.Lock()
				if record {
					lats = append(lats, r.Latency)
				}
				mu.Unlock()
			}
			// Warm every page once so the crowd measures the serving tier,
			// not cold-start origin fetches; then run the crowd unrecorded
			// long enough for the adaptive manager to see the hot slot and
			// move a replica. Both modes get the same warm-up, so the
			// comparison is steady state vs steady state.
			for _, u := range urls {
				fetchAs(b, u, "")
			}
			gen.Run(500 * time.Millisecond)
			mu.Lock()
			record = true
			mu.Unlock()
			forwards := func() (n float64) {
				snap := site.Obs.Snapshot()
				for i := range site.Caches {
					n += float64(snap.Gauges[fmt.Sprintf("cluster.node%d.forwards_total", i)])
				}
				return n
			}
			fwdBefore := forwards()
			// Each iteration is an independent 500ms run with its own
			// quantiles; the reported figures are medians across iterations,
			// so one run that lands on a GC pause or a scheduler hiccup does
			// not swamp the comparison.
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				gen.Run(500 * time.Millisecond)
				b.StopTimer()
				mu.Lock()
				if len(lats) > 0 {
					sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
					p50s = append(p50s, lats[len(lats)/2])
					p95s = append(p95s, lats[len(lats)*95/100])
					total += len(lats)
					lats = lats[:0]
				}
				mu.Unlock()
				b.StartTimer()
			}
			b.StopTimer()

			if total == 0 {
				b.Fatal("workload produced no successful requests")
			}
			median := func(ds []time.Duration) time.Duration {
				sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
				return ds[len(ds)/2]
			}
			b.ReportMetric(float64(median(p50s))/float64(time.Millisecond), "p50-ms")
			b.ReportMetric(float64(median(p95s))/float64(time.Millisecond), "p95-ms")
			// The structural difference replication buys: the fraction of
			// requests that paid a one-hop peer forward to reach an owner.
			b.ReportMetric((forwards()-fwdBefore)/float64(total), "forwarded-per-req")
			for i, cache := range site.Caches {
				b.ReportMetric(cache.Stats().HitRatio(), fmt.Sprintf("hit-ratio-node%d", i))
			}
			var migrations float64
			if mode.manager {
				migrations = float64(site.Obs.Counter("cluster.manager.replica_migrations_total").Value())
			}
			b.ReportMetric(migrations, "replica-migrations")
			b.ReportMetric(float64(site.ClusterView.Map().ReplicaCount()), "replicas")
		})
	}
}

func clusterBenchSite(b *testing.B, manager bool) *Site {
	b.Helper()
	cc := ClusterConfig{CacheNodes: 3, FrontPolicy: "rr"}
	if manager {
		cc.Manager = true
		cc.ManagerInterval = 50 * time.Millisecond
		cc.MinLoad = 16
	}
	defs := demoapp.Servlets("db")
	servlets := make([]ServletDef, 0, len(defs))
	for _, d := range defs {
		servlets = append(servlets, ServletDef{Meta: d.Meta, Handler: d.Handler})
	}
	site, err := NewSite(SiteConfig{
		Schema:   demoapp.SchemaSQL(100, 400, 1),
		Servlets: servlets,
		Interval: time.Hour, // no invalidation churn; this measures serving
		Cluster:  cc,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(site.Close)
	return site
}
