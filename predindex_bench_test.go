package cacheportal

// BenchmarkRegistryScale is the headline measurement for the predicate
// index (DESIGN.md §5.2.5): per-update invalidation analysis cost as the
// registered-instance population grows. The scan path tests every live
// instance against each delta tuple — cost linear in the population — while
// the index probes hash buckets and sorted runs with the tuple's column
// values, touching only the candidates, so its per-delta cost stays flat.
// The inserted tuple (id=-1, v=2^40) matches no instance's predicate, so
// the population is constant and each iteration isolates pure analysis
// cost: the paper's §2.4 requirement that invalidation checking stay off
// the critical path even for very large registries.

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/invalidator"
	"repro/internal/sniffer"
)

// registryScalePages registers n instances across four templates: equality
// on id, equality on v, equality+range, and a pure range — covering both
// probe structures (hash bucket, sorted run).
func registryScalePages(m *sniffer.QIURLMap, n int) {
	logID := int64(0)
	for i := 0; i < n; i++ {
		var sql string
		switch i % 4 {
		case 0:
			sql = fmt.Sprintf("SELECT v FROM items WHERE id = %d", i)
		case 1:
			sql = fmt.Sprintf("SELECT id FROM items WHERE v = %d", i)
		case 2:
			sql = fmt.Sprintf("SELECT v FROM items WHERE id = %d AND v > %d", i, i%1000)
		default:
			sql = fmt.Sprintf("SELECT id FROM items WHERE v < %d", i)
		}
		logID++
		m.Record(fmt.Sprintf("page-%d", i), "servlet", 1,
			[]sniffer.QueryInstance{{SQL: sql, LogID: logID}})
	}
}

func BenchmarkRegistryScale(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"index", false},
		{"scan", true},
	} {
		for _, insts := range []int{10_000, 100_000, 1_000_000} {
			b.Run(fmt.Sprintf("mode=%s/insts=%d", mode.name, insts), func(b *testing.B) {
				db := engine.NewDatabase()
				if _, err := db.ExecSQL("CREATE TABLE items (id INT, v INT)"); err != nil {
					b.Fatal(err)
				}
				m := sniffer.NewQIURLMap()
				inv := invalidator.New(invalidator.Config{
					Map:              m,
					Puller:           invalidator.EngineLogPuller{Log: db.Log()},
					Ejector:          invalidator.FuncEjector(func([]string) error { return nil }),
					DisablePredIndex: mode.disable,
				})
				if _, err := inv.Cycle(); err != nil { // swallow schema records
					b.Fatal(err)
				}
				registryScalePages(m, insts)
				// Warmup cycle: ingest the population and (in index mode)
				// build the probe structures, outside the timed region.
				db.ExecSQL("INSERT INTO items VALUES (-1, 1099511627776)")
				if _, err := inv.Cycle(); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// id=-1 misses every id bucket, v=2^40 is above every
					// range bound and equality constant: zero candidates,
					// population constant.
					db.ExecSQL("INSERT INTO items VALUES (-1, 1099511627776)")
					rep, err := inv.Cycle()
					if err != nil {
						b.Fatal(err)
					}
					if rep.Invalidated != 0 || rep.Polls != 0 {
						b.Fatalf("population must stay constant: %+v", rep)
					}
				}
			})
		}
	}
}
