package lru

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestGetPutEviction(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a: %d %v", v, ok)
	}
	c.Put("c", 3) // evicts b (a was touched more recently)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a after eviction: %d %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Fatalf("c: %d %v", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("len: %d", c.Len())
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[string, int](2)
	c.Put("a", 1)
	c.Put("a", 10)
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("a: %d", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len: %d", c.Len())
	}
}

func TestGetOrPut(t *testing.T) {
	c := New[string, int](4)
	fills := 0
	fill := func() (int, error) { fills++; return 7, nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrPut("k", fill)
		if err != nil || v != 7 {
			t.Fatalf("GetOrPut: %d %v", v, err)
		}
	}
	if fills != 1 {
		t.Fatalf("fill ran %d times", fills)
	}
	if _, err := c.GetOrPut("bad", func() (int, error) { return 0, errors.New("boom") }); err == nil {
		t.Fatal("fill error not propagated")
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("failed fill must not cache")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses < 2 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}
}

func TestRemoveAndPurge(t *testing.T) {
	c := New[int, int](8)
	c.Put(1, 1)
	c.Put(2, 2)
	if !c.Remove(1) || c.Remove(1) {
		t.Fatal("Remove semantics")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge: %d", c.Len())
	}
	// The list must still be usable after a purge.
	c.Put(3, 3)
	if v, ok := c.Get(3); !ok || v != 3 {
		t.Fatalf("after purge: %d %v", v, ok)
	}
}

func TestConcurrent(t *testing.T) {
	c := New[string, int](16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.Put(k, i)
				c.Get(k)
				if i%50 == 0 {
					c.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("over capacity: %d", c.Len())
	}
}
