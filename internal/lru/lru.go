// Package lru provides a small, thread-safe, bounded LRU map used by the
// statement caches: the engine's prepared-statement cache, the registry's
// template parse cache, and the driver's per-connection handle cache. It is
// deliberately minimal — a doubly linked list over a map — because the
// caches it backs hold at most a few thousand parsed ASTs.
package lru

import "sync"

// Cache is a bounded LRU map from K to V. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	items map[K]*entry[K, V]
	head  *entry[K, V] // most recently used
	tail  *entry[K, V] // least recently used

	hits   int64
	misses int64
}

type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *entry[K, V]
}

// New creates a cache holding at most capacity entries. A capacity <= 0
// defaults to 256.
func New[K comparable, V any](capacity int) *Cache[K, V] {
	if capacity <= 0 {
		capacity = 256
	}
	return &Cache[K, V]{cap: capacity, items: make(map[K]*entry[K, V])}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.moveToFront(e)
	return e.val, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (c *Cache[K, V]) Put(key K, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.val = val
		c.moveToFront(e)
		return
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
	}
}

// GetOrPut returns the cached value for key, or stores and returns the value
// produced by fill. fill runs outside the hit path but under the cache lock,
// so concurrent callers for the same key fill once.
func (c *Cache[K, V]) GetOrPut(key K, fill func() (V, error)) (V, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.hits++
		c.moveToFront(e)
		return e.val, nil
	}
	c.misses++
	val, err := fill()
	if err != nil {
		var zero V
		return zero, err
	}
	e := &entry[K, V]{key: key, val: val}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.items, lru.key)
	}
	return val, nil
}

// Remove deletes key, reporting whether it was present.
func (c *Cache[K, V]) Remove(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.unlink(e)
	delete(c.items, key)
	return true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Cap returns the configured capacity.
func (c *Cache[K, V]) Cap() int { return c.cap }

// Stats returns the cumulative hit/miss counts.
func (c *Cache[K, V]) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache, keeping the hit/miss counters.
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[K]*entry[K, V])
	c.head, c.tail = nil, nil
}

// list plumbing; callers hold c.mu.

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache[K, V]) moveToFront(e *entry[K, V]) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
