package balancer

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// restartableBackend is an HTTP backend that can actually stop listening
// and later rebind the same address — a downed-then-recovered node, as the
// balancer's active re-probe sees one.
type restartableBackend struct {
	addr  string
	hits  int64
	ln    net.Listener
	srv   *http.Server
	ready chan struct{}
}

func newRestartable(t *testing.T) *restartableBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := &restartableBackend{addr: ln.Addr().String()}
	b.start(t, ln)
	return b
}

func (b *restartableBackend) start(t *testing.T, ln net.Listener) {
	t.Helper()
	if ln == nil {
		var err error
		// The freed port can take a moment to become bindable again.
		for i := 0; i < 100; i++ {
			ln, err = net.Listen("tcp", b.addr)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err != nil {
			t.Fatalf("rebind %s: %v", b.addr, err)
		}
	}
	b.ln = ln
	b.srv = &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt64(&b.hits, 1)
		fmt.Fprint(w, "restartable")
	})}
	go b.srv.Serve(ln)
}

func (b *restartableBackend) stop() {
	b.srv.Close()
	b.ln.Close()
}

func (b *restartableBackend) url() string { return "http://" + b.addr }

func TestActiveReprobeRestoresRecoveredBackend(t *testing.T) {
	var aliveHits int64
	alive := newBackend(t, "alive", &aliveHits)
	defer alive.Close()
	flaky := newRestartable(t)

	lb := New(alive.URL, flaky.url())
	// Passive recovery is off the table: once down, only the active probe
	// can bring the backend back.
	lb.RetryAfter = time.Hour
	lb.ProbeInterval = 10 * time.Millisecond
	defer lb.Close()
	srv := httptest.NewServer(lb)
	defer srv.Close()

	flaky.stop()
	// Drive traffic until the balancer trips over the dead backend and
	// marks it down (the unlucky request surfaces as a 502).
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// With RetryAfter an hour out, all traffic now goes to the alive node.
	before := atomic.LoadInt64(&flaky.hits)
	for i := 0; i < 4; i++ {
		resp, _ := http.Get(srv.URL + "/x")
		resp.Body.Close()
	}
	if got := atomic.LoadInt64(&flaky.hits); got != before {
		t.Fatalf("downed backend still receiving traffic (%d -> %d)", before, got)
	}

	// The backend comes back on the same address; the prober must notice
	// and return it to rotation without any passive retry window.
	flaky.start(t, nil)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if atomic.LoadInt64(&flaky.hits) > before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered backend never returned to rotation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	flaky.stop()
}

func TestProbeStopsOnClose(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()
	lb := New(dead.URL)
	lb.ProbeInterval = time.Millisecond
	srv := httptest.NewServer(lb)
	defer srv.Close()
	resp, _ := http.Get(srv.URL + "/x") // trips the failure, starts the prober
	if resp != nil {
		resp.Body.Close()
	}
	lb.Close()
	lb.Close() // idempotent
}

func TestConsistentHashRoutesToOwner(t *testing.T) {
	var c1, c2 int64
	b1 := newBackend(t, "one", &c1)
	defer b1.Close()
	b2 := newBackend(t, "two", &c2)
	defer b2.Close()

	// One slot, owned by the node at b1: every GET must land there.
	m := &cluster.Map{
		Version: 1,
		Slots:   []cluster.Assignment{{Primary: "n1"}},
		Nodes:   []cluster.NodeInfo{{ID: "n1", URL: b1.URL}, {ID: "n2", URL: b2.URL}},
	}
	lb := New(b1.URL, b2.URL)
	lb.Policy = ConsistentHash
	lb.View = cluster.NewView(m)
	defer lb.Close()
	srv := httptest.NewServer(lb)
	defer srv.Close()

	for i := 0; i < 6; i++ {
		get(t, srv.URL+fmt.Sprintf("/page?id=%d", i))
	}
	if c1 != 6 || c2 != 0 {
		t.Fatalf("distribution %d/%d, want all on the owner", c1, c2)
	}

	// Non-GETs are unroutable and fall back to round-robin.
	for i := 0; i < 4; i++ {
		resp, err := http.Post(srv.URL+"/submit", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if c2 == 0 {
		t.Fatalf("POST fallback never used the second backend (%d/%d)", c1, c2)
	}
}

func TestConsistentHashFallsBackWhenOwnerDown(t *testing.T) {
	var c1 int64
	b1 := newBackend(t, "one", &c1)
	defer b1.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close()

	m := &cluster.Map{
		Version: 1,
		Slots:   []cluster.Assignment{{Primary: "n2"}}, // the dead one owns all
		Nodes:   []cluster.NodeInfo{{ID: "n1", URL: b1.URL}, {ID: "n2", URL: dead.URL}},
	}
	lb := New(b1.URL, dead.URL)
	lb.Policy = ConsistentHash
	lb.View = cluster.NewView(m)
	lb.RetryAfter = time.Hour
	lb.ProbeInterval = 0 // no active probe; the test wants it to stay down
	defer lb.Close()
	srv := httptest.NewServer(lb)
	defer srv.Close()

	// First request may 502 while the dead owner gets marked; afterwards
	// everything routes to the surviving backend.
	ok := 0
	for i := 0; i < 6; i++ {
		resp, err := http.Get(srv.URL + "/page")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			ok++
		}
		resp.Body.Close()
	}
	if ok < 5 || atomic.LoadInt64(&c1) < 5 {
		t.Fatalf("survivor served %d requests, %d OK", c1, ok)
	}
}

func TestConsistentHashSpreadsAcrossReplicas(t *testing.T) {
	slow := func(hits *int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			atomic.AddInt64(hits, 1)
			time.Sleep(20 * time.Millisecond)
			fmt.Fprint(w, "ok")
		}))
	}
	var c1, c2 int64
	b1 := slow(&c1)
	defer b1.Close()
	b2 := slow(&c2)
	defer b2.Close()

	m := &cluster.Map{
		Version: 1,
		Slots:   []cluster.Assignment{{Primary: "n1", Replicas: []string{"n2"}}},
		Nodes:   []cluster.NodeInfo{{ID: "n1", URL: b1.URL}, {ID: "n2", URL: b2.URL}},
	}
	lb := New(b1.URL, b2.URL)
	lb.Policy = ConsistentHash
	lb.View = cluster.NewView(m)
	defer lb.Close()
	srv := httptest.NewServer(lb)
	defer srv.Close()

	// A concurrent burst on one hot slot: least-active among the owners
	// pushes the overflow onto the replica while the primary is busy.
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/hot")
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if c1 == 0 || c2 == 0 {
		t.Fatalf("replica set not used: %d/%d", c1, c2)
	}
}
