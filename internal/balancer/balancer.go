// Package balancer implements the traffic balancer in front of the web
// server farm (the paper's Cisco LocalDirector): an HTTP reverse proxy that
// spreads requests over a set of backends, with round-robin and
// least-connections policies and passive health marking.
package balancer

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/httpx"
)

// Policy selects a backend.
type Policy int

// Balancing policies.
const (
	RoundRobin Policy = iota
	LeastConnections
)

type backend struct {
	base    string // e.g. "http://127.0.0.1:8081"
	active  int    // in-flight requests
	healthy bool
	downAt  time.Time
}

// Balancer is an http.Handler proxying to a set of backends.
type Balancer struct {
	// Client performs backend requests; httpx.Default() (the shared pooled
	// client with sane timeouts) when nil.
	Client *http.Client
	// Policy selects backends; RoundRobin by default.
	Policy Policy
	// RetryAfter is how long an unhealthy backend stays out of rotation.
	RetryAfter time.Duration

	mu       sync.Mutex
	backends []*backend
	next     int
}

// New creates a balancer over the given backend base URLs.
func New(backends ...string) *Balancer {
	b := &Balancer{RetryAfter: time.Second}
	for _, url := range backends {
		b.backends = append(b.backends, &backend{base: url, healthy: true})
	}
	return b
}

// Backends returns the configured backend URLs.
func (b *Balancer) Backends() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.backends))
	for i, be := range b.backends {
		out[i] = be.base
	}
	return out
}

// pick selects a backend per policy, skipping unhealthy ones whose retry
// window has not elapsed. It increments the chosen backend's active count.
func (b *Balancer) pick() (*backend, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.backends)
	if n == 0 {
		return nil, fmt.Errorf("balancer: no backends")
	}
	now := time.Now()
	usable := func(be *backend) bool {
		return be.healthy || now.Sub(be.downAt) >= b.RetryAfter
	}
	var chosen *backend
	switch b.Policy {
	case LeastConnections:
		for _, be := range b.backends {
			if !usable(be) {
				continue
			}
			if chosen == nil || be.active < chosen.active {
				chosen = be
			}
		}
	default: // RoundRobin
		for i := 0; i < n; i++ {
			be := b.backends[(b.next+i)%n]
			if usable(be) {
				chosen = be
				b.next = (b.next + i + 1) % n
				break
			}
		}
	}
	if chosen == nil {
		return nil, fmt.Errorf("balancer: all %d backends unhealthy", n)
	}
	chosen.active++
	return chosen, nil
}

func (b *Balancer) release(be *backend, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	be.active--
	if failed {
		be.healthy = false
		be.downAt = time.Now()
	} else {
		be.healthy = true
	}
}

func (b *Balancer) client() *http.Client {
	return httpx.Client(b.Client)
}

// ServeHTTP proxies the request to a chosen backend.
func (b *Balancer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	be, err := b.pick()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	url := be.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		b.release(be, true)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	req.Host = r.Host
	resp, err := b.client().Do(req)
	if err != nil {
		b.release(be, true)
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	b.release(be, false)
}
