// Package balancer implements the traffic balancer in front of the web
// server farm (the paper's Cisco LocalDirector): an HTTP reverse proxy that
// spreads requests over a set of backends, with round-robin,
// least-connections, and consistent-hash policies, passive health marking,
// and active re-probing of downed backends.
package balancer

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/httpx"
)

// Policy selects a backend.
type Policy int

// Balancing policies.
const (
	RoundRobin Policy = iota
	LeastConnections
	// ConsistentHash routes GETs by the same key projection the cache
	// tier places entries with (cluster.RequestRouteKey), so a request
	// lands on the node that owns — and has cached — its page, fragment
	// skeleton probes included. Requires View; spreads a slot's traffic
	// over its whole owner set (least-active among owners), and falls
	// back to round-robin for non-GETs and unroutable requests.
	ConsistentHash
)

type backend struct {
	base    string // e.g. "http://127.0.0.1:8081"
	active  int    // in-flight requests
	healthy bool
	downAt  time.Time
	probing bool // an active re-probe goroutine is running
}

// Balancer is an http.Handler proxying to a set of backends.
type Balancer struct {
	// Client performs backend requests; httpx.Default() (the shared pooled
	// client with sane timeouts) when nil.
	Client *http.Client
	// Policy selects backends; RoundRobin by default.
	Policy Policy
	// RetryAfter is how long an unhealthy backend stays out of rotation
	// for regular traffic (the passive path; active re-probes below bring
	// it back sooner).
	RetryAfter time.Duration
	// ProbeInterval is the base delay of the active re-probe started when
	// a backend is marked down: the prober retries the backend with
	// jittered capped-exponential backoff and restores it on the first
	// response, so a recovered node rejoins promptly instead of waiting
	// for traffic to happen to retry it. <= 0 disables active probing.
	ProbeInterval time.Duration
	// View supplies the placement map for the ConsistentHash policy;
	// backends are matched to map nodes by URL.
	View *cluster.View
	// KeyFn overrides the ConsistentHash key projection
	// (cluster.RequestRouteKey when nil).
	KeyFn func(*http.Request) string

	mu       sync.Mutex
	backends []*backend
	next     int
	stop     chan struct{}
	stopOnce sync.Once
}

// New creates a balancer over the given backend base URLs.
func New(backends ...string) *Balancer {
	b := &Balancer{RetryAfter: time.Second, ProbeInterval: time.Second, stop: make(chan struct{})}
	for _, url := range backends {
		b.backends = append(b.backends, &backend{base: url, healthy: true})
	}
	return b
}

// Close stops any active re-probe goroutines. The balancer keeps serving
// (with passive health marking only); Close is idempotent.
func (b *Balancer) Close() {
	b.stopOnce.Do(func() {
		if b.stop != nil {
			close(b.stop)
		}
	})
}

// Backends returns the configured backend URLs.
func (b *Balancer) Backends() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.backends))
	for i, be := range b.backends {
		out[i] = be.base
	}
	return out
}

// pick selects a backend per policy, skipping unhealthy ones whose retry
// window has not elapsed. It increments the chosen backend's active count.
func (b *Balancer) pick(r *http.Request) (*backend, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.backends)
	if n == 0 {
		return nil, fmt.Errorf("balancer: no backends")
	}
	now := time.Now()
	usable := func(be *backend) bool {
		return be.healthy || now.Sub(be.downAt) >= b.RetryAfter
	}
	var chosen *backend
	switch b.Policy {
	case LeastConnections:
		for _, be := range b.backends {
			if !usable(be) {
				continue
			}
			if chosen == nil || be.active < chosen.active {
				chosen = be
			}
		}
	case ConsistentHash:
		chosen = b.pickHashed(r, usable)
	}
	if chosen == nil { // RoundRobin, and the fallback for every policy
		for i := 0; i < n; i++ {
			be := b.backends[(b.next+i)%n]
			if usable(be) {
				chosen = be
				b.next = (b.next + i + 1) % n
				break
			}
		}
	}
	if chosen == nil {
		return nil, fmt.Errorf("balancer: all %d backends unhealthy", n)
	}
	chosen.active++
	return chosen, nil
}

// pickHashed routes by the cache tier's key projection: least-active among
// the usable backends owning the request's slot. Nil when the request is
// unroutable (non-GET, no view, no owner usable) — the caller falls back
// to round-robin. Caller holds b.mu.
func (b *Balancer) pickHashed(r *http.Request, usable func(*backend) bool) *backend {
	if b.View == nil || r == nil || r.Method != http.MethodGet {
		return nil
	}
	m := b.View.Map()
	if m == nil || m.NumSlots() == 0 {
		return nil
	}
	keyFn := b.KeyFn
	if keyFn == nil {
		keyFn = cluster.RequestRouteKey
	}
	owners := m.Owners(m.Slot(keyFn(r)))
	var chosen *backend
	for _, o := range owners {
		for _, be := range b.backends {
			if be.base != o.URL || !usable(be) {
				continue
			}
			if chosen == nil || be.active < chosen.active {
				chosen = be
			}
		}
	}
	return chosen
}

func (b *Balancer) release(be *backend, failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	be.active--
	if failed {
		be.healthy = false
		be.downAt = time.Now()
		if b.ProbeInterval > 0 && b.stop != nil && !be.probing {
			be.probing = true
			go b.probe(be)
		}
	} else {
		be.healthy = true
	}
}

// probe actively retries a downed backend with jittered backoff until it
// answers — any HTTP response counts as alive (the probe asks about
// reachability, not application health) — or the balancer closes. Without
// it, a recovered backend rejoined only when traffic happened to hit it
// after the RetryAfter window.
func (b *Balancer) probe(be *backend) {
	defer func() {
		b.mu.Lock()
		be.probing = false
		b.mu.Unlock()
	}()
	for attempt := 1; ; attempt++ {
		select {
		case <-b.stop:
			return
		case <-time.After(backoff.Delay(b.ProbeInterval, attempt, 16*b.ProbeInterval)):
		}
		b.mu.Lock()
		alive := be.healthy
		b.mu.Unlock()
		if alive { // traffic already brought it back
			return
		}
		req, err := http.NewRequest(http.MethodHead, be.base+"/", nil)
		if err != nil {
			return
		}
		resp, err := b.client().Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		b.mu.Lock()
		be.healthy = true
		b.mu.Unlock()
		return
	}
}

func (b *Balancer) client() *http.Client {
	return httpx.Client(b.Client)
}

// ServeHTTP proxies the request to a chosen backend.
func (b *Balancer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	be, err := b.pick(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	url := be.base + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequest(r.Method, url, r.Body)
	if err != nil {
		b.release(be, true)
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	req.Host = r.Host
	resp, err := b.client().Do(req)
	if err != nil {
		b.release(be, true)
		http.Error(w, "bad gateway: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	b.release(be, false)
}
