package balancer

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newBackend(t *testing.T, name string, count *int64) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if count != nil {
			atomic.AddInt64(count, 1)
		}
		fmt.Fprint(w, name)
	}))
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	var c1, c2 int64
	b1 := newBackend(t, "one", &c1)
	defer b1.Close()
	b2 := newBackend(t, "two", &c2)
	defer b2.Close()

	lb := httptest.NewServer(New(b1.URL, b2.URL))
	defer lb.Close()

	for i := 0; i < 10; i++ {
		get(t, lb.URL+"/x")
	}
	if c1 != 5 || c2 != 5 {
		t.Fatalf("distribution: %d / %d", c1, c2)
	}
}

func TestNoBackends(t *testing.T) {
	lb := httptest.NewServer(New())
	defer lb.Close()
	resp, _ := http.Get(lb.URL + "/x")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestFailoverSkipsDeadBackend(t *testing.T) {
	var c1 int64
	b1 := newBackend(t, "alive", &c1)
	defer b1.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead.Close() // dead from the start

	lb := New(b1.URL, dead.URL)
	lb.RetryAfter = time.Hour // once marked down, stays down for the test
	srv := httptest.NewServer(lb)
	defer srv.Close()

	// First pass may hit the dead one (502), then it is out of rotation.
	sawGateway := false
	for i := 0; i < 6; i++ {
		resp, err := http.Get(srv.URL + "/x")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusBadGateway {
			sawGateway = true
		}
	}
	if !sawGateway {
		t.Log("dead backend never chosen first; continuing")
	}
	// Now every request lands on the healthy backend.
	before := atomic.LoadInt64(&c1)
	for i := 0; i < 4; i++ {
		if got := get(t, srv.URL+"/x"); got != "alive" {
			t.Fatalf("got %q", got)
		}
	}
	if atomic.LoadInt64(&c1)-before != 4 {
		t.Fatalf("healthy backend hits: %d", c1-before)
	}
}

func TestDeadBackendRetriedAfterWindow(t *testing.T) {
	b1 := newBackend(t, "one", nil)
	defer b1.Close()
	lb := New(b1.URL)
	lb.RetryAfter = 10 * time.Millisecond
	// Mark it down manually.
	lb.mu.Lock()
	lb.backends[0].healthy = false
	lb.backends[0].downAt = time.Now()
	lb.mu.Unlock()
	srv := httptest.NewServer(lb)
	defer srv.Close()

	time.Sleep(20 * time.Millisecond)
	if got := get(t, srv.URL+"/x"); got != "one" {
		t.Fatalf("got %q", got)
	}
	lb.mu.Lock()
	healthy := lb.backends[0].healthy
	lb.mu.Unlock()
	if !healthy {
		t.Fatal("success should restore health")
	}
}

func TestLeastConnectionsPicksIdle(t *testing.T) {
	slowRelease := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-slowRelease
		fmt.Fprint(w, "slow")
	}))
	defer slow.Close()
	var fastCount int64
	fast := newBackend(t, "fast", &fastCount)
	defer fast.Close()

	lb := New(slow.URL, fast.URL)
	lb.Policy = LeastConnections
	srv := httptest.NewServer(lb)
	defer srv.Close()

	// Occupy the slow backend.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		get(t, srv.URL+"/x") // lands on slow (0 active each; slow listed first)
	}()
	time.Sleep(30 * time.Millisecond)
	// With slow busy, least-connections must pick fast every time.
	for i := 0; i < 3; i++ {
		if got := get(t, srv.URL+"/x"); got != "fast" {
			t.Fatalf("got %q", got)
		}
	}
	close(slowRelease)
	wg.Wait()
	if atomic.LoadInt64(&fastCount) != 3 {
		t.Fatalf("fast hits: %d", fastCount)
	}
}

func TestBackendsAccessor(t *testing.T) {
	lb := New("http://a", "http://b")
	got := lb.Backends()
	if len(got) != 2 || got[0] != "http://a" {
		t.Fatalf("backends: %v", got)
	}
}

func TestQueryStringForwarded(t *testing.T) {
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, r.URL.RawQuery)
	}))
	defer b.Close()
	srv := httptest.NewServer(New(b.URL))
	defer srv.Close()
	if got := get(t, srv.URL+"/p?a=1&b=2"); got != "a=1&b=2" {
		t.Fatalf("query: %q", got)
	}
}
