// Package simnet is a discrete-event queueing simulator: an event heap plus
// FIFO service stations. It is the substrate on which internal/configs
// rebuilds the paper's three site architectures (§5) as open queueing
// networks, reproducing the contention phenomena — saturated co-located
// servers, shared-LAN interference from update traffic, middle-tier
// connection overhead — that drive Tables 2 and 3.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Sim is a discrete-event simulation clock. Time is in seconds.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
	Rng    *rand.Rand
}

// New creates a simulator with a deterministic seed.
func New(seed int64) *Sim {
	return &Sim{Rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (>= Now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run processes events until the queue empties or the clock passes until.
func (s *Sim) Run(until float64) {
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.time > until {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.time
		ev.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Exp draws an exponential duration with the given mean.
func (s *Sim) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.Rng.ExpFloat64() * mean
}

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Station is a FIFO queueing station with a fixed number of servers.
type Station struct {
	sim     *Sim
	Name    string
	Servers int

	busy  int
	queue []stationJob

	// Statistics.
	served    int64
	busyTime  float64 // total server-seconds of service delivered
	totalWait float64 // queueing delay (excluding service)
	totalSoj  float64 // sojourn = wait + service
	maxQueue  int
}

type stationJob struct {
	service float64
	arrive  float64
	done    func()
}

// NewStation creates a station with the given number of servers (>= 1).
func NewStation(sim *Sim, name string, servers int) *Station {
	if servers < 1 {
		servers = 1
	}
	return &Station{sim: sim, Name: name, Servers: servers}
}

// Visit enqueues a job needing the given service time; done runs when the
// job completes.
func (st *Station) Visit(service float64, done func()) {
	if service < 0 {
		service = 0
	}
	job := stationJob{service: service, arrive: st.sim.now, done: done}
	if st.busy < st.Servers {
		st.start(job)
		return
	}
	st.queue = append(st.queue, job)
	if len(st.queue) > st.maxQueue {
		st.maxQueue = len(st.queue)
	}
}

func (st *Station) start(job stationJob) {
	st.busy++
	wait := st.sim.now - job.arrive
	st.totalWait += wait
	st.sim.After(job.service, func() {
		st.busy--
		st.served++
		st.busyTime += job.service
		st.totalSoj += wait + job.service
		if len(st.queue) > 0 {
			next := st.queue[0]
			st.queue = st.queue[1:]
			st.start(next)
		}
		if job.done != nil {
			job.done()
		}
	})
}

// QueueLen returns the number of jobs waiting (not in service).
func (st *Station) QueueLen() int { return len(st.queue) }

// Served returns the number of completed jobs.
func (st *Station) Served() int64 { return st.served }

// Utilization returns busy-time per server over elapsed seconds.
func (st *Station) Utilization(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return st.busyTime / (elapsed * float64(st.Servers))
}

// MeanWait returns the average queueing delay of completed jobs.
func (st *Station) MeanWait() float64 {
	if st.served == 0 {
		return 0
	}
	return st.totalWait / float64(st.served)
}

// MeanSojourn returns the average wait+service of completed jobs.
func (st *Station) MeanSojourn() float64 {
	if st.served == 0 {
		return 0
	}
	return st.totalSoj / float64(st.served)
}

// MaxQueue returns the peak queue length observed.
func (st *Station) MaxQueue() int { return st.maxQueue }

// String describes the station for diagnostics.
func (st *Station) String() string {
	return fmt.Sprintf("station %s (servers=%d served=%d)", st.Name, st.Servers, st.served)
}

// Tally accumulates scalar observations.
type Tally struct {
	n     int64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	if t.n == 0 {
		t.min, t.max = x, x
	} else {
		if x < t.min {
			t.min = x
		}
		if x > t.max {
			t.max = x
		}
	}
	t.n++
	t.sum += x
	t.sumSq += x * x
}

// N returns the observation count.
func (t *Tally) N() int64 { return t.n }

// Mean returns the average (0 when empty).
func (t *Tally) Mean() float64 {
	if t.n == 0 {
		return 0
	}
	return t.sum / float64(t.n)
}

// Std returns the sample standard deviation.
func (t *Tally) Std() float64 {
	if t.n < 2 {
		return 0
	}
	v := (t.sumSq - t.sum*t.sum/float64(t.n)) / float64(t.n-1)
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation (0 when empty).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 when empty).
func (t *Tally) Max() float64 { return t.max }
