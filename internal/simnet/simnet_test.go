package simnet

import (
	"math"
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 11) }) // same time: FIFO by seq
	s.At(3, func() { order = append(order, 3) })
	s.Run(10)
	want := []int{1, 11, 2, 3}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order: %v", order)
		}
	}
	if s.Now() != 10 {
		t.Fatalf("now: %f", s.Now())
	}
}

func TestRunStopsAtLimit(t *testing.T) {
	s := New(1)
	fired := false
	s.At(5, func() { fired = true })
	s.Run(4)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if s.Now() != 4 {
		t.Fatalf("now: %f", s.Now())
	}
	s.Run(6)
	if !fired {
		t.Fatal("event not fired after extending horizon")
	}
}

func TestAfterAndPastScheduling(t *testing.T) {
	s := New(1)
	var at float64 = -1
	s.After(2.5, func() { at = s.Now() })
	s.Run(10)
	if at != 2.5 {
		t.Fatalf("at: %f", at)
	}
	// Scheduling in the past clamps to now.
	s.At(1, func() { at = s.Now() })
	s.Run(20)
	if at != 10 {
		t.Fatalf("past event at: %f", at)
	}
}

func TestStationFIFOSingleServer(t *testing.T) {
	s := New(1)
	st := NewStation(s, "cpu", 1)
	var done []float64
	for i := 0; i < 3; i++ {
		st.Visit(1.0, func() { done = append(done, s.Now()) })
	}
	s.Run(100)
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(done[i]-w) > 1e-9 {
			t.Fatalf("done: %v", done)
		}
	}
	if st.Served() != 3 {
		t.Fatalf("served: %d", st.Served())
	}
	// Waits: 0, 1, 2 → mean 1.
	if math.Abs(st.MeanWait()-1) > 1e-9 {
		t.Fatalf("mean wait: %f", st.MeanWait())
	}
	if math.Abs(st.MeanSojourn()-2) > 1e-9 {
		t.Fatalf("mean sojourn: %f", st.MeanSojourn())
	}
}

func TestStationMultiServer(t *testing.T) {
	s := New(1)
	st := NewStation(s, "cpu", 2)
	var done []float64
	for i := 0; i < 4; i++ {
		st.Visit(1.0, func() { done = append(done, s.Now()) })
	}
	s.Run(100)
	// Two at t=1, two at t=2.
	if math.Abs(done[1]-1) > 1e-9 || math.Abs(done[3]-2) > 1e-9 {
		t.Fatalf("done: %v", done)
	}
	if st.MaxQueue() != 2 {
		t.Fatalf("max queue: %d", st.MaxQueue())
	}
}

func TestStationUtilization(t *testing.T) {
	s := New(1)
	st := NewStation(s, "cpu", 1)
	st.Visit(3, nil)
	s.Run(10)
	if math.Abs(st.Utilization(10)-0.3) > 1e-9 {
		t.Fatalf("util: %f", st.Utilization(10))
	}
}

// M/M/1 sanity: with λ=0.5, μ=1 the mean sojourn is 1/(μ-λ) = 2.
func TestMM1MeanSojourn(t *testing.T) {
	s := New(42)
	st := NewStation(s, "mm1", 1)
	var tally Tally
	var arrive func()
	lambda := 0.5
	arrive = func() {
		start := s.Now()
		st.Visit(s.Exp(1.0), func() { tally.Add(s.Now() - start) })
		s.After(s.Exp(1/lambda), arrive)
	}
	s.After(s.Exp(1/lambda), arrive)
	s.Run(40000)
	got := tally.Mean()
	if got < 1.8 || got > 2.2 {
		t.Fatalf("M/M/1 sojourn = %f, want ≈2 (n=%d)", got, tally.N())
	}
}

// An overloaded station's sojourn grows with the run length — the
// saturation regime the Conf I experiments rely on.
func TestOverloadGrowsWithHorizon(t *testing.T) {
	mean := func(horizon float64) float64 {
		s := New(7)
		st := NewStation(s, "sat", 1)
		var tally Tally
		var arrive func()
		arrive = func() {
			start := s.Now()
			st.Visit(s.Exp(1.0), func() { tally.Add(s.Now() - start) })
			s.After(s.Exp(1/1.5), arrive) // λ=1.5 > μ=1
		}
		s.After(0, arrive)
		s.Run(horizon)
		return tally.Mean()
	}
	short := mean(100)
	long := mean(400)
	if long < 2*short {
		t.Fatalf("saturation should scale with horizon: %f vs %f", short, long)
	}
}

func TestExpZeroMean(t *testing.T) {
	s := New(1)
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestNegativeServiceClamped(t *testing.T) {
	s := New(1)
	st := NewStation(s, "cpu", 1)
	fired := false
	st.Visit(-5, func() { fired = true })
	s.Run(1)
	if !fired {
		t.Fatal("job with clamped service never completed")
	}
}

func TestTally(t *testing.T) {
	var ty Tally
	if ty.Mean() != 0 || ty.Std() != 0 {
		t.Fatal("empty tally")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		ty.Add(x)
	}
	if ty.N() != 4 || ty.Mean() != 2.5 || ty.Min() != 1 || ty.Max() != 4 {
		t.Fatalf("tally: %+v", ty)
	}
	if math.Abs(ty.Std()-1.2909944) > 1e-6 {
		t.Fatalf("std: %f", ty.Std())
	}
}

func TestDeterministicSeeding(t *testing.T) {
	run := func() float64 {
		s := New(99)
		st := NewStation(s, "x", 1)
		var tally Tally
		var arrive func()
		arrive = func() {
			start := s.Now()
			st.Visit(s.Exp(0.1), func() { tally.Add(s.Now() - start) })
			s.After(s.Exp(0.2), arrive)
		}
		s.After(0, arrive)
		s.Run(50)
		return tally.Mean()
	}
	if run() != run() {
		t.Fatal("same seed must give identical results")
	}
}

func TestResourceAcquireRelease(t *testing.T) {
	s := New(1)
	r := NewResource(s, "threads", 2)
	order := []int{}
	acquire := func(id int, hold float64) {
		r.Acquire(func() {
			order = append(order, id)
			s.After(hold, r.Release)
		})
	}
	s.At(0, func() { acquire(1, 5) })
	s.At(0, func() { acquire(2, 5) })
	s.At(1, func() { acquire(3, 1) }) // must wait until t=5
	s.Run(100)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("order: %v", order)
	}
	if r.InUse() != 0 || r.Waiting() != 0 {
		t.Fatalf("state: inUse=%d waiting=%d", r.InUse(), r.Waiting())
	}
	if r.MeanWait() <= 0 {
		t.Fatalf("mean wait: %f", r.MeanWait())
	}
	if r.MaxQueue() != 1 {
		t.Fatalf("max queue: %d", r.MaxQueue())
	}
}

func TestResourceHoldAcrossStations(t *testing.T) {
	// The starvation pattern: a held unit blocks others even while its
	// holder waits at a station.
	s := New(1)
	r := NewResource(s, "conn", 1)
	cpu := NewStation(s, "cpu", 1)
	var secondStarted float64 = -1
	s.At(0, func() {
		r.Acquire(func() {
			cpu.Visit(10, func() { r.Release() })
		})
	})
	s.At(1, func() {
		r.Acquire(func() {
			secondStarted = s.Now()
			r.Release()
		})
	})
	s.Run(100)
	if secondStarted != 10 {
		t.Fatalf("second acquire at %f, want 10", secondStarted)
	}
}

func TestResourceReleasePanicsWithoutAcquire(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s := New(1)
	NewResource(s, "x", 1).Release()
}

func TestResourceCapacityClamped(t *testing.T) {
	s := New(1)
	r := NewResource(s, "x", 0)
	if r.Capacity != 1 {
		t.Fatalf("capacity: %d", r.Capacity)
	}
}

func TestStationStringAndQueueLen(t *testing.T) {
	s := New(1)
	st := NewStation(s, "db", 0) // clamps to 1
	if st.Servers != 1 {
		t.Fatalf("servers: %d", st.Servers)
	}
	st.Visit(5, nil)
	st.Visit(5, nil)
	if st.QueueLen() != 1 {
		t.Fatalf("queue: %d", st.QueueLen())
	}
	if st.String() == "" {
		t.Fatal("string")
	}
	if st.Utilization(0) != 0 || st.MeanWait() != 0 || st.MeanSojourn() != 0 {
		t.Fatal("stats before completion")
	}
}
