package simnet

// Resource is a counted resource (worker threads, connections, memory
// slots) that jobs hold across multiple service visits — unlike a Station,
// whose server is released the moment service completes. Holding a unit
// while waiting on another station is what models the paper's observation
// that "processes holding essential system resources, such as memory and
// network connection, while waiting for query results" starve the
// web/application servers (§5.3.1).
type Resource struct {
	sim      *Sim
	Name     string
	Capacity int

	inUse   int
	waiters []waiter

	granted   int64
	totalWait float64
	maxQueue  int
}

type waiter struct {
	arrive float64
	fn     func()
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(sim *Sim, name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{sim: sim, Name: name, Capacity: capacity}
}

// Acquire requests one unit; fn runs (possibly immediately) once granted.
// The holder must call Release exactly once.
func (r *Resource) Acquire(fn func()) {
	if r.inUse < r.Capacity {
		r.inUse++
		r.granted++
		fn()
		return
	}
	r.waiters = append(r.waiters, waiter{arrive: r.sim.now, fn: fn})
	if len(r.waiters) > r.maxQueue {
		r.maxQueue = len(r.waiters)
	}
}

// Release returns one unit, waking the longest-waiting acquirer.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.granted++
		r.totalWait += r.sim.now - w.arrive
		// Hand the unit straight to the waiter (inUse stays constant).
		w.fn()
		return
	}
	r.inUse--
	if r.inUse < 0 {
		panic("simnet: Resource.Release without Acquire")
	}
}

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Waiting returns the number of blocked acquirers.
func (r *Resource) Waiting() int { return len(r.waiters) }

// MeanWait returns the average time acquirers spent blocked.
func (r *Resource) MeanWait() float64 {
	if r.granted == 0 {
		return 0
	}
	return r.totalWait / float64(r.granted)
}

// MaxQueue returns the peak number of simultaneous waiters.
func (r *Resource) MaxQueue() int { return r.maxQueue }
