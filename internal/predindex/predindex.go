// Package predindex implements an in-memory predicate index over bound
// query instances, the core move of the related invalidation literature
// (Ji et al.'s transparent invalidation, Łopuszański's single-table
// algorithm): instead of testing every cached query instance against every
// write, the instances' bound WHERE constants are indexed so a write's
// column value probes the index and yields exactly the instances whose
// predicate it can satisfy.
//
// One Index covers one predicate shape: a comparison `<delta column> op
// <bound constant>` shared by every instance of a query type for one
// occurrence of the updated table. Entries are the instances; each carries
// the constant its placeholder was bound with. A probe with the delta
// tuple's column value t partitions the entries into:
//
//   - Certain  — the comparison (t op constant) is definitely TRUE under
//     SQL semantics. Equality probes answer from a hash bucket, range
//     probes from sorted runs with binary search; both are sub-linear in
//     the number of entries.
//   - Residual — the index cannot decide the comparison exactly and the
//     caller must evaluate it the slow way. This is how cross-kind
//     comparisons (string constant probed with an int, which the engine
//     rejects with an error → conservative invalidation) and entries
//     registered via AddResidual keep exact scan-equivalence: the index
//     never guesses, it hands the hard cases back.
//
// Everything else — entries whose comparison is definitely FALSE or
// UNKNOWN (NULL operands) — is simply not returned, which is the whole
// point: a probe costs O(log²n + answer) instead of O(n).
//
// Range entries live in a logarithmic structure (the Bentley–Saxe method):
// a small unsorted buffer plus O(log n) sorted runs, merged geometrically,
// so Add stays amortized O(log n) and no probe ever linear-scans more than
// the constant-size buffer. Removal writes a tombstone; every run record
// carries the sequence number of the member incarnation that created it,
// so stale records from remove/re-add churn are filtered exactly and
// compacted away once they outnumber the live half.
//
// The index is not goroutine-safe; callers serialize mutation against
// probing (the invalidator guards it with one RWMutex).
package predindex

import (
	"cmp"
	"math"
	"sort"

	"repro/internal/mem"
)

// Op is the comparison operator of the indexed predicate, with the probe
// value on the left: an entry with constant a matches probe value t iff
// (t op a) is TRUE.
type Op int

// Supported comparison shapes. Inequality (<>) is deliberately absent: its
// answer set is "everything but one bucket", which a probe cannot return
// sub-linearly — such predicates stay on the caller's scan path.
const (
	Eq Op = iota
	Lt
	LtEq
	Gt
	GtEq
)

// String names the operator (probe value on the left).
func (op Op) String() string {
	switch op {
	case Eq:
		return "="
	case Lt:
		return "<"
	case LtEq:
		return "<="
	case Gt:
		return ">"
	case GtEq:
		return ">="
	default:
		return "Op(?)"
	}
}

// Mirror flips the operator to the other side of the comparison: if the
// source predicate was written `<constant> op <column>`, indexing it under
// op.Mirror() restores the probe-on-the-left convention.
func (op Op) Mirror() Op {
	switch op {
	case Lt:
		return Gt
	case LtEq:
		return GtEq
	case Gt:
		return Lt
	case GtEq:
		return LtEq
	default:
		return op
	}
}

// Interval reports whether the operator needs the sorted-run (interval)
// structure rather than hash buckets.
func (op Op) Interval() bool { return op != Eq }

// family partitions constants by comparison behavior: SQL comparison is
// total within a family (ints and floats coerce to one numeric family) and
// errors across families, which is what routes cross-family probes to the
// Residual set.
type family int8

const (
	famNull family = iota // NULL constant: comparison is never TRUE, never an error
	famNum                // int/float
	famStr
	famBool
	famResidual // AddResidual entries and NaN: always handed back to the caller
)

// familyOf classifies a value. NaN lands in famResidual: mem.Compare
// reports NaN equal to everything (three-way float compare), an order no
// index structure can honor, so NaN constants are handed back for exact
// evaluation.
func familyOf(v mem.Value) family {
	switch v.Kind {
	case mem.KindInt:
		return famNum
	case mem.KindFloat:
		if math.IsNaN(v.F) {
			return famResidual
		}
		return famNum
	case mem.KindString:
		return famStr
	case mem.KindBool:
		return famBool
	default:
		return famNull
	}
}

// numKey folds a numeric value to the float64 key mem.Compare compares by,
// normalizing -0 so hashing agrees with comparison.
func numKey(v mem.Value) float64 {
	var f float64
	if v.Kind == mem.KindInt {
		f = float64(v.I)
	} else {
		f = v.F
	}
	if f == 0 {
		return 0
	}
	return f
}

// member is the index's record of one entry.
type member struct {
	val mem.Value
	fam family
	// seq identifies this incarnation of the entry: every Add assigns a
	// fresh sequence number, and range records carry the sequence of the
	// incarnation that wrote them. A record is live iff its sequence
	// matches the member's — remove/re-add churn can leave any number of
	// stale records behind and none of them validates.
	seq uint64
	// inBuf marks range entries whose record still sits in the unsorted
	// buffer (so Remove can delete it in place instead of tombstoning).
	inBuf bool
}

// Result receives a probe's answer. Reuse one across probes (Reset) to
// keep the hot path allocation-free.
type Result[E comparable] struct {
	Certain  []E // (t op constant) definitely TRUE
	Residual []E // caller must evaluate exactly (possible error path)
}

// Reset empties the result for reuse, keeping capacity.
func (r *Result[E]) Reset() {
	r.Certain = r.Certain[:0]
	r.Residual = r.Residual[:0]
}

// Stats describes an index's physical state (observability and tests).
type Stats struct {
	Members int // live entries
	Buckets int // distinct hash buckets (Eq)
	Runs    int // sorted runs across both ordered families (range)
	RunLen  int // records in sorted runs incl. tombstoned ones
	Buffer  int // unsorted buffered records
	Dead    int // stale run records awaiting compaction
}

// Index is a predicate index for one comparison shape. The zero value is
// not usable; call New.
type Index[E comparable] struct {
	op      Op
	members map[E]member
	seq     uint64

	// Eq structures: one typed bucket map per family.
	numBuckets  map[float64]map[E]struct{}
	strBuckets  map[string]map[E]struct{}
	boolBuckets map[bool]map[E]struct{}

	// Range structures: one logarithmic slab per ordered family.
	numSlab slab[float64, E]
	strSlab slab[string, E]

	// Per-family membership, for emitting cross-family entries as
	// Residual without touching the whole members map. boolMembers also
	// answers range probes over booleans (no slab: handed back whole).
	numMembers, strMembers, boolMembers map[E]struct{}
	residualAlways                      map[E]struct{}
}

// New creates an empty index for one comparison shape.
func New[E comparable](op Op) *Index[E] {
	ix := &Index[E]{
		op:             op,
		members:        make(map[E]member),
		numMembers:     make(map[E]struct{}),
		strMembers:     make(map[E]struct{}),
		boolMembers:    make(map[E]struct{}),
		residualAlways: make(map[E]struct{}),
	}
	if op == Eq {
		ix.numBuckets = make(map[float64]map[E]struct{})
		ix.strBuckets = make(map[string]map[E]struct{})
		ix.boolBuckets = make(map[bool]map[E]struct{})
	}
	return ix
}

// Op returns the index's comparison operator.
func (ix *Index[E]) Op() Op { return ix.op }

// Len returns the number of live entries.
func (ix *Index[E]) Len() int { return len(ix.members) }

// Stats snapshots the physical structure.
func (ix *Index[E]) Stats() Stats {
	return Stats{
		Members: len(ix.members),
		Buckets: len(ix.numBuckets) + len(ix.strBuckets) + len(ix.boolBuckets),
		Runs:    len(ix.numSlab.runs) + len(ix.strSlab.runs),
		RunLen:  ix.numSlab.total + ix.strSlab.total,
		Buffer:  len(ix.numSlab.buf) + len(ix.strSlab.buf),
		Dead:    ix.numSlab.dead + ix.strSlab.dead,
	}
}

// live reports whether a run record belongs to the current incarnation of
// its entry.
func (ix *Index[E]) live(e E, seq uint64) bool {
	m, ok := ix.members[e]
	return ok && m.seq == seq
}

// Add registers entry e with its bound constant. Adding a present entry is
// a no-op (entries are identified by value; re-registration carries the
// same constant).
func (ix *Index[E]) Add(e E, a mem.Value) {
	if _, ok := ix.members[e]; ok {
		return
	}
	ix.seq++
	fam := familyOf(a)
	m := member{val: a, fam: fam, seq: ix.seq}
	switch fam {
	case famNull:
		// NULL constants: (t op NULL) is UNKNOWN for every t — never TRUE,
		// never an error. The entry is tracked for Len/Remove symmetry but
		// participates in no structure.
	case famNum:
		ix.numMembers[e] = struct{}{}
		if ix.op == Eq {
			bucketAdd(ix.numBuckets, numKey(a), e)
		} else {
			m.inBuf = true
			ix.members[e] = m // slab flush may flip inBuf; store first
			ix.numSlab.add(rec[float64, E]{k: numKey(a), e: e, seq: m.seq}, ix)
			return
		}
	case famStr:
		ix.strMembers[e] = struct{}{}
		if ix.op == Eq {
			bucketAdd(ix.strBuckets, a.S, e)
		} else {
			m.inBuf = true
			ix.members[e] = m
			ix.strSlab.add(rec[string, E]{k: a.S, e: e, seq: m.seq}, ix)
			return
		}
	case famBool:
		ix.boolMembers[e] = struct{}{}
		if ix.op == Eq {
			bucketAdd(ix.boolBuckets, a.B, e)
		}
		// Range over booleans: rare enough that the whole family is
		// answered as Residual; no structure to maintain.
	case famResidual:
		ix.residualAlways[e] = struct{}{}
	}
	ix.members[e] = m
}

// AddResidual registers an entry the index must always hand back to the
// caller (e.g. an instance whose placeholder ordinal is out of range, so
// evaluation errors for every tuple).
func (ix *Index[E]) AddResidual(e E) {
	if _, ok := ix.members[e]; ok {
		return
	}
	ix.seq++
	ix.members[e] = member{fam: famResidual, seq: ix.seq}
	ix.residualAlways[e] = struct{}{}
}

// Remove drops an entry. Removing an absent entry is a no-op. Records in
// sorted runs become tombstones filtered on probe and compacted once they
// outnumber the live half.
func (ix *Index[E]) Remove(e E) {
	m, ok := ix.members[e]
	if !ok {
		return
	}
	delete(ix.members, e)
	switch m.fam {
	case famNum:
		delete(ix.numMembers, e)
		if ix.op == Eq {
			bucketDel(ix.numBuckets, numKey(m.val), e)
		} else {
			ix.numSlab.remove(e, m, ix)
		}
	case famStr:
		delete(ix.strMembers, e)
		if ix.op == Eq {
			bucketDel(ix.strBuckets, m.val.S, e)
		} else {
			ix.strSlab.remove(e, m, ix)
		}
	case famBool:
		delete(ix.boolMembers, e)
		if ix.op == Eq {
			bucketDel(ix.boolBuckets, m.val.B, e)
		}
	case famResidual:
		delete(ix.residualAlways, e)
	}
}

// Probe answers for value t: entries whose (t op constant) is certainly
// TRUE into res.Certain, entries needing exact caller evaluation into
// res.Residual. Entries whose comparison is FALSE or UNKNOWN are omitted.
// res is appended to; call res.Reset() first to reuse it.
func (ix *Index[E]) Probe(t mem.Value, res *Result[E]) {
	// AddResidual entries error before the comparison is even reached
	// (unbound placeholder), so they are residual for every t, NULL
	// included.
	for e := range ix.residualAlways {
		res.Residual = append(res.Residual, e)
	}
	tf := familyOf(t)
	switch tf {
	case famNull:
		// (NULL op a) is UNKNOWN against every constant of every family:
		// nothing matches, nothing errors.
		return
	case famResidual:
		// A NaN probe defeats ordering (mem.Compare calls it equal to
		// every number); hand every entry back for exact evaluation.
		appendAll(ix.numMembers, &res.Residual)
		appendAll(ix.strMembers, &res.Residual)
		appendAll(ix.boolMembers, &res.Residual)
		return
	}
	// Cross-family comparison errors in the engine (mem.Compare rejects
	// it), which the caller turns into a conservative invalidation — so
	// every member of a different ordered family is residual.
	if tf != famNum {
		appendAll(ix.numMembers, &res.Residual)
	}
	if tf != famStr {
		appendAll(ix.strMembers, &res.Residual)
	}
	if tf != famBool {
		appendAll(ix.boolMembers, &res.Residual)
	}
	switch tf {
	case famNum:
		if ix.op == Eq {
			appendAll(ix.numBuckets[numKey(t)], &res.Certain)
			return
		}
		ix.numSlab.probe(ix.op, numKey(t), ix, res)
	case famStr:
		if ix.op == Eq {
			appendAll(ix.strBuckets[t.S], &res.Certain)
			return
		}
		ix.strSlab.probe(ix.op, t.S, ix, res)
	case famBool:
		if ix.op == Eq {
			appendAll(ix.boolBuckets[t.B], &res.Certain)
			return
		}
		// Range over booleans is well-defined (false < true) but
		// unindexed; hand the family back for exact evaluation.
		appendAll(ix.boolMembers, &res.Residual)
	}
}

func appendAll[E comparable](set map[E]struct{}, out *[]E) {
	for e := range set {
		*out = append(*out, e)
	}
}

func bucketAdd[K comparable, E comparable](buckets map[K]map[E]struct{}, k K, e E) {
	b, ok := buckets[k]
	if !ok {
		b = make(map[E]struct{})
		buckets[k] = b
	}
	b[e] = struct{}{}
}

func bucketDel[K comparable, E comparable](buckets map[K]map[E]struct{}, k K, e E) {
	b, ok := buckets[k]
	if !ok {
		return
	}
	delete(b, e)
	if len(b) == 0 {
		delete(buckets, k)
	}
}

// match reports whether (t op a) holds within one ordered family. Go's <
// on float64 and string is exactly mem.Compare's order for those kinds.
func match[K cmp.Ordered](op Op, t, a K) bool {
	switch op {
	case Lt:
		return t < a
	case LtEq:
		return t <= a
	case Gt:
		return t > a
	default:
		return t >= a
	}
}

// ---------------------------------------------------------------------------
// Logarithmic range slab (Bentley–Saxe)
// ---------------------------------------------------------------------------

// rec is one range record: the sort key, the entry, and the incarnation
// sequence that wrote it.
type rec[K cmp.Ordered, E comparable] struct {
	k   K
	e   E
	seq uint64
}

// bufCap bounds the unsorted buffer: the only part of a range probe that
// is scanned linearly, and the unit of the geometric merge schedule.
const bufCap = 64

// slab holds one ordered family's records: O(log n) sorted runs (kept
// largest-first, each at least twice the size of the next) plus a bounded
// unsorted buffer. Adds cost amortized O(log n); probes binary search each
// run.
type slab[K cmp.Ordered, E comparable] struct {
	runs  [][]rec[K, E]
	buf   []rec[K, E]
	total int // records across runs, including tombstoned ones
	dead  int // tombstoned records across runs
}

func (s *slab[K, E]) add(r rec[K, E], ix *Index[E]) {
	s.buf = append(s.buf, r)
	if len(s.buf) >= bufCap {
		s.flush(ix)
	}
}

// flush sorts the buffer into a new run and restores the geometric run
// invariant by merging from the small end; merged runs drop their
// tombstones. Members moving out of the buffer flip inBuf.
func (s *slab[K, E]) flush(ix *Index[E]) {
	if len(s.buf) == 0 {
		return
	}
	run := make([]rec[K, E], len(s.buf))
	copy(run, s.buf)
	s.buf = s.buf[:0]
	sort.SliceStable(run, func(i, j int) bool { return run[i].k < run[j].k })
	for _, r := range run {
		if m, ok := ix.members[r.e]; ok && m.seq == r.seq {
			m.inBuf = false
			ix.members[r.e] = m
		}
	}
	s.total += len(run)
	s.runs = append(s.runs, run)
	for len(s.runs) >= 2 {
		last := len(s.runs) - 1
		if len(s.runs[last])*2 < len(s.runs[last-1]) {
			break
		}
		merged := mergeRuns(s.runs[last-1], s.runs[last], ix)
		s.total -= len(s.runs[last-1]) + len(s.runs[last]) - len(merged)
		s.runs = s.runs[:last-1]
		s.runs = append(s.runs, merged)
	}
}

// mergeRuns merges two sorted runs, dropping records whose incarnation is
// gone (tombstones).
func mergeRuns[K cmp.Ordered, E comparable](a, b []rec[K, E], ix *Index[E]) []rec[K, E] {
	out := make([]rec[K, E], 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].k < a[i].k {
			out = appendLive(out, b[j], ix)
			j++
		} else {
			out = appendLive(out, a[i], ix)
			i++
		}
	}
	for ; i < len(a); i++ {
		out = appendLive(out, a[i], ix)
	}
	for ; j < len(b); j++ {
		out = appendLive(out, b[j], ix)
	}
	return out
}

func appendLive[K cmp.Ordered, E comparable](out []rec[K, E], r rec[K, E], ix *Index[E]) []rec[K, E] {
	if ix.live(r.e, r.seq) {
		out = append(out, r)
	}
	return out
}

// remove handles the range side of Index.Remove: buffered records are
// deleted in place (the buffer is tiny), run records become tombstones and
// trigger compaction once the dead outnumber the live half. The caller has
// already deleted the member, so ix.live filters the record out.
func (s *slab[K, E]) remove(e E, m member, ix *Index[E]) {
	if m.inBuf {
		for i, r := range s.buf {
			if r.e == e && r.seq == m.seq {
				s.buf[i] = s.buf[len(s.buf)-1]
				s.buf = s.buf[:len(s.buf)-1]
				return
			}
		}
		return
	}
	s.dead++
	if s.dead > bufCap && s.dead*2 > s.total {
		s.compact(ix)
	}
}

// compact rewrites every run without its tombstones and re-establishes the
// geometric largest-first invariant by folding undersized runs together.
func (s *slab[K, E]) compact(ix *Index[E]) {
	live := s.runs[:0]
	for _, run := range s.runs {
		out := run[:0]
		for _, r := range run {
			out = appendLive(out, r, ix)
		}
		if len(out) > 0 {
			live = append(live, out)
		}
	}
	sort.SliceStable(live, func(i, j int) bool { return len(live[i]) > len(live[j]) })
	for len(live) >= 2 {
		last := len(live) - 1
		if len(live[last])*2 < len(live[last-1]) {
			break
		}
		merged := mergeRuns(live[last-1], live[last], ix)
		live = live[:last-1]
		live = append(live, merged)
		sort.SliceStable(live, func(i, j int) bool { return len(live[i]) > len(live[j]) })
	}
	s.runs = live
	s.dead = 0
	s.total = 0
	for _, run := range s.runs {
		s.total += len(run)
	}
}

// probe emits every live record matching (t op k): per run, binary search
// bounds the matching span (a prefix for Gt/GtEq, a suffix for Lt/LtEq);
// the buffer is scanned linearly (≤ bufCap records).
func (s *slab[K, E]) probe(op Op, t K, ix *Index[E], res *Result[E]) {
	for _, run := range s.runs {
		var lo, hi int
		switch op {
		case Gt: // a < t
			lo, hi = 0, sort.Search(len(run), func(i int) bool { return run[i].k >= t })
		case GtEq: // a <= t
			lo, hi = 0, sort.Search(len(run), func(i int) bool { return run[i].k > t })
		case Lt: // a > t
			lo, hi = sort.Search(len(run), func(i int) bool { return run[i].k > t }), len(run)
		default: // LtEq: a >= t
			lo, hi = sort.Search(len(run), func(i int) bool { return run[i].k >= t }), len(run)
		}
		for _, r := range run[lo:hi] {
			if ix.live(r.e, r.seq) {
				res.Certain = append(res.Certain, r.e)
			}
		}
	}
	for _, r := range s.buf {
		if match(op, t, r.k) && ix.live(r.e, r.seq) {
			res.Certain = append(res.Certain, r.e)
		}
	}
}
