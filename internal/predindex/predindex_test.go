package predindex

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// refOutcome is what the engine would decide for (t op a): the comparison
// is TRUE, not TRUE (false/unknown), or an evaluation error.
type refOutcome int

const (
	refMiss refOutcome = iota
	refTrue
	refErr
)

// reference evaluates (t op a) with the engine's semantics: NULL operands
// are UNKNOWN, cross-family comparisons error, everything else follows
// mem.Compare.
func reference(op Op, t, a mem.Value) refOutcome {
	if t.IsNull() || a.IsNull() {
		return refMiss
	}
	c, err := mem.Compare(t, a)
	if err != nil {
		return refErr
	}
	ok := false
	switch op {
	case Eq:
		ok = c == 0
	case Lt:
		ok = c < 0
	case LtEq:
		ok = c <= 0
	case Gt:
		ok = c > 0
	case GtEq:
		ok = c >= 0
	}
	if ok {
		return refTrue
	}
	return refMiss
}

// checkProbe asserts the index contract for one probe against the
// reference model over the current live entries:
//
//   - Certain ⊆ {e : (t op aₑ) is TRUE}          (soundness)
//   - {e : TRUE or error} ⊆ Certain ∪ Residual  (completeness)
//   - no entry appears twice, none is removed or a stranger
func checkProbe(t *testing.T, ix *Index[int], probe mem.Value, vals map[int]mem.Value, residual map[int]bool) {
	t.Helper()
	var res Result[int]
	ix.Probe(probe, &res)

	seen := make(map[int]bool)
	for _, e := range res.Certain {
		if seen[e] {
			t.Fatalf("probe %v: entry %d returned twice", probe, e)
		}
		seen[e] = true
		if residual[e] {
			t.Fatalf("probe %v: residual-always entry %d in Certain", probe, e)
		}
		a, ok := vals[e]
		if !ok {
			t.Fatalf("probe %v: unknown/removed entry %d in Certain", probe, e)
		}
		if out := reference(ix.Op(), probe, a); out != refTrue {
			t.Fatalf("probe %v: Certain entry %d (arg %v) is not a certain match (ref=%d)", probe, e, a, out)
		}
	}
	for _, e := range res.Residual {
		if seen[e] {
			t.Fatalf("probe %v: entry %d in both Certain and Residual", probe, e)
		}
		seen[e] = true
		if _, ok := vals[e]; !ok && !residual[e] {
			t.Fatalf("probe %v: unknown/removed entry %d in Residual", probe, e)
		}
	}
	for e, a := range vals {
		out := reference(ix.Op(), probe, a)
		if (out == refTrue || out == refErr) && !seen[e] {
			t.Fatalf("probe %v op %v: entry %d (arg %v, ref=%d) missing from probe result", probe, ix.Op(), e, a, out)
		}
	}
	for e := range residual {
		if !seen[e] {
			t.Fatalf("probe %v: residual-always entry %d missing", probe, e)
		}
	}
}

// randValue draws values that exercise every family, the int/float fold
// (including ints beyond float64 precision, which mem.Compare folds), the
// -0/+0 seam, and NULL.
func randValue(r *rand.Rand) mem.Value {
	switch r.Intn(12) {
	case 0:
		return mem.Null()
	case 1:
		return mem.Bool(r.Intn(2) == 0)
	case 2, 3:
		return mem.Str(fmt.Sprintf("s%02d", r.Intn(30)))
	case 4:
		return mem.Float(0)
	case 5:
		return mem.Float(math.Copysign(0, -1))
	case 6:
		return mem.Int(1<<60 + int64(r.Intn(3)))
	case 7:
		return mem.Float(float64(r.Intn(40)) / 4)
	default:
		return mem.Int(int64(r.Intn(40) - 20))
	}
}

func TestIndexRandomizedAgainstReference(t *testing.T) {
	ops := []Op{Eq, Lt, LtEq, Gt, GtEq}
	for _, op := range ops {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				r := rand.New(rand.NewSource(seed))
				ix := New[int](op)
				vals := make(map[int]mem.Value)    // live entry → arg
				residual := make(map[int]bool)     // live residual-always entries
				removed := make(map[int]mem.Value) // removed entries (for re-add)
				next := 0

				for step := 0; step < 2000; step++ {
					switch x := r.Intn(10); {
					case x < 4: // add fresh
						e := next
						next++
						if r.Intn(20) == 0 {
							ix.AddResidual(e)
							residual[e] = true
						} else {
							v := randValue(r)
							ix.Add(e, v)
							vals[e] = v
						}
					case x < 6 && len(removed) > 0: // re-add a removed entry
						for e, v := range removed {
							delete(removed, e)
							ix.Add(e, v)
							vals[e] = v
							break
						}
					case x < 8: // remove a live entry
						for e, v := range vals {
							delete(vals, e)
							removed[e] = v
							ix.Remove(e)
							break
						}
						for e := range residual {
							if r.Intn(4) == 0 {
								delete(residual, e)
								ix.Remove(e)
							}
							break
						}
					default: // probe
						checkProbe(t, ix, randValue(r), vals, residual)
					}
				}
				// Final sweep: probe every distinct arg value plus NULL.
				checkProbe(t, ix, mem.Null(), vals, residual)
				for _, v := range vals {
					checkProbe(t, ix, v, vals, residual)
				}
				if got, want := ix.Len(), len(vals)+len(residual); got != want {
					t.Fatalf("Len=%d want %d", got, want)
				}
			}
		})
	}
}

// TestIndexMergeAndCompact forces the slab machinery through merges and
// tombstone compaction and re-checks exactness afterwards.
func TestIndexMergeAndCompact(t *testing.T) {
	ix := New[int](LtEq)
	vals := make(map[int]mem.Value)
	for i := 0; i < 4000; i++ {
		v := mem.Int(int64(i % 997))
		ix.Add(i, v)
		vals[i] = v
	}
	if st := ix.Stats(); st.RunLen == 0 || st.Runs == 0 {
		t.Fatalf("expected sorted runs, got %+v", st)
	}
	// Remove two thirds to trigger compaction.
	for i := 0; i < 4000; i++ {
		if i%3 != 0 {
			ix.Remove(i)
			delete(vals, i)
		}
	}
	st := ix.Stats()
	if st.Members != len(vals) {
		t.Fatalf("Members=%d want %d", st.Members, len(vals))
	}
	if st.Dead*2 > st.RunLen {
		t.Fatalf("compaction did not run: %+v", st)
	}
	for _, probe := range []mem.Value{mem.Int(-1), mem.Int(0), mem.Int(500), mem.Int(996), mem.Int(5000), mem.Float(13.5)} {
		checkProbe(t, ix, probe, vals, nil)
	}
	// Duplicate-result trap: remove and re-add the same entry so a stale
	// slab record and a fresh pending record coexist.
	ix.Remove(0)
	ix.Add(0, mem.Int(0))
	checkProbe(t, ix, mem.Int(997), vals, nil)
}

// TestIndexEqBuckets pins the equality fast path: numerically equal ints
// and floats share a bucket, -0 matches +0, NULL probes match nothing.
func TestIndexEqBuckets(t *testing.T) {
	ix := New[int](Eq)
	vals := map[int]mem.Value{
		1: mem.Int(7),
		2: mem.Float(7),
		3: mem.Float(math.Copysign(0, -1)),
		4: mem.Int(0),
		5: mem.Str("7"),
		6: mem.Null(),
	}
	for e, v := range vals {
		ix.Add(e, v)
	}
	for _, tc := range []struct {
		probe mem.Value
	}{{mem.Float(7)}, {mem.Int(7)}, {mem.Int(0)}, {mem.Float(math.Copysign(0, -1))}, {mem.Str("7")}, {mem.Bool(true)}, {mem.Null()}} {
		checkProbe(t, ix, tc.probe, vals, nil)
	}
	var res Result[int]
	ix.Probe(mem.Float(7), &res)
	if len(res.Certain) != 2 {
		t.Fatalf("probe 7.0: Certain=%v want the int and float entries", res.Certain)
	}
}
