package appserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/fragment"
)

// newFragApp registers a fragmented "home" servlet: a shared "rows"
// fragment querying the database, a private "trim" keyed on the session
// cookie, under a static template.
func newFragApp(t *testing.T) (*Server, *RequestLog) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE items (id INT PRIMARY KEY, cat INT, val TEXT);
		INSERT INTO items VALUES (1, 0, 'a'), (2, 0, 'b'), (3, 1, 'c');
	`); err != nil {
		t.Fatal(err)
	}
	pool, err := driver.NewPool(driver.NewLoggingDriver(driver.DirectDriver{DB: db}, driver.NewQueryLog(0)), "", 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	reg := driver.NewRegistry()
	reg.Bind("main", pool)
	rlog := NewRequestLog(0)
	srv := NewServer(reg, rlog)
	srv.Fragments = true
	tmpl := []byte("<p>" + fragment.Marker("rows") + "|" + fragment.Marker("trim") + "</p>")
	srv.MustRegister(Meta{Name: "home", Keys: KeySpec{Get: []string{"cat"}, Cookie: []string{"session"}}},
		ServletFunc(func(ctx *Context) (*Page, error) {
			if err := ctx.Fragment("rows", false, func() ([]byte, error) {
				lease, err := ctx.Lease("main")
				if err != nil {
					return nil, err
				}
				defer lease.Release()
				res, err := lease.Query("SELECT val FROM items WHERE cat = " + ctx.Param("cat"))
				if err != nil {
					return nil, err
				}
				var b strings.Builder
				for _, r := range res.Rows {
					b.WriteString(r[0].String())
				}
				return []byte(b.String()), nil
			}); err != nil {
				return nil, err
			}
			if err := ctx.Fragment("trim", true, func() ([]byte, error) {
				return []byte("hi " + ctx.Cookies["session"]), nil
			}); err != nil {
				return nil, err
			}
			return &Page{Template: tmpl}, nil
		}))
	return srv, rlog
}

func fragGet(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: "session", Value: "u1"})
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

func TestFragmentedPagePlainClientGetsAssembledPage(t *testing.T) {
	srv, _ := newFragApp(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := fragGet(t, ts.URL+"/home?cat=0", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if want := "<p>ab|hi u1</p>"; string(body) != want {
		t.Fatalf("assembled body %q, want %q", body, want)
	}
	if h := resp.Header.Get(fragment.CompositeHeader); h != "" {
		t.Fatalf("unexpected composite header %q for plain client", h)
	}
	// Non-negotiating clients get the ordinary whole-page key.
	if key := resp.Header.Get(KeyHeader); !strings.Contains(key, "c:session=u1") {
		t.Fatalf("page key %q should carry the cookie part", key)
	}
}

func TestFragmentedPageCompositeTransfer(t *testing.T) {
	srv, rlog := newFragApp(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := fragGet(t, ts.URL+"/home?cat=0", map[string]string{
		fragment.CompositeHeader: fragment.CompositeAccept,
	})
	if resp.Header.Get(fragment.CompositeHeader) != fragment.CompositeYes {
		t.Fatalf("composite not negotiated: %v", resp.Header)
	}
	comp, err := fragment.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(comp.TemplateKey, "!tmpl") || strings.Contains(comp.TemplateKey, "c:session") {
		t.Fatalf("template key %q: want cookie-free !tmpl key", comp.TemplateKey)
	}
	if comp.Servlet != "home" || len(comp.Fragments) != 2 {
		t.Fatalf("composite: %+v", comp)
	}
	byName := map[string]fragment.Piece{}
	for _, p := range comp.Fragments {
		byName[p.Name] = p
	}
	rows, trim := byName["rows"], byName["trim"]
	if rows.Private || strings.Contains(rows.Key, "c:session") {
		t.Fatalf("shared rows key %q must not carry cookies", rows.Key)
	}
	if !trim.Private || !strings.Contains(trim.Key, "c:session=u1") {
		t.Fatalf("private trim key %q must carry the cookie part", trim.Key)
	}
	page, err := comp.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if want := "<p>ab|hi u1</p>"; string(page) != want {
		t.Fatalf("reassembled %q, want %q", page, want)
	}

	// Request log: one entry per fragment (keyed by the fragment, windowed
	// by its build), a zero-width template entry, and the page entry marked
	// not-cached so the mapper skips it.
	entries, _ := rlog.Since(1)
	if len(entries) != 4 {
		t.Fatalf("log entries: %d (%+v)", len(entries), entries)
	}
	var sawRows, sawTmpl, sawPage bool
	for _, e := range entries {
		switch {
		case e.CacheKey == rows.Key:
			sawRows = true
			if !e.Cached || !e.Deliver.After(e.Receive) {
				t.Fatalf("rows entry: %+v", e)
			}
		case e.CacheKey == comp.TemplateKey:
			sawTmpl = true
			if !e.Cached || !e.Deliver.Equal(e.Receive) {
				t.Fatalf("template entry must be zero-width: %+v", e)
			}
		case !strings.Contains(e.CacheKey, "!"):
			sawPage = true
			if e.Cached {
				t.Fatalf("page entry must be not-cached: %+v", e)
			}
		}
	}
	if !sawRows || !sawTmpl || !sawPage {
		t.Fatalf("missing entries: rows=%v tmpl=%v page=%v", sawRows, sawTmpl, sawPage)
	}
}

func TestFragmentedPageSingleFragmentRequest(t *testing.T) {
	srv, _ := newFragApp(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := fragGet(t, ts.URL+"/home?cat=0", map[string]string{
		fragment.FragmentHeader: "rows",
	})
	if resp.StatusCode != http.StatusOK || string(body) != "ab" {
		t.Fatalf("fragment fetch: %d %q", resp.StatusCode, body)
	}
	if key := resp.Header.Get(KeyHeader); !strings.Contains(key, "!frag=rows") {
		t.Fatalf("fragment key: %q", key)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, `owner="cacheportal"`) {
		t.Fatalf("fragment cache-control: %q", cc)
	}

	resp, _ = fragGet(t, ts.URL+"/home?cat=0", map[string]string{
		fragment.FragmentHeader: "nosuch",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fragment: %d", resp.StatusCode)
	}
}

func TestFragmentsOffServesWholePageOnly(t *testing.T) {
	srv, _ := newFragApp(t)
	srv.Fragments = false
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := fragGet(t, ts.URL+"/home?cat=1", map[string]string{
		fragment.CompositeHeader: fragment.CompositeAccept,
	})
	if resp.Header.Get(fragment.CompositeHeader) != "" {
		t.Fatal("composite negotiated with Fragments off")
	}
	if want := "<p>c|hi u1</p>"; string(body) != want {
		t.Fatalf("body %q, want %q", body, want)
	}
}

func TestContextFragmentValidation(t *testing.T) {
	ctx := &Context{}
	if err := ctx.Fragment("bad name", false, func() ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("invalid name accepted")
	}
	if err := ctx.Fragment("dup", false, func() ([]byte, error) { return []byte("x"), nil }); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Fragment("dup", false, func() ([]byte, error) { return []byte("y"), nil }); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if got := len(ctx.Fragments()); got != 1 {
		t.Fatalf("fragments: %d", got)
	}
}

func TestSharedPageKeyProjectsCookiesOnly(t *testing.T) {
	req, _ := http.NewRequest(http.MethodGet, "http://host/home?cat=2&noise=1", nil)
	req.AddCookie(&http.Cookie{Name: "session", Value: "u9"})
	keys := KeySpec{Get: []string{"cat"}, Cookie: []string{"session"}}
	full := CacheKey(req, nil, keys)
	shared := SharedPageKey(req, nil, keys)
	if !strings.Contains(full, "c:session=u9") || strings.Contains(shared, "c:session") {
		t.Fatalf("full %q shared %q", full, shared)
	}
	if !strings.Contains(shared, "g:cat=2") {
		t.Fatalf("shared %q lost the GET key", shared)
	}

	// Cookie-only spec: the shared projection must NOT fall back to the
	// every-GET-parameter default.
	cookieOnly := KeySpec{Cookie: []string{"session"}}
	sharedCO := SharedPageKey(req, nil, cookieOnly)
	if strings.Contains(sharedCO, "g:") {
		t.Fatalf("cookie-only spec projected to %q: leaked GET params", sharedCO)
	}

	// Private vs shared fragment key derivation.
	if k := FragmentCacheKey(req, nil, keys, "trim", true); !strings.Contains(k, "c:session=u9") || !strings.Contains(k, "!frag=trim") {
		t.Fatalf("private fragment key %q", k)
	}
	if k := FragmentCacheKey(req, nil, keys, "rows", false); strings.Contains(k, "c:session") || !strings.Contains(k, "!frag=rows") {
		t.Fatalf("shared fragment key %q", k)
	}
}
