// Package appserver implements the reproduction's web + application server:
// a servlet container in the style of BEA WebLogic (paper §3.1) on top of
// net/http. Servlets declare which GET/POST/cookie parameters are cache
// keys, their temporal sensitivity to data changes, and obtain database
// connections through the driver package's pools and data sources — so the
// request logger (the paper's servlet wrapper) and the query logger (the
// JDBC wrapper) observe everything without application changes.
package appserver

import (
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/fragment"
)

// Page is the servlet's output.
type Page struct {
	Body        []byte
	ContentType string // default "text/html; charset=utf-8"
	// NoCache marks the page non-cacheable regardless of servlet policy
	// (the application's "no-cache" directive that the wrapper may rewrite,
	// §3.1).
	NoCache bool
	Status  int // default 200
	// Template, when non-nil, marks the page fragmented: it is the assembly
	// skeleton whose include markers (fragment.Marker) name the fragments
	// the handler built via Context.Fragment, and Body is ignored. The
	// template must be static markup — every database query that feeds page
	// content must run inside a Fragment build, because the template's own
	// log entry carries a zero-width time window and attributes no queries.
	Template []byte
}

// Fragment is one independently cacheable unit of a fragmented page: a
// named body plus the wall-clock window of its build. The window is what
// the sniffer's interval-containment rule sees, so each fragment gets its
// own QI/URL mapping — exactly the queries its build ran — and therefore
// its own precise invalidation, with no sniffer or invalidator changes.
type Fragment struct {
	// Name matches an include marker in the page template.
	Name string
	// Private marks per-session content: keyed with the request's cookies,
	// never shared across users.
	Private bool
	// Body is the rendered fragment.
	Body []byte
	// Start/End bound the build; the fragment's request-log entry carries
	// them as its receive/deliver window.
	Start, End time.Time
}

// Context carries one request through a servlet.
type Context struct {
	Request *http.Request
	Get     url.Values
	Post    url.Values
	Cookies map[string]string
	// Sources resolves named data sources (the JNDI-tree analog).
	Sources *driver.Registry

	mu        sync.Mutex
	leases    []int64
	fragments []Fragment
}

// Param returns the first GET-or-POST value for name (GET wins).
func (c *Context) Param(name string) string {
	if v := c.Get.Get(name); v != "" {
		return v
	}
	return c.Post.Get(name)
}

// Lease obtains a pooled connection from the named data source. The caller
// must Release it. The container remembers which leases served the request
// so the sniffer can attribute logged queries precisely even under
// concurrency.
func (c *Context) Lease(source string) (*driver.Lease, error) {
	p, err := c.Sources.Lookup(source)
	if err != nil {
		return nil, err
	}
	l, err := p.Get()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.leases = append(c.leases, l.ID)
	c.mu.Unlock()
	return l, nil
}

// LeaseIDs returns the IDs of the pool leases this request used.
func (c *Context) LeaseIDs() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int64(nil), c.leases...)
}

// Fragment builds one named fragment of the page, recording the build's
// wall-clock window. Contract: when a page is fragmented, every database
// query that feeds its content must run inside some Fragment build —
// queries issued outside every window attribute to no fragment entry and
// become invisible to invalidation. Shared fragments (private=false) must
// not depend on per-session state: they are keyed without cookies and one
// user's copy answers every user's request.
func (c *Context) Fragment(name string, private bool, build func() ([]byte, error)) error {
	if !fragment.ValidName(name) {
		return fmt.Errorf("appserver: invalid fragment name %q", name)
	}
	c.mu.Lock()
	for _, f := range c.fragments {
		if f.Name == name {
			c.mu.Unlock()
			return fmt.Errorf("appserver: duplicate fragment %q", name)
		}
	}
	c.mu.Unlock()
	start := time.Now()
	body, err := build()
	if err != nil {
		return fmt.Errorf("appserver: fragment %q: %w", name, err)
	}
	end := time.Now()
	c.mu.Lock()
	c.fragments = append(c.fragments, Fragment{Name: name, Private: private, Body: body, Start: start, End: end})
	c.mu.Unlock()
	return nil
}

// Fragments returns the fragments built so far, in build order.
func (c *Context) Fragments() []Fragment {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Fragment(nil), c.fragments...)
}

// Servlet is the application unit.
type Servlet interface {
	Serve(ctx *Context) (*Page, error)
}

// ServletFunc adapts a function to the Servlet interface.
type ServletFunc func(ctx *Context) (*Page, error)

// Serve implements Servlet.
func (f ServletFunc) Serve(ctx *Context) (*Page, error) { return f(ctx) }

// KeySpec declares which request parameters form the page identity — the
// paper's "parameters that has to be used as keys/indexes in the cache"
// (§2.3.1, §3.1 item 3).
type KeySpec struct {
	Get    []string
	Post   []string
	Cookie []string
}

// Meta is the per-servlet registration record of §3.1: identity, key
// parameters, temporal and error sensitivity, and collected statistics.
type Meta struct {
	// Name is the servlet's unique ID; it is also its URL path ("/name").
	Name string
	// Keys are the parameters that form the cache key.
	Keys KeySpec
	// TemporalSensitivity is how stale (at most) the servlet's pages may
	// be. Pages from servlets more sensitive than the invalidator's cycle
	// can guarantee are marked non-cacheable.
	TemporalSensitivity time.Duration
	// ErrorSensitivity expresses tolerance to errors in underlying data;
	// recorded per §3.1 and exposed to policies.
	ErrorSensitivity float64
}

// Stats accumulates per-servlet counters used to self-tune invalidation.
type Stats struct {
	Requests   int64
	Errors     int64
	TotalServe time.Duration
}

// CacheKey computes the canonical page identifier for a request under a key
// spec: HTTP host + path, plus the keyed get/post/cookie parameters in a
// deterministic order. This is the paper's "URL" (§2.3.1). An empty KeySpec
// keys on all GET parameters.
func CacheKey(r *http.Request, post url.Values, keys KeySpec) string {
	return cacheKeyProjected(r, post, keys, true)
}

// SharedPageKey is CacheKey with the cookie key parts projected away: the
// page identity every session shares. Shared fragments and the assembly
// template are keyed under it, so one user's copy answers all users.
func SharedPageKey(r *http.Request, post url.Values, keys KeySpec) string {
	return cacheKeyProjected(r, post, keys, false)
}

// FragmentCacheKey names one fragment of the page identified by the key
// spec: private fragments derive from the full (cookie-bearing) page key,
// shared ones from the cookie-projected key.
func FragmentCacheKey(r *http.Request, post url.Values, keys KeySpec, name string, private bool) string {
	if private {
		return fragment.Key(CacheKey(r, post, keys), name)
	}
	return fragment.Key(SharedPageKey(r, post, keys), name)
}

// cacheKeyProjected builds the canonical key, optionally projecting the
// cookie parts away. The all-GET default applies only when the whole spec
// is empty — a cookie-only spec projected to shared form keeps its
// (parameter-free) identity rather than suddenly keying on every GET
// parameter.
func cacheKeyProjected(r *http.Request, post url.Values, keys KeySpec, withCookies bool) string {
	var parts []string
	get := r.URL.Query()
	if len(keys.Get)+len(keys.Post)+len(keys.Cookie) == 0 {
		// Default: every GET parameter is a key.
		names := make([]string, 0, len(get))
		for n := range get {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			parts = append(parts, "g:"+n+"="+get.Get(n))
		}
	} else {
		for _, n := range sortedCopy(keys.Get) {
			parts = append(parts, "g:"+n+"="+get.Get(n))
		}
		for _, n := range sortedCopy(keys.Post) {
			parts = append(parts, "p:"+n+"="+post.Get(n))
		}
		if withCookies {
			for _, n := range sortedCopy(keys.Cookie) {
				v := ""
				if ck, err := r.Cookie(n); err == nil {
					v = ck.Value
				}
				parts = append(parts, "c:"+n+"="+v)
			}
		}
	}
	key := r.Host + r.URL.Path
	if len(parts) > 0 {
		key += "?" + strings.Join(parts, "&")
	}
	return key
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

// String renders a short description of the meta record.
func (m Meta) String() string {
	return fmt.Sprintf("servlet %s (keys g=%v p=%v c=%v, temporal %s)",
		m.Name, m.Keys.Get, m.Keys.Post, m.Keys.Cookie, m.TemporalSensitivity)
}
