package appserver

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/engine"
)

func newApp(t *testing.T) (*Server, *RequestLog, *driver.QueryLog) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE products (id INT PRIMARY KEY, name TEXT, price FLOAT);
		INSERT INTO products VALUES (1, 'widget', 9.99), (2, 'gadget', 19.99);
	`); err != nil {
		t.Fatal(err)
	}
	qlog := driver.NewQueryLog(0)
	pool, err := driver.NewPool(driver.NewLoggingDriver(driver.DirectDriver{DB: db}, qlog), "", 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pool.Close() })
	reg := driver.NewRegistry()
	reg.Bind("main", pool)
	rlog := NewRequestLog(0)
	srv := NewServer(reg, rlog)
	srv.MustRegister(Meta{Name: "product", Keys: KeySpec{Get: []string{"id"}}},
		ServletFunc(func(ctx *Context) (*Page, error) {
			lease, err := ctx.Lease("main")
			if err != nil {
				return nil, err
			}
			defer lease.Release()
			res, err := lease.Query("SELECT name, price FROM products WHERE id = " + ctx.Param("id"))
			if err != nil {
				return nil, err
			}
			if len(res.Rows) == 0 {
				return &Page{Body: []byte("not found"), Status: http.StatusNotFound}, nil
			}
			return &Page{Body: []byte(fmt.Sprintf("%s: %s", res.Rows[0][0], res.Rows[0][1]))}, nil
		}))
	return srv, rlog, qlog
}

func TestServletServesAndLogs(t *testing.T) {
	srv, rlog, qlog := newApp(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/product?id=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, `owner="cacheportal"`) {
		t.Fatalf("cache-control: %q", cc)
	}
	key := resp.Header.Get(KeyHeader)
	if !strings.Contains(key, "/product?g:id=1") {
		t.Fatalf("key: %q", key)
	}
	if sv := resp.Header.Get(ServletHeader); sv != "product" {
		t.Fatalf("servlet header: %q", sv)
	}

	entries, _ := rlog.Since(1)
	if len(entries) != 1 {
		t.Fatalf("request log: %+v", entries)
	}
	e := entries[0]
	if e.Servlet != "product" || !e.Cached || e.Status != 200 || e.CacheKey != key {
		t.Fatalf("entry: %+v", e)
	}
	if !e.Deliver.After(e.Receive) && !e.Deliver.Equal(e.Receive) {
		t.Fatalf("timestamps: %v %v", e.Receive, e.Deliver)
	}

	qs, _ := qlog.Since(1)
	if len(qs) != 1 || !strings.Contains(qs[0].SQL, "WHERE id = 1") {
		t.Fatalf("query log: %+v", qs)
	}
	// The query interval nests in the request interval — what the mapper
	// relies on (§3.3).
	if qs[0].Receive.Before(e.Receive) || qs[0].Deliver.After(e.Deliver) {
		t.Fatalf("query interval [%v,%v] outside request interval [%v,%v]",
			qs[0].Receive, qs[0].Deliver, e.Receive, e.Deliver)
	}
}

func TestServletErrorPath(t *testing.T) {
	srv, rlog, _ := newApp(t)
	srv.MustRegister(Meta{Name: "boom"}, ServletFunc(func(*Context) (*Page, error) {
		return nil, fmt.Errorf("kaput")
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d", resp.StatusCode)
	}
	entries, _ := rlog.Since(1)
	if len(entries) != 1 || entries[0].Status != 500 || entries[0].Cached {
		t.Fatalf("entries: %+v", entries)
	}
	st, ok := srv.StatsFor("boom")
	if !ok || st.Errors != 1 || st.Requests != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNotFound(t *testing.T) {
	srv, _, _ := newApp(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/nothing")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestNoCachePage(t *testing.T) {
	srv, _, _ := newApp(t)
	srv.MustRegister(Meta{Name: "private"}, ServletFunc(func(*Context) (*Page, error) {
		return &Page{Body: []byte("secret"), NoCache: true}, nil
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/private")
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("cache-control: %q", cc)
	}
}

func TestCacheableFeedbackHook(t *testing.T) {
	srv, _, _ := newApp(t)
	srv.Cacheable = func(name string) bool { return name != "product" }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/product?id=1")
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("cache-control with feedback: %q", cc)
	}
}

func TestTemporalSensitivityBlocksCaching(t *testing.T) {
	srv, _, _ := newApp(t)
	srv.MinSensitivity = time.Second
	srv.MustRegister(Meta{Name: "ticker", TemporalSensitivity: 100 * time.Millisecond},
		ServletFunc(func(*Context) (*Page, error) {
			return &Page{Body: []byte("tick")}, nil
		}))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/ticker")
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Fatalf("cache-control: %q", cc)
	}
	// A tolerant servlet stays cacheable.
	resp, _ = http.Get(ts.URL + "/product?id=1")
	resp.Body.Close()
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "cacheportal") {
		t.Fatalf("cache-control: %q", cc)
	}
}

func TestPostParamsAndCookies(t *testing.T) {
	srv, rlog, _ := newApp(t)
	srv.MustRegister(Meta{Name: "order", Keys: KeySpec{Post: []string{"item"}, Cookie: []string{"user"}}},
		ServletFunc(func(ctx *Context) (*Page, error) {
			return &Page{Body: []byte("item=" + ctx.Param("item") + " user=" + ctx.Cookies["user"])}, nil
		}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/order", strings.NewReader("item=widget&qty=2"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.AddCookie(&http.Cookie{Name: "user", Value: "alice"})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	key := resp.Header.Get(KeyHeader)
	if !strings.Contains(key, "p:item=widget") || !strings.Contains(key, "c:user=alice") {
		t.Fatalf("key: %q", key)
	}
	if strings.Contains(key, "qty") {
		t.Fatalf("non-key param leaked into key: %q", key)
	}
	entries, _ := rlog.Since(1)
	e := entries[len(entries)-1]
	if !strings.Contains(e.Post, "item=widget") || !strings.Contains(e.Cookies, "user=alice") {
		t.Fatalf("entry: %+v", e)
	}
}

func TestCacheKeyDeterminism(t *testing.T) {
	mk := func(rawq string) *http.Request {
		r, _ := http.NewRequest("GET", "http://site.example/page?"+rawq, nil)
		return r
	}
	spec := KeySpec{Get: []string{"b", "a"}}
	k1 := CacheKey(mk("a=1&b=2"), url.Values{}, spec)
	k2 := CacheKey(mk("b=2&a=1"), url.Values{}, spec)
	if k1 != k2 {
		t.Fatalf("%q != %q", k1, k2)
	}
	// Default spec keys all GET params.
	k3 := CacheKey(mk("z=9&a=1"), url.Values{}, KeySpec{})
	k4 := CacheKey(mk("a=1&z=9"), url.Values{}, KeySpec{})
	if k3 != k4 {
		t.Fatalf("%q != %q", k3, k4)
	}
	// Different values change the key.
	if CacheKey(mk("a=1&b=2"), url.Values{}, spec) == CacheKey(mk("a=1&b=3"), url.Values{}, spec) {
		t.Fatal("keys must differ")
	}
}

func TestRegisterValidation(t *testing.T) {
	srv := NewServer(driver.NewRegistry(), NewRequestLog(0))
	if err := srv.Register(Meta{}, ServletFunc(nil)); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := srv.Register(Meta{Name: "x"}, ServletFunc(nil)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(Meta{Name: "x"}, ServletFunc(nil)); err == nil {
		t.Fatal("duplicate must fail")
	}
	if len(srv.Servlets()) != 1 {
		t.Fatalf("servlets: %v", srv.Servlets())
	}
}

func TestSubPathDispatch(t *testing.T) {
	srv, _, _ := newApp(t)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/product/extra/path?id=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestRequestLogTruncation(t *testing.T) {
	l := NewRequestLog(2)
	for i := 0; i < 5; i++ {
		l.Append(RequestLogEntry{Servlet: "s"})
	}
	// Amortized trimming: between 2 and 3 newest entries retained.
	if l.Len() < 2 || l.Len() > 3 || l.NextID() != 6 {
		t.Fatalf("len=%d next=%d", l.Len(), l.NextID())
	}
	entries, trunc := l.Since(1)
	if !trunc || len(entries) == 0 || entries[len(entries)-1].ID != 5 {
		t.Fatalf("entries: %+v trunc=%v", entries, trunc)
	}
}
