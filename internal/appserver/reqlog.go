package appserver

import (
	"sync"
	"time"

	"repro/internal/feed"
)

// RequestLogEntry is one record of the HTTP request log, with the fields
// the paper's request logger extracts (§3.1): a unique ID, the request
// string (page name + GET parameters), the cookie string, the POST string,
// and receive/delivery timestamps. CacheKey is the canonical page
// identifier computed from the servlet's key spec.
type RequestLogEntry struct {
	ID       int64
	Servlet  string
	Request  string // path?rawquery
	Cookies  string
	Post     string
	CacheKey string
	Receive  time.Time
	Deliver  time.Time
	Status   int
	Cached   bool    // whether the response was marked cacheable
	LeaseIDs []int64 // pool leases the request used (query attribution)
}

// RequestLog is a bounded, thread-safe request log. The sniffer's
// request-to-query mapper reads it either by polling (Since) or as a feed
// (Subscribe / Changed).
type RequestLog struct {
	mu      sync.Mutex
	entries []RequestLogEntry
	firstID int64
	nextID  int64
	cap     int
	// changed is closed on every append and then replaced (close-and-replace
	// broadcast; see Changed).
	changed chan struct{}

	hubOnce sync.Once
	hub     *feed.Hub[RequestLogEntry]
}

// DefaultRequestLogCapacity bounds request log memory when no capacity is
// given.
const DefaultRequestLogCapacity = 1 << 16

// NewRequestLog creates a log holding at most capacity entries
// (DefaultRequestLogCapacity if capacity <= 0).
func NewRequestLog(capacity int) *RequestLog {
	if capacity <= 0 {
		capacity = DefaultRequestLogCapacity
	}
	return &RequestLog{firstID: 1, nextID: 1, cap: capacity, changed: make(chan struct{})}
}

// Append adds an entry, assigning and returning its ID.
func (l *RequestLog) Append(e RequestLogEntry) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.ID = l.nextID
	l.nextID++
	l.entries = append(l.entries, e)
	// Amortized trimming: drop down to capacity only once the log exceeds
	// 1.5× capacity, so appends stay O(1).
	if len(l.entries) > l.cap*3/2 {
		drop := len(l.entries) - l.cap
		l.entries = append(l.entries[:0:0], l.entries[drop:]...)
		l.firstID += int64(drop)
	}
	close(l.changed)
	l.changed = make(chan struct{})
	return e.ID
}

// Since returns entries with ID >= id plus whether older entries were
// discarded.
func (l *RequestLog) Since(id int64) (entries []RequestLogEntry, truncated bool) {
	entries, truncated, _, _ = l.SinceNext(id)
	return entries, truncated
}

// SinceNext is Since plus the resume cursor and truncation context, observed
// atomically: next is one past the last returned entry, first is the oldest
// retained ID.
func (l *RequestLog) SinceNext(id int64) (entries []RequestLogEntry, truncated bool, next, first int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < 1 {
		id = 1
	}
	truncated = id < l.firstID
	next = l.nextID
	first = l.firstID
	start := id - l.firstID
	if start < 0 {
		start = 0
	}
	if start >= int64(len(l.entries)) {
		return nil, truncated, next, first
	}
	out := make([]RequestLogEntry, int64(len(l.entries))-start)
	copy(out, l.entries[start:])
	return out, truncated, next, first
}

// Changed returns a channel closed when an entry may have been appended since
// the call; re-obtain it after each wakeup.
func (l *RequestLog) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}

// Subscribe opens a feed subscription at cursor with bounded buffering (feed
// defaults when buffer <= 0).
func (l *RequestLog) Subscribe(cursor int64, buffer int) *feed.Subscription[RequestLogEntry] {
	return l.Hub().Subscribe(cursor, buffer)
}

// Hub exposes the log's fan-out feed hub (created on first use).
func (l *RequestLog) Hub() *feed.Hub[RequestLogEntry] {
	l.hubOnce.Do(func() {
		l.hub = feed.NewHub(func(cursor int64) ([]RequestLogEntry, bool, int64, int64) {
			return l.SinceNext(cursor)
		}, l.Changed)
	})
	return l.hub
}

// NextID returns the ID the next entry will receive.
func (l *RequestLog) NextID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID
}

// Len returns the number of retained entries.
func (l *RequestLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}
