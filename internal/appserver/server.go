package appserver

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/driver"
)

// CacheOwner is the owner token in the rewritten Cache-Control directive
// (§3.1: `Cache-Control: private, owner="cacheportal"`), which marks pages
// that CachePortal-compliant caches may store even though they are private
// to ordinary shared caches.
const CacheOwner = "cacheportal"

// KeyHeader carries the canonical page identifier to the web cache so that
// cache entries and invalidation messages agree on page identity.
const KeyHeader = "X-Cacheportal-Key"

// ServletHeader carries the generating servlet's name downstream.
const ServletHeader = "X-Cacheportal-Servlet"

// Server is the servlet container: an http.Handler that dispatches
// "/<servlet-name>" to registered servlets, wrapping every execution in the
// request logger.
type Server struct {
	// Sources is handed to servlets for database access.
	Sources *driver.Registry
	// ReqLog receives one entry per servlet execution.
	ReqLog *RequestLog
	// Cacheable, when non-nil, is the invalidator's feedback hook (§3.1):
	// it reports whether pages of the named servlet may currently be
	// cached. Nil means "cacheable unless the page says NoCache".
	Cacheable func(servlet string) bool
	// MinSensitivity is the staleness bound CachePortal can currently
	// guarantee (roughly the invalidation cycle). Servlets with a stricter
	// (smaller, non-zero) TemporalSensitivity are marked non-cacheable.
	MinSensitivity time.Duration

	mu       sync.RWMutex
	servlets map[string]*registered
}

type registered struct {
	meta    Meta
	servlet Servlet
	stats   Stats
}

// NewServer creates an empty container.
func NewServer(sources *driver.Registry, reqLog *RequestLog) *Server {
	return &Server{
		Sources:  sources,
		ReqLog:   reqLog,
		servlets: make(map[string]*registered),
	}
}

// Register adds a servlet under meta.Name; the servlet serves the URL path
// "/<name>".
func (s *Server) Register(meta Meta, servlet Servlet) error {
	if meta.Name == "" {
		return fmt.Errorf("appserver: servlet needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.servlets[meta.Name]; dup {
		return fmt.Errorf("appserver: servlet %q already registered", meta.Name)
	}
	s.servlets[meta.Name] = &registered{meta: meta, servlet: servlet}
	return nil
}

// MustRegister is Register that panics on error; for static wiring.
func (s *Server) MustRegister(meta Meta, servlet Servlet) {
	if err := s.Register(meta, servlet); err != nil {
		panic(err)
	}
}

// Servlets returns the registered metas (unordered).
func (s *Server) Servlets() []Meta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Meta, 0, len(s.servlets))
	for _, r := range s.servlets {
		out = append(out, r.meta)
	}
	return out
}

// StatsFor returns a copy of the servlet's counters.
func (s *Server) StatsFor(name string) (Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.servlets[name]
	if !ok {
		return Stats{}, false
	}
	return r.stats, true
}

// lookup finds the servlet for a URL path ("/name" or "/name/...").
func (s *Server) lookup(path string) (*registered, bool) {
	name := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.servlets[name]
	return r, ok
}

// ServeHTTP implements http.Handler: the request-logger wrapper around
// servlet execution (§3.1, Figure 9(b)).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	receive := time.Now()
	reg, ok := s.lookup(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}

	// Parse POST parameters without consuming the body for later readers.
	post := url.Values{}
	if r.Method == http.MethodPost {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			if vals, perr := url.ParseQuery(string(body)); perr == nil {
				post = vals
			}
		}
	}
	cookies := map[string]string{}
	var cookieParts []string
	for _, c := range r.Cookies() {
		cookies[c.Name] = c.Value
		cookieParts = append(cookieParts, c.Name+"="+c.Value)
	}

	ctx := &Context{Request: r, Get: r.URL.Query(), Post: post, Cookies: cookies, Sources: s.Sources}
	page, err := reg.servlet.Serve(ctx)
	deliver := time.Now()
	leaseIDs := ctx.LeaseIDs()

	key := CacheKey(r, post, reg.meta.Keys)
	entry := RequestLogEntry{
		Servlet:  reg.meta.Name,
		Request:  r.URL.Path + "?" + r.URL.RawQuery,
		Cookies:  strings.Join(cookieParts, "; "),
		Post:     post.Encode(),
		CacheKey: key,
		Receive:  receive,
		Deliver:  deliver,
		LeaseIDs: leaseIDs,
	}

	status := http.StatusOK
	cacheable := false
	if err != nil {
		status = http.StatusInternalServerError
		entry.Status = status
		s.bumpStats(reg.meta.Name, deliver.Sub(receive), true)
		if s.ReqLog != nil {
			s.ReqLog.Append(entry)
		}
		http.Error(w, err.Error(), status)
		return
	}
	if page.Status != 0 {
		status = page.Status
	}
	cacheable = s.pageCacheable(reg.meta, page)

	ct := page.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.Header().Set(KeyHeader, key)
	w.Header().Set(ServletHeader, reg.meta.Name)
	if cacheable {
		// The §3.1 rewrite: dynamically generated pages become cacheable
		// for CachePortal-compliant caches only.
		w.Header().Set("Cache-Control", fmt.Sprintf("private, owner=%q", CacheOwner))
	} else {
		w.Header().Set("Cache-Control", "no-cache")
	}
	entry.Status = status
	entry.Cached = cacheable
	s.bumpStats(reg.meta.Name, deliver.Sub(receive), false)
	if s.ReqLog != nil {
		s.ReqLog.Append(entry)
	}
	w.WriteHeader(status)
	w.Write(page.Body)
}

// pageCacheable folds the three §3.1 cacheability inputs: the page's own
// directive, the invalidator's feedback, and temporal sensitivity.
func (s *Server) pageCacheable(meta Meta, page *Page) bool {
	if page.NoCache {
		return false
	}
	if s.Cacheable != nil && !s.Cacheable(meta.Name) {
		return false
	}
	if meta.TemporalSensitivity > 0 && s.MinSensitivity > 0 &&
		meta.TemporalSensitivity < s.MinSensitivity {
		return false
	}
	return true
}

func (s *Server) bumpStats(name string, d time.Duration, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.servlets[name]
	if !ok {
		return
	}
	r.stats.Requests++
	r.stats.TotalServe += d
	if failed {
		r.stats.Errors++
	}
}
