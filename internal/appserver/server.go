package appserver

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/driver"
	"repro/internal/fragment"
)

// CacheOwner is the owner token in the rewritten Cache-Control directive
// (§3.1: `Cache-Control: private, owner="cacheportal"`), which marks pages
// that CachePortal-compliant caches may store even though they are private
// to ordinary shared caches.
const CacheOwner = "cacheportal"

// KeyHeader carries the canonical page identifier to the web cache so that
// cache entries and invalidation messages agree on page identity.
const KeyHeader = "X-Cacheportal-Key"

// ServletHeader carries the generating servlet's name downstream.
const ServletHeader = "X-Cacheportal-Servlet"

// Server is the servlet container: an http.Handler that dispatches
// "/<servlet-name>" to registered servlets, wrapping every execution in the
// request logger.
type Server struct {
	// Sources is handed to servlets for database access.
	Sources *driver.Registry
	// ReqLog receives one entry per servlet execution.
	ReqLog *RequestLog
	// Cacheable, when non-nil, is the invalidator's feedback hook (§3.1):
	// it reports whether pages of the named servlet may currently be
	// cached. Nil means "cacheable unless the page says NoCache".
	Cacheable func(servlet string) bool
	// MinSensitivity is the staleness bound CachePortal can currently
	// guarantee (roughly the invalidation cycle). Servlets with a stricter
	// (smaller, non-zero) TemporalSensitivity are marked non-cacheable.
	MinSensitivity time.Duration
	// Fragments switches the container to fragment-level caching: pages
	// with a Template answer fragment-aware caches with a composite
	// response (template + every fragment under its own cache key) or a
	// single fragment body, and each fragment gets its own request-log
	// entry whose time window is the fragment's build — so the sniffer maps
	// queries to fragment keys and invalidation happens per fragment.
	// Clients that don't negotiate (no fragment.CompositeHeader) always get
	// the assembled whole page, byte-identical to Fragments=false.
	Fragments bool

	mu       sync.RWMutex
	servlets map[string]*registered
}

type registered struct {
	meta    Meta
	servlet Servlet
	stats   Stats
}

// NewServer creates an empty container.
func NewServer(sources *driver.Registry, reqLog *RequestLog) *Server {
	return &Server{
		Sources:  sources,
		ReqLog:   reqLog,
		servlets: make(map[string]*registered),
	}
}

// Register adds a servlet under meta.Name; the servlet serves the URL path
// "/<name>".
func (s *Server) Register(meta Meta, servlet Servlet) error {
	if meta.Name == "" {
		return fmt.Errorf("appserver: servlet needs a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.servlets[meta.Name]; dup {
		return fmt.Errorf("appserver: servlet %q already registered", meta.Name)
	}
	s.servlets[meta.Name] = &registered{meta: meta, servlet: servlet}
	return nil
}

// MustRegister is Register that panics on error; for static wiring.
func (s *Server) MustRegister(meta Meta, servlet Servlet) {
	if err := s.Register(meta, servlet); err != nil {
		panic(err)
	}
}

// Servlets returns the registered metas (unordered).
func (s *Server) Servlets() []Meta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Meta, 0, len(s.servlets))
	for _, r := range s.servlets {
		out = append(out, r.meta)
	}
	return out
}

// StatsFor returns a copy of the servlet's counters.
func (s *Server) StatsFor(name string) (Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.servlets[name]
	if !ok {
		return Stats{}, false
	}
	return r.stats, true
}

// lookup finds the servlet for a URL path ("/name" or "/name/...").
func (s *Server) lookup(path string) (*registered, bool) {
	name := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name = name[:i]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.servlets[name]
	return r, ok
}

// ServeHTTP implements http.Handler: the request-logger wrapper around
// servlet execution (§3.1, Figure 9(b)).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	receive := time.Now()
	reg, ok := s.lookup(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}

	// Parse POST parameters without consuming the body for later readers.
	post := url.Values{}
	if r.Method == http.MethodPost {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err == nil {
			if vals, perr := url.ParseQuery(string(body)); perr == nil {
				post = vals
			}
		}
	}
	cookies := map[string]string{}
	var cookieParts []string
	for _, c := range r.Cookies() {
		cookies[c.Name] = c.Value
		cookieParts = append(cookieParts, c.Name+"="+c.Value)
	}

	ctx := &Context{Request: r, Get: r.URL.Query(), Post: post, Cookies: cookies, Sources: s.Sources}
	page, err := reg.servlet.Serve(ctx)
	deliver := time.Now()
	leaseIDs := ctx.LeaseIDs()

	key := CacheKey(r, post, reg.meta.Keys)
	entry := RequestLogEntry{
		Servlet:  reg.meta.Name,
		Request:  r.URL.Path + "?" + r.URL.RawQuery,
		Cookies:  strings.Join(cookieParts, "; "),
		Post:     post.Encode(),
		CacheKey: key,
		Receive:  receive,
		Deliver:  deliver,
		LeaseIDs: leaseIDs,
	}

	status := http.StatusOK
	cacheable := false
	if err != nil {
		status = http.StatusInternalServerError
		entry.Status = status
		s.bumpStats(reg.meta.Name, deliver.Sub(receive), true)
		if s.ReqLog != nil {
			s.ReqLog.Append(entry)
		}
		http.Error(w, err.Error(), status)
		return
	}
	if page.Status != 0 {
		status = page.Status
	}
	cacheable = s.pageCacheable(reg.meta, page)

	// A fragmented page is a template plus the fragments the handler built;
	// the assembled whole page is what non-negotiating clients receive,
	// byte-identical to an unfragmented handler producing the same markup.
	frags := ctx.Fragments()
	body := page.Body
	if page.Template != nil {
		assembled, aerr := fragment.Assemble(page.Template, func(name string) ([]byte, bool) {
			for i := range frags {
				if frags[i].Name == name {
					return frags[i].Body, true
				}
			}
			return nil, false
		})
		if aerr != nil {
			entry.Status = http.StatusInternalServerError
			s.bumpStats(reg.meta.Name, deliver.Sub(receive), true)
			if s.ReqLog != nil {
				s.ReqLog.Append(entry)
			}
			http.Error(w, aerr.Error(), http.StatusInternalServerError)
			return
		}
		body = assembled
	}

	ct := page.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}

	if s.Fragments && page.Template != nil && cacheable && status == http.StatusOK {
		if s.serveFragmented(w, r, reg.meta, entry, page, frags, ct, deliver) {
			s.bumpStats(reg.meta.Name, deliver.Sub(receive), false)
			return
		}
	}

	w.Header().Set("Content-Type", ct)
	w.Header().Set(KeyHeader, key)
	w.Header().Set(ServletHeader, reg.meta.Name)
	if cacheable {
		// The §3.1 rewrite: dynamically generated pages become cacheable
		// for CachePortal-compliant caches only.
		w.Header().Set("Cache-Control", fmt.Sprintf("private, owner=%q", CacheOwner))
	} else {
		w.Header().Set("Cache-Control", "no-cache")
	}
	entry.Status = status
	entry.Cached = cacheable
	s.bumpStats(reg.meta.Name, deliver.Sub(receive), false)
	if s.ReqLog != nil {
		s.ReqLog.Append(entry)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// serveFragmented answers a fragment-aware cache: a single fragment body
// when the request names one (fragment.FragmentHeader), or the composite
// transfer (template + all fragments under their own keys) when the cache
// announced composite support. It returns false when the client negotiated
// neither, in which case the caller serves the assembled whole page.
//
// Either way the request log gains one entry per fragment — CacheKey is the
// fragment's key and Receive/Deliver its build window, so the mapper
// attributes to each fragment exactly the queries its build ran — plus a
// zero-width entry for the template (no queries can fall in an empty
// window: the skeleton never acquires a mapping and survives row updates)
// and the ordinary whole-page entry marked not-cached, for log readers that
// follow requests rather than cache entries.
func (s *Server) serveFragmented(w http.ResponseWriter, r *http.Request, meta Meta, pageEntry RequestLogEntry, page *Page, frags []Fragment, ct string, deliver time.Time) bool {
	wantFrag := r.Header.Get(fragment.FragmentHeader)
	wantComposite := r.Header.Get(fragment.CompositeHeader) == fragment.CompositeAccept
	if wantFrag == "" && !wantComposite {
		return false
	}

	post, _ := url.ParseQuery(pageEntry.Post)
	sharedKey := SharedPageKey(r, post, meta.Keys)
	tmplKey := fragment.TemplateKey(sharedKey)
	fragKey := func(f Fragment) string {
		if f.Private {
			return fragment.Key(pageEntry.CacheKey, f.Name)
		}
		return fragment.Key(sharedKey, f.Name)
	}

	logEntries := func() {
		if s.ReqLog == nil {
			return
		}
		for _, f := range frags {
			fe := pageEntry
			fe.CacheKey = fragKey(f)
			fe.Receive, fe.Deliver = f.Start, f.End
			fe.Status = http.StatusOK
			fe.Cached = true
			s.ReqLog.Append(fe)
		}
		te := pageEntry
		te.CacheKey = tmplKey
		te.Receive, te.Deliver = deliver, deliver
		te.Status = http.StatusOK
		te.Cached = true
		s.ReqLog.Append(te)
		pe := pageEntry
		pe.Status = http.StatusOK
		pe.Cached = false
		s.ReqLog.Append(pe)
	}

	if wantFrag != "" {
		for _, f := range frags {
			if f.Name != wantFrag {
				continue
			}
			logEntries()
			w.Header().Set("Content-Type", ct)
			w.Header().Set(KeyHeader, fragKey(f))
			w.Header().Set(ServletHeader, meta.Name)
			w.Header().Set("Cache-Control", fmt.Sprintf("private, owner=%q", CacheOwner))
			w.WriteHeader(http.StatusOK)
			w.Write(f.Body)
			return true
		}
		logEntries()
		w.Header().Set("Cache-Control", "no-cache")
		http.Error(w, fmt.Sprintf("unknown fragment %q", wantFrag), http.StatusNotFound)
		return true
	}

	comp := &fragment.Composite{
		TemplateKey: tmplKey,
		Template:    page.Template,
		ContentType: ct,
		Servlet:     meta.Name,
	}
	for _, f := range frags {
		comp.Fragments = append(comp.Fragments, fragment.Piece{
			Ref:  fragment.Ref{Name: f.Name, Key: fragKey(f), Private: f.Private},
			Body: f.Body,
		})
	}
	enc, err := comp.Encode()
	if err != nil {
		// Encoding a composite cannot realistically fail; degrade to the
		// whole-page path rather than erroring the request.
		return false
	}
	logEntries()
	w.Header().Set("Content-Type", fragment.ContentType)
	w.Header().Set(fragment.CompositeHeader, fragment.CompositeYes)
	w.Header().Set(KeyHeader, tmplKey)
	w.Header().Set(ServletHeader, meta.Name)
	w.Header().Set("Cache-Control", fmt.Sprintf("private, owner=%q", CacheOwner))
	w.WriteHeader(http.StatusOK)
	w.Write(enc)
	return true
}

// pageCacheable folds the three §3.1 cacheability inputs: the page's own
// directive, the invalidator's feedback, and temporal sensitivity.
func (s *Server) pageCacheable(meta Meta, page *Page) bool {
	if page.NoCache {
		return false
	}
	if s.Cacheable != nil && !s.Cacheable(meta.Name) {
		return false
	}
	if meta.TemporalSensitivity > 0 && s.MinSensitivity > 0 &&
		meta.TemporalSensitivity < s.MinSensitivity {
		return false
	}
	return true
}

func (s *Server) bumpStats(name string, d time.Duration, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.servlets[name]
	if !ok {
		return
	}
	r.stats.Requests++
	r.stats.TotalServe += d
	if failed {
		r.stats.Errors++
	}
}
