package cluster

import (
	"net/http/httptest"
	"reflect"
	"testing"
)

func nodes(ids ...string) []NodeInfo {
	out := make([]NodeInfo, len(ids))
	for i, id := range ids {
		out[i] = NodeInfo{ID: id, URL: "http://" + id}
	}
	return out
}

func TestNewMapDeterministic(t *testing.T) {
	a := NewMap(0, nodes("n1", "n2", "n3"))
	b := NewMap(0, nodes("n1", "n2", "n3"))
	if a.NumSlots() != DefaultSlots {
		t.Fatalf("slots = %d, want %d", a.NumSlots(), DefaultSlots)
	}
	if !reflect.DeepEqual(a.Slots, b.Slots) {
		t.Fatal("two maps over the same nodes differ")
	}
	// Every slot has a primary that is a real node.
	for s, asn := range a.Slots {
		if _, ok := a.Node(asn.Primary); !ok {
			t.Fatalf("slot %d primary %q is not a node", s, asn.Primary)
		}
	}
}

func TestNewMapSpreadsSlots(t *testing.T) {
	m := NewMap(256, nodes("n1", "n2", "n3"))
	owned := map[string]int{}
	for _, a := range m.Slots {
		owned[a.Primary]++
	}
	for id, n := range owned {
		// Rendezvous over 256 slots should give every node a meaningful
		// share; an exact third is not required, a starving node is a bug.
		if n < 256/3/2 {
			t.Fatalf("node %s owns only %d/256 slots: %v", id, n, owned)
		}
	}
}

func TestBoundedMovementOnMembershipChange(t *testing.T) {
	old := NewMap(256, nodes("n1", "n2", "n3"))
	grown := old.WithNodes(nodes("n1", "n2", "n3", "n4"))
	moved := MovedSlots(old, grown)
	// Adding one node to three should move about 1/4 of the slots; assert
	// it stays well under half (a modulo ring would move ~3/4).
	if moved == 0 || moved > 256/2 {
		t.Fatalf("adding a node moved %d/256 slots", moved)
	}
	if grown.Version != old.Version+1 {
		t.Fatalf("version = %d, want %d", grown.Version, old.Version+1)
	}
	shrunk := old.WithNodes(nodes("n1", "n2"))
	moved = MovedSlots(old, shrunk)
	if moved == 0 || moved > 256/2 {
		t.Fatalf("removing a node moved %d/256 slots", moved)
	}
	// Slots n3 owned must all have moved to a surviving node.
	for s, a := range shrunk.Slots {
		if a.Primary == "n3" {
			t.Fatalf("slot %d still owned by departed n3", s)
		}
	}
}

func TestRouteKeyCollapsesSpellings(t *testing.T) {
	base := "example.com/app/search"
	spellings := []string{
		base,
		base + "?g:q=x&p:page=2",
		base + "?q=x&page=2#session=abc",
		base + "!frag=hotlist",
		base + "?g:q=x!tmpl",
	}
	want := RouteKey(spellings[0])
	for _, s := range spellings {
		if got := RouteKey(s); got != want {
			t.Fatalf("RouteKey(%q) = %q, want %q", s, got, want)
		}
	}
	m := NewMap(0, nodes("n1", "n2", "n3"))
	slot := m.Slot(want)
	for _, s := range spellings {
		if got := m.Slot(RouteKey(s)); got != slot {
			t.Fatalf("slot(%q) = %d, want %d", s, got, slot)
		}
	}
}

func TestRequestRouteKeyMatchesKeyProjection(t *testing.T) {
	r := httptest.NewRequest("GET", "http://example.com/app/search?q=x&page=2", nil)
	if got, want := RequestRouteKey(r), "example.com/app/search"; got != want {
		t.Fatalf("RequestRouteKey = %q, want %q", got, want)
	}
	if RequestRouteKey(r) != RouteKey("example.com/app/search?g:q=x") {
		t.Fatal("request projection and key projection disagree")
	}
}

func TestReplicas(t *testing.T) {
	m := NewMap(8, nodes("n1", "n2"))
	slot := 0
	primary := m.Slots[slot].Primary
	other := "n1"
	if primary == "n1" {
		other = "n2"
	}
	if !m.AddReplica(slot, other) {
		t.Fatal("AddReplica refused a valid replica")
	}
	if m.AddReplica(slot, other) {
		t.Fatal("AddReplica accepted a duplicate")
	}
	if m.AddReplica(slot, primary) {
		t.Fatal("AddReplica accepted the primary")
	}
	if m.AddReplica(slot, "ghost") {
		t.Fatal("AddReplica accepted an unknown node")
	}
	owners := m.Owners(slot)
	if len(owners) != 2 || owners[0].ID != primary || owners[1].ID != other {
		t.Fatalf("Owners = %v", owners)
	}
	if !m.IsOwner(slot, other) {
		t.Fatal("replica is not an owner")
	}
	if m.ReplicaCount() != 1 {
		t.Fatalf("ReplicaCount = %d", m.ReplicaCount())
	}
	if !m.RemoveReplica(slot, other) {
		t.Fatal("RemoveReplica refused")
	}
	if m.RemoveReplica(slot, primary) {
		t.Fatal("RemoveReplica dropped the primary")
	}
}

func TestViewVersionGate(t *testing.T) {
	v1 := NewMap(8, nodes("n1"))
	view := NewView(v1)
	v2 := v1.Clone()
	v2.Version = 2
	if !view.Install(v2) {
		t.Fatal("newer map rejected")
	}
	stale := v1.Clone() // version 1 again
	if view.Install(stale) {
		t.Fatal("stale map installed")
	}
	if view.Map().Version != 2 {
		t.Fatalf("view at version %d, want 2", view.Map().Version)
	}
	if view.Install(nil) {
		t.Fatal("nil map installed")
	}
}

func TestRouterURLsFor(t *testing.T) {
	m := NewMap(8, nodes("n1", "n2"))
	view := NewView(m)
	rt := Router{View: view}
	key := "example.com/app/home?g:user=1"
	urls := rt.URLsFor(key)
	if len(urls) != 1 {
		t.Fatalf("URLsFor = %v, want one owner", urls)
	}
	slot := m.Slot(RouteKey(key))
	if want := "http://" + m.Slots[slot].Primary; urls[0] != want {
		t.Fatalf("URLsFor = %v, want %q", urls, want)
	}
	// All spellings of the page route to the same URL set.
	if got := rt.URLsFor("example.com/app/home!frag=hot"); !reflect.DeepEqual(got, urls) {
		t.Fatalf("fragment key routed to %v, page key to %v", got, urls)
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers("n2=http://b:2/, n1=http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeInfo{{ID: "n1", URL: "http://a:1"}, {ID: "n2", URL: "http://b:2"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParsePeers = %v, want %v", got, want)
	}
	if _, err := ParsePeers("n1=http://a,n1=http://b"); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := ParsePeers("nonsense"); err == nil {
		t.Fatal("bad entry accepted")
	}
	if got, err := ParsePeers("  "); err != nil || got != nil {
		t.Fatalf("empty peers = %v, %v", got, err)
	}
}
