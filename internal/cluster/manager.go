package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
)

// Report is one cache node's self-description for the shard manager:
// which map version it runs, per-slot cumulative request counts, and its
// aggregate hit/miss totals. Served (inside DebugState) at /debug/cluster.
type Report struct {
	Node       string  `json:"node"`
	MapVersion int64   `json:"map_version"`
	SlotLoad   []int64 `json:"slot_load"`
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
}

// DebugState is the GET /debug/cluster payload: the node's report plus the
// map it is serving with — one probe round-trip gives the manager both.
type DebugState struct {
	Report Report `json:"report"`
	Map    *Map   `json:"map"`
}

// Probe is the manager's view of one cache node: fetch its load report,
// install a new map. The HTTP implementation talks to /debug/cluster;
// tests use in-process funcs.
type Probe interface {
	Fetch() (DebugState, error)
	Install(m *Map) error
}

// HTTPProbe probes a cache node over its serving URL (the proxy handles
// /debug/cluster itself, so the manager needs no extra port).
type HTTPProbe struct {
	// URL is the node's base URL.
	URL string
	// Client defaults to httpx.Default.
	Client *http.Client
}

// Fetch implements Probe.
func (p HTTPProbe) Fetch() (DebugState, error) {
	var st DebugState
	resp, err := httpx.Client(p.Client).Get(p.URL + DebugClusterPath)
	if err != nil {
		return st, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("cluster: probe %s: status %d", p.URL, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("cluster: probe %s: %w", p.URL, err)
	}
	return st, nil
}

// Install implements Probe.
func (p HTTPProbe) Install(m *Map) error {
	body, err := json.Marshal(m)
	if err != nil {
		return err
	}
	resp, err := httpx.Client(p.Client).Post(p.URL+DebugClusterPath, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: install %s: status %d", p.URL, resp.StatusCode)
	}
	return nil
}

// DebugClusterPath is where a cluster-aware cache node serves (GET) and
// accepts (POST) its membership view.
const DebugClusterPath = "/debug/cluster"

// ProbeFuncs adapts plain functions to Probe for in-process wiring.
type ProbeFuncs struct {
	FetchFn   func() (DebugState, error)
	InstallFn func(m *Map) error
}

// Fetch implements Probe.
func (p ProbeFuncs) Fetch() (DebugState, error) { return p.FetchFn() }

// Install implements Probe.
func (p ProbeFuncs) Install(m *Map) error { return p.InstallFn(m) }

// Manager is the adaptive replication loop: each round it probes every
// node's per-slot request counters, finds slots running disproportionately
// hot (a flash crowd concentrates one URL family into one slot), and grows
// their replica sets so the balancer can spread that slot's traffic; slots
// that cooled back down shed replicas. Movement is bounded per round
// (MaxMoves) and the map version only moves forward, so a rebalance is a
// sequence of small, cheap steps — never a reshuffle.
type Manager struct {
	// View is the manager's own (authoritative) copy of the map.
	View *View
	// Probes name the cache nodes, aligned with the map's node list.
	Probes []Probe
	// MaxReplicas caps extra owners per slot (default 1).
	MaxReplicas int
	// HotFactor: a slot is hot when its per-round request delta exceeds
	// HotFactor × the mean slot delta (default 4).
	HotFactor float64
	// CoolFactor: a replicated slot sheds a replica when its delta falls
	// below CoolFactor × the mean (default 1).
	CoolFactor float64
	// MaxMoves bounds replica additions+removals per round (default 2).
	MaxMoves int
	// MinLoad is the per-round request floor below which a slot is never
	// considered hot, so idle-cluster noise doesn't replicate (default 16).
	MinLoad int64
	// Obs, when set, records rounds, replica migrations, and the current
	// replica count.
	Obs *obs.Registry

	mu   sync.Mutex
	prev []int64

	metricsOnce sync.Once
	rounds      *obs.Counter
	migrations  *obs.Counter
	probeFails  *obs.Counter
	replicas    *obs.Gauge
}

func (mg *Manager) defaults() (maxReplicas, maxMoves int, hot, cool float64, minLoad int64) {
	maxReplicas = mg.MaxReplicas
	if maxReplicas <= 0 {
		maxReplicas = 1
	}
	maxMoves = mg.MaxMoves
	if maxMoves <= 0 {
		maxMoves = 2
	}
	hot = mg.HotFactor
	if hot <= 0 {
		hot = 4
	}
	cool = mg.CoolFactor
	if cool <= 0 {
		cool = 1
	}
	minLoad = mg.MinLoad
	if minLoad <= 0 {
		minLoad = 16
	}
	return
}

func (mg *Manager) metrics() {
	mg.metricsOnce.Do(func() {
		if mg.Obs == nil {
			return
		}
		mg.rounds = mg.Obs.Counter("cluster.manager.rounds_total")
		mg.migrations = mg.Obs.Counter("cluster.manager.replica_migrations_total")
		mg.probeFails = mg.Obs.Counter("cluster.manager.probe_failures_total")
		mg.replicas = mg.Obs.Gauge("cluster.manager.replicas")
	})
}

// Round runs one probe/decide/publish pass and reports how many replicas
// were added and dropped. Unreachable nodes are skipped (their load reads
// as zero this round); all probes failing is an error.
func (mg *Manager) Round() (added, dropped int, err error) {
	mg.metrics()
	if mg.rounds != nil {
		mg.rounds.Inc()
	}
	maxReplicas, maxMoves, hotF, coolF, minLoad := mg.defaults()
	m := mg.View.Map()
	if m == nil || m.NumSlots() == 0 {
		return 0, 0, fmt.Errorf("cluster: manager has no map")
	}
	slots := m.NumSlots()

	cur := make([]int64, slots)
	ownedSlots := make(map[string]int, len(m.Nodes))
	reached := 0
	for _, p := range mg.Probes {
		st, perr := p.Fetch()
		if perr != nil {
			if mg.probeFails != nil {
				mg.probeFails.Inc()
			}
			continue
		}
		reached++
		for s, v := range st.Report.SlotLoad {
			if s < slots {
				cur[s] += v
			}
		}
	}
	if reached == 0 {
		return 0, 0, fmt.Errorf("cluster: all %d probes failed", len(mg.Probes))
	}
	for s := 0; s < slots; s++ {
		for _, o := range m.Owners(s) {
			ownedSlots[o.ID]++
		}
	}

	mg.mu.Lock()
	if len(mg.prev) != slots {
		mg.prev = make([]int64, slots)
	}
	delta := make([]int64, slots)
	var total int64
	for s := 0; s < slots; s++ {
		d := cur[s] - mg.prev[s]
		if d < 0 {
			d = 0 // a node restarted and its counters reset
		}
		delta[s] = d
		total += d
		mg.prev[s] = cur[s]
	}
	mg.mu.Unlock()
	mean := float64(total) / float64(slots)

	// Hottest first, so the bounded move budget goes where it matters.
	order := make([]int, slots)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return delta[order[i]] > delta[order[j]] })

	next := m.Clone()
	moves := 0
	for _, s := range order {
		if moves >= maxMoves {
			break
		}
		d := delta[s]
		switch {
		case d >= minLoad && float64(d) > hotF*mean && len(next.Slots[s].Replicas) < maxReplicas:
			if id := mg.replicaTarget(next, s, ownedSlots); id != "" {
				if next.AddReplica(s, id) {
					ownedSlots[id]++
					added++
					moves++
				}
			}
		case len(next.Slots[s].Replicas) > 0 && float64(d) < coolF*mean:
			reps := next.Slots[s].Replicas
			victim := reps[len(reps)-1]
			if next.RemoveReplica(s, victim) {
				ownedSlots[victim]--
				dropped++
				moves++
			}
		}
	}

	if added+dropped > 0 {
		next.Version = m.Version + 1
		mg.View.Install(next)
		for _, p := range mg.Probes {
			if ierr := p.Install(next); ierr != nil && mg.probeFails != nil {
				mg.probeFails.Inc()
			}
		}
		if mg.migrations != nil {
			mg.migrations.Add(int64(added + dropped))
		}
	}
	if mg.replicas != nil {
		mg.replicas.Set(int64(mg.View.Map().ReplicaCount()))
	}
	return added, dropped, nil
}

// replicaTarget picks the non-owner node with the fewest owned slots — the
// cheapest place to absorb a hot slot's traffic. Ties break by ID.
func (mg *Manager) replicaTarget(m *Map, slot int, ownedSlots map[string]int) string {
	best := ""
	bestOwned := 0
	for _, n := range m.Nodes {
		if m.IsOwner(slot, n.ID) {
			continue
		}
		owned := ownedSlots[n.ID]
		if best == "" || owned < bestOwned || (owned == bestOwned && n.ID < best) {
			best, bestOwned = n.ID, owned
		}
	}
	return best
}

// Run rounds on the interval until stop closes. Probe errors are expected
// while nodes restart; the loop just keeps its cadence.
func (mg *Manager) Run(interval time.Duration, stop <-chan struct{}) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			mg.Round()
		}
	}
}
