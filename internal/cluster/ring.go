// Package cluster holds the shared state of the distributed web-cache
// tier: a slot-based consistent-hash map that places cache keys on nodes,
// a version-gated view every component reads the current map through, and
// the key projection that makes the placement agree across layers — the
// balancer routing a request, a cache node deciding whether to serve or
// forward, and the invalidator routing an eject must all land on the same
// node for the same page.
//
// Placement is per URL path (host+path), not per full cache key: the
// origin's canonical keys, the proxy's request-derived keys, and the
// fragment/template keys of one page all differ after the '?' (KeySpec
// projection, cookie suffixes, fragment markers), so any finer projection
// would route an eject to a different node than stored the entry. Cutting
// the key at the first '?', '#' or '!' makes every spelling of one page —
// and all of its fragments — collapse to the same slot, which also means a
// fragment skeleton probe lands on the node holding the template.
//
// Per-slot primaries are chosen by rendezvous (highest-random-weight)
// hashing, so membership changes move only the slots whose winner changed:
// adding or removing one node relocates ~1/n of the slots and leaves the
// rest untouched — the bounded key movement the shard manager relies on
// when it grows or shrinks a slot's replica set at runtime.
package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// DefaultSlots is the hash-ring slot count when a Map is built with a
// non-positive slot count. Slots bound rebalancing granularity: more slots
// spread load finer but make the map (and /debug/cluster payloads) larger.
const DefaultSlots = 64

// NodeInfo names one cache node: a stable identity and its base URL.
type NodeInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// Assignment is one slot's owner set: the primary serves and stores the
// slot's keys; replicas are extra owners the shard manager added because
// the slot ran hot. Every owner both serves the slot and receives its
// ejects.
type Assignment struct {
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Map is one immutable version of the cluster's placement: which nodes
// exist and which owns each slot. Treat a published *Map as read-only —
// derive changed maps with Clone, then Install them into a View.
type Map struct {
	Version int64        `json:"version"`
	Slots   []Assignment `json:"slots"`
	Nodes   []NodeInfo   `json:"nodes"`
}

// NewMap builds version 1 of a placement over the given nodes: slots
// primaries by rendezvous hash, no replicas. A non-positive slot count
// means DefaultSlots; an empty node list yields a map that routes nothing
// (every Owners call returns nil).
func NewMap(slots int, nodes []NodeInfo) *Map {
	if slots <= 0 {
		slots = DefaultSlots
	}
	m := &Map{Version: 1, Slots: make([]Assignment, slots), Nodes: append([]NodeInfo(nil), nodes...)}
	for s := range m.Slots {
		m.Slots[s].Primary = rendezvous(s, m.Nodes)
	}
	return m
}

// rendezvous picks the highest-random-weight node for a slot. Ties (hash
// collisions) break by ID order so the choice is deterministic everywhere.
// The FNV score is run through a finalizer: FNV's last multiply leaves the
// high bits correlated with the input prefix (the node ID), which would
// skew the magnitude comparison and starve some nodes of slots.
func rendezvous(slot int, nodes []NodeInfo) string {
	var best string
	var bestScore uint64
	for _, n := range nodes {
		score := mix64(fnv64(n.ID + "\x00" + fmt.Sprint(slot)))
		if best == "" || score > bestScore || (score == bestScore && n.ID < best) {
			best, bestScore = n.ID, score
		}
	}
	return best
}

// mix64 is a 64-bit avalanche finalizer (splitmix64's): every input bit
// flips about half the output bits, making hash magnitudes comparable.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// fnv64 is FNV-1a over s — the one hash both slot projection and
// rendezvous scoring use, inlined so the hot path allocates nothing.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NumSlots returns the slot count.
func (m *Map) NumSlots() int { return len(m.Slots) }

// Slot maps a route key (RouteKey/RequestRouteKey) to its slot.
func (m *Map) Slot(routeKey string) int {
	if len(m.Slots) == 0 {
		return 0
	}
	return int(fnv64(routeKey) % uint64(len(m.Slots)))
}

// Owners returns the slot's owner nodes, primary first. Unknown IDs
// (a replica whose node left) are skipped.
func (m *Map) Owners(slot int) []NodeInfo {
	if slot < 0 || slot >= len(m.Slots) {
		return nil
	}
	a := m.Slots[slot]
	out := make([]NodeInfo, 0, 1+len(a.Replicas))
	if n, ok := m.Node(a.Primary); ok {
		out = append(out, n)
	}
	for _, id := range a.Replicas {
		if n, ok := m.Node(id); ok {
			out = append(out, n)
		}
	}
	return out
}

// IsOwner reports whether the node serves the slot (primary or replica).
func (m *Map) IsOwner(slot int, nodeID string) bool {
	if slot < 0 || slot >= len(m.Slots) {
		return false
	}
	a := m.Slots[slot]
	if a.Primary == nodeID {
		return true
	}
	for _, id := range a.Replicas {
		if id == nodeID {
			return true
		}
	}
	return false
}

// Node resolves a node ID.
func (m *Map) Node(id string) (NodeInfo, bool) {
	for _, n := range m.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeInfo{}, false
}

// Clone deep-copies the map so a manager can derive the next version
// without mutating the published one.
func (m *Map) Clone() *Map {
	out := &Map{Version: m.Version, Slots: make([]Assignment, len(m.Slots)), Nodes: append([]NodeInfo(nil), m.Nodes...)}
	for i, a := range m.Slots {
		out.Slots[i] = Assignment{Primary: a.Primary, Replicas: append([]string(nil), a.Replicas...)}
	}
	return out
}

// AddReplica adds nodeID to the slot's replica set; false when it is
// already an owner or unknown.
func (m *Map) AddReplica(slot int, nodeID string) bool {
	if slot < 0 || slot >= len(m.Slots) || m.IsOwner(slot, nodeID) {
		return false
	}
	if _, ok := m.Node(nodeID); !ok {
		return false
	}
	m.Slots[slot].Replicas = append(m.Slots[slot].Replicas, nodeID)
	return true
}

// RemoveReplica drops nodeID from the slot's replica set (never the
// primary); false when it was not a replica.
func (m *Map) RemoveReplica(slot int, nodeID string) bool {
	if slot < 0 || slot >= len(m.Slots) {
		return false
	}
	reps := m.Slots[slot].Replicas
	for i, id := range reps {
		if id == nodeID {
			m.Slots[slot].Replicas = append(reps[:i:i], reps[i+1:]...)
			return true
		}
	}
	return false
}

// WithNodes derives the next map version for a changed membership:
// primaries are re-chosen by rendezvous (so only slots whose winner
// changed move), replicas belonging to departed nodes are dropped, and the
// version is bumped.
func (m *Map) WithNodes(nodes []NodeInfo) *Map {
	out := NewMap(len(m.Slots), nodes)
	out.Version = m.Version + 1
	for s := range m.Slots {
		for _, id := range m.Slots[s].Replicas {
			if _, ok := out.Node(id); ok && !out.IsOwner(s, id) {
				out.Slots[s].Replicas = append(out.Slots[s].Replicas, id)
			}
		}
	}
	return out
}

// MovedSlots counts slots whose primary differs between two maps — the
// bounded-movement measure rebalancing is judged by.
func MovedSlots(a, b *Map) int {
	n := len(a.Slots)
	if len(b.Slots) < n {
		n = len(b.Slots)
	}
	moved := 0
	for i := 0; i < n; i++ {
		if a.Slots[i].Primary != b.Slots[i].Primary {
			moved++
		}
	}
	return moved
}

// ReplicaCount sums replica assignments across all slots.
func (m *Map) ReplicaCount() int {
	n := 0
	for _, a := range m.Slots {
		n += len(a.Replicas)
	}
	return n
}

// RouteKey projects a cache key — canonical, request-derived, fragment, or
// template — to its placement key: everything before the first '?', '#' or
// '!' (host+path). All spellings of one page project identically, so
// request routing and eject routing agree.
func RouteKey(key string) string {
	if i := strings.IndexAny(key, "?#!"); i >= 0 {
		return key[:i]
	}
	return key
}

// RequestRouteKey is RouteKey computed straight from an incoming request.
func RequestRouteKey(r *http.Request) string {
	return r.Host + r.URL.Path
}

// View is the version-gated holder of the current map, shared by every
// component in one process (proxy, balancer, ejector router). Reads are a
// pointer load under RLock; installs only ever move the version forward,
// so a stale manager publish cannot roll the cluster back.
type View struct {
	mu sync.RWMutex
	m  *Map
}

// NewView wraps an initial map.
func NewView(m *Map) *View { return &View{m: m} }

// Map returns the current map. Callers must treat it as immutable.
func (v *View) Map() *Map {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.m
}

// Install publishes m when it is strictly newer than the current version;
// it reports whether the install happened.
func (v *View) Install(m *Map) bool {
	if m == nil {
		return false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m != nil && m.Version <= v.m.Version {
		return false
	}
	v.m = m
	return true
}

// Router routes cache keys to the URLs of the nodes that may hold them —
// the invalidator's HTTPEjector plugs this in so a routed eject probes
// only the key's owners instead of fanning to every cache.
type Router struct {
	View *View
}

// URLsFor returns the owner URLs for a key's slot, primary first. Empty
// when the map routes nothing (the caller should fall back to fanning
// everywhere).
func (rt Router) URLsFor(key string) []string {
	m := rt.View.Map()
	if m == nil {
		return nil
	}
	owners := m.Owners(m.Slot(RouteKey(key)))
	out := make([]string, len(owners))
	for i, n := range owners {
		out[i] = n.URL
	}
	return out
}

// ParsePeers parses a -peers flag value of the form "id=url,id=url" into
// a node list, sorted by ID so every daemon derives the same map no matter
// how its flag happened to order the peers.
func ParsePeers(s string) ([]NodeInfo, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []NodeInfo
	seen := make(map[string]bool)
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		id, url, ok := strings.Cut(item, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer entry %q (want id=url)", item)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		out = append(out, NodeInfo{ID: id, URL: strings.TrimSuffix(url, "/")})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
