package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/httpx"
)

// The eject stream replaces per-cache HTTP pushes with a feed: the
// invalidator appends each eject batch to an EjectLog and every cache node
// long-polls it from its own cursor. A replica that drops and rejoins
// catches up from where it left off instead of serving permanently stale
// pages; one that lags past the retention window sees the truncation
// signal in-band and falls back to the conservative recovery every other
// log in this system uses — clear everything, re-warm from the origin.

// DefaultEjectRetain bounds how many eject records the log keeps for
// resuming consumers. At the default eject batch size this covers hundreds
// of thousands of ejected keys of catch-up.
const DefaultEjectRetain = 8192

// DefaultStreamMaxWait caps how long the stream handler parks a long poll
// (mirrors the log exporter's cap; clients should use a shorter wait than
// their HTTP client timeout).
const DefaultStreamMaxWait = 25 * time.Second

// EjectRecord is one entry of the eject stream: a batch of cache keys to
// invalidate, or a whole-cache clear (the invalidator's conservative
// recovery, which must reach replicas too).
type EjectRecord struct {
	Seq   int64    `json:"seq"`
	Keys  []string `json:"keys,omitempty"`
	Clear bool     `json:"clear,omitempty"`
}

// EjectLog is the append-only, bounded-retention eject stream. Sequences
// are dense and start at 1, like every cursor-addressed log here.
type EjectLog struct {
	mu      sync.Mutex
	recs    []EjectRecord
	first   int64 // seq of recs[0]; == next when empty
	next    int64
	retain  int
	changed chan struct{}
}

// NewEjectLog creates a log retaining up to retain records
// (DefaultEjectRetain when <= 0).
func NewEjectLog(retain int) *EjectLog {
	if retain <= 0 {
		retain = DefaultEjectRetain
	}
	return &EjectLog{first: 1, next: 1, retain: retain, changed: make(chan struct{})}
}

// Append adds an eject batch and returns its sequence.
func (l *EjectLog) Append(keys []string) int64 {
	return l.append(EjectRecord{Keys: append([]string(nil), keys...)})
}

// AppendClear adds a whole-cache clear record.
func (l *EjectLog) AppendClear() int64 {
	return l.append(EjectRecord{Clear: true})
}

func (l *EjectLog) append(rec EjectRecord) int64 {
	l.mu.Lock()
	rec.Seq = l.next
	l.next++
	l.recs = append(l.recs, rec)
	if drop := len(l.recs) - l.retain; drop > 0 {
		l.recs = append(l.recs[:0:0], l.recs[drop:]...)
		l.first += int64(drop)
	}
	ch := l.changed
	l.changed = make(chan struct{})
	l.mu.Unlock()
	close(ch)
	return rec.Seq
}

// Since reads all records with seq >= cursor — the feed.Pull shape:
// records, whether records the caller wanted were already discarded, the
// cursor to resume from, and the oldest retained sequence.
func (l *EjectLog) Since(cursor int64) (recs []EjectRecord, truncated bool, next, first int64) {
	if cursor < 1 {
		cursor = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < l.first {
		truncated = true
		cursor = l.first
	}
	if off := cursor - l.first; off < int64(len(l.recs)) {
		recs = append([]EjectRecord(nil), l.recs[off:]...)
	}
	return recs, truncated, l.next, l.first
}

// Changed returns a channel closed on the next append. Obtain it before
// reading Since, re-obtain after every wakeup.
func (l *EjectLog) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}

// NextSeq returns the sequence the next append will get — the stream head,
// which a caught-up consumer's cursor equals.
func (l *EjectLog) NextSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// streamPage is the stream handler's JSON shape, mirroring the log
// exporter's pages: records plus resume/truncation context.
type streamPage struct {
	Records   []EjectRecord `json:"records"`
	Truncated bool          `json:"truncated"`
	Next      int64         `json:"next"`
	First     int64         `json:"first"`
}

// Handler serves the stream over HTTP: GET ?cursor=N&wait=DUR returns all
// records at or after the cursor, long-polling up to wait (capped at
// DefaultStreamMaxWait) when the log has nothing new — the SUBSCRIBE-style
// edge each webcached consumes the invalidator through.
func (l *EjectLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		cursor := int64(1)
		if v := r.URL.Query().Get("cursor"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad cursor", http.StatusBadRequest)
				return
			}
			cursor = n
		}
		var wait time.Duration
		if v := r.URL.Query().Get("wait"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad wait", http.StatusBadRequest)
				return
			}
			if d > DefaultStreamMaxWait {
				d = DefaultStreamMaxWait
			}
			wait = d
		}
		recs, trunc, next, first := l.Since(cursor)
		if len(recs) == 0 && !trunc && wait > 0 {
			deadline := time.NewTimer(wait)
			defer deadline.Stop()
		poll:
			for {
				// Channel before re-read, so an append racing the read either
				// lands in the read or wakes us — never lost.
				ch := l.Changed()
				recs, trunc, next, first = l.Since(cursor)
				if len(recs) > 0 || trunc {
					break
				}
				select {
				case <-ch:
				case <-deadline.C:
					break poll
				case <-r.Context().Done():
					return
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(streamPage{Records: recs, Truncated: trunc, Next: next, First: first})
	})
}

// StreamEjector adapts the log to the invalidator's Ejector/BulkEjector
// shape: ejects are appended to the stream for the cache nodes to consume,
// instead of being pushed to each cache. Appends cannot fail, so the
// invalidator's retry/breaker machinery never triggers on this edge;
// delivery failures become consumer lag instead.
type StreamEjector struct {
	Log *EjectLog
}

// Eject implements the invalidator's Ejector.
func (e StreamEjector) Eject(keys []string) error {
	if len(keys) > 0 {
		e.Log.Append(keys)
	}
	return nil
}

// EjectAll implements the invalidator's BulkEjector: replicas must see the
// conservative clear too, so it rides the stream as a record.
func (e StreamEjector) EjectAll() error {
	e.Log.AppendClear()
	return nil
}

// Consumer tails an eject stream endpoint over HTTP with cursor resume:
// Run long-polls, applies each record through Apply/Clear, and advances
// the cursor only after applying — so a consumer stopped and restarted at
// its cursor misses nothing. A truncated response (the log dropped records
// we had not seen) triggers Clear: with ejects lost, clearing everything
// is the only way back to freshness.
type Consumer struct {
	// URL is the stream endpoint (EjectLog.Handler's mount).
	URL string
	// Client performs the long polls; its timeout must exceed Wait.
	// httpx.Default (10s) when nil.
	Client *http.Client
	// Apply invalidates a batch of keys in the local cache (required).
	Apply func(keys []string)
	// Clear flushes the local cache — truncation recovery (required).
	Clear func()
	// Wait is the server-side long-poll wait per request (default 5s).
	Wait time.Duration
	// OnError, when set, observes transport/decode failures (the consumer
	// itself just backs off and retries).
	OnError func(error)

	cursor  atomic.Int64
	applied atomic.Int64
	cleared atomic.Int64
}

// Cursor returns the resume cursor: the sequence after the last applied
// record.
func (c *Consumer) Cursor() int64 {
	if v := c.cursor.Load(); v > 0 {
		return v
	}
	return 1
}

// SetCursor positions the consumer before Run — a rejoining node hands
// back the cursor it saved when it dropped.
func (c *Consumer) SetCursor(v int64) { c.cursor.Store(v) }

// Applied returns how many key-batch records were applied; Cleared how
// many clears (including truncation recoveries) ran.
func (c *Consumer) Applied() int64 { return c.applied.Load() }

// Cleared returns how many whole-cache clears the consumer performed.
func (c *Consumer) Cleared() int64 { return c.cleared.Load() }

// Run tails the stream until stop closes. Transport failures back off with
// jitter (capped exponential, like every reconnecting edge here) and
// resume from the same cursor. A long poll in flight when stop closes is
// aborted immediately rather than riding out its wait.
func (c *Consumer) Run(stop <-chan struct{}) {
	wait := c.Wait
	if wait <= 0 {
		wait = 5 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-stop
		cancel()
	}()
	failures := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		page, err := c.fetch(ctx, wait)
		if err != nil {
			failures++
			if c.OnError != nil {
				c.OnError(err)
			}
			select {
			case <-time.After(backoff.Delay(250*time.Millisecond, failures, 5*time.Second)):
			case <-stop:
				return
			}
			continue
		}
		failures = 0
		if page.Truncated {
			c.Clear()
			c.cleared.Add(1)
		}
		for _, rec := range page.Records {
			if rec.Clear {
				c.Clear()
				c.cleared.Add(1)
			} else if len(rec.Keys) > 0 {
				c.Apply(rec.Keys)
				c.applied.Add(1)
			}
		}
		if page.Next > c.Cursor() {
			c.cursor.Store(page.Next)
		}
	}
}

func (c *Consumer) fetch(ctx context.Context, wait time.Duration) (streamPage, error) {
	var page streamPage
	url := fmt.Sprintf("%s?cursor=%d&wait=%s", c.URL, c.Cursor(), wait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return page, err
	}
	resp, err := httpx.Client(c.Client).Do(req)
	if err != nil {
		return page, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("cluster: eject stream: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return page, fmt.Errorf("cluster: eject stream: %w", err)
	}
	return page, nil
}
