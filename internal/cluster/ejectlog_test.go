package cluster

import (
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestEjectLogSinceAndRetention(t *testing.T) {
	l := NewEjectLog(4)
	for i := 0; i < 6; i++ {
		l.Append([]string{string(rune('a' + i))})
	}
	// Records 1 and 2 fell out of the 4-record retention.
	recs, trunc, next, first := l.Since(1)
	if !trunc {
		t.Fatal("expired cursor not flagged truncated")
	}
	if first != 3 || next != 7 || len(recs) != 4 {
		t.Fatalf("Since(1) = %d recs, first=%d next=%d", len(recs), first, next)
	}
	if recs[0].Seq != 3 {
		t.Fatalf("oldest retained seq = %d, want 3", recs[0].Seq)
	}
	// A live cursor reads exactly the tail, no truncation.
	recs, trunc, _, _ = l.Since(6)
	if trunc || len(recs) != 1 || recs[0].Seq != 6 {
		t.Fatalf("Since(6) = %v trunc=%v", recs, trunc)
	}
	// A caught-up cursor reads nothing.
	recs, trunc, _, _ = l.Since(7)
	if trunc || len(recs) != 0 {
		t.Fatalf("Since(head) = %v trunc=%v", recs, trunc)
	}
}

func TestEjectLogChangedWakesBeforeRead(t *testing.T) {
	l := NewEjectLog(0)
	ch := l.Changed()
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	l.Append([]string{"k"})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Changed channel never closed on append")
	}
}

func TestStreamHandlerLongPoll(t *testing.T) {
	l := NewEjectLog(0)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	c := &Consumer{URL: srv.URL, Wait: 2 * time.Second}
	var mu sync.Mutex
	var got []string
	c.Apply = func(keys []string) {
		mu.Lock()
		got = append(got, keys...)
		mu.Unlock()
	}
	c.Clear = func() { t.Error("unexpected clear") }
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		c.Run(stop)
		close(done)
	}()

	// The append lands while a long poll is parked; the consumer must see
	// it promptly rather than waiting out the full poll window.
	time.Sleep(50 * time.Millisecond)
	l.Append([]string{"k1", "k2"})
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("long-poll consumer never saw the append")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	if !reflect.DeepEqual(got, []string{"k1", "k2"}) {
		t.Fatalf("applied %v", got)
	}
	mu.Unlock()
	close(stop)
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("consumer did not stop; in-flight poll not aborted")
	}
	if c.Cursor() != 2 {
		t.Fatalf("cursor = %d, want 2", c.Cursor())
	}
}

func TestConsumerCursorResume(t *testing.T) {
	l := NewEjectLog(0)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	l.Append([]string{"a"})
	l.Append([]string{"b"})

	run := func(c *Consumer) {
		stop := make(chan struct{})
		done := make(chan struct{})
		go func() { c.Run(stop); close(done) }()
		deadline := time.Now().Add(3 * time.Second)
		for c.Cursor() < l.NextSeq() {
			if time.Now().After(deadline) {
				t.Fatalf("consumer stuck at cursor %d, head %d", c.Cursor(), l.NextSeq())
			}
			time.Sleep(5 * time.Millisecond)
		}
		close(stop)
		<-done
	}

	var mu sync.Mutex
	var got []string
	apply := func(keys []string) { mu.Lock(); got = append(got, keys...); mu.Unlock() }
	first := &Consumer{URL: srv.URL, Wait: 50 * time.Millisecond, Apply: apply, Clear: func() {}}
	run(first)
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("first run applied %v", got)
	}

	// While the consumer is down, more ejects land. A second consumer
	// resuming at the saved cursor applies only the missed records.
	l.Append([]string{"c"})
	l.Append([]string{"d"})
	got = nil
	second := &Consumer{URL: srv.URL, Wait: 50 * time.Millisecond, Apply: apply, Clear: func() {}}
	second.SetCursor(first.Cursor())
	run(second)
	if !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Fatalf("resumed run applied %v, want only the missed records", got)
	}
}

func TestConsumerTruncationClears(t *testing.T) {
	l := NewEjectLog(2)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	for i := 0; i < 8; i++ {
		l.Append([]string{"k"})
	}
	cleared := make(chan struct{}, 1)
	c := &Consumer{
		URL:   srv.URL,
		Wait:  50 * time.Millisecond,
		Apply: func([]string) {},
		Clear: func() {
			select {
			case cleared <- struct{}{}:
			default:
			}
		},
	}
	c.SetCursor(1) // long gone: retention kept only seqs 7..8
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { c.Run(stop); close(done) }()
	select {
	case <-cleared:
	case <-time.After(3 * time.Second):
		t.Fatal("truncated consumer never cleared")
	}
	close(stop)
	<-done
	if c.Cleared() == 0 {
		t.Fatal("Cleared counter not bumped")
	}
	if c.Cursor() != l.NextSeq() {
		t.Fatalf("cursor = %d after recovery, want head %d", c.Cursor(), l.NextSeq())
	}
}

func TestStreamEjector(t *testing.T) {
	l := NewEjectLog(0)
	e := StreamEjector{Log: l}
	if err := e.Eject([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Eject(nil); err != nil {
		t.Fatal(err)
	}
	if err := e.EjectAll(); err != nil {
		t.Fatal(err)
	}
	recs, _, next, _ := l.Since(1)
	// The empty eject must not have appended a record.
	if len(recs) != 2 || next != 3 {
		t.Fatalf("log has %d records, next=%d", len(recs), next)
	}
	if !reflect.DeepEqual(recs[0].Keys, []string{"x"}) || recs[0].Clear {
		t.Fatalf("rec 1 = %+v", recs[0])
	}
	if !recs[1].Clear {
		t.Fatalf("rec 2 = %+v, want clear", recs[1])
	}
}
