package cluster

import (
	"errors"
	"testing"
)

// fakeNode is an in-process cache node for manager tests: it reports a
// canned slot-load vector and remembers installed maps.
type fakeNode struct {
	id        string
	load      []int64
	view      *View
	installed int
	down      bool
}

func (f *fakeNode) probe() Probe {
	return ProbeFuncs{
		FetchFn: func() (DebugState, error) {
			if f.down {
				return DebugState{}, errors.New("down")
			}
			m := f.view.Map()
			return DebugState{
				Report: Report{Node: f.id, MapVersion: m.Version, SlotLoad: f.load},
				Map:    m,
			}, nil
		},
		InstallFn: func(m *Map) error {
			if f.down {
				return errors.New("down")
			}
			f.installed++
			f.view.Install(m)
			return nil
		},
	}
}

func managerFixture(slots int) (*Manager, []*fakeNode, *Map) {
	m := NewMap(slots, nodes("n1", "n2", "n3"))
	view := NewView(m)
	var fakes []*fakeNode
	var probes []Probe
	for _, id := range []string{"n1", "n2", "n3"} {
		f := &fakeNode{id: id, load: make([]int64, slots), view: NewView(m)}
		fakes = append(fakes, f)
		probes = append(probes, f.probe())
	}
	mg := &Manager{View: view, Probes: probes}
	return mg, fakes, m
}

func TestManagerReplicatesHotSlot(t *testing.T) {
	mg, fakes, m := managerFixture(16)
	// Round 1 establishes the baseline counters (all zero deltas).
	if _, _, err := mg.Round(); err != nil {
		t.Fatal(err)
	}
	// A flash crowd: slot 3 takes 1000 requests on its primary while every
	// other slot stays nearly idle.
	hot := 3
	primary := m.Slots[hot].Primary
	for _, f := range fakes {
		if f.id == primary {
			f.load[hot] = 1000
		}
	}
	added, dropped, err := mg.Round()
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || dropped != 0 {
		t.Fatalf("round added=%d dropped=%d, want 1 replica added", added, dropped)
	}
	next := mg.View.Map()
	if next.Version != m.Version+1 {
		t.Fatalf("version = %d, want %d", next.Version, m.Version+1)
	}
	if len(next.Slots[hot].Replicas) != 1 {
		t.Fatalf("hot slot replicas = %v", next.Slots[hot].Replicas)
	}
	if rep := next.Slots[hot].Replicas[0]; rep == primary {
		t.Fatal("replica placed on the primary")
	}
	// The new map was installed on every node, not just decided centrally.
	for _, f := range fakes {
		if f.installed != 1 {
			t.Fatalf("node %s saw %d installs", f.id, f.installed)
		}
		if f.view.Map().Version != next.Version {
			t.Fatalf("node %s at version %d", f.id, f.view.Map().Version)
		}
	}
}

func TestManagerCoolsIdleReplica(t *testing.T) {
	mg, fakes, m := managerFixture(16)
	mg.Round() // baseline
	hot := 5
	primary := m.Slots[hot].Primary
	for _, f := range fakes {
		if f.id == primary {
			f.load[hot] = 1000
		}
	}
	mg.Round() // replicates slot 5
	if mg.View.Map().ReplicaCount() != 1 {
		t.Fatalf("replicas = %d after hot round", mg.View.Map().ReplicaCount())
	}
	// Now other slots carry the traffic and slot 5 goes quiet: the replica
	// must be shed.
	for _, f := range fakes {
		for s := range f.load {
			if s != hot {
				f.load[s] += 200
			}
		}
	}
	added, dropped, err := mg.Round()
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || dropped != 1 {
		t.Fatalf("cool round added=%d dropped=%d", added, dropped)
	}
	if mg.View.Map().ReplicaCount() != 0 {
		t.Fatalf("replicas = %d after cool round", mg.View.Map().ReplicaCount())
	}
}

func TestManagerIgnoresIdleNoise(t *testing.T) {
	mg, fakes, _ := managerFixture(16)
	mg.Round()
	// A handful of requests below MinLoad concentrated in one slot is not a
	// flash crowd.
	fakes[0].load[2] = 10
	added, dropped, err := mg.Round()
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 || dropped != 0 {
		t.Fatalf("idle noise moved replicas: added=%d dropped=%d", added, dropped)
	}
}

func TestManagerBoundsMovesPerRound(t *testing.T) {
	mg, fakes, m := managerFixture(32)
	mg.Round()
	// Many slots run hot at once; the manager must not replicate them all
	// in one round.
	for s := 0; s < 16; s++ {
		primary := m.Slots[s].Primary
		for _, f := range fakes {
			if f.id == primary {
				f.load[s] = 10000
			}
		}
	}
	added, dropped, err := mg.Round()
	if err != nil {
		t.Fatal(err)
	}
	if added+dropped > 2 {
		t.Fatalf("round made %d moves, bound is 2", added+dropped)
	}
}

func TestManagerSkipsDownNodesAndFailsWhenAllDown(t *testing.T) {
	mg, fakes, _ := managerFixture(16)
	mg.Round()
	fakes[0].down = true
	if _, _, err := mg.Round(); err != nil {
		t.Fatalf("one down node broke the round: %v", err)
	}
	for _, f := range fakes {
		f.down = true
	}
	if _, _, err := mg.Round(); err == nil {
		t.Fatal("all probes down, round reported success")
	}
}
