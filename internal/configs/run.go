package configs

import (
	"repro/internal/simnet"
)

// site bundles the stations shared by the three configurations.
type site struct {
	p     Params
	sim   *simnet.Sim
	lan   *simnet.Station
	wsCPU []*simnet.Station
	wsThr []*simnet.Resource

	respHit  simnet.Tally
	respMiss simnet.Tally
	respAll  simnet.Tally
	dbSpan   simnet.Tally

	next int // round-robin web server index
}

func newSite(p Params) *site {
	s := &site{p: p, sim: simnet.New(p.Seed)}
	s.lan = simnet.NewStation(s.sim, "lan", 1)
	for i := 0; i < p.WebServers; i++ {
		s.wsCPU = append(s.wsCPU, simnet.NewStation(s.sim, "ws-cpu", 1))
		s.wsThr = append(s.wsThr, simnet.NewResource(s.sim, "ws-threads", p.ThreadsPerServer))
	}
	return s
}

// pickWS round-robins over the web servers (the LocalDirector).
func (s *site) pickWS() int {
	i := s.next
	s.next = (s.next + 1) % s.p.WebServers
	return i
}

// pickClass draws a request class from the mix.
func (s *site) pickClass() Class {
	x := s.sim.Rng.Float64()
	acc := 0.0
	for c := 0; c < 2; c++ {
		acc += s.p.Mix[c]
		if x < acc {
			return Class(c)
		}
	}
	return Heavy
}

// arrivals schedules a Poisson request stream calling handle per request.
func (s *site) arrivals(rate float64, handle func()) {
	if rate <= 0 {
		return
	}
	var next func()
	next = func() {
		handle()
		s.sim.After(s.sim.Exp(1/rate), next)
	}
	s.sim.After(s.sim.Exp(1/rate), next)
}

// finish records one completed request.
func (s *site) finish(start float64, hit bool) {
	d := s.sim.Now() - start
	s.respAll.Add(d)
	if hit {
		s.respHit.Add(d)
	} else {
		s.respMiss.Add(d)
	}
}

// row assembles the result row. dbStations supplies utilization.
func (s *site) row(dbStations []*simnet.Station) Row {
	r := Row{
		MissDB:   1000 * s.dbSpan.Mean(),
		MissResp: 1000 * s.respMiss.Mean(),
		HitResp:  -1,
		ExpResp:  1000 * s.respAll.Mean(),
		Hits:     s.respHit.N(),
		Misses:   s.respMiss.N(),
		LANUtil:  s.lan.Utilization(s.p.Duration),
	}
	if s.respHit.N() > 0 {
		r.HitResp = 1000 * s.respHit.Mean()
	}
	for _, db := range dbStations {
		if u := db.Utilization(s.p.Duration); u > r.DBUtil {
			r.DBUtil = u
		}
	}
	for _, ws := range s.wsCPU {
		if u := ws.Utilization(s.p.Duration); u > r.WSUtil {
			r.WSUtil = u
		}
	}
	return r
}

// exps draws an exponential service time with the given mean (all service
// demands are exponential to model the variability of real components).
func (s *site) exps(mean float64) float64 { return s.sim.Exp(mean) }

// ---------------------------------------------------------------------------
// Configuration I — replicated web server + DBMS pairs, no caching (§1.1)
// ---------------------------------------------------------------------------

// RunConfigI simulates Configuration I: each PC hosts web server,
// application server, and a DBMS replica; every request computes its page
// from its local replica; updates are applied at every replica
// (dist_synch_cost).
func RunConfigI(p Params) Row {
	s := newSite(p)
	sv := p.Service

	s.arrivals(p.RequestRate, func() {
		start := s.sim.Now()
		class := s.pickClass()
		i := s.pickWS()
		cpu, thr := s.wsCPU[i], s.wsThr[i]
		// WAN in → LAN in → acquire worker → AS pre → DB (same CPU) →
		// AS post → LAN out → WAN out.
		s.sim.After(sv.WANDelay, func() {
			s.lan.Visit(s.exps(sv.LANRequest), func() {
				thr.Acquire(func() {
					cpu.Visit(s.exps(sv.ASPre), func() {
						qStart := s.sim.Now()
						cpu.Visit(s.exps(sv.DB[class]), func() {
							s.dbSpan.Add(s.sim.Now() - qStart)
							cpu.Visit(s.exps(sv.ASPost), func() {
								thr.Release()
								s.lan.Visit(s.exps(sv.LANResponse), func() {
									s.sim.After(sv.WANDelay, func() {
										s.finish(start, false)
									})
								})
							})
						})
					})
				})
			})
		})
	})

	// Updates: each tuple crosses the LAN once (the replication fan-out is
	// a broadcast on the shared segment) and is applied on every replica's
	// CPU — the dist_synch_cost of §5.1.1.
	s.arrivals(p.UpdateRate, func() {
		s.lan.Visit(s.exps(sv.LANUpdate), func() {
			for i := 0; i < p.WebServers; i++ {
				s.wsCPU[i].Visit(s.exps(sv.DBUpdateReplica), nil)
			}
		})
	})

	s.sim.Run(p.Duration)
	return s.row(s.wsCPU) // DB shares the PC CPUs; report their utilization
}

// ---------------------------------------------------------------------------
// Configuration II — single DBMS + middle-tier data caches (§1.2)
// ---------------------------------------------------------------------------

// RunConfigII simulates Configuration II: one dedicated DBMS, a data cache
// on each PC answering HitRatio of the queries, delta-based cache
// synchronization over the LAN every SyncInterval. MidTierConnCost > 0
// reproduces Table 3 (cache = local DBMS with connection overhead).
func RunConfigII(p Params) Row {
	s := newSite(p)
	sv := p.Service
	db := simnet.NewStation(s.sim, "db", 1)

	s.arrivals(p.RequestRate, func() {
		start := s.sim.Now()
		class := s.pickClass()
		i := s.pickWS()
		cpu, thr := s.wsCPU[i], s.wsThr[i]
		dataHit := s.sim.Rng.Float64() < p.HitRatio

		s.sim.After(sv.WANDelay, func() {
			s.lan.Visit(s.exps(sv.LANRequest), func() {
				thr.Acquire(func() {
					cpu.Visit(s.exps(sv.ASPre), func() {
						afterData := func() {
							cpu.Visit(s.exps(sv.ASPost), func() {
								thr.Release()
								s.lan.Visit(s.exps(sv.LANResponse), func() {
									s.sim.After(sv.WANDelay, func() {
										s.finish(start, dataHit)
									})
								})
							})
						}
						if dataHit {
							// Data served by the middle-tier cache. Table 2
							// mode: negligible. Table 3 mode: a connection
							// to the local cache DBMS costs CPU.
							if p.MidTierConnCost > 0 {
								cpu.Visit(s.exps(p.MidTierConnCost), afterData)
							} else {
								afterData()
							}
						} else {
							// Remote DBMS access; Table 3 mode pays a
							// connection-establishment cost at the DBMS.
							qStart := s.sim.Now()
							s.lan.Visit(s.exps(sv.LANQuery), func() {
								db.Visit(s.exps(p.DBConnCost+sv.DB[class]), func() {
									s.lan.Visit(s.exps(sv.LANResult), func() {
										s.dbSpan.Add(s.sim.Now() - qStart)
										afterData()
									})
								})
							})
						}
					})
				})
			})
		})
	})

	// Updates go to the single DBMS over the LAN.
	var tuplesSinceSync float64
	s.arrivals(p.UpdateRate, func() {
		tuplesSinceSync++
		s.lan.Visit(s.exps(sv.LANUpdate), func() {
			db.Visit(s.exps(sv.DBUpdate), nil)
		})
	})

	// Data-cache synchronization: per cache per interval, one LAN message
	// sized by the tuples accumulated since the last sync, plus a DB read
	// of the update log (§5.2.5: "one query, which fetches the list of
	// updates, per cache ... every second").
	var syncTick func()
	syncTick = func() {
		n := tuplesSinceSync
		tuplesSinceSync = 0
		for i := 0; i < p.WebServers; i++ {
			s.lan.Visit(s.exps(sv.SyncBase+sv.SyncPerTuple*n), func() {
				db.Visit(s.exps(sv.PollDBCost+sv.SyncDBPerTuple*n), nil)
			})
		}
		s.sim.After(p.SyncInterval, syncTick)
	}
	s.sim.After(p.SyncInterval, syncTick)

	s.sim.Run(p.Duration)
	return s.row([]*simnet.Station{db})
}

// ---------------------------------------------------------------------------
// Configuration III — dynamic web-page cache in front of the site (§1.3)
// ---------------------------------------------------------------------------

// RunConfigIII simulates the proposed architecture: a web cache on its own
// machine outside the site LAN serves HitRatio of the requests; misses
// traverse the LAN to the PCs and the single DBMS; the invalidator issues
// one polling query per second against the DBMS and sends (negligible)
// invalidation messages to the cache.
func RunConfigIII(p Params) Row {
	s := newSite(p)
	sv := p.Service
	db := simnet.NewStation(s.sim, "db", 1)
	cache := simnet.NewStation(s.sim, "webcache", 1)

	s.arrivals(p.RequestRate, func() {
		start := s.sim.Now()
		class := s.pickClass()
		pageHit := s.sim.Rng.Float64() < p.HitRatio

		s.sim.After(sv.WANDelay, func() {
			cache.Visit(s.exps(sv.CacheService), func() {
				if pageHit {
					// Served entirely outside the site network.
					s.sim.After(sv.WANDelay, func() { s.finish(start, true) })
					return
				}
				i := s.pickWS()
				cpu, thr := s.wsCPU[i], s.wsThr[i]
				s.lan.Visit(s.exps(sv.LANRequest), func() {
					thr.Acquire(func() {
						cpu.Visit(s.exps(sv.ASPre), func() {
							qStart := s.sim.Now()
							s.lan.Visit(s.exps(sv.LANQuery), func() {
								db.Visit(s.exps(sv.DB[class]), func() {
									s.lan.Visit(s.exps(sv.LANResult), func() {
										s.dbSpan.Add(s.sim.Now() - qStart)
										cpu.Visit(s.exps(sv.ASPost), func() {
											thr.Release()
											s.lan.Visit(s.exps(sv.LANResponse), func() {
												cache.Visit(s.exps(sv.CacheService), func() {
													s.sim.After(sv.WANDelay, func() {
														s.finish(start, false)
													})
												})
											})
										})
									})
								})
							})
						})
					})
				})
			})
		})
	})

	// Updates reach the DBMS over the LAN (the cache is outside it).
	var tuplesSinceSync float64
	s.arrivals(p.UpdateRate, func() {
		tuplesSinceSync++
		s.lan.Visit(s.exps(sv.LANUpdate), func() {
			db.Visit(s.exps(sv.DBUpdate), nil)
		})
	})

	// Invalidator: one polling query per second to the DBMS (§5.2.4), and
	// an invalidation message to the cache sized by the update batch.
	var pollTick func()
	pollTick = func() {
		n := tuplesSinceSync
		tuplesSinceSync = 0
		db.Visit(s.exps(sv.PollDBCost+sv.SyncDBPerTuple*n), func() {
			cache.Visit(s.exps(0.0002*n), nil) // eject messages: tiny
		})
		s.sim.After(p.SyncInterval, pollTick)
	}
	s.sim.After(p.SyncInterval, pollTick)

	s.sim.Run(p.Duration)
	return s.row([]*simnet.Station{db})
}
