package configs

import (
	"testing"
)

// fast returns parameters small enough for unit tests while keeping the
// qualitative regimes (Conf I saturated, II/III stable).
func fast() Params {
	p := Defaults()
	p.Duration = 60
	return p
}

func TestDefaultsSane(t *testing.T) {
	p := Defaults()
	if p.RequestRate != 30 || p.WebServers != 4 || p.HitRatio != 0.7 {
		t.Fatalf("defaults: %+v", p)
	}
	mixSum := p.Mix[0] + p.Mix[1] + p.Mix[2]
	if mixSum < 0.999 || mixSum > 1.001 {
		t.Fatalf("mix sum: %f", mixSum)
	}
	if p.avgDB() <= 0 {
		t.Fatal("avgDB")
	}
}

func TestConfigIIsSaturated(t *testing.T) {
	r := RunConfigI(fast())
	if r.WSUtil < 0.98 {
		t.Fatalf("Conf I web servers should saturate: util %.2f", r.WSUtil)
	}
	if r.ExpResp < 2000 {
		t.Fatalf("Conf I should be in seconds: %.0f ms", r.ExpResp)
	}
	if r.HitResp != -1 {
		t.Fatalf("Conf I has no cache: hit %.0f", r.HitResp)
	}
	// The paper: roughly one third of Conf I's time is DB time.
	share := r.MissDB / r.MissResp
	if share < 0.15 || share > 0.6 {
		t.Fatalf("DB share %.2f outside plausible band", share)
	}
}

func TestConfigIIStableAndSubSecondExpected(t *testing.T) {
	r := RunAveraged(fast(), 5, RunConfigII)
	if r.ExpResp > 2000 || r.ExpResp < 50 {
		t.Fatalf("Conf II expected: %.0f ms", r.ExpResp)
	}
	if r.HitResp >= r.MissResp {
		t.Fatalf("hit %.0f should beat miss %.0f", r.HitResp, r.MissResp)
	}
	if r.WSUtil > 0.95 {
		t.Fatalf("Conf II web servers should be stable: %.2f", r.WSUtil)
	}
	ratio := float64(r.Hits) / float64(r.Hits+r.Misses)
	if ratio < 0.6 || ratio > 0.8 {
		t.Fatalf("hit ratio %.2f, want ≈0.7", ratio)
	}
}

func TestConfigIIIBeatsConfigII(t *testing.T) {
	p := Defaults() // full window: the near-critical DBMS needs it
	for _, rate := range []float64{0, 48} {
		p.UpdateRate = rate
		r2 := RunAveraged(p, 7, RunConfigII)
		r3 := RunAveraged(p, 7, RunConfigIII)
		if r3.ExpResp >= r2.ExpResp {
			t.Fatalf("upd=%.0f: Conf III (%.0f) should beat Conf II (%.0f)",
				rate, r3.ExpResp, r2.ExpResp)
		}
		if r3.HitResp >= r2.HitResp {
			t.Fatalf("upd=%.0f: III hits (%.0f) should beat II hits (%.0f)",
				rate, r3.HitResp, r2.HitResp)
		}
	}
}

func TestConfigIIIHitFlatUnderUpdates(t *testing.T) {
	p := fast()
	p.UpdateRate = 0
	r0 := RunAveraged(p, 5, RunConfigIII)
	p.UpdateRate = 48
	r48 := RunAveraged(p, 5, RunConfigIII)
	// Hits are served outside the site LAN: update traffic must not move
	// them (allow 20% tolerance for noise).
	if r48.HitResp > r0.HitResp*1.2 {
		t.Fatalf("Conf III hits rose with updates: %.1f → %.1f", r0.HitResp, r48.HitResp)
	}
}

func TestConfigIIHitRisesUnderUpdates(t *testing.T) {
	p := fast()
	p.Duration = 120
	p.UpdateRate = 0
	r0 := RunAveraged(p, 7, RunConfigII)
	p.UpdateRate = 48
	r48 := RunAveraged(p, 7, RunConfigII)
	// Conf II hits share the LAN with update and sync traffic.
	if r48.HitResp <= r0.HitResp {
		t.Fatalf("Conf II hits should rise with updates: %.1f → %.1f", r0.HitResp, r48.HitResp)
	}
}

func TestTable3ConfigIICollapses(t *testing.T) {
	p := fast()
	p.Duration = 120
	t2 := RunAveraged(p, 3, RunConfigII)
	t3p := Table3Params(p)
	t3 := RunAveraged(t3p, 3, RunConfigII)
	if t3.ExpResp < 10*t2.ExpResp {
		t.Fatalf("Table 3 Conf II should collapse: %.0f vs %.0f", t3.ExpResp, t2.ExpResp)
	}
	// The paper's surprise: with the connection overhead, hits are no
	// better than misses (hits pay the contended local cache connection;
	// in the paper they are outright worse).
	if t3.HitResp < t3.MissResp*0.6 {
		t.Fatalf("Table 3 hits (%.0f) should not beat misses (%.0f) by much",
			t3.HitResp, t3.MissResp)
	}
	// Conf III is unaffected by the middle-tier change.
	r3 := RunAveraged(t3p, 3, RunConfigIII)
	if r3.ExpResp > 2000 {
		t.Fatalf("Conf III should not change in Table 3 mode: %.0f", r3.ExpResp)
	}
}

func TestDeterminism(t *testing.T) {
	p := fast()
	a := RunConfigIII(p)
	b := RunConfigIII(p)
	if a != b {
		t.Fatalf("same seed must reproduce: %+v vs %+v", a, b)
	}
	p.Seed = 99
	c := RunConfigIII(p)
	if a == c {
		t.Fatal("different seed should differ")
	}
}

func TestRunAveragedAggregates(t *testing.T) {
	p := fast()
	p.Duration = 30
	r := RunAveraged(p, 3, RunConfigIII)
	if r.Hits == 0 || r.Misses == 0 {
		t.Fatalf("row: %+v", r)
	}
	one := RunAveraged(p, 0, RunConfigIII) // n<1 clamps to 1
	if one.Hits == 0 {
		t.Fatalf("row: %+v", one)
	}
}

func TestTable2GridShape(t *testing.T) {
	p := fast()
	p.Duration = 40
	cells := Table2(p, 1)
	if len(cells) != 9 {
		t.Fatalf("cells: %d", len(cells))
	}
	if cells[0].Config != "I" || cells[1].Config != "II" || cells[2].Config != "III" {
		t.Fatalf("order: %+v", cells[:3])
	}
	if cells[0].Load != "No Updates" || cells[8].Load != "<12,12,12,12>" {
		t.Fatalf("loads: %s %s", cells[0].Load, cells[8].Load)
	}
}

func TestTable3GridUsesConnCosts(t *testing.T) {
	p := fast()
	p.Duration = 40
	cells := Table3(p, 1)
	if len(cells) != 9 {
		t.Fatalf("cells: %d", len(cells))
	}
	// Conf II must be dramatically slower than in Table 2 at the same size.
	t2 := Table2(p, 1)
	if cells[1].Row.ExpResp < 5*t2[1].Row.ExpResp {
		t.Fatalf("Table3 II %.0f vs Table2 II %.0f", cells[1].Row.ExpResp, t2[1].Row.ExpResp)
	}
}

func TestUpdateLoadLabels(t *testing.T) {
	if len(UpdateLoads) != 3 || UpdateLoads[0].Rate != 0 || UpdateLoads[2].Rate != 48 {
		t.Fatalf("loads: %+v", UpdateLoads)
	}
}

func TestClassString(t *testing.T) {
	if Light.String() != "light" || Medium.String() != "medium" || Heavy.String() != "heavy" {
		t.Fatal("class names")
	}
}
