package configs

// This file is the experiment harness proper: it regenerates the paper's
// Table 2 and Table 3 grids from the simulation, averaging several seeded
// replications because Configurations II/III run their DBMS near
// saturation, where single-run estimates of a 300-second window have large
// variance.

// Replications is the default number of independent seeded runs averaged
// per cell.
const Replications = 15

// RunAveraged executes run over n replications (seeds p.Seed, p.Seed+1, …)
// and returns the field-wise average row.
func RunAveraged(p Params, n int, run func(Params) Row) Row {
	if n < 1 {
		n = 1
	}
	var acc Row
	hitRuns := 0
	for i := 0; i < n; i++ {
		q := p
		q.Seed = p.Seed + int64(i)
		r := run(q)
		acc.MissDB += r.MissDB
		acc.MissResp += r.MissResp
		acc.ExpResp += r.ExpResp
		if r.HitResp >= 0 {
			acc.HitResp += r.HitResp
			hitRuns++
		}
		acc.Hits += r.Hits
		acc.Misses += r.Misses
		acc.DBUtil += r.DBUtil
		acc.WSUtil += r.WSUtil
		acc.LANUtil += r.LANUtil
	}
	f := float64(n)
	acc.MissDB /= f
	acc.MissResp /= f
	acc.ExpResp /= f
	if hitRuns > 0 {
		acc.HitResp /= float64(hitRuns)
	} else {
		acc.HitResp = -1
	}
	acc.DBUtil /= f
	acc.WSUtil /= f
	acc.LANUtil /= f
	return acc
}

// Cell is one (configuration, update load) group of a results table.
type Cell struct {
	Config string // "I", "II", "III"
	Load   string // update-load label
	Rate   float64
	Row    Row
}

// runners pairs configuration labels with their simulators.
var runners = []struct {
	name string
	run  func(Params) Row
}{
	{"I", RunConfigI},
	{"II", RunConfigII},
	{"III", RunConfigIII},
}

// grid runs the 3×3 grid for the given base parameters.
func grid(base Params, reps int) []Cell {
	var out []Cell
	for _, load := range UpdateLoads {
		for _, r := range runners {
			p := base
			p.UpdateRate = load.Rate
			out = append(out, Cell{
				Config: r.name,
				Load:   load.Label,
				Rate:   load.Rate,
				Row:    RunAveraged(p, reps, r.run),
			})
		}
	}
	return out
}

// Table2 regenerates the paper's Table 2 (negligible middle-tier cache
// access overhead): MidTierConnCost and DBConnCost are zero.
func Table2(base Params, reps int) []Cell {
	base.MidTierConnCost = 0
	base.DBConnCost = 0
	return grid(base, reps)
}

// Table3Params returns the Table 3 variant of base: the middle-tier cache
// is a local DBMS whose every access costs a connection establishment, and
// cache misses pay a connection at the remote DBMS.
func Table3Params(base Params) Params {
	base.MidTierConnCost = 0.150
	base.DBConnCost = 0.050
	return base
}

// Table3 regenerates the paper's Table 3 (non-negligible middle-tier cache
// access overhead). Only Configuration II differs from Table 2; I and III
// are re-run for completeness, as in the paper's layout.
func Table3(base Params, reps int) []Cell {
	return grid(Table3Params(base), reps)
}
