// Package configs rebuilds the paper's three site architectures (§1.1–1.3,
// §5) as open queueing networks on internal/simnet and measures the
// response-time grid of Tables 2 and 3: miss DB time, miss response, hit
// response, and expected response under each update load.
//
// Modeling notes (see DESIGN.md §2 for the substitution argument):
//
//   - Each web-server PC is a 1-server CPU station plus a worker-thread
//     Resource held across the whole request — the paper's resource
//     starvation ("processes holding essential system resources ... while
//     waiting for query results").
//   - Configuration I co-locates a DBMS replica on each PC, so queries and
//     page generation contend for the same saturated CPU: the network is
//     unstable at 30 req/s and mean response grows with the measurement
//     window, reproducing the tens-of-seconds row.
//   - Configurations II/III use one dedicated DBMS station; the site LAN is
//     a shared station crossed by requests, queries, update traffic and
//     (Conf II only) data-cache synchronization — which is why Conf II hit
//     times rise with update rate while Conf III hits, served outside the
//     LAN, stay flat.
//   - Table 3 adds a per-access connection cost at the middle-tier cache
//     (modeled as extra CPU work on the web-server PC), which tips the PCs
//     into saturation: Conf II becomes worse than no caching at all.
package configs

// Class indexes the paper's three page weights.
type Class int

// Request classes (§5.2.1): light selects on the small table, medium on the
// large table, heavy joins both.
const (
	Light Class = iota
	Medium
	Heavy
)

// String names the request class.
func (c Class) String() string {
	switch c {
	case Light:
		return "light"
	case Medium:
		return "medium"
	default:
		return "heavy"
	}
}

// ServiceTimes are the calibrated service demands, in seconds, standing in
// for the paper's 200 MHz PCs and 10 Mb/s site network.
type ServiceTimes struct {
	// DB is the DBMS service time per query, by class.
	DB [3]float64
	// ASPre is application-server work before the query (parsing, query
	// preparation); ASPost is page generation afterwards. Both run on the
	// web-server PC's CPU.
	ASPre  float64
	ASPost float64
	// WANDelay is the one-way client↔site propagation delay (no queueing).
	WANDelay float64
	// LAN message service times on the shared site network.
	LANRequest  float64 // inbound request
	LANResponse float64 // outbound page
	LANQuery    float64 // app server → DBMS
	LANResult   float64 // DBMS → app server
	LANUpdate   float64 // one update tuple crossing the site network
	// DBUpdate is DBMS work to apply one update tuple (SQL execution at
	// the single DBMS of Confs II/III).
	DBUpdate float64
	// DBUpdateReplica is per-replica work to apply one replicated tuple in
	// Conf I (cheaper than DBUpdate: replicas apply shipped log records,
	// not SQL).
	DBUpdateReplica float64
	// SyncBase/SyncPerTuple: Conf II data-cache synchronization message on
	// the LAN, once per cache per SyncInterval (§5.2.5).
	SyncBase     float64
	SyncPerTuple float64
	// SyncDBPerTuple is DBMS work per accumulated tuple to serve one
	// cache's update-list fetch — Conf II pays it per cache per interval,
	// which is the "heavy database-cache synchronization overhead" of
	// §1.2; Conf III's single invalidator pays it once.
	SyncDBPerTuple float64
	// CacheService is the web cache's per-request work (Conf III).
	CacheService float64
	// PollDBCost is DBMS work for the invalidator's once-per-second
	// polling query (Conf III; §5.2.4 simulates polling as one query/s).
	PollDBCost float64
}

// Params is the full experiment parameterization (the paper's Table 1).
type Params struct {
	// Duration is the measured window in seconds.
	Duration float64
	// Seed drives all randomness; same seed, same result.
	Seed int64
	// RequestRate is HTTP requests per second (num_req).
	RequestRate float64
	// Mix is the class distribution (10 light, 10 medium, 10 heavy → ⅓ each).
	Mix [3]float64
	// UpdateRate is total updated tuples per second (update_rate);
	// ⟨5,5,5,5⟩ = 20/s, ⟨12,12,12,12⟩ = 48/s.
	UpdateRate float64
	// WebServers is the PC count behind the balancer (rep_rate).
	WebServers int
	// ThreadsPerServer is each PC's worker pool size.
	ThreadsPerServer int
	// HitRatio is the cache hit ratio (hit_ratio, 70% in §5.2.4–5.2.5):
	// web-cache hits in Conf III, data-cache hits in Conf II.
	HitRatio float64
	// SyncInterval is the data-cache/invalidator synchronization period.
	SyncInterval float64
	// MidTierConnCost is Table 3's per-access connection overhead at the
	// middle-tier cache (0 reproduces Table 2). It is CPU work on the PC
	// hosting the cache, paid by data-cache hits.
	MidTierConnCost float64
	// DBConnCost is Table 3's connection overhead for reaching the remote
	// DBMS on a data-cache miss, paid at the DBMS (0 reproduces Table 2).
	DBConnCost float64
	// QueriesPerRequest is query_per_request (1 in the paper's workload).
	QueriesPerRequest int
	// Service are the component service demands.
	Service ServiceTimes
}

// Defaults returns the calibrated parameter set reproducing Table 2's
// no-update column within the paper's order of magnitude.
func Defaults() Params {
	return Params{
		Duration:          150,
		Seed:              1,
		RequestRate:       30,
		Mix:               [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3},
		UpdateRate:        0,
		WebServers:        4,
		ThreadsPerServer:  256,
		HitRatio:          0.7,
		SyncInterval:      1.0,
		QueriesPerRequest: 1,
		Service: ServiceTimes{
			DB:              [3]float64{0.032, 0.085, 0.175},
			ASPre:           0.030,
			ASPost:          0.030,
			WANDelay:        0.015,
			LANRequest:      0.002,
			LANResponse:     0.004,
			LANQuery:        0.002,
			LANResult:       0.003,
			LANUpdate:       0.006,
			DBUpdate:        0.0012,
			DBUpdateReplica: 0.0008,
			SyncBase:        0.002,
			SyncPerTuple:    0.0012,
			SyncDBPerTuple:  0.0001,
			CacheService:    0.003,
			PollDBCost:      0.002,
		},
	}
}

// UpdateLoads are the paper's three update columns, as total tuples/s.
var UpdateLoads = []struct {
	Label string
	Rate  float64
}{
	{"No Updates", 0},
	{"<5,5,5,5>", 20},
	{"<12,12,12,12>", 48},
}

// Row is one configuration × update-rate cell group of Tables 2/3; times
// in milliseconds. HitResp and ExpResp are NaN-free: Conf I has no cache,
// so HitResp is reported as -1 (the paper prints N/A).
type Row struct {
	MissDB   float64 // query issue → result available (the "DB" column)
	MissResp float64 // end-user response time on a cache miss
	HitResp  float64 // end-user response time on a cache hit (-1 if no cache)
	ExpResp  float64 // observed mean over all requests

	Hits, Misses int64
	DBUtil       float64 // DBMS utilization (max across replicas)
	WSUtil       float64 // web-server CPU utilization (max across PCs)
	LANUtil      float64
}

// avgDB returns the class-weighted mean DB service time.
func (p Params) avgDB() float64 {
	s := 0.0
	for c := 0; c < 3; c++ {
		s += p.Mix[c] * p.Service.DB[c]
	}
	return s
}
