package trace

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)

func TestNilTracerIsOff(t *testing.T) {
	var tr *Tracer
	ctx := tr.Root("engine.commit", t0, t0)
	if ctx.Valid() {
		t.Fatalf("nil tracer returned valid context %+v", ctx)
	}
	if got := tr.Record(ctx, "x", t0, t0); got.Valid() {
		t.Fatalf("nil tracer Record returned valid context %+v", got)
	}
	if tr.Recording(7) || tr.Sampled(7) {
		t.Fatal("nil tracer claims to record")
	}
	tr.Force(7)
	tr.SetForceAll(true)
	if tr.Spans() != nil || tr.Traces() != nil {
		t.Fatal("nil tracer returned spans")
	}
	if s := tr.Stats(); s != (Stats{}) {
		t.Fatalf("nil tracer stats = %+v", s)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(2, 64)
	a := tr.Root("commit", t0, t0) // trace 1: unsampled
	b := tr.Root("commit", t0, t0) // trace 2: sampled
	if tr.Recording(a.Trace) {
		t.Fatalf("trace %d should be unsampled at sample=2", a.Trace)
	}
	if !tr.Recording(b.Trace) {
		t.Fatalf("trace %d should be sampled at sample=2", b.Trace)
	}
	tr.Record(a, "feed", t0, t0)
	tr.Record(b, "feed", t0, t0)
	if n := len(tr.TraceSpans(a.Trace)); n != 0 {
		t.Fatalf("unsampled trace recorded %d spans", n)
	}
	// Sampled trace has root + child.
	if n := len(tr.TraceSpans(b.Trace)); n != 2 {
		t.Fatalf("sampled trace recorded %d spans, want 2", n)
	}
}

func TestForcePinsUnsampledTrace(t *testing.T) {
	tr := New(1000, 64)
	ctx := tr.Root("commit", t0, t0)
	if tr.Recording(ctx.Trace) {
		t.Fatal("trace unexpectedly head-sampled")
	}
	tr.Force(ctx.Trace)
	if !tr.Recording(ctx.Trace) {
		t.Fatal("forced trace not recording")
	}
	child := tr.Record(ctx, "invalidator.retry", t0, t0.Add(time.Millisecond))
	spans := tr.TraceSpans(ctx.Trace)
	if len(spans) != 1 || spans[0].Name != "invalidator.retry" {
		t.Fatalf("forced trace spans = %+v", spans)
	}
	if spans[0].Parent != ctx.Span {
		t.Fatalf("child parent = %d, want %d (root span ID survives unsampled)", spans[0].Parent, ctx.Span)
	}
	if child.Span != spans[0].ID {
		t.Fatalf("returned context span = %d, want %d", child.Span, spans[0].ID)
	}
}

func TestForceSetBounded(t *testing.T) {
	tr := New(1000, 8)
	for i := int64(1); i <= maxForced+10; i++ {
		tr.Force(i)
	}
	if got := tr.Stats().Forced; got != maxForced {
		t.Fatalf("forced set size = %d, want %d", got, maxForced)
	}
	if tr.Recording(1) {
		t.Fatal("oldest pin should have been evicted")
	}
	if !tr.Recording(maxForced + 10) {
		t.Fatal("newest pin missing")
	}
}

func TestRingBound(t *testing.T) {
	tr := New(1, 4)
	for i := 0; i < 10; i++ {
		tr.Root("commit", t0.Add(time.Duration(i)*time.Second), t0)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(spans))
	}
	// Oldest first: traces 7,8,9,10 survive.
	if spans[0].Trace != 7 || spans[3].Trace != 10 {
		t.Fatalf("ring order = %d..%d, want 7..10", spans[0].Trace, spans[3].Trace)
	}
	st := tr.Stats()
	if st.Recorded != 10 || st.Dropped != 6 {
		t.Fatalf("stats = %+v, want recorded=10 dropped=6", st)
	}
}

func TestChainAndSummaries(t *testing.T) {
	tr := New(1, 64)
	root := tr.Root("engine.commit", t0, t0, Attr{K: "table", V: "Car"})
	feed := tr.Record(root, "feed.deliver", t0, t0.Add(2*time.Millisecond))
	tr.RecordTerminal(feed, "webcache.eject", t0.Add(2*time.Millisecond), t0.Add(5*time.Millisecond))

	spans := tr.TraceSpans(root.Trace)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[1].Parent != root.Span || spans[2].Parent != feed.Span {
		t.Fatalf("broken parent chain: %+v", spans)
	}
	if !spans[2].Terminal {
		t.Fatal("eject span not terminal")
	}

	sums := tr.Traces()
	if len(sums) != 1 {
		t.Fatalf("got %d summaries, want 1", len(sums))
	}
	s := sums[0]
	if s.Trace != root.Trace || s.Root != "engine.commit" || s.Spans != 3 || !s.Complete {
		t.Fatalf("summary = %+v", s)
	}
	if s.DurMS < 4.9 || s.DurMS > 5.1 {
		t.Fatalf("summary duration = %vms, want ~5", s.DurMS)
	}
}

func TestIncompleteTrace(t *testing.T) {
	tr := New(1, 64)
	root := tr.Root("engine.commit", t0, t0)
	tr.Record(root, "feed.deliver", t0, t0)
	if sums := tr.Traces(); len(sums) != 1 || sums[0].Complete {
		t.Fatalf("trace without terminal span reported complete: %+v", sums)
	}
}

func TestContextHeaderRoundTrip(t *testing.T) {
	ctxs := []Context{{Trace: 12, Span: 34}, {Trace: 56, Span: 78}}
	hdr := FormatContexts(ctxs)
	if hdr != "12:34,56:78" {
		t.Fatalf("header = %q", hdr)
	}
	back := ParseContexts(hdr)
	if len(back) != 2 || back[0] != ctxs[0] || back[1] != ctxs[1] {
		t.Fatalf("round trip = %+v", back)
	}
	if got := ParseContexts("garbage,1:2,:,x:y"); len(got) != 1 || got[0] != (Context{Trace: 1, Span: 2}) {
		t.Fatalf("lenient parse = %+v", got)
	}
	if ParseContext("no-colon").Valid() {
		t.Fatal("malformed context parsed as valid")
	}
}

func TestHandler(t *testing.T) {
	tr := New(1, 64)
	root := tr.Root("engine.commit", t0, t0)
	tr.RecordTerminal(root, "webcache.eject", t0, t0.Add(200*time.Millisecond))
	fast := tr.Root("engine.commit", t0, t0)
	tr.RecordTerminal(fast, "webcache.eject", t0, t0.Add(time.Millisecond))
	h := Handler(tr)

	get := func(url string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec.Code, rec.Body.String()
	}

	code, body := get("/debug/trace")
	if code != 200 {
		t.Fatalf("list: status %d", code)
	}
	var list struct {
		Stats  Stats     `json:"stats"`
		Traces []Summary `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Traces) != 2 || list.Stats.Recorded != 4 {
		t.Fatalf("list = %+v", list)
	}

	code, body = get("/debug/trace?min_ms=100")
	if code != 200 || !strings.Contains(body, `"trace": 1`) || strings.Contains(body, `"trace": 2`) {
		t.Fatalf("min_ms filter: status=%d body=%s", code, body)
	}

	code, body = get("/debug/trace?trace=1")
	if code != 200 {
		t.Fatalf("lookup: status %d", code)
	}
	var one struct {
		Trace int64  `json:"trace"`
		Spans []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if one.Trace != 1 || len(one.Spans) != 2 {
		t.Fatalf("lookup = %+v", one)
	}

	if code, _ = get("/debug/trace?trace=99"); code != 404 {
		t.Fatalf("missing trace: status %d, want 404", code)
	}
	if code, _ = get("/debug/trace?trace=bogus"); code != 400 {
		t.Fatalf("bad id: status %d, want 400", code)
	}
	if code, _ = get("/debug/trace?min_ms=bogus"); code != 400 {
		t.Fatalf("bad min_ms: status %d, want 400", code)
	}

	// Nil tracer serves the empty document.
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"traces": []`) {
		t.Fatalf("nil handler: status=%d body=%s", rec.Code, rec.Body.String())
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(2, 128)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ctx := tr.Root("commit", t0, t0)
				ctx = tr.Record(ctx, "feed", t0, t0)
				tr.RecordTerminal(ctx, "eject", t0, t0)
				if i%10 == 0 {
					tr.Force(ctx.Trace)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if len(tr.Spans()) != 128 {
		t.Fatalf("ring size = %d", len(tr.Spans()))
	}
}
