package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the tracer's buffer as JSON — the /debug/trace endpoint
// every daemon mounts next to /debug/metrics.
//
//	/debug/trace                recent traces (summaries, most recent first)
//	/debug/trace?n=20           cap the list
//	/debug/trace?min_ms=100     only traces at least that slow
//	/debug/trace?trace=<id>     full span list for one trace
//
// A nil tracer serves the empty document, so daemons mount the endpoint
// unconditionally and the -trace flag only decides whether it fills up.
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")

		q := req.URL.Query()
		if idStr := q.Get("trace"); idStr != "" {
			id, err := strconv.ParseInt(idStr, 10, 64)
			if err != nil {
				http.Error(w, "trace: bad ?trace id", http.StatusBadRequest)
				return
			}
			spans := t.TraceSpans(id)
			if len(spans) == 0 {
				w.WriteHeader(http.StatusNotFound)
			}
			enc.Encode(struct {
				Trace int64  `json:"trace"`
				Spans []Span `json:"spans"`
			}{Trace: id, Spans: spans})
			return
		}

		sums := t.Traces()
		if minStr := q.Get("min_ms"); minStr != "" {
			min, err := strconv.ParseFloat(minStr, 64)
			if err != nil {
				http.Error(w, "trace: bad ?min_ms", http.StatusBadRequest)
				return
			}
			kept := sums[:0]
			for _, s := range sums {
				if s.DurMS >= min {
					kept = append(kept, s)
				}
			}
			sums = kept
		}
		n := 50
		if nStr := q.Get("n"); nStr != "" {
			v, err := strconv.Atoi(nStr)
			if err != nil || v < 0 {
				http.Error(w, "trace: bad ?n", http.StatusBadRequest)
				return
			}
			n = v
		}
		if len(sums) > n {
			sums = sums[:n]
		}
		if sums == nil {
			sums = []Summary{}
		}
		enc.Encode(struct {
			Stats  Stats     `json:"stats"`
			Traces []Summary `json:"traces"`
		}{Stats: t.Stats(), Traces: sums})
	})
}
