// Package trace is CachePortal's dependency-free pipeline tracer. One
// trace follows one database update from the moment the engine commits it
// to the moment the web cache ejects the pages it invalidated — the causal
// chain behind a single point in the invalidator.staleness_seconds
// histogram.
//
// Design constraints, in order:
//
//   - Lock-cheap on the commit path. Allocating a trace ID is one atomic
//     add; an unsampled trace records nothing else. The span store is a
//     fixed ring buffer behind a mutex touched only for *recorded* spans.
//   - Bounded memory. Spans live in a ring of Buffer entries; old spans
//     are overwritten, never accumulated. The forced-sample set is a
//     bounded FIFO.
//   - Head-based sampling with a tail escape hatch. Whether a trace is
//     recorded is decided from its ID alone (every Nth trace), so every
//     process in the Figure-7 topology makes the same decision with no
//     coordination. When the invalidator discovers *after the fact* that a
//     trace is an outlier (an eject failed and the page is going stale),
//     it calls Force(id) so every subsequent span of that trace — the
//     retries, the circuit-breaker flush — is recorded even if the head
//     decision was "skip".
//
// All methods are nil-safe: a nil *Tracer is "tracing off" and costs one
// pointer compare, so components carry an optional tracer without guards.
package trace

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Context identifies a position in a trace: the trace itself plus the
// span that any new child should hang off. It travels in-band — inside
// UpdateLog records, wire LogRecords, and the X-Cacheportal-Trace HTTP
// header (see Context.String / ParseContext).
type Context struct {
	Trace int64 `json:"trace"`
	Span  int64 `json:"span,omitempty"`
}

// Valid reports whether the context belongs to a trace at all. The zero
// Context means "untraced" and is what every recording method returns when
// tracing is off.
func (c Context) Valid() bool { return c.Trace != 0 }

// String renders the context for header transport as "trace:span".
func (c Context) String() string {
	return strconv.FormatInt(c.Trace, 10) + ":" + strconv.FormatInt(c.Span, 10)
}

// ParseContext parses the Context.String form. Malformed input yields the
// zero (invalid) Context — header corruption must never fail an eject.
func ParseContext(s string) Context {
	t, sp, ok := strings.Cut(s, ":")
	if !ok {
		return Context{}
	}
	trace, err1 := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	span, err2 := strconv.ParseInt(strings.TrimSpace(sp), 10, 64)
	if err1 != nil || err2 != nil {
		return Context{}
	}
	return Context{Trace: trace, Span: span}
}

// FormatContexts joins contexts into one comma-separated header value,
// dropping invalid entries.
func FormatContexts(ctxs []Context) string {
	var b strings.Builder
	for _, c := range ctxs {
		if !c.Valid() {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// ParseContexts splits a FormatContexts header value, dropping invalid
// entries.
func ParseContexts(s string) []Context {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]Context, 0, len(parts))
	for _, p := range parts {
		if c := ParseContext(p); c.Valid() {
			out = append(out, c)
		}
	}
	return out
}

// Attr is one key/value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span is one recorded hop of the pipeline. Terminal marks the span that
// closes the trace (the web cache's eject); a trace whose span set includes
// a terminal span is complete.
type Span struct {
	Trace    int64     `json:"trace"`
	ID       int64     `json:"id"`
	Parent   int64     `json:"parent,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	DurNS    int64     `json:"dur_ns"`
	Terminal bool      `json:"terminal,omitempty"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// End returns the span's end time.
func (s Span) End() time.Time { return s.Start.Add(time.Duration(s.DurNS)) }

// DefaultSample is the daemons' default head-sampling rate: record every
// 64th trace. Production update rates make 1-in-64 plenty for exemplars;
// tests and the smoke harness use 1.
const DefaultSample = 64

// DefaultBuffer is the default span ring capacity.
const DefaultBuffer = 4096

// maxForced bounds the forced-sample set; oldest pins are evicted first.
const maxForced = 1024

// Tracer allocates trace IDs, decides sampling, and stores recorded spans
// in a bounded ring. The zero value is unusable; construct with New. A nil
// *Tracer is valid everywhere and means tracing is disabled.
type Tracer struct {
	sample    int64
	nextTrace atomic.Int64
	nextSpan  atomic.Int64
	forceAll  atomic.Bool
	recorded  atomic.Int64
	dropped   atomic.Int64

	mu      sync.Mutex
	ring    []Span
	pos     int  // next write index
	full    bool // ring has wrapped at least once
	forced  map[int64]struct{}
	forcedQ []int64 // FIFO eviction order for forced
}

// New builds a Tracer recording every sampleEvery-th trace (<=1 records
// all) into a ring of buffer spans (<=0 uses DefaultBuffer).
func New(sampleEvery, buffer int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	return &Tracer{
		sample: int64(sampleEvery),
		ring:   make([]Span, buffer),
		forced: make(map[int64]struct{}),
	}
}

// Sampled reports the head-based decision for a trace ID: true for every
// sample-th ID. Deterministic in the ID, so every process agrees.
func (t *Tracer) Sampled(id int64) bool {
	if t == nil || id == 0 {
		return false
	}
	return t.sample <= 1 || id%t.sample == 0
}

// Recording reports whether spans of the given trace should be recorded
// now: head-sampled, force-pinned, or under ForceAll.
func (t *Tracer) Recording(id int64) bool {
	if t == nil || id == 0 {
		return false
	}
	if t.sample <= 1 || id%t.sample == 0 || t.forceAll.Load() {
		return true
	}
	t.mu.Lock()
	_, ok := t.forced[id]
	t.mu.Unlock()
	return ok
}

// Force pins a trace ID so its subsequent spans are recorded regardless of
// the head-sampling decision — the forced-sample hook for outliers
// discovered mid-flight (a failed eject, a breaker trip). The pin set is
// bounded; the oldest pin is evicted past maxForced.
func (t *Tracer) Force(id int64) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.forced[id]; ok {
		return
	}
	for len(t.forcedQ) >= maxForced {
		delete(t.forced, t.forcedQ[0])
		t.forcedQ = t.forcedQ[1:]
	}
	t.forced[id] = struct{}{}
	t.forcedQ = append(t.forcedQ, id)
}

// SetForceAll toggles recording of every trace regardless of sampling —
// the smoke harness and tests use it instead of sample=1 wiring.
func (t *Tracer) SetForceAll(on bool) {
	if t == nil {
		return
	}
	t.forceAll.Store(on)
}

// Root opens a new trace and records its root span (when sampled). The
// returned Context carries a span ID even for unsampled traces, so the
// parent chain stays coherent if the trace is forced later.
func (t *Tracer) Root(name string, start, end time.Time, attrs ...Attr) Context {
	if t == nil {
		return Context{}
	}
	ctx := Context{Trace: t.nextTrace.Add(1), Span: t.nextSpan.Add(1)}
	if t.Recording(ctx.Trace) {
		t.push(Span{
			Trace: ctx.Trace, ID: ctx.Span, Name: name,
			Start: start, DurNS: int64(end.Sub(start)), Attrs: attrs,
		})
	}
	return ctx
}

// Record adds a child span under ctx with explicit start/end times and
// returns the child's context. Spans are recorded retroactively — the
// invalidator times a whole cycle phase and attributes it to each sampled
// trace in the batch — so there is no open/close API, just Record.
// Unrecorded traces return ctx unchanged so chains pass through.
func (t *Tracer) Record(ctx Context, name string, start, end time.Time, attrs ...Attr) Context {
	return t.record(ctx, name, start, end, false, attrs)
}

// RecordTerminal is Record for the span that closes the trace — the web
// cache's eject.
func (t *Tracer) RecordTerminal(ctx Context, name string, start, end time.Time, attrs ...Attr) Context {
	return t.record(ctx, name, start, end, true, attrs)
}

func (t *Tracer) record(ctx Context, name string, start, end time.Time, terminal bool, attrs []Attr) Context {
	if t == nil || !ctx.Valid() || !t.Recording(ctx.Trace) {
		return ctx
	}
	id := t.nextSpan.Add(1)
	t.push(Span{
		Trace: ctx.Trace, ID: id, Parent: ctx.Span, Name: name,
		Start: start, DurNS: int64(end.Sub(start)), Terminal: terminal, Attrs: attrs,
	})
	return Context{Trace: ctx.Trace, Span: id}
}

func (t *Tracer) push(s Span) {
	t.recorded.Add(1)
	t.mu.Lock()
	if t.full {
		t.dropped.Add(1)
	}
	t.ring[t.pos] = s
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Spans returns the buffered spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.pos]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.pos:]...)
	return append(out, t.ring[:t.pos]...)
}

// TraceSpans returns the buffered spans of one trace, oldest first.
func (t *Tracer) TraceSpans(id int64) []Span {
	all := t.Spans()
	out := all[:0]
	for _, s := range all {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	return out[:len(out):len(out)]
}

// Summary is the per-trace rollup served by /debug/trace's list view.
type Summary struct {
	Trace    int64     `json:"trace"`
	Root     string    `json:"root,omitempty"` // name of the parentless span
	Spans    int       `json:"spans"`
	Start    time.Time `json:"start"`
	DurMS    float64   `json:"dur_ms"` // earliest start to latest end
	Complete bool      `json:"complete"`
}

// Traces rolls the buffer up into one Summary per trace, most recent
// first. A trace is Complete when a terminal span was recorded for it.
func (t *Tracer) Traces() []Summary {
	if t == nil {
		return nil
	}
	type agg struct {
		Summary
		end time.Time
	}
	spans := t.Spans()
	byTrace := make(map[int64]*agg)
	order := make([]int64, 0, 16)
	for _, s := range spans {
		a, ok := byTrace[s.Trace]
		if !ok {
			a = &agg{Summary: Summary{Trace: s.Trace, Start: s.Start}, end: s.End()}
			byTrace[s.Trace] = a
			order = append(order, s.Trace)
		}
		a.Spans++
		if s.Parent == 0 && a.Root == "" {
			a.Root = s.Name
		}
		if s.Start.Before(a.Start) {
			a.Start = s.Start
		}
		if end := s.End(); end.After(a.end) {
			a.end = end
		}
		if s.Terminal {
			a.Complete = true
		}
	}
	out := make([]Summary, 0, len(order))
	for _, id := range order {
		a := byTrace[id]
		if a.end.After(a.Start) {
			a.DurMS = float64(a.end.Sub(a.Start)) / float64(time.Millisecond)
		}
		out = append(out, a.Summary)
	}
	// Most recent trace first; buffer order already groups spans, but
	// traces interleave, so sort by start (then ID for stability).
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].Trace > out[j].Trace
	})
	return out
}

// Stats is the tracer's own accounting, served alongside /debug/trace.
type Stats struct {
	Sample   int   `json:"sample"`
	Buffer   int   `json:"buffer"`
	Recorded int64 `json:"recorded"`
	Dropped  int64 `json:"dropped"` // overwritten by ring wrap
	Forced   int   `json:"forced"`  // currently pinned trace IDs
}

// Stats returns the tracer's accounting counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	forced := len(t.forced)
	t.mu.Unlock()
	return Stats{
		Sample:   int(t.sample),
		Buffer:   len(t.ring),
		Recorded: t.recorded.Load(),
		Dropped:  t.dropped.Load(),
		Forced:   forced,
	}
}
