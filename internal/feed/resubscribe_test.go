package feed

import (
	"testing"
)

// TestResubscribeAtCursorAfterLongDisconnect: a consumer drops for a long
// stretch while the source keeps appending (but retains everything), then
// resubscribes at the cursor of the last batch it consumed. It must
// receive exactly the records it missed — no loss, no re-delivery.
func TestResubscribeAtCursorAfterLongDisconnect(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)

	sub := h.Subscribe(1, 4)
	l.Append(1, 2, 3)
	b := recvBatch(t, sub)
	if len(b.Recs) != 3 || b.Next != 4 {
		t.Fatalf("first batch = %+v", b)
	}
	consumed := b.Next
	sub.Close()

	// The disconnect: many appends land while no subscription exists.
	for i := 4; i <= 40; i++ {
		l.Append(i)
	}

	re := h.Subscribe(consumed, 4)
	defer re.Close()
	var got []int
	for len(got) < 37 {
		b := recvBatch(t, re)
		if b.Truncated {
			t.Fatal("no records were discarded, yet the batch says truncated")
		}
		got = append(got, b.Recs...)
	}
	if got[0] != 4 || got[len(got)-1] != 40 {
		t.Fatalf("resumed delivery covers %d..%d, want 4..40", got[0], got[len(got)-1])
	}
	if re.Cursor() != 41 {
		t.Fatalf("cursor = %d, want 41", re.Cursor())
	}
}

// TestResubscribeSeesInterleavedTruncation: the consumer disconnects, the
// source appends AND trims past the consumer's cursor, appends more, and
// the consumer resubscribes at its old cursor. The first batch must carry
// the truncation signal (the conservative-recovery trigger) and then
// deliver everything still retained; subsequent batches are clean.
func TestResubscribeSeesInterleavedTruncation(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)

	sub := h.Subscribe(1, 4)
	l.Append(1, 2)
	b := recvBatch(t, sub)
	if b.Next != 3 {
		t.Fatalf("first batch next = %d", b.Next)
	}
	consumed := b.Next
	sub.Close()

	// While disconnected: records 3..6 land, retention drops 1..4 (two of
	// them unseen by the consumer), then 7..8 land.
	l.Append(3, 4, 5, 6)
	l.Trim(4)
	l.Append(7, 8)

	re := h.Subscribe(consumed, 4)
	defer re.Close()
	b = recvBatch(t, re)
	if !b.Truncated {
		t.Fatal("records 3 and 4 are gone; the resumed batch must say truncated")
	}
	if b.FirstSeq != 5 {
		t.Fatalf("FirstSeq = %d, want 5 (oldest retained)", b.FirstSeq)
	}
	got := append([]int(nil), b.Recs...)
	for len(got) < 4 {
		nb := recvBatch(t, re)
		if nb.Truncated {
			t.Fatal("truncation signalled twice for one gap")
		}
		got = append(got, nb.Recs...)
	}
	want := []int{5, 6, 7, 8}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("resumed records = %v, want %v", got, want)
		}
	}

	// After recovery the stream is clean: a further append arrives without
	// any truncation residue.
	l.Append(9)
	b = recvBatch(t, re)
	if b.Truncated || len(b.Recs) != 1 || b.Recs[0] != 9 {
		t.Fatalf("post-recovery batch = %+v", b)
	}
	if re.Cursor() != 10 {
		t.Fatalf("cursor = %d, want 10", re.Cursor())
	}
}

// TestResubscribeAfterFullTruncation: everything the consumer had not seen
// is gone and nothing new exists yet — the resumed subscription must still
// deliver an (empty) truncated batch rather than blocking forever, because
// the consumer cannot know to clear until told.
func TestResubscribeAfterFullTruncation(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	l.Append(1, 2, 3)
	l.Trim(3)

	re := h.Subscribe(1, 4)
	defer re.Close()
	b := recvBatch(t, re)
	if !b.Truncated {
		t.Fatal("fully truncated resume did not signal")
	}
	if len(b.Recs) != 0 {
		t.Fatalf("batch has %d records, want none", len(b.Recs))
	}
	if b.Next != 4 || b.FirstSeq != 4 {
		t.Fatalf("batch next=%d first=%d, want 4/4", b.Next, b.FirstSeq)
	}
}
