package feed

import (
	"sync"
	"testing"
	"time"
)

// testLog is a minimal cursor-addressed log implementing the Pull/Changed
// contract the hub expects, mirroring the semantics of engine.UpdateLog.
type testLog struct {
	mu      sync.Mutex
	recs    []int
	first   int64
	next    int64
	changed chan struct{}
}

func newTestLog() *testLog {
	return &testLog{first: 1, next: 1, changed: make(chan struct{})}
}

func (l *testLog) Append(vs ...int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.recs = append(l.recs, vs...)
	l.next += int64(len(vs))
	close(l.changed)
	l.changed = make(chan struct{})
}

// Trim discards the oldest n records, as a bounded log would.
func (l *testLog) Trim(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.recs) {
		n = len(l.recs)
	}
	l.recs = l.recs[n:]
	l.first += int64(n)
}

func (l *testLog) Pull(cursor int64) ([]int, bool, int64, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor < 1 {
		cursor = 1
	}
	truncated := cursor < l.first
	start := cursor - l.first
	if start < 0 {
		start = 0
	}
	if start >= int64(len(l.recs)) {
		return nil, truncated, l.next, l.first
	}
	out := make([]int, int64(len(l.recs))-start)
	copy(out, l.recs[start:])
	return out, truncated, l.next, l.first
}

func (l *testLog) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}

func recvBatch[T any](t *testing.T, sub *Subscription[T]) Batch[T] {
	t.Helper()
	select {
	case b, ok := <-sub.C:
		if !ok {
			t.Fatal("subscription channel closed early")
		}
		return b
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a batch")
	}
	panic("unreachable")
}

func TestSubscribeDeliversAppends(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	sub := h.Subscribe(1, 4)
	defer sub.Close()

	l.Append(10, 20)
	b := recvBatch(t, sub)
	if len(b.Recs) != 2 || b.Recs[0] != 10 || b.Recs[1] != 20 {
		t.Fatalf("batch recs = %v", b.Recs)
	}
	if b.Next != 3 || b.Truncated {
		t.Fatalf("batch next=%d truncated=%v", b.Next, b.Truncated)
	}

	// A second append wakes the blocked pump.
	l.Append(30)
	b = recvBatch(t, sub)
	if len(b.Recs) != 1 || b.Recs[0] != 30 || b.Next != 4 {
		t.Fatalf("second batch = %+v", b)
	}
}

func TestSubscribeResumesFromCursor(t *testing.T) {
	l := newTestLog()
	l.Append(1, 2, 3, 4, 5)
	h := NewHub(l.Pull, l.Changed)

	sub := h.Subscribe(3, 4)
	b := recvBatch(t, sub)
	if len(b.Recs) != 3 || b.Recs[0] != 3 {
		t.Fatalf("resume batch = %v", b.Recs)
	}
	sub.Close()

	// Resuming a replacement subscription at the delivered Next re-delivers
	// nothing and skips nothing.
	sub2 := h.Subscribe(b.Next, 4)
	defer sub2.Close()
	select {
	case got := <-sub2.C:
		t.Fatalf("unexpected batch at head: %+v", got)
	case <-time.After(20 * time.Millisecond):
	}
	l.Append(6)
	b2 := recvBatch(t, sub2)
	if len(b2.Recs) != 1 || b2.Recs[0] != 6 {
		t.Fatalf("post-resume batch = %v", b2.Recs)
	}
}

func TestTruncationSignal(t *testing.T) {
	l := newTestLog()
	l.Append(1, 2, 3, 4)
	l.Trim(2) // records 1,2 gone; first retained seq is 3
	h := NewHub(l.Pull, l.Changed)
	sub := h.Subscribe(1, 4)
	defer sub.Close()

	b := recvBatch(t, sub)
	if !b.Truncated {
		t.Fatal("missing truncation signal")
	}
	if b.FirstSeq != 3 {
		t.Fatalf("FirstSeq = %d, want 3", b.FirstSeq)
	}
	if len(b.Recs) != 2 || b.Recs[0] != 3 {
		t.Fatalf("truncated batch recs = %v", b.Recs)
	}

	// Truncation is reported once; the stream continues cleanly after.
	l.Append(5)
	b = recvBatch(t, sub)
	if b.Truncated {
		t.Fatal("truncation signal repeated on a clean batch")
	}
}

func TestFanOut(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	a := h.Subscribe(1, 4)
	b := h.Subscribe(1, 4)
	defer a.Close()
	defer b.Close()

	l.Append(7, 8)
	ba, bb := recvBatch(t, a), recvBatch(t, b)
	if len(ba.Recs) != 2 || len(bb.Recs) != 2 {
		t.Fatalf("fan-out batches: %v / %v", ba.Recs, bb.Recs)
	}
	if st := h.Stats(); st.Subscribers != 2 || st.Records != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackpressureBoundsBuffering(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	h.MaxBatch = 1
	sub := h.Subscribe(1, 2) // room for 2 one-record batches + 1 in the pump

	for i := 0; i < 100; i++ {
		l.Append(i)
	}
	// The pump must stall rather than buffer the whole backlog.
	time.Sleep(50 * time.Millisecond)
	if st := h.Stats(); st.Batches > 4 {
		t.Fatalf("pump ran ahead of the consumer: %d batches delivered", st.Batches)
	}
	// Draining releases the backlog in order, exactly once.
	next := 0
	deadline := time.Now().Add(5 * time.Second)
	for next < 100 && time.Now().Before(deadline) {
		b := recvBatch(t, sub)
		for _, r := range b.Recs {
			if r != next {
				t.Fatalf("record %d out of order (want %d)", r, next)
			}
			next++
		}
	}
	if next != 100 {
		t.Fatalf("drained %d of 100 records", next)
	}
	sub.Close()
}

func TestCloseStopsPumpAndClosesChannel(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	sub := h.Subscribe(1, 4)
	sub.Close()
	sub.Close() // idempotent
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("unexpected batch after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("channel not closed after Close")
	}
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscriber leaked: %+v", st)
	}
}

func TestDrain(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	sub := h.Subscribe(1, 8)
	defer sub.Close()
	l.Append(1, 2, 3)
	// Wait for the pump to stage the batch, then drain without blocking.
	deadline := time.Now().Add(5 * time.Second)
	var recs []int
	var next int64 = 1
	for len(recs) < 3 && time.Now().Before(deadline) {
		got, trunc, n := Drain(sub, next)
		if trunc {
			t.Fatal("unexpected truncation")
		}
		recs = append(recs, got...)
		next = n
		time.Sleep(time.Millisecond)
	}
	if len(recs) != 3 || next != 4 {
		t.Fatalf("drained %v next=%d", recs, next)
	}
	// Idle drain returns immediately with the cursor unchanged.
	got, _, n := Drain(sub, next)
	if len(got) != 0 || n != next {
		t.Fatalf("idle drain = %v next=%d", got, n)
	}
}

func TestChunkingSplitsLargeBacklog(t *testing.T) {
	l := newTestLog()
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = i
	}
	l.Append(vals...)
	h := NewHub(l.Pull, l.Changed)
	h.MaxBatch = 3
	sub := h.Subscribe(1, 8)
	defer sub.Close()

	var got []int
	var next int64
	for len(got) < 10 {
		b := recvBatch(t, sub)
		if len(b.Recs) > 3 {
			t.Fatalf("chunk too large: %d", len(b.Recs))
		}
		got = append(got, b.Recs...)
		// Each chunk's Next must be exactly one past its last record:
		// record value i lives at sequence i+1, so Next == len(got)+1.
		if b.Next != int64(len(got))+1 {
			t.Fatalf("chunk Next = %d after %d records", b.Next, len(got))
		}
		next = b.Next
	}
	if next != 11 {
		t.Fatalf("final cursor = %d, want 11", next)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("record %d = %d", i, v)
		}
	}
}

// TestDrainSkipsBelowCursor: a caller that advanced its cursor past the
// subscription (e.g. by reading the source directly) must not see those
// records again — Drain drops the already-consumed prefix positionally.
func TestDrainSkipsBelowCursor(t *testing.T) {
	l := newTestLog()
	h := NewHub(l.Pull, l.Changed)
	sub := h.Subscribe(1, 8)
	defer sub.Close()
	l.Append(10, 20, 30, 40, 50) // sequences 1..5

	deadline := time.Now().Add(5 * time.Second)
	var recs []int
	var next int64 = 4 // caller already consumed 1..3 out of band
	for next < 6 && time.Now().Before(deadline) {
		got, trunc, n := Drain(sub, next)
		if trunc {
			t.Fatal("unexpected truncation")
		}
		recs = append(recs, got...)
		next = n
		time.Sleep(time.Millisecond)
	}
	if len(recs) != 2 || recs[0] != 40 || recs[1] != 50 || next != 6 {
		t.Fatalf("drained %v next=%d, want [40 50] next=6", recs, next)
	}
}
