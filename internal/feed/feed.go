// Package feed is a small, dependency-free abstraction for resumable,
// cursor-addressed event streams. Every log in CachePortal — the database
// update log, the HTTP request log, the query log — is an append-only
// sequence addressed by a monotonically increasing cursor (LSN or entry ID)
// with bounded retention. A Hub turns such a log's incremental read
// operation plus its change notification into a fan-out Feed: subscribers
// name the cursor they want to resume from and receive batches as records
// arrive, blocking on arrival instead of re-polling, with truncation
// surfaced in-band when the source discarded records the subscriber had not
// yet read.
//
// Delivery is pull-through-push: each subscription owns a pump goroutine
// that reads the source incrementally and sends batches on a bounded
// channel. Backpressure is structural — when the subscriber stops draining,
// the pump blocks on the channel and simply stops reading, so a slow
// subscriber costs nothing but its own lag; if it lags past the source's
// retention window the next batch carries the truncation signal, exactly as
// a slow poller would have observed. Because the cursor is the only
// subscription state, a subscription can be closed and reopened at its last
// cursor with no loss and no duplication — the heal semantics the fault
// layer (internal/faults) assumes for every invalidation edge.
package feed

import (
	"sync"
	"sync/atomic"
)

// Batch is one delivery from a subscription: records in sequence order plus
// the context needed to resume or to recover from truncation.
type Batch[T any] struct {
	// Recs are the records, in source order.
	Recs []T
	// Next is the cursor to resume from after consuming this batch.
	Next int64
	// FirstSeq is the oldest sequence number the source still retained when
	// this batch was read — the truncation context: everything before it is
	// gone for good.
	FirstSeq int64
	// Truncated reports that records at or after the subscription's cursor
	// were discarded before this batch was read: the subscriber missed
	// records and must fall back to its conservative recovery.
	Truncated bool
}

// Pull reads the source incrementally: all records with sequence >= cursor,
// whether records at or after cursor were already discarded, the cursor to
// read from next, and the oldest retained sequence. Implementations must be
// safe for concurrent use and must return recs/next consistently (next is
// the sequence one past the last returned record, observed atomically with
// the read).
type Pull[T any] func(cursor int64) (recs []T, truncated bool, next int64, firstSeq int64)

// Changed returns a channel that becomes ready (is closed) when records may
// have been appended since the channel was obtained. Callers must re-obtain
// the channel after each wakeup; a Pull issued after obtaining the channel
// observes every record whose append closed an earlier channel.
type Changed func() <-chan struct{}

// DefaultMaxBatch bounds records per delivered batch when Hub.MaxBatch is
// unset, so one huge backlog drain cannot produce an unbounded frame.
const DefaultMaxBatch = 1024

// DefaultBuffer is the per-subscription batch-channel capacity when
// Subscribe is given a non-positive buffer.
const DefaultBuffer = 4

// Hub fans a cursor-addressed source out to any number of subscribers. The
// zero Hub is not usable; construct with NewHub.
type Hub[T any] struct {
	pull    Pull[T]
	changed Changed
	// MaxBatch bounds records per batch (DefaultMaxBatch when 0). Set before
	// the first Subscribe.
	MaxBatch int

	mu   sync.Mutex
	subs map[*Subscription[T]]struct{}

	// stats
	batches  atomic.Int64
	records  atomic.Int64
	truncs   atomic.Int64
	maxLag   atomic.Int64 // high-water subscriber lag, in records
	sourceAt atomic.Int64 // last `next` any pump observed (source head)
}

// NewHub builds a hub over a pull source and its change notification.
func NewHub[T any](pull Pull[T], changed Changed) *Hub[T] {
	return &Hub[T]{pull: pull, changed: changed, subs: make(map[*Subscription[T]]struct{})}
}

// Stats is a point-in-time summary of a hub's activity, for metrics export.
type Stats struct {
	Subscribers int   // live subscriptions
	Batches     int64 // batches delivered
	Records     int64 // records delivered
	Truncations int64 // batches that carried the truncation signal
	MaxLag      int64 // high-water records between source head and a cursor
	Buffered    int   // batches sitting in subscriber channels right now
}

// Stats snapshots the hub.
func (h *Hub[T]) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := Stats{
		Subscribers: len(h.subs),
		Batches:     h.batches.Load(),
		Records:     h.records.Load(),
		Truncations: h.truncs.Load(),
		MaxLag:      h.maxLag.Load(),
	}
	for s := range h.subs {
		st.Buffered += len(s.ch)
	}
	return st
}

// Lag returns the current worst-case subscriber lag in records: the distance
// between the source head and the slowest live cursor (0 with no
// subscribers).
func (h *Hub[T]) Lag() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	head := h.sourceAt.Load()
	var lag int64
	for s := range h.subs {
		if d := head - s.cursor.Load(); d > lag {
			lag = d
		}
	}
	return lag
}

// Subscribe starts a subscription at cursor. buffer bounds how many batches
// may queue between the pump and the consumer (DefaultBuffer when <= 0);
// when the buffer is full the pump stops reading the source until the
// consumer drains — backpressure, not loss. Close the subscription to stop
// the pump; the batch channel is closed once the pump exits.
func (h *Hub[T]) Subscribe(cursor int64, buffer int) *Subscription[T] {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	if cursor < 1 {
		cursor = 1
	}
	s := &Subscription[T]{
		hub:     h,
		ch:      make(chan Batch[T], buffer),
		closeCh: make(chan struct{}),
	}
	s.cursor.Store(cursor)
	s.C = s.ch
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	go s.pump()
	return s
}

// Subscription is one consumer's view of a hub: read batches from C, resume
// later from Cursor(), stop with Close.
type Subscription[T any] struct {
	// C delivers batches in order. It is closed after Close (or hub
	// teardown); a closed C with no pending batches means the stream ended.
	C <-chan Batch[T]

	hub     *Hub[T]
	ch      chan Batch[T]
	closeCh chan struct{}
	closed  sync.Once
	cursor  atomic.Int64
}

// Cursor returns the next sequence the pump will read — after the stream
// ends, the cursor to hand a replacement subscription so no record is lost
// or re-delivered. Batches already sitting in C are past this cursor;
// consumers resuming elsewhere should prefer the Next of the last batch
// they actually consumed.
func (s *Subscription[T]) Cursor() int64 { return s.cursor.Load() }

// Close stops the pump. Idempotent. Pending batches already in C remain
// readable; C is closed once the pump notices.
func (s *Subscription[T]) Close() {
	s.closed.Do(func() { close(s.closeCh) })
}

// pump moves records from the source into the batch channel until closed.
func (s *Subscription[T]) pump() {
	h := s.hub
	maxBatch := h.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	defer func() {
		h.mu.Lock()
		delete(h.subs, s)
		h.mu.Unlock()
		close(s.ch)
	}()
	for {
		// Obtain the change channel BEFORE reading: an append racing with
		// the read either lands in this read or closes ch — never lost.
		ch := h.changed()
		cursor := s.cursor.Load()
		recs, truncated, next, first := h.pull(cursor)
		h.sourceAt.Store(next)
		if lag := next - cursor; lag > h.maxLag.Load() {
			h.maxLag.Store(lag)
		}
		if len(recs) == 0 && !truncated {
			select {
			case <-ch:
				continue
			case <-s.closeCh:
				return
			}
		}
		// Deliver, chunked so one backlog drain cannot produce an unbounded
		// batch. Only the first chunk can carry the truncation flag: chunks
		// after it start at a cursor the source demonstrably retains.
		for len(recs) > 0 || truncated {
			n := len(recs)
			if n > maxBatch {
				n = maxBatch
			}
			chunk := Batch[T]{Recs: recs[:n], FirstSeq: first, Truncated: truncated}
			recs = recs[n:]
			// Sequences are dense (cursor-addressed logs number records
			// consecutively), so the resume cursor of a non-final chunk is
			// just next minus what remains to deliver.
			chunk.Next = next - int64(len(recs))
			truncated = false
			select {
			case s.ch <- chunk:
				s.cursor.Store(chunk.Next)
				h.batches.Add(1)
				h.records.Add(int64(len(chunk.Recs)))
				if chunk.Truncated {
					h.truncs.Add(1)
				}
			case <-s.closeCh:
				return
			}
		}
	}
}

// Drain consumes every batch currently buffered on sub without blocking and
// returns the concatenated records, whether any batch carried the
// truncation signal, and the cursor after the last consumed batch (start
// when nothing was pending). It is the bridge for cycle-driven consumers —
// the sniffer's mapper, the invalidator — that want feed semantics (block-
// free incremental reads, in-band truncation) inside a synchronous pass.
func Drain[T any](sub *Subscription[T], start int64) (recs []T, truncated bool, next int64) {
	next = start
	for {
		select {
		case b, ok := <-sub.C:
			if !ok {
				return recs, truncated, next
			}
			batch := b.Recs
			// Sequences are dense, so the batch covers [Next-len, Next):
			// drop the prefix below the caller's cursor. A caller that
			// advanced past the subscription — say by reading the source
			// directly — must not see those records again.
			if batchStart := b.Next - int64(len(batch)); batchStart < next {
				drop := next - batchStart
				if drop >= int64(len(batch)) {
					batch = nil
				} else {
					batch = batch[drop:]
				}
			}
			recs = append(recs, batch...)
			truncated = truncated || b.Truncated
			if b.Next > next {
				next = b.Next
			}
		default:
			return recs, truncated, next
		}
	}
}
