// Package httpx holds the shared default HTTP client for every component
// that talks over HTTP — the log mirror, the caching proxy, the ejector,
// the balancer, and the workload generators. Unlike http.DefaultClient it
// carries timeouts on every phase (dial, response headers, whole request),
// so a hung peer degrades into a bounded error instead of a goroutine stuck
// forever: the failure-model requirement that no pipeline edge blocks the
// invalidation loop indefinitely. Components still accept an explicit
// *http.Client for callers that need different limits.
package httpx

import (
	"net"
	"net/http"
	"time"
)

// DefaultTimeout bounds a whole request (connect + write + read) on the
// shared client.
const DefaultTimeout = 10 * time.Second

// DefaultDialTimeout bounds TCP connection establishment.
const DefaultDialTimeout = 5 * time.Second

// defaultClient is shared so connection pools are reused across components
// within one process.
var defaultClient = &http.Client{
	Timeout: DefaultTimeout,
	Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   DefaultDialTimeout,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          128,
		MaxIdleConnsPerHost:   32, // the ejector fans batches out per cache
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   DefaultDialTimeout,
		ResponseHeaderTimeout: DefaultTimeout,
		ExpectContinueTimeout: time.Second,
	},
}

// Default returns the shared timeout-bearing client. Callers must not
// mutate it; wrap a custom *http.Client instead.
func Default() *http.Client { return defaultClient }

// Client returns c, or the shared default when c is nil — the standard
// fallback for optional Client fields.
func Client(c *http.Client) *http.Client {
	if c != nil {
		return c
	}
	return defaultClient
}
