package engine

import (
	"sync"
	"testing"
	"time"

	"repro/internal/mem"
)

// TestUpdateLogSinceNextAtomic pins the cursor contract: next is exactly one
// past the last returned record even while appends race, so a reader that
// advances to next can never skip a record.
func TestUpdateLogSinceNextAtomic(t *testing.T) {
	l := NewUpdateLog(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Append(UpdateRecord{Table: "t", Op: OpInsert, Row: mem.Row{mem.Int(1)}})
			}
		}
	}()
	var cursor int64 = 1
	var seen int64
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		recs, trunc, next, _ := l.SinceNext(cursor)
		if trunc {
			t.Fatal("unexpected truncation")
		}
		if want := cursor + int64(len(recs)); next != want {
			t.Fatalf("next=%d after %d records from %d (want %d)", next, len(recs), cursor, want)
		}
		for _, r := range recs {
			seen++
			if r.LSN != seen {
				t.Fatalf("record LSN %d, want %d (skip!)", r.LSN, seen)
			}
		}
		cursor = next
	}
	close(stop)
	wg.Wait()
}

// TestUpdateLogIdleFastPath pins the satellite: a reader exactly at the head
// allocates nothing.
func TestUpdateLogIdleFastPath(t *testing.T) {
	l := NewUpdateLog(0)
	for i := 0; i < 4; i++ {
		l.Append(UpdateRecord{Table: "t", Op: OpInsert})
	}
	head := l.NextLSN()
	allocs := testing.AllocsPerRun(100, func() {
		recs, trunc, next, _ := l.SinceNext(head)
		if recs != nil || trunc || next != head {
			t.Fatalf("idle read: recs=%v trunc=%v next=%d", recs, trunc, next)
		}
	})
	if allocs != 0 {
		t.Fatalf("idle SinceNext allocates (%v allocs/op)", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if recs, _ := l.Since(head); recs != nil {
			t.Fatal("idle Since returned records")
		}
	})
	if allocs != 0 {
		t.Fatalf("idle Since allocates (%v allocs/op)", allocs)
	}
}

// TestUpdateLogSinceNextTruncationContext verifies first carries the oldest
// retained LSN when the reader fell behind.
func TestUpdateLogSinceNextTruncationContext(t *testing.T) {
	l := NewUpdateLog(3)
	for i := 0; i < 10; i++ {
		l.Append(UpdateRecord{Table: "t", Op: OpInsert})
	}
	recs, trunc, next, first := l.SinceNext(1)
	if !trunc {
		t.Fatal("no truncation reported")
	}
	if first < 2 || first > 10 {
		t.Fatalf("first=%d out of range", first)
	}
	if len(recs) == 0 || recs[0].LSN != first {
		t.Fatalf("records start at %d, want first=%d", recs[0].LSN, first)
	}
	if next != 11 {
		t.Fatalf("next=%d, want 11", next)
	}
}

// TestUpdateLogChangedWakesOnAppend verifies the Changed broadcast: a waiter
// blocked on the channel obtained before an append wakes and then observes
// the record.
func TestUpdateLogChangedWakesOnAppend(t *testing.T) {
	l := NewUpdateLog(0)
	ch := l.Changed()
	done := make(chan int64, 1)
	go func() {
		<-ch
		recs, _ := l.Since(1)
		if len(recs) == 0 {
			done <- 0
			return
		}
		done <- recs[0].LSN
	}()
	time.Sleep(5 * time.Millisecond)
	l.Append(UpdateRecord{Table: "t", Op: OpInsert})
	select {
	case lsn := <-done:
		if lsn != 1 {
			t.Fatalf("waiter saw LSN %d", lsn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke")
	}
}

// TestUpdateLogSubscribe drives the feed layer end to end over the real log:
// blocked delivery on arrival, resume from cursor, truncation in-band.
func TestUpdateLogSubscribe(t *testing.T) {
	l := NewUpdateLog(0)
	sub := l.Subscribe(1, 4)
	defer sub.Close()

	l.Append(UpdateRecord{Table: "a", Op: OpInsert})
	l.Append(UpdateRecord{Table: "b", Op: OpDelete})

	var got []UpdateRecord
	var next int64
	deadline := time.Now().Add(5 * time.Second)
	for len(got) < 2 && time.Now().Before(deadline) {
		select {
		case b := <-sub.C:
			if b.Truncated {
				t.Fatal("unexpected truncation")
			}
			got = append(got, b.Recs...)
			next = b.Next
		case <-time.After(10 * time.Millisecond):
		}
	}
	if len(got) != 2 || got[0].Table != "a" || got[1].Table != "b" {
		t.Fatalf("subscription delivered %v", got)
	}
	if next != 3 {
		t.Fatalf("cursor after drain = %d", next)
	}

	// A replacement subscription at the delivered cursor picks up exactly
	// the next record.
	sub2 := l.Subscribe(next, 4)
	defer sub2.Close()
	l.Append(UpdateRecord{Table: "c", Op: OpInsert})
	select {
	case b := <-sub2.C:
		if len(b.Recs) != 1 || b.Recs[0].Table != "c" || b.Recs[0].LSN != 3 {
			t.Fatalf("resumed batch = %+v", b)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resumed subscription got nothing")
	}
}

// TestUpdateLogSubscribeTruncation: a subscriber behind the retention window
// gets the truncation signal with the surviving suffix.
func TestUpdateLogSubscribeTruncation(t *testing.T) {
	l := NewUpdateLog(3)
	for i := 0; i < 10; i++ {
		l.Append(UpdateRecord{Table: "t", Op: OpInsert})
	}
	sub := l.Subscribe(1, 4)
	defer sub.Close()
	select {
	case b := <-sub.C:
		if !b.Truncated {
			t.Fatal("missing truncation signal")
		}
		if b.FirstSeq < 2 {
			t.Fatalf("FirstSeq = %d", b.FirstSeq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no batch delivered")
	}
}
