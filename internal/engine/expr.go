// Package engine implements the query processor of the reproduction's
// in-memory DBMS: expression evaluation with SQL three-valued logic,
// execution of SELECT (joins, aggregation, ordering), INSERT, UPDATE and
// DELETE, DDL, and a redo-style update log that exposes per-relation
// Δ⁺R / Δ⁻R delta tables to the invalidator (paper §4.2.1).
package engine

import (
	"fmt"
	"strings"

	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// Env resolves column references during expression evaluation. Bindings map
// a table's effective (alias or real, lower-cased) name to a row and its
// schema.
type Env struct {
	bindings []binding
}

type binding struct {
	name   string // lower-cased effective name; "" allowed for anonymous
	schema *mem.Schema
	row    mem.Row
}

// Bind adds a (table name → row) binding and returns the extended Env. The
// receiver is not modified, so partially built envs can be shared across
// join branches.
func (e Env) Bind(name string, schema *mem.Schema, row mem.Row) Env {
	nb := make([]binding, len(e.bindings), len(e.bindings)+1)
	copy(nb, e.bindings)
	nb = append(nb, binding{name: strings.ToLower(name), schema: schema, row: row})
	return Env{bindings: nb}
}

// rebind replaces the row of the last binding in place; used by tight scan
// loops to avoid reallocating the env per row.
func (e *Env) rebind(row mem.Row) {
	e.bindings[len(e.bindings)-1].row = row
}

// Resolve finds the value of a column reference.
func (e Env) Resolve(c *sqlparser.ColumnRef) (mem.Value, error) {
	if c.Table != "" {
		want := strings.ToLower(c.Table)
		for i := len(e.bindings) - 1; i >= 0; i-- {
			b := e.bindings[i]
			if b.name == want {
				ci := b.schema.ColumnIndex(c.Column)
				if ci < 0 {
					return mem.Null(), fmt.Errorf("engine: table %s has no column %s", c.Table, c.Column)
				}
				return b.row[ci], nil
			}
		}
		return mem.Null(), fmt.Errorf("engine: unknown table %s in reference %s", c.Table, c)
	}
	found := -1
	var v mem.Value
	for _, b := range e.bindings {
		if ci := b.schema.ColumnIndex(c.Column); ci >= 0 {
			if found >= 0 {
				return mem.Null(), fmt.Errorf("engine: ambiguous column %s", c.Column)
			}
			found = ci
			v = b.row[ci]
		}
	}
	if found < 0 {
		return mem.Null(), fmt.Errorf("engine: unknown column %s", c.Column)
	}
	return v, nil
}

// HasColumn reports whether the env can resolve the reference at all.
func (e Env) HasColumn(c *sqlparser.ColumnRef) bool {
	if c.Table != "" {
		want := strings.ToLower(c.Table)
		for _, b := range e.bindings {
			if b.name == want {
				return b.schema.ColumnIndex(c.Column) >= 0
			}
		}
		return false
	}
	for _, b := range e.bindings {
		if b.schema.ColumnIndex(c.Column) >= 0 {
			return true
		}
	}
	return false
}

// Tri is three-valued logic truth: False, Unknown, True.
type Tri int

// Truth values.
const (
	False   Tri = 0
	Unknown Tri = 1
	True    Tri = 2
)

// Truth converts a Value to three-valued truth; NULL is Unknown, booleans
// map directly, anything else is an error.
func Truth(v mem.Value) (Tri, error) {
	switch v.Kind {
	case mem.KindNull:
		return Unknown, nil
	case mem.KindBool:
		if v.B {
			return True, nil
		}
		return False, nil
	default:
		return Unknown, fmt.Errorf("engine: %s value used as condition", v.Kind)
	}
}

func triValue(t Tri) mem.Value {
	switch t {
	case True:
		return mem.Bool(true)
	case False:
		return mem.Bool(false)
	default:
		return mem.Null()
	}
}

// Eval evaluates e under env with SQL semantics: comparisons and arithmetic
// over NULL yield NULL; AND/OR/NOT follow Kleene logic.
func Eval(e sqlparser.Expr, env Env) (mem.Value, error) {
	switch x := e.(type) {
	case *sqlparser.IntLit:
		return mem.Int(x.Value), nil
	case *sqlparser.FloatLit:
		return mem.Float(x.Value), nil
	case *sqlparser.StringLit:
		return mem.Str(x.Value), nil
	case *sqlparser.BoolLit:
		return mem.Bool(x.Value), nil
	case *sqlparser.NullLit:
		return mem.Null(), nil
	case *sqlparser.Placeholder:
		return mem.Null(), fmt.Errorf("engine: unbound placeholder %s", x.Name)
	case *sqlparser.ColumnRef:
		return env.Resolve(x)
	case *sqlparser.ParenExpr:
		return Eval(x.X, env)
	case *sqlparser.UnaryExpr:
		return evalUnary(x, env)
	case *sqlparser.BinaryExpr:
		return evalBinary(x, env)
	case *sqlparser.InExpr:
		return evalIn(x, env)
	case *sqlparser.BetweenExpr:
		return evalBetween(x, env)
	case *sqlparser.LikeExpr:
		return evalLike(x, env)
	case *sqlparser.IsNullExpr:
		v, err := Eval(x.X, env)
		if err != nil {
			return mem.Null(), err
		}
		return mem.Bool(v.IsNull() != x.Not), nil
	case *sqlparser.FuncExpr:
		if x.IsAggregate() {
			return mem.Null(), fmt.Errorf("engine: aggregate %s outside aggregation context", x.Name)
		}
		return evalScalarFunc(x, env)
	default:
		return mem.Null(), fmt.Errorf("engine: cannot evaluate %T", e)
	}
}

func evalUnary(x *sqlparser.UnaryExpr, env Env) (mem.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return mem.Null(), err
	}
	switch x.Op {
	case "NOT":
		t, err := Truth(v)
		if err != nil {
			return mem.Null(), err
		}
		switch t {
		case True:
			return mem.Bool(false), nil
		case False:
			return mem.Bool(true), nil
		default:
			return mem.Null(), nil
		}
	case "-":
		switch v.Kind {
		case mem.KindNull:
			return mem.Null(), nil
		case mem.KindInt:
			return mem.Int(-v.I), nil
		case mem.KindFloat:
			return mem.Float(-v.F), nil
		default:
			return mem.Null(), fmt.Errorf("engine: cannot negate %s", v.Kind)
		}
	default:
		return mem.Null(), fmt.Errorf("engine: unknown unary operator %q", x.Op)
	}
}

func evalBinary(x *sqlparser.BinaryExpr, env Env) (mem.Value, error) {
	// Kleene logic short-circuits: FALSE AND _ = FALSE even if _ errors on
	// this row; likewise TRUE OR _.
	if x.Op == sqlparser.OpAnd || x.Op == sqlparser.OpOr {
		lv, err := Eval(x.Left, env)
		if err != nil {
			return mem.Null(), err
		}
		lt, err := Truth(lv)
		if err != nil {
			return mem.Null(), err
		}
		if x.Op == sqlparser.OpAnd && lt == False {
			return mem.Bool(false), nil
		}
		if x.Op == sqlparser.OpOr && lt == True {
			return mem.Bool(true), nil
		}
		rv, err := Eval(x.Right, env)
		if err != nil {
			return mem.Null(), err
		}
		rt, err := Truth(rv)
		if err != nil {
			return mem.Null(), err
		}
		if x.Op == sqlparser.OpAnd {
			return triValue(min3(lt, rt)), nil
		}
		return triValue(max3(lt, rt)), nil
	}

	lv, err := Eval(x.Left, env)
	if err != nil {
		return mem.Null(), err
	}
	rv, err := Eval(x.Right, env)
	if err != nil {
		return mem.Null(), err
	}
	if x.Op.IsComparison() {
		if lv.IsNull() || rv.IsNull() {
			return mem.Null(), nil
		}
		c, err := mem.Compare(lv, rv)
		if err != nil {
			return mem.Null(), fmt.Errorf("engine: %w", err)
		}
		var b bool
		switch x.Op {
		case sqlparser.OpEq:
			b = c == 0
		case sqlparser.OpNotEq:
			b = c != 0
		case sqlparser.OpLt:
			b = c < 0
		case sqlparser.OpLtEq:
			b = c <= 0
		case sqlparser.OpGt:
			b = c > 0
		case sqlparser.OpGtEq:
			b = c >= 0
		}
		return mem.Bool(b), nil
	}
	return evalArith(x.Op, lv, rv)
}

func min3(a, b Tri) Tri {
	if a < b {
		return a
	}
	return b
}

func max3(a, b Tri) Tri {
	if a > b {
		return a
	}
	return b
}

func evalArith(op sqlparser.BinaryOp, l, r mem.Value) (mem.Value, error) {
	if op == sqlparser.OpConcat {
		if l.IsNull() || r.IsNull() {
			return mem.Null(), nil
		}
		return mem.Str(l.String() + r.String()), nil
	}
	if l.IsNull() || r.IsNull() {
		return mem.Null(), nil
	}
	// Integer arithmetic stays integral except for division by non-divisor.
	if l.Kind == mem.KindInt && r.Kind == mem.KindInt {
		a, b := l.I, r.I
		switch op {
		case sqlparser.OpAdd:
			return mem.Int(a + b), nil
		case sqlparser.OpSub:
			return mem.Int(a - b), nil
		case sqlparser.OpMul:
			return mem.Int(a * b), nil
		case sqlparser.OpDiv:
			if b == 0 {
				return mem.Null(), fmt.Errorf("engine: division by zero")
			}
			if a%b == 0 {
				return mem.Int(a / b), nil
			}
			return mem.Float(float64(a) / float64(b)), nil
		case sqlparser.OpMod:
			if b == 0 {
				return mem.Null(), fmt.Errorf("engine: modulo by zero")
			}
			return mem.Int(a % b), nil
		}
	}
	lf, lok := asFloat(l)
	rf, rok := asFloat(r)
	if !lok || !rok {
		return mem.Null(), fmt.Errorf("engine: %s is not valid between %s and %s", op, l.Kind, r.Kind)
	}
	switch op {
	case sqlparser.OpAdd:
		return mem.Float(lf + rf), nil
	case sqlparser.OpSub:
		return mem.Float(lf - rf), nil
	case sqlparser.OpMul:
		return mem.Float(lf * rf), nil
	case sqlparser.OpDiv:
		if rf == 0 {
			return mem.Null(), fmt.Errorf("engine: division by zero")
		}
		return mem.Float(lf / rf), nil
	case sqlparser.OpMod:
		return mem.Null(), fmt.Errorf("engine: %% requires integer operands")
	default:
		return mem.Null(), fmt.Errorf("engine: unknown arithmetic operator %s", op)
	}
}

func asFloat(v mem.Value) (float64, bool) {
	switch v.Kind {
	case mem.KindInt:
		return float64(v.I), true
	case mem.KindFloat:
		return v.F, true
	}
	return 0, false
}

func evalIn(x *sqlparser.InExpr, env Env) (mem.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return mem.Null(), err
	}
	sawNull := v.IsNull()
	match := false
	for _, item := range x.List {
		iv, err := Eval(item, env)
		if err != nil {
			return mem.Null(), err
		}
		if iv.IsNull() || v.IsNull() {
			sawNull = true
			continue
		}
		if mem.Equal(v, iv) {
			match = true
			break
		}
	}
	var t Tri
	switch {
	case match:
		t = True
	case sawNull:
		t = Unknown
	default:
		t = False
	}
	if x.Not {
		t = 2 - t
	}
	return triValue(t), nil
}

func evalBetween(x *sqlparser.BetweenExpr, env Env) (mem.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return mem.Null(), err
	}
	lo, err := Eval(x.Lo, env)
	if err != nil {
		return mem.Null(), err
	}
	hi, err := Eval(x.Hi, env)
	if err != nil {
		return mem.Null(), err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return mem.Null(), nil
	}
	c1, err := mem.Compare(v, lo)
	if err != nil {
		return mem.Null(), fmt.Errorf("engine: %w", err)
	}
	c2, err := mem.Compare(v, hi)
	if err != nil {
		return mem.Null(), fmt.Errorf("engine: %w", err)
	}
	in := c1 >= 0 && c2 <= 0
	return mem.Bool(in != x.Not), nil
}

func evalLike(x *sqlparser.LikeExpr, env Env) (mem.Value, error) {
	v, err := Eval(x.X, env)
	if err != nil {
		return mem.Null(), err
	}
	p, err := Eval(x.Pattern, env)
	if err != nil {
		return mem.Null(), err
	}
	if v.IsNull() || p.IsNull() {
		return mem.Null(), nil
	}
	if v.Kind != mem.KindString || p.Kind != mem.KindString {
		return mem.Null(), fmt.Errorf("engine: LIKE requires string operands")
	}
	m := likeMatch(v.S, p.S)
	return mem.Bool(m != x.Not), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single byte),
// via iterative greedy backtracking.
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}
