package engine

import (
	"strings"

	"repro/internal/sqlparser"
)

// Auto-indexing gives the WHERE shapes the invalidator's prepared poll
// plans take — the same first-conjunct `col op $k` forms internal/predindex
// detects — an index to probe instead of a table scan. When enabled
// (SetAutoIndex), the first execution of each interned query template
// analyzes its WHERE conjuncts: an equality against a constant side gets a
// hash index on the column, a range comparison gets an ordered index. The
// analysis runs once per query type (guarded by the template's atomic
// flag), so the poll hot path never re-derives it; index creation happens
// under the database write lock with a full backfill, exactly like CREATE
// INDEX.

// IndexStats snapshots the auto-indexing and probe counters.
type IndexStats struct {
	// AutoHash / AutoOrdered count indexes created by template analysis.
	AutoHash    int64
	AutoOrdered int64
	// HashProbes / RangeProbes count join levels answered by an index
	// probe instead of a scan (including the primary-key hash index).
	HashProbes  int64
	RangeProbes int64
}

// SetAutoIndex enables or disables automatic index creation from query
// templates. Off by default: the engine's explicit CREATE INDEX remains the
// only index source unless a deployment opts in (dbserver does, via
// -auto-index).
func (db *Database) SetAutoIndex(on bool) { db.autoIndex.Store(on) }

// AutoIndexEnabled reports whether template-driven index creation is on.
func (db *Database) AutoIndexEnabled() bool { return db.autoIndex.Load() }

// IndexStats returns the auto-indexing and probe counters.
func (db *Database) IndexStats() IndexStats {
	return IndexStats{
		AutoHash:    db.autoHash.Load(),
		AutoOrdered: db.autoOrdered.Load(),
		HashProbes:  db.hashProbes.Load(),
		RangeProbes: db.rangeProbes.Load(),
	}
}

// maybeAutoIndex runs template analysis once per interned template when
// auto-indexing is on. The flag is checked before the CAS so templates
// interned while the feature is off are analyzed on their first execution
// after it turns on.
func (db *Database) maybeAutoIndex(tmpl *StmtTemplate) {
	if !db.autoIndex.Load() || !tmpl.indexed.CompareAndSwap(false, true) {
		return
	}
	db.ensureAutoIndexes(tmpl.Stmt)
}

// autoShape is one indexable conjunct: a column of a named table compared
// against a column-free expression (placeholder, literal, or arithmetic of
// those).
type autoShape struct {
	table  string // lower-cased actual table name
	column string
	eq     bool // true: hash index; false: ordered index
}

// ensureAutoIndexes analyzes a SELECT template's pushed-down conjuncts and
// creates any missing indexes for the shapes the probe planner recognizes.
func (db *Database) ensureAutoIndexes(stmt sqlparser.Stmt) {
	s, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return
	}
	conj := sqlparser.Conjuncts(s.Where)
	for _, j := range s.Joins {
		if j.Type == "INNER" && j.On != nil {
			conj = append(conj, sqlparser.Conjuncts(j.On)...)
		}
	}
	if len(conj) == 0 {
		return
	}
	refs := s.Tables()

	db.mu.RLock()
	shapes := db.autoIndexShapes(conj, refs)
	var missing []autoShape
	for _, sh := range shapes {
		t := db.tables[sh.table]
		if t == nil {
			continue
		}
		if sh.eq && !t.HasIndex(sh.column) {
			missing = append(missing, sh)
		}
		if !sh.eq && !t.HasOrderedIndex(sh.column) {
			missing = append(missing, sh)
		}
	}
	db.mu.RUnlock()
	if len(missing) == 0 {
		return
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	for _, sh := range missing {
		t := db.tables[sh.table]
		if t == nil {
			continue
		}
		if sh.eq {
			if !t.HasIndex(sh.column) && t.CreateIndex(sh.column, false) == nil {
				db.autoHash.Add(1)
			}
		} else {
			if !t.HasOrderedIndex(sh.column) && t.CreateOrderedIndex(sh.column) == nil {
				db.autoOrdered.Add(1)
			}
		}
	}
}

// autoIndexShapes extracts, per FROM table, the first conjunct of the form
// `col op <column-free expr>` (either operand order) — the shape both the
// probe planner in select.go and predindex's poll-plan analysis key on.
// Callers hold db.mu (read).
func (db *Database) autoIndexShapes(conj []sqlparser.Expr, refs []sqlparser.TableRef) []autoShape {
	var shapes []autoShape
	for _, ref := range refs {
		t := db.tables[strings.ToLower(ref.Name)]
		if t == nil {
			continue
		}
		for _, c := range conj {
			be, ok := stripParens(c).(*sqlparser.BinaryExpr)
			if !ok {
				continue
			}
			eq := false
			switch be.Op {
			case sqlparser.OpEq:
				eq = true
			case sqlparser.OpLt, sqlparser.OpLtEq, sqlparser.OpGt, sqlparser.OpGtEq:
			default:
				continue
			}
			var shape *autoShape
			for _, side := range [2]struct{ col, other sqlparser.Expr }{
				{be.Left, be.Right}, {be.Right, be.Left},
			} {
				cr, ok := stripParens(side.col).(*sqlparser.ColumnRef)
				if !ok {
					continue
				}
				if cr.Table != "" && !strings.EqualFold(cr.Table, ref.EffectiveName()) {
					continue
				}
				if t.Schema.ColumnIndex(cr.Column) < 0 {
					continue
				}
				if len(sqlparser.ColumnsReferenced(side.other)) != 0 {
					continue
				}
				shape = &autoShape{table: strings.ToLower(ref.Name), column: cr.Column, eq: eq}
				break
			}
			if shape != nil {
				shapes = append(shapes, *shape)
				break // first indexable conjunct per table, like predindex
			}
		}
	}
	return shapes
}
