package engine

import (
	"fmt"
	"testing"

	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// BenchmarkHighFanoutPoll measures the invalidator's poll shape — the same
// prepared template executed across many bound instances — against a large
// table, with and without auto-indexing. This is the high-fanout case of
// §4.2: one update can make thousands of polling queries run, so the cost of
// each poll dominates invalidation latency.
func BenchmarkHighFanoutPoll(b *testing.B) {
	rows := 100_000
	if testing.Short() {
		rows = 2_000
	}
	setup := func(b *testing.B, auto bool) *Database {
		db := NewDatabase()
		db.SetAutoIndex(auto)
		if _, err := db.ExecSQL("CREATE TABLE item (id INT PRIMARY KEY, cat INT, price FLOAT)"); err != nil {
			b.Fatal(err)
		}
		t := db.Table("item")
		for i := 0; i < rows; i++ {
			if _, err := t.Insert(mem.Row{mem.Int(int64(i)), mem.Int(int64(i % 1000)), mem.Float(float64(i % 5000))}); err != nil {
				b.Fatal(err)
			}
		}
		return db
	}
	templates := []struct {
		name string
		sql  string
		arg  func(i int) mem.Value
	}{
		{"eq", "SELECT id FROM item WHERE cat = $1", func(i int) mem.Value { return mem.Int(int64(i % 1000)) }},
		{"range", "SELECT id FROM item WHERE price < $1", func(i int) mem.Value { return mem.Float(float64(i%50) + 1) }},
	}
	for _, mode := range []string{"scan", "indexed"} {
		for _, tc := range templates {
			b.Run(fmt.Sprintf("mode=%s/pred=%s", mode, tc.name), func(b *testing.B) {
				db := setup(b, mode == "indexed")
				stmt, err := sqlparser.Parse(tc.sql)
				if err != nil {
					b.Fatal(err)
				}
				key := "poll:" + tc.sql
				// Prime so template interning and auto-index creation happen
				// outside the timed region, as they do in a long-lived server.
				if _, err := db.ExecTemplate(key, stmt, []mem.Value{tc.arg(0)}); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := db.ExecTemplate(key, stmt, []mem.Value{tc.arg(i)}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
