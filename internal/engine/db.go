package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/sqlparser"
	"repro/internal/trace"
)

// Result is the outcome of executing a statement. SELECT fills Columns and
// Rows; DML fills RowsAffected.
type Result struct {
	Columns      []string
	Rows         []mem.Row
	RowsAffected int
}

// Database is an in-memory multi-table SQL database with an update log.
// All public methods are safe for concurrent use; statements execute under
// a database-wide lock (readers share, writers exclude), which matches the
// serialization the paper's single-DBMS configurations assume.
type Database struct {
	mu       sync.RWMutex
	tables   map[string]*mem.Table // lower-cased name → table
	names    []string              // creation order, lower-cased
	log      *UpdateLog
	triggers triggerSet
	stmts    *stmtCache
	tracer   atomic.Pointer[trace.Tracer]

	// Auto-indexing state (see index.go). Probe counters are atomics
	// because SELECTs run concurrently under the read lock.
	autoIndex   atomic.Bool
	autoHash    atomic.Int64
	autoOrdered atomic.Int64
	hashProbes  atomic.Int64
	rangeProbes atomic.Int64
}

// NewDatabase creates an empty database with a default-capacity update log.
func NewDatabase() *Database {
	return &Database{
		tables: make(map[string]*mem.Table),
		log:    NewUpdateLog(0),
		stmts:  newStmtCache(0),
	}
}

// Log exposes the database's update log; the invalidator polls it.
func (db *Database) Log() *UpdateLog { return db.log }

// SetTracer attaches a pipeline tracer: every committed change opens a new
// trace and stamps its context into the UpdateRecord, making the engine the
// root of the commit-to-eject causal chain. nil detaches (tracing off); the
// commit-path cost of a detached tracer is one atomic pointer load.
func (db *Database) SetTracer(t *trace.Tracer) { db.tracer.Store(t) }

// Table returns the named table (case-insensitive), or nil.
func (db *Database) Table(name string) *mem.Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns table names in creation order (as created).
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.names))
	for _, n := range db.names {
		out = append(out, db.tables[n].Schema.Table)
	}
	return out
}

// ExecSQL executes a single statement, given as text. It is a
// prepare-cache lookup: repeated text replays a fully bound prepared
// statement with no lexing or parsing, and new text of a previously seen
// query type reuses the compiled template, paying only the parse. Texts that
// still contain unbound placeholders, and DDL, execute directly as before.
func (db *Database) ExecSQL(sql string) (*Result, error) {
	if prep, ok := db.stmts.texts.Get(sql); ok {
		return prep.Exec(nil)
	}
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if !preparable(stmt) {
		return db.Exec(stmt)
	}
	prep, err := db.prepareParsed(stmt)
	if err != nil {
		return nil, err
	}
	if prep.numArgs > 0 {
		// Raw placeholders in supposedly bound text: execute the parsed
		// statement directly so the legacy error surfaces unchanged.
		return db.Exec(stmt)
	}
	db.stmts.texts.Put(sql, prep)
	return prep.Exec(nil)
}

// ExecScript parses and executes a semicolon-separated script, returning
// the result of the final statement.
func (db *Database) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparser.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = db.Exec(s)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Exec executes a parsed statement.
func (db *Database) Exec(stmt sqlparser.Stmt) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparser.SelectStmt:
		db.mu.RLock()
		defer db.mu.RUnlock()
		return db.execSelect(s)
	case *sqlparser.InsertStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execInsert(s)
	case *sqlparser.UpdateStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execUpdate(s)
	case *sqlparser.DeleteStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDelete(s)
	case *sqlparser.CreateTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreateTable(s)
	case *sqlparser.DropTableStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execDropTable(s)
	case *sqlparser.CreateIndexStmt:
		db.mu.Lock()
		defer db.mu.Unlock()
		return db.execCreateIndex(s)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (db *Database) execCreateTable(s *sqlparser.CreateTableStmt) (*Result, error) {
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; exists {
		if s.IfNotExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: table %s already exists", s.Table)
	}
	cols := make([]mem.Column, len(s.Columns))
	for i, c := range s.Columns {
		cols[i] = mem.Column{Name: c.Name, Type: c.Type, NotNull: c.NotNull, PrimaryKey: c.PrimaryKey}
	}
	schema, err := mem.NewSchema(s.Table, cols)
	if err != nil {
		return nil, err
	}
	db.tables[key] = mem.NewTable(schema)
	db.names = append(db.names, key)
	return &Result{}, nil
}

func (db *Database) execDropTable(s *sqlparser.DropTableStmt) (*Result, error) {
	key := strings.ToLower(s.Table)
	if _, exists := db.tables[key]; !exists {
		if s.IfExists {
			return &Result{}, nil
		}
		return nil, fmt.Errorf("engine: no table %s", s.Table)
	}
	delete(db.tables, key)
	for i, n := range db.names {
		if n == key {
			db.names = append(db.names[:i], db.names[i+1:]...)
			break
		}
	}
	return &Result{}, nil
}

func (db *Database) execCreateIndex(s *sqlparser.CreateIndexStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("engine: no table %s", s.Table)
	}
	if err := t.CreateIndex(s.Column, s.Unique); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *Database) execInsert(s *sqlparser.InsertStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("engine: no table %s", s.Table)
	}
	schema := t.Schema
	// Map the statement's column list to schema positions.
	positions := make([]int, 0, len(s.Columns))
	if len(s.Columns) == 0 {
		for i := range schema.Columns {
			positions = append(positions, i)
		}
	} else {
		for _, name := range s.Columns {
			ci := schema.ColumnIndex(name)
			if ci < 0 {
				return nil, fmt.Errorf("engine: table %s has no column %s", s.Table, name)
			}
			positions = append(positions, ci)
		}
	}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(positions) {
			return nil, fmt.Errorf("engine: INSERT row has %d values, want %d", len(exprRow), len(positions))
		}
		row := make(mem.Row, len(schema.Columns)) // unset columns default to NULL
		for i, e := range exprRow {
			v, err := Eval(e, Env{})
			if err != nil {
				return nil, err
			}
			row[positions[i]] = v
		}
		id, err := t.Insert(row)
		if err != nil {
			return nil, err
		}
		stored, _ := t.Get(id)
		db.logAndFire(UpdateRecord{Table: schema.Table, Op: OpInsert, Columns: schema.ColumnNames(), Row: stored.Clone()})
		n++
	}
	return &Result{RowsAffected: n}, nil
}

func (db *Database) execDelete(s *sqlparser.DeleteStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("engine: no table %s", s.Table)
	}
	ids := map[int64]bool{}
	var scanErr error
	env := Env{}.Bind(t.Schema.Table, t.Schema, nil)
	t.Scan(func(id int64, r mem.Row) bool {
		if s.Where != nil {
			env.rebind(r)
			v, err := Eval(s.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			tr, err := Truth(v)
			if err != nil {
				scanErr = err
				return false
			}
			if tr != True {
				return true
			}
		}
		ids[id] = true
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	removed := t.Delete(ids)
	for _, r := range removed {
		db.logAndFire(UpdateRecord{Table: t.Schema.Table, Op: OpDelete, Columns: t.Schema.ColumnNames(), Row: r.Clone()})
	}
	return &Result{RowsAffected: len(removed)}, nil
}

func (db *Database) execUpdate(s *sqlparser.UpdateStmt) (*Result, error) {
	t := db.tables[strings.ToLower(s.Table)]
	if t == nil {
		return nil, fmt.Errorf("engine: no table %s", s.Table)
	}
	schema := t.Schema
	setPos := make([]int, len(s.Set))
	for i, a := range s.Set {
		ci := schema.ColumnIndex(a.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %s", s.Table, a.Column)
		}
		setPos[i] = ci
	}
	// Two phases: collect matching rows first, then mutate, so the WHERE
	// predicate never observes half-updated data.
	type change struct {
		id  int64
		old mem.Row
		new mem.Row
	}
	var changes []change
	var scanErr error
	env := Env{}.Bind(schema.Table, schema, nil)
	t.Scan(func(id int64, r mem.Row) bool {
		env.rebind(r)
		if s.Where != nil {
			v, err := Eval(s.Where, env)
			if err != nil {
				scanErr = err
				return false
			}
			tr, err := Truth(v)
			if err != nil {
				scanErr = err
				return false
			}
			if tr != True {
				return true
			}
		}
		nr := r.Clone()
		for i, a := range s.Set {
			v, err := Eval(a.Value, env)
			if err != nil {
				scanErr = err
				return false
			}
			nr[setPos[i]] = v
		}
		validated, err := t.ValidateRow(nr)
		if err != nil {
			scanErr = err
			return false
		}
		changes = append(changes, change{id: id, old: r.Clone(), new: validated})
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, c := range changes {
		if err := t.Replace(c.id, c.new); err != nil {
			return nil, err
		}
		// UPDATE = Δ⁻(old) then Δ⁺(new), the decomposition the invalidator
		// expects (§4.2.1).
		db.logAndFire(UpdateRecord{Table: schema.Table, Op: OpDelete, Columns: schema.ColumnNames(), Row: c.old})
		db.logAndFire(UpdateRecord{Table: schema.Table, Op: OpInsert, Columns: schema.ColumnNames(), Row: c.new.Clone()})
	}
	return &Result{RowsAffected: len(changes)}, nil
}
