package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// projectAggregate handles SELECT with GROUP BY and/or aggregate functions.
func (db *Database) projectAggregate(s *sqlparser.SelectStmt, tuples []Env) (*Result, error) {
	for _, it := range s.Items {
		if it.Star {
			return nil, fmt.Errorf("engine: * not allowed with aggregation")
		}
	}

	// Group tuples by the GROUP BY key values (empty GROUP BY = one group,
	// present even with zero input rows for plain aggregates).
	type group struct {
		keys   mem.Row
		tuples []Env
	}
	var order []string
	groups := map[string]*group{}
	for _, env := range tuples {
		var keys mem.Row
		for _, g := range s.GroupBy {
			v, err := Eval(g, env)
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		k := keys.Key()
		gr, ok := groups[k]
		if !ok {
			gr = &group{keys: keys}
			groups[k] = gr
			order = append(order, k)
		}
		gr.tuples = append(gr.tuples, env)
	}
	if len(s.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	cols, err := db.outputColumns(s, tuples)
	if err != nil {
		return nil, err
	}

	type outRow struct {
		row  mem.Row
		sort mem.Row
	}
	var rows []outRow
	for _, k := range order {
		gr := groups[k]
		if s.Having != nil {
			v, err := evalAggExpr(s.Having, gr.tuples)
			if err != nil {
				return nil, err
			}
			tr, err := Truth(v)
			if err != nil {
				return nil, err
			}
			if tr != True {
				continue
			}
		}
		var row mem.Row
		for _, it := range s.Items {
			v, err := evalAggExpr(it.Expr, gr.tuples)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		or := outRow{row: row}
		for _, o := range s.OrderBy {
			v, err := evalAggOrderKey(o.Expr, gr.tuples, s, row, cols)
			if err != nil {
				return nil, err
			}
			or.sort = append(or.sort, v)
		}
		rows = append(rows, or)
	}

	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			less, err := orderLess(rows[i].sort, rows[j].sort, s.OrderBy)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return less
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	final := make([]mem.Row, len(rows))
	for i, r := range rows {
		final[i] = r.row
	}
	final, err = applyLimit(s, final)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, Rows: final}, nil
}

func evalAggOrderKey(e sqlparser.Expr, tuples []Env, s *sqlparser.SelectStmt, projected mem.Row, cols []string) (mem.Value, error) {
	if c, ok := e.(*sqlparser.ColumnRef); ok && c.Table == "" {
		for i, name := range cols {
			if strings.EqualFold(name, c.Column) && i < len(projected) {
				return projected[i], nil
			}
		}
	}
	return evalAggExpr(e, tuples)
}

// evalAggExpr evaluates an expression in grouped context: aggregate calls
// fold over the group's tuples; other leaves evaluate against the group's
// first tuple (valid for GROUP BY keys; non-grouped bare columns take their
// first-row value, the permissive behaviour of many engines).
func evalAggExpr(e sqlparser.Expr, tuples []Env) (mem.Value, error) {
	switch x := e.(type) {
	case *sqlparser.FuncExpr:
		if x.IsAggregate() {
			return evalAggregate(x, tuples)
		}
		// Scalar function over grouped context: arguments may themselves
		// contain aggregates, so evaluate them in grouped context too.
		args := make([]mem.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := evalAggExpr(a, tuples)
			if err != nil {
				return mem.Null(), err
			}
			args[i] = v
		}
		return applyScalarFunc(x.Name, args)
	case *sqlparser.BinaryExpr:
		l, err := evalAggExpr(x.Left, tuples)
		if err != nil {
			return mem.Null(), err
		}
		r, err := evalAggExpr(x.Right, tuples)
		if err != nil {
			return mem.Null(), err
		}
		return evalBinaryValues(x.Op, l, r)
	case *sqlparser.ParenExpr:
		return evalAggExpr(x.X, tuples)
	case *sqlparser.UnaryExpr:
		v, err := evalAggExpr(x.X, tuples)
		if err != nil {
			return mem.Null(), err
		}
		return applyUnary(x.Op, v)
	default:
		if len(tuples) == 0 {
			return mem.Null(), nil
		}
		return Eval(e, tuples[0])
	}
}

// evalBinaryValues applies a binary operator to two already-computed values.
func evalBinaryValues(op sqlparser.BinaryOp, l, r mem.Value) (mem.Value, error) {
	if op == sqlparser.OpAnd || op == sqlparser.OpOr {
		lt, err := Truth(l)
		if err != nil {
			return mem.Null(), err
		}
		rt, err := Truth(r)
		if err != nil {
			return mem.Null(), err
		}
		if op == sqlparser.OpAnd {
			return triValue(min3(lt, rt)), nil
		}
		return triValue(max3(lt, rt)), nil
	}
	if op.IsComparison() {
		if l.IsNull() || r.IsNull() {
			return mem.Null(), nil
		}
		c, err := mem.Compare(l, r)
		if err != nil {
			return mem.Null(), fmt.Errorf("engine: %w", err)
		}
		var b bool
		switch op {
		case sqlparser.OpEq:
			b = c == 0
		case sqlparser.OpNotEq:
			b = c != 0
		case sqlparser.OpLt:
			b = c < 0
		case sqlparser.OpLtEq:
			b = c <= 0
		case sqlparser.OpGt:
			b = c > 0
		case sqlparser.OpGtEq:
			b = c >= 0
		}
		return mem.Bool(b), nil
	}
	return evalArith(op, l, r)
}

func applyUnary(op string, v mem.Value) (mem.Value, error) {
	switch op {
	case "NOT":
		t, err := Truth(v)
		if err != nil {
			return mem.Null(), err
		}
		return triValue(2 - t), nil
	case "-":
		switch v.Kind {
		case mem.KindNull:
			return mem.Null(), nil
		case mem.KindInt:
			return mem.Int(-v.I), nil
		case mem.KindFloat:
			return mem.Float(-v.F), nil
		}
	}
	return mem.Null(), fmt.Errorf("engine: bad unary %q", op)
}

// evalAggregate folds one aggregate call over the group.
func evalAggregate(f *sqlparser.FuncExpr, tuples []Env) (mem.Value, error) {
	if f.Star {
		if f.Name != "COUNT" {
			return mem.Null(), fmt.Errorf("engine: %s(*) is not valid", f.Name)
		}
		return mem.Int(int64(len(tuples))), nil
	}
	if len(f.Args) != 1 {
		return mem.Null(), fmt.Errorf("engine: %s takes exactly one argument", f.Name)
	}
	arg := f.Args[0]

	var vals []mem.Value
	seen := map[string]bool{}
	for _, env := range tuples {
		v, err := Eval(arg, env)
		if err != nil {
			return mem.Null(), err
		}
		if v.IsNull() {
			continue // SQL aggregates skip NULLs
		}
		if f.Distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}

	switch f.Name {
	case "COUNT":
		return mem.Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return mem.Null(), nil
		}
		allInt := true
		sum := 0.0
		var isum int64
		for _, v := range vals {
			switch v.Kind {
			case mem.KindInt:
				isum += v.I
				sum += float64(v.I)
			case mem.KindFloat:
				allInt = false
				sum += v.F
			default:
				return mem.Null(), fmt.Errorf("engine: %s over non-numeric value %s", f.Name, v.Kind)
			}
		}
		if f.Name == "SUM" {
			if allInt {
				return mem.Int(isum), nil
			}
			return mem.Float(sum), nil
		}
		return mem.Float(sum / float64(len(vals))), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return mem.Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := mem.Compare(v, best)
			if err != nil {
				return mem.Null(), fmt.Errorf("engine: %s: %w", f.Name, err)
			}
			if (f.Name == "MIN" && c < 0) || (f.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	default:
		return mem.Null(), fmt.Errorf("engine: unknown aggregate %s", f.Name)
	}
}
