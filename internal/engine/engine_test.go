package engine

import (
	"strconv"
	"testing"

	"repro/internal/mem"
)

// newCarDB builds the paper's Example 4.1 database: Car(maker, model,
// price) and Mileage(model, EPA).
func newCarDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()
	_, err := db.ExecScript(`
		CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
		CREATE TABLE Mileage (model TEXT, EPA INT);
		INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 18000), ('Toyota', 'Corolla', 15000), ('Toyota', 'Avalon', 25000);
		INSERT INTO Mileage VALUES ('Eclipse', 28), ('Corolla', 33), ('Avalon', 26);
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustQuery(t testing.TB, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.ExecSQL(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT * FROM Car")
	if len(res.Rows) != 3 || len(res.Columns) != 3 {
		t.Fatalf("rows=%d cols=%v", len(res.Rows), res.Columns)
	}
	if res.Columns[0] != "maker" {
		t.Fatalf("columns: %v", res.Columns)
	}
}

func TestSelectWhere(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT model FROM Car WHERE price < 20000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestPaperJoinQuery(t *testing.T) {
	db := newCarDB(t)
	// Example 4.1's Query1 with the paper's shape.
	res := mustQuery(t, db, `SELECT Car.maker, Car.model, Car.price, Mileage.EPA
		FROM Car, Mileage
		WHERE Car.model = Mileage.model AND Car.price < 20000`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[2].F >= 20000 {
			t.Fatalf("price filter failed: %v", r)
		}
	}
}

func TestExplicitJoin(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT Car.model, EPA FROM Car JOIN Mileage ON Car.model = Mileage.model WHERE EPA > 27")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestLeftJoin(t *testing.T) {
	db := newCarDB(t)
	mustQuery(t, db, "INSERT INTO Car VALUES ('Honda', 'NSX', 90000)") // no mileage row
	res := mustQuery(t, db, "SELECT Car.model, Mileage.EPA FROM Car LEFT JOIN Mileage ON Car.model = Mileage.model")
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	found := false
	for _, r := range res.Rows {
		if r[0].S == "NSX" {
			found = true
			if !r[1].IsNull() {
				t.Fatalf("NSX EPA should be NULL: %v", r)
			}
		}
	}
	if !found {
		t.Fatal("NSX row missing")
	}
}

func TestCrossJoinCount(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*) FROM Car CROSS JOIN Mileage")
	if res.Rows[0][0] != mem.Int(9) {
		t.Fatalf("count: %v", res.Rows[0][0])
	}
}

func TestTableAliases(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT c.model FROM Car AS c, Mileage AS m WHERE c.model = m.model AND m.EPA >= 33")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Corolla" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT a.model, b.model FROM Car a, Car b WHERE a.maker = b.maker AND a.model <> b.model")
	if len(res.Rows) != 2 { // Corolla-Avalon both ways
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestDuplicateTableNameIsError(t *testing.T) {
	db := newCarDB(t)
	if _, err := db.ExecSQL("SELECT * FROM Car, Car"); err == nil {
		t.Fatal("want error for duplicate FROM name")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := newCarDB(t)
	if _, err := db.ExecSQL("SELECT model FROM Car, Mileage"); err == nil {
		t.Fatal("want ambiguity error")
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT model, price FROM Car ORDER BY price DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "Avalon" || res.Rows[1][0].S != "Eclipse" {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car ORDER BY price LIMIT 1 OFFSET 1")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Eclipse" {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car ORDER BY price OFFSET 5")
	if len(res.Rows) != 0 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT model, price * 2 AS dbl FROM Car ORDER BY dbl DESC LIMIT 1")
	if res.Rows[0][0].S != "Avalon" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestDistinct(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT DISTINCT maker FROM Car")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(price), AVG(price), MIN(price), MAX(price) FROM Car")
	r := res.Rows[0]
	if r[0] != mem.Int(3) {
		t.Fatalf("count: %v", r[0])
	}
	if r[1] != mem.Float(58000) {
		t.Fatalf("sum: %v", r[1])
	}
	if r[3] != mem.Float(15000) || r[4] != mem.Float(25000) {
		t.Fatalf("min/max: %v %v", r[3], r[4])
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT maker, COUNT(*) AS n, AVG(price) FROM Car GROUP BY maker HAVING COUNT(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Toyota" || res.Rows[0][1] != mem.Int(2) {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestGroupByOrderByAggregate(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT maker, COUNT(*) AS n FROM Car GROUP BY maker ORDER BY n DESC, maker")
	if res.Rows[0][0].S != "Toyota" || res.Rows[1][0].S != "Mitsubishi" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT)")
	res := mustQuery(t, db, "SELECT COUNT(*), SUM(a), MIN(a) FROM t")
	r := res.Rows[0]
	if r[0] != mem.Int(0) || !r[1].IsNull() || !r[2].IsNull() {
		t.Fatalf("row: %v", r)
	}
	// GROUP BY over empty input yields zero groups.
	res = mustQuery(t, db, "SELECT a, COUNT(*) FROM t GROUP BY a")
	if len(res.Rows) != 0 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT COUNT(DISTINCT maker) FROM Car")
	if res.Rows[0][0] != mem.Int(2) {
		t.Fatalf("got %v", res.Rows[0][0])
	}
}

func TestAggregatesSkipNulls(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT)")
	mustQuery(t, db, "INSERT INTO t VALUES (1), (NULL), (3)")
	res := mustQuery(t, db, "SELECT COUNT(a), SUM(a), AVG(a) FROM t")
	r := res.Rows[0]
	if r[0] != mem.Int(2) || r[1] != mem.Int(4) || r[2] != mem.Float(2) {
		t.Fatalf("row: %v", r)
	}
}

func TestUpdateBasic(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "UPDATE Car SET price = 14000 WHERE model = 'Corolla'")
	if res.RowsAffected != 1 {
		t.Fatalf("affected: %d", res.RowsAffected)
	}
	check := mustQuery(t, db, "SELECT price FROM Car WHERE model = 'Corolla'")
	if check.Rows[0][0] != mem.Float(14000) {
		t.Fatalf("price: %v", check.Rows[0][0])
	}
}

func TestUpdateExpressionSeesOldValues(t *testing.T) {
	db := newCarDB(t)
	mustQuery(t, db, "UPDATE Car SET price = price * 2 WHERE maker = 'Toyota'")
	res := mustQuery(t, db, "SELECT SUM(price) FROM Car WHERE maker = 'Toyota'")
	if res.Rows[0][0] != mem.Float(80000) {
		t.Fatalf("sum: %v", res.Rows[0][0])
	}
}

func TestDeleteBasic(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "DELETE FROM Car WHERE maker = 'Toyota'")
	if res.RowsAffected != 2 {
		t.Fatalf("affected: %d", res.RowsAffected)
	}
	left := mustQuery(t, db, "SELECT COUNT(*) FROM Car")
	if left.Rows[0][0] != mem.Int(1) {
		t.Fatalf("remaining: %v", left.Rows[0][0])
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := newCarDB(t)
	mustQuery(t, db, "INSERT INTO Car (model, maker) VALUES ('Civic', 'Honda')")
	res := mustQuery(t, db, "SELECT price FROM Car WHERE model = 'Civic'")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("price should default NULL: %v", res.Rows[0][0])
	}
}

func TestInsertErrors(t *testing.T) {
	db := newCarDB(t)
	for _, sql := range []string{
		"INSERT INTO Nope VALUES (1)",
		"INSERT INTO Car (nope) VALUES (1)",
		"INSERT INTO Car VALUES (1)", // arity
	} {
		if _, err := db.ExecSQL(sql); err == nil {
			t.Errorf("%s: want error", sql)
		}
	}
}

func TestDDLErrors(t *testing.T) {
	db := newCarDB(t)
	if _, err := db.ExecSQL("CREATE TABLE Car (x INT)"); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if _, err := db.ExecSQL("CREATE TABLE IF NOT EXISTS Car (x INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("DROP TABLE Nope"); err == nil {
		t.Fatal("drop missing must fail")
	}
	if _, err := db.ExecSQL("DROP TABLE IF EXISTS Nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("CREATE INDEX i ON Nope (x)"); err == nil {
		t.Fatal("index on missing table must fail")
	}
}

func TestDropTable(t *testing.T) {
	db := newCarDB(t)
	mustQuery(t, db, "DROP TABLE Mileage")
	if db.Table("Mileage") != nil {
		t.Fatal("table still present")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "Car" {
		t.Fatalf("names: %v", names)
	}
}

func TestIndexAcceleratedLookup(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)")
	for i := 0; i < 100; i++ {
		mustQuery(t, db, "INSERT INTO t VALUES ("+itoa(i)+", 'v"+itoa(i)+"')")
	}
	res := mustQuery(t, db, "SELECT v FROM t WHERE id = 42")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "v42" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestIndexJoinProbe(t *testing.T) {
	db := newCarDB(t)
	mustQuery(t, db, "CREATE INDEX m_model ON Mileage (model)")
	res := mustQuery(t, db, "SELECT Car.model, EPA FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 20000")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestNullComparisons(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustQuery(t, db, "INSERT INTO t VALUES (1, 'x'), (NULL, 'y')")
	// NULL = NULL is unknown, so WHERE drops the row.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a = a")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT * FROM t WHERE a IS NULL")
	if len(res.Rows) != 1 || res.Rows[0][1].S != "y" {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT * FROM t WHERE NOT (a = 1)")
	if len(res.Rows) != 0 {
		t.Fatalf("NOT over NULL should drop: %v", res.Rows)
	}
}

func TestInBetweenLike(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT model FROM Car WHERE maker IN ('Toyota', 'Honda')")
	if len(res.Rows) != 2 {
		t.Fatalf("IN rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car WHERE price BETWEEN 15000 AND 18000")
	if len(res.Rows) != 2 {
		t.Fatalf("BETWEEN rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car WHERE model LIKE 'C%'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Corolla" {
		t.Fatalf("LIKE rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car WHERE model LIKE '_valon'")
	if len(res.Rows) != 1 {
		t.Fatalf("LIKE _ rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car WHERE maker NOT IN ('Toyota')")
	if len(res.Rows) != 1 {
		t.Fatalf("NOT IN rows: %v", res.Rows)
	}
}

func TestNotInWithNullList(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT)")
	mustQuery(t, db, "INSERT INTO t VALUES (1), (2)")
	// a NOT IN (2, NULL): for a=1, unknown (NULL could be 1) → dropped.
	res := mustQuery(t, db, "SELECT * FROM t WHERE a NOT IN (2, NULL)")
	if len(res.Rows) != 0 {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestArithmetic(t *testing.T) {
	db := NewDatabase()
	res := mustQuery(t, db, "SELECT 1 + 2 * 3, 7 / 2, 8 / 2, 7 % 3, 2.5 + 1, 'a' || 'b'")
	r := res.Rows[0]
	if r[0] != mem.Int(7) {
		t.Fatalf("1+2*3: %v", r[0])
	}
	if r[1] != mem.Float(3.5) {
		t.Fatalf("7/2: %v", r[1])
	}
	if r[2] != mem.Int(4) {
		t.Fatalf("8/2: %v", r[2])
	}
	if r[3] != mem.Int(1) {
		t.Fatalf("7%%3: %v", r[3])
	}
	if r[4] != mem.Float(3.5) {
		t.Fatalf("2.5+1: %v", r[4])
	}
	if r[5] != mem.Str("ab") {
		t.Fatalf("concat: %v", r[5])
	}
}

func TestDivisionByZero(t *testing.T) {
	db := NewDatabase()
	if _, err := db.ExecSQL("SELECT 1 / 0"); err == nil {
		t.Fatal("want division by zero error")
	}
	if _, err := db.ExecSQL("SELECT 1 % 0"); err == nil {
		t.Fatal("want modulo by zero error")
	}
}

func TestSelectStarQualified(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT Mileage.* FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.maker = 'Toyota'")
	if len(res.Columns) != 2 || len(res.Rows) != 2 {
		t.Fatalf("cols=%v rows=%v", res.Columns, res.Rows)
	}
}

func TestUnboundPlaceholderError(t *testing.T) {
	db := newCarDB(t)
	if _, err := db.ExecSQL("SELECT * FROM Car WHERE price < $1"); err == nil {
		t.Fatal("want unbound placeholder error")
	}
}

func TestExecScriptStopsOnError(t *testing.T) {
	db := NewDatabase()
	_, err := db.ExecScript("CREATE TABLE t (a INT); INSERT INTO nope VALUES (1); INSERT INTO t VALUES (1)")
	if err == nil {
		t.Fatal("want error")
	}
	res := mustQuery(t, db, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0] != mem.Int(0) {
		t.Fatal("statement after error must not run")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := NewDatabase()
	res := mustQuery(t, db, "SELECT UPPER('abc'), LOWER('DeF'), LENGTH('hello'), ABS(-4), ABS(-2.5), COALESCE(NULL, NULL, 7), SUBSTR('database', 5), SUBSTR('database', 1, 4)")
	r := res.Rows[0]
	want := []mem.Value{mem.Str("ABC"), mem.Str("def"), mem.Int(5), mem.Int(4),
		mem.Float(2.5), mem.Int(7), mem.Str("base"), mem.Str("data")}
	for i, w := range want {
		if r[i] != w {
			t.Errorf("fn %d: got %v, want %v", i, r[i], w)
		}
	}
}

func TestScalarFunctionsNullPropagation(t *testing.T) {
	db := NewDatabase()
	res := mustQuery(t, db, "SELECT UPPER(NULL), LENGTH(NULL), ABS(NULL), SUBSTR(NULL, 1)")
	for i, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Errorf("fn %d: got %v, want NULL", i, v)
		}
	}
}

func TestScalarFunctionInWhere(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT model FROM Car WHERE UPPER(maker) = 'TOYOTA'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT model FROM Car WHERE LENGTH(model) > 6")
	if len(res.Rows) != 2 { // Eclipse, Corolla
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestScalarFunctionOverAggregate(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT maker, ABS(AVG(price) - 20000) FROM Car GROUP BY maker ORDER BY maker")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Mitsubishi avg 18000 → |18000-20000| = 2000.
	if res.Rows[0][1] != mem.Float(2000) {
		t.Fatalf("abs over avg: %v", res.Rows[0][1])
	}
}

func TestScalarFunctionErrors(t *testing.T) {
	db := NewDatabase()
	for _, sql := range []string{
		"SELECT UPPER(1)",
		"SELECT LENGTH(2.5)",
		"SELECT ABS('x')",
		"SELECT NOSUCHFUNC(1)",
		"SELECT UPPER('a', 'b')",
		"SELECT COALESCE()",
		"SELECT SUBSTR('x')",
	} {
		if _, err := db.ExecSQL(sql); err == nil {
			t.Errorf("%s: want error", sql)
		}
	}
}

func TestOrderByAggregateDirect(t *testing.T) {
	db := newCarDB(t)
	res := mustQuery(t, db, "SELECT maker FROM Car GROUP BY maker ORDER BY COUNT(*) DESC")
	if res.Rows[0][0].S != "Toyota" {
		t.Fatalf("rows: %v", res.Rows)
	}
}
