package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/sqlparser"
)

func TestAutoIndexCreatesFromTemplates(t *testing.T) {
	db := NewDatabase()
	db.SetAutoIndex(true)
	if _, err := db.ExecScript(`
		CREATE TABLE item (id INT PRIMARY KEY, cat TEXT, price FLOAT);
		INSERT INTO item VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30);
	`); err != nil {
		t.Fatal(err)
	}

	// Equality template → hash index on cat.
	if _, err := db.Prepare("SELECT id FROM item WHERE cat = $1"); err != nil {
		t.Fatal(err)
	}
	if !db.Table("item").HasIndex("cat") {
		t.Fatal("equality template did not create a hash index on cat")
	}

	// Range template → ordered index on price.
	if _, err := db.Prepare("SELECT id FROM item WHERE price < $1"); err != nil {
		t.Fatal(err)
	}
	if !db.Table("item").HasOrderedIndex("price") {
		t.Fatal("range template did not create an ordered index on price")
	}

	st := db.IndexStats()
	if st.AutoHash != 1 || st.AutoOrdered != 1 {
		t.Fatalf("IndexStats = %+v, want AutoHash=1 AutoOrdered=1", st)
	}

	// Re-preparing the same query type must not re-analyze.
	if _, err := db.Prepare("SELECT id FROM item WHERE price < $1"); err != nil {
		t.Fatal(err)
	}
	if got := db.IndexStats().AutoOrdered; got != 1 {
		t.Fatalf("AutoOrdered = %d after re-prepare, want 1", got)
	}
}

func TestAutoIndexOffByDefault(t *testing.T) {
	db := NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE item (id INT, cat TEXT);
		INSERT INTO item VALUES (1, 'a');
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare("SELECT id FROM item WHERE cat = $1"); err != nil {
		t.Fatal(err)
	}
	if db.Table("item").HasIndex("cat") {
		t.Fatal("auto-index ran while disabled")
	}
}

func TestAutoIndexViaExecTemplate(t *testing.T) {
	db := NewDatabase()
	db.SetAutoIndex(true)
	if _, err := db.ExecScript(`
		CREATE TABLE kv (k TEXT, v INT);
		INSERT INTO kv VALUES ('a', 1), ('b', 2);
	`); err != nil {
		t.Fatal(err)
	}
	stmt, err := sqlparser.Parse("SELECT v FROM kv WHERE k = $1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecTemplate("poll:kv", stmt, []mem.Value{mem.Str("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %+v", res.Rows)
	}
	if !db.Table("kv").HasIndex("k") {
		t.Fatal("ExecTemplate did not trigger auto-indexing")
	}
}

func TestRangeProbeUsed(t *testing.T) {
	db := NewDatabase()
	db.SetAutoIndex(true)
	if _, err := db.ExecScript(`
		CREATE TABLE item (id INT, price FLOAT);
		INSERT INTO item VALUES (1, 10), (2, 20), (3, 30), (4, 40);
	`); err != nil {
		t.Fatal(err)
	}
	prep, err := db.Prepare("SELECT id FROM item WHERE price >= $1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Exec([]mem.Value{mem.Float(25)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v, want 2", res.Rows)
	}
	if got := db.IndexStats().RangeProbes; got == 0 {
		t.Fatal("range predicate did not take the ordered-index probe")
	}
}

// TestIndexScanEquivalence runs identical randomized workloads against an
// auto-indexed database and a plain one, checking every query answer matches.
// Run under -race via `make race`, this also pins the probe paths' locking.
func TestIndexScanEquivalence(t *testing.T) {
	setup := func(auto bool) *Database {
		db := NewDatabase()
		db.SetAutoIndex(auto)
		if _, err := db.ExecScript(`
			CREATE TABLE item (id INT PRIMARY KEY, cat TEXT, price FLOAT, ok BOOL);
		`); err != nil {
			t.Fatal(err)
		}
		return db
	}
	indexed, plain := setup(true), setup(false)

	cats := []string{"a", "b", "c", "d"}
	rng := rand.New(rand.NewSource(7))
	exec := func(sql string) {
		t.Helper()
		for _, db := range []*Database{indexed, plain} {
			if _, err := db.ExecSQL(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
	}
	queries := []struct {
		sql  string
		args func() []mem.Value
	}{
		{"SELECT id, cat, price FROM item WHERE cat = $1", func() []mem.Value {
			return []mem.Value{mem.Str(cats[rng.Intn(len(cats))])}
		}},
		{"SELECT id FROM item WHERE price < $1", func() []mem.Value {
			return []mem.Value{mem.Float(float64(rng.Intn(1000)))}
		}},
		{"SELECT id FROM item WHERE price >= $1", func() []mem.Value {
			return []mem.Value{mem.Int(int64(rng.Intn(1000)))}
		}},
		{"SELECT id FROM item WHERE id = $1", func() []mem.Value {
			return []mem.Value{mem.Int(int64(rng.Intn(600)))}
		}},
		{"SELECT cat FROM item WHERE ok = $1", func() []mem.Value {
			return []mem.Value{mem.Bool(rng.Intn(2) == 0)}
		}},
		// Mismatched family: both sides must take the scan and agree.
		{"SELECT id FROM item WHERE cat = $1", func() []mem.Value {
			return []mem.Value{mem.Int(int64(rng.Intn(10)))}
		}},
		// NULL probe: no rows on either side.
		{"SELECT id FROM item WHERE price < $1", func() []mem.Value {
			return []mem.Value{mem.Null()}
		}},
	}
	check := func() {
		t.Helper()
		for qi, q := range queries {
			args := q.args()
			pi, err := indexed.Prepare(q.sql)
			if err != nil {
				t.Fatal(err)
			}
			pp, err := plain.Prepare(q.sql)
			if err != nil {
				t.Fatal(err)
			}
			got, gerr := pi.Exec(args)
			want, werr := pp.Exec(args)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("q%d args=%v: indexed err %v, scan err %v", qi, args, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("q%d args=%v: indexed %+v != scan %+v", qi, args, got, want)
			}
		}
	}

	next := 0
	for round := 0; round < 40; round++ {
		for i := 0; i < 20; i++ {
			exec(fmt.Sprintf("INSERT INTO item VALUES (%d, '%s', %d, %v)",
				next, cats[rng.Intn(len(cats))], rng.Intn(1000), rng.Intn(2) == 0))
			next++
		}
		switch round % 3 {
		case 0:
			exec(fmt.Sprintf("DELETE FROM item WHERE id = %d", rng.Intn(next)))
		case 1:
			exec(fmt.Sprintf("UPDATE item SET price = %d WHERE id = %d", rng.Intn(1000), rng.Intn(next)))
		}
		check()
	}

	if st := indexed.IndexStats(); st.HashProbes == 0 || st.RangeProbes == 0 {
		t.Fatalf("indexed db never probed: %+v", st)
	}
}
