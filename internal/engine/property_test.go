package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// The engine's join planner uses hash-index probes when equality predicates
// allow it. These property tests check plan equivalence: the same random
// query against an indexed and an unindexed copy of the same data must
// produce identical result multisets.

func fingerprint(res *Result) string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x1e")
}

// buildPair seeds two identical databases, one with indexes.
func buildPair(t *testing.T, rng *rand.Rand) (indexed, plain *Database) {
	t.Helper()
	var script strings.Builder
	script.WriteString("CREATE TABLE r (id INT PRIMARY KEY, b INT, c TEXT);\n")
	script.WriteString("CREATE TABLE s (b INT, d INT);\n")
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&script, "INSERT INTO r VALUES (%d, %d, '%c');\n", i, rng.Intn(6), 'a'+rune(rng.Intn(4)))
	}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&script, "INSERT INTO s VALUES (%d, %d);\n", rng.Intn(6), rng.Intn(10))
	}
	src := script.String()
	indexed = NewDatabase()
	if _, err := indexed.ExecScript(src + "CREATE INDEX r_b ON r (b); CREATE INDEX s_b ON s (b);"); err != nil {
		t.Fatal(err)
	}
	plain = NewDatabase()
	if _, err := plain.ExecScript(src); err != nil {
		t.Fatal(err)
	}
	return indexed, plain
}

func randQueryForPair(rng *rand.Rand) string {
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	op := func() string { return ops[rng.Intn(len(ops))] }
	switch rng.Intn(8) {
	case 0:
		return fmt.Sprintf("SELECT * FROM r WHERE b = %d", rng.Intn(6))
	case 1:
		return fmt.Sprintf("SELECT id, c FROM r WHERE b = %d AND id %s %d", rng.Intn(6), op(), rng.Intn(30))
	case 2:
		return fmt.Sprintf("SELECT r.id, s.d FROM r, s WHERE r.b = s.b AND s.d %s %d", op(), rng.Intn(10))
	case 3:
		return fmt.Sprintf("SELECT r.id FROM r JOIN s ON r.b = s.b WHERE r.c = '%c'", 'a'+rune(rng.Intn(4)))
	case 4:
		return fmt.Sprintf("SELECT s.b, COUNT(*) FROM r, s WHERE r.b = s.b GROUP BY s.b HAVING COUNT(*) > %d", rng.Intn(5))
	case 5:
		return fmt.Sprintf("SELECT DISTINCT b FROM r WHERE id %s %d", op(), rng.Intn(30))
	case 6:
		return fmt.Sprintf("SELECT a.id, b2.id FROM r a, r b2 WHERE a.b = b2.b AND a.id %s b2.id", op())
	default:
		return fmt.Sprintf("SELECT r.id FROM r LEFT JOIN s ON r.b = s.b WHERE r.id %s %d", op(), rng.Intn(30))
	}
}

func TestQuickIndexPlanEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		indexed, plain := buildPair(t, rng)
		for q := 0; q < 30; q++ {
			sql := randQueryForPair(rng)
			r1, err1 := indexed.ExecSQL(sql)
			r2, err2 := plain.ExecSQL(sql)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d: %s: errors differ: %v vs %v", seed, sql, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if fingerprint(r1) != fingerprint(r2) {
				t.Fatalf("seed %d: %s:\nindexed %d rows, plain %d rows", seed, sql, len(r1.Rows), len(r2.Rows))
			}
		}
	}
}

// TestQuickDMLEquivalence applies the same random DML to both copies and
// re-checks equivalence, exercising index maintenance under churn.
func TestQuickDMLEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		indexed, plain := buildPair(t, rng)
		nextID := 1000
		for step := 0; step < 40; step++ {
			var sql string
			switch rng.Intn(4) {
			case 0:
				nextID++
				sql = fmt.Sprintf("INSERT INTO r VALUES (%d, %d, '%c')", nextID, rng.Intn(6), 'a'+rune(rng.Intn(4)))
			case 1:
				sql = fmt.Sprintf("DELETE FROM r WHERE b = %d AND id %% 3 = %d", rng.Intn(6), rng.Intn(3))
			case 2:
				sql = fmt.Sprintf("UPDATE r SET b = %d WHERE id %% 5 = %d", rng.Intn(6), rng.Intn(5))
			default:
				sql = fmt.Sprintf("INSERT INTO s VALUES (%d, %d)", rng.Intn(6), rng.Intn(10))
			}
			r1, err1 := indexed.ExecSQL(sql)
			r2, err2 := plain.ExecSQL(sql)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d: %s: errors differ: %v vs %v", seed, sql, err1, err2)
			}
			if err1 == nil && r1.RowsAffected != r2.RowsAffected {
				t.Fatalf("seed %d: %s: affected %d vs %d", seed, sql, r1.RowsAffected, r2.RowsAffected)
			}
			// Spot-check equivalence with a probing query.
			check := randQueryForPair(rng)
			c1, e1 := indexed.ExecSQL(check)
			c2, e2 := plain.ExecSQL(check)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("seed %d: %s: errors differ", seed, check)
			}
			if e1 == nil && fingerprint(c1) != fingerprint(c2) {
				t.Fatalf("seed %d after %s: %s diverged", seed, sql, check)
			}
		}
	}
}

// TestQuickUpdateLogReplay: replaying the update log against a fresh
// database reproduces the original table contents — the invariant that
// makes log-based invalidation (and the Δ tables) trustworthy.
func TestQuickUpdateLogReplay(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(1300 + seed))
		db := NewDatabase()
		if _, err := db.ExecScript("CREATE TABLE t (a INT, b TEXT)"); err != nil {
			t.Fatal(err)
		}
		mark := db.Log().NextLSN()
		for i := 0; i < 50; i++ {
			switch rng.Intn(3) {
			case 0, 1:
				db.ExecSQL(fmt.Sprintf("INSERT INTO t VALUES (%d, 'x%d')", rng.Intn(20), i))
			case 2:
				db.ExecSQL(fmt.Sprintf("DELETE FROM t WHERE a = %d", rng.Intn(20)))
			}
		}
		recs, truncated := db.Log().Since(mark)
		if truncated {
			t.Fatal("log truncated unexpectedly")
		}

		// Replay into a fresh database as raw row operations.
		replay := NewDatabase()
		if _, err := replay.ExecScript("CREATE TABLE t (a INT, b TEXT)"); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if rec.Op == OpInsert {
				sql := fmt.Sprintf("INSERT INTO t VALUES (%s, %s)", rec.Row[0].SQL(), rec.Row[1].SQL())
				if _, err := replay.ExecSQL(sql); err != nil {
					t.Fatal(err)
				}
			} else {
				// Delete exactly one matching row.
				cond := fmt.Sprintf("a = %s AND b = %s", rec.Row[0].SQL(), rec.Row[1].SQL())
				res, err := replay.ExecSQL("SELECT COUNT(*) FROM t WHERE " + cond)
				if err != nil {
					t.Fatal(err)
				}
				n := res.Rows[0][0].I
				if n == 0 {
					t.Fatalf("seed %d: replay delete found no row for %s", seed, cond)
				}
				// Delete all and reinsert n-1 (multiset semantics).
				if _, err := replay.ExecSQL("DELETE FROM t WHERE " + cond); err != nil {
					t.Fatal(err)
				}
				for k := int64(0); k < n-1; k++ {
					replay.ExecSQL(fmt.Sprintf("INSERT INTO t VALUES (%s, %s)", rec.Row[0].SQL(), rec.Row[1].SQL()))
				}
			}
		}
		orig, _ := db.ExecSQL("SELECT a, b FROM t")
		got, _ := replay.ExecSQL("SELECT a, b FROM t")
		if fingerprint(orig) != fingerprint(got) {
			t.Fatalf("seed %d: replay diverged: %d vs %d rows", seed, len(orig.Rows), len(got.Rows))
		}
	}
}
