package engine

import (
	"sync"
	"testing"

	"repro/internal/mem"
)

func TestUpdateLogAppendSince(t *testing.T) {
	l := NewUpdateLog(0)
	for i := 0; i < 5; i++ {
		lsn := l.Append(UpdateRecord{Table: "t", Op: OpInsert, Row: mem.Row{mem.Int(int64(i))}})
		if lsn != int64(i+1) {
			t.Fatalf("lsn %d, want %d", lsn, i+1)
		}
	}
	recs, trunc := l.Since(3)
	if trunc || len(recs) != 3 || recs[0].LSN != 3 {
		t.Fatalf("since(3): %v trunc=%v", recs, trunc)
	}
	recs, trunc = l.Since(0)
	if trunc || len(recs) != 5 {
		t.Fatalf("since(0): %d trunc=%v", len(recs), trunc)
	}
	recs, _ = l.Since(99)
	if len(recs) != 0 {
		t.Fatalf("since(99): %v", recs)
	}
	if l.NextLSN() != 6 {
		t.Fatalf("next lsn %d", l.NextLSN())
	}
}

func TestUpdateLogTruncation(t *testing.T) {
	l := NewUpdateLog(3)
	for i := 0; i < 10; i++ {
		l.Append(UpdateRecord{Table: "t", Op: OpInsert})
	}
	recs, trunc := l.Since(1)
	if !trunc {
		t.Fatal("want truncated")
	}
	// Amortized trimming retains between Capacity and 1.5×Capacity records,
	// always the newest, contiguous through LSN 10.
	if len(recs) < 3 || len(recs) > 5 || recs[len(recs)-1].LSN != 10 {
		t.Fatalf("recs: %+v", recs)
	}
	first := recs[0].LSN
	for i, r := range recs {
		if r.LSN != first+int64(i) {
			t.Fatalf("gap at %d: %+v", i, recs)
		}
	}
	// Reading from the retained region is not flagged truncated.
	recs2, trunc := l.Since(first)
	if trunc || len(recs2) != len(recs) {
		t.Fatalf("since(%d): %d trunc=%v", first, len(recs2), trunc)
	}
}

func TestUpdateLogConcurrentAppend(t *testing.T) {
	l := NewUpdateLog(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(UpdateRecord{Table: "t", Op: OpInsert})
			}
		}()
	}
	wg.Wait()
	recs, _ := l.Since(1)
	if len(recs) != 800 {
		t.Fatalf("got %d records", len(recs))
	}
	for i, r := range recs {
		if r.LSN != int64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestDMLWritesLog(t *testing.T) {
	db := newCarDB(t)
	start := db.Log().NextLSN()
	mustQuery(t, db, "INSERT INTO Car VALUES ('Ford', 'Focus', 17000)")
	mustQuery(t, db, "UPDATE Car SET price = 16000 WHERE model = 'Focus'")
	mustQuery(t, db, "DELETE FROM Car WHERE model = 'Focus'")
	recs, _ := db.Log().Since(start)
	// insert(1) + update(delete+insert=2) + delete(1) = 4
	if len(recs) != 4 {
		t.Fatalf("got %d records: %+v", len(recs), recs)
	}
	ops := []UpdateOp{OpInsert, OpDelete, OpInsert, OpDelete}
	for i, want := range ops {
		if recs[i].Op != want {
			t.Fatalf("record %d op %v, want %v", i, recs[i].Op, want)
		}
		if recs[i].Table != "Car" {
			t.Fatalf("record %d table %q", i, recs[i].Table)
		}
	}
	// The update's delta carries full old and new images.
	if recs[1].Row[2] != mem.Float(17000) || recs[2].Row[2] != mem.Float(16000) {
		t.Fatalf("update images: %v / %v", recs[1].Row, recs[2].Row)
	}
}

func TestLogRowsAreImmutableSnapshots(t *testing.T) {
	db := newCarDB(t)
	start := db.Log().NextLSN()
	mustQuery(t, db, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	mustQuery(t, db, "UPDATE Car SET price = 99999 WHERE model = 'Rio'")
	recs, _ := db.Log().Since(start)
	if recs[0].Row[2] != mem.Float(12000) {
		t.Fatalf("insert image mutated: %v", recs[0].Row)
	}
}

func TestBuildDeltas(t *testing.T) {
	recs := []UpdateRecord{
		{Table: "Car", Op: OpInsert, Columns: []string{"a"}, Row: mem.Row{mem.Int(1)}},
		{Table: "Mileage", Op: OpDelete, Columns: []string{"b"}, Row: mem.Row{mem.Int(2)}},
		{Table: "car", Op: OpDelete, Columns: []string{"a"}, Row: mem.Row{mem.Int(3)}},
		{Table: "Car", Op: OpInsert, Columns: []string{"a"}, Row: mem.Row{mem.Int(4)}},
	}
	deltas := BuildDeltas(recs)
	if len(deltas) != 2 {
		t.Fatalf("deltas: %+v", deltas)
	}
	car := deltas[0]
	if car.Table != "Car" || len(car.Plus) != 2 || len(car.Minus) != 1 {
		t.Fatalf("car delta: %+v", car)
	}
	if deltas[1].Table != "Mileage" || len(deltas[1].Minus) != 1 {
		t.Fatalf("mileage delta: %+v", deltas[1])
	}
}

func TestBuildDeltasEmpty(t *testing.T) {
	if d := BuildDeltas(nil); len(d) != 0 {
		t.Fatalf("got %v", d)
	}
}
