package engine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/lru"
	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// This file splits statement execution into explicit compile / bind /
// execute stages. Compilation (lexing, parsing, canonicalization) happens
// once per query *type*; binding substitutes argument literals into a deep
// copy of the compiled template; execution is unchanged. Two caches make the
// stages cheap to cross:
//
//   - the template cache maps a canonical template fingerprint (the query
//     type identity of §2.3.2) to its compiled AST, shared by every text
//     that canonicalizes to it;
//   - the text cache maps exact SQL text to a fully bound PreparedStmt, so
//     ExecSQL on a repeated instance performs no lexing or parsing at all.
//
// Both caches are bounded LRUs; eviction only costs a re-compile.

// DefaultStmtCacheCapacity bounds each statement cache when the database is
// created without an explicit capacity.
const DefaultStmtCacheCapacity = 512

// StmtTemplate is a compiled query type: the canonicalized statement whose
// literals have been replaced by placeholders, plus its identity.
type StmtTemplate struct {
	// Key is the canonical fingerprint (lower-cased template text); two
	// statements with the same Key are instances of the same query type.
	Key string
	// Stmt is the compiled template AST. It is immutable: binding always
	// copies.
	Stmt sqlparser.Stmt
	// Params is the total number of placeholder slots in Stmt.
	Params int

	// indexed latches the once-per-template auto-index analysis (index.go);
	// it is the only mutable part of a template.
	indexed atomic.Bool
}

// PreparedStmt is a statement compiled once and executable many times with
// different arguments. It is safe for concurrent Exec: binding deep-copies
// the shared template.
type PreparedStmt struct {
	db   *Database
	tmpl *StmtTemplate
	// fixed holds, per template slot, the literal extracted from the
	// prepared text (nil for slots that were genuine placeholders in the
	// text — those are filled by Exec's args, in order).
	fixed   []sqlparser.Expr
	numArgs int
}

// Template returns the compiled template shared by all statements of this
// query type.
func (p *PreparedStmt) Template() *StmtTemplate { return p.tmpl }

// NumArgs returns how many arguments Exec expects: the number of
// placeholders in the prepared SQL text.
func (p *PreparedStmt) NumArgs() int { return p.numArgs }

// Exec binds args to the statement's placeholders (in ordinal order) and
// executes it.
func (p *PreparedStmt) Exec(args []mem.Value) (*Result, error) {
	if len(args) != p.numArgs {
		return nil, fmt.Errorf("engine: prepared statement wants %d args, got %d", p.numArgs, len(args))
	}
	full := make([]sqlparser.Expr, len(p.fixed))
	next := 0
	for i, e := range p.fixed {
		if e != nil {
			full[i] = e
			continue
		}
		full[i] = args[next].Literal()
		next++
	}
	bound, err := sqlparser.Bind(p.tmpl.Stmt, full)
	if err != nil {
		return nil, err
	}
	p.db.stmts.execs.Add(1)
	return p.db.Exec(bound)
}

// stmtCache is the database's two-level statement cache.
type stmtCache struct {
	templates *lru.Cache[string, *StmtTemplate] // fingerprint → compiled template
	texts     *lru.Cache[string, *PreparedStmt] // exact SQL text → bound statement
	execs     atomic.Int64
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = DefaultStmtCacheCapacity
	}
	return &stmtCache{
		templates: lru.New[string, *StmtTemplate](capacity),
		texts:     lru.New[string, *PreparedStmt](capacity),
	}
}

// StmtCacheStats snapshots the statement cache counters.
type StmtCacheStats struct {
	// TextHits are ExecSQL calls answered without lexing or parsing.
	TextHits   int64
	TextMisses int64
	// TemplateHits are compilations avoided because another text of the
	// same query type had already been compiled.
	TemplateHits   int64
	TemplateMisses int64
	// Templates / Texts are current entry counts; Capacity bounds each.
	Templates int64
	Texts     int64
	Capacity  int64
	// PreparedExecs counts statements executed through the prepared path.
	PreparedExecs int64
}

// StmtCacheStats returns the statement-cache counters.
func (db *Database) StmtCacheStats() StmtCacheStats {
	th, tm := db.stmts.texts.Stats()
	ph, pm := db.stmts.templates.Stats()
	return StmtCacheStats{
		TextHits:       th,
		TextMisses:     tm,
		TemplateHits:   ph,
		TemplateMisses: pm,
		Templates:      int64(db.stmts.templates.Len()),
		Texts:          int64(db.stmts.texts.Len()),
		Capacity:       int64(db.stmts.templates.Cap()),
		PreparedExecs:  db.stmts.execs.Load(),
	}
}

// SetStmtCacheCapacity replaces the statement caches with empty ones bounded
// by capacity (<= 0 restores the default). Intended for process startup;
// statements prepared earlier keep working, they just no longer share
// templates with new ones.
func (db *Database) SetStmtCacheCapacity(capacity int) {
	db.stmts = newStmtCache(capacity)
}

// Prepare compiles sql once for repeated execution. Placeholders ($1, ?) in
// the text become Exec's arguments; literals stay fixed. The compiled
// template is shared through the fingerprint-keyed cache with every other
// statement of the same query type, including texts arriving via ExecSQL.
func (db *Database) Prepare(sql string) (*PreparedStmt, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if !preparable(stmt) {
		return nil, fmt.Errorf("engine: cannot prepare %T", stmt)
	}
	return db.prepareParsed(stmt)
}

// ExecTemplate executes a caller-compiled template: a statement whose
// variable positions are placeholders, identified by key. The template is
// interned in the statement cache under key, so repeated executions (the
// invalidator's polling queries, most prominently) bind and run with no
// lexing, parsing, or canonicalization. tmpl must be immutable; binding
// copies. Keys live in the same namespace as canonical fingerprints but
// cannot collide with them unless the texts genuinely match.
func (db *Database) ExecTemplate(key string, tmpl sqlparser.Stmt, args []mem.Value) (*Result, error) {
	if !preparable(tmpl) {
		return nil, fmt.Errorf("engine: cannot prepare %T", tmpl)
	}
	t, err := db.stmts.templates.GetOrPut(key, func() (*StmtTemplate, error) {
		return &StmtTemplate{Key: key, Stmt: tmpl, Params: len(sqlparser.Placeholders(tmpl))}, nil
	})
	if err != nil {
		return nil, err
	}
	db.maybeAutoIndex(t)
	if len(args) != t.Params {
		return nil, fmt.Errorf("engine: template %q wants %d args, got %d", key, t.Params, len(args))
	}
	lits := make([]sqlparser.Expr, len(args))
	for i, a := range args {
		lits[i] = a.Literal()
	}
	bound, err := sqlparser.Bind(t.Stmt, lits)
	if err != nil {
		return nil, err
	}
	db.stmts.execs.Add(1)
	return db.Exec(bound)
}

// preparable reports whether the statement kind goes through the template
// cache. DDL executes directly: it is rare, and caching it buys nothing.
func preparable(stmt sqlparser.Stmt) bool {
	switch stmt.(type) {
	case *sqlparser.SelectStmt, *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt:
		return true
	}
	return false
}

// prepareParsed compiles an already parsed statement, interning its template.
func (db *Database) prepareParsed(stmt sqlparser.Stmt) (*PreparedStmt, error) {
	canon, lits := sqlparser.Canonicalize(stmt)
	key := sqlparser.FingerprintStmt(canon)
	tmpl, err := db.stmts.templates.GetOrPut(key, func() (*StmtTemplate, error) {
		return &StmtTemplate{Key: key, Stmt: canon, Params: len(lits)}, nil
	})
	if err != nil {
		return nil, err
	}
	db.maybeAutoIndex(tmpl)
	numArgs := 0
	for _, e := range lits {
		if e == nil {
			numArgs++
		}
	}
	return &PreparedStmt{db: db, tmpl: tmpl, fixed: lits, numArgs: numArgs}, nil
}
