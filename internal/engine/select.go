package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// execSelect runs a SELECT. The pipeline is:
//
//	join enumeration (nested loops with predicate pushdown and hash-index
//	point lookups) → WHERE residue → grouping/aggregation → HAVING →
//	projection → DISTINCT → ORDER BY → LIMIT/OFFSET.
//
// Callers hold db.mu (read).
func (db *Database) execSelect(s *sqlparser.SelectStmt) (*Result, error) {
	// Resolve the FROM sources in order; explicit JOINs append to the chain
	// with their ON condition treated as a pushed-down conjunct (INNER) or
	// a null-extending probe (LEFT).
	type source struct {
		ref      sqlparser.TableRef
		table    *mem.Table
		joinType string         // "", "INNER", "CROSS", "LEFT"
		on       sqlparser.Expr // for explicit joins
	}
	var sources []source
	for _, ref := range s.From {
		t := db.tables[strings.ToLower(ref.Name)]
		if t == nil {
			return nil, fmt.Errorf("engine: no table %s", ref.Name)
		}
		sources = append(sources, source{ref: ref, table: t})
	}
	for _, j := range s.Joins {
		t := db.tables[strings.ToLower(j.Table.Name)]
		if t == nil {
			return nil, fmt.Errorf("engine: no table %s", j.Table.Name)
		}
		sources = append(sources, source{ref: j.Table, table: t, joinType: j.Type, on: j.On})
	}

	// No FROM: evaluate the select list once against the empty env; a WHERE
	// clause (necessarily constant) gates the single tuple.
	if len(sources) == 0 {
		tuples := []Env{{}}
		if s.Where != nil {
			v, err := Eval(s.Where, Env{})
			if err != nil {
				return nil, err
			}
			tr, err := Truth(v)
			if err != nil {
				return nil, err
			}
			if tr != True {
				tuples = nil
			}
		}
		return db.projectRows(s, tuples)
	}

	// Duplicate effective names are ambiguous.
	seen := map[string]bool{}
	for _, src := range sources {
		n := strings.ToLower(src.ref.EffectiveName())
		if seen[n] {
			return nil, fmt.Errorf("engine: duplicate table name %s in FROM", src.ref.EffectiveName())
		}
		seen[n] = true
	}

	// Partition WHERE into conjuncts and attach each to the earliest join
	// level at which all its columns are resolvable (predicate pushdown).
	conj := sqlparser.Conjuncts(s.Where)
	for _, src := range sources {
		if src.joinType == "INNER" && src.on != nil {
			conj = append(conj, sqlparser.Conjuncts(src.on)...)
		}
	}
	levelOf := func(e sqlparser.Expr) int {
		lvl := 0
		ok := true
		for _, c := range sqlparser.ColumnsReferenced(e) {
			found := -1
			for i, src := range sources {
				env := Env{}.Bind(src.ref.EffectiveName(), src.table.Schema, nil)
				if env.HasColumn(c) {
					if c.Table != "" {
						found = i
						break
					}
					if found >= 0 {
						// Unqualified and resolvable in two sources:
						// defer to the last level so the evaluator can
						// report ambiguity.
						found = len(sources) - 1
						break
					}
					found = i
				}
			}
			if found < 0 {
				ok = false
				break
			}
			if found > lvl {
				lvl = found
			}
		}
		if !ok {
			return len(sources) - 1 // let evaluation surface the error
		}
		return lvl
	}
	predsAt := make([][]sqlparser.Expr, len(sources))
	for _, e := range conj {
		lvl := levelOf(e)
		predsAt[lvl] = append(predsAt[lvl], e)
	}

	// eqLookup finds "col = expr" predicates usable as a hash-index probe
	// at the given level: the column belongs to sources[lvl] and is indexed,
	// and the other side references only earlier levels.
	type probe struct {
		column string
		expr   sqlparser.Expr
	}
	findProbe := func(lvl int) *probe {
		src := sources[lvl]
		selfEnv := Env{}.Bind(src.ref.EffectiveName(), src.table.Schema, nil)
		earlierOnly := func(e sqlparser.Expr) bool {
			for _, c := range sqlparser.ColumnsReferenced(e) {
				resolvedEarlier := false
				for i := 0; i < lvl; i++ {
					env := Env{}.Bind(sources[i].ref.EffectiveName(), sources[i].table.Schema, nil)
					if env.HasColumn(c) {
						resolvedEarlier = true
						break
					}
				}
				if !resolvedEarlier {
					return false
				}
			}
			return true
		}
		for _, e := range predsAt[lvl] {
			b, ok := stripParens(e).(*sqlparser.BinaryExpr)
			if !ok || b.Op != sqlparser.OpEq {
				continue
			}
			for _, side := range [2]struct{ col, other sqlparser.Expr }{
				{b.Left, b.Right}, {b.Right, b.Left},
			} {
				c, ok := stripParens(side.col).(*sqlparser.ColumnRef)
				if !ok || !selfEnv.HasColumn(c) {
					continue
				}
				// Qualified refs must name this source; unqualified must not
				// also resolve earlier (ambiguity).
				if c.Table != "" && strings.ToLower(c.Table) != strings.ToLower(src.ref.EffectiveName()) {
					continue
				}
				if !src.table.HasIndex(c.Column) {
					continue
				}
				if earlierOnly(side.other) {
					return &probe{column: c.Column, expr: side.other}
				}
			}
		}
		return nil
	}

	// findRangeProbe finds "col < expr" (and <=, >, >=, in either operand
	// order) predicates usable as an ordered-index range probe at the given
	// level, under the same resolvability rules as findProbe. The returned
	// op is normalized to "col op expr".
	type rangeProbe struct {
		column string
		expr   sqlparser.Expr
		op     sqlparser.BinaryOp
	}
	findRangeProbe := func(lvl int) *rangeProbe {
		src := sources[lvl]
		selfEnv := Env{}.Bind(src.ref.EffectiveName(), src.table.Schema, nil)
		earlierOnly := func(e sqlparser.Expr) bool {
			for _, c := range sqlparser.ColumnsReferenced(e) {
				resolvedEarlier := false
				for i := 0; i < lvl; i++ {
					env := Env{}.Bind(sources[i].ref.EffectiveName(), sources[i].table.Schema, nil)
					if env.HasColumn(c) {
						resolvedEarlier = true
						break
					}
				}
				if !resolvedEarlier {
					return false
				}
			}
			return true
		}
		for _, e := range predsAt[lvl] {
			b, ok := stripParens(e).(*sqlparser.BinaryExpr)
			if !ok {
				continue
			}
			switch b.Op {
			case sqlparser.OpLt, sqlparser.OpLtEq, sqlparser.OpGt, sqlparser.OpGtEq:
			default:
				continue
			}
			for _, side := range [2]struct {
				col, other sqlparser.Expr
				op         sqlparser.BinaryOp
			}{
				{b.Left, b.Right, b.Op}, {b.Right, b.Left, mirrorOp(b.Op)},
			} {
				c, ok := stripParens(side.col).(*sqlparser.ColumnRef)
				if !ok || !selfEnv.HasColumn(c) {
					continue
				}
				if c.Table != "" && !strings.EqualFold(c.Table, src.ref.EffectiveName()) {
					continue
				}
				if !src.table.HasOrderedIndex(c.Column) {
					continue
				}
				if earlierOnly(side.other) {
					return &rangeProbe{column: c.Column, expr: side.other, op: side.op}
				}
			}
		}
		return nil
	}

	// Recursive nested-loop join producing one Env per result tuple.
	var out []Env
	var enumerate func(lvl int, env Env) error
	enumerate = func(lvl int, env Env) error {
		if lvl == len(sources) {
			out = append(out, env)
			return nil
		}
		src := sources[lvl]
		name := src.ref.EffectiveName()

		matchRow := func(r mem.Row) (bool, Env, error) {
			rowEnv := env.Bind(name, src.table.Schema, r)
			for _, p := range predsAt[lvl] {
				v, err := Eval(p, rowEnv)
				if err != nil {
					return false, Env{}, err
				}
				tr, err := Truth(v)
				if err != nil {
					return false, Env{}, err
				}
				if tr != True {
					return false, Env{}, nil
				}
			}
			return true, rowEnv, nil
		}

		if src.joinType == "LEFT" {
			// LEFT JOIN: ON evaluated per probe row; WHERE conjuncts pinned
			// to this level still apply after null-extension.
			matched := false
			var innerErr error
			src.table.Scan(func(_ int64, r mem.Row) bool {
				rowEnv := env.Bind(name, src.table.Schema, r)
				if src.on != nil {
					v, err := Eval(src.on, rowEnv)
					if err != nil {
						innerErr = err
						return false
					}
					tr, err := Truth(v)
					if err != nil {
						innerErr = err
						return false
					}
					if tr != True {
						return true
					}
				}
				okWhere := true
				for _, p := range predsAt[lvl] {
					v, err := Eval(p, rowEnv)
					if err != nil {
						innerErr = err
						return false
					}
					tr, err := Truth(v)
					if err != nil {
						innerErr = err
						return false
					}
					if tr != True {
						okWhere = false
						break
					}
				}
				if okWhere {
					matched = true
					if err := enumerate(lvl+1, rowEnv); err != nil {
						innerErr = err
						return false
					}
				}
				return true
			})
			if innerErr != nil {
				return innerErr
			}
			if !matched {
				nulls := make(mem.Row, len(src.table.Schema.Columns))
				rowEnv := env.Bind(name, src.table.Schema, nulls)
				okWhere := true
				for _, p := range predsAt[lvl] {
					v, err := Eval(p, rowEnv)
					if err != nil {
						return err
					}
					tr, err := Truth(v)
					if err != nil {
						return err
					}
					if tr != True {
						okWhere = false
						break
					}
				}
				if okWhere {
					return enumerate(lvl+1, rowEnv)
				}
			}
			return nil
		}

		// The default path and the fallback for every probe that cannot
		// answer exactly: nested-loop scan.
		scan := func() error {
			var innerErr error
			src.table.Scan(func(_ int64, r mem.Row) bool {
				match, rowEnv, err := matchRow(r)
				if err != nil {
					innerErr = err
					return false
				}
				if match {
					if err := enumerate(lvl+1, rowEnv); err != nil {
						innerErr = err
						return false
					}
				}
				return true
			})
			return innerErr
		}

		// walkIDs runs the probed row set through the residual predicates.
		// IDs are visited ascending — insertion order, what the scan yields —
		// on a copy: hash buckets are unsorted and shared between concurrent
		// readers.
		walkIDs := func(ids []int64) error {
			ids = append([]int64(nil), ids...)
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				r, ok := src.table.Get(id)
				if !ok {
					continue
				}
				match, rowEnv, err := matchRow(r)
				if err != nil {
					return err
				}
				if match {
					if err := enumerate(lvl+1, rowEnv); err != nil {
						return err
					}
				}
			}
			return nil
		}

		// Hash-index probe when an equality predicate allows it. A probe
		// value whose family cannot compare with the column's declared type
		// defers to the scan, so comparison errors surface identically.
		if pr := findProbe(lvl); pr != nil {
			v, err := Eval(pr.expr, env)
			if err != nil {
				return err
			}
			if !probeCompatible(src.table.Schema, pr.column, v) {
				return scan()
			}
			db.hashProbes.Add(1)
			ids, _ := src.table.IndexLookup(pr.column, v)
			return walkIDs(ids)
		}

		// Ordered-index probe for a range predicate. A NULL bound means the
		// comparison is UNKNOWN for every row — no matches, like the scan.
		if rp := findRangeProbe(lvl); rp != nil {
			v, err := Eval(rp.expr, env)
			if err != nil {
				return err
			}
			if !probeCompatible(src.table.Schema, rp.column, v) {
				return scan()
			}
			if v.IsNull() {
				return nil
			}
			min, max := mem.Value{}, mem.Value{}
			minIncl, maxIncl := false, false
			switch rp.op {
			case sqlparser.OpLt:
				max = v
			case sqlparser.OpLtEq:
				max, maxIncl = v, true
			case sqlparser.OpGt:
				min = v
			case sqlparser.OpGtEq:
				min, minIncl = v, true
			}
			ids, ok := src.table.OrderedRange(rp.column, min, max, minIncl, maxIncl)
			if !ok {
				return scan()
			}
			db.rangeProbes.Add(1)
			return walkIDs(ids)
		}

		return scan()
	}
	if err := enumerate(0, Env{}); err != nil {
		return nil, err
	}
	return db.projectRows(s, out)
}

// mirrorOp flips a comparison so the column reads on the left:
// `expr < col` becomes `col > expr`.
func mirrorOp(op sqlparser.BinaryOp) sqlparser.BinaryOp {
	switch op {
	case sqlparser.OpLt:
		return sqlparser.OpGt
	case sqlparser.OpLtEq:
		return sqlparser.OpGtEq
	case sqlparser.OpGt:
		return sqlparser.OpLt
	case sqlparser.OpGtEq:
		return sqlparser.OpLtEq
	}
	return op
}

// probeCompatible reports whether an index probe with value v is equivalent
// to scanning the column: v's kind family must match the column's declared
// type (stored values are coerced to it, so same-family comparisons never
// error). NULL probes are compatible — both paths yield no matches. A
// mismatched family must take the scan so its comparison error surfaces.
func probeCompatible(sc *mem.Schema, column string, v mem.Value) bool {
	if v.IsNull() {
		return true
	}
	ci := sc.ColumnIndex(column)
	if ci < 0 {
		return false
	}
	if v.Kind == mem.KindFloat && math.IsNaN(v.F) {
		// mem.Compare treats NaN as equal to everything; only the scan can
		// honor that.
		return false
	}
	switch sc.Columns[ci].Type {
	case sqlparser.TypeInt, sqlparser.TypeFloat:
		return v.Kind == mem.KindInt || v.Kind == mem.KindFloat
	case sqlparser.TypeString:
		return v.Kind == mem.KindString
	case sqlparser.TypeBool:
		return v.Kind == mem.KindBool
	}
	return false
}

func stripParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// hasAggregate reports whether any select item or HAVING uses an aggregate.
func hasAggregate(s *sqlparser.SelectStmt) bool {
	found := false
	check := func(e sqlparser.Expr) {
		sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
			if f, ok := x.(*sqlparser.FuncExpr); ok && f.IsAggregate() {
				found = true
				return false
			}
			return true
		})
	}
	for _, it := range s.Items {
		if it.Expr != nil {
			check(it.Expr)
		}
	}
	if s.Having != nil {
		check(s.Having)
	}
	return found
}

// projectRows applies aggregation, projection, DISTINCT, ORDER BY and
// LIMIT/OFFSET to the joined tuples.
func (db *Database) projectRows(s *sqlparser.SelectStmt, tuples []Env) (*Result, error) {
	if len(s.GroupBy) > 0 || hasAggregate(s) {
		return db.projectAggregate(s, tuples)
	}

	cols, err := db.outputColumns(s, tuples)
	if err != nil {
		return nil, err
	}

	type outRow struct {
		row  mem.Row
		sort mem.Row // ORDER BY key values
	}
	var rows []outRow
	for _, env := range tuples {
		r, err := projectOne(s, env)
		if err != nil {
			return nil, err
		}
		or := outRow{row: r}
		for _, o := range s.OrderBy {
			v, err := evalOrderKey(o.Expr, env, s, r, cols)
			if err != nil {
				return nil, err
			}
			or.sort = append(or.sort, v)
		}
		rows = append(rows, or)
	}

	if s.Distinct {
		seen := map[string]bool{}
		kept := rows[:0]
		for _, r := range rows {
			k := r.row.Key()
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	if len(s.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			less, err := orderLess(rows[i].sort, rows[j].sort, s.OrderBy)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return less
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	final := make([]mem.Row, len(rows))
	for i, r := range rows {
		final[i] = r.row
	}
	final, err = applyLimit(s, final)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: cols, Rows: final}, nil
}

// outputColumns computes the result column names. Star expansion uses the
// FROM tables' schemas in order.
func (db *Database) outputColumns(s *sqlparser.SelectStmt, tuples []Env) ([]string, error) {
	var cols []string
	for _, it := range s.Items {
		switch {
		case it.Star:
			refs := s.Tables()
			for _, ref := range refs {
				if it.StarTable != "" && !strings.EqualFold(it.StarTable, ref.EffectiveName()) {
					continue
				}
				t := db.tables[strings.ToLower(ref.Name)]
				if t == nil {
					return nil, fmt.Errorf("engine: no table %s", ref.Name)
				}
				cols = append(cols, t.Schema.ColumnNames()...)
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if c, ok := it.Expr.(*sqlparser.ColumnRef); ok {
				cols = append(cols, c.Column)
			} else {
				cols = append(cols, it.Expr.String())
			}
		}
	}
	return cols, nil
}

// projectOne evaluates the select list for one joined tuple.
func projectOne(s *sqlparser.SelectStmt, env Env) (mem.Row, error) {
	var row mem.Row
	for _, it := range s.Items {
		if it.Star {
			for _, b := range env.bindings {
				if it.StarTable != "" && !strings.EqualFold(it.StarTable, b.name) {
					continue
				}
				row = append(row, b.row...)
			}
			continue
		}
		v, err := Eval(it.Expr, env)
		if err != nil {
			return nil, err
		}
		row = append(row, v)
	}
	return row, nil
}

// evalOrderKey evaluates an ORDER BY key: aliases and output column names
// refer to projected values; everything else evaluates in the row env.
func evalOrderKey(e sqlparser.Expr, env Env, s *sqlparser.SelectStmt, projected mem.Row, cols []string) (mem.Value, error) {
	if c, ok := e.(*sqlparser.ColumnRef); ok && c.Table == "" {
		for i, name := range cols {
			if strings.EqualFold(name, c.Column) && i < len(projected) {
				return projected[i], nil
			}
		}
	}
	return Eval(e, env)
}

// orderLess compares two ORDER BY key tuples. NULLs sort first ascending.
func orderLess(a, b mem.Row, keys []sqlparser.OrderItem) (bool, error) {
	for i := range keys {
		av, bv := a[i], b[i]
		if av.IsNull() && bv.IsNull() {
			continue
		}
		if av.IsNull() {
			return !keys[i].Desc, nil
		}
		if bv.IsNull() {
			return keys[i].Desc, nil
		}
		c, err := mem.Compare(av, bv)
		if err != nil {
			return false, fmt.Errorf("engine: ORDER BY: %w", err)
		}
		if c == 0 {
			continue
		}
		if keys[i].Desc {
			return c > 0, nil
		}
		return c < 0, nil
	}
	return false, nil
}

func applyLimit(s *sqlparser.SelectStmt, rows []mem.Row) ([]mem.Row, error) {
	off := 0
	if s.Offset != nil {
		v, err := Eval(s.Offset, Env{})
		if err != nil || v.Kind != mem.KindInt || v.I < 0 {
			return nil, fmt.Errorf("engine: OFFSET must be a non-negative integer")
		}
		off = int(v.I)
	}
	if off >= len(rows) {
		return nil, nil
	}
	rows = rows[off:]
	if s.Limit != nil {
		v, err := Eval(s.Limit, Env{})
		if err != nil || v.Kind != mem.KindInt || v.I < 0 {
			return nil, fmt.Errorf("engine: LIMIT must be a non-negative integer")
		}
		if int(v.I) < len(rows) {
			rows = rows[:v.I]
		}
	}
	return rows, nil
}
