package engine

import (
	"testing"

	"repro/internal/mem"
)

func TestTriggersFireOnDML(t *testing.T) {
	db := newCarDB(t)
	var seen []UpdateRecord
	id := db.AddTrigger("Car", func(rec UpdateRecord) { seen = append(seen, rec) })

	mustQuery(t, db, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	mustQuery(t, db, "UPDATE Car SET price = 13000 WHERE model = 'Rio'")
	mustQuery(t, db, "DELETE FROM Car WHERE model = 'Rio'")
	mustQuery(t, db, "INSERT INTO Mileage VALUES ('Rio', 35)") // other table: no fire

	// insert(1) + update(2) + delete(1) = 4 records, all for Car.
	if len(seen) != 4 {
		t.Fatalf("fired %d times: %+v", len(seen), seen)
	}
	ops := []UpdateOp{OpInsert, OpDelete, OpInsert, OpDelete}
	for i, want := range ops {
		if seen[i].Op != want || seen[i].Table != "Car" {
			t.Fatalf("record %d: %+v", i, seen[i])
		}
	}
	if seen[0].Op.String() != "INSERT" || seen[1].Op.String() != "DELETE" {
		t.Fatal("op names")
	}

	db.RemoveTrigger(id)
	mustQuery(t, db, "INSERT INTO Car VALUES ('Fiat', '500', 16000)")
	if len(seen) != 4 {
		t.Fatal("removed trigger fired")
	}
	db.RemoveTrigger(9999) // unknown id: no-op
}

func TestWildcardTrigger(t *testing.T) {
	db := newCarDB(t)
	n := 0
	db.AddTrigger("", func(UpdateRecord) { n++ })
	mustQuery(t, db, "INSERT INTO Car VALUES ('A', 'B', 1)")
	mustQuery(t, db, "INSERT INTO Mileage VALUES ('B', 1)")
	if n != 2 {
		t.Fatalf("fired %d", n)
	}
}

func TestMultipleTriggersSameTable(t *testing.T) {
	db := newCarDB(t)
	a, b := 0, 0
	db.AddTrigger("car", func(UpdateRecord) { a++ }) // case-insensitive
	db.AddTrigger("Car", func(UpdateRecord) { b++ })
	mustQuery(t, db, "INSERT INTO Car VALUES ('A', 'B', 1)")
	if a != 1 || b != 1 {
		t.Fatalf("a=%d b=%d", a, b)
	}
}

func TestThreeValuedLogicEdges(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustQuery(t, db, "INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)")

	// OR with NULL: true OR unknown = true.
	res := mustQuery(t, db, "SELECT b FROM t WHERE a = 1 OR a > 100")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// unknown OR true = true (row with NULL a still matches via b).
	res = mustQuery(t, db, "SELECT b FROM t WHERE a > 100 OR b = 'y'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "y" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// NOT NULL-comparison stays unknown → filtered.
	res = mustQuery(t, db, "SELECT b FROM t WHERE NOT (a > 0)")
	if len(res.Rows) != 0 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Unary minus over NULL and float.
	res = mustQuery(t, db, "SELECT -a FROM t WHERE b = 'y'")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("-NULL: %v", res.Rows[0][0])
	}
	res = mustQuery(t, db, "SELECT -(1.5)")
	if res.Rows[0][0] != mem.Float(-1.5) {
		t.Fatalf("-float: %v", res.Rows[0][0])
	}
	// Negating a string errors.
	if _, err := db.ExecSQL("SELECT -b FROM t"); err == nil {
		t.Fatal("want error")
	}
	// Non-boolean condition errors.
	if _, err := db.ExecSQL("SELECT * FROM t WHERE a + 1"); err == nil {
		t.Fatal("want condition-type error")
	}
}

func TestBetweenAndLikeEdges(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT, s TEXT)")
	mustQuery(t, db, "INSERT INTO t VALUES (5, 'hello'), (NULL, 'world'), (7, NULL)")

	// BETWEEN with NULL operand → unknown → filtered.
	res := mustQuery(t, db, "SELECT s FROM t WHERE a BETWEEN 1 AND 10")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT a FROM t WHERE s LIKE '%orl%'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// LIKE with NULL → filtered, no error.
	res = mustQuery(t, db, "SELECT a FROM t WHERE s LIKE 'h%'")
	if len(res.Rows) != 1 || res.Rows[0][0] != mem.Int(5) {
		t.Fatalf("rows: %v", res.Rows)
	}
	// LIKE over non-strings errors.
	if _, err := db.ExecSQL("SELECT * FROM t WHERE a LIKE 'x'"); err == nil {
		t.Fatal("want error")
	}
	// BETWEEN over incomparable kinds errors.
	if _, err := db.ExecSQL("SELECT * FROM t WHERE a BETWEEN 'a' AND 'z'"); err == nil {
		t.Fatal("want error")
	}
}

func TestHavingWithLogicAndNot(t *testing.T) {
	db := newCarDB(t)
	// Toyota: count 2 → true; Mitsubishi: count 1, min 18000 → false.
	res := mustQuery(t, db, "SELECT maker FROM Car GROUP BY maker HAVING COUNT(*) > 1 OR MIN(price) < 16000")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Toyota" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// OR succeeding through the right side for both groups.
	res = mustQuery(t, db, "SELECT maker FROM Car GROUP BY maker HAVING COUNT(*) > 5 OR MIN(price) < 19000 ORDER BY maker")
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT maker FROM Car GROUP BY maker HAVING NOT (COUNT(*) > 1)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Mitsubishi" {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT maker FROM Car GROUP BY maker HAVING COUNT(*) > 1 AND MAX(price) > 20000")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Toyota" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// Arithmetic over aggregates in HAVING.
	res = mustQuery(t, db, "SELECT maker FROM Car GROUP BY maker HAVING SUM(price) / COUNT(*) > 19000")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Toyota" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

func TestOrderByNulls(t *testing.T) {
	db := NewDatabase()
	mustQuery(t, db, "CREATE TABLE t (a INT)")
	mustQuery(t, db, "INSERT INTO t VALUES (2), (NULL), (1), (NULL)")
	res := mustQuery(t, db, "SELECT a FROM t ORDER BY a")
	// NULLs first ascending.
	if !res.Rows[0][0].IsNull() || !res.Rows[1][0].IsNull() ||
		res.Rows[2][0] != mem.Int(1) || res.Rows[3][0] != mem.Int(2) {
		t.Fatalf("rows: %v", res.Rows)
	}
	res = mustQuery(t, db, "SELECT a FROM t ORDER BY a DESC")
	if res.Rows[0][0] != mem.Int(2) || !res.Rows[3][0].IsNull() {
		t.Fatalf("rows: %v", res.Rows)
	}
}
