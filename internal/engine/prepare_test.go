package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mem"
)

func prepTestDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	script := `
		CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
		CREATE TABLE Mileage (model TEXT, EPA INT);
		INSERT INTO Car VALUES
			('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000),
			('BMW', 'M3', 70000), ('Dodge', 'Viper', 90000);
		INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31), ('M3', 19);
	`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPrepareExecMatchesExecSQL(t *testing.T) {
	db := prepTestDB(t)
	prep, err := db.Prepare("SELECT Car.maker, Car.model FROM Car, Mileage " +
		"WHERE Car.model = Mileage.model AND Car.price > $1")
	if err != nil {
		t.Fatal(err)
	}
	if prep.NumArgs() != 1 {
		t.Fatalf("NumArgs = %d", prep.NumArgs())
	}
	for _, min := range []float64{0, 15500, 80000} {
		got, err := prep.Exec([]mem.Value{mem.Float(min)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.ExecSQL(fmt.Sprintf("SELECT Car.maker, Car.model FROM Car, Mileage "+
			"WHERE Car.model = Mileage.model AND Car.price > %g", min))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("min=%g: prepared %+v != text %+v", min, got, want)
		}
	}
}

func TestPrepareArityChecked(t *testing.T) {
	db := prepTestDB(t)
	prep, err := db.Prepare("SELECT model FROM Car WHERE price > $1 AND maker = $2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Exec([]mem.Value{mem.Int(1)}); err == nil {
		t.Fatal("short arg vector accepted")
	}
	if _, err := prep.Exec([]mem.Value{mem.Int(1), mem.Str("BMW"), mem.Int(9)}); err == nil {
		t.Fatal("long arg vector accepted")
	}
}

// Literals in the prepared text stay fixed; only genuine placeholders become
// Exec arguments.
func TestPrepareMixedLiteralsAndPlaceholders(t *testing.T) {
	db := prepTestDB(t)
	prep, err := db.Prepare("SELECT model FROM Car WHERE price > 20000 AND maker = $1")
	if err != nil {
		t.Fatal(err)
	}
	if prep.NumArgs() != 1 {
		t.Fatalf("NumArgs = %d", prep.NumArgs())
	}
	res, err := prep.Exec([]mem.Value{mem.Str("BMW")})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "M3" {
		t.Fatalf("rows: %+v", res.Rows)
	}
}

func TestPrepareDML(t *testing.T) {
	db := prepTestDB(t)
	ins, err := db.Prepare("INSERT INTO Mileage VALUES ($1, $2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ins.Exec([]mem.Value{mem.Str("Viper"), mem.Int(13)}); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT EPA FROM Mileage WHERE model = 'Viper'")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 13 {
		t.Fatalf("insert not visible: %+v %v", res, err)
	}
	// The update log must record prepared DML exactly like text DML.
	recs, _ := db.Log().Since(1)
	last := recs[len(recs)-1]
	if last.Table != "Mileage" || last.Op != OpInsert {
		t.Fatalf("log record: %+v", last)
	}
}

func TestPrepareRejectsDDL(t *testing.T) {
	db := prepTestDB(t)
	if _, err := db.Prepare("CREATE TABLE x (a INT)"); err == nil {
		t.Fatal("DDL prepared")
	}
}

// ExecSQL must behave as a prepare-cache lookup: repeated text skips the
// parser, and different texts of one query type share a compiled template.
func TestExecSQLUsesStmtCache(t *testing.T) {
	db := prepTestDB(t)
	base := db.StmtCacheStats()
	q := "SELECT model FROM Car WHERE price > 20000"
	for i := 0; i < 5; i++ {
		if _, err := db.ExecSQL(q); err != nil {
			t.Fatal(err)
		}
	}
	st := db.StmtCacheStats()
	if hits := st.TextHits - base.TextHits; hits != 4 {
		t.Fatalf("text hits = %d, want 4", hits)
	}
	// Same type, different literal: template cache hit, text cache miss.
	if _, err := db.ExecSQL("SELECT model FROM Car WHERE price > 80000"); err != nil {
		t.Fatal(err)
	}
	st2 := db.StmtCacheStats()
	if st2.TemplateHits <= st.TemplateHits {
		t.Fatalf("template hits did not grow: %+v -> %+v", st, st2)
	}
}

// Unbound placeholders in ExecSQL text keep the legacy error behavior.
func TestExecSQLUnboundPlaceholder(t *testing.T) {
	db := prepTestDB(t)
	if _, err := db.ExecSQL("SELECT model FROM Car WHERE price > $1"); err == nil {
		t.Fatal("unbound placeholder executed")
	}
}

// Randomized equivalence: for random query shapes and bindings, the prepared
// path and the text path return identical results. Run with -race to check
// the template sharing under concurrency.
func TestPreparedTextEquivalenceRandom(t *testing.T) {
	db := prepTestDB(t)
	rng := rand.New(rand.NewSource(7))
	shapes := []struct {
		tmpl string
		text func(a, b int) string
		args func(a, b int) []mem.Value
	}{
		{
			tmpl: "SELECT maker, model, price FROM Car WHERE price > $1",
			text: func(a, _ int) string { return fmt.Sprintf("SELECT maker, model, price FROM Car WHERE price > %d", a) },
			args: func(a, _ int) []mem.Value { return []mem.Value{mem.Int(int64(a))} },
		},
		{
			tmpl: "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Mileage.EPA > $1 AND Car.price < $2",
			text: func(a, b int) string {
				return fmt.Sprintf("SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Mileage.EPA > %d AND Car.price < %d", a, b)
			},
			args: func(a, b int) []mem.Value { return []mem.Value{mem.Int(int64(a)), mem.Int(int64(b))} },
		},
		{
			tmpl: "SELECT COUNT(*) FROM Car WHERE maker = $1 OR price BETWEEN $2 AND 99999",
			text: func(a, b int) string {
				return fmt.Sprintf("SELECT COUNT(*) FROM Car WHERE maker = '%s' OR price BETWEEN %d AND 99999", makerName(a), b)
			},
			args: func(a, b int) []mem.Value { return []mem.Value{mem.Str(makerName(a)), mem.Int(int64(b))} },
		},
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		seed := rng.Int63()
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				sh := shapes[r.Intn(len(shapes))]
				a, b := r.Intn(100000), r.Intn(100000)
				prep, err := db.Prepare(sh.tmpl)
				if err != nil {
					t.Error(err)
					return
				}
				got, err := prep.Exec(sh.args(a, b))
				if err != nil {
					t.Error(err)
					return
				}
				want, err := db.ExecSQL(sh.text(a, b))
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shape %q a=%d b=%d: %+v != %+v", sh.tmpl, a, b, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func makerName(a int) string {
	names := []string{"Toyota", "Honda", "BMW", "Dodge", "Nobody"}
	return names[a%len(names)]
}

// TestPrepareUpdateArgOrder executes a prepared UPDATE whose placeholders
// span SET and WHERE; arguments must bind by $N ordinal (regression for the
// UPDATE traversal-order bug, where arg 0 landed in the WHERE clause).
func TestPrepareUpdateArgOrder(t *testing.T) {
	db := prepTestDB(t)
	st, err := db.Prepare("UPDATE Car SET maker = $1 WHERE price = $2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec([]mem.Value{mem.Str("Renamed"), mem.Float(15000)}); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL("SELECT maker FROM Car WHERE price = 15000")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Renamed" {
		t.Fatalf("rows: %v", res.Rows)
	}
}
