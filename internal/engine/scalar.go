package engine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// Scalar (non-aggregate) SQL functions. Because the invalidator evaluates
// predicate conjuncts with the same Eval used here, every function added
// makes delta analysis more precise for queries that use it (an unsupported
// function degrades the page to conservative invalidation, never to
// staleness).

// evalScalarFunc evaluates a non-aggregate function call.
func evalScalarFunc(f *sqlparser.FuncExpr, env Env) (mem.Value, error) {
	args := make([]mem.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := Eval(a, env)
		if err != nil {
			return mem.Null(), err
		}
		args[i] = v
	}
	return applyScalarFunc(f.Name, args)
}

func applyScalarFunc(name string, args []mem.Value) (mem.Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("engine: %s takes %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "UPPER":
		if err := arity(1); err != nil {
			return mem.Null(), err
		}
		if args[0].IsNull() {
			return mem.Null(), nil
		}
		if args[0].Kind != mem.KindString {
			return mem.Null(), fmt.Errorf("engine: UPPER requires a string")
		}
		return mem.Str(strings.ToUpper(args[0].S)), nil
	case "LOWER":
		if err := arity(1); err != nil {
			return mem.Null(), err
		}
		if args[0].IsNull() {
			return mem.Null(), nil
		}
		if args[0].Kind != mem.KindString {
			return mem.Null(), fmt.Errorf("engine: LOWER requires a string")
		}
		return mem.Str(strings.ToLower(args[0].S)), nil
	case "LENGTH":
		if err := arity(1); err != nil {
			return mem.Null(), err
		}
		if args[0].IsNull() {
			return mem.Null(), nil
		}
		if args[0].Kind != mem.KindString {
			return mem.Null(), fmt.Errorf("engine: LENGTH requires a string")
		}
		return mem.Int(int64(len(args[0].S))), nil
	case "ABS":
		if err := arity(1); err != nil {
			return mem.Null(), err
		}
		switch args[0].Kind {
		case mem.KindNull:
			return mem.Null(), nil
		case mem.KindInt:
			if args[0].I < 0 {
				return mem.Int(-args[0].I), nil
			}
			return args[0], nil
		case mem.KindFloat:
			return mem.Float(math.Abs(args[0].F)), nil
		default:
			return mem.Null(), fmt.Errorf("engine: ABS requires a number")
		}
	case "COALESCE":
		if len(args) == 0 {
			return mem.Null(), fmt.Errorf("engine: COALESCE needs at least one argument")
		}
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return mem.Null(), nil
	case "SUBSTR":
		// SUBSTR(s, start [, length]) with 1-based start, SQL style.
		if len(args) != 2 && len(args) != 3 {
			return mem.Null(), fmt.Errorf("engine: SUBSTR takes 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() || (len(args) == 3 && args[2].IsNull()) {
			return mem.Null(), nil
		}
		if args[0].Kind != mem.KindString || args[1].Kind != mem.KindInt {
			return mem.Null(), fmt.Errorf("engine: SUBSTR requires (string, int[, int])")
		}
		s := args[0].S
		start := int(args[1].I)
		if start < 1 {
			start = 1
		}
		if start > len(s) {
			return mem.Str(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			if args[2].Kind != mem.KindInt {
				return mem.Null(), fmt.Errorf("engine: SUBSTR length must be an integer")
			}
			n := int(args[2].I)
			if n < 0 {
				n = 0
			}
			if n < len(out) {
				out = out[:n]
			}
		}
		return mem.Str(out), nil
	default:
		return mem.Null(), fmt.Errorf("engine: unknown function %s", name)
	}
}
