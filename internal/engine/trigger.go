package engine

import (
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Trigger support exists to implement the paper's *rejected* design
// alternative (§4: "embed, into the database, update sensitive triggers
// which generate invalidation messages") as a measurable baseline. Triggers
// run synchronously inside the DML critical section — which is precisely
// the "heavy trigger management burden on the database" the paper argues
// against; BenchmarkTriggerOverhead quantifies it.

// TriggerFunc observes one row-level change. It runs while the database's
// write lock is held: anything slow here stalls all other writers and
// readers, exactly as DBMS-resident trigger work would.
type TriggerFunc func(rec UpdateRecord)

type triggerSet struct {
	mu   sync.RWMutex
	next int64
	// byTable maps lower-cased table name → trigger id → fn. Empty-string
	// key holds wildcard triggers (fire on every table).
	byTable map[string]map[int64]TriggerFunc
}

func (t *triggerSet) add(table string, fn TriggerFunc) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byTable == nil {
		t.byTable = make(map[string]map[int64]TriggerFunc)
	}
	key := strings.ToLower(table)
	set, ok := t.byTable[key]
	if !ok {
		set = make(map[int64]TriggerFunc)
		t.byTable[key] = set
	}
	t.next++
	set[t.next] = fn
	return t.next
}

func (t *triggerSet) remove(id int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, set := range t.byTable {
		if _, ok := set[id]; ok {
			delete(set, id)
			if len(set) == 0 {
				delete(t.byTable, key)
			}
			return
		}
	}
}

func (t *triggerSet) fire(rec UpdateRecord) {
	t.mu.RLock()
	var fns []TriggerFunc
	for _, fn := range t.byTable[strings.ToLower(rec.Table)] {
		fns = append(fns, fn)
	}
	for _, fn := range t.byTable[""] {
		fns = append(fns, fn)
	}
	t.mu.RUnlock()
	for _, fn := range fns {
		fn(rec)
	}
}

func (t *triggerSet) empty() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byTable) == 0
}

// AddTrigger registers fn to run synchronously for every change to table
// ("" = every table). It returns an id for RemoveTrigger.
func (db *Database) AddTrigger(table string, fn TriggerFunc) int64 {
	return db.triggers.add(table, fn)
}

// RemoveTrigger unregisters a trigger by id; unknown ids are ignored.
func (db *Database) RemoveTrigger(id int64) { db.triggers.remove(id) }

// logAndFire appends rec to the update log and fires matching triggers
// synchronously (inside the caller's critical section). With a tracer
// attached (Database.SetTracer) the commit opens a new trace here: the
// engine.commit root span, whose context rides the record through the log,
// the wire, and the invalidator to the web cache's eject.
func (db *Database) logAndFire(rec UpdateRecord) {
	if tr := db.tracer.Load(); tr != nil {
		now := time.Now()
		if rec.Time.IsZero() {
			rec.Time = now // one clock reading for both stamp and span
		}
		ctx := tr.Root("engine.commit", rec.Time, now,
			trace.Attr{K: "table", V: rec.Table},
			trace.Attr{K: "op", V: rec.Op.String()})
		rec.Trace, rec.Span = ctx.Trace, ctx.Span
	}
	db.log.Append(rec)
	if !db.triggers.empty() {
		db.triggers.fire(rec)
	}
}
