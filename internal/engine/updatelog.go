package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/feed"
	"repro/internal/mem"
)

// UpdateOp distinguishes the two primitive changes in the update log. An SQL
// UPDATE appears as a delete of the old row followed by an insert of the new
// one, which is exactly the Δ⁻R / Δ⁺R decomposition the invalidator consumes
// (paper §4.2.1).
type UpdateOp int

// Update operations.
const (
	OpInsert UpdateOp = iota
	OpDelete
)

// String names the operation ("INSERT" or "DELETE").
func (op UpdateOp) String() string {
	if op == OpInsert {
		return "INSERT"
	}
	return "DELETE"
}

// UpdateRecord is one entry of the database update log.
type UpdateRecord struct {
	LSN     int64 // monotonically increasing log sequence number, from 1
	Time    time.Time
	Table   string // table name as created (original case)
	Op      UpdateOp
	Columns []string // schema column names at the time of the change
	Row     mem.Row  // full image of the inserted/deleted row
	// Trace/Span carry the pipeline-trace context stamped at commit time
	// (see Database.SetTracer): Trace identifies the end-to-end trace this
	// change opened, Span the engine.commit root span. Zero when tracing is
	// off; they ride the log (and the wire protocol) in-band so every
	// downstream hop can attach child spans without side channels.
	Trace int64
	Span  int64
}

// UpdateLog is an append-only, bounded-memory log of row-level changes.
// Readers poll with Since or subscribe with Subscribe (blocking on arrival
// instead of re-copying the suffix); the log retains at most Capacity
// records (old records are discarded, and readers that fell behind can
// detect truncation by comparing the first returned LSN with the one they
// asked for).
type UpdateLog struct {
	mu       sync.Mutex
	recs     []UpdateRecord
	firstLSN int64 // LSN of recs[0]
	capacity int
	// next mirrors the next LSN atomically so idle readers (Since at the
	// head, NextLSN) never touch the mutex — a cycle-cadence poller with no
	// new records costs two atomic loads, not a lock acquisition.
	next atomic.Int64
	// changed is closed on every append and then replaced; Changed hands it
	// to readers that want to block until new records may exist.
	changed chan struct{}

	hubOnce sync.Once
	hub     *feed.Hub[UpdateRecord]
}

// DefaultLogCapacity bounds update log memory when no capacity is given.
const DefaultLogCapacity = 1 << 16

// NewUpdateLog creates a log retaining at most capacity records
// (DefaultLogCapacity if capacity <= 0).
func NewUpdateLog(capacity int) *UpdateLog {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	l := &UpdateLog{firstLSN: 1, capacity: capacity, changed: make(chan struct{})}
	l.next.Store(1)
	return l
}

// Append adds a record, assigning its LSN, and returns that LSN.
func (l *UpdateLog) Append(rec UpdateRecord) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	rec.LSN = l.next.Load()
	if rec.Time.IsZero() {
		rec.Time = time.Now()
	}
	l.next.Add(1)
	l.recs = append(l.recs, rec)
	// Trim in half-capacity batches so appends stay amortized O(1): between
	// Capacity and 1.5×Capacity records are retained at any time.
	if over := len(l.recs) - l.capacity*3/2; over > 0 {
		drop := len(l.recs) - l.capacity
		l.recs = append(l.recs[:0:0], l.recs[drop:]...)
		l.firstLSN += int64(drop)
	}
	// Wake subscribers: close-and-replace broadcasts to every waiter at
	// once without tracking them individually.
	close(l.changed)
	l.changed = make(chan struct{})
	return rec.LSN
}

// NextLSN returns the LSN the next appended record will receive.
func (l *UpdateLog) NextLSN() int64 { return l.next.Load() }

// FirstLSN returns the oldest LSN the log still retains.
func (l *UpdateLog) FirstLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstLSN
}

// Changed returns a channel that is closed when a record may have been
// appended since the call. Re-obtain it after every wakeup; a Since issued
// after obtaining the channel observes every record whose append closed an
// earlier channel.
func (l *UpdateLog) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}

// Since returns a copy of all records with LSN >= lsn, plus truncated=true
// when records at or after lsn have already been discarded (the caller
// missed changes and must fall back to conservative behaviour).
func (l *UpdateLog) Since(lsn int64) (recs []UpdateRecord, truncated bool) {
	recs, truncated, _, _ = l.SinceNext(lsn)
	return recs, truncated
}

// SinceNext is Since plus the resume cursor and truncation context, all
// observed atomically under one lock acquisition: next is exactly one past
// the last returned record (never a later LSN whose record was not
// returned), and first is the oldest retained LSN. Callers advancing a
// cursor must use this next — reading NextLSN separately races with
// appends and would skip records. A caller already at the head (lsn ==
// NextLSN) returns on the atomic fast path without taking the mutex or
// allocating.
func (l *UpdateLog) SinceNext(lsn int64) (recs []UpdateRecord, truncated bool, next, first int64) {
	if lsn < 1 {
		lsn = 1
	}
	// Idle fast path: a reader exactly at the head can get nothing, and
	// lsn == nextLSN >= firstLSN rules truncation out, so the answer needs
	// neither the mutex nor an allocation. The cadence pollers hit this on
	// every quiet cycle. (A cursor PAST the head — possible only against a
	// different, restarted log — takes the slow path so next snaps back to
	// the real head.) first is 0 here: "no truncation context needed".
	if lsn == l.next.Load() {
		return nil, false, lsn, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	truncated = lsn < l.firstLSN
	next = l.next.Load()
	first = l.firstLSN
	start := lsn - l.firstLSN
	if start < 0 {
		start = 0
	}
	if start >= int64(len(l.recs)) {
		return nil, truncated, next, first
	}
	out := make([]UpdateRecord, int64(len(l.recs))-start)
	copy(out, l.recs[start:])
	return out, truncated, next, first
}

// Subscribe opens a feed subscription at cursor: batches of records are
// delivered as they arrive, with bounded buffering (buffer batches; feed
// defaults when <= 0) and the truncation signal in-band. Close the
// subscription when done; resume a replacement from the last consumed
// batch's Next.
func (l *UpdateLog) Subscribe(cursor int64, buffer int) *feed.Subscription[UpdateRecord] {
	return l.Hub().Subscribe(cursor, buffer)
}

// Hub exposes the log's fan-out feed hub (created on first use), for
// callers that want hub-level stats alongside subscriptions.
func (l *UpdateLog) Hub() *feed.Hub[UpdateRecord] {
	l.hubOnce.Do(func() {
		l.hub = feed.NewHub(func(cursor int64) ([]UpdateRecord, bool, int64, int64) {
			return l.SinceNext(cursor)
		}, l.Changed)
	})
	return l.hub
}

// Delta groups a batch of update records into per-relation Δ⁺ (inserts) and
// Δ⁻ (deletes) tables, the form §4.2.1 prescribes for group processing.
type Delta struct {
	Table   string
	Columns []string
	Plus    []mem.Row // Δ⁺R: inserted rows
	Minus   []mem.Row // Δ⁻R: deleted rows
	// Stamp is the commit time of the oldest record folded into this delta
	// — the freshness-trace origin. A page invalidated because of this
	// delta has been stale since at most Stamp, so eject-time minus Stamp
	// is the measured staleness window (paper §5's freshness criterion).
	Stamp time.Time
	// Trace/Span follow Stamp: the trace context of the oldest record in
	// the delta, so the staleness a page is charged with and the trace that
	// explains it describe the same commit.
	Trace int64
	Span  int64
}

// BuildDeltas partitions records by table, preserving first-appearance
// order of tables. Table-name matching is case-insensitive; the first
// record's spelling and column set win.
func BuildDeltas(recs []UpdateRecord) []*Delta {
	var order []string
	byTable := map[string]*Delta{}
	for _, rec := range recs {
		key := lowerName(rec.Table)
		d, ok := byTable[key]
		if !ok {
			d = &Delta{Table: rec.Table, Columns: rec.Columns, Stamp: rec.Time, Trace: rec.Trace, Span: rec.Span}
			byTable[key] = d
			order = append(order, key)
		}
		if !rec.Time.IsZero() && (d.Stamp.IsZero() || rec.Time.Before(d.Stamp)) {
			d.Stamp = rec.Time
			d.Trace, d.Span = rec.Trace, rec.Span
		}
		if rec.Op == OpInsert {
			d.Plus = append(d.Plus, rec.Row)
		} else {
			d.Minus = append(d.Minus, rec.Row)
		}
	}
	out := make([]*Delta, len(order))
	for i, k := range order {
		out[i] = byTable[k]
	}
	return out
}

func lowerName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}
