// Package demoapp is the paper's evaluation application (§5.2.1): a
// database with one small (500-tuple) and one large (2500-tuple) table
// sharing a join attribute with 10 uniformly distributed values, and three
// dynamically generated pages — light (select on the small table), medium
// (select on the large table), heavy (select-join over both) — each with
// selectivity 0.1. The cmd/ binaries, examples and benchmarks all deploy
// this application.
package demoapp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/fragment"
)

// Default table sizes from §5.2.1.
const (
	SmallRows = 500
	LargeRows = 2500
	// JoinValues is the number of distinct join-attribute values; with a
	// uniform distribution, filtering on one value selects 1/10 of each
	// table (the paper's 0.1 selectivity).
	JoinValues = 10
)

// SchemaSQL builds the CREATE TABLE + INSERT script seeding the two tables
// deterministically.
func SchemaSQL(smallRows, largeRows int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("CREATE TABLE small (id INT PRIMARY KEY, cat INT, val TEXT);\n")
	b.WriteString("CREATE TABLE large (id INT PRIMARY KEY, cat INT, val TEXT);\n")
	b.WriteString("CREATE INDEX small_cat ON small (cat);\n")
	b.WriteString("CREATE INDEX large_cat ON large (cat);\n")
	writeRows := func(table string, n int) {
		const batch = 200
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			b.WriteString("INSERT INTO " + table + " VALUES ")
			for i := start; i < end; i++ {
				if i > start {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(%d, %d, 'v%d')", i, i%JoinValues, rng.Intn(1_000_000))
			}
			b.WriteString(";\n")
		}
	}
	writeRows("small", smallRows)
	writeRows("large", largeRows)
	return b.String()
}

// DefaultSchemaSQL seeds the paper's sizes.
func DefaultSchemaSQL() string { return SchemaSQL(SmallRows, LargeRows, 1) }

// Def pairs a servlet's registration with its handler.
type Def struct {
	Meta    appserver.Meta
	Handler appserver.ServletFunc
}

// queryRows runs sql on the lease and formats the result the way the demo
// pages always have.
func queryRows(lease *driver.Lease, sql string) ([]byte, error) {
	res, err := lease.Query(sql)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<!-- %d rows -->\n", len(res.Rows))
	for _, r := range res.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte('\t')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

func cat(ctx *appserver.Context) string {
	c := ctx.Param("cat")
	if c == "" {
		c = "0"
	}
	return c
}

// rowsPage runs sql inside a shared "rows" fragment build and returns a
// fragmented page whose template is the bare fragment marker — so the
// assembled output is byte-for-byte what the pre-fragment servlets
// produced, while a fragment-aware cache can store and invalidate the
// query result independently of any page trim.
func rowsPage(ctx *appserver.Context, source, sql string) (*appserver.Page, error) {
	err := ctx.Fragment("rows", false, func() ([]byte, error) {
		lease, err := ctx.Lease(source)
		if err != nil {
			return nil, err
		}
		defer lease.Release()
		return queryRows(lease, sql)
	})
	if err != nil {
		return nil, err
	}
	return &appserver.Page{Template: []byte(fragment.Marker("rows"))}, nil
}

// Servlets returns the three page servlets, reading through the named data
// source. Each takes a "cat" GET parameter (the join-attribute value,
// 0..9) as its cache key. Every page is a single shared "rows" fragment
// under a marker-only template: assembled output is identical to the
// historical whole-page bodies, and fragment-aware deployments cache the
// query block on its own key.
func Servlets(source string) []Def {
	return []Def{
		{
			Meta: appserver.Meta{Name: "light", Keys: appserver.KeySpec{Get: []string{"cat"}}},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				return rowsPage(ctx, source, "SELECT id, cat, val FROM small WHERE cat = "+cat(ctx))
			},
		},
		{
			Meta: appserver.Meta{Name: "medium", Keys: appserver.KeySpec{Get: []string{"cat"}}},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				return rowsPage(ctx, source, "SELECT id, cat, val FROM large WHERE cat = "+cat(ctx))
			},
		},
		{
			Meta: appserver.Meta{Name: "heavy", Keys: appserver.KeySpec{Get: []string{"cat"}}},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				return rowsPage(ctx, source, "SELECT small.id, large.id, small.val FROM small, large "+
					"WHERE small.cat = large.cat AND small.cat = "+cat(ctx)+" ORDER BY small.id LIMIT 200")
			},
		},
	}
}

// SessionCookie is the cookie carrying the demo user identity; the "home"
// servlet keys its private fragment on it.
const SessionCookie = "session"

// HomeTemplate is the "home" page's assembly skeleton: a static shell with
// three include markers. Header and listing are shared across sessions;
// trim is private to one user.
var HomeTemplate = []byte("<header>demo</header>\n" +
	fragment.Marker("header") + "\n" +
	fragment.Marker("listing") + "\n" +
	fragment.Marker("trim") + "\n<footer/>\n")

// PersonalizedServlets returns the personalized "home" servlet of the
// fragment evaluation: a page keyed on both the "cat" GET parameter and
// the session cookie, composed of a static shared header, a shared listing
// (the large-table query for cat — identical for every user asking for
// that category), and a query-free private trim greeting the session. At
// page granularity every user's copy is distinct and a row update ejects
// them all; at fragment granularity all users share one listing copy and
// an update ejects only it.
func PersonalizedServlets(source string) []Def {
	return []Def{
		{
			Meta: appserver.Meta{
				Name: "home",
				Keys: appserver.KeySpec{Get: []string{"cat"}, Cookie: []string{SessionCookie}},
			},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				if err := ctx.Fragment("header", false, func() ([]byte, error) {
					return []byte("<nav>categories 0.." + fmt.Sprint(JoinValues-1) + "</nav>"), nil
				}); err != nil {
					return nil, err
				}
				if err := ctx.Fragment("listing", false, func() ([]byte, error) {
					lease, err := ctx.Lease(source)
					if err != nil {
						return nil, err
					}
					defer lease.Release()
					return queryRows(lease, "SELECT id, cat, val FROM large WHERE cat = "+cat(ctx))
				}); err != nil {
					return nil, err
				}
				if err := ctx.Fragment("trim", true, func() ([]byte, error) {
					return []byte("<aside>hello " + ctx.Cookies[SessionCookie] + "</aside>"), nil
				}); err != nil {
					return nil, err
				}
				return &appserver.Page{Template: HomeTemplate}, nil
			},
		},
	}
}

// HomeURL builds a personalized page URL for one category.
func HomeURL(base string, cat int) string {
	return fmt.Sprintf("%s/home?cat=%d", base, cat)
}

// PageURLs returns the 30 demo page URLs (3 servlets × 10 categories)
// under the given base URL.
func PageURLs(base string) []string {
	var urls []string
	for _, s := range []string{"light", "medium", "heavy"} {
		for c := 0; c < JoinValues; c++ {
			urls = append(urls, fmt.Sprintf("%s/%s?cat=%d", base, s, c))
		}
	}
	return urls
}

// UpdateStatement returns the paper's random update generator against the
// two tables: inserts and deletes with random keys, preserving the join
// attribute's 10-value domain.
func UpdateStatement() func(*rand.Rand) string {
	nextID := int64(10_000_000) // beyond seeded IDs so inserts never collide
	return func(rng *rand.Rand) string {
		table := "small"
		size := SmallRows
		if rng.Intn(2) == 1 {
			table = "large"
			size = LargeRows
		}
		if rng.Intn(2) == 0 {
			nextID++
			return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, 'u%d')",
				table, nextID, rng.Intn(JoinValues), rng.Intn(1_000_000))
		}
		return fmt.Sprintf("DELETE FROM %s WHERE id = %d", table, rng.Intn(size))
	}
}

// ListingUpdateStatement returns an insert into the large table in exactly
// one category — the update that, under fragment-level invalidation,
// should eject only that category's listing fragments and nothing else.
// id must be unique among prior inserts (start above 20,000,000 to stay
// clear of UpdateStatement's range).
func ListingUpdateStatement(id int64, cat int) string {
	return fmt.Sprintf("INSERT INTO large VALUES (%d, %d, 'f%d')", id, cat, id)
}
