// Package demoapp is the paper's evaluation application (§5.2.1): a
// database with one small (500-tuple) and one large (2500-tuple) table
// sharing a join attribute with 10 uniformly distributed values, and three
// dynamically generated pages — light (select on the small table), medium
// (select on the large table), heavy (select-join over both) — each with
// selectivity 0.1. The cmd/ binaries, examples and benchmarks all deploy
// this application.
package demoapp

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/appserver"
)

// Default table sizes from §5.2.1.
const (
	SmallRows = 500
	LargeRows = 2500
	// JoinValues is the number of distinct join-attribute values; with a
	// uniform distribution, filtering on one value selects 1/10 of each
	// table (the paper's 0.1 selectivity).
	JoinValues = 10
)

// SchemaSQL builds the CREATE TABLE + INSERT script seeding the two tables
// deterministically.
func SchemaSQL(smallRows, largeRows int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("CREATE TABLE small (id INT PRIMARY KEY, cat INT, val TEXT);\n")
	b.WriteString("CREATE TABLE large (id INT PRIMARY KEY, cat INT, val TEXT);\n")
	b.WriteString("CREATE INDEX small_cat ON small (cat);\n")
	b.WriteString("CREATE INDEX large_cat ON large (cat);\n")
	writeRows := func(table string, n int) {
		const batch = 200
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			b.WriteString("INSERT INTO " + table + " VALUES ")
			for i := start; i < end; i++ {
				if i > start {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(%d, %d, 'v%d')", i, i%JoinValues, rng.Intn(1_000_000))
			}
			b.WriteString(";\n")
		}
	}
	writeRows("small", smallRows)
	writeRows("large", largeRows)
	return b.String()
}

// DefaultSchemaSQL seeds the paper's sizes.
func DefaultSchemaSQL() string { return SchemaSQL(SmallRows, LargeRows, 1) }

// Def pairs a servlet's registration with its handler.
type Def struct {
	Meta    appserver.Meta
	Handler appserver.ServletFunc
}

// Servlets returns the three page servlets, reading through the named data
// source. Each takes a "cat" GET parameter (the join-attribute value,
// 0..9) as its cache key.
func Servlets(source string) []Def {
	query := func(ctx *appserver.Context, sql string) (*appserver.Page, error) {
		lease, err := ctx.Lease(source)
		if err != nil {
			return nil, err
		}
		defer lease.Release()
		res, err := lease.Query(sql)
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "<!-- %d rows -->\n", len(res.Rows))
		for _, r := range res.Rows {
			for i, v := range r {
				if i > 0 {
					b.WriteByte('\t')
				}
				b.WriteString(v.String())
			}
			b.WriteByte('\n')
		}
		return &appserver.Page{Body: []byte(b.String())}, nil
	}
	cat := func(ctx *appserver.Context) string {
		c := ctx.Param("cat")
		if c == "" {
			c = "0"
		}
		return c
	}
	return []Def{
		{
			Meta: appserver.Meta{Name: "light", Keys: appserver.KeySpec{Get: []string{"cat"}}},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				return query(ctx, "SELECT id, cat, val FROM small WHERE cat = "+cat(ctx))
			},
		},
		{
			Meta: appserver.Meta{Name: "medium", Keys: appserver.KeySpec{Get: []string{"cat"}}},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				return query(ctx, "SELECT id, cat, val FROM large WHERE cat = "+cat(ctx))
			},
		},
		{
			Meta: appserver.Meta{Name: "heavy", Keys: appserver.KeySpec{Get: []string{"cat"}}},
			Handler: func(ctx *appserver.Context) (*appserver.Page, error) {
				return query(ctx, "SELECT small.id, large.id, small.val FROM small, large "+
					"WHERE small.cat = large.cat AND small.cat = "+cat(ctx)+" ORDER BY small.id LIMIT 200")
			},
		},
	}
}

// PageURLs returns the 30 demo page URLs (3 servlets × 10 categories)
// under the given base URL.
func PageURLs(base string) []string {
	var urls []string
	for _, s := range []string{"light", "medium", "heavy"} {
		for c := 0; c < JoinValues; c++ {
			urls = append(urls, fmt.Sprintf("%s/%s?cat=%d", base, s, c))
		}
	}
	return urls
}

// UpdateStatement returns the paper's random update generator against the
// two tables: inserts and deletes with random keys, preserving the join
// attribute's 10-value domain.
func UpdateStatement() func(*rand.Rand) string {
	nextID := int64(10_000_000) // beyond seeded IDs so inserts never collide
	return func(rng *rand.Rand) string {
		table := "small"
		size := SmallRows
		if rng.Intn(2) == 1 {
			table = "large"
			size = LargeRows
		}
		if rng.Intn(2) == 0 {
			nextID++
			return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, 'u%d')",
				table, nextID, rng.Intn(JoinValues), rng.Intn(1_000_000))
		}
		return fmt.Sprintf("DELETE FROM %s WHERE id = %d", table, rng.Intn(size))
	}
}
