package demoapp

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/mem"
)

func TestSchemaSeedsPaperSizes(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(DefaultSchemaSQL()); err != nil {
		t.Fatal(err)
	}
	res, _ := db.ExecSQL("SELECT COUNT(*) FROM small")
	if res.Rows[0][0] != mem.Int(SmallRows) {
		t.Fatalf("small: %v", res.Rows[0][0])
	}
	res, _ = db.ExecSQL("SELECT COUNT(*) FROM large")
	if res.Rows[0][0] != mem.Int(LargeRows) {
		t.Fatalf("large: %v", res.Rows[0][0])
	}
	// Join attribute: 10 uniform values → selectivity 0.1 (§5.2.1).
	res, _ = db.ExecSQL("SELECT COUNT(DISTINCT cat) FROM large")
	if res.Rows[0][0] != mem.Int(JoinValues) {
		t.Fatalf("cats: %v", res.Rows[0][0])
	}
	res, _ = db.ExecSQL("SELECT COUNT(*) FROM small WHERE cat = 3")
	if res.Rows[0][0] != mem.Int(SmallRows/JoinValues) {
		t.Fatalf("selectivity: %v", res.Rows[0][0])
	}
	// Join-attribute indexes exist for probe-accelerated joins.
	if !db.Table("small").HasIndex("cat") || !db.Table("large").HasIndex("cat") {
		t.Fatal("cat indexes missing")
	}
}

func TestSchemaDeterministic(t *testing.T) {
	if SchemaSQL(50, 100, 7) != SchemaSQL(50, 100, 7) {
		t.Fatal("same seed must give same script")
	}
	if SchemaSQL(50, 100, 7) == SchemaSQL(50, 100, 8) {
		t.Fatal("different seeds should differ")
	}
}

func TestServletsDefs(t *testing.T) {
	defs := Servlets("db")
	if len(defs) != 3 {
		t.Fatalf("defs: %d", len(defs))
	}
	names := map[string]bool{}
	for _, d := range defs {
		names[d.Meta.Name] = true
		if len(d.Meta.Keys.Get) != 1 || d.Meta.Keys.Get[0] != "cat" {
			t.Fatalf("%s keys: %+v", d.Meta.Name, d.Meta.Keys)
		}
	}
	for _, want := range []string{"light", "medium", "heavy"} {
		if !names[want] {
			t.Fatalf("missing servlet %s", want)
		}
	}
}

func TestPageURLs(t *testing.T) {
	urls := PageURLs("http://x")
	if len(urls) != 3*JoinValues {
		t.Fatalf("urls: %d", len(urls))
	}
	if urls[0] != "http://x/light?cat=0" {
		t.Fatalf("first: %s", urls[0])
	}
	if urls[len(urls)-1] != "http://x/heavy?cat=9" {
		t.Fatalf("last: %s", urls[len(urls)-1])
	}
}

func TestUpdateStatementMixAndValidity(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(DefaultSchemaSQL()); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	stmt := UpdateStatement()
	inserts, deletes := 0, 0
	for i := 0; i < 200; i++ {
		sql := stmt(rng)
		if strings.HasPrefix(sql, "INSERT") {
			inserts++
		} else {
			deletes++
		}
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	if inserts == 0 || deletes == 0 {
		t.Fatalf("mix: %d/%d", inserts, deletes)
	}
	// Inserted IDs never collide with seeds (no pk violations above).
}

func TestServletsServePages(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(SchemaSQL(50, 200, 1)); err != nil {
		t.Fatal(err)
	}
	pool, err := driver.NewPool(driver.DirectDriver{DB: db}, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	reg := driver.NewRegistry()
	reg.Bind("db", pool)
	srv := appserver.NewServer(reg, appserver.NewRequestLog(0))
	for _, d := range Servlets("db") {
		srv.MustRegister(d.Meta, d.Handler)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, name := range []string{"light", "medium", "heavy"} {
		resp, err := http.Get(ts.URL + "/" + name + "?cat=3")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "rows -->") {
			t.Fatalf("%s: body %q", name, body)
		}
		// Default cat when missing.
		resp2, err := http.Get(ts.URL + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if resp2.StatusCode != 200 {
			t.Fatalf("%s no-cat: %d", name, resp2.StatusCode)
		}
	}
	// Missing data source errors cleanly.
	srv2 := appserver.NewServer(driver.NewRegistry(), appserver.NewRequestLog(0))
	for _, d := range Servlets("db") {
		srv2.MustRegister(d.Meta, d.Handler)
	}
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp, err := http.Get(ts2.URL + "/light?cat=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
