package invalidator

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sniffer"
	"repro/internal/webcache"
)

func memStr(s string) mem.Value { return mem.Str(s) }

func TestIndexSetManagement(t *testing.T) {
	h := newHarness(t, carSchema)
	pollConn, _ := driver.DirectDriver{DB: h.db}.Connect("")
	idx := h.inv.Indexes()
	if idx.Size("Mileage", "model") != -1 {
		t.Fatal("unmaintained size should be -1")
	}
	if err := idx.Maintain(pollConn, "Mileage", "model"); err != nil {
		t.Fatal(err)
	}
	if got := idx.Maintained(); len(got) != 1 || got[0] != "mileage|model" {
		t.Fatalf("maintained: %v", got)
	}
	if idx.Size("MILEAGE", "MODEL") != 3 {
		t.Fatalf("size: %d", idx.Size("MILEAGE", "MODEL"))
	}
	exists, ok := idx.Contains("mileage", "model", memStr("Corolla"))
	if !ok || !exists {
		t.Fatalf("contains: %v %v", exists, ok)
	}
	exists, ok = idx.Contains("mileage", "model", memStr("Nope"))
	if !ok || exists {
		t.Fatalf("missing value: %v %v", exists, ok)
	}
	idx.Drop("Mileage", "model")
	if idx.Size("Mileage", "model") != -1 || len(idx.Maintained()) != 0 {
		t.Fatal("drop failed")
	}
	if err := idx.Maintain(nil, "x", "y"); err == nil {
		t.Fatal("nil poller must fail")
	}
	if err := idx.Maintain(pollConn, "nope", "y"); err == nil {
		t.Fatal("bad table must fail")
	}
}

func TestRegistryTypeLookupAndPolicyRules(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("p", "SELECT * FROM Car WHERE price < 100")
	h.cycle(t)
	qt, ok := h.inv.Registry().Type("SELECT * FROM car WHERE price < $1")
	if !ok || qt == nil {
		t.Fatal("type lookup failed")
	}
	if _, ok := h.inv.Registry().Type("nope"); ok {
		t.Fatal("phantom type")
	}
	p := h.inv.Policies()
	p.AddRule(Rule{Table: "car", Action: ActionNeverCache})
	rules := p.Rules()
	if len(rules) != 1 || rules[0].Table != "car" {
		t.Fatalf("rules: %+v", rules)
	}
}

func TestEjectorImplementations(t *testing.T) {
	cache := webcache.NewCache(0)
	cache.Put(&webcache.Entry{Key: "a"})
	cache.Put(&webcache.Entry{Key: "b"})
	if err := (CacheEjector{Cache: cache}).Eject([]string{"a", "missing"}); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 1 {
		t.Fatalf("len: %d", cache.Len())
	}
	// MultiEjector aggregates and reports the first error.
	calls := 0
	good := FuncEjector(func([]string) error { calls++; return nil })
	bad := FuncEjector(func([]string) error { calls++; return errors.New("x") })
	err := MultiEjector{good, bad, good}.Eject([]string{"k"})
	if err == nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}

func TestInvalidatorStartLoop(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	var ejected atomic.Int64
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Ejector: FuncEjector(func(keys []string) error {
			ejected.Add(int64(len(keys)))
			return nil
		}),
	})
	if _, err := inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	m.Record("cheap", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM Car WHERE price < 15500"}})
	if _, err := inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	inv.Start(5*time.Millisecond, stop)
	db.ExecSQL("INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	deadline := time.After(2 * time.Second)
	for ejected.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("background loop did not invalidate")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(stop)
}

func TestWireLogPullerViaHarness(t *testing.T) {
	// Covered end-to-end in the root package; here check the adapter shape
	// via the engine puller equivalence on empty input.
	db := engine.NewDatabase()
	recs, trunc, next, err := EngineLogPuller{Log: db.Log()}.PullSince(1)
	if err != nil || trunc || len(recs) != 0 || next != 1 {
		t.Fatalf("empty pull: %v %v %d %d", err, trunc, len(recs), next)
	}
}

func TestTriggerBasedRegistryAccessor(t *testing.T) {
	tb := NewTriggerBased(sniffer.NewQIURLMap(), FuncEjector(func([]string) error { return nil }))
	if tb.Registry() == nil {
		t.Fatal("nil registry")
	}
}

func TestOwnerOfRefEdges(t *testing.T) {
	h := newHarness(t, carSchema)
	// Qualified ref naming a table that is not in the query → unknown →
	// conservative for any tuple.
	h.page("odd", "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Ghost.x = 1")
	h.cycle(t)
	// The query itself would fail at runtime, but the invalidator must not
	// crash: the page was recorded (instance observation succeeds at the
	// parse level) and any Car update invalidates conservatively.
	h.exec(t, "INSERT INTO Car VALUES ('A', 'B', 1)")
	rep := h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v (rep %+v)", h.ejected, rep)
	}
}

// TestCrossTypePollSharing: two different query types whose delta residues
// reduce to the same polling query share one DBMS round trip per cycle
// (§4.2.2: shared subqueries reduce the number and cost of polling
// queries; realized as poll-text deduplication within a cycle).
func TestCrossTypePollSharing(t *testing.T) {
	h := newHarness(t, carSchema)
	// Different select lists → different types; identical join residue.
	h.page("pa", "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price > 20000")
	h.page("pb", "SELECT Car.maker FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price > 20000")
	h.cycle(t)
	if len(h.inv.Registry().Types()) != 2 {
		t.Fatalf("types: %d", len(h.inv.Registry().Types()))
	}
	h.exec(t, "INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)")
	rep := h.cycle(t)
	if rep.Polls != 1 {
		t.Fatalf("polls: %d, want 1 shared", rep.Polls)
	}
}

// TestAutoIndexSelfTuning: with AutoIndex on, repeated existence polls for
// the same (table, column) cross the advice threshold and the invalidator
// starts maintaining the index itself; subsequent cycles stop polling.
func TestAutoIndexSelfTuning(t *testing.T) {
	h := newHarness(t, carSchema)
	h.inv.cfg.AdviceThreshold = 2
	h.inv.cfg.AutoIndex = true
	h.page("url1", paperQuery1)
	h.cycle(t)

	polls := 0
	for i := 0; i < 5; i++ {
		h.exec(t, "INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)")
		rep := h.cycle(t)
		polls += rep.Polls
		if i >= 3 && rep.Polls != 0 {
			t.Fatalf("cycle %d still polled after auto-index: %+v", i, rep)
		}
		if i >= 3 && rep.IndexHits == 0 {
			t.Fatalf("cycle %d: no index hit: %+v", i, rep)
		}
	}
	if h.inv.Indexes().Size("mileage", "model") < 0 {
		t.Fatal("index not auto-maintained")
	}
	if polls == 0 {
		t.Fatal("expected some polls before the index materialized")
	}
}

// TestLogLossFlushesCache: pages cached while the request log overflowed
// can never be mapped, so a truncation observation must flush the caches.
func TestLogLossFlushesCache(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	rlog := appserver.NewRequestLog(2) // tiny: overflows immediately
	qlog := driver.NewQueryLog(0)
	m := sniffer.NewQIURLMap()
	mp := sniffer.NewMapper(rlog, qlog, m)
	cache := webcache.NewCache(0)
	cache.Put(&webcache.Entry{Key: "orphan"}) // cached during the gap
	inv := New(Config{
		Map:     m,
		Mapper:  mp,
		Puller:  EngineLogPuller{Log: db.Log()},
		Ejector: CacheEjector{Cache: cache},
	})
	if _, err := inv.Cycle(); err != nil { // consumes nothing; no truncation yet
		t.Fatal(err)
	}
	// Five entries through a capacity-2 log: the mapper will observe loss.
	now := time.Now()
	for i := 0; i < 5; i++ {
		rlog.Append(appserver.RequestLogEntry{
			Servlet: "s", CacheKey: "k", Cached: true, Receive: now, Deliver: now,
		})
	}
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("report: %+v", rep)
	}
	if cache.Len() != 0 {
		t.Fatal("cache not flushed after log loss")
	}
}
