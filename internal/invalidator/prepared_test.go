package invalidator

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sniffer"
)

// newPollSite builds a database with the parallel test schema and an
// invalidator polling it through a direct (prepared-capable) connection,
// with the schema-setup log records already consumed.
func newPollSite(t *testing.T) (*engine.Database, *Invalidator, *sniffer.QIURLMap) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(parallelSchema); err != nil {
		t.Fatal(err)
	}
	c, err := driver.DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	inv := New(Config{
		Map:     m,
		Puller:  EngineLogPuller{Log: db.Log()},
		Poller:  c,
		Ejector: FuncEjector(func([]string) error { return nil }),
		Workers: 4,
	})
	if _, err := inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	return db, inv, m
}

// textOnlyPoller forwards Query but hides any StmtPoller implementation of
// the wrapped poller, forcing the invalidator onto the rendered-text path.
type textOnlyPoller struct{ p Poller }

func (t textOnlyPoller) Query(sql string) (*engine.Result, error) { return t.p.Query(sql) }

// TestPreparedTextCycleEquivalence is the correctness property of the
// prepared poll path: for random update workloads and worker counts 1/4/8,
// a cycle polling through compiled plans (StmtPoller) invalidates exactly
// the page set a text-rendering cycle does, with identical decision
// counters — the prepared path changes how polls execute, never what they
// decide.
func TestPreparedTextCycleEquivalence(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		script := randomUpdateScript(seed, 1+int(size%24))
		for _, workers := range []int{1, 4, 8} {
			conns := 1
			if workers > 1 {
				conns = 3
			}
			text, textRep := runWorkloadWith(t, workers, conns, script, true)
			prep, prepRep := runWorkloadWith(t, workers, conns, script, false)
			if !reflect.DeepEqual(text, prep) {
				t.Logf("seed=%d workers=%d script=%q\ntext:     %+v\nprepared: %+v",
					seed, workers, script, text, prep)
				return false
			}
			if textRep.PollsPrepared != 0 {
				t.Logf("text-only poller reported %d prepared polls", textRep.PollsPrepared)
				return false
			}
			if prepRep.PollsPrepared != prepRep.Polls {
				t.Logf("prepared-capable poller issued %d/%d polls via the fast path",
					prepRep.PollsPrepared, prepRep.Polls)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Rand:     rand.New(rand.NewSource(2)), // fixed seed: deterministic corpus
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPreparedPollNoReparse asserts the acceptance criterion directly: after
// the first cycle compiles each (type × table) poll plan, later cycles over
// the same workload shape execute polls with zero statement-cache template
// misses — previously seen templates are never re-parsed or re-canonicalized.
func TestPreparedPollNoReparse(t *testing.T) {
	db, inv, m := newPollSite(t)
	parallelPages(m)
	script := randomUpdateScript(11, 12)
	for _, sql := range script {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Polls == 0 {
		t.Fatalf("workload should poll: %+v", rep)
	}
	if rep.PollsPrepared != rep.Polls {
		t.Fatalf("prepared %d of %d polls", rep.PollsPrepared, rep.Polls)
	}
	missesAfterFirst := db.StmtCacheStats().TemplateMisses

	// Same update shapes again: every poll plan's template is already
	// interned, so the engine must answer from the cache alone.
	for _, sql := range script {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Polls == 0 {
		t.Fatalf("second cycle should poll: %+v", rep)
	}
	if got := db.StmtCacheStats().TemplateMisses; got != missesAfterFirst {
		t.Fatalf("second cycle re-compiled templates: misses %d -> %d", missesAfterFirst, got)
	}
}
