package invalidator

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/sniffer"
)

func newTriggerHarness(t *testing.T) (*TriggerBased, *engine.Database, *sniffer.QIURLMap, *[]string) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	var ejected []string
	tb := NewTriggerBased(m, FuncEjector(func(keys []string) error {
		ejected = append(ejected, keys...)
		return nil
	}))
	tb.Attach(db)
	t.Cleanup(tb.Detach)
	return tb, db, m, &ejected
}

func TestTriggerBasedLocalPredicate(t *testing.T) {
	tb, db, m, ejected := newTriggerHarness(t)
	m.Record("cheap", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM Car WHERE price < 15500"}})
	tb.IngestMap()

	// Non-matching insert: exact no-impact, decided in the trigger.
	db.ExecSQL("INSERT INTO Car VALUES ('Ferrari', 'F40', 900000)")
	if len(*ejected) != 0 {
		t.Fatalf("ejected: %v", *ejected)
	}
	// Matching insert: fires synchronously — no cycle call needed.
	db.ExecSQL("INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	if len(*ejected) != 1 || (*ejected)[0] != "cheap" {
		t.Fatalf("ejected: %v", *ejected)
	}
	updates, invalidated, conservative := tb.Stats()
	if updates != 2 || invalidated != 1 || conservative != 0 {
		t.Fatalf("stats: %d %d %d", updates, invalidated, conservative)
	}
}

func TestTriggerBasedJoinIsConservative(t *testing.T) {
	tb, db, m, ejected := newTriggerHarness(t)
	m.Record("url1", "s", 1, []sniffer.QueryInstance{{SQL: paperQuery1}})
	tb.IngestMap()

	// Local predicate fails → exact no-impact even for the join query.
	db.ExecSQL("INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 20000)")
	if len(*ejected) != 0 {
		t.Fatalf("ejected: %v", *ejected)
	}
	// Local predicate passes but the join residue cannot be checked inside
	// the trigger: conservative invalidation — even though the external
	// invalidator would have polled and kept the page (no 'Viper' mileage).
	db.ExecSQL("INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)")
	if len(*ejected) != 1 {
		t.Fatalf("ejected: %v", *ejected)
	}
	_, _, conservative := tb.Stats()
	if conservative == 0 {
		t.Fatal("join residue should be conservative")
	}
}

func TestTriggerBasedDetach(t *testing.T) {
	tb, db, m, ejected := newTriggerHarness(t)
	m.Record("cheap", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM Car WHERE price < 15500"}})
	tb.IngestMap()
	tb.Detach()
	db.ExecSQL("INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	if len(*ejected) != 0 {
		t.Fatalf("detached trigger fired: %v", *ejected)
	}
}

// TestTriggerVsLogBasedPrecision runs the same workload through both
// approaches: the trigger baseline must invalidate a superset (never
// stale), and strictly more pages on join workloads (the precision loss
// the paper predicts).
func TestTriggerVsLogBasedPrecision(t *testing.T) {
	// Trigger-based side.
	tbDB := engine.NewDatabase()
	if _, err := tbDB.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	tbMap := sniffer.NewQIURLMap()
	var tbEjected []string
	tb := NewTriggerBased(tbMap, FuncEjector(func(keys []string) error {
		tbEjected = append(tbEjected, keys...)
		return nil
	}))
	tb.Attach(tbDB)
	defer tb.Detach()

	// Log-based side.
	h := newHarness(t, carSchema)

	page := "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price > 20000"
	tbMap.Record("url1", "s", 1, []sniffer.QueryInstance{{SQL: page}})
	tb.IngestMap()
	h.page("url1", page)
	h.cycle(t)

	// Insert with no mileage counterpart: external invalidator polls and
	// keeps the page; trigger baseline cannot poll and drops it.
	stmt := "INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)"
	tbDB.ExecSQL(stmt)
	h.exec(t, stmt)
	h.cycle(t)

	if len(h.ejected) != 0 {
		t.Fatalf("log-based should keep the page: %v", h.ejected)
	}
	if len(tbEjected) != 1 {
		t.Fatalf("trigger-based should conservatively drop it: %v", tbEjected)
	}
}
