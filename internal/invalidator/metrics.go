package invalidator

import (
	"repro/internal/obs"
)

// invMetrics are the invalidator's pre-resolved metric handles: one
// registry lookup each at construction, plain atomic operations afterwards,
// so instrumentation stays off the cycle's hot path.
type invMetrics struct {
	cycles          *obs.Counter
	cycleSeconds    *obs.Histogram
	mapperPages     *obs.Counter
	pagesIngested   *obs.Counter
	updateRecords   *obs.Counter
	deltaTuples     *obs.Counter
	analyzeSeconds  *obs.Histogram
	polls           *obs.Counter
	pollsPrepared   *obs.Counter
	pollsDeduped    *obs.Counter
	pollsDenied     *obs.Counter
	pollSeconds     *obs.Histogram
	indexHits       *obs.Counter
	localDecisions  *obs.Counter
	invalidated     *obs.Counter
	conservative    *obs.Counter
	truncations     *obs.Counter
	ejectErrors     *obs.Counter
	cycleErrors     *obs.Counter
	breakerTrips    *obs.Counter
	retryDepth      *obs.Gauge
	ejectFailStreak *obs.Gauge
	ejectSeconds    *obs.Histogram
	staleness       *obs.Histogram
	eventCycles     *obs.Counter
	burstWakes      *obs.Histogram

	// Eject-granularity split: with fragment-level caching the keys flowing
	// through the eject path are a mix of whole pages and fragment/template
	// keys. fragmentEjects counts ejected keys naming a fragment or an
	// assembly template, pageEjects the rest — together they show how much
	// of the invalidation traffic the fragment refactor moved below page
	// granularity.
	fragmentEjects *obs.Counter
	pageEjects     *obs.Counter

	// Predicate-index counters (PR 6). predProbes counts index probes,
	// predBucketHits/predIntervalHits the certain candidates they returned
	// (hash vs. sorted-run path), predResiduals the entries handed back
	// for exact evaluation, predScanFallbacks the occurrence evaluations
	// that had no indexable shape, predRebuilds the per-plan builds.
	predProbes        *obs.Counter
	predBucketHits    *obs.Counter
	predIntervalHits  *obs.Counter
	predResiduals     *obs.Counter
	predScanFallbacks *obs.Counter
	predRebuilds      *obs.Counter
}

func newInvMetrics(reg *obs.Registry) invMetrics {
	return invMetrics{
		cycles:          reg.Counter("invalidator.cycles_total"),
		cycleSeconds:    reg.Histogram("invalidator.cycle_seconds"),
		mapperPages:     reg.Counter("invalidator.mapper_pages_total"),
		pagesIngested:   reg.Counter("invalidator.map_ingested_total"),
		updateRecords:   reg.Counter("invalidator.update_records_total"),
		deltaTuples:     reg.Counter("invalidator.delta_tuples_total"),
		analyzeSeconds:  reg.Histogram("invalidator.analyze_seconds"),
		polls:           reg.Counter("invalidator.polls_total"),
		pollsPrepared:   reg.Counter("invalidator.polls_prepared_total"),
		pollsDeduped:    reg.Counter("invalidator.polls_deduped_total"),
		pollsDenied:     reg.Counter("invalidator.polls_budget_denied_total"),
		pollSeconds:     reg.Histogram("invalidator.poll_seconds"),
		indexHits:       reg.Counter("invalidator.index_hits_total"),
		localDecisions:  reg.Counter("invalidator.local_decisions_total"),
		invalidated:     reg.Counter("invalidator.pages_invalidated_total"),
		conservative:    reg.Counter("invalidator.conservative_total"),
		truncations:     reg.Counter("invalidator.truncations_total"),
		ejectErrors:     reg.Counter("invalidator.eject_errors_total"),
		cycleErrors:     reg.Counter("invalidator.cycle_errors_total"),
		breakerTrips:    reg.Counter("invalidator.breaker_trips_total"),
		retryDepth:      reg.Gauge("invalidator.retry_list_depth"),
		ejectFailStreak: reg.Gauge("invalidator.eject_fail_streak"),
		ejectSeconds:    reg.Histogram("invalidator.eject_seconds"),
		staleness:       reg.Histogram("invalidator.staleness_seconds"),
		eventCycles:     reg.Counter("invalidator.event_cycles_total"),
		burstWakes:      reg.Histogram("invalidator.event_burst_wakes"),
		fragmentEjects:  reg.Counter("invalidator.fragment_ejects_total"),
		pageEjects:      reg.Counter("invalidator.page_ejects_total"),

		predProbes:        reg.Counter("invalidator.predindex.probes_total"),
		predBucketHits:    reg.Counter("invalidator.predindex.bucket_hits_total"),
		predIntervalHits:  reg.Counter("invalidator.predindex.interval_hits_total"),
		predResiduals:     reg.Counter("invalidator.predindex.residual_evals_total"),
		predScanFallbacks: reg.Counter("invalidator.predindex.scan_fallbacks_total"),
		predRebuilds:      reg.Counter("invalidator.predindex.rebuilds_total"),
	}
}

// stalenessFor returns the per-servlet commit-to-eject histogram, cached in
// a plain map: the eject step runs on the single cycle goroutine, so no
// lock is needed around the cache itself.
func (inv *Invalidator) stalenessFor(servlet string) *obs.Histogram {
	if servlet == "" {
		return inv.met.staleness
	}
	h, ok := inv.stalenessHists[servlet]
	if !ok {
		h = inv.obs.Histogram("invalidator.staleness_seconds." + servlet)
		inv.stalenessHists[servlet] = h
	}
	return h
}
