package invalidator

import (
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sniffer"
)

// harness bundles a database, a QI/URL map, a recording ejector and an
// invalidator wired in-process.
type harness struct {
	db       *engine.Database
	m        *sniffer.QIURLMap
	inv      *Invalidator
	ejected  []string
	ejectErr error
}

func newHarness(t testing.TB, schema string) *harness {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(schema); err != nil {
		t.Fatal(err)
	}
	h := &harness{db: db, m: sniffer.NewQIURLMap()}
	pollConn, err := driver.DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	h.inv = New(Config{
		Map:    h.m,
		Puller: EngineLogPuller{Log: db.Log()},
		Poller: pollConn,
		Ejector: FuncEjector(func(keys []string) error {
			if h.ejectErr != nil {
				return h.ejectErr
			}
			h.ejected = append(h.ejected, keys...)
			return nil
		}),
	})
	// Swallow the schema-setup log records.
	if _, err := h.inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	h.ejected = nil
	return h
}

// page registers a cached page whose content came from the given queries.
func (h *harness) page(key string, queries ...string) {
	var qis []sniffer.QueryInstance
	for i, q := range queries {
		qis = append(qis, sniffer.QueryInstance{SQL: q, LogID: int64(i + 1)})
	}
	h.m.Record(key, "servlet", 1, qis)
}

func (h *harness) cycle(t testing.TB) Report {
	t.Helper()
	rep, err := h.inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func (h *harness) exec(t testing.TB, sql string) {
	t.Helper()
	if _, err := h.db.ExecSQL(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

func (h *harness) ejectedSorted() []string {
	out := append([]string(nil), h.ejected...)
	sort.Strings(out)
	return out
}

const carSchema = `
	CREATE TABLE Car (maker TEXT, model TEXT, price FLOAT);
	CREATE TABLE Mileage (model TEXT, EPA INT);
	INSERT INTO Car VALUES ('Toyota', 'Corolla', 15000), ('Honda', 'Civic', 16000);
	INSERT INTO Mileage VALUES ('Corolla', 33), ('Civic', 31), ('Avalon', 26);
`

// paperQuery1 is Example 4.1's join query (the paper's narrative: an
// inserted car at 20,000 fails the price condition outright; one at 25,000
// needs a polling query against Mileage).
const paperQuery1 = "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price > 20000"

func TestExample41NoImpact(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", paperQuery1)
	h.cycle(t) // ingest mapping

	// Fails Car.price > 20000 locally: decided without polling.
	h.exec(t, "INSERT INTO Car VALUES ('Mitsubishi', 'Eclipse', 20000)")
	rep := h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
	if rep.Polls != 0 {
		t.Fatalf("polls: %d", rep.Polls)
	}
	if rep.UpdateRecords != 1 {
		t.Fatalf("records: %d", rep.UpdateRecords)
	}
}

func TestExample41PollAndInvalidate(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", paperQuery1)
	h.cycle(t)

	// Passes the local condition; Mileage has an 'Avalon' row, so the
	// polling query is non-empty and url1 falls.
	h.exec(t, "INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
	rep := h.cycle(t)
	if len(h.ejected) != 1 || h.ejected[0] != "url1" {
		t.Fatalf("ejected: %v", h.ejected)
	}
	if rep.Polls != 1 {
		t.Fatalf("polls: %d", rep.Polls)
	}
}

func TestExample41PollEmptyNoInvalidate(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", paperQuery1)
	h.cycle(t)

	// Passes the local condition but no Mileage row for 'Viper'.
	h.exec(t, "INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)")
	rep := h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
	if rep.Polls != 1 {
		t.Fatalf("polls: %d", rep.Polls)
	}
}

func TestSingleTableLocalDecision(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.page("expensive", "SELECT * FROM Car WHERE price > 50000")
	h.cycle(t)

	h.exec(t, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	rep := h.cycle(t)
	if got := h.ejectedSorted(); len(got) != 1 || got[0] != "cheap" {
		t.Fatalf("ejected: %v", got)
	}
	if rep.Polls != 0 {
		t.Fatalf("single-table analysis must not poll: %d", rep.Polls)
	}
}

func TestDeleteInvalidates(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	h.exec(t, "DELETE FROM Car WHERE model = 'Corolla'") // was in the result
	h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestDeleteOfNonMatchingRowNoInvalidate(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	h.exec(t, "DELETE FROM Car WHERE model = 'Civic'") // 16000: not in result
	h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestUpdateInvalidatesWhenEitherImageMatches(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	// Old image matched (15000); new doesn't (99000): page is stale.
	h.exec(t, "UPDATE Car SET price = 99000 WHERE model = 'Corolla'")
	h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestUpdateOfIrrelevantRowsNoInvalidate(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	// 16000 → 17000: neither image matches price < 15500.
	h.exec(t, "UPDATE Car SET price = 17000 WHERE model = 'Civic'")
	h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestGroupProcessingSharesPolls(t *testing.T) {
	h := newHarness(t, carSchema)
	// Three instances of one type (different price bounds), all join-based.
	q := "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < "
	h.page("p1", q+"16000")
	h.page("p2", q+"20000")
	h.page("p3", q+"12000")
	h.cycle(t)

	// Corolla-priced insert with an existing Mileage row.
	h.exec(t, "INSERT INTO Car VALUES ('Toyota', 'Corolla', 15500)")
	rep := h.cycle(t)
	// One combined polling query serves all three instances.
	if rep.Polls != 1 {
		t.Fatalf("polls: %d", rep.Polls)
	}
	// Only the instances whose bound matches 15500 are invalidated.
	if got := h.ejectedSorted(); len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("ejected: %v", got)
	}
}

func TestSharedPageMultipleQueries(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("home", "SELECT * FROM Car WHERE price < 15500", "SELECT * FROM Mileage WHERE EPA > 40")
	h.cycle(t)
	// Second query's table changes in a matching way.
	h.exec(t, "INSERT INTO Mileage VALUES ('Prius', 55)")
	h.cycle(t)
	if len(h.ejected) != 1 || h.ejected[0] != "home" {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestUnparseableQueryGoesConservative(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("weird", "SELECT /*+ ORACLE HINT SYNTAX */ FROM!!")
	h.cycle(t)
	// Any update at all fells the page.
	h.exec(t, "INSERT INTO Mileage VALUES ('Z', 1)")
	rep := h.cycle(t)
	if len(h.ejected) != 1 || h.ejected[0] != "weird" {
		t.Fatalf("ejected: %v", h.ejected)
	}
	if rep.Conservative == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestDMLQueriesIgnored(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("writer", "INSERT INTO Car VALUES ('X', 'Y', 1)", "SELECT * FROM Mileage WHERE EPA > 100")
	h.cycle(t)
	h.exec(t, "INSERT INTO Car VALUES ('A', 'B', 2)") // Car: only the INSERT referenced it
	h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestLeftJoinConservative(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("lj", "SELECT Car.model FROM Car LEFT JOIN Mileage ON Car.model = Mileage.model WHERE Car.price < 100000")
	h.cycle(t)
	// Deleting a Mileage row only affects null-extension; conservative
	// analysis must still invalidate.
	h.exec(t, "DELETE FROM Mileage WHERE model = 'Civic'")
	rep := h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
	if rep.Conservative == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestSimultaneousJoinPairDeletion(t *testing.T) {
	// Both sides of the only matching join pair deleted in one batch:
	// post-state polling sees neither; the hazard path must invalidate.
	h := newHarness(t, carSchema)
	h.page("url1", "SELECT Car.model FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 15500")
	h.cycle(t)
	h.exec(t, "DELETE FROM Car WHERE model = 'Corolla'")
	h.exec(t, "DELETE FROM Mileage WHERE model = 'Corolla'")
	h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestLogTruncationInvalidatesEverything(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	var ejected []string
	small := engine.NewUpdateLog(2)
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: small},
		Ejector: FuncEjector(func(keys []string) error {
			ejected = append(ejected, keys...)
			return nil
		}),
	})
	m.Record("pg", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM t"}})
	if _, err := inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		small.Append(engine.UpdateRecord{Table: "unrelated", Op: engine.OpInsert})
	}
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || len(ejected) != 1 || ejected[0] != "pg" {
		t.Fatalf("rep=%+v ejected=%v", rep, ejected)
	}
}

func TestNoPollerGoesConservative(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	var ejected []string
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Ejector: FuncEjector(func(keys []string) error {
			ejected = append(ejected, keys...)
			return nil
		}),
	})
	inv.Cycle()
	m.Record("url1", "s", 1, []sniffer.QueryInstance{{SQL: paperQuery1}})
	inv.Cycle()
	db.ExecSQL("INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)") // would poll-miss
	rep, _ := inv.Cycle()
	if len(ejected) != 1 {
		t.Fatalf("ejected: %v", ejected)
	}
	if rep.Conservative == 0 {
		t.Fatalf("rep: %+v", rep)
	}
}

func TestPollBudgetExhaustionConservative(t *testing.T) {
	h := newHarness(t, carSchema)
	h.inv.cfg.PollBudget = time.Nanosecond // exhausted immediately
	h.page("url1", paperQuery1)
	h.cycle(t)
	time.Sleep(time.Millisecond)
	h.exec(t, "INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)") // poll would say no
	rep := h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("budget exhaustion must invalidate conservatively: %v", h.ejected)
	}
	if rep.Conservative == 0 {
		t.Fatalf("rep: %+v", rep)
	}
}

func TestEjectFailureRetries(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	h.ejectErr = errors.New("cache unreachable")
	h.exec(t, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	rep := h.cycle(t)
	if rep.EjectErr == nil || rep.Invalidated != 0 {
		t.Fatalf("rep: %+v", rep)
	}
	// Next cycle (no new updates) retries and succeeds.
	h.ejectErr = nil
	rep = h.cycle(t)
	if rep.Invalidated != 1 || len(h.ejected) != 1 {
		t.Fatalf("rep=%+v ejected=%v", rep, h.ejected)
	}
}

func TestPageRegenerationRelinks(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("pg", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	// Page regenerated with a different query (different table).
	h.page("pg", "SELECT * FROM Mileage WHERE EPA > 30")
	h.cycle(t)
	// Car changes no longer matter...
	h.exec(t, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("stale link survived: %v", h.ejected)
	}
	// ...Mileage changes do.
	h.exec(t, "INSERT INTO Mileage VALUES ('Rio', 35)")
	h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestInvalidatedPageUnlinked(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("cheap", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	h.exec(t, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
	h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
	h.ejected = nil
	// Another matching insert: the page is gone from the cache, no second
	// invalidation.
	h.exec(t, "INSERT INTO Car VALUES ('Kia', 'Rio2', 11000)")
	h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected again: %v", h.ejected)
	}
}

func TestOfflineTypeRegistration(t *testing.T) {
	h := newHarness(t, carSchema)
	qt, err := h.inv.Registry().RegisterType("cheap-cars", "SELECT * FROM Car WHERE price < $1")
	if err != nil {
		t.Fatal(err)
	}
	if qt.Discovered || qt.Name != "cheap-cars" {
		t.Fatalf("type: %+v", qt)
	}
	// An observed instance of the same shape reuses the registered type.
	h.page("pg", "SELECT * FROM Car WHERE price < 15500")
	h.cycle(t)
	types := h.inv.Registry().Types()
	if len(types) != 1 || types[0] != qt {
		t.Fatalf("types: %v", types)
	}
	if _, err := h.inv.Registry().RegisterType("bad", "INSERT INTO Car VALUES (1)"); err == nil {
		t.Fatal("non-SELECT type must fail")
	}
	if _, err := h.inv.Registry().RegisterType("bad", "NOT SQL"); err == nil {
		t.Fatal("bad SQL must fail")
	}
}

func TestMaintainedIndexAnswersExistencePolls(t *testing.T) {
	h := newHarness(t, carSchema)
	pollConn, _ := driver.DirectDriver{DB: h.db}.Connect("")
	if err := h.inv.Indexes().Maintain(pollConn, "Mileage", "model"); err != nil {
		t.Fatal(err)
	}
	h.page("url1", paperQuery1)
	h.cycle(t)
	h.exec(t, "INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
	rep := h.cycle(t)
	if rep.Polls != 0 || rep.IndexHits != 1 {
		t.Fatalf("rep: %+v", rep)
	}
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestMaintainedIndexTracksDeltas(t *testing.T) {
	h := newHarness(t, carSchema)
	pollConn, _ := driver.DirectDriver{DB: h.db}.Connect("")
	if err := h.inv.Indexes().Maintain(pollConn, "Mileage", "model"); err != nil {
		t.Fatal(err)
	}
	h.page("url1", paperQuery1)
	h.cycle(t)
	// Remove Avalon's mileage row; the index must learn this via deltas.
	h.exec(t, "DELETE FROM Mileage WHERE model = 'Avalon'")
	h.cycle(t)
	h.ejected = nil
	// Now an Avalon insert should find no counterpart — no invalidation.
	h.exec(t, "INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
	rep := h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
	if rep.IndexHits != 1 {
		t.Fatalf("rep: %+v", rep)
	}
}

func TestAdviceAfterRepeatedPolls(t *testing.T) {
	h := newHarness(t, carSchema)
	h.inv.cfg.AdviceThreshold = 3
	h.page("url1", paperQuery1)
	h.cycle(t)
	for i := 0; i < 4; i++ {
		h.exec(t, "INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)")
		h.cycle(t)
	}
	adv := h.inv.Advise()
	if len(adv) != 1 || adv[0].Table != "mileage" || adv[0].Column != "model" {
		t.Fatalf("advice: %+v", adv)
	}
}

func TestSelfJoinAnalysis(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("pairs", "SELECT a.model, b.model FROM Car a, Car b WHERE a.maker = b.maker AND a.model <> b.model AND a.price < 15500")
	h.cycle(t)
	// New Toyota under 15500 pairs with the existing Corolla via occurrence
	// a (and with b's side as well).
	h.exec(t, "INSERT INTO Car VALUES ('Toyota', 'Yaris', 14000)")
	h.cycle(t)
	if len(h.ejected) != 1 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestSelfJoinNoMatchNoInvalidate(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("pairs", "SELECT a.model, b.model FROM Car a, Car b WHERE a.maker = b.maker AND a.model <> b.model AND a.price < 15500 AND b.price < 15500")
	h.cycle(t)
	// A lone Ferrari pairs with nothing.
	h.exec(t, "INSERT INTO Car VALUES ('Ferrari', 'F40', 900000)")
	h.cycle(t)
	if len(h.ejected) != 0 {
		t.Fatalf("ejected: %v", h.ejected)
	}
}

func TestStatsAccumulate(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", paperQuery1)
	h.cycle(t)
	h.exec(t, "INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
	h.cycle(t)
	types := h.inv.Registry().Types()
	if len(types) != 1 {
		t.Fatalf("types: %v", types)
	}
	st := h.inv.Registry().StatsOf(types[0])
	if st.UpdateBatches != 1 || st.Impacts != 1 || st.Polls != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.InvalidationRatioEWMA <= 0 {
		t.Fatalf("ratio: %f", st.InvalidationRatioEWMA)
	}
}

func TestPolicyRuleNeverCache(t *testing.T) {
	h := newHarness(t, carSchema)
	h.inv.Policies().AddRule(Rule{Table: "car", Action: ActionNeverCache})
	h.page("url1", paperQuery1)
	h.cycle(t)
	types := h.inv.Registry().Types()
	if len(types) != 1 || !types[0].NoCache.Load() {
		t.Fatalf("types: %+v", types)
	}
	if h.inv.CacheableServlet("servlet") {
		t.Fatal("servlet using a no-cache type must be non-cacheable")
	}
	if !h.inv.CacheableServlet("other") {
		t.Fatal("unrelated servlet must stay cacheable")
	}
}

func TestPolicyServletRule(t *testing.T) {
	p := NewPolicies(DefaultThresholds())
	p.AddRule(Rule{Servlet: "private", Action: ActionNeverCache})
	if p.CacheableServlet("private") {
		t.Fatal("rule ignored")
	}
	if !p.CacheableServlet("public") {
		t.Fatal("wrong servlet matched")
	}
	p.AddRule(Rule{Servlet: "private", Action: ActionAlwaysCache})
	if !p.CacheableServlet("private") {
		t.Fatal("later rule must win")
	}
}

func TestPolicyDiscoveryByInvalidationRatio(t *testing.T) {
	h := newHarness(t, carSchema)
	// EWMA (α=1/8) reaches 1-(7/8)^4 ≈ 0.41 after four all-invalidating
	// batches; the 0.3 threshold must then trip.
	h.inv.policies = NewPolicies(DiscoveryThresholds{
		MaxInvalidationRatio:    0.3,
		MinBatchesBeforeJudging: 2,
	})
	for i := 0; i < 4; i++ {
		h.page("cheap", "SELECT * FROM Car WHERE price < 90000")
		h.cycle(t)
		// Every update invalidates the only instance: ratio 1.0.
		h.exec(t, "INSERT INTO Car VALUES ('Kia', 'Rio', 12000)")
		h.cycle(t)
	}
	types := h.inv.Registry().Types()
	if len(types) != 1 || !types[0].NoCache.Load() {
		t.Fatalf("type should be marked no-cache: %+v", types[0])
	}
}

func TestScheduleTypesPriority(t *testing.T) {
	h := newHarness(t, carSchema)
	// Type A protects 3 pages, type B one page.
	h.page("a1", "SELECT * FROM Car WHERE price < 100")
	h.page("a2", "SELECT * FROM Car WHERE price < 200")
	h.page("a3", "SELECT * FROM Car WHERE price < 300")
	h.page("b1", "SELECT * FROM Car WHERE maker = 'X'")
	h.cycle(t)
	types := h.inv.Registry().TypesForTable("Car")
	if len(types) != 2 {
		t.Fatalf("types: %d", len(types))
	}
	ordered := h.inv.scheduleTypes(types)
	st0 := h.inv.Registry().StatsOf(ordered[0])
	st1 := h.inv.Registry().StatsOf(ordered[1])
	if st0.LiveInstances < st1.LiveInstances {
		t.Fatalf("priority order wrong: %d before %d", st0.LiveInstances, st1.LiveInstances)
	}
	// Degenerate inputs pass through.
	if got := h.inv.scheduleTypes(types[:1]); len(got) != 1 {
		t.Fatalf("single: %v", got)
	}
	if got := h.inv.scheduleTypes(nil); got != nil {
		t.Fatalf("nil: %v", got)
	}
}

func TestScalarFunctionPredicateAnalysis(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("toyotas", "SELECT model FROM Car WHERE UPPER(maker) = 'TOYOTA'")
	h.cycle(t)
	// Local predicate with a scalar function: evaluated in the invalidator.
	h.exec(t, "INSERT INTO Car VALUES ('honda', 'Fit', 14000)")
	rep := h.cycle(t)
	if len(h.ejected) != 0 || rep.Polls != 0 {
		t.Fatalf("ejected=%v polls=%d", h.ejected, rep.Polls)
	}
	h.exec(t, "INSERT INTO Car VALUES ('toyota', 'Yaris', 14000)")
	rep = h.cycle(t)
	if len(h.ejected) != 1 || rep.Polls != 0 {
		t.Fatalf("ejected=%v polls=%d", h.ejected, rep.Polls)
	}
}
