package invalidator

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// recordingCache is a fake cache endpoint that records which keys it was
// told to eject (batch ejects carry newline-joined keys in the body).
type recordingCache struct {
	mu   sync.Mutex
	keys []string
}

func (rc *recordingCache) server(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		rc.mu.Lock()
		for _, k := range strings.Split(strings.TrimSpace(string(body)), "\n") {
			if k != "" {
				rc.keys = append(rc.keys, k)
			}
		}
		rc.mu.Unlock()
		w.WriteHeader(http.StatusOK)
	}))
}

func (rc *recordingCache) sorted() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := append([]string(nil), rc.keys...)
	sort.Strings(out)
	return out
}

// mapRouter routes keys per a fixed table; unknown keys are unroutable.
type mapRouter map[string][]string

func (m mapRouter) URLsFor(key string) []string { return m[key] }

// TestHTTPEjectorRoutedFanout: with a Router each key reaches only its
// owners; keys the router cannot place widen to every cache.
func TestHTTPEjectorRoutedFanout(t *testing.T) {
	var rc1, rc2 recordingCache
	s1 := rc1.server(t)
	defer s1.Close()
	s2 := rc2.server(t)
	defer s2.Close()

	ej := HTTPEjector{
		CacheURLs: []string{s1.URL, s2.URL},
		Router: mapRouter{
			"owned-by-1": {s1.URL},
			"owned-by-2": {s2.URL},
			"replicated": {s1.URL, s2.URL},
		},
	}
	if err := ej.Eject([]string{"owned-by-1", "owned-by-2", "replicated", "unroutable"}); err != nil {
		t.Fatal(err)
	}
	if got, want := rc1.sorted(), []string{"owned-by-1", "replicated", "unroutable"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cache 1 ejected %v, want %v", got, want)
	}
	if got, want := rc2.sorted(), []string{"owned-by-2", "replicated", "unroutable"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("cache 2 ejected %v, want %v", got, want)
	}
}

// TestHTTPEjectorRouterSkipsUninvolvedCache: a cache owning none of the
// batch's keys receives no request at all.
func TestHTTPEjectorRouterSkipsUninvolvedCache(t *testing.T) {
	var rc1 recordingCache
	s1 := rc1.server(t)
	defer s1.Close()
	var calls int
	idle := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.WriteHeader(http.StatusOK)
	}))
	defer idle.Close()

	ej := HTTPEjector{
		CacheURLs: []string{s1.URL, idle.URL},
		Router:    mapRouter{"k1": {s1.URL}, "k2": {s1.URL}},
	}
	if err := ej.Eject([]string{"k1", "k2"}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("uninvolved cache saw %d requests", calls)
	}
	if got := rc1.sorted(); !reflect.DeepEqual(got, []string{"k1", "k2"}) {
		t.Fatalf("owner ejected %v", got)
	}
}

// TestHTTPEjectorRoutedPartialFailure: a failing owner yields a
// KeyedEjectError naming only the keys routed to it.
func TestHTTPEjectorRoutedPartialFailure(t *testing.T) {
	var rc1 recordingCache
	s1 := rc1.server(t)
	defer s1.Close()
	down := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	down.Close()

	ej := HTTPEjector{
		CacheURLs: []string{s1.URL, down.URL},
		Router:    mapRouter{"ok-key": {s1.URL}, "lost-key": {down.URL}},
	}
	err := ej.Eject([]string{"ok-key", "lost-key"})
	var ke KeyedEjectError
	if !errors.As(err, &ke) {
		t.Fatalf("want KeyedEjectError, got %v", err)
	}
	if got := ke.FailedKeys(); !reflect.DeepEqual(got, []string{"lost-key"}) {
		t.Fatalf("failed keys %v, want only the downed owner's", got)
	}
}
