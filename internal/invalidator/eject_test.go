package invalidator

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"

	"repro/internal/webcache"
)

// TestEjectPartialFailureRetriesOnlyFailed: when the ejector reports which
// keys failed (KeyedEjectError), the accepted keys are finished that cycle
// and only the failures are queued for retry.
func TestEjectPartialFailureRetriesOnlyFailed(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", "SELECT maker FROM Car WHERE price > 20000")
	h.page("url2", "SELECT model FROM Car WHERE price > 20000")
	h.page("url3", "SELECT price FROM Car WHERE price > 20000")
	h.ejectErr = &PartialEjectError{Keys: []string{"url2"}, Err: errors.New("cache 2 down")}
	h.exec(t, "INSERT INTO Car VALUES ('Lexus', 'LS', 60000)")
	rep := h.cycle(t)
	if rep.EjectErr == nil {
		t.Fatal("cycle should surface the eject error")
	}
	if rep.Invalidated != 2 {
		t.Fatalf("accepted keys should count as invalidated: %d", rep.Invalidated)
	}
	if got := h.inv.pending; !reflect.DeepEqual(got, []string{"url2"}) {
		t.Fatalf("pending should hold only the failed key: %v", got)
	}

	// Next cycle (no new updates) retries exactly the failed key.
	h.ejectErr = nil
	rep = h.cycle(t)
	if got := h.ejectedSorted(); !reflect.DeepEqual(got, []string{"url2"}) {
		t.Fatalf("retry ejected %v, want [url2]", got)
	}
	if rep.Invalidated != 1 || len(h.inv.pending) != 0 {
		t.Fatalf("retry should finish the key: invalidated=%d pending=%v", rep.Invalidated, h.inv.pending)
	}
}

// TestPendingRetryListBounded: repeated eject failures must not grow the
// retry list — keys are deduplicated across cycles.
func TestPendingRetryListBounded(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", "SELECT maker FROM Car WHERE price > 20000")
	h.ejectErr = errors.New("cache unreachable")
	h.exec(t, "INSERT INTO Car VALUES ('Lexus', 'LS', 60000)")
	h.cycle(t)
	if got := h.inv.pending; !reflect.DeepEqual(got, []string{"url1"}) {
		t.Fatalf("pending after first failure: %v", got)
	}
	// Two more failing cycles; the same key keeps failing but the list
	// must stay at one entry.
	for i := 0; i < 2; i++ {
		h.exec(t, fmt.Sprintf("INSERT INTO Car VALUES ('M%d', 'X', 70000)", i))
		h.cycle(t)
	}
	if got := h.inv.pending; !reflect.DeepEqual(got, []string{"url1"}) {
		t.Fatalf("pending grew across failing cycles: %v", got)
	}
}

// TestPendingDropsUnregisteredPages: a pending key whose page has since
// left the registry is dropped, not retried forever.
func TestPendingDropsUnregisteredPages(t *testing.T) {
	h := newHarness(t, carSchema)
	h.page("url1", "SELECT maker FROM Car WHERE price > 20000")
	h.page("url2", "SELECT model FROM Car WHERE price > 20000")
	h.ejectErr = errors.New("cache unreachable")
	h.exec(t, "INSERT INTO Car VALUES ('Lexus', 'LS', 60000)")
	h.cycle(t)
	if len(h.inv.pending) != 2 {
		t.Fatalf("both keys should be pending: %v", h.inv.pending)
	}
	// url1's page disappears (e.g. the application replaced it and the
	// new version was never re-registered).
	h.inv.Registry().UnlinkPage("url1")
	h.ejectErr = nil
	h.cycle(t)
	if got := h.ejectedSorted(); !reflect.DeepEqual(got, []string{"url2"}) {
		t.Fatalf("retry should skip the unregistered page: ejected %v", got)
	}
}

// TestHTTPEjectorBatchedFanout: keys are chunked into batch requests, every
// cache is notified, and a cache that fails some batches yields a
// KeyedEjectError naming exactly the keys of the failed batches.
func TestHTTPEjectorBatchedFanout(t *testing.T) {
	cache := webcache.NewCacheSharded(0, 4)
	var keys []string
	for i := 0; i < 250; i++ {
		k := fmt.Sprintf("page-%03d", i)
		cache.Put(&webcache.Entry{Key: k, Body: []byte("x")})
		keys = append(keys, k)
	}
	good := httptest.NewServer(webcache.NewProxy("", cache))
	defer good.Close()

	var badCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if badCalls.Add(1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer bad.Close()

	ej := HTTPEjector{CacheURLs: []string{good.URL, bad.URL}, MaxBatch: 100}
	err := ej.Eject(keys)

	// The good cache processed every batch: all 250 pages gone.
	if cache.Len() != 0 {
		t.Fatalf("good cache still holds %d pages", cache.Len())
	}
	// The bad cache failed its first batch (keys 0..99) only.
	var ke KeyedEjectError
	if !errors.As(err, &ke) {
		t.Fatalf("want KeyedEjectError, got %v", err)
	}
	failed := ke.FailedKeys()
	sort.Strings(failed)
	if !reflect.DeepEqual(failed, keys[:100]) {
		t.Fatalf("failed keys: got %d keys [%s..%s], want first batch of 100",
			len(failed), failed[0], failed[len(failed)-1])
	}
	if got := badCalls.Load(); got != 3 {
		t.Fatalf("bad cache saw %d batch requests, want 3", got)
	}
}

// TestHTTPEjectorAllCachesHealthy: no error, single round of batches.
func TestHTTPEjectorAllCachesHealthy(t *testing.T) {
	c1 := webcache.NewCache(0)
	c2 := webcache.NewCache(0)
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%d", i)
		c1.Put(&webcache.Entry{Key: k})
		c2.Put(&webcache.Entry{Key: k})
	}
	s1 := httptest.NewServer(webcache.NewProxy("", c1))
	defer s1.Close()
	s2 := httptest.NewServer(webcache.NewProxy("", c2))
	defer s2.Close()
	ej := HTTPEjector{CacheURLs: []string{s1.URL, s2.URL}}
	if err := ej.Eject([]string{"k0", "k3", "k9", "nope"}); err != nil {
		t.Fatal(err)
	}
	if c1.Len() != 7 || c2.Len() != 7 {
		t.Fatalf("lens: %d %d, want 7 7", c1.Len(), c2.Len())
	}
}

// TestMultiEjectorKeyUnion: when every failing sub-ejector names its failed
// keys, the joined error narrows the retry set to their union; one opaque
// failure widens it back to everything.
func TestMultiEjectorKeyUnion(t *testing.T) {
	failA := FuncEjector(func([]string) error {
		return &PartialEjectError{Keys: []string{"a"}, Err: errors.New("ea")}
	})
	failB := FuncEjector(func([]string) error {
		return &PartialEjectError{Keys: []string{"b"}, Err: errors.New("eb")}
	})
	ok := FuncEjector(func([]string) error { return nil })

	err := MultiEjector{failA, ok, failB}.Eject([]string{"a", "b", "c"})
	var ke KeyedEjectError
	if !errors.As(err, &ke) {
		t.Fatalf("want KeyedEjectError, got %v", err)
	}
	if got := ke.FailedKeys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("union: %v", got)
	}

	opaque := FuncEjector(func([]string) error { return errors.New("???") })
	err = MultiEjector{failA, opaque}.Eject([]string{"a", "b", "c"})
	if !errors.As(err, &ke) {
		t.Fatalf("want KeyedEjectError, got %v", err)
	}
	// The opaque failure widens the retry set to every key — crucially,
	// errors.As must not surface failA's narrower nested key list.
	if got := ke.FailedKeys(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("opaque failure must widen the retry set to all keys: %v", got)
	}
}
