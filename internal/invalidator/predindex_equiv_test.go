package invalidator

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sniffer"
)

// These tests pin the predicate index's core contract: for any registry and
// any update workload, a cycle that probes the index invalidates exactly the
// page set the registry scan does, with identical decision counters — at any
// worker count, across multiple cycles with page churn (ejects unlink pages,
// re-recording re-observes them) so the index is exercised live, not just at
// build time.

// equivSchema mixes integer, float and string columns so probes cover hash
// buckets and sorted runs in every value family.
const equivSchema = `
	CREATE TABLE U0 (a INT, b INT, s TEXT);
	CREATE TABLE U1 (a INT, b INT, s TEXT);
	CREATE TABLE U2 (a INT, b FLOAT, s TEXT);
	INSERT INTO U0 VALUES (1, 10, 'k00'), (2, 20, 'k01'), (3, 30, 'k02');
	INSERT INTO U1 VALUES (1, 15, 'k01'), (2, 25, 'k03'), (4, 45, 'k00');
	INSERT INTO U2 VALUES (2, 12.5, 'k02'), (3, 33.0, 'k04'), (5, 55.5, 'k01');
`

// equivPages records n randomly parameterized pages. Templates cover every
// index mode: equality on int and string (hash buckets), ranges in both
// directions (sorted runs), eq+range conjunct pairs (probe first, verify
// rest), and a join (external conjunct, polls). Keys are drawn from a pool
// ~2x the per-round count so later rounds re-record some ejected pages
// (dead→live re-add churn) and leave others dead.
func equivPages(rng *rand.Rand, m *sniffer.QIURLMap, logID *int64, n int) {
	tables := []string{"U0", "U1", "U2"}
	for i := 0; i < n; i++ {
		tbl := tables[rng.Intn(len(tables))]
		var sql string
		switch rng.Intn(7) {
		case 0:
			sql = fmt.Sprintf("SELECT a FROM %s WHERE a = %d", tbl, rng.Intn(8))
		case 1:
			sql = fmt.Sprintf("SELECT b FROM %s WHERE b > %d", tbl, rng.Intn(60))
		case 2:
			sql = fmt.Sprintf("SELECT a FROM %s WHERE b < %d", tbl, rng.Intn(60))
		case 3:
			sql = fmt.Sprintf("SELECT a FROM %s WHERE s = 'k%02d'", tbl, rng.Intn(6))
		case 4:
			sql = fmt.Sprintf("SELECT a FROM %s WHERE s >= 'k%02d'", tbl, rng.Intn(6))
		case 5:
			sql = fmt.Sprintf("SELECT a FROM %s WHERE a = %d AND b > %d",
				tbl, rng.Intn(8), rng.Intn(60))
		default:
			sql = fmt.Sprintf(
				"SELECT U0.a FROM U0, U1 WHERE U0.a = U1.a AND U0.b > %d", rng.Intn(60))
		}
		*logID++
		m.Record(fmt.Sprintf("page-%d", rng.Intn(2*n)), "servlet", 1,
			[]sniffer.QueryInstance{{SQL: sql, LogID: *logID}})
	}
}

// equivScript derives a deterministic DML sequence touching every column
// family the pages predicate over.
func equivScript(rng *rand.Rand, n int) []string {
	tables := []string{"U0", "U1", "U2"}
	script := make([]string, 0, n)
	for len(script) < n {
		tbl := tables[rng.Intn(len(tables))]
		a, b, s := rng.Intn(8), rng.Intn(60), rng.Intn(6)
		switch rng.Intn(4) {
		case 0:
			script = append(script, fmt.Sprintf(
				"INSERT INTO %s VALUES (%d, %d, 'k%02d')", tbl, a, b, s))
		case 1:
			script = append(script, fmt.Sprintf("DELETE FROM %s WHERE a = %d", tbl, a))
		case 2:
			script = append(script, fmt.Sprintf(
				"UPDATE %s SET b = %d WHERE a = %d", tbl, b, a))
		default:
			script = append(script, fmt.Sprintf(
				"UPDATE %s SET s = 'k%02d' WHERE b > %d", tbl, s, b))
		}
	}
	return script
}

// runEquivCycles runs nCycles rounds of (record pages, apply updates, cycle)
// against a fresh site and returns the per-cycle outcomes. All randomness is
// drawn from seed, so two calls with different workers/disable settings see
// byte-identical registries and workloads.
func runEquivCycles(t *testing.T, workers int, disable bool, seed int64, nPages, nCycles, nUpd int) []cycleOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := engine.NewDatabase()
	if _, err := db.ExecScript(equivSchema); err != nil {
		t.Fatal(err)
	}
	conn, err := driver.DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	var ejected []string
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Poller: conn,
		Ejector: FuncEjector(func(keys []string) error {
			ejected = append(ejected, keys...)
			return nil
		}),
		Workers:          workers,
		DisablePredIndex: disable,
	})
	if _, err := inv.Cycle(); err != nil { // swallow schema-setup records
		t.Fatal(err)
	}
	var logID int64
	outcomes := make([]cycleOutcome, 0, nCycles)
	for c := 0; c < nCycles; c++ {
		equivPages(rng, m, &logID, nPages)
		for _, sql := range equivScript(rng, nUpd) {
			if _, err := db.ExecSQL(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
		ejected = ejected[:0]
		rep, err := inv.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		keys := append([]string(nil), ejected...)
		sort.Strings(keys)
		outcomes = append(outcomes, cycleOutcome{
			Ejected:        keys,
			Invalidated:    rep.Invalidated,
			Conservative:   rep.Conservative,
			LocalDecisions: rep.LocalDecisions,
			Polls:          rep.Polls,
		})
	}
	return outcomes
}

// equivSizes returns (pages per round, cycles, updates per round, seeds).
// -short keeps a reduced configuration for CI smoke runs.
func equivSizes() (int, int, int, []int64) {
	if testing.Short() {
		return 24, 2, 8, []int64{1, 2}
	}
	return 60, 3, 14, []int64{1, 2, 3, 4, 5, 6}
}

// TestPredIndexCycleEquivalence is the headline property: indexed and scan
// cycles agree exactly, for random registries and workloads, at workers 1,
// 4 and 8, across cycles with live/dead/re-add page churn.
func TestPredIndexCycleEquivalence(t *testing.T) {
	nPages, nCycles, nUpd, seeds := equivSizes()
	busy := 0
	for _, seed := range seeds {
		scan := runEquivCycles(t, 1, true, seed, nPages, nCycles, nUpd)
		for _, out := range scan {
			busy += out.Invalidated
		}
		for _, workers := range []int{1, 4, 8} {
			indexed := runEquivCycles(t, workers, false, seed, nPages, nCycles, nUpd)
			if !reflect.DeepEqual(scan, indexed) {
				t.Fatalf("seed=%d workers=%d diverged:\nscan:    %+v\nindexed: %+v",
					seed, workers, scan, indexed)
			}
		}
	}
	if busy == 0 {
		t.Fatal("equivalence was vacuous: no workload invalidated anything")
	}
}

// TestPredIndexMetricsFlow sanity-checks the observability satellite: an
// indexed run reports probes and hits through TypeStats, a scan run reports
// none.
func TestPredIndexMetricsFlow(t *testing.T) {
	sum := func(disable bool) (probes, hits int64) {
		rng := rand.New(rand.NewSource(9))
		db := engine.NewDatabase()
		if _, err := db.ExecScript(equivSchema); err != nil {
			t.Fatal(err)
		}
		conn, err := driver.DirectDriver{DB: db}.Connect("")
		if err != nil {
			t.Fatal(err)
		}
		m := sniffer.NewQIURLMap()
		inv := New(Config{
			Map:              m,
			Puller:           EngineLogPuller{Log: db.Log()},
			Poller:           conn,
			Ejector:          FuncEjector(func([]string) error { return nil }),
			DisablePredIndex: disable,
		})
		if _, err := inv.Cycle(); err != nil {
			t.Fatal(err)
		}
		var logID int64
		equivPages(rng, m, &logID, 40)
		for _, sql := range equivScript(rng, 12) {
			if _, err := db.ExecSQL(sql); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := inv.Cycle(); err != nil {
			t.Fatal(err)
		}
		for _, qt := range inv.Registry().Types() {
			st := inv.Registry().StatsOf(qt)
			probes += st.IndexProbes
			hits += st.IndexBucketHits + st.IndexIntervalHits + st.IndexResidualEvals
		}
		return probes, hits
	}
	probes, hits := sum(false)
	if probes == 0 {
		t.Fatal("indexed run recorded no probes in TypeStats")
	}
	if hits == 0 {
		t.Fatal("indexed run recorded no candidate hits in TypeStats")
	}
	if p, h := sum(true); p != 0 || h != 0 {
		t.Fatalf("scan run recorded index activity: probes=%d hits=%d", p, h)
	}
}
