package invalidator

import (
	"net/http/httptest"
	"testing"

	"repro/internal/trace"
	"repro/internal/webcache"
)

// TestHTTPEjectorPropagatesTraceContexts: EjectTraced must forward each
// batch's distinct trace contexts in the X-Cacheportal-Trace header, and a
// webcached on the far side must close those traces — terminal
// webcache.eject spans appear in the *remote* tracer under the originating
// trace IDs, parented on the invalidator-side spans the header named.
func TestHTTPEjectorPropagatesTraceContexts(t *testing.T) {
	remote := trace.New(1, 256)
	// Like cmd/webcached -trace: eject requests name traces the sender
	// already chose to record, so the remote head decision must not apply.
	remote.SetForceAll(true)

	cache := webcache.NewCache(0)
	cache.Put(&webcache.Entry{Key: "k1"})
	cache.Put(&webcache.Entry{Key: "k2"})
	proxy := webcache.NewProxy("", cache)
	proxy.Tracer = remote
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	ej := HTTPEjector{CacheURLs: []string{srv.URL}}
	ctxs := map[string]trace.Context{
		"k1": {Trace: 41, Span: 7},
		"k2": {Trace: 43, Span: 9},
	}
	if err := ej.EjectTraced([]string{"k1", "k2"}, ctxs); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 0 {
		t.Fatalf("%d keys still cached", cache.Len())
	}

	for ctxTrace, parent := range map[int64]int64{41: 7, 43: 9} {
		spans := remote.TraceSpans(ctxTrace)
		if len(spans) != 1 {
			t.Fatalf("trace %d: %d spans on the cache side, want 1", ctxTrace, len(spans))
		}
		s := spans[0]
		if s.Name != "webcache.eject" || !s.Terminal {
			t.Fatalf("trace %d: span %q terminal=%v, want terminal webcache.eject", ctxTrace, s.Name, s.Terminal)
		}
		if s.Parent != parent {
			t.Fatalf("trace %d: eject span parent %d, want %d (the header's span)", ctxTrace, s.Parent, parent)
		}
	}
}
