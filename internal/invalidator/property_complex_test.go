package invalidator

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/sniffer"
)

// This file extends the no-stale-pages property to the full predicate
// vocabulary: IN, BETWEEN, LIKE, OR, NOT, IS NULL, arithmetic, and NULL
// data — shapes where conservative fallbacks and three-valued logic have to
// cooperate with the conjunct analysis.

// randComplexQuery draws from a richer query pool than property_test.go.
func randComplexQuery(rng *rand.Rand) string {
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	op := func() string { return ops[rng.Intn(len(ops))] }
	n := func(max int) int { return rng.Intn(max) }
	switch rng.Intn(10) {
	case 0:
		return fmt.Sprintf("SELECT a FROM R WHERE a IN (%d, %d, %d)", n(10), n(10), n(10))
	case 1:
		return fmt.Sprintf("SELECT a FROM R WHERE a BETWEEN %d AND %d", n(5), 5+n(5))
	case 2:
		return fmt.Sprintf("SELECT a FROM R WHERE c LIKE '%c%%'", 'a'+rune(n(4)))
	case 3:
		return fmt.Sprintf("SELECT a FROM R WHERE a %s %d OR b %s %d", op(), n(10), op(), n(5))
	case 4:
		return fmt.Sprintf("SELECT a FROM R WHERE NOT (a %s %d)", op(), n(10))
	case 5:
		return "SELECT a FROM R WHERE b IS NULL"
	case 6:
		return fmt.Sprintf("SELECT a FROM R WHERE a + b %s %d", op(), n(12))
	case 7:
		return fmt.Sprintf("SELECT R.a FROM R, S WHERE R.b = S.b AND (R.a %s %d OR S.d %s %d)",
			op(), n(10), op(), n(10))
	case 8:
		return fmt.Sprintf("SELECT R.a FROM R, S WHERE R.b = S.b AND S.d IN (%d, %d)", n(10), n(10))
	default:
		return fmt.Sprintf("SELECT COUNT(*) FROM R WHERE a %s %d", op(), n(10))
	}
}

func randComplexUpdate(rng *rand.Rand) string {
	n := func(max int) int { return rng.Intn(max) }
	switch rng.Intn(7) {
	case 0, 1:
		// Inserts, sometimes with NULLs.
		b := fmt.Sprint(n(5))
		if rng.Intn(4) == 0 {
			b = "NULL"
		}
		return fmt.Sprintf("INSERT INTO R VALUES (%d, %s, '%c%d')", n(10), b, 'a'+rune(n(4)), n(10))
	case 2:
		return fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", n(5), n(10))
	case 3:
		return fmt.Sprintf("DELETE FROM R WHERE a = %d", n(10))
	case 4:
		return fmt.Sprintf("DELETE FROM S WHERE b = %d", n(5))
	case 5:
		return fmt.Sprintf("UPDATE R SET c = 'z%d' WHERE a = %d", n(10), n(10))
	default:
		return fmt.Sprintf("UPDATE R SET b = NULL WHERE a = %d", n(10))
	}
}

func TestPropertyNoStalePagesComplexPredicates(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		db := engine.NewDatabase()
		if _, err := db.ExecScript(`
			CREATE TABLE R (a INT, b INT, c TEXT);
			CREATE TABLE S (b INT, d INT);
		`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			b := fmt.Sprint(rng.Intn(5))
			if rng.Intn(5) == 0 {
				b = "NULL"
			}
			db.ExecSQL(fmt.Sprintf("INSERT INTO R VALUES (%d, %s, '%c%d')",
				rng.Intn(10), b, 'a'+rune(rng.Intn(4)), rng.Intn(10)))
		}
		for i := 0; i < 10; i++ {
			db.ExecSQL(fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", rng.Intn(5), rng.Intn(10)))
		}

		m := sniffer.NewQIURLMap()
		ejected := map[string]bool{}
		pollConn := directConn(t, db)
		inv := New(Config{
			Map:    m,
			Puller: EngineLogPuller{Log: db.Log()},
			Poller: pollConn,
			Ejector: FuncEjector(func(keys []string) error {
				for _, k := range keys {
					ejected[k] = true
				}
				return nil
			}),
		})
		if _, err := inv.Cycle(); err != nil {
			t.Fatal(err)
		}

		pages := map[string]string{}
		for round := 0; round < 6; round++ {
			before := map[string]string{}
			for p := 0; p < 3; p++ {
				key := fmt.Sprintf("pg-%d-%d", round, p)
				sql := randComplexQuery(rng)
				res, err := db.ExecSQL(sql)
				if err != nil {
					t.Fatalf("seed %d: %s: %v", seed, sql, err)
				}
				pages[key] = sql
				before[key] = resultFingerprint(res)
				m.Record(key, "s", int64(p), []sniffer.QueryInstance{{SQL: sql}})
			}
			for key, sql := range pages {
				if _, done := before[key]; done {
					continue
				}
				res, err := db.ExecSQL(sql)
				if err != nil {
					t.Fatal(err)
				}
				before[key] = resultFingerprint(res)
			}
			if _, err := inv.Cycle(); err != nil {
				t.Fatal(err)
			}

			var stmts []string
			for u := 0; u < 1+rng.Intn(3); u++ {
				sql := randComplexUpdate(rng)
				stmts = append(stmts, sql)
				if _, err := db.ExecSQL(sql); err != nil {
					t.Fatalf("seed %d: %s: %v", seed, sql, err)
				}
			}
			ejected = map[string]bool{}
			if _, err := inv.Cycle(); err != nil {
				t.Fatal(err)
			}
			for key, sql := range pages {
				res, err := db.ExecSQL(sql)
				if err != nil {
					t.Fatal(err)
				}
				if after := resultFingerprint(res); after != before[key] && !ejected[key] {
					t.Fatalf("seed %d round %d: STALE %s\n  query: %s\n  updates: %v",
						seed, round, key, sql, stmts)
				}
			}
			for key := range ejected {
				delete(pages, key)
			}
		}
	}
}

// directConn is a test helper returning an in-process poller.
func directConn(t *testing.T, db *engine.Database) Poller {
	t.Helper()
	return pollerFunc(func(sql string) (*engine.Result, error) { return db.ExecSQL(sql) })
}

// pollerFunc adapts a function to Poller.
type pollerFunc func(string) (*engine.Result, error)

func (f pollerFunc) Query(sql string) (*engine.Result, error) { return f(sql) }
