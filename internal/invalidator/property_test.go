package invalidator

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sniffer"
)

// This file checks the invalidator's central correctness guarantee with
// randomized workloads: after any batch of updates, the set of invalidated
// pages must be a superset of the pages whose query results actually
// changed (no stale page is ever served). Precision (not invalidating
// unaffected pages) is desirable but not required; soundness is.

// propHarness runs one random scenario.
type propHarness struct {
	rng     *rand.Rand
	db      *engine.Database
	m       *sniffer.QIURLMap
	inv     *Invalidator
	ejected map[string]bool
	pages   map[string]string // cache key → SQL
}

func newPropHarness(t *testing.T, seed int64) *propHarness {
	t.Helper()
	h := &propHarness{
		rng:     rand.New(rand.NewSource(seed)),
		db:      engine.NewDatabase(),
		m:       sniffer.NewQIURLMap(),
		ejected: make(map[string]bool),
		pages:   make(map[string]string),
	}
	if _, err := h.db.ExecScript(`
		CREATE TABLE R (a INT, b INT, c TEXT);
		CREATE TABLE S (b INT, d INT);
	`); err != nil {
		t.Fatal(err)
	}
	// Seed data.
	for i := 0; i < 20; i++ {
		h.db.ExecSQL(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, '%c')",
			h.rng.Intn(10), h.rng.Intn(5), 'a'+rune(h.rng.Intn(4))))
	}
	for i := 0; i < 12; i++ {
		h.db.ExecSQL(fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", h.rng.Intn(5), h.rng.Intn(10)))
	}
	pollConn, err := driver.DirectDriver{DB: h.db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	h.inv = New(Config{
		Map:    h.m,
		Puller: EngineLogPuller{Log: h.db.Log()},
		Poller: pollConn,
		Ejector: FuncEjector(func(keys []string) error {
			for _, k := range keys {
				h.ejected[k] = true
			}
			return nil
		}),
	})
	if _, err := h.inv.Cycle(); err != nil { // swallow seed-data log
		t.Fatal(err)
	}
	return h
}

// randQuery generates a random single-table or join SELECT.
func (h *propHarness) randQuery() string {
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	op := func() string { return ops[h.rng.Intn(len(ops))] }
	switch h.rng.Intn(5) {
	case 0:
		return fmt.Sprintf("SELECT a, b FROM R WHERE a %s %d", op(), h.rng.Intn(10))
	case 1:
		return fmt.Sprintf("SELECT a FROM R WHERE a %s %d AND b %s %d",
			op(), h.rng.Intn(10), op(), h.rng.Intn(5))
	case 2:
		return fmt.Sprintf("SELECT d FROM S WHERE d %s %d", op(), h.rng.Intn(10))
	case 3:
		return fmt.Sprintf("SELECT R.a, S.d FROM R, S WHERE R.b = S.b AND R.a %s %d",
			op(), h.rng.Intn(10))
	default:
		return fmt.Sprintf("SELECT R.a FROM R, S WHERE R.b = S.b AND R.a %s %d AND S.d %s %d",
			op(), h.rng.Intn(10), op(), h.rng.Intn(10))
	}
}

// randUpdate applies one random DML statement.
func (h *propHarness) randUpdate() string {
	switch h.rng.Intn(6) {
	case 0, 1:
		return fmt.Sprintf("INSERT INTO R VALUES (%d, %d, '%c')",
			h.rng.Intn(10), h.rng.Intn(5), 'a'+rune(h.rng.Intn(4)))
	case 2:
		return fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", h.rng.Intn(5), h.rng.Intn(10))
	case 3:
		return fmt.Sprintf("DELETE FROM R WHERE a = %d", h.rng.Intn(10))
	case 4:
		return fmt.Sprintf("DELETE FROM S WHERE d = %d", h.rng.Intn(10))
	default:
		return fmt.Sprintf("UPDATE R SET b = %d WHERE a = %d", h.rng.Intn(5), h.rng.Intn(10))
	}
}

// resultFingerprint canonicalizes a query result as a sorted multiset.
func resultFingerprint(res *engine.Result) string {
	keys := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		keys[i] = mem.Row(r).Key()
	}
	// Order-insensitive: sort.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := ""
	for _, k := range keys {
		out += k + "\x1e"
	}
	return out
}

// TestPropertyNoStalePages: across many random rounds, every page whose
// result changed must have been ejected.
func TestPropertyNoStalePages(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		h := newPropHarness(t, 1000+seed)

		for round := 0; round < 8; round++ {
			// "Serve" 1-4 pages: record their queries and results.
			before := map[string]string{}
			nPages := 1 + h.rng.Intn(4)
			for p := 0; p < nPages; p++ {
				key := fmt.Sprintf("page-%d-%d", round, p)
				sql := h.randQuery()
				res, err := h.db.ExecSQL(sql)
				if err != nil {
					t.Fatalf("seed %d: %s: %v", seed, sql, err)
				}
				h.pages[key] = sql
				before[key] = resultFingerprint(res)
				h.m.Record(key, "servlet", int64(p), []sniffer.QueryInstance{{SQL: sql}})
			}
			// Also re-fingerprint surviving older pages.
			for key, sql := range h.pages {
				if _, done := before[key]; done {
					continue
				}
				res, err := h.db.ExecSQL(sql)
				if err != nil {
					t.Fatal(err)
				}
				before[key] = resultFingerprint(res)
			}
			if _, err := h.inv.Cycle(); err != nil { // ingest mappings
				t.Fatal(err)
			}

			// Random update batch.
			nUpd := 1 + h.rng.Intn(4)
			var stmts []string
			for u := 0; u < nUpd; u++ {
				sql := h.randUpdate()
				stmts = append(stmts, sql)
				if _, err := h.db.ExecSQL(sql); err != nil {
					t.Fatalf("seed %d: %s: %v", seed, sql, err)
				}
			}

			h.ejected = make(map[string]bool)
			if _, err := h.inv.Cycle(); err != nil {
				t.Fatal(err)
			}

			// Soundness: changed ⇒ ejected.
			for key, sql := range h.pages {
				res, err := h.db.ExecSQL(sql)
				if err != nil {
					t.Fatal(err)
				}
				after := resultFingerprint(res)
				if after != before[key] && !h.ejected[key] {
					t.Fatalf("seed %d round %d: STALE PAGE %s\n  query: %s\n  updates: %v\n  before=%q after=%q",
						seed, round, key, sql, stmts, before[key], after)
				}
			}
			// Ejected pages are forgotten (they left the cache).
			for key := range h.ejected {
				delete(h.pages, key)
			}
		}
	}
}

// TestPropertyPrecisionReasonable guards against a trivially sound but
// useless implementation that invalidates everything: across rounds with
// updates guaranteed irrelevant to the cached queries, nothing should be
// ejected.
func TestPropertyPrecisionReasonable(t *testing.T) {
	h := newPropHarness(t, 42)
	// Page depends on R rows with a < 3 only.
	h.m.Record("narrow", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT a FROM R WHERE a < 3"}})
	h.inv.Cycle()
	for i := 0; i < 10; i++ {
		// Inserts with a >= 5 can never affect it.
		h.db.ExecSQL(fmt.Sprintf("INSERT INTO R VALUES (%d, %d, 'x')", 5+i%5, i%5))
		h.db.ExecSQL(fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", i%5, i))
		h.ejected = make(map[string]bool)
		h.inv.Cycle()
		if h.ejected["narrow"] {
			t.Fatalf("iteration %d: irrelevant update invalidated the page", i)
		}
	}
}
