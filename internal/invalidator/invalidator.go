package invalidator

import (
	"errors"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/engine"
	"repro/internal/fragment"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/predindex"
	"repro/internal/sniffer"
	"repro/internal/sqlparser"
	"repro/internal/trace"
	"repro/internal/wire"
)

// LogPuller abstracts how the invalidator pulls the database update log
// (§4.2.1 "pulls the update logs from the database").
type LogPuller interface {
	PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error)
}

// LogNotifier is the event-driven trigger: Changed returns a channel that is
// closed when log records may have arrived since the call (re-obtain it after
// each wakeup — close-and-replace broadcast semantics). engine.UpdateLog and
// wire.LogFeed both satisfy it; a plain polling client does not, and stays on
// the timer.
type LogNotifier interface {
	Changed() <-chan struct{}
}

// EngineLogPuller reads an in-process update log.
type EngineLogPuller struct{ Log *engine.UpdateLog }

// PullSince implements LogPuller. SinceNext observes records and the resume
// cursor atomically — reading NextLSN separately would race with appends and
// skip records forever.
func (p EngineLogPuller) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	recs, trunc, next, _ := p.Log.SinceNext(lsn)
	return recs, trunc, next, nil
}

// Changed implements LogNotifier.
func (p EngineLogPuller) Changed() <-chan struct{} { return p.Log.Changed() }

// WireLogPuller reads the update log over the wire protocol.
type WireLogPuller struct{ Client *wire.Client }

// PullSince implements LogPuller.
func (p WireLogPuller) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	return p.Client.LogSince(lsn)
}

// Mapper is the sniffer-facing half of the cycle: Run performs one mapping
// pass and returns how many request entries were mapped; TakeTruncated
// reports-and-clears whether a source log lost entries before they were
// read. *sniffer.Mapper implements it; tests and fault injectors substitute
// their own.
type Mapper interface {
	Run() int
	TakeTruncated() bool
}

// Config wires an Invalidator.
type Config struct {
	// Map is the sniffer's QI/URL map (required).
	Map *sniffer.QIURLMap
	// Mapper, when set, is run at the start of every cycle so sniffing and
	// invalidation share the cadence (they stay logically independent).
	Mapper Mapper
	// Puller reads the database update log (required).
	Puller LogPuller
	// Poller executes polling queries: the DBMS itself or a middle-tier
	// data cache (§2.4). Without one, undecidable tuples invalidate
	// conservatively.
	Poller Poller
	// Ejector delivers invalidation messages (required).
	Ejector Ejector
	// Registry may be pre-populated via RegisterType; nil creates one.
	Registry *Registry
	// Policies may carry administrator rules; nil creates defaults.
	Policies *Policies
	// Indexes are maintained external indexes; nil creates an empty set.
	Indexes *IndexSet
	// PollBudget bounds polling time per cycle (0 = unbounded); exceeding
	// it degrades to conservative invalidation (§4.2.2). Under parallel
	// evaluation the budget is a token bucket shared by all workers: the
	// cumulative DBMS polling time per cycle stays bounded no matter how
	// many polls run at once.
	PollBudget time.Duration
	// Workers bounds how many (query type × delta table) evaluation units
	// run concurrently within one cycle (§4.2.2 scalability). 0 defaults to
	// GOMAXPROCS; 1 restores strictly sequential evaluation. The
	// invalidated page set is identical at any worker count — only
	// throughput changes.
	Workers int
	// AdviceThreshold is the existence-poll count after which a maintained
	// index is recommended (0 = default 16).
	AdviceThreshold int64
	// AutoIndex, when true, acts on the advice automatically: once a
	// (table, column) pair crosses AdviceThreshold, the invalidator loads
	// and maintains the index itself (§4.1's self-tuning, applying the
	// paper's index criteria without an administrator).
	AutoIndex bool
	// DisablePredIndex turns off the predicate index and restores the
	// per-instance scan in evalType. The invalidated page set is identical
	// either way (the equivalence property tests enforce it); the flag
	// exists for A/B comparison, the registry-scale benchmark, and as an
	// escape hatch.
	DisablePredIndex bool
	// BreakerThreshold is the circuit breaker on the ejector: after this
	// many consecutive cycles whose eject round failed, the invalidator
	// stops trusting precise ejection and falls back to a conservative bulk
	// flush (EjectAll) when the ejector supports it — trading cache content
	// for the §4.2.4 guarantee that no stale page outlives its retry loop.
	// 0 defaults to DefaultBreakerThreshold; negative disables the breaker.
	BreakerThreshold int
	// Obs receives the invalidator's metrics (cycle phases, poll counts,
	// and the commit-to-eject staleness histograms); nil creates a private
	// registry, so instrumentation is always on — it costs atomic adds
	// only.
	Obs *obs.Registry
	// Tracer, when set, records pipeline spans for sampled traces: the
	// cycle phases (sniffer.map, pull, analyze, poll, eject) attach to each
	// sampled update record's context, staleness samples carry their trace
	// as histogram exemplars, and eject failures force-sample the affected
	// traces so the retry/breaker chain that explains a stale page is
	// recorded even when the head decision was "skip". nil = tracing off.
	Tracer *trace.Tracer
}

// DefaultBreakerThreshold is how many consecutive failed eject rounds open
// the ejector circuit breaker when Config.BreakerThreshold is unset.
const DefaultBreakerThreshold = 3

// Report summarizes one invalidation cycle.
type Report struct {
	MappedPages    int // request-log entries the mapper processed
	PagesIngested  int // QI/URL map changes consumed
	UpdateRecords  int // update-log records pulled
	DeltaTuples    int // tuples across all delta tables
	Polls          int // polling queries sent to the poller
	PollsPrepared  int // polls issued through a prepared (StmtPoller) path
	PollsDeduped   int // polls answered from the per-cycle dedup cache
	PollsDenied    int // polls refused because the budget ran out
	IndexHits      int // polls answered by maintained indexes
	PollTime       time.Duration
	LocalDecisions int // tuple×type decisions made without polling
	Invalidated    int // pages ejected
	// FragmentEjects is how many of the Invalidated keys named a fragment
	// or assembly template rather than a whole page — the share of eject
	// traffic operating below page granularity.
	FragmentEjects int
	Conservative   int // instance invalidations decided conservatively
	// Truncated is set when a source log (request, query, or update) lost
	// entries before this cycle read them; the cycle responded by flushing
	// every potentially affected page.
	Truncated bool
	EjectErr  error
	Duration  time.Duration
}

// Invalidator orchestrates the §4 pipeline. Cycle is not safe for
// concurrent invocation; Start runs it from a single goroutine. Within one
// cycle, independent (query type × delta table) units are evaluated on a
// bounded worker pool (Config.Workers) and polling queries run
// concurrently with in-flight deduplication.
type Invalidator struct {
	cfg      Config
	registry *Registry
	policies *Policies
	indexes  *IndexSet
	advice   *adviceTracker

	obs            *obs.Registry
	met            invMetrics
	stalenessHists map[string]*obs.Histogram // servlet → staleness histogram

	// pred is the predicate index over live instances (nil when
	// Config.DisablePredIndex): evalType probes it with delta column
	// values instead of scanning InstancesOf.
	pred *predIndex

	// typesBuf and schedPrio are Cycle-lifetime scratch buffers (Cycle is
	// single-invocation; only the eval units run on workers), keeping the
	// per-delta schedule build allocation-free.
	typesBuf  []*QueryType
	schedPrio []float64

	mapVersion int64
	lastLSN    int64
	pending    []string // keys whose ejection failed; retried next cycle
	// pendingStamp carries each pending key's freshness stamp across retry
	// cycles, so a retried eject still reports its true commit-to-eject
	// latency.
	pendingStamp map[string]time.Time
	// pendingCtx carries each pending key's trace context alongside its
	// stamp: the retry and breaker spans of later cycles parent on it, so
	// the trace explains why the page's eject was late.
	pendingCtx map[string]trace.Context
	// flushPending records that a truncation was observed but the
	// compensating cache flush has not landed yet. It survives across
	// cycles: mappings are only destroyed after the flush succeeds, because
	// dropping them first would leave cached pages nothing can ever
	// invalidate (permanent staleness).
	flushPending bool
	// ejectFailStreak counts consecutive cycles whose eject round returned
	// an error; it feeds the circuit breaker and resets on any success.
	ejectFailStreak int
}

// New creates an Invalidator from cfg.
func New(cfg Config) *Invalidator {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.Policies == nil {
		cfg.Policies = NewPolicies(DefaultThresholds())
	}
	if cfg.Indexes == nil {
		cfg.Indexes = NewIndexSet()
	}
	if cfg.AdviceThreshold <= 0 {
		cfg.AdviceThreshold = 16
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	cfg.Obs.GaugeFunc("invalidator.registry.generation", cfg.Registry.Generation)
	cfg.Obs.GaugeFunc("invalidator.registry.parse_hits", func() int64 { h, _ := cfg.Registry.ParseCacheStats(); return h })
	cfg.Obs.GaugeFunc("invalidator.registry.parse_misses", func() int64 { _, m := cfg.Registry.ParseCacheStats(); return m })
	inv := &Invalidator{
		cfg:            cfg,
		registry:       cfg.Registry,
		policies:       cfg.Policies,
		indexes:        cfg.Indexes,
		advice:         newAdviceTracker(),
		obs:            cfg.Obs,
		met:            newInvMetrics(cfg.Obs),
		stalenessHists: make(map[string]*obs.Histogram),
		pendingStamp:   make(map[string]time.Time),
		pendingCtx:     make(map[string]trace.Context),
		lastLSN:        1,
	}
	if !cfg.DisablePredIndex {
		inv.pred = newPredIndex(inv.met.predRebuilds)
		// SetObserver replays instances that are already live, so wiring
		// onto a pre-populated registry starts coherent.
		inv.registry.SetObserver(inv.pred)
		cfg.Obs.GaugeFunc("invalidator.predindex.size", inv.pred.size.Load)
		cfg.Obs.GaugeFunc("invalidator.predindex.types", inv.pred.typeCount)
	}
	return inv
}

// Obs exposes the invalidator's metrics registry.
func (inv *Invalidator) Obs() *obs.Registry { return inv.obs }

// Registry exposes the registration module.
func (inv *Invalidator) Registry() *Registry { return inv.registry }

// Policies exposes the policy engine.
func (inv *Invalidator) Policies() *Policies { return inv.policies }

// Indexes exposes the maintained index set.
func (inv *Invalidator) Indexes() *IndexSet { return inv.indexes }

// Advise lists maintained-index recommendations collected so far.
func (inv *Invalidator) Advise() []Advice { return inv.advice.advise(inv.cfg.AdviceThreshold) }

// CacheableServlet is the feedback hook handed to the application server.
func (inv *Invalidator) CacheableServlet(name string) bool {
	return inv.policies.CacheableServlet(name)
}

// maxCycleBackoffFactor caps the error backoff of the cycle loop at this
// multiple of the configured interval: enough to stop hammering a dead
// dependency, small enough that recovery is noticed quickly.
const maxCycleBackoffFactor = 16

// NextCycleDelay returns how long a cycle loop should wait before the next
// cycle: the configured interval after a success, capped exponential
// backoff with jitter after failures consecutive errors. Shared by Start,
// the portal's loop, and invalidatord so every deployment degrades the same
// way.
func NextCycleDelay(interval time.Duration, failures int) time.Duration {
	if failures <= 0 {
		return interval
	}
	return backoff.Delay(interval, failures, maxCycleBackoffFactor*interval)
}

// DefaultMinEventGap is the burst-coalescing window of event-driven cycle
// loops when none is configured: after the first wakeup a cycle waits this
// long, folding further wakeups into the same cycle, so a write burst costs
// one analysis pass instead of one per commit.
const DefaultMinEventGap = 10 * time.Millisecond

// RunLoop is the shared cycle-cadence loop: run cycle every interval, and —
// when notifier is non-nil — also as soon as the notifier signals new log
// records, after a minGap coalescing window that folds a burst of wakeups
// into one cycle. The interval timer is always retained as a fallback (it is
// what keeps a feed that degraded to polling fresh), and consecutive cycle
// errors stretch the cadence through NextCycleDelay exactly as the pure timer
// loop does, so every deployment — in-process, portal, invalidatord — degrades
// the same way. onBurst, when non-nil, observes how many wakeups each
// event-triggered cycle coalesced. RunLoop blocks until stop closes.
//
// With a notifier, each iteration obtains the notification channel BEFORE
// running the cycle and only then waits on it: a record that arrives while a
// cycle is in flight closes the already-obtained channel, so the loop wakes
// immediately instead of stalling until the fallback timer (the same
// no-missed-wakeup discipline as the feed pump). The first iteration is a
// catch-up cycle for the same reason — appends from before the loop existed
// closed only channels nobody held. Without a notifier the loop is the
// original pure timer: first cycle one interval in.
func RunLoop(interval, minGap time.Duration, notifier LogNotifier, stop <-chan struct{}, cycle func() error, onBurst func(wakes int)) {
	failures := 0
	timer := time.NewTimer(interval)
	defer timer.Stop()
	if notifier == nil {
		for {
			select {
			case <-stop:
				return
			case <-timer.C:
				if err := cycle(); err != nil {
					failures++
				} else {
					failures = 0
				}
				timer.Reset(NextCycleDelay(interval, failures))
			}
		}
	}
	for {
		changed := notifier.Changed()
		if err := cycle(); err != nil {
			failures++
		} else {
			failures = 0
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(NextCycleDelay(interval, failures))
		select {
		case <-stop:
			return
		case <-timer.C:
		case <-changed:
			wakes := 1
			if minGap > 0 {
				guard := time.NewTimer(minGap)
			coalesce:
				for {
					select {
					case <-stop:
						guard.Stop()
						return
					case <-notifier.Changed():
						wakes++
					case <-guard.C:
						break coalesce
					}
				}
			}
			if onBurst != nil {
				onBurst(wakes)
			}
		}
	}
}

// Start runs Cycle every interval until stop closes. Consecutive cycle
// errors stretch the cadence with exponential backoff (capped, jittered)
// instead of silently ticking against a failing dependency; one success
// restores the configured interval.
func (inv *Invalidator) Start(interval time.Duration, stop <-chan struct{}) {
	go RunLoop(interval, 0, nil, stop, func() error {
		_, err := inv.Cycle()
		return err
	}, nil)
}

// StartEventDriven runs Cycle when notifier signals new update-log records —
// coalescing bursts within minGap (DefaultMinEventGap when <= 0) — while
// keeping the interval timer as fallback cadence. The invalidation outcome is
// identical to pull mode (Cycle and the puller are untouched; only the
// trigger changes); what moves is commit-to-eject staleness, from O(interval)
// down to O(minGap + cycle time).
func (inv *Invalidator) StartEventDriven(interval, minGap time.Duration, notifier LogNotifier, stop <-chan struct{}) {
	if minGap <= 0 {
		minGap = DefaultMinEventGap
	}
	go RunLoop(interval, minGap, notifier, stop, func() error {
		_, err := inv.Cycle()
		return err
	}, func(wakes int) {
		inv.met.eventCycles.Inc()
		inv.met.burstWakes.Observe(float64(wakes))
	})
}

// maxTracedPerCycle bounds how many recording traces get per-trace phase
// spans in one cycle; the tail still ejects correctly, it just goes
// unnarrated.
const maxTracedPerCycle = 256

// pageImpact is one impacted page's staleness origin: the commit stamp of
// the oldest update that made it stale, and that update's trace context.
type pageImpact struct {
	stamp time.Time
	ctx   trace.Context
}

// Cycle performs one sniff-ingest / update-pull / analyze / poll / eject
// round and returns its report.
func (inv *Invalidator) Cycle() (rep Report, retErr error) {
	start := time.Now()
	defer func() {
		m := &inv.met
		m.cycles.Inc()
		m.cycleSeconds.ObserveDuration(rep.Duration)
		m.mapperPages.Add(int64(rep.MappedPages))
		m.pagesIngested.Add(int64(rep.PagesIngested))
		m.updateRecords.Add(int64(rep.UpdateRecords))
		m.deltaTuples.Add(int64(rep.DeltaTuples))
		m.polls.Add(int64(rep.Polls))
		m.pollsPrepared.Add(int64(rep.PollsPrepared))
		m.pollsDeduped.Add(int64(rep.PollsDeduped))
		m.pollsDenied.Add(int64(rep.PollsDenied))
		m.indexHits.Add(int64(rep.IndexHits))
		m.localDecisions.Add(int64(rep.LocalDecisions))
		m.invalidated.Add(int64(rep.Invalidated))
		m.conservative.Add(int64(rep.Conservative))
		m.retryDepth.Set(int64(len(inv.pending)))
		m.ejectFailStreak.Set(int64(inv.ejectFailStreak))
		if rep.Truncated {
			m.truncations.Inc()
		}
		if rep.EjectErr != nil {
			m.ejectErrors.Inc()
		}
		if retErr != nil {
			m.cycleErrors.Inc()
		}
	}()

	// 1. Give the sniffer a chance to map fresh requests. If a source log
	// was truncated before the mapper read it, pages may be cached with no
	// QI/URL mapping — nothing can ever invalidate them precisely, so the
	// only sound recovery is to flush the caches outright. The flush must
	// LAND before any mapping is destroyed: flushPending carries the
	// obligation across cycles when the flush itself fails, so a faulty
	// ejector delays recovery but never converts it into permanent
	// staleness.
	var mapStart, mapEnd time.Time
	if inv.cfg.Mapper != nil {
		mapStart = time.Now()
		rep.MappedPages = inv.cfg.Mapper.Run()
		mapEnd = time.Now()
		if inv.cfg.Mapper.TakeTruncated() {
			inv.flushPending = true
		}
	}
	if inv.flushPending {
		rep.Truncated = true
		if bulk, ok := inv.cfg.Ejector.(BulkEjector); ok {
			if err := bulk.EjectAll(); err != nil {
				rep.EjectErr = err // keep all state; retry the flush next cycle
			} else {
				inv.flushPending = false
				for _, k := range inv.registry.Pages() {
					inv.cfg.Map.Remove(k)
					inv.registry.UnlinkPage(k)
				}
			}
		}
		// Without bulk support, every known page is routed through the
		// ordinary eject machinery below (marked with an unknown-origin
		// stamp), so failures land in the pending retry list instead of
		// being discarded.
	}

	// 2. Ingest QI/URL map changes (§4.1.2 online registration).
	inv.ingestMap(&rep)

	// 3. Pull the update log (§4.2.1).
	tr := inv.cfg.Tracer // nil-safe: every method is a no-op when nil
	pullStart := time.Now()
	recs, truncated, next, err := inv.cfg.Puller.PullSince(inv.lastLSN)
	pullEnd := time.Now()
	if err != nil {
		rep.Duration = time.Since(start)
		return rep, err
	}
	rep.UpdateRecords = len(recs)
	rep.Truncated = rep.Truncated || truncated
	inv.indexes.Apply(recs)
	inv.lastLSN = next

	// tracedCtxs are the recording traces in this batch. Cycle phases are
	// shared work — one mapper run, one pull, one analyze serve every
	// record — so each recording trace gets its own copy of the phase
	// spans, parented on its feed (or commit) span. Bounded so a huge
	// burst of sampled records cannot turn span recording into the cycle's
	// dominant cost.
	var tracedCtxs []trace.Context
	if tr != nil {
		for _, rec := range recs {
			if tr.Recording(rec.Trace) {
				tracedCtxs = append(tracedCtxs, trace.Context{Trace: rec.Trace, Span: rec.Span})
				if len(tracedCtxs) >= maxTracedPerCycle {
					break
				}
			}
		}
		for _, ctx := range tracedCtxs {
			if !mapStart.IsZero() {
				tr.Record(ctx, "sniffer.map", mapStart, mapEnd,
					trace.Attr{K: "pages", V: strconv.Itoa(rep.MappedPages)})
			}
			tr.Record(ctx, "invalidator.pull", pullStart, pullEnd,
				trace.Attr{K: "records", V: strconv.Itoa(len(recs))})
		}
	}

	// impacted maps each page to its freshness stamp — the commit time of
	// the oldest update that made it stale — and that update's trace
	// context, so the eject can be attributed to the commit that caused
	// it. A zero stamp means the origin is unknown (log truncation) and no
	// staleness sample is recorded; unknown dominates when causes merge,
	// but a known trace context survives the merge (better to attribute
	// the eject to one real cause than to none).
	impacted := make(map[string]pageImpact)
	mark := func(key string, stamp time.Time, ctx trace.Context) {
		prev, ok := impacted[key]
		switch {
		case !ok:
			impacted[key] = pageImpact{stamp: stamp, ctx: ctx}
		case prev.stamp.IsZero() || stamp.IsZero():
			if !prev.ctx.Valid() {
				prev.ctx = ctx
			}
			prev.stamp = time.Time{}
			impacted[key] = prev
		case stamp.Before(prev.stamp):
			impacted[key] = pageImpact{stamp: stamp, ctx: ctx}
		}
	}
	if truncated {
		// The log no longer reaches back to our last position: anything
		// cached may be stale.
		for _, k := range inv.registry.Pages() {
			mark(k, time.Time{}, trace.Context{})
		}
		rep.Conservative += len(impacted)
	} else if len(recs) > 0 {
		analyzeStart := time.Now()
		deltas := engine.BuildDeltas(recs)
		// Tables with deletions in this batch: polling runs against the
		// post-update state, so a deleted tuple whose join counterpart was
		// deleted in the same batch would poll-miss. evalType goes
		// conservative for exactly that combination.
		delTables := make(map[string]bool)
		for _, d := range deltas {
			if len(d.Minus) > 0 {
				delTables[lowerTableName(d.Table)] = true
			}
		}
		pr := newPollRun(inv.cfg.Poller, inv.indexes, inv.cfg.PollBudget, inv.met.pollSeconds)

		// Build the cycle's schedule up front: one work unit per (query
		// type × delta table) pair, in delta order with each table's types
		// in §4.2.2 priority order. Units are independent — the registry is
		// not mutated until the eject step — so workers claim them from the
		// front of this list; high-value units start first, and when the
		// shared polling budget runs out, the (lowest-value) tail degrades
		// to conservative invalidation, exactly the sequential trade-off.
		type workUnit struct {
			d     *engine.Delta
			qt    *QueryType
			insts []*Instance // scan-mode snapshot; nil when the index drives
			n     int         // live instances at scheduling time
		}
		var units []workUnit
		for _, d := range deltas {
			rep.DeltaTuples += len(d.Plus) + len(d.Minus)
			inv.typesBuf = inv.registry.TypesForTableInto(d.Table, inv.typesBuf)
			for _, qt := range inv.scheduleTypes(inv.typesBuf) {
				u := workUnit{d: d, qt: qt}
				if inv.pred != nil {
					// Indexed mode: no instance snapshot is materialized —
					// evalType probes the index instead.
					u.n = inv.pred.liveCount(qt)
				} else {
					u.insts = inv.registry.InstancesOf(qt)
					u.n = len(u.insts)
				}
				if u.n == 0 {
					continue
				}
				units = append(units, u)
			}
		}

		// Per-worker Report counters merge through atomics so the cycle's
		// statistics stay exact; the impacted page set merges under its own
		// mutex.
		var localDecisions, conservative atomic.Int64
		var impactedMu sync.Mutex
		process := func(u workUnit) {
			batchStart := time.Now()
			res := inv.evalType(u.qt, u.d, evalSource{insts: u.insts, pi: inv.pred}, pr, delTables)
			inv.recordTypeBatch(u.qt, u.n, res, time.Since(batchStart))
			localDecisions.Add(int64(res.localDecisions))
			conservative.Add(int64(res.conservative))
			impactedMu.Lock()
			for _, inst := range res.impacted {
				for page := range inst.Pages {
					mark(page, u.d.Stamp, trace.Context{Trace: u.d.Trace, Span: u.d.Span})
				}
			}
			impactedMu.Unlock()
		}

		workers := inv.cfg.Workers
		if workers > len(units) {
			workers = len(units)
		}
		if workers <= 1 {
			for _, u := range units {
				process(u)
			}
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(units) {
							return
						}
						process(units[i])
					}
				}()
			}
			wg.Wait()
		}
		rep.LocalDecisions += int(localDecisions.Load())
		rep.Conservative += int(conservative.Load())
		rep.Polls = int(pr.polls.Load())
		rep.PollsPrepared = int(pr.prepared.Load())
		rep.PollsDeduped = int(pr.deduped.Load())
		rep.PollsDenied = int(pr.denied.Load())
		rep.IndexHits = int(pr.indexHits.Load())
		rep.PollTime = time.Duration(pr.pollTime.Load())

		// Conservative pages fall with any change at all; their staleness
		// origin is the batch's oldest record.
		batchStamp := recs[0].Time
		batchCtx := trace.Context{Trace: recs[0].Trace, Span: recs[0].Span}
		for _, k := range inv.registry.ConservativePages() {
			mark(k, batchStamp, batchCtx)
			rep.Conservative++
		}
		analyzeEnd := time.Now()
		inv.met.analyzeSeconds.ObserveDuration(analyzeEnd.Sub(analyzeStart))
		for _, ctx := range tracedCtxs {
			tr.Record(ctx, "invalidator.analyze", analyzeStart, analyzeEnd,
				trace.Attr{K: "deltas", V: strconv.Itoa(rep.DeltaTuples)},
				trace.Attr{K: "impacted", V: strconv.Itoa(len(impacted))})
			if rep.Polls > 0 {
				// Polling time is embedded in the analyze phase; the span
				// reports its aggregate wall time as a sub-interval.
				tr.Record(ctx, "invalidator.poll", analyzeStart, analyzeStart.Add(rep.PollTime),
					trace.Attr{K: "polls", V: strconv.Itoa(rep.Polls)})
			}
		}
	}

	// Truncation fallback for non-bulk ejectors: flush every page the
	// registry knows about through the keyed machinery, with an
	// unknown-origin (zero) stamp so no staleness sample is fabricated.
	// Keys that fail to eject enter the pending retry list below; only then
	// is the flush obligation considered discharged.
	if inv.flushPending {
		if _, ok := inv.cfg.Ejector.(BulkEjector); !ok {
			for _, k := range inv.registry.Pages() {
				mark(k, time.Time{}, trace.Context{})
			}
			inv.flushPending = false
		}
	}

	// 4. Send invalidation messages (§4.2.4), including retries. Pending
	// keys (whose ejection failed in an earlier cycle) merge into this
	// cycle's set — deduplicated, so the retry list cannot grow past the
	// live page population — and keys whose pages have since left the
	// registry are dropped: nothing can reinstate them, so retrying is
	// pure cache noise. The retry list is cleared unconditionally here and
	// rebuilt from this cycle's outcome: even when every pending page has
	// left the registry (so no eject runs at all), dropped keys and their
	// stamps must not linger.
	for _, k := range inv.pending {
		if inv.registry.HasPage(k) {
			ctx := inv.pendingCtx[k]
			if tr.Recording(ctx.Trace) {
				// invalidator.retry: a zero-width marker span — this key's
				// eject failed last cycle and is being re-attempted now. The
				// key's context advances to it, so a later eject (or another
				// retry) parents on the retry chain.
				now := time.Now()
				ctx = tr.Record(ctx, "invalidator.retry", now, now,
					trace.Attr{K: "key", V: k})
			}
			mark(k, inv.pendingStamp[k], ctx)
		}
	}
	inv.pending = nil
	inv.pendingStamp = make(map[string]time.Time)
	inv.pendingCtx = make(map[string]trace.Context)
	keys := make([]string, 0, len(impacted))
	for k := range impacted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// finish completes one ejected key: the commit-to-eject staleness
	// sample is recorded (globally and per servlet) before the mapping —
	// which names the servlet — is removed.
	finish := func(k string, now time.Time) {
		if fragment.IsFragmentKey(k) {
			inv.met.fragmentEjects.Inc()
			rep.FragmentEjects++
		} else {
			inv.met.pageEjects.Inc()
		}
		if pi := impacted[k]; !pi.stamp.IsZero() {
			lat := now.Sub(pi.stamp)
			if lat < 0 {
				lat = 0
			}
			// The staleness sample carries its trace as an exemplar: the
			// histogram bucket remembers the worst observation's trace ID,
			// so an operator can go from "p99 spiked" straight to the
			// commit-to-eject story of a page that caused it.
			inv.met.staleness.ObserveDurationExemplar(lat, pi.ctx.Trace)
			if pm, ok := inv.cfg.Map.Get(k); ok && pm.Servlet != "" {
				inv.stalenessFor(pm.Servlet).ObserveDurationExemplar(lat, pi.ctx.Trace)
			}
		}
		inv.cfg.Map.Remove(k)
		inv.registry.UnlinkPage(k)
	}
	if len(keys) > 0 {
		// ejectCtxs maps each key with a recording trace to its context; the
		// ejector propagates them downstream (CacheEjector records the
		// terminal webcache.eject span, HTTPEjector ships them in the
		// X-Cacheportal-Trace header so the remote cache can).
		var ejectCtxs map[string]trace.Context
		if tr != nil {
			for _, k := range keys {
				if ctx := impacted[k].ctx; tr.Recording(ctx.Trace) {
					if ejectCtxs == nil {
						ejectCtxs = make(map[string]trace.Context)
					}
					ejectCtxs[k] = ctx
				}
			}
		}
		ejectStart := time.Now()
		err := inv.eject(keys, ejectCtxs)
		now := time.Now()
		inv.met.ejectSeconds.ObserveDuration(now.Sub(ejectStart))
		if len(ejectCtxs) > 0 {
			attrs := []trace.Attr{{K: "keys", V: strconv.Itoa(len(keys))}}
			if err != nil {
				attrs = append(attrs, trace.Attr{K: "err", V: "1"})
			}
			eachDistinctTrace(ejectCtxs, func(ctx trace.Context) {
				tr.Record(ctx, "invalidator.eject", ejectStart, now, attrs...)
			})
		}
		if err != nil {
			rep.EjectErr = err
			inv.ejectFailStreak++
			// A KeyedEjectError narrows the retry set to the keys that
			// actually failed; keys every cache accepted are finished now.
			failed := keys
			var ke KeyedEjectError
			if errors.As(err, &ke) {
				failed = ke.FailedKeys()
			}
			failedSet := make(map[string]bool, len(failed))
			for _, k := range failed {
				failedSet[k] = true
			}
			for _, k := range keys {
				if failedSet[k] {
					continue
				}
				finish(k, now)
				rep.Invalidated++
			}
			sort.Strings(failed)
			inv.pending = dedupeSorted(failed)
			stamps := make(map[string]time.Time, len(inv.pending))
			ctxs := make(map[string]trace.Context, len(inv.pending))
			for _, k := range inv.pending {
				pi := impacted[k]
				stamps[k] = pi.stamp
				if pi.ctx.Valid() {
					ctxs[k] = pi.ctx
					// Force-sample the trace behind a failed eject: its page
					// is now an outlier in the making, and the retry/breaker
					// spans of later cycles are exactly the evidence an
					// operator needs — record them even if the head-sampling
					// decision at commit time was "skip".
					tr.Force(pi.ctx.Trace)
				}
			}
			inv.pendingStamp = stamps
			inv.pendingCtx = ctxs
			// Circuit breaker: precise ejection has now failed for several
			// consecutive cycles, so stop trusting it and flush the caches
			// outright. A successful bulk flush discharges every pending
			// key at once (flushed pages cannot be stale); a failed one
			// leaves the retry state untouched for the next cycle.
			if bulk, ok := inv.cfg.Ejector.(BulkEjector); ok &&
				inv.cfg.BreakerThreshold > 0 && inv.ejectFailStreak >= inv.cfg.BreakerThreshold {
				inv.met.breakerTrips.Inc()
				breakerStart := time.Now()
				berr := bulk.EjectAll()
				breakerEnd := time.Now()
				if tr != nil {
					battrs := []trace.Attr{{K: "streak", V: strconv.Itoa(inv.ejectFailStreak)}}
					if berr != nil {
						battrs = append(battrs, trace.Attr{K: "err", V: "1"})
					}
					eachDistinctTrace(inv.pendingCtx, func(ctx trace.Context) {
						ctx = tr.Record(ctx, "invalidator.breaker", breakerStart, breakerEnd, battrs...)
						if berr == nil {
							// The flush landed: the page is gone from every
							// cache, which completes this trace's story.
							tr.RecordTerminal(ctx, "webcache.flush", breakerEnd, breakerEnd)
						}
					})
				}
				if berr == nil {
					for _, k := range inv.pending {
						finish(k, now)
						rep.Invalidated++
					}
					rep.Conservative += len(inv.pending)
					inv.pending = nil
					inv.pendingStamp = make(map[string]time.Time)
					inv.pendingCtx = make(map[string]trace.Context)
					inv.ejectFailStreak = 0
				}
			}
		} else {
			inv.ejectFailStreak = 0
			for _, k := range keys {
				finish(k, now)
			}
			rep.Invalidated = len(keys)
		}
	}

	// 5. Refresh discovered policies (§4.1.4).
	inv.policies.Evaluate(inv.registry)

	// 6. Self-tuning: materialize advised indexes so future residues are
	// answered inside the invalidator.
	if inv.cfg.AutoIndex && inv.cfg.Poller != nil {
		for _, adv := range inv.Advise() {
			if inv.indexes.Size(adv.Table, adv.Column) >= 0 {
				continue // already maintained
			}
			// Best effort: a failed load just means we keep polling.
			inv.indexes.Maintain(inv.cfg.Poller, adv.Table, adv.Column)
		}
	}

	rep.Duration = time.Since(start)
	return rep, nil
}

// eject dispatches to the ejector, preferring the traced entry point when
// the ejector supports it and there is context to propagate.
func (inv *Invalidator) eject(keys []string, ctxs map[string]trace.Context) error {
	if len(ctxs) > 0 {
		if te, ok := inv.cfg.Ejector.(TracedEjector); ok {
			return te.EjectTraced(keys, ctxs)
		}
	}
	return inv.cfg.Ejector.Eject(keys)
}

// eachDistinctTrace calls fn once per distinct trace among the contexts (a
// cycle's batch often maps many keys to one commit; phase spans are
// per-trace, not per-key).
func eachDistinctTrace(ctxs map[string]trace.Context, fn func(trace.Context)) {
	seen := make(map[int64]bool, len(ctxs))
	for _, ctx := range ctxs {
		if !ctx.Valid() || seen[ctx.Trace] {
			continue
		}
		seen[ctx.Trace] = true
		fn(ctx)
	}
}

func dedupeSorted(keys []string) []string {
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return out
}

// ingestMap consumes QI/URL map changes, registering instances and marking
// unanalyzable pages conservative.
func (inv *Invalidator) ingestMap(rep *Report) {
	changes, v, resync := inv.cfg.Map.Changes(inv.mapVersion)
	if resync {
		changes, v = inv.cfg.Map.Snapshot()
	}
	inv.mapVersion = v
	for _, pm := range changes {
		rep.PagesIngested++
		inv.registry.RelinkPage(pm.CacheKey)
		for _, q := range pm.Queries {
			stmt, err := sqlparser.Parse(q.SQL)
			if err != nil {
				inv.registry.MarkConservative(pm.CacheKey)
				inv.policies.noteConservativeServlet(pm.Servlet)
				continue
			}
			switch stmt.(type) {
			case *sqlparser.SelectStmt:
				inst, _, err := inv.registry.ObserveInstance(q.SQL, pm.CacheKey)
				if err != nil {
					inv.registry.MarkConservative(pm.CacheKey)
					inv.policies.noteConservativeServlet(pm.Servlet)
					continue
				}
				inv.policies.noteServletType(pm.Servlet, inst.Type)
			case *sqlparser.InsertStmt, *sqlparser.UpdateStmt, *sqlparser.DeleteStmt,
				*sqlparser.CreateTableStmt, *sqlparser.DropTableStmt, *sqlparser.CreateIndexStmt:
				// Writes don't feed page content; their effects arrive via
				// the update log.
			}
		}
	}
}

// typeBatchResult is the outcome of evaluating one delta table's tuples
// against one query type.
type typeBatchResult struct {
	impacted       []*Instance
	localDecisions int
	conservative   int
	// polls/pollTime count the polling queries this unit itself issued
	// (replays and polls awaited from other units are free, as in the
	// sequential accounting).
	polls    int
	pollTime time.Duration
	// Predicate-index accounting for this unit (all zero in scan mode).
	idxProbes        int
	idxBucketHits    int
	idxIntervalHits  int
	idxResidualEvals int
	idxScanFallbacks int
}

// scheduleTypes orders query types for processing within a cycle — the
// §4.2.2 schedule generation: each type's priority is the number of live
// cached instances it protects, discounted by its historical polling cost.
// When the polling budget runs out mid-cycle, the remaining (lowest-value)
// types fall back to conservative invalidation, so the budget is spent
// where precision saves the most cache content. Sorts types in place
// (stable, priority descending) using the invalidator's scratch buffer, so
// the per-delta schedule build does not allocate.
func (inv *Invalidator) scheduleTypes(types []*QueryType) []*QueryType {
	if len(types) < 2 {
		return types
	}
	prio := inv.schedPrio[:0]
	inv.registry.withLock(func() {
		for _, qt := range types {
			st := qt.stats
			value := float64(st.LiveInstances)
			cost := 1.0
			if st.Polls > 0 {
				// Mean poll time in milliseconds, floored at 1.
				ms := float64(st.PollTime.Milliseconds()) / float64(st.Polls)
				if ms > 1 {
					cost = ms
				}
			}
			prio = append(prio, value/cost)
		}
	})
	inv.schedPrio = prio
	// Stable insertion sort, descending: the type lists per table are
	// small, and equal priorities keep their ID order.
	for i := 1; i < len(types); i++ {
		for j := i; j > 0 && prio[j] > prio[j-1]; j-- {
			prio[j], prio[j-1] = prio[j-1], prio[j]
			types[j], types[j-1] = types[j-1], types[j]
		}
	}
	return types
}

// lowerTableName lower-cases ASCII table names.
func lowerTableName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c - 'A' + 'a'
		}
	}
	return string(b)
}

// evalSource selects how evalType enumerates candidate instances: a
// pre-materialized scan snapshot (index disabled) or the predicate index,
// which both tracks the live set and answers per-occurrence probes.
type evalSource struct {
	insts []*Instance // scan mode: live snapshot, ArgsKey-ordered
	pi    *predIndex  // indexed mode (insts unused when non-nil)
}

// evalType runs the grouped analysis of §5.2/§4.2 for one (type, delta
// table) pair. delTables names tables with deletions in this batch (for the
// post-state polling hazard). Safe for concurrent invocation across
// distinct (type, delta) units: shared state is reached only through the
// thread-safe pollRun, advice tracker, per-type plan cache, and the
// RWMutex-guarded predicate index.
//
// The two evalSource modes decide the identical instance set. Per tuple
// and occurrence, the scan evaluates every not-yet-impacted instance's
// localParam conjuncts in order; the probe answers the FIRST conjunct from
// the index — Certain entries have it provably TRUE (remaining conjuncts
// are verified as usual), Residual entries (cross-kind comparisons that
// error, unbindable placeholders) are evaluated from scratch, and entries
// the index omits are exactly those whose first conjunct is false or
// unknown, which the scan would have dropped anyway.
func (inv *Invalidator) evalType(qt *QueryType, d *engine.Delta, src evalSource, pr *pollRun, delTables map[string]bool) typeBatchResult {
	var res typeBatchResult
	plan := qt.planFor(d.Table, d.Columns)
	indexed := src.pi != nil
	var ti *typeTableIndex
	if indexed {
		ti = src.pi.tableFor(qt, d.Table, d.Columns, plan)
	}

	allTables := qt.Template.Tables()
	singleTable := len(allTables) == 1

	// deletionHazard: a deleted tuple's join counterpart may itself have
	// been deleted in this batch, in which case post-state polling would
	// miss the pre-state match. True when another referenced table (or
	// this table again, for self-joins) saw deletions.
	selfCount := 0
	for _, ref := range allTables {
		if lowerTableName(ref.Name) == lowerTableName(d.Table) {
			selfCount++
		}
	}
	deletionHazard := false
	for _, t := range qt.Tables {
		if t == lowerTableName(d.Table) {
			if selfCount >= 2 && delTables[t] {
				deletionHazard = true
			}
			continue
		}
		if delTables[t] {
			deletionHazard = true
		}
	}

	// impacted tracks instances already proven impacted; they need no
	// further tuples. liveTotal is the live population, for the all-done
	// early exit.
	liveTotal := len(src.insts)
	if indexed {
		liveTotal = src.pi.liveCount(qt)
	}
	impacted := make(map[*Instance]bool, 8)
	impact := func(inst *Instance, conservative bool) {
		if impacted[inst] {
			return
		}
		impacted[inst] = true
		res.impacted = append(res.impacted, inst)
		if conservative {
			res.conservative++
		}
	}
	forEachLive := func(fn func(*Instance)) {
		if indexed {
			src.pi.forEachLive(qt, fn)
		} else {
			for _, inst := range src.insts {
				fn(inst)
			}
		}
	}
	impactAll := func(conservative bool) {
		forEachLive(func(inst *Instance) { impact(inst, conservative) })
	}

	if plan.conservative {
		impactAll(true)
		return res
	}

	type tuple struct {
		row     mem.Row
		deleted bool
	}
	tuples := make([]tuple, 0, len(d.Plus)+len(d.Minus))
	for _, r := range d.Plus {
		tuples = append(tuples, tuple{row: r})
	}
	for _, r := range d.Minus {
		tuples = append(tuples, tuple{row: r, deleted: true})
	}

	candidates := make([]*Instance, 0, 16)
	var probed predindex.Result[*Instance]
	for _, tp := range tuples {
		row := tp.row
		if len(impacted) >= liveTotal {
			break
		}
		for occIdx, occ := range plan.occurrences {
			if len(impacted) >= liveTotal {
				break
			}
			if occ.conservative {
				impactAll(true)
				break
			}
			env, err := deltaEnv(occ.name, d.Columns, row)
			if err != nil {
				impactAll(true)
				break
			}
			// Shared local conjuncts: one failure proves no instance can be
			// affected through this occurrence by this tuple.
			dead := false
			for _, c := range occ.localConst {
				ok, err := evalLocal(c, env)
				if err != nil {
					impactAll(true)
					dead = true
					break
				}
				if !ok {
					dead = true
					break
				}
			}
			if dead {
				if len(impacted) >= liveTotal {
					break
				}
				continue
			}

			// Per-instance local parameterized conjuncts (group processing:
			// evaluated client-side, no DBMS involved). evalInst finishes
			// one instance's conjuncts starting at `from`; an evaluation
			// error impacts it conservatively, exactly as the scan does.
			evalInst := func(inst *Instance, from int) bool {
				for _, c := range occ.localParam[from:] {
					bound := bindPlaceholders(c, inst.Args)
					ok, err := evalLocal(bound, env)
					if err != nil {
						impact(inst, true)
						return false
					}
					if !ok {
						return false
					}
				}
				return true
			}

			candidates = candidates[:0]
			if !indexed {
				for _, inst := range src.insts {
					if !impacted[inst] && evalInst(inst, 0) {
						candidates = append(candidates, inst)
					}
				}
			} else {
				switch oi := ti.occs[occIdx]; oi.mode {
				case occAll:
					forEachLive(func(inst *Instance) {
						if !impacted[inst] {
							candidates = append(candidates, inst)
						}
					})
				case occScan:
					res.idxScanFallbacks++
					forEachLive(func(inst *Instance) {
						if !impacted[inst] && evalInst(inst, 0) {
							candidates = append(candidates, inst)
						}
					})
				default: // occProbe
					res.idxProbes++
					probed.Reset()
					src.pi.probe(oi, row[oi.col], &probed)
					if oi.interval {
						res.idxIntervalHits += len(probed.Certain)
					} else {
						res.idxBucketHits += len(probed.Certain)
					}
					res.idxResidualEvals += len(probed.Residual)
					for _, inst := range probed.Certain {
						// First conjunct proven TRUE by the index; verify
						// the rest.
						if !impacted[inst] && evalInst(inst, 1) {
							candidates = append(candidates, inst)
						}
					}
					for _, inst := range probed.Residual {
						if !impacted[inst] && evalInst(inst, 0) {
							candidates = append(candidates, inst)
						}
					}
				}
			}
			if len(candidates) == 0 {
				continue
			}
			sort.Slice(candidates, func(i, j int) bool { return candidates[i].ArgsKey < candidates[j].ArgsKey })

			if len(occ.residualConst) == 0 && len(occ.residualParam) == 0 {
				// Entirely local: certain impact (Example 4.1's first case).
				res.localDecisions++
				for _, inst := range candidates {
					impact(inst, false)
				}
				continue
			}

			// Post-state polling cannot witness a join partner deleted in
			// the same batch: deleted tuples with a deletion hazard are
			// invalidated conservatively instead of polled.
			if tp.deleted && deletionHazard {
				for _, inst := range candidates {
					impact(inst, true)
				}
				continue
			}

			// Maintained-index shortcut for "∃ S.c = v" residues.
			if table, col, v, ok := simpleEquality(occ, d.Columns, row, singleTable); ok {
				if exists, covered := pr.existence(table, col, v); covered {
					res.localDecisions++
					if exists {
						for _, inst := range candidates {
							impact(inst, false)
						}
					}
					continue
				}
				inv.advice.note(table, col)
			}

			result, err := pr.execPlan(occ.poll, row, &res)
			if err != nil {
				for _, inst := range candidates {
					impact(inst, true)
				}
				continue
			}
			if occ.poll.existenceOnly {
				if len(result.Rows) > 0 {
					for _, inst := range candidates {
						impact(inst, false)
					}
				}
				continue
			}
			// Finish per-instance parameterized residues against the
			// polled rows.
			for _, inst := range candidates {
				matched, bad := false, false
				for _, prow := range result.Rows {
					all := true
					for _, c := range occ.residualParam {
						e := bindPlaceholders(c, inst.Args)
						e = substituteOccurrence(e, occ.name, d.Columns, row, singleTable)
						e = substituteRefs(e, occ.residualCols, prow)
						v, err := engine.Eval(e, engine.Env{})
						if err != nil {
							bad = true
							break
						}
						t, err := engine.Truth(v)
						if err != nil {
							bad = true
							break
						}
						if t != engine.True {
							all = false
							break
						}
					}
					if bad {
						break
					}
					if all {
						matched = true
						break
					}
				}
				if bad {
					impact(inst, true)
				} else if matched {
					impact(inst, false)
				}
			}
		}
	}
	return res
}

// recordTypeBatch folds one batch's outcome into the type's statistics
// and the global predicate-index counters.
func (inv *Invalidator) recordTypeBatch(qt *QueryType, nInsts int, res typeBatchResult, elapsed time.Duration) {
	if res.idxProbes > 0 || res.idxScanFallbacks > 0 {
		inv.met.predProbes.Add(int64(res.idxProbes))
		inv.met.predBucketHits.Add(int64(res.idxBucketHits))
		inv.met.predIntervalHits.Add(int64(res.idxIntervalHits))
		inv.met.predResiduals.Add(int64(res.idxResidualEvals))
		inv.met.predScanFallbacks.Add(int64(res.idxScanFallbacks))
	}
	inv.registry.withLock(func() {
		st := &qt.stats
		st.UpdateBatches++
		st.Impacts += int64(len(res.impacted))
		st.Conservative += int64(res.conservative)
		st.LocalDecisions += int64(res.localDecisions)
		st.Polls += int64(res.polls)
		st.PollTime += res.pollTime
		st.IndexProbes += int64(res.idxProbes)
		st.IndexBucketHits += int64(res.idxBucketHits)
		st.IndexIntervalHits += int64(res.idxIntervalHits)
		st.IndexResidualEvals += int64(res.idxResidualEvals)
		st.IndexScanFallbacks += int64(res.idxScanFallbacks)
		st.InvalidationTime += elapsed
		if elapsed > st.MaxInvalidation {
			st.MaxInvalidation = elapsed
		}
		if nInsts > 0 {
			ratio := float64(len(res.impacted)) / float64(nInsts)
			st.InvalidationRatioEWMA = st.InvalidationRatioEWMA*7/8 + ratio/8
		}
	})
}
