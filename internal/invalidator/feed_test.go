package invalidator

import (
	"encoding/json"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sniffer"
	"repro/internal/wire"
)

// safeEjector records ejected keys under a lock: event-driven cycles run on
// their own goroutine.
type safeEjector struct {
	mu   sync.Mutex
	keys []string
}

func (e *safeEjector) Eject(keys []string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.keys = append(e.keys, keys...)
	return nil
}

func (e *safeEjector) sorted() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := append([]string(nil), e.keys...)
	sort.Strings(out)
	return out
}

func (e *safeEjector) count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.keys)
}

// runFeedWorkload runs one fixed workload either pull-style (writes, then a
// single manual Cycle) or event-driven (StartEventDriven with an effectively
// disabled timer, so only log events trigger cycles) and returns the sorted
// set of ejected pages.
func runFeedWorkload(t *testing.T, workers int, eventDriven bool) []string {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	ej := &safeEjector{}
	pollConn, err := driver.DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	inv := New(Config{
		Map:     m,
		Puller:  EngineLogPuller{Log: db.Log()},
		Poller:  pollConn,
		Ejector: ej,
		Workers: workers,
	})
	if _, err := inv.Cycle(); err != nil { // swallow schema records
		t.Fatal(err)
	}
	record := func(key, sql string) {
		m.Record(key, "servlet", 1, []sniffer.QueryInstance{{SQL: sql, LogID: 1}})
	}
	record("page:corolla", "SELECT maker, model, price FROM Car WHERE model = 'Corolla'")
	record("page:civic", "SELECT maker, model, price FROM Car WHERE model = 'Civic'")
	record("page:expensive", paperQuery1)
	record("page:epa", "SELECT model, EPA FROM Mileage WHERE EPA > 30")

	writes := []string{
		"INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)",
		"INSERT INTO Mileage VALUES ('Prius', 50)",
		"DELETE FROM Car WHERE model = 'Civic'",
	}
	if !eventDriven {
		for _, w := range writes {
			if _, err := db.ExecSQL(w); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := inv.Cycle(); err != nil {
			t.Fatal(err)
		}
		return ej.sorted()
	}

	stop := make(chan struct{})
	defer close(stop)
	inv.StartEventDriven(time.Hour, 2*time.Millisecond, EngineLogPuller{Log: db.Log()}, stop)
	for _, w := range writes {
		if _, err := db.ExecSQL(w); err != nil {
			t.Fatal(err)
		}
	}
	// Converge: the eject set must become non-empty and then hold still.
	deadline := time.Now().Add(10 * time.Second)
	stableSince := time.Now()
	last := ej.count()
	for time.Now().Before(deadline) {
		n := ej.count()
		if n != last {
			last, stableSince = n, time.Now()
		}
		if n > 0 && time.Since(stableSince) > 200*time.Millisecond {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return ej.sorted()
}

// TestPushPullEquivalence is the tentpole's behavior-preservation property:
// at every worker count, the event-driven trigger must invalidate exactly the
// pages a single pull cycle would — only the staleness window changes.
func TestPushPullEquivalence(t *testing.T) {
	want := []string{"page:civic", "page:epa", "page:expensive"}
	for _, workers := range []int{1, 4, 8} {
		pull := runFeedWorkload(t, workers, false)
		push := runFeedWorkload(t, workers, true)
		if !equalStrings(pull, want) {
			t.Fatalf("workers=%d pull ejected %v, want %v", workers, pull, want)
		}
		if !equalStrings(push, pull) {
			t.Fatalf("workers=%d push ejected %v, pull ejected %v", workers, push, pull)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chanNotifier is a hand-cranked LogNotifier with the close-and-replace
// broadcast semantics of the real logs.
type chanNotifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func newChanNotifier() *chanNotifier {
	return &chanNotifier{ch: make(chan struct{})}
}

func (n *chanNotifier) Changed() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ch
}

func (n *chanNotifier) Fire() {
	n.mu.Lock()
	defer n.mu.Unlock()
	close(n.ch)
	n.ch = make(chan struct{})
}

// TestRunLoopTimerFallback pins the degradation path: with a notifier that
// never fires (an old server, a feed in fallback), the interval timer alone
// keeps cycles coming.
func TestRunLoopTimerFallback(t *testing.T) {
	var cycles atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunLoop(5*time.Millisecond, 50*time.Millisecond, newChanNotifier(), stop,
			func() error { cycles.Add(1); return nil }, nil)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for cycles.Load() < 3 {
		if time.Now().After(deadline) {
			t.Fatal("timer fallback never cycled")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
}

// TestRunLoopCoalescesBurst: a burst of wakeups within the min-gap window
// must cost one cycle, with the burst size observed.
func TestRunLoopCoalescesBurst(t *testing.T) {
	n := newChanNotifier()
	var cycles atomic.Int64
	var wakes atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunLoop(time.Hour, 100*time.Millisecond, n, stop,
			func() error { cycles.Add(1); return nil },
			func(w int) { wakes.Store(int64(w)) })
	}()
	// Wait for the catch-up cycle: from then on the loop holds a
	// notification channel, so no fire below can be missed.
	deadline := time.Now().Add(10 * time.Second)
	for cycles.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("catch-up cycle never ran")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		n.Fire()
		time.Sleep(2 * time.Millisecond)
	}
	// Exactly one more cycle for the whole burst.
	for cycles.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("event never triggered a cycle")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond) // past the coalescing window
	if c := cycles.Load(); c != 2 {
		t.Fatalf("burst of 5 wakeups cost %d cycles, want 2 (catch-up + burst)", c)
	}
	if w := wakes.Load(); w < 1 {
		t.Fatalf("onBurst observed %d wakes", w)
	}
	close(stop)
	<-done
}

// TestWireTruncationFlushExactlyOnce is the satellite regression: a server
// whose log trimmed past the invalidator's cursor — and whose Truncated flag
// was lost (modeling a reconnect mid-pull) — must still trigger the
// conservative flush, and exactly one cycle of it: the FirstLSN context makes
// truncation a pure function of the cursor.
func TestWireTruncationFlushExactlyOnce(t *testing.T) {
	// Scripted server: the log retains LSNs 50..51 (FirstLSN 50), and always
	// reports Truncated=false.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				dec, enc := json.NewDecoder(c), json.NewEncoder(c)
				for {
					var req wire.Request
					if dec.Decode(&req) != nil {
						return
					}
					resp := wire.Response{NextLSN: 52, FirstLSN: 50}
					for lsn := req.LSN; lsn <= 51; lsn++ {
						if lsn < 50 {
							continue
						}
						resp.Records = append(resp.Records, wire.LogRecord{LSN: lsn, Table: "t", Op: "INSERT"})
					}
					enc.Encode(resp)
				}
			}(c)
		}
	}()

	cl, err := wire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m := sniffer.NewQIURLMap()
	ej := &safeEjector{}
	inv := New(Config{Map: m, Puller: WireLogPuller{Client: cl}, Ejector: ej})
	m.Record("p1", "servlet", 1, []sniffer.QueryInstance{{SQL: "SELECT a FROM t WHERE a = 1", LogID: 1}})
	m.Record("p2", "servlet", 1, []sniffer.QueryInstance{{SQL: "SELECT a FROM t WHERE a = 2", LogID: 2}})

	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("lost Truncated flag not recomputed from FirstLSN")
	}
	if got := ej.sorted(); !equalStrings(got, []string{"p1", "p2"}) {
		t.Fatalf("conservative flush ejected %v", got)
	}

	// Re-register and cycle again from the advanced cursor: no second flush.
	m.Record("p1", "servlet", 1, []sniffer.QueryInstance{{SQL: "SELECT a FROM t WHERE a = 1", LogID: 1}})
	m.Record("p2", "servlet", 1, []sniffer.QueryInstance{{SQL: "SELECT a FROM t WHERE a = 2", LogID: 2}})
	rep, err = inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated {
		t.Fatal("truncation reported twice for one trim")
	}
	if n := ej.count(); n != 2 {
		t.Fatalf("flush repeated: %d keys ejected in total", n)
	}
}
