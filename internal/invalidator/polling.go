package invalidator

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sqlparser"
)

// Poller executes polling queries (§4.2.3). driver.Conn satisfies it, so
// polls can go to the real DBMS, to a middle-tier data cache, or (in tests)
// to an in-process database.
type Poller interface {
	Query(sql string) (*engine.Result, error)
}

// StmtPoller is an optional Poller extension for compiled poll plans: the
// invalidator hands over the template statement, its fingerprint, and the
// bound argument vector, so the poller can execute through a prepared path
// (engine statement cache, wire EXECUTE) without rendering or re-parsing
// SQL text. Pollers that don't implement it receive rendered text via Query.
type StmtPoller interface {
	QueryStmt(fingerprint string, tmpl *sqlparser.SelectStmt, args []mem.Value) (*engine.Result, error)
}

// pollRun wraps a Poller with per-cycle deduplication, timing, budget
// enforcement and the maintained-index shortcut. One pollRun lives for one
// invalidation cycle. It is safe for concurrent use by the cycle's eval
// workers: completed queries are replayed from the per-cycle cache, and a
// query text already executing is awaited rather than re-issued (in-flight
// deduplication), so each distinct polling query reaches the DBMS at most
// once per cycle regardless of worker count.
type pollRun struct {
	poller  Poller
	indexes *IndexSet

	mu    sync.Mutex
	calls map[string]*pollCall // poll identity → completed or in-flight call

	polls     atomic.Int64
	prepared  atomic.Int64 // polls issued through the StmtPoller fast path
	deduped   atomic.Int64 // polls answered by replay/await instead of the DBMS
	denied    atomic.Int64 // polls refused because the budget ran out
	indexHits atomic.Int64
	pollTime  atomic.Int64 // nanoseconds across all issued polls

	// latHist, when non-nil, receives each issued poll's round-trip time.
	latHist *obs.Histogram

	// Budget (§4.2.2's real-time trade-off): a shared token bucket of
	// polling time, drained by every issued poll, plus the wall-clock
	// deadline the sequential implementation enforced. When either is
	// exhausted exec returns errBudget and the caller degrades to
	// conservative invalidation. The bucket makes the budget mean "total
	// DBMS polling work per cycle" even when many workers poll at once;
	// the deadline keeps the cycle's wall-clock bound.
	bucket   atomic.Int64 // remaining nanoseconds; only read when bounded
	bounded  bool
	deadline time.Time
}

// pollCall is one deduplicated polling query: in flight until ready is
// closed, then a completed cache entry (including failures, which replay
// the same error — the sequential implementation's deny list).
type pollCall struct {
	ready chan struct{}
	res   *engine.Result
	err   error
}

type budgetError struct{}

func (budgetError) Error() string { return "invalidator: polling budget exhausted" }

// errBudget marks budget exhaustion.
var errBudget = budgetError{}

func newPollRun(p Poller, idx *IndexSet, budget time.Duration, latHist *obs.Histogram) *pollRun {
	r := &pollRun{
		poller:  p,
		indexes: idx,
		calls:   make(map[string]*pollCall),
		latHist: latHist,
	}
	if budget > 0 {
		r.bounded = true
		r.bucket.Store(int64(budget))
		r.deadline = time.Now().Add(budget)
	}
	return r
}

func (r *pollRun) overBudget() bool {
	if !r.bounded {
		return false
	}
	return r.bucket.Load() <= 0 || time.Now().After(r.deadline)
}

// execPlan runs (or replays, or awaits) a compiled polling query for one
// delta tuple. Deduplication keys on (template fingerprint, normalized
// args), not on rendered text, so polls differing only in literal spelling
// (1 vs 1.0, quote style) coalesce. Per-unit poll counts and timing are
// accumulated into st (only for polls this call actually issued, mirroring
// the sequential accounting where replays were free).
func (r *pollRun) execPlan(pp *pollPlan, row mem.Row, st *typeBatchResult) (*engine.Result, error) {
	args := pp.bindArgs(row)
	key := pp.key(args)
	r.mu.Lock()
	if call, ok := r.calls[key]; ok {
		r.mu.Unlock()
		r.deduped.Add(1)
		<-call.ready // completed calls have a closed channel: no wait
		return call.res, call.err
	}
	if r.overBudget() {
		r.mu.Unlock()
		r.denied.Add(1)
		return nil, errBudget
	}
	if r.poller == nil {
		call := &pollCall{ready: closedChan, err: analysisError{err: errNoPoller}}
		r.calls[key] = call
		r.mu.Unlock()
		return nil, call.err
	}
	call := &pollCall{ready: make(chan struct{})}
	r.calls[key] = call
	r.mu.Unlock()

	start := time.Now()
	if sp, ok := r.poller.(StmtPoller); ok {
		r.prepared.Add(1)
		call.res, call.err = sp.QueryStmt(pp.fingerprint, pp.tmpl, args)
	} else if sql, rerr := pp.render(args); rerr != nil {
		call.err = analysisError{err: rerr}
	} else {
		call.res, call.err = r.poller.Query(sql)
	}
	took := time.Since(start)
	if r.bounded {
		r.bucket.Add(-int64(took))
	}
	r.polls.Add(1)
	r.pollTime.Add(int64(took))
	if r.latHist != nil {
		r.latHist.ObserveDuration(took)
	}
	st.polls++
	st.pollTime += took
	close(call.ready)
	return call.res, call.err
}

// closedChan is a pre-closed channel shared by calls that complete at
// registration time (no poller configured).
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// existence answers "does any row satisfy table.column = v" using a
// maintained index when available; ok=false means no index covers it.
func (r *pollRun) existence(table, column string, v mem.Value) (exists, ok bool) {
	if r.indexes == nil {
		return false, false
	}
	exists, ok = r.indexes.Contains(table, column, v)
	if ok {
		r.indexHits.Add(1)
	}
	return exists, ok
}

type noPollerError struct{}

func (noPollerError) Error() string { return "no poller configured" }

var errNoPoller = noPollerError{}
