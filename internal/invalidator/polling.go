package invalidator

import (
	"time"

	"repro/internal/engine"
	"repro/internal/mem"
)

// Poller executes polling queries (§4.2.3). driver.Conn satisfies it, so
// polls can go to the real DBMS, to a middle-tier data cache, or (in tests)
// to an in-process database.
type Poller interface {
	Query(sql string) (*engine.Result, error)
}

// pollRun wraps a Poller with per-cycle deduplication, timing, budget
// enforcement and the maintained-index shortcut. One pollRun lives for one
// invalidation cycle.
type pollRun struct {
	poller  Poller
	indexes *IndexSet
	cache   map[string]*engine.Result
	deny    map[string]error

	polls     int
	indexHits int
	pollTime  time.Duration

	// budget: when the deadline passes, exec returns errBudget and the
	// caller falls back to conservative invalidation (§4.2.2's real-time
	// trade-off).
	deadline time.Time
}

type budgetError struct{}

func (budgetError) Error() string { return "invalidator: polling budget exhausted" }

// errBudget marks budget exhaustion.
var errBudget = budgetError{}

func newPollRun(p Poller, idx *IndexSet, budget time.Duration) *pollRun {
	r := &pollRun{
		poller:  p,
		indexes: idx,
		cache:   make(map[string]*engine.Result),
		deny:    make(map[string]error),
	}
	if budget > 0 {
		r.deadline = time.Now().Add(budget)
	}
	return r
}

func (r *pollRun) overBudget() bool {
	return !r.deadline.IsZero() && time.Now().After(r.deadline)
}

// exec runs (or replays) a polling query.
func (r *pollRun) exec(sql string) (*engine.Result, error) {
	if res, ok := r.cache[sql]; ok {
		return res, nil
	}
	if err, ok := r.deny[sql]; ok {
		return nil, err
	}
	if r.overBudget() {
		return nil, errBudget
	}
	if r.poller == nil {
		err := analysisError{err: errNoPoller}
		r.deny[sql] = err
		return nil, err
	}
	start := time.Now()
	res, err := r.poller.Query(sql)
	r.pollTime += time.Since(start)
	r.polls++
	if err != nil {
		r.deny[sql] = err
		return nil, err
	}
	r.cache[sql] = res
	return res, nil
}

// existence answers "does any row satisfy table.column = v" using a
// maintained index when available; ok=false means no index covers it.
func (r *pollRun) existence(table, column string, v mem.Value) (exists, ok bool) {
	if r.indexes == nil {
		return false, false
	}
	exists, ok = r.indexes.Contains(table, column, v)
	if ok {
		r.indexHits++
	}
	return exists, ok
}

type noPollerError struct{}

func (noPollerError) Error() string { return "no poller configured" }

var errNoPoller = noPollerError{}
