package invalidator

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sniffer"
)

// TestFlakyPollerNeverStale: a poller that fails intermittently must push
// the invalidator toward conservative invalidation, never staleness.
func TestFlakyPollerNeverStale(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE R (a INT, b INT);
		CREATE TABLE S (b INT, d INT);
	`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		db.ExecSQL(fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", rng.Intn(10), rng.Intn(5)))
		db.ExecSQL(fmt.Sprintf("INSERT INTO S VALUES (%d, %d)", rng.Intn(5), rng.Intn(10)))
	}
	flaky := pollerFunc(func(sql string) (*engine.Result, error) {
		if rng.Intn(2) == 0 {
			return nil, errors.New("connection reset")
		}
		return db.ExecSQL(sql)
	})
	m := sniffer.NewQIURLMap()
	ejected := map[string]bool{}
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Poller: flaky,
		Ejector: FuncEjector(func(keys []string) error {
			for _, k := range keys {
				ejected[k] = true
			}
			return nil
		}),
	})
	inv.Cycle()

	pages := map[string]string{}
	for round := 0; round < 10; round++ {
		before := map[string]string{}
		key := fmt.Sprintf("p%d", round)
		sql := fmt.Sprintf("SELECT R.a FROM R, S WHERE R.b = S.b AND R.a > %d", rng.Intn(10))
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
		pages[key] = sql
		m.Record(key, "s", int64(round), []sniffer.QueryInstance{{SQL: sql}})
		for k, q := range pages {
			res, _ := db.ExecSQL(q)
			before[k] = resultFingerprint(res)
		}
		inv.Cycle()

		db.ExecSQL(fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", rng.Intn(10), rng.Intn(5)))
		db.ExecSQL(fmt.Sprintf("DELETE FROM S WHERE d = %d", rng.Intn(10)))
		ejected = map[string]bool{}
		inv.Cycle()

		for k, q := range pages {
			res, _ := db.ExecSQL(q)
			if resultFingerprint(res) != before[k] && !ejected[k] {
				t.Fatalf("round %d: stale page %s (%s)", round, k, q)
			}
		}
		for k := range ejected {
			delete(pages, k)
		}
	}
}

// TestConcurrentRecordingDuringCycles: the sniffer keeps recording pages
// while the invalidator cycles — exercises the QIURLMap/Registry locking.
func TestConcurrentRecordingDuringCycles(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript("CREATE TABLE R (a INT, b INT)"); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	inv := New(Config{
		Map:     m,
		Puller:  EngineLogPuller{Log: db.Log()},
		Poller:  pollerFunc(func(sql string) (*engine.Result, error) { return db.ExecSQL(sql) }),
		Ejector: FuncEjector(func([]string) error { return nil }),
	})
	inv.Cycle()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			m.Record(fmt.Sprintf("pg%d", i%50), "s", int64(i), []sniffer.QueryInstance{
				{SQL: fmt.Sprintf("SELECT a FROM R WHERE a < %d", i%20)},
			})
		}
	}()
	for c := 0; c < 200; c++ {
		db.ExecSQL(fmt.Sprintf("INSERT INTO R VALUES (%d, %d)", c%20, c%5))
		if _, err := inv.Cycle(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestManyTypesScale registers many distinct query types and instances and
// checks a cycle stays correct and bounded.
func TestManyTypesScale(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE R (a INT, b INT);
		CREATE TABLE S (b INT, d INT);
		INSERT INTO S VALUES (0, 1), (1, 2), (2, 3), (3, 4), (4, 5);
	`); err != nil {
		t.Fatal(err)
	}
	m := sniffer.NewQIURLMap()
	ejected := 0
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Poller: pollerFunc(func(sql string) (*engine.Result, error) { return db.ExecSQL(sql) }),
		Ejector: FuncEjector(func(keys []string) error {
			ejected += len(keys)
			return nil
		}),
	})
	inv.Cycle()

	// 20 type shapes × 50 instances each.
	ops := []string{"<", "<=", ">", ">=", "=", "<>"}
	n := 0
	// 6 comparison operators × {single-table, join} = 12 distinct templates
	// (the literals canonicalize into placeholders, so instances of one
	// shape collapse into one query type).
	for shape := 0; shape < 20; shape++ {
		op := ops[shape%len(ops)]
		joined := shape >= 10
		for inst := 0; inst < 50; inst++ {
			n++
			var sql string
			if joined {
				sql = fmt.Sprintf("SELECT R.a FROM R, S WHERE R.b = S.b AND R.a %s %d AND S.d > %d",
					op, inst%25, shape%4)
			} else {
				sql = fmt.Sprintf("SELECT a FROM R WHERE a %s %d AND b = %d", op, inst%25, shape%5)
			}
			m.Record(fmt.Sprintf("pg-%d-%d", shape, inst), "s", int64(n), []sniffer.QueryInstance{{SQL: sql}})
		}
	}
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesIngested != 1000 {
		t.Fatalf("ingested %d", rep.PagesIngested)
	}
	types := inv.Registry().Types()
	if len(types) != 12 {
		t.Fatalf("types: %d, want 12", len(types))
	}

	// One update touching R: group polling must keep the poll count at the
	// type level, not the instance level.
	db.ExecSQL("INSERT INTO R VALUES (10, 2)")
	rep, err = inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Polls > len(types) {
		t.Fatalf("polls %d exceed type count %d — group processing broken", rep.Polls, len(types))
	}
	if ejected == 0 {
		t.Fatal("nothing invalidated")
	}
}
