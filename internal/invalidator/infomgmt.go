package invalidator

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// IndexSet is the information management module's maintained external
// indexes (§4, "external indexes kept within the invalidator"): multisets
// of the values of selected (table, column) pairs, initialized with one
// scan and kept current from the same delta stream the invalidator already
// consumes. An existence poll of the form "∃ row ∈ T with T.c = v" is then
// answered locally, trading invalidator memory for DBMS load — worthwhile
// when the index is small, the query frequency high, and the update cost
// low (the paper's three criteria).
type IndexSet struct {
	mu      sync.Mutex
	indexes map[string]*maintainedIndex // "table|column" lower-cased
}

type maintainedIndex struct {
	table  string
	column string
	counts map[string]int // value key → multiplicity
	size   int
}

// NewIndexSet creates an empty set.
func NewIndexSet() *IndexSet {
	return &IndexSet{indexes: make(map[string]*maintainedIndex)}
}

func indexKey(table, column string) string {
	return strings.ToLower(table) + "|" + strings.ToLower(column)
}

// Maintain starts maintaining an index over table.column, loading current
// contents through p (one polling query, §4.3).
func (s *IndexSet) Maintain(p Poller, table, column string) error {
	if p == nil {
		return fmt.Errorf("invalidator: index %s.%s: no poller", table, column)
	}
	res, err := p.Query(fmt.Sprintf("SELECT %s FROM %s", column, table))
	if err != nil {
		return fmt.Errorf("invalidator: load index %s.%s: %w", table, column, err)
	}
	idx := &maintainedIndex{table: table, column: column, counts: make(map[string]int)}
	for _, row := range res.Rows {
		if len(row) != 1 || row[0].IsNull() {
			continue
		}
		idx.counts[row[0].Key()]++
		idx.size++
	}
	s.mu.Lock()
	s.indexes[indexKey(table, column)] = idx
	s.mu.Unlock()
	return nil
}

// Drop stops maintaining the index.
func (s *IndexSet) Drop(table, column string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.indexes, indexKey(table, column))
}

// Maintained lists the maintained (table, column) pairs.
func (s *IndexSet) Maintained() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.indexes))
	for k := range s.indexes {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Size returns the number of (non-NULL) entries of one index, or -1 when
// not maintained.
func (s *IndexSet) Size(table, column string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, ok := s.indexes[indexKey(table, column)]
	if !ok {
		return -1
	}
	return idx.size
}

// Contains answers whether any row of table has column = v; ok=false when
// the pair is not maintained.
func (s *IndexSet) Contains(table, column string, v mem.Value) (exists, ok bool) {
	if v.IsNull() {
		return false, true // equality with NULL never holds
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, found := s.indexes[indexKey(table, column)]
	if !found {
		return false, false
	}
	return idx.counts[v.Key()] > 0, true
}

// Apply keeps indexes current from a batch of update records. The
// invalidator calls it every cycle with the records it pulled anyway, so
// maintenance adds no extra DBMS load.
func (s *IndexSet) Apply(recs []engine.UpdateRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.indexes) == 0 {
		return
	}
	for _, rec := range recs {
		for _, idx := range s.indexes {
			if !strings.EqualFold(idx.table, rec.Table) {
				continue
			}
			ci := -1
			for i, c := range rec.Columns {
				if strings.EqualFold(c, idx.column) {
					ci = i
					break
				}
			}
			if ci < 0 || ci >= len(rec.Row) || rec.Row[ci].IsNull() {
				continue
			}
			k := rec.Row[ci].Key()
			if rec.Op == engine.OpInsert {
				idx.counts[k]++
				idx.size++
			} else {
				if idx.counts[k] > 0 {
					idx.counts[k]--
					idx.size--
					if idx.counts[k] == 0 {
						delete(idx.counts, k)
					}
				}
			}
		}
	}
}

// simpleEquality recognises polling residues of the form
// "T.c = <literal>" (either side) over a single remaining table, the shape
// maintained indexes can answer.
func simpleEquality(occ *occurrencePlan, columns []string, row mem.Row, singleTable bool) (table, column string, v mem.Value, ok bool) {
	if len(occ.residualParam) != 0 || len(occ.residualConst) != 1 || len(occ.otherTables) != 1 {
		return "", "", mem.Null(), false
	}
	sub := substituteOccurrence(occ.residualConst[0], occ.name, columns, row, singleTable)
	b, isBin := sub.(*sqlparser.BinaryExpr)
	if !isBin || b.Op != sqlparser.OpEq {
		return "", "", mem.Null(), false
	}
	tryMatch := func(colSide, litSide sqlparser.Expr) (string, mem.Value, bool) {
		ref, isRef := colSide.(*sqlparser.ColumnRef)
		if !isRef {
			return "", mem.Null(), false
		}
		lit, err := mem.FromLiteral(litSide)
		if err != nil {
			return "", mem.Null(), false
		}
		// The ref must belong to the single remaining table.
		other := occ.otherTables[0]
		if ref.Table != "" && !strings.EqualFold(ref.Table, other.EffectiveName()) {
			return "", mem.Null(), false
		}
		return ref.Column, lit, true
	}
	if col, lit, match := tryMatch(b.Left, b.Right); match {
		return occ.otherTables[0].Name, col, lit, true
	}
	if col, lit, match := tryMatch(b.Right, b.Left); match {
		return occ.otherTables[0].Name, col, lit, true
	}
	return "", "", mem.Null(), false
}

// Advice is a maintained-index recommendation (the paper's three criteria).
type Advice struct {
	Table  string
	Column string
	// PollCount is how many existence polls this pair would have answered.
	PollCount int64
}

// adviceTracker accumulates missed index opportunities per cycle.
type adviceTracker struct {
	mu     sync.Mutex
	misses map[string]int64
}

func newAdviceTracker() *adviceTracker {
	return &adviceTracker{misses: make(map[string]int64)}
}

func (a *adviceTracker) note(table, column string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.misses[indexKey(table, column)]++
}

// advise returns pairs whose existence polls exceeded threshold, most
// frequent first.
func (a *adviceTracker) advise(threshold int64) []Advice {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Advice
	for k, n := range a.misses {
		if n < threshold {
			continue
		}
		parts := strings.SplitN(k, "|", 2)
		out = append(out, Advice{Table: parts[0], Column: parts[1], PollCount: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PollCount != out[j].PollCount {
			return out[i].PollCount > out[j].PollCount
		}
		return out[i].Table+out[i].Column < out[j].Table+out[j].Column
	})
	return out
}
