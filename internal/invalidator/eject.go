package invalidator

import (
	"net/http"

	"repro/internal/webcache"
)

// Ejector delivers invalidation messages to caches (§4.2.4).
type Ejector interface {
	// Eject invalidates the pages with the given cache keys. Partial
	// failure returns an error; the invalidator will retry the keys next
	// cycle (they stay queued).
	Eject(keys []string) error
}

// BulkEjector is implemented by ejectors that can flush an entire cache —
// the recovery path when log loss makes precise invalidation impossible.
type BulkEjector interface {
	EjectAll() error
}

// CacheEjector invalidates an in-process web cache directly.
type CacheEjector struct{ Cache *webcache.Cache }

// Eject implements Ejector.
func (e CacheEjector) Eject(keys []string) error {
	for _, k := range keys {
		e.Cache.Invalidate(k)
	}
	return nil
}

// EjectAll implements BulkEjector.
func (e CacheEjector) EjectAll() error {
	e.Cache.Clear()
	return nil
}

// HTTPEjector sends `Cache-Control: eject` requests to one or more cache
// endpoints (front-end, proxy, or edge caches).
type HTTPEjector struct {
	CacheURLs []string
	Client    *http.Client
}

// Eject implements Ejector: every key is ejected from every cache.
func (e HTTPEjector) Eject(keys []string) error {
	var firstErr error
	for _, url := range e.CacheURLs {
		for _, k := range keys {
			if err := webcache.Eject(e.Client, url, k); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// EjectAll implements BulkEjector: every cache is flushed.
func (e HTTPEjector) EjectAll() error {
	var firstErr error
	for _, url := range e.CacheURLs {
		if err := webcache.EjectAll(e.Client, url); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// MultiEjector fans out to several ejectors.
type MultiEjector []Ejector

// Eject implements Ejector.
func (m MultiEjector) Eject(keys []string) error {
	var firstErr error
	for _, e := range m {
		if err := e.Eject(keys); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FuncEjector adapts a function.
type FuncEjector func(keys []string) error

// Eject implements Ejector.
func (f FuncEjector) Eject(keys []string) error { return f(keys) }
