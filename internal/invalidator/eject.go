package invalidator

import (
	"errors"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/webcache"
)

// Ejector delivers invalidation messages to caches (§4.2.4).
type Ejector interface {
	// Eject invalidates the pages with the given cache keys. Partial
	// failure returns an error; the invalidator will retry the keys next
	// cycle (they stay queued). Errors implementing KeyedEjectError narrow
	// the retry to the keys that actually failed.
	Eject(keys []string) error
}

// TracedEjector is implemented by ejectors that can propagate pipeline
// trace contexts alongside the keys: ctxs maps a key to the context of the
// update that invalidated it (keys without recording traces are absent).
// The in-process CacheEjector records the terminal webcache.eject span
// itself; the HTTPEjector forwards the contexts in the X-Cacheportal-Trace
// header so the remote cache daemon closes the trace. Semantics are
// otherwise identical to Eject.
type TracedEjector interface {
	Ejector
	EjectTraced(keys []string, ctxs map[string]trace.Context) error
}

// KeyedEjectError is implemented by Eject errors that know which keys
// failed, so a partially failed eject retries only those instead of the
// whole batch. Ejection is idempotent, so retrying a failed key against a
// cache that already accepted it is harmless.
type KeyedEjectError interface {
	error
	FailedKeys() []string
}

// BulkEjector is implemented by ejectors that can flush an entire cache —
// the recovery path when log loss makes precise invalidation impossible.
type BulkEjector interface {
	EjectAll() error
}

// PartialEjectError reports an eject that failed for some keys. Err joins
// every underlying per-cache/per-batch error (errors.Join); Keys lists the
// distinct keys still requiring ejection.
type PartialEjectError struct {
	Keys []string
	Err  error
}

// Error implements error.
func (e *PartialEjectError) Error() string { return "invalidator: eject: " + e.Err.Error() }

// Unwrap exposes the joined per-cache errors.
func (e *PartialEjectError) Unwrap() error { return e.Err }

// FailedKeys implements KeyedEjectError. The returned slice is a copy.
func (e *PartialEjectError) FailedKeys() []string {
	out := make([]string, len(e.Keys))
	copy(out, e.Keys)
	return out
}

// CacheEjector invalidates an in-process web cache directly. With a Tracer
// it records the terminal webcache.eject span for each traced key — the
// in-process analogue of the remote cache closing the trace.
type CacheEjector struct {
	Cache  *webcache.Cache
	Tracer *trace.Tracer
}

// Eject implements Ejector.
func (e CacheEjector) Eject(keys []string) error {
	e.Cache.InvalidateMany(keys)
	return nil
}

// EjectTraced implements TracedEjector: the eject is the end of each
// trace's pipeline, so the span is terminal — a trace with one is a
// complete commit-to-eject story.
func (e CacheEjector) EjectTraced(keys []string, ctxs map[string]trace.Context) error {
	start := time.Now()
	e.Cache.InvalidateMany(keys)
	end := time.Now()
	eachDistinctTrace(ctxs, func(ctx trace.Context) {
		e.Tracer.RecordTerminal(ctx, "webcache.eject", start, end)
	})
	return nil
}

// EjectAll implements BulkEjector.
func (e CacheEjector) EjectAll() error {
	e.Cache.Clear()
	return nil
}

// DefaultEjectBatch is how many keys an HTTPEjector packs into one
// `Cache-Control: eject` request when MaxBatch is unset.
const DefaultEjectBatch = 256

// HTTPEjector sends `Cache-Control: eject` requests to one or more cache
// endpoints (front-end, proxy, or edge caches). Keys are packed into
// batched eject requests (MaxBatch per message) and the caches are
// notified concurrently, so invalidating k pages across n caches costs
// ⌈k/MaxBatch⌉ sequential round trips instead of k×n.
type HTTPEjector struct {
	CacheURLs []string
	// Client defaults to the shared timeout-bearing client (httpx.Default),
	// so a hung cache cannot wedge the invalidation cycle.
	Client *http.Client
	// MaxBatch caps keys per eject request (default DefaultEjectBatch).
	MaxBatch int
	// Router, when set, narrows the fan-out: each key is sent only to the
	// cache URLs that may hold it (the cluster shard map's owners) instead
	// of to every cache. Keys the router cannot place fall back to the
	// full CacheURLs list, and EjectAll always reaches every cache —
	// routing is an optimization, never a correctness risk.
	Router KeyRouter
	// Obs, when set, records eject fan-out telemetry: per-batch round-trip
	// time ("ejector.batch_seconds"), whole-call fan-out time
	// ("ejector.fanout_seconds"), and batch/key/failure totals.
	Obs *obs.Registry
}

// KeyRouter maps a cache key to the cache endpoints that may hold it.
// cluster.Router implements this over the shard map's view.
type KeyRouter interface {
	URLsFor(key string) []string
}

// Eject implements Ejector: every key is ejected from every cache. All
// per-cache errors are collected (errors.Join); the returned
// PartialEjectError names exactly the keys in failed batches, so the
// invalidator retries those alone.
func (e HTTPEjector) Eject(keys []string) error { return e.eject(keys, nil) }

// EjectTraced implements TracedEjector: each batch request carries its
// keys' trace contexts in the X-Cacheportal-Trace header, so the cache
// daemon on the far side records the terminal webcache.eject spans in its
// own tracer with the originating trace IDs.
func (e HTTPEjector) EjectTraced(keys []string, ctxs map[string]trace.Context) error {
	return e.eject(keys, ctxs)
}

func (e HTTPEjector) eject(keys []string, ctxs map[string]trace.Context) error {
	if len(keys) == 0 {
		return nil
	}
	batch := e.MaxBatch
	if batch <= 0 {
		batch = DefaultEjectBatch
	}
	// Group keys by destination. Without a Router every cache gets every
	// key (the original full fan-out); with one, each key goes only to its
	// owners, and unroutable keys widen back to every cache.
	perURL := make(map[string][]string, len(e.CacheURLs))
	if e.Router == nil {
		for _, url := range e.CacheURLs {
			perURL[url] = keys
		}
	} else {
		for _, k := range keys {
			urls := e.Router.URLsFor(k)
			if len(urls) == 0 {
				urls = e.CacheURLs
			}
			for _, u := range urls {
				perURL[u] = append(perURL[u], k)
			}
		}
	}
	urls := make([]string, 0, len(perURL))
	for u := range perURL {
		urls = append(urls, u)
	}
	sort.Strings(urls)

	// Resolved once per Eject call: ejects ride the cycle cadence, not the
	// request path, so the registry lookups here are cheap enough.
	var batchLat, fanoutLat *obs.Histogram
	var batchesSent, keysSent, batchFails *obs.Counter
	if e.Obs != nil {
		batchLat = e.Obs.Histogram("ejector.batch_seconds")
		fanoutLat = e.Obs.Histogram("ejector.fanout_seconds")
		batchesSent = e.Obs.Counter("ejector.batches_total")
		keysSent = e.Obs.Counter("ejector.keys_total")
		batchFails = e.Obs.Counter("ejector.batch_failures_total")
	}
	fanoutStart := time.Now()

	type failure struct {
		err  error
		keys []string
	}
	fails := make([][]failure, len(urls))
	var wg sync.WaitGroup
	wg.Add(len(urls))
	for i, url := range urls {
		go func(i int, url string, toSend []string) {
			defer wg.Done()
			for start := 0; start < len(toSend); start += batch {
				end := start + batch
				if end > len(toSend) {
					end = len(toSend)
				}
				chunk := toSend[start:end]
				t0 := time.Now()
				err := webcache.EjectKeysTraced(e.Client, url, chunk, chunkTraceHeader(chunk, ctxs))
				if batchLat != nil {
					batchLat.ObserveDuration(time.Since(t0))
					batchesSent.Inc()
					keysSent.Add(int64(len(chunk)))
				}
				if err != nil {
					if batchFails != nil {
						batchFails.Inc()
					}
					fails[i] = append(fails[i], failure{err: err, keys: chunk})
				}
			}
		}(i, url, perURL[url])
	}
	wg.Wait()
	if fanoutLat != nil {
		fanoutLat.ObserveDuration(time.Since(fanoutStart))
	}

	var errs []error
	failed := make(map[string]bool)
	for _, perCache := range fails {
		for _, f := range perCache {
			errs = append(errs, f.err)
			for _, k := range f.keys {
				failed[k] = true
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	out := make([]string, 0, len(failed))
	for k := range failed {
		out = append(out, k)
	}
	sort.Strings(out)
	return &PartialEjectError{Keys: out, Err: errors.Join(errs...)}
}

// chunkTraceHeader renders the distinct trace contexts of a chunk's keys,
// in key order ("" when there is nothing to propagate).
func chunkTraceHeader(chunk []string, ctxs map[string]trace.Context) string {
	if len(ctxs) == 0 {
		return ""
	}
	var list []trace.Context
	seen := make(map[int64]bool)
	for _, k := range chunk {
		if ctx, ok := ctxs[k]; ok && ctx.Valid() && !seen[ctx.Trace] {
			seen[ctx.Trace] = true
			list = append(list, ctx)
		}
	}
	return trace.FormatContexts(list)
}

// EjectAll implements BulkEjector: every cache is flushed, Router or not —
// the conservative recovery must reach every node that might hold a page.
func (e HTTPEjector) EjectAll() error {
	var errs []error
	for _, url := range e.CacheURLs {
		if err := webcache.EjectAll(e.Client, url); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// MultiEjector fans out to several ejectors.
type MultiEjector []Ejector

// Eject implements Ejector, joining every sub-ejector's error. When every
// failing sub-ejector reports its failed keys, the joined error narrows
// the retry set to their union; one opaque failure widens it back to all
// keys. The widened error still wraps a PartialEjectError naming every key
// (rather than the bare join) so that errors.As cannot reach a nested,
// too-narrow key list from a sibling sub-ejector.
func (m MultiEjector) Eject(keys []string) error { return m.eject(keys, nil) }

// EjectTraced implements TracedEjector, forwarding the contexts to every
// sub-ejector that understands them.
func (m MultiEjector) EjectTraced(keys []string, ctxs map[string]trace.Context) error {
	return m.eject(keys, ctxs)
}

func (m MultiEjector) eject(keys []string, ctxs map[string]trace.Context) error {
	var errs []error
	failed := make(map[string]bool)
	opaque := false
	for _, e := range m {
		var err error
		if te, ok := e.(TracedEjector); ok && len(ctxs) > 0 {
			err = te.EjectTraced(keys, ctxs)
		} else {
			err = e.Eject(keys)
		}
		if err == nil {
			continue
		}
		errs = append(errs, err)
		var ke KeyedEjectError
		if errors.As(err, &ke) {
			for _, k := range ke.FailedKeys() {
				failed[k] = true
			}
		} else {
			opaque = true
		}
	}
	if len(errs) == 0 {
		return nil
	}
	joined := errors.Join(errs...)
	var out []string
	if opaque {
		out = append(out, keys...)
	} else {
		for k := range failed {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return &PartialEjectError{Keys: dedupeSorted(out), Err: joined}
}

// FuncEjector adapts a function.
type FuncEjector func(keys []string) error

// Eject implements Ejector.
func (f FuncEjector) Eject(keys []string) error { return f(keys) }
