package invalidator

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sniffer"
)

// parallelSchema has enough tables to generate many independent (type ×
// delta table) evaluation units per cycle.
const parallelSchema = `
	CREATE TABLE T0 (a INT, b INT);
	CREATE TABLE T1 (a INT, b INT);
	CREATE TABLE T2 (a INT, b INT);
	CREATE TABLE T3 (a INT, b INT);
	INSERT INTO T0 VALUES (1, 10), (2, 20), (3, 30);
	INSERT INTO T1 VALUES (1, 15), (2, 25), (4, 45);
	INSERT INTO T2 VALUES (2, 12), (3, 33), (5, 55);
	INSERT INTO T3 VALUES (1, 11), (4, 44), (5, 51);
`

// parallelPages registers a workload mixing join types (which poll) with
// single-table types (local decisions) across every table pair.
func parallelPages(m *sniffer.QIURLMap) {
	logID := int64(0)
	page := func(key string, queries ...string) {
		var qis []sniffer.QueryInstance
		for _, q := range queries {
			logID++
			qis = append(qis, sniffer.QueryInstance{SQL: q, LogID: logID})
		}
		m.Record(key, "servlet", 1, qis)
	}
	tables := []string{"T0", "T1", "T2", "T3"}
	for i, ti := range tables {
		for j, tj := range tables {
			if i >= j {
				continue
			}
			page(fmt.Sprintf("join-%s-%s", ti, tj), fmt.Sprintf(
				"SELECT %[1]s.a, %[2]s.b FROM %[1]s, %[2]s WHERE %[1]s.a = %[2]s.a AND %[1]s.b > 5",
				ti, tj))
		}
		page("local-"+ti, fmt.Sprintf("SELECT a, b FROM %s WHERE b > 25", ti))
		page("local-lo-"+ti, fmt.Sprintf("SELECT a FROM %s WHERE b < 15", ti))
	}
}

// randomUpdateScript derives a deterministic DML sequence from a seed.
func randomUpdateScript(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	tables := []string{"T0", "T1", "T2", "T3"}
	script := make([]string, 0, n)
	for len(script) < n {
		tbl := tables[rng.Intn(len(tables))]
		a, b := rng.Intn(8), rng.Intn(60)
		switch rng.Intn(3) {
		case 0:
			script = append(script, fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", tbl, a, b))
		case 1:
			script = append(script, fmt.Sprintf("DELETE FROM %s WHERE a = %d", tbl, a))
		default:
			script = append(script, fmt.Sprintf("UPDATE %s SET b = %d WHERE a = %d", tbl, b, a))
		}
	}
	return script
}

// cycleOutcome is the observable result of one invalidation cycle.
type cycleOutcome struct {
	Ejected        []string
	Invalidated    int
	Conservative   int
	LocalDecisions int
	Polls          int
}

// runWorkload builds a fresh site, applies the scripted updates, runs one
// cycle at the given worker count, and returns what was invalidated.
func runWorkload(t *testing.T, workers, conns int, script []string) cycleOutcome {
	t.Helper()
	out, _ := runWorkloadWith(t, workers, conns, script, false)
	return out
}

// runWorkloadWith is runWorkload plus the full cycle report; textOnly strips
// the pollers' StmtPoller extension so every poll travels as rendered SQL.
func runWorkloadWith(t *testing.T, workers, conns int, script []string, textOnly bool) (cycleOutcome, Report) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(parallelSchema); err != nil {
		t.Fatal(err)
	}
	pollers := make([]Poller, conns)
	for i := range pollers {
		c, err := driver.DirectDriver{DB: db}.Connect("")
		if err != nil {
			t.Fatal(err)
		}
		pollers[i] = c
	}
	var poller Poller = pollers[0]
	if len(pollers) > 1 {
		poller = NewConcurrentPoller(pollers...)
	}
	if textOnly {
		poller = textOnlyPoller{p: poller}
	}
	m := sniffer.NewQIURLMap()
	var ejected []string
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Poller: poller,
		Ejector: FuncEjector(func(keys []string) error {
			ejected = append(ejected, keys...)
			return nil
		}),
		Workers: workers,
	})
	if _, err := inv.Cycle(); err != nil { // swallow schema-setup records
		t.Fatal(err)
	}
	parallelPages(m)
	for _, sql := range script {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ejected)
	return cycleOutcome{
		Ejected:        ejected,
		Invalidated:    rep.Invalidated,
		Conservative:   rep.Conservative,
		LocalDecisions: rep.LocalDecisions,
		Polls:          rep.Polls,
	}, rep
}

// TestParallelCycleEquivalence is the correctness property of the parallel
// pipeline: for random update workloads, a cycle run on 8 workers over a
// concurrent poller invalidates exactly the page set the sequential cycle
// does, with identical decision counters.
func TestParallelCycleEquivalence(t *testing.T) {
	prop := func(seed int64, size uint8) bool {
		script := randomUpdateScript(seed, 1+int(size%24))
		seq := runWorkload(t, 1, 1, script)
		par := runWorkload(t, 8, 4, script)
		if !reflect.DeepEqual(seq, par) {
			t.Logf("seed=%d script=%q\nsequential: %+v\nparallel:   %+v", seed, script, seq, par)
			return false
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(1)), // fixed seed: deterministic corpus
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestParallelWorkerCountsAgree pins one concrete workload across several
// worker counts, including counts above the unit count.
func TestParallelWorkerCountsAgree(t *testing.T) {
	script := randomUpdateScript(42, 16)
	want := runWorkload(t, 1, 1, script)
	if want.Invalidated == 0 {
		t.Fatalf("workload should invalidate something: %+v", want)
	}
	for _, workers := range []int{2, 4, 8, 32} {
		got := runWorkload(t, workers, 3, script)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d diverged:\nsequential: %+v\nparallel:   %+v", workers, want, got)
		}
	}
}

// countingPoller counts Query calls and tracks peak concurrency.
type countingPoller struct {
	mu      sync.Mutex
	calls   int
	active  int
	peak    int
	delay   time.Duration
	results map[string]*engine.Result
}

func (p *countingPoller) Query(sql string) (*engine.Result, error) {
	p.mu.Lock()
	p.calls++
	p.active++
	if p.active > p.peak {
		p.peak = p.active
	}
	res := p.results[sql]
	p.mu.Unlock()
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	p.mu.Lock()
	p.active--
	p.mu.Unlock()
	if res == nil {
		res = &engine.Result{}
	}
	return res, nil
}

// TestConcurrentPollerDedup: identical in-flight query texts collapse to
// one backend call; distinct texts fan out round-robin.
func TestConcurrentPollerDedup(t *testing.T) {
	backend := &countingPoller{delay: 5 * time.Millisecond}
	cp := NewConcurrentPoller(backend, backend, backend)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cp.Query("SELECT 1 FROM T0"); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	backend.mu.Lock()
	calls := backend.calls
	backend.mu.Unlock()
	if calls != 1 {
		t.Fatalf("16 concurrent identical queries made %d backend calls, want 1", calls)
	}
	// After completion the entry is forgotten: a later identical query
	// polls again (results must reflect the current database state).
	if _, err := cp.Query("SELECT 1 FROM T0"); err != nil {
		t.Fatal(err)
	}
	backend.mu.Lock()
	calls = backend.calls
	backend.mu.Unlock()
	if calls != 2 {
		t.Fatalf("post-completion query made %d total backend calls, want 2", calls)
	}
}

// TestConcurrentPollerParallelism: distinct queries overlap in time.
func TestConcurrentPollerParallelism(t *testing.T) {
	backend := &countingPoller{delay: 10 * time.Millisecond}
	cp := NewConcurrentPoller(backend, backend, backend, backend)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp.Query(fmt.Sprintf("SELECT %d FROM T0", i))
		}(i)
	}
	wg.Wait()
	backend.mu.Lock()
	defer backend.mu.Unlock()
	if backend.peak < 2 {
		t.Fatalf("distinct queries never overlapped (peak=%d)", backend.peak)
	}
}

// TestSharedPollBudgetBounded: with many workers and a tiny budget, the
// cycle still terminates with every undecided instance conservative, and
// cumulative poll time respects the bucket (within one in-flight poll per
// worker of slack).
func TestSharedPollBudgetBounded(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(parallelSchema); err != nil {
		t.Fatal(err)
	}
	var polls atomic.Int64
	slow := FuncPoller(func(sql string) (*engine.Result, error) {
		polls.Add(1)
		time.Sleep(2 * time.Millisecond)
		return db.ExecSQL(sql)
	})
	m := sniffer.NewQIURLMap()
	inv := New(Config{
		Map:        m,
		Puller:     EngineLogPuller{Log: db.Log()},
		Poller:     slow,
		Ejector:    FuncEjector(func([]string) error { return nil }),
		Workers:    8,
		PollBudget: time.Millisecond,
	})
	if _, err := inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	parallelPages(m)
	for _, sql := range randomUpdateScript(7, 20) {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	// The bucket admits at most one poll per worker before going negative.
	if got := polls.Load(); got > 8 {
		t.Fatalf("budget of 1ms admitted %d polls across 8 workers", got)
	}
	if rep.Conservative == 0 {
		t.Fatal("exhausted budget should force conservative invalidations")
	}
}

// FuncPoller adapts a function to the Poller interface (test helper).
type FuncPoller func(sql string) (*engine.Result, error)

func (f FuncPoller) Query(sql string) (*engine.Result, error) { return f(sql) }
