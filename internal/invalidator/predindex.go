package invalidator

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/predindex"
)

// This file adapts internal/predindex to the invalidator: it keeps one
// probe structure per (query type, delta-table plan) coherent with the
// registry's live instance set, fed by the InstanceObserver hooks, and
// gives evalType the probe/iterate API that replaces the per-instance
// scan.
//
// Coherence protocol: the registry calls InstanceLive/InstanceDead under
// its own lock at the exact 0↔1 page-count transitions — the same
// predicate InstancesOf filters on — so the live set here is always
// identical to what the scan path would enumerate. Probe structures are
// built lazily per (table, column-fingerprint) plan on first use, from the
// live set at that moment, then maintained incrementally; truncation
// recovery needs nothing special, because flushing pages unlinks them and
// the resulting InstanceDead stream drains the index. Lock order is
// registry.mu → predIndex.mu (hooks run under the former and take the
// latter); nothing here ever calls back into the registry.

// occIndexMode says how candidates for one occurrence are found.
type occIndexMode int8

const (
	// occProbe: the first localParam conjunct is indexed; probe with the
	// delta tuple's column value, verify remaining conjuncts on the
	// (small) result.
	occProbe occIndexMode = iota
	// occScan: localParam conjuncts exist but none is indexable; evaluate
	// every live instance, exactly like the scan path.
	occScan
	// occAll: no localParam conjuncts — every live instance is a
	// candidate once the shared conjuncts pass.
	occAll
)

// occIndex is the per-occurrence probe structure (or the decision that
// none applies).
type occIndex struct {
	mode     occIndexMode
	col      int  // delta column probed (occProbe)
	ord      int  // 1-based instance-arg ordinal indexed (occProbe)
	interval bool // sorted-run probe rather than hash bucket (occProbe)
	ix       *predindex.Index[*Instance]
}

// typeTableIndex is one plan's occurrence indexes, in plan order.
type typeTableIndex struct {
	occs []*occIndex
}

func (ti *typeTableIndex) add(inst *Instance) {
	for _, oi := range ti.occs {
		if oi.mode != occProbe {
			continue
		}
		if oi.ord > len(inst.Args) {
			// Unbindable placeholder: evaluation errors for every tuple
			// (scan goes conservative per instance), so the index must
			// always hand this instance back.
			oi.ix.AddResidual(inst)
			continue
		}
		oi.ix.Add(inst, inst.Args[oi.ord-1])
	}
}

func (ti *typeTableIndex) remove(inst *Instance) {
	for _, oi := range ti.occs {
		if oi.mode == occProbe {
			oi.ix.Remove(inst)
		}
	}
}

// typeEntry is the per-type state: the live instance set plus the lazily
// built per-plan probe structures.
type typeEntry struct {
	live   map[*Instance]struct{}
	tables map[string]*typeTableIndex // lower(table) + "|" + colFingerprint
}

// predIndex is the invalidator's predicate index: the InstanceObserver
// implementation plus the evalType-facing probe API.
type predIndex struct {
	mu    sync.RWMutex
	types map[*QueryType]*typeEntry

	size     atomic.Int64 // live instances tracked (gauge)
	rebuilds *obs.Counter // per-plan builds from the live set
}

func newPredIndex(rebuilds *obs.Counter) *predIndex {
	return &predIndex{types: make(map[*QueryType]*typeEntry), rebuilds: rebuilds}
}

// InstanceLive implements InstanceObserver (called under the registry
// lock).
func (pi *predIndex) InstanceLive(inst *Instance) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	te, ok := pi.types[inst.Type]
	if !ok {
		te = &typeEntry{live: make(map[*Instance]struct{}), tables: make(map[string]*typeTableIndex)}
		pi.types[inst.Type] = te
	}
	if _, ok := te.live[inst]; ok {
		return
	}
	te.live[inst] = struct{}{}
	pi.size.Add(1)
	for _, ti := range te.tables {
		ti.add(inst)
	}
}

// InstanceDead implements InstanceObserver (called under the registry
// lock).
func (pi *predIndex) InstanceDead(inst *Instance) {
	pi.mu.Lock()
	defer pi.mu.Unlock()
	te, ok := pi.types[inst.Type]
	if !ok {
		return
	}
	if _, ok := te.live[inst]; !ok {
		return
	}
	delete(te.live, inst)
	pi.size.Add(-1)
	for _, ti := range te.tables {
		ti.remove(inst)
	}
}

// typeCount returns how many types currently have live instances.
func (pi *predIndex) typeCount() int64 {
	pi.mu.RLock()
	defer pi.mu.RUnlock()
	n := int64(0)
	for _, te := range pi.types {
		if len(te.live) > 0 {
			n++
		}
	}
	return n
}

// liveCount returns the number of live instances of qt — the same count
// len(InstancesOf(qt)) would report.
func (pi *predIndex) liveCount(qt *QueryType) int {
	pi.mu.RLock()
	defer pi.mu.RUnlock()
	te, ok := pi.types[qt]
	if !ok {
		return 0
	}
	return len(te.live)
}

// forEachLive calls fn for every live instance of qt, under the read lock.
// fn must not mutate the index.
func (pi *predIndex) forEachLive(qt *QueryType, fn func(*Instance)) {
	pi.mu.RLock()
	defer pi.mu.RUnlock()
	te, ok := pi.types[qt]
	if !ok {
		return
	}
	for inst := range te.live {
		fn(inst)
	}
}

// probe runs one occurrence probe under the read lock, appending into res.
func (pi *predIndex) probe(oi *occIndex, t mem.Value, res *predindex.Result[*Instance]) {
	pi.mu.RLock()
	defer pi.mu.RUnlock()
	oi.ix.Probe(t, res)
}

// tableFor returns (building on first use) the probe structures for qt
// against deltas on table with the given columns. The build populates from
// the type's live set at that moment; the observer hooks keep it coherent
// afterwards. plan must be qt.planFor(table, columns).
func (pi *predIndex) tableFor(qt *QueryType, table string, columns []string, plan *tablePlan) *typeTableIndex {
	key := strings.ToLower(table) + "|" + colFingerprint(columns)
	pi.mu.RLock()
	if te, ok := pi.types[qt]; ok {
		if ti, ok := te.tables[key]; ok {
			pi.mu.RUnlock()
			return ti
		}
	}
	pi.mu.RUnlock()

	pi.mu.Lock()
	defer pi.mu.Unlock()
	te, ok := pi.types[qt]
	if !ok {
		te = &typeEntry{live: make(map[*Instance]struct{}), tables: make(map[string]*typeTableIndex)}
		pi.types[qt] = te
	}
	if ti, ok := te.tables[key]; ok {
		return ti
	}
	ti := &typeTableIndex{}
	for _, occ := range plan.occurrences {
		oi := &occIndex{mode: occScan}
		switch {
		case occ.conservative:
			// evalType impacts everything before consulting the index;
			// mode is never read.
		case len(occ.localParam) == 0:
			oi.mode = occAll
		case occ.indexShape != nil:
			oi.mode = occProbe
			oi.col = occ.indexShape.col
			oi.ord = occ.indexShape.ord
			oi.interval = occ.indexShape.op.Interval()
			oi.ix = predindex.New[*Instance](occ.indexShape.op)
		}
		ti.occs = append(ti.occs, oi)
	}
	for inst := range te.live {
		ti.add(inst)
	}
	te.tables[key] = ti
	if pi.rebuilds != nil {
		pi.rebuilds.Inc()
	}
	return ti
}
