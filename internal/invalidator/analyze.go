package invalidator

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/predindex"
	"repro/internal/sqlparser"
)

// This file implements the update/query independence analysis of Example
// 4.1, generalized:
//
// For a query type Q over tables R₁…Rₙ with condition C (WHERE plus INNER
// JOIN ON conjuncts) and a delta tuple t ∈ Δ±Rᵢ, the top-level conjuncts of
// C are classified per occurrence of Rᵢ:
//
//   - local    — references only the occurrence: evaluable immediately once
//                t is bound. Any false/unknown local conjunct proves t
//                cannot join into the result through this occurrence.
//   - external — references no occurrence columns: becomes part of the
//                polling query unchanged.
//   - mixed    — references the occurrence and other tables: t's values are
//                substituted for the occurrence's columns, the residue goes
//                into the polling query.
//
// If after local evaluation no residual conjuncts remain, the impact is
// decided without touching the DBMS. Otherwise the polling query
//
//	SELECT <cols needed by parameterized residue> FROM <other tables>
//	WHERE <substituted residue>
//
// decides it (non-empty ⇒ invalidate). Conjuncts with placeholders are kept
// separate so all instances of a type share one polling query per delta
// tuple and are finished client-side (the §4.1.2/§4.2.1 group processing).
//
// Anything the analysis cannot see through — LEFT JOINs, ambiguous
// unqualified columns, unevaluable expressions — degrades to conservative
// invalidation, never to staleness.

// tablePlan is the cached decomposition of a query type with respect to
// deltas on one table (identified by name + column fingerprint).
type tablePlan struct {
	conservative bool // treat any delta tuple as impact
	occurrences  []*occurrencePlan
}

// occurrencePlan is the decomposition for one occurrence of the delta table
// in the FROM list.
type occurrencePlan struct {
	name         string // effective (alias or table) name, original case
	conservative bool   // unanalyzable conjunct ⇒ impact for any tuple

	localConst    []sqlparser.Expr // local, fully bound
	localParam    []sqlparser.Expr // local, contains placeholders
	residualConst []sqlparser.Expr // needs substitution of occurrence refs
	residualParam []sqlparser.Expr // same, and contains placeholders

	// otherTables is the FROM list of the polling query: every table of the
	// query except this occurrence.
	otherTables []sqlparser.TableRef
	// residualCols are the non-occurrence column refs appearing in
	// residualParam; the polling query selects them so instance-specific
	// predicates can be finished client-side.
	residualCols []*sqlparser.ColumnRef

	// poll is the compiled polling query for this occurrence. The query's
	// shape depends only on the plan, never on the delta tuple, so it is
	// built once here and each tuple merely binds its values into the
	// placeholder slots. Nil when the occurrence is conservative (never
	// polled).
	poll *pollPlan

	// indexShape, when non-nil, says the FIRST localParam conjunct has the
	// indexable form `<delta column> cmp <placeholder>` (either side), so
	// the predicate index can replace the per-instance evaluation of that
	// conjunct with a probe. Only the first conjunct is eligible: a probe
	// on a later conjunct could skip an instance whose earlier conjunct
	// errors (→ conservative invalidation under the scan), breaking exact
	// scan-equivalence.
	indexShape *indexShape
}

// indexShape describes one indexable localParam conjunct.
type indexShape struct {
	col int          // delta column index whose value probes the index
	ord int          // 1-based placeholder ordinal supplying the bound constant
	op  predindex.Op // comparison with the probe value on the left
}

// detectIndexShape recognizes `<local delta column> cmp <placeholder>` (or
// the flipped form, mirrored) through any parentheses. Anything else —
// arithmetic around the operands, <>, IN, BETWEEN, multi-placeholder
// conjuncts — returns nil and stays on the exact scan path.
func detectIndexShape(c sqlparser.Expr, occName string, colIdx map[string]int, singleTable bool) *indexShape {
	be, ok := unwrapParens(c).(*sqlparser.BinaryExpr)
	if !ok {
		return nil
	}
	var op predindex.Op
	switch be.Op {
	case sqlparser.OpEq:
		op = predindex.Eq
	case sqlparser.OpLt:
		op = predindex.Lt
	case sqlparser.OpLtEq:
		op = predindex.LtEq
	case sqlparser.OpGt:
		op = predindex.Gt
	case sqlparser.OpGtEq:
		op = predindex.GtEq
	default:
		return nil
	}
	l, r := unwrapParens(be.Left), unwrapParens(be.Right)
	ref, refOK := l.(*sqlparser.ColumnRef)
	ph, phOK := r.(*sqlparser.Placeholder)
	if !refOK || !phOK {
		// Flipped: `$k cmp col` — mirror so the probe value stays on the
		// left of the stored comparison.
		ph, phOK = l.(*sqlparser.Placeholder)
		ref, refOK = r.(*sqlparser.ColumnRef)
		if !refOK || !phOK {
			return nil
		}
		op = op.Mirror()
	}
	if ref.Table != "" && !strings.EqualFold(ref.Table, occName) {
		return nil
	}
	if ref.Table == "" && !singleTable {
		return nil
	}
	i, ok := colIdx[strings.ToLower(ref.Column)]
	if !ok {
		// The delta record does not carry this column: evaluation errors
		// per tuple and the scan path goes conservative; keep it there.
		return nil
	}
	if ph.Ordinal < 1 {
		return nil
	}
	return &indexShape{col: i, ord: ph.Ordinal, op: op}
}

func unwrapParens(e sqlparser.Expr) sqlparser.Expr {
	for {
		p, ok := e.(*sqlparser.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pollPlan is a prepared polling query: the occurrence's residual-const
// conjuncts with every delta-tuple reference replaced by a positional
// placeholder. Binding a tuple costs a slot lookup per placeholder; no SQL
// is rendered or parsed on the poll hot path unless the poller only speaks
// text.
type pollPlan struct {
	// tmpl is the template statement; immutable, binding copies.
	tmpl *sqlparser.SelectStmt
	// fingerprint identifies the template (canonical lower-cased text). Two
	// plans with equal fingerprints and equal bound args are the same poll,
	// which is what per-cycle and in-flight deduplication key on.
	fingerprint string
	// slots maps placeholder ordinal i (0-based) to the delta column index
	// whose value binds it.
	slots []int
	// existenceOnly marks plans where any returned row decides the impact
	// (no parameterized residue to finish client-side).
	existenceOnly bool
}

// bindArgs extracts the plan's bind vector from a delta tuple.
func (pp *pollPlan) bindArgs(row mem.Row) []mem.Value {
	args := make([]mem.Value, len(pp.slots))
	for i, s := range pp.slots {
		args[i] = row[s]
	}
	return args
}

// key is the deduplication identity of one bound poll: template fingerprint
// plus the normalized argument vector. Value.Key folds equal-valued ints and
// floats together, so tuples differing only in literal spelling (1 vs 1.0)
// deduplicate — the text-keyed cache missed those.
func (pp *pollPlan) key(args []mem.Value) string {
	var b strings.Builder
	b.WriteString(pp.fingerprint)
	for _, a := range args {
		b.WriteByte('\x00')
		b.WriteString(a.Key())
	}
	return b.String()
}

// render binds args into the template and prints the instance SQL — the
// compatibility path for pollers that only accept text.
func (pp *pollPlan) render(args []mem.Value) (string, error) {
	lits := make([]sqlparser.Expr, len(args))
	for i, a := range args {
		lits[i] = a.Literal()
	}
	bound, err := sqlparser.Bind(pp.tmpl, lits)
	if err != nil {
		return "", err
	}
	return bound.String(), nil
}

// buildPollPlan compiles the polling query for one occurrence: substituted
// residual-const conjuncts over the other tables, selecting the columns
// parameterized residues need, with delta-tuple references parameterized
// into placeholder slots. existenceOnly plans add LIMIT 1.
func buildPollPlan(occ *occurrencePlan, columns []string, singleTable bool) *pollPlan {
	pp := &pollPlan{existenceOnly: len(occ.residualParam) == 0}

	sel := &sqlparser.SelectStmt{}
	if pp.existenceOnly {
		sel.Items = []sqlparser.SelectItem{{Expr: &sqlparser.IntLit{Value: 1}}}
		sel.Limit = &sqlparser.IntLit{Value: 1}
	} else {
		sel.Distinct = true
		for _, ref := range occ.residualCols {
			sel.Items = append(sel.Items, sqlparser.SelectItem{Expr: &sqlparser.ColumnRef{Table: ref.Table, Column: ref.Column}})
		}
		if len(sel.Items) == 0 {
			sel.Items = []sqlparser.SelectItem{{Expr: &sqlparser.IntLit{Value: 1}}}
		}
	}
	sel.From = append(sel.From, occ.otherTables...)

	// Placeholder ordinals are assigned in RewriteExpr traversal order —
	// the same order Bind substitutes in — so slots[i] feeds the i-th
	// placeholder Bind encounters. The conjuncts fold left-to-right exactly
	// as the per-tuple renderer did, keeping the rendered text (and thus
	// text-keyed pollers like the data cache) byte-identical.
	colIdx := make(map[string]int, len(columns))
	for i, c := range columns {
		colIdx[strings.ToLower(c)] = i
	}
	next := 0
	parameterize := func(e sqlparser.Expr) sqlparser.Expr {
		return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
			ref, ok := x.(*sqlparser.ColumnRef)
			if !ok {
				return nil
			}
			isLocal := false
			if ref.Table != "" {
				isLocal = strings.EqualFold(ref.Table, occ.name)
			} else {
				_, isDelta := colIdx[strings.ToLower(ref.Column)]
				isLocal = isDelta && singleTable
			}
			if !isLocal {
				return nil
			}
			i, ok := colIdx[strings.ToLower(ref.Column)]
			if !ok {
				// Reference to a column the delta record does not carry —
				// left in place; the polling query will fail and the caller
				// invalidates conservatively, as the text path did.
				return nil
			}
			next++
			pp.slots = append(pp.slots, i)
			return &sqlparser.Placeholder{Name: fmt.Sprintf("$%d", next), Ordinal: next}
		})
	}

	var where sqlparser.Expr
	for _, c := range occ.residualConst {
		sub := parameterize(c)
		if where == nil {
			where = sub
		} else {
			where = &sqlparser.BinaryExpr{Op: sqlparser.OpAnd, Left: where, Right: sub}
		}
	}
	sel.Where = where
	pp.tmpl = sel
	pp.fingerprint = sqlparser.FingerprintStmt(sel)
	return pp
}

// colFingerprint identifies a delta table's schema variant.
func colFingerprint(columns []string) string {
	return strings.ToLower(strings.Join(columns, ","))
}

// planFor returns (building and caching on demand) the plan of qt for
// deltas on table with the given columns.
func (qt *QueryType) planFor(table string, columns []string) *tablePlan {
	key := strings.ToLower(table) + "|" + colFingerprint(columns)
	qt.plansMu.Lock()
	defer qt.plansMu.Unlock()
	if p, ok := qt.plans[key]; ok {
		return p
	}
	p := buildTablePlan(qt.Template, table, columns)
	qt.plans[key] = p
	return p
}

// buildTablePlan decomposes the template's condition for deltas on table.
func buildTablePlan(tmpl *sqlparser.SelectStmt, table string, columns []string) *tablePlan {
	plan := &tablePlan{}

	// LEFT JOIN null-extension makes membership non-monotone in ways the
	// conjunct analysis does not model; be conservative for the whole type.
	for _, j := range tmpl.Joins {
		if j.Type == "LEFT" {
			plan.conservative = true
			return plan
		}
	}

	all := tmpl.Tables()
	colSet := make(map[string]bool, len(columns))
	for _, c := range columns {
		colSet[strings.ToLower(c)] = true
	}

	// Combined condition: WHERE plus INNER JOIN ONs.
	var conj []sqlparser.Expr
	conj = append(conj, sqlparser.Conjuncts(tmpl.Where)...)
	for _, j := range tmpl.Joins {
		if j.Type == "INNER" && j.On != nil {
			conj = append(conj, sqlparser.Conjuncts(j.On)...)
		}
	}

	for occIdx, ref := range all {
		if !strings.EqualFold(ref.Name, table) {
			continue
		}
		occ := &occurrencePlan{name: ref.EffectiveName()}
		for otherIdx, other := range all {
			if otherIdx != occIdx {
				occ.otherTables = append(occ.otherTables, other)
			}
		}

		for _, c := range conj {
			kind := classifyConjunct(c, occ.name, all, occIdx, colSet)
			hasParam := containsPlaceholder(c)
			switch kind {
			case conjLocal:
				if hasParam {
					occ.localParam = append(occ.localParam, c)
				} else {
					occ.localConst = append(occ.localConst, c)
				}
			case conjExternal, conjMixed:
				if hasParam {
					occ.residualParam = append(occ.residualParam, c)
				} else {
					occ.residualConst = append(occ.residualConst, c)
				}
			default: // conjUnknown
				occ.conservative = true
			}
		}

		if !occ.conservative {
			occ.residualCols = collectExternalRefs(occ.residualParam, occ.name, colSet, len(all) == 1)
			occ.poll = buildPollPlan(occ, columns, len(all) == 1)
			if len(occ.localParam) > 0 {
				colIdx := make(map[string]int, len(columns))
				for i, c := range columns {
					colIdx[strings.ToLower(c)] = i
				}
				occ.indexShape = detectIndexShape(occ.localParam[0], occ.name, colIdx, len(all) == 1)
			}
		}
		plan.occurrences = append(plan.occurrences, occ)
	}
	return plan
}

type conjKind int

const (
	conjLocal conjKind = iota
	conjExternal
	conjMixed
	conjUnknown
)

// classifyConjunct decides where a conjunct's column references live with
// respect to the delta occurrence. occName is the occurrence's effective
// name; all/occIdx give the query's full table list; deltaCols the delta
// table's columns (lower-cased).
func classifyConjunct(c sqlparser.Expr, occName string, all []sqlparser.TableRef, occIdx int, deltaCols map[string]bool) conjKind {
	refs := sqlparser.ColumnsReferenced(c)
	if len(refs) == 0 {
		return conjLocal // constant condition: evaluable without any table
	}
	sawLocal, sawExternal := false, false
	for _, ref := range refs {
		switch ownerOfRef(ref, occName, all, occIdx, deltaCols) {
		case ownerLocal:
			sawLocal = true
		case ownerExternal:
			sawExternal = true
		default:
			return conjUnknown
		}
	}
	switch {
	case sawLocal && sawExternal:
		return conjMixed
	case sawLocal:
		return conjLocal
	default:
		return conjExternal
	}
}

type refOwner int

const (
	ownerLocal refOwner = iota
	ownerExternal
	ownerUnknown
)

// ownerOfRef resolves which table a column reference belongs to, knowing
// only the delta table's schema.
func ownerOfRef(ref *sqlparser.ColumnRef, occName string, all []sqlparser.TableRef, occIdx int, deltaCols map[string]bool) refOwner {
	if ref.Table != "" {
		if strings.EqualFold(ref.Table, occName) {
			return ownerLocal
		}
		for i, t := range all {
			if i != occIdx && strings.EqualFold(ref.Table, t.EffectiveName()) {
				return ownerExternal
			}
		}
		return ownerUnknown
	}
	// Unqualified.
	if !deltaCols[strings.ToLower(ref.Column)] {
		if len(all) == 1 {
			// Single-table query referencing a column the delta record
			// does not carry: schema mismatch — cannot analyze.
			return ownerUnknown
		}
		// Not a delta column: must belong to some other table (the query
		// executed successfully, so it resolves somewhere).
		return ownerExternal
	}
	if len(all) == 1 {
		return ownerLocal
	}
	// Could belong to the delta table or share a name with another table's
	// column — unresolvable without the other schemas.
	return ownerUnknown
}

func containsPlaceholder(e sqlparser.Expr) bool {
	found := false
	sqlparser.WalkExpr(e, func(x sqlparser.Expr) bool {
		if _, ok := x.(*sqlparser.Placeholder); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// collectExternalRefs gathers the distinct non-occurrence column refs in
// the parameterized residual conjuncts.
func collectExternalRefs(exprs []sqlparser.Expr, occName string, deltaCols map[string]bool, singleTable bool) []*sqlparser.ColumnRef {
	var out []*sqlparser.ColumnRef
	seen := map[string]bool{}
	for _, e := range exprs {
		for _, ref := range sqlparser.ColumnsReferenced(e) {
			local := false
			if ref.Table != "" {
				local = strings.EqualFold(ref.Table, occName)
			} else {
				local = deltaCols[strings.ToLower(ref.Column)] && singleTable
			}
			if local {
				continue
			}
			key := strings.ToLower(ref.Table) + "." + strings.ToLower(ref.Column)
			if !seen[key] {
				seen[key] = true
				out = append(out, &sqlparser.ColumnRef{Table: ref.Table, Column: ref.Column})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Tuple-time evaluation
// ---------------------------------------------------------------------------

// deltaEnv builds an evaluation environment binding the occurrence name to
// the delta tuple.
func deltaEnv(occName string, columns []string, row mem.Row) (engine.Env, error) {
	cols := make([]mem.Column, len(columns))
	for i, c := range columns {
		cols[i] = mem.Column{Name: c, Type: sqlparser.TypeString}
	}
	schema, err := mem.NewSchema(occName, cols)
	if err != nil {
		return engine.Env{}, err
	}
	return engine.Env{}.Bind(occName, schema, row), nil
}

// evalLocal evaluates a local conjunct against the delta tuple. It returns
// (true, nil) when the conjunct is satisfied; (false, nil) when it is false
// or unknown (tuple cannot match); an error when evaluation failed (caller
// goes conservative). NOTE: column types in the synthetic schema are
// irrelevant — evaluation dispatches on the values' own kinds.
func evalLocal(c sqlparser.Expr, env engine.Env) (bool, error) {
	v, err := engine.Eval(c, env)
	if err != nil {
		return false, err
	}
	t, err := engine.Truth(v)
	if err != nil {
		return false, err
	}
	return t == engine.True, nil
}

// substituteOccurrence replaces every column reference belonging to the
// occurrence with the delta tuple's literal value.
func substituteOccurrence(e sqlparser.Expr, occName string, columns []string, row mem.Row, singleTable bool) sqlparser.Expr {
	colIdx := make(map[string]int, len(columns))
	for i, c := range columns {
		colIdx[strings.ToLower(c)] = i
	}
	return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		ref, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return nil
		}
		isLocal := false
		if ref.Table != "" {
			isLocal = strings.EqualFold(ref.Table, occName)
		} else {
			_, isDelta := colIdx[strings.ToLower(ref.Column)]
			isLocal = isDelta && singleTable
		}
		if !isLocal {
			return nil
		}
		i, ok := colIdx[strings.ToLower(ref.Column)]
		if !ok {
			// Reference to a column the delta record does not carry —
			// cannot substitute; the polling query will fail and the
			// caller invalidates conservatively.
			return nil
		}
		return row[i].Literal()
	})
}

// bindPlaceholders replaces placeholders by ordinal with the instance's
// argument literals.
func bindPlaceholders(e sqlparser.Expr, args []mem.Value) sqlparser.Expr {
	return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		ph, ok := x.(*sqlparser.Placeholder)
		if !ok {
			return nil
		}
		if ph.Ordinal < 1 || ph.Ordinal > len(args) {
			return nil // left unbound; evaluation will error → conservative
		}
		return args[ph.Ordinal-1].Literal()
	})
}

// substituteRefs replaces the given column refs with literal values (used
// to finish parameterized residual conjuncts against polling result rows).
func substituteRefs(e sqlparser.Expr, refs []*sqlparser.ColumnRef, vals mem.Row) sqlparser.Expr {
	return sqlparser.RewriteExpr(e, func(x sqlparser.Expr) sqlparser.Expr {
		ref, ok := x.(*sqlparser.ColumnRef)
		if !ok {
			return nil
		}
		for i, want := range refs {
			if strings.EqualFold(ref.Table, want.Table) && strings.EqualFold(ref.Column, want.Column) {
				return vals[i].Literal()
			}
		}
		return nil
	})
}

// analysisError wraps evaluation problems that force conservatism.
type analysisError struct{ err error }

func (e analysisError) Error() string { return fmt.Sprintf("invalidator: analysis: %v", e.err) }
