package invalidator

import (
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/sniffer"
)

// TriggerBased is the paper's rejected first alternative (§4): invalidation
// by update-sensitive triggers *inside* the database. It registers a
// trigger that runs synchronously in the DBMS's write path and decides
// page impact there. Two of the paper's criticisms materialize directly:
//
//   - "puts heavy trigger management burden on the database": the analysis
//     runs while the DBMS's write lock is held, so every update pays for
//     it inline (BenchmarkTriggerOverhead quantifies the slowdown);
//   - "depends on the trigger management capabilities (such as ... join-
//     based trigger conditions)": triggers cannot issue polling queries
//     against their own database mid-update, so any residual (join)
//     condition degrades to conservative invalidation — strictly less
//     precise than CachePortal's external invalidator.
//
// It shares the Registry (query types, instances, pages) and the sniffer's
// QI/URL map with the normal pipeline so the two approaches are directly
// comparable.
type TriggerBased struct {
	registry *Registry
	ejector  Ejector
	m        *sniffer.QIURLMap

	mu         sync.Mutex
	mapVersion int64
	db         *engine.Database
	triggerID  int64

	// Stats
	updates      int64
	invalidated  int64
	conservative int64
}

// NewTriggerBased creates the baseline over a shared map and ejector.
func NewTriggerBased(m *sniffer.QIURLMap, ejector Ejector) *TriggerBased {
	return &TriggerBased{
		registry: NewRegistry(),
		m:        m,
		ejector:  ejector,
	}
}

// Registry exposes the shared registration module.
func (tb *TriggerBased) Registry() *Registry { return tb.registry }

// IngestMap consumes pending QI/URL map changes (call it after pages are
// served; the trigger path has no periodic cycle to do it).
func (tb *TriggerBased) IngestMap() int {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	changes, v, resync := tb.m.Changes(tb.mapVersion)
	if resync {
		changes, v = tb.m.Snapshot()
	}
	tb.mapVersion = v
	n := 0
	for _, pm := range changes {
		n++
		tb.registry.RelinkPage(pm.CacheKey)
		for _, q := range pm.Queries {
			if _, _, err := tb.registry.ObserveInstance(q.SQL, pm.CacheKey); err != nil {
				tb.registry.MarkConservative(pm.CacheKey)
			}
		}
	}
	return n
}

// Attach installs the trigger on db. Detach removes it.
func (tb *TriggerBased) Attach(db *engine.Database) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.db = db
	tb.triggerID = db.AddTrigger("", tb.onUpdate)
}

// Detach removes the trigger.
func (tb *TriggerBased) Detach() {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.db != nil {
		tb.db.RemoveTrigger(tb.triggerID)
		tb.db = nil
	}
}

// Stats returns (updates seen, pages invalidated, conservative decisions).
func (tb *TriggerBased) Stats() (updates, invalidated, conservative int64) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.updates, tb.invalidated, tb.conservative
}

// onUpdate runs inside the DBMS write path for every changed row.
func (tb *TriggerBased) onUpdate(rec engine.UpdateRecord) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.updates++

	impacted := map[string]bool{}
	for _, qt := range tb.registry.TypesForTable(rec.Table) {
		insts := tb.registry.InstancesOf(qt)
		if len(insts) == 0 {
			continue
		}
		plan := qt.planFor(rec.Table, rec.Columns)
		for _, inst := range insts {
			verdict := tb.evalInstance(qt, plan, rec, inst)
			if verdict != 0 {
				for page := range inst.Pages {
					impacted[page] = true
				}
				if verdict == 2 {
					tb.conservative++
				}
			}
		}
	}
	for _, k := range tb.registry.ConservativePages() {
		impacted[k] = true
		tb.conservative++
	}
	if len(impacted) == 0 {
		return
	}
	keys := make([]string, 0, len(impacted))
	for k := range impacted {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Synchronous ejection from inside the write path — more of the §4
	// burden the paper warns about.
	if err := tb.ejector.Eject(keys); err == nil {
		for _, k := range keys {
			tb.m.Remove(k)
			tb.registry.UnlinkPage(k)
		}
		tb.invalidated += int64(len(keys))
	}
}

// evalInstance: 0 = no impact, 1 = exact impact, 2 = conservative impact.
// Tuple-level conditions only; anything residual is conservative (no
// polling is possible inside the trigger).
func (tb *TriggerBased) evalInstance(qt *QueryType, plan *tablePlan, rec engine.UpdateRecord, inst *Instance) int {
	if plan.conservative {
		return 2
	}
	for _, occ := range plan.occurrences {
		if occ.conservative {
			return 2
		}
		env, err := deltaEnv(occ.name, rec.Columns, rec.Row)
		if err != nil {
			return 2
		}
		dead := false
		for _, c := range occ.localConst {
			ok, err := evalLocal(c, env)
			if err != nil {
				return 2
			}
			if !ok {
				dead = true
				break
			}
		}
		if dead {
			continue
		}
		pass := true
		for _, c := range occ.localParam {
			ok, err := evalLocal(bindPlaceholders(c, inst.Args), env)
			if err != nil {
				return 2
			}
			if !ok {
				pass = false
				break
			}
		}
		if !pass {
			continue
		}
		if len(occ.residualConst) == 0 && len(occ.residualParam) == 0 {
			return 1
		}
		// Residual (join) condition: a trigger cannot poll its own
		// database mid-update — conservative.
		return 2
	}
	return 0
}
