package invalidator

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
)

// ConcurrentPoller dispatches polling queries concurrently over a set of
// underlying connections, deduplicating identical in-flight query texts.
// It extends the invalidator's per-cycle text deduplication across
// concurrent callers: while a query is executing, any caller asking for the
// same text waits for and shares that result instead of issuing a second
// DBMS round trip. Unlike the per-cycle poll cache, completed results are
// NOT retained — the next call with the same text polls again, so answers
// never go stale across cycles.
//
// Each underlying Poller (driver.Conn, wire client, data cache) serializes
// its own callers, so a single connection gives deduplication but no
// parallelism; hand NewConcurrentPoller several connections to let distinct
// query texts run in parallel, round-robined across the pool.
type ConcurrentPoller struct {
	conns []Poller
	next  atomic.Uint64

	mu       sync.Mutex
	inflight map[string]*inflightPoll

	// Utilization counters (always on; read by Stats and Instrument).
	queries atomic.Int64 // queries issued to a connection
	dedups  atomic.Int64 // callers that shared an in-flight result
	active  atomic.Int64 // queries currently executing on a connection
	perConn []atomic.Int64
}

// ConcPollerStats is a snapshot of a ConcurrentPoller's utilization.
type ConcPollerStats struct {
	Conns   int     // pool size
	Queries int64   // queries issued to connections
	Dedups  int64   // callers answered by an in-flight duplicate
	Active  int64   // queries executing right now
	PerConn []int64 // queries issued per connection (round-robin skew)
}

type inflightPoll struct {
	ready chan struct{}
	res   *engine.Result
	err   error
}

// NewConcurrentPoller builds a ConcurrentPoller over one or more
// connections. It panics when called with none.
func NewConcurrentPoller(conns ...Poller) *ConcurrentPoller {
	if len(conns) == 0 {
		panic("invalidator: NewConcurrentPoller needs at least one connection")
	}
	return &ConcurrentPoller{
		conns:    conns,
		inflight: make(map[string]*inflightPoll),
		perConn:  make([]atomic.Int64, len(conns)),
	}
}

// Stats snapshots the poller's utilization counters.
func (p *ConcurrentPoller) Stats() ConcPollerStats {
	s := ConcPollerStats{
		Conns:   len(p.conns),
		Queries: p.queries.Load(),
		Dedups:  p.dedups.Load(),
		Active:  p.active.Load(),
		PerConn: make([]int64, len(p.perConn)),
	}
	for i := range p.perConn {
		s.PerConn[i] = p.perConn[i].Load()
	}
	return s
}

// Instrument registers the poller's utilization with reg under
// "<prefix>.": pool size, issued/deduplicated query totals, and the
// in-flight gauge. Pull-style gauge funcs — the query path records only
// its own atomics.
func (p *ConcurrentPoller) Instrument(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".conns", func() int64 { return int64(len(p.conns)) })
	reg.GaugeFunc(prefix+".queries_total", p.queries.Load)
	reg.GaugeFunc(prefix+".dedup_waits_total", p.dedups.Load)
	reg.GaugeFunc(prefix+".active", p.active.Load)
}

// Query implements Poller.
func (p *ConcurrentPoller) Query(sql string) (*engine.Result, error) {
	p.mu.Lock()
	if call, ok := p.inflight[sql]; ok {
		p.mu.Unlock()
		p.dedups.Add(1)
		<-call.ready
		return call.res, call.err
	}
	call := &inflightPoll{ready: make(chan struct{})}
	p.inflight[sql] = call
	p.mu.Unlock()

	slot := p.next.Add(1) % uint64(len(p.conns))
	p.queries.Add(1)
	p.perConn[slot].Add(1)
	p.active.Add(1)
	call.res, call.err = p.conns[slot].Query(sql)
	p.active.Add(-1)

	p.mu.Lock()
	delete(p.inflight, sql)
	p.mu.Unlock()
	close(call.ready)
	return call.res, call.err
}
