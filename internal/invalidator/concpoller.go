package invalidator

import (
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// ConcurrentPoller dispatches polling queries concurrently over a set of
// underlying connections, deduplicating identical in-flight query texts.
// It extends the invalidator's per-cycle text deduplication across
// concurrent callers: while a query is executing, any caller asking for the
// same text waits for and shares that result instead of issuing a second
// DBMS round trip. Unlike the per-cycle poll cache, completed results are
// NOT retained — the next call with the same text polls again, so answers
// never go stale across cycles.
//
// Each underlying Poller (driver.Conn, wire client, data cache) serializes
// its own callers, so a single connection gives deduplication but no
// parallelism; hand NewConcurrentPoller several connections to let distinct
// query texts run in parallel, round-robined across the pool.
type ConcurrentPoller struct {
	conns []Poller
	next  atomic.Uint64

	mu       sync.Mutex
	inflight map[string]*inflightPoll
}

type inflightPoll struct {
	ready chan struct{}
	res   *engine.Result
	err   error
}

// NewConcurrentPoller builds a ConcurrentPoller over one or more
// connections. It panics when called with none.
func NewConcurrentPoller(conns ...Poller) *ConcurrentPoller {
	if len(conns) == 0 {
		panic("invalidator: NewConcurrentPoller needs at least one connection")
	}
	return &ConcurrentPoller{conns: conns, inflight: make(map[string]*inflightPoll)}
}

// Query implements Poller.
func (p *ConcurrentPoller) Query(sql string) (*engine.Result, error) {
	p.mu.Lock()
	if call, ok := p.inflight[sql]; ok {
		p.mu.Unlock()
		<-call.ready
		return call.res, call.err
	}
	call := &inflightPoll{ready: make(chan struct{})}
	p.inflight[sql] = call
	p.mu.Unlock()

	conn := p.conns[p.next.Add(1)%uint64(len(p.conns))]
	call.res, call.err = conn.Query(sql)

	p.mu.Lock()
	delete(p.inflight, sql)
	p.mu.Unlock()
	close(call.ready)
	return call.res, call.err
}
