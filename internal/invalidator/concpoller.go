package invalidator

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sqlparser"
)

// ConcurrentPoller dispatches polling queries concurrently over a set of
// underlying connections, deduplicating identical in-flight polls.
// It extends the invalidator's per-cycle deduplication across concurrent
// callers: while a query is executing, any caller asking for the same poll
// waits for and shares that result instead of issuing a second DBMS round
// trip. Deduplication keys on the canonical query identity — template
// fingerprint plus normalized argument vector — not on raw text, so
// instances that differ only in literal spelling (1 vs 1.0, quoting)
// coalesce. Unlike the per-cycle poll cache, completed results are NOT
// retained — the next call with the same identity polls again, so answers
// never go stale across cycles.
//
// Each underlying Poller (driver.Conn, wire client, data cache) serializes
// its own callers, so a single connection gives deduplication but no
// parallelism; hand NewConcurrentPoller several connections to let distinct
// query texts run in parallel, round-robined across the pool.
type ConcurrentPoller struct {
	conns []Poller
	next  atomic.Uint64

	mu       sync.Mutex
	inflight map[string]*inflightPoll

	// Utilization counters (always on; read by Stats and Instrument).
	queries atomic.Int64 // queries issued to a connection
	dedups  atomic.Int64 // callers that shared an in-flight result
	active  atomic.Int64 // queries currently executing on a connection
	perConn []atomic.Int64
}

// ConcPollerStats is a snapshot of a ConcurrentPoller's utilization.
type ConcPollerStats struct {
	Conns   int     // pool size
	Queries int64   // queries issued to connections
	Dedups  int64   // callers answered by an in-flight duplicate
	Active  int64   // queries executing right now
	PerConn []int64 // queries issued per connection (round-robin skew)
}

type inflightPoll struct {
	ready chan struct{}
	res   *engine.Result
	err   error
}

// NewConcurrentPoller builds a ConcurrentPoller over one or more
// connections. It panics when called with none.
func NewConcurrentPoller(conns ...Poller) *ConcurrentPoller {
	if len(conns) == 0 {
		panic("invalidator: NewConcurrentPoller needs at least one connection")
	}
	return &ConcurrentPoller{
		conns:    conns,
		inflight: make(map[string]*inflightPoll),
		perConn:  make([]atomic.Int64, len(conns)),
	}
}

// Stats snapshots the poller's utilization counters.
func (p *ConcurrentPoller) Stats() ConcPollerStats {
	s := ConcPollerStats{
		Conns:   len(p.conns),
		Queries: p.queries.Load(),
		Dedups:  p.dedups.Load(),
		Active:  p.active.Load(),
		PerConn: make([]int64, len(p.perConn)),
	}
	for i := range p.perConn {
		s.PerConn[i] = p.perConn[i].Load()
	}
	return s
}

// Instrument registers the poller's utilization with reg under
// "<prefix>.": pool size, issued/deduplicated query totals, and the
// in-flight gauge. Pull-style gauge funcs — the query path records only
// its own atomics.
func (p *ConcurrentPoller) Instrument(reg *obs.Registry, prefix string) {
	reg.GaugeFunc(prefix+".conns", func() int64 { return int64(len(p.conns)) })
	reg.GaugeFunc(prefix+".queries_total", p.queries.Load)
	reg.GaugeFunc(prefix+".dedup_waits_total", p.dedups.Load)
	reg.GaugeFunc(prefix+".active", p.active.Load)
}

// canonicalKey computes the canonical identity of a SQL text: template
// fingerprint plus normalized args. Texts that fail to parse (or carry
// unbound placeholders) fall back to their raw bytes — dedup still works,
// just only for byte-identical repeats.
func canonicalKey(sql string) string {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return sql
	}
	canon, lits := sqlparser.Canonicalize(stmt)
	var b strings.Builder
	b.WriteString(sqlparser.FingerprintStmt(canon))
	for _, e := range lits {
		if e == nil {
			return sql
		}
		v, err := mem.FromLiteral(e)
		if err != nil {
			return sql
		}
		b.WriteByte('\x00')
		b.WriteString(v.Key())
	}
	return b.String()
}

// stmtKey canonicalizes a compiled plan into the same identity space
// canonicalKey produces for text: full-canonical fingerprint plus the merged
// value vector (the template's fixed literals interleaved, in placeholder
// order, with the bound args). Falls back to the plan fingerprint plus args
// when a literal cannot be converted.
func stmtKey(fingerprint string, tmpl *sqlparser.SelectStmt, args []mem.Value) string {
	canon, lits := sqlparser.Canonicalize(tmpl)
	var b strings.Builder
	b.WriteString(sqlparser.FingerprintStmt(canon))
	next := 0
	for _, e := range lits {
		var v mem.Value
		if e == nil {
			if next >= len(args) {
				return fallbackStmtKey(fingerprint, args)
			}
			v = args[next]
			next++
		} else {
			var err error
			v, err = mem.FromLiteral(e)
			if err != nil {
				return fallbackStmtKey(fingerprint, args)
			}
		}
		b.WriteByte('\x00')
		b.WriteString(v.Key())
	}
	return b.String()
}

func fallbackStmtKey(fingerprint string, args []mem.Value) string {
	var b strings.Builder
	b.WriteString(fingerprint)
	for _, a := range args {
		b.WriteByte('\x00')
		b.WriteString(a.Key())
	}
	return b.String()
}

// run executes issue under in-flight deduplication on key.
func (p *ConcurrentPoller) run(key string, issue func(Poller) (*engine.Result, error)) (*engine.Result, error) {
	p.mu.Lock()
	if call, ok := p.inflight[key]; ok {
		p.mu.Unlock()
		p.dedups.Add(1)
		<-call.ready
		return call.res, call.err
	}
	call := &inflightPoll{ready: make(chan struct{})}
	p.inflight[key] = call
	p.mu.Unlock()

	slot := p.next.Add(1) % uint64(len(p.conns))
	p.queries.Add(1)
	p.perConn[slot].Add(1)
	p.active.Add(1)
	call.res, call.err = issue(p.conns[slot])
	p.active.Add(-1)

	p.mu.Lock()
	delete(p.inflight, key)
	p.mu.Unlock()
	close(call.ready)
	return call.res, call.err
}

// Query implements Poller.
func (p *ConcurrentPoller) Query(sql string) (*engine.Result, error) {
	return p.run(canonicalKey(sql), func(c Poller) (*engine.Result, error) {
		return c.Query(sql)
	})
}

// QueryStmt implements StmtPoller: the compiled plan executes on a
// connection's own prepared path when it has one, and is rendered to text
// otherwise. The dedup key re-canonicalizes the plan (poll templates keep
// non-delta constants as literals), so a prepared poll and an equivalent
// text poll arriving through Query coalesce too.
func (p *ConcurrentPoller) QueryStmt(fingerprint string, tmpl *sqlparser.SelectStmt, args []mem.Value) (*engine.Result, error) {
	key := stmtKey(fingerprint, tmpl, args)
	return p.run(key, func(c Poller) (*engine.Result, error) {
		if sp, ok := c.(StmtPoller); ok {
			return sp.QueryStmt(fingerprint, tmpl, args)
		}
		lits := make([]sqlparser.Expr, len(args))
		for i, a := range args {
			lits[i] = a.Literal()
		}
		bound, err := sqlparser.Bind(tmpl, lits)
		if err != nil {
			return nil, err
		}
		return c.Query(bound.String())
	})
}
