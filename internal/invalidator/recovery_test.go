package invalidator

import (
	"errors"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/webcache"
)

// chaosBulkEjector is a bulk-capable ejector whose EjectAll can be made to
// fail, modeling a cache that refuses the conservative flush.
type chaosBulkEjector struct {
	cache   *webcache.Cache
	failAll bool
	flushes int
}

func (e *chaosBulkEjector) Eject(keys []string) error {
	e.cache.InvalidateMany(keys)
	return nil
}

func (e *chaosBulkEjector) EjectAll() error {
	if e.failAll {
		return errors.New("flush refused")
	}
	e.flushes++
	e.cache.Clear()
	return nil
}

// scriptEjector is a keys-only ejector (no EjectAll) with a failure switch.
type scriptEjector struct {
	fail    bool
	ejected [][]string
}

func (e *scriptEjector) Eject(keys []string) error {
	if e.fail {
		return errors.New("eject refused")
	}
	e.ejected = append(e.ejected, keys)
	return nil
}

// truncationFixture builds an invalidator over a capacity-2 request log (so
// a burst of entries triggers mapper-observed log loss), with page "k"
// pre-registered through the QI/URL map.
func truncationFixture(t *testing.T, ej Ejector) (*Invalidator, *sniffer.QIURLMap, *appserver.RequestLog) {
	t.Helper()
	db := engine.NewDatabase()
	rlog := appserver.NewRequestLog(2)
	qlog := driver.NewQueryLog(0)
	m := sniffer.NewQIURLMap()
	mp := sniffer.NewMapper(rlog, qlog, m)
	inv := New(Config{
		Map:     m,
		Mapper:  mp,
		Puller:  EngineLogPuller{Log: db.Log()},
		Ejector: ej,
	})
	m.Record("k", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM Car WHERE price < 15500"}})
	if _, err := inv.Cycle(); err != nil { // ingest the mapping; no loss yet
		t.Fatal(err)
	}
	if !inv.registry.HasPage("k") {
		t.Fatal("fixture: page k not registered")
	}
	return inv, m, rlog
}

// overflow pushes enough entries through the capacity-2 request log that the
// mapper's next run observes truncation. The entries are uncached traffic so
// they do not re-record (and thereby clobber) page k's mapping.
func overflow(rlog *appserver.RequestLog) {
	now := time.Now()
	for i := 0; i < 5; i++ {
		rlog.Append(appserver.RequestLogEntry{
			Servlet: "s", Request: "/burst", Receive: now, Deliver: now,
		})
	}
}

// TestTruncationFlushFailureKeepsMappings is the regression test for the
// unsound truncation recovery: when the compensating EjectAll fails, the
// QI/URL mappings must survive — destroying them would leave cached pages
// nothing can ever invalidate. The flush obligation carries across cycles
// and the mappings fall only once it lands.
func TestTruncationFlushFailureKeepsMappings(t *testing.T) {
	cache := webcache.NewCache(0)
	cache.Put(&webcache.Entry{Key: "orphan"})
	ej := &chaosBulkEjector{cache: cache, failAll: true}
	inv, m, rlog := truncationFixture(t, ej)

	overflow(rlog)
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatalf("truncation not observed: %+v", rep)
	}
	if rep.EjectErr == nil {
		t.Fatal("failed EjectAll not reported")
	}
	if !inv.registry.HasPage("k") {
		t.Fatal("mappings destroyed although the flush never landed")
	}
	if _, ok := m.Get("k"); !ok {
		t.Fatal("QI/URL mapping destroyed although the flush never landed")
	}
	if !inv.flushPending {
		t.Fatal("flush obligation dropped after a failed EjectAll")
	}

	// Heal the ejector: the next cycle must retry the flush, and only then
	// tear the mappings down.
	ej.failAll = false
	rep, err = inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.EjectErr != nil {
		t.Fatalf("healed flush cycle: %+v", rep)
	}
	if ej.flushes != 1 || cache.Len() != 0 {
		t.Fatalf("flush did not land: flushes=%d cacheLen=%d", ej.flushes, cache.Len())
	}
	if inv.registry.HasPage("k") {
		t.Fatal("registry page survived the landed flush")
	}
	if _, ok := m.Get("k"); ok {
		t.Fatal("QI/URL mapping survived the landed flush")
	}
	if inv.flushPending {
		t.Fatal("flush obligation not discharged")
	}

	// Recovery is complete: the next cycle reports no truncation.
	if rep, err = inv.Cycle(); err != nil || rep.Truncated {
		t.Fatalf("post-recovery cycle: rep=%+v err=%v", rep, err)
	}
}

// TestTruncationFallbackNonBulkRetries is the regression test for the
// discarded fallback error: with a keys-only ejector, truncation recovery
// routes every known page through the ordinary eject machinery, and a failed
// eject must land the keys in the pending retry list — not vanish.
func TestTruncationFallbackNonBulkRetries(t *testing.T) {
	ej := &scriptEjector{fail: true}
	inv, _, rlog := truncationFixture(t, ej)

	overflow(rlog)
	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.EjectErr == nil {
		t.Fatalf("truncation fallback cycle: %+v", rep)
	}
	if len(inv.pending) != 1 || inv.pending[0] != "k" {
		t.Fatalf("failed fallback eject not pending: %v", inv.pending)
	}
	if inv.registry.HasPage("k") == false {
		t.Fatal("page dropped before its eject succeeded")
	}

	// Heal: the pending key is retried and ejected.
	ej.fail = false
	rep, err = inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EjectErr != nil || rep.Invalidated != 1 {
		t.Fatalf("retry cycle: %+v", rep)
	}
	if len(ej.ejected) != 1 || len(ej.ejected[0]) != 1 || ej.ejected[0][0] != "k" {
		t.Fatalf("retried eject batches: %v", ej.ejected)
	}
	if len(inv.pending) != 0 || inv.registry.HasPage("k") {
		t.Fatalf("retry state not discharged: pending=%v", inv.pending)
	}
}

// TestPendingClearedWhenPagesLeaveRegistry is the regression test for the
// retry-list leak: pending keys whose pages have left the registry produce
// no eject at all (len(keys)==0), and the old code skipped clearing the
// retry state on that path, leaking the keys and their stamps forever.
func TestPendingClearedWhenPagesLeaveRegistry(t *testing.T) {
	db := engine.NewDatabase()
	m := sniffer.NewQIURLMap()
	reg := obs.NewRegistry()
	ej := &scriptEjector{}
	inv := New(Config{
		Map:     m,
		Puller:  EngineLogPuller{Log: db.Log()},
		Ejector: ej,
		Obs:     reg,
	})
	inv.pending = []string{"ghost"}
	inv.pendingStamp = map[string]time.Time{"ghost": time.Now()}

	rep, err := inv.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.EjectErr != nil || len(ej.ejected) != 0 {
		t.Fatalf("ghost key was ejected: rep=%+v batches=%v", rep, ej.ejected)
	}
	if len(inv.pending) != 0 {
		t.Fatalf("pending leaked: %v", inv.pending)
	}
	if len(inv.pendingStamp) != 0 {
		t.Fatalf("pending stamps leaked: %v", inv.pendingStamp)
	}
	if got := reg.Gauge("invalidator.retry_list_depth").Value(); got != 0 {
		t.Fatalf("retry_list_depth = %d, want 0", got)
	}
}

// breakerEjector fails every keyed eject but accepts bulk flushes: the shape
// of a cache whose batch endpoint is broken while its flush endpoint works.
type breakerEjector struct {
	cache   *webcache.Cache
	flushes int
}

func (e *breakerEjector) Eject(keys []string) error { return errors.New("batch endpoint down") }
func (e *breakerEjector) EjectAll() error {
	e.flushes++
	e.cache.Clear()
	return nil
}

// TestBreakerFallsBackToBulkFlush drives the ejector circuit breaker: after
// BreakerThreshold consecutive failed eject rounds the invalidator must stop
// trusting precise ejection, flush the caches outright, and discharge the
// pending keys.
func TestBreakerFallsBackToBulkFlush(t *testing.T) {
	db := engine.NewDatabase()
	m := sniffer.NewQIURLMap()
	reg := obs.NewRegistry()
	cache := webcache.NewCache(0)
	cache.Put(&webcache.Entry{Key: "k"})
	ej := &breakerEjector{cache: cache}
	inv := New(Config{
		Map:     m,
		Puller:  EngineLogPuller{Log: db.Log()},
		Ejector: ej,
		Obs:     reg,
	})
	m.Record("k", "s", 1, []sniffer.QueryInstance{{SQL: "SELECT * FROM Car WHERE price < 15500"}})
	if _, err := inv.Cycle(); err != nil {
		t.Fatal(err)
	}
	if !inv.registry.HasPage("k") {
		t.Fatal("fixture: page k not registered")
	}
	inv.pending = []string{"k"}
	inv.pendingStamp = map[string]time.Time{"k": time.Now()}

	for cycle := 1; cycle <= DefaultBreakerThreshold; cycle++ {
		rep, err := inv.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.EjectErr == nil {
			t.Fatalf("cycle %d: eject unexpectedly succeeded", cycle)
		}
		if cycle < DefaultBreakerThreshold {
			if inv.ejectFailStreak != cycle {
				t.Fatalf("cycle %d: streak = %d", cycle, inv.ejectFailStreak)
			}
			if len(inv.pending) != 1 || ej.flushes != 0 {
				t.Fatalf("cycle %d: breaker tripped early (pending=%v flushes=%d)", cycle, inv.pending, ej.flushes)
			}
		}
	}
	if ej.flushes != 1 {
		t.Fatalf("breaker flushes = %d, want 1", ej.flushes)
	}
	if got := reg.Counter("invalidator.breaker_trips_total").Value(); got != 1 {
		t.Fatalf("breaker_trips_total = %d, want 1", got)
	}
	if len(inv.pending) != 0 || inv.ejectFailStreak != 0 {
		t.Fatalf("breaker did not discharge: pending=%v streak=%d", inv.pending, inv.ejectFailStreak)
	}
	if cache.Len() != 0 {
		t.Fatal("cache not flushed by the breaker")
	}
	if inv.registry.HasPage("k") {
		t.Fatal("flushed page still registered")
	}
}
