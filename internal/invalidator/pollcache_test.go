package invalidator

import (
	"testing"

	"repro/internal/datacache"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/sniffer"
)

// syncedPoller directs polling queries to a middle-tier data cache the
// invalidator maintains itself (§2.4: "to reduce the load on the DBMS, [the
// polling queries can be directed] to a middle-tier data cache maintained
// by the invalidator"). The cache is synchronized from the same update-log
// position the invalidator is about to process, so polls always observe at
// least the state the deltas describe.
type syncedPoller struct {
	dc     *datacache.DataCache
	puller datacache.LogPuller
}

func (p syncedPoller) Query(sql string) (*engine.Result, error) {
	return p.dc.Query(sql)
}

// TestPollingViaDataCache wires the invalidator's poller to a data cache
// and verifies (a) invalidation decisions stay correct, (b) repeated polls
// of the same residue are served from the cache, not the DBMS.
func TestPollingViaDataCache(t *testing.T) {
	db := engine.NewDatabase()
	if _, err := db.ExecScript(carSchema); err != nil {
		t.Fatal(err)
	}
	backPool, err := driver.NewPool(driver.DirectDriver{DB: db}, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer backPool.Close()
	dc := datacache.New(backPool, 0)
	puller := datacache.EngineLogPuller{Log: db.Log()}

	m := sniffer.NewQIURLMap()
	var ejected []string
	inv := New(Config{
		Map:    m,
		Puller: EngineLogPuller{Log: db.Log()},
		Poller: syncedPoller{dc: dc, puller: puller},
		Ejector: FuncEjector(func(keys []string) error {
			ejected = append(ejected, keys...)
			return nil
		}),
	})
	cycle := func() Report {
		t.Helper()
		// Keep the polling cache at least as fresh as the deltas the
		// invalidator is about to analyze.
		if _, err := dc.Sync(puller); err != nil {
			t.Fatal(err)
		}
		rep, err := inv.Cycle()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cycle()

	m.Record("url1", "s", 1, []sniffer.QueryInstance{{SQL: paperQuery1}})
	cycle()

	// First poll-needing insert: data cache misses, forwards to the DBMS.
	db.ExecSQL("INSERT INTO Car VALUES ('Dodge', 'Viper', 90000)") // no Mileage row
	rep := cycle()
	if len(ejected) != 0 || rep.Polls != 1 {
		t.Fatalf("ejected=%v polls=%d", ejected, rep.Polls)
	}
	missesAfterFirst := dc.Stats().Misses

	// Second identical residue: the data cache answers without the DBMS.
	db.ExecSQL("INSERT INTO Car VALUES ('SSC', 'Viper', 95000)") // same model residue
	rep = cycle()
	if len(ejected) != 0 || rep.Polls != 1 {
		t.Fatalf("second: ejected=%v polls=%d", ejected, rep.Polls)
	}
	st := dc.Stats()
	if st.Hits == 0 || st.Misses != missesAfterFirst {
		t.Fatalf("data cache should have served the repeat poll: %+v", st)
	}

	// A mileage row appears for 'Avalon'; an Avalon insert must invalidate
	// even through the cached poller (sync keeps it fresh).
	db.ExecSQL("INSERT INTO Car VALUES ('Toyota', 'Avalon', 25000)")
	cycle()
	if len(ejected) != 1 || ejected[0] != "url1" {
		t.Fatalf("ejected: %v", ejected)
	}
}
