// Package invalidator implements CachePortal's invalidator (paper §4): it
// registers query types and instances discovered from the sniffer's QI/URL
// map (§4.1), pulls the database update log and organizes it into Δ⁺/Δ⁻
// delta tables (§4.2.1), decides per delta tuple whether each cached query
// instance is unaffected, certainly affected, or needs a polling query
// (Example 4.1), schedules and executes those polling queries within a
// real-time budget (§4.2.2–4.2.3), and sends `Cache-Control: eject`
// invalidation messages for the affected pages (§4.2.4). The information
// management module's auxiliary structures — maintained join indexes,
// statistics, policies — live here too (§4.3).
package invalidator

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lru"
	"repro/internal/mem"
	"repro/internal/sqlparser"
)

// QueryType is a registered query template (§4.1.1): a SELECT with
// placeholders where instances have literals.
type QueryType struct {
	ID   int64
	Name string // optional human name from offline registration
	// Key is the canonical template string (lower-cased); the identity of
	// the type.
	Key string
	// Template is the canonicalized statement.
	Template *sqlparser.SelectStmt
	// Tables are the base tables referenced (lower-cased, deduplicated).
	Tables []string
	// Discovered is false for administrator-registered types (offline
	// mode), true for types found by scanning the QI/URL map (§4.1.2).
	Discovered bool

	// NoCache is set by policy when pages depending on this type should
	// not be cached (§4.1.4). Atomic: policy evaluation flips it from the
	// invalidation cycle while the application server's cacheability hook
	// reads it on the request path.
	NoCache atomic.Bool

	stats TypeStats

	// plans caches delta-table decompositions, keyed by table|colfp.
	// Guarded by plansMu: parallel eval workers may plan for the same type
	// against different delta tables at once.
	plansMu sync.Mutex
	plans   map[string]*tablePlan
}

// TypeStats are the self-tuning statistics of §4.1.1.
type TypeStats struct {
	Instances        int64 // instances ever registered
	LiveInstances    int64 // instances currently linked to pages
	Polls            int64 // polling queries issued for this type
	PollTime         time.Duration
	LocalDecisions   int64 // delta tuples decided without polling
	Impacts          int64 // instance invalidations attributed to this type
	Conservative     int64 // conservative (unanalyzed/budget) invalidations
	UpdateBatches    int64 // delta batches that touched this type's tables
	InvalidationTime time.Duration
	MaxInvalidation  time.Duration
	// InvalidationRatioEWMA tracks the fraction of live instances
	// invalidated per touching update batch (exp. weighted, α=1/8).
	InvalidationRatioEWMA float64

	// Predicate-index breakdown: how this type's candidate instances were
	// found. Probes answered from the index, candidates surfaced via hash
	// buckets vs. sorted-run (interval) search, residual entries the index
	// handed back for exact evaluation, and occurrences whose predicate
	// shape forced a conservative full scan.
	IndexProbes        int64
	IndexBucketHits    int64
	IndexIntervalHits  int64
	IndexResidualEvals int64
	IndexScanFallbacks int64
}

// Instance is a bound query instance linked to the cached pages it
// produced.
type Instance struct {
	Type    *QueryType
	Args    []mem.Value
	ArgsKey string
	// Bound is the instance statement with literals in place.
	Bound *sqlparser.SelectStmt
	// Pages is the set of cache keys whose content depends on this
	// instance.
	Pages map[string]bool
}

// InstanceObserver is notified, under the registry lock, of instance
// liveness transitions: InstanceLive when an instance gains its first page
// link, InstanceDead when it loses its last (the exact moments it enters
// and leaves the InstancesOf result). Callbacks must not call back into
// the registry. The predicate index is the one consumer; it keeps its
// probe structures coherent from these events alone.
type InstanceObserver interface {
	InstanceLive(inst *Instance)
	InstanceDead(inst *Instance)
}

// Registry holds query types, instances and the instance↔page links — the
// registration module's data structures (§4.1).
type Registry struct {
	mu         sync.Mutex
	nextTypeID int64
	types      map[string]*QueryType // template key → type
	instances  map[string]*Instance  // template key + args key → instance
	byType     map[*QueryType]map[*Instance]bool
	byTable    map[string]map[*QueryType]bool
	pageLinks  map[string]map[*Instance]bool // cache key → instances
	observer   InstanceObserver
	// conservativePages hold pages whose queries could not be analyzed
	// (non-SELECT or unparseable): they are invalidated on every update.
	conservativePages map[string]bool

	// parsed caches exact SQL text → parsed statement. Servlet instances
	// repeat heavily (the same bound query arrives once per cached page
	// observation), so both registration entry points resolve text through
	// this cache instead of re-lexing. Cached statements are shared and
	// immutable: every consumer canonicalizes or copies before use.
	parsed *lru.Cache[string, sqlparser.Stmt]

	// generation counts type-set changes: it is bumped each time a new query
	// type is interned, so consumers caching per-type derivatives (poll
	// plans, schedules) can detect registry growth cheaply.
	generation atomic.Int64
}

// parseCacheCapacity bounds the registry's text→AST cache. Eviction only
// costs a re-parse.
const parseCacheCapacity = 1024

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		types:             make(map[string]*QueryType),
		instances:         make(map[string]*Instance),
		byType:            make(map[*QueryType]map[*Instance]bool),
		byTable:           make(map[string]map[*QueryType]bool),
		pageLinks:         make(map[string]map[*Instance]bool),
		conservativePages: make(map[string]bool),
		parsed:            lru.New[string, sqlparser.Stmt](parseCacheCapacity),
	}
}

// Generation returns the registry's type-set generation: it increases
// monotonically each time a new query type is interned.
func (r *Registry) Generation() int64 { return r.generation.Load() }

// SetObserver installs the (single) instance observer and replays the
// current live set to it under the lock, so an observer wired onto an
// already-populated registry starts coherent. A nil observer detaches.
func (r *Registry) SetObserver(o InstanceObserver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observer = o
	if o == nil {
		return
	}
	for _, inst := range r.instances {
		if len(inst.Pages) > 0 {
			o.InstanceLive(inst)
		}
	}
}

// ParseCacheStats returns the parse cache's cumulative (hits, misses).
func (r *Registry) ParseCacheStats() (hits, misses int64) { return r.parsed.Stats() }

// parseSelect resolves SQL text to a SELECT statement through the parse
// cache. The returned statement is shared: callers must not mutate it.
func (r *Registry) parseSelect(sql string) (*sqlparser.SelectStmt, error) {
	stmt, err := r.parsed.GetOrPut(sql, func() (sqlparser.Stmt, error) {
		return sqlparser.Parse(sql)
	})
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("invalidator: %T is not a SELECT", stmt)
	}
	return sel, nil
}

// RegisterType registers a query type from SQL text (offline/administrator
// mode, §4.1.1). Placeholders mark the parameters. The same template
// re-registers idempotently.
func (r *Registry) RegisterType(name, sql string) (*QueryType, error) {
	sel, err := r.parseSelect(sql)
	if err != nil {
		return nil, fmt.Errorf("invalidator: register type %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	qt := r.internType(sel)
	qt.Discovered = false
	if name != "" {
		qt.Name = name
	}
	return qt, nil
}

// internType canonicalizes sel and returns the (possibly new) type.
// Callers hold r.mu.
func (r *Registry) internType(sel *sqlparser.SelectStmt) *QueryType {
	tmplStmt, _ := sqlparser.Canonicalize(sel)
	tmpl := tmplStmt.(*sqlparser.SelectStmt)
	key := strings.ToLower(tmpl.String())
	if qt, ok := r.types[key]; ok {
		return qt
	}
	r.generation.Add(1)
	r.nextTypeID++
	qt := &QueryType{
		ID:         r.nextTypeID,
		Key:        key,
		Template:   tmpl,
		Discovered: true,
		plans:      make(map[string]*tablePlan),
	}
	seen := map[string]bool{}
	for _, ref := range tmpl.Tables() {
		t := strings.ToLower(ref.Name)
		if !seen[t] {
			seen[t] = true
			qt.Tables = append(qt.Tables, t)
		}
	}
	sort.Strings(qt.Tables)
	r.types[key] = qt
	for _, t := range qt.Tables {
		set, ok := r.byTable[t]
		if !ok {
			set = make(map[*QueryType]bool)
			r.byTable[t] = set
		}
		set[qt] = true
	}
	return qt
}

// argsKey builds the identity of an instance's bound parameters.
func argsKey(args []mem.Value) string {
	var b strings.Builder
	for i, a := range args {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(a.Key())
	}
	return b.String()
}

// ObserveInstance registers (or refreshes) a bound query instance from the
// QI/URL map and links it to a page (§4.1.2 discovery mode). It returns the
// instance and whether its type was newly discovered.
func (r *Registry) ObserveInstance(sql, cacheKey string) (*Instance, bool, error) {
	sel, err := r.parseSelect(sql)
	if err != nil {
		return nil, false, fmt.Errorf("invalidator: %w", err)
	}
	_, litArgs := sqlparser.Canonicalize(sel)
	args := make([]mem.Value, len(litArgs))
	for i, e := range litArgs {
		if e == nil {
			// Unbound placeholder in a supposedly bound instance: cannot
			// evaluate → caller treats the page conservatively.
			return nil, false, fmt.Errorf("invalidator: instance has unbound placeholder")
		}
		v, err := mem.FromLiteral(e)
		if err != nil {
			return nil, false, err
		}
		args[i] = v
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	before := len(r.types)
	qt := r.internType(sel)
	newType := len(r.types) > before

	ik := qt.Key + "\x00" + argsKey(args)
	inst, ok := r.instances[ik]
	if !ok {
		inst = &Instance{
			Type:    qt,
			Args:    args,
			ArgsKey: argsKey(args),
			Bound:   sqlparser.CopyStmt(sel).(*sqlparser.SelectStmt),
			Pages:   make(map[string]bool),
		}
		r.instances[ik] = inst
		set, ok := r.byType[qt]
		if !ok {
			set = make(map[*Instance]bool)
			r.byType[qt] = set
		}
		set[inst] = true
		qt.stats.Instances++
		qt.stats.LiveInstances++
	}
	if cacheKey != "" {
		wasLive := len(inst.Pages) > 0
		inst.Pages[cacheKey] = true
		links, ok := r.pageLinks[cacheKey]
		if !ok {
			links = make(map[*Instance]bool)
			r.pageLinks[cacheKey] = links
		}
		links[inst] = true
		if !wasLive && r.observer != nil {
			r.observer.InstanceLive(inst)
		}
	}
	return inst, newType, nil
}

// MarkConservative records a page whose dependencies cannot be analyzed;
// it will be invalidated whenever anything in the database changes.
func (r *Registry) MarkConservative(cacheKey string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conservativePages[cacheKey] = true
}

// ConservativePages returns the current conservative page set.
func (r *Registry) ConservativePages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.conservativePages))
	for k := range r.conservativePages {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UnlinkPage removes every instance↔page link for cacheKey (after its cache
// entry was ejected). Instances left without pages stay registered (their
// type statistics persist) but no longer participate in invalidation.
func (r *Registry) UnlinkPage(cacheKey string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.unlinkPageLocked(cacheKey)
}

func (r *Registry) unlinkPageLocked(cacheKey string) {
	delete(r.conservativePages, cacheKey)
	links, ok := r.pageLinks[cacheKey]
	if !ok {
		return
	}
	delete(r.pageLinks, cacheKey)
	for inst := range links {
		delete(inst.Pages, cacheKey)
		if len(inst.Pages) == 0 {
			delete(r.instances, inst.Type.Key+"\x00"+inst.ArgsKey)
			if set, ok := r.byType[inst.Type]; ok {
				delete(set, inst)
				if len(set) == 0 {
					delete(r.byType, inst.Type)
				}
			}
			inst.Type.stats.LiveInstances--
			if r.observer != nil {
				r.observer.InstanceDead(inst)
			}
		}
	}
}

// RelinkPage replaces a page's links: called when the sniffer reports the
// page was regenerated with a (possibly different) query set.
func (r *Registry) RelinkPage(cacheKey string) {
	r.UnlinkPage(cacheKey)
}

// TypesForTable returns the types referencing the (case-insensitive) table.
func (r *Registry) TypesForTable(table string) []*QueryType {
	return r.TypesForTableInto(table, nil)
}

// TypesForTableInto appends the types referencing the (case-insensitive)
// table into buf[:0] and returns it, ordered by ID. Passing the previous
// result back in makes the per-delta hot path allocation-free once the
// buffer has grown to fleet size.
func (r *Registry) TypesForTableInto(table string, buf []*QueryType) []*QueryType {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := buf[:0]
	for qt := range r.byTable[strings.ToLower(table)] {
		out = append(out, qt)
	}
	slices.SortFunc(out, func(a, b *QueryType) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		default:
			return 0
		}
	})
	return out
}

// InstancesOf returns the live instances of a type (with ≥1 page).
func (r *Registry) InstancesOf(qt *QueryType) []*Instance {
	return r.InstancesOfInto(qt, nil)
}

// InstancesOfInto appends the live instances of qt (with ≥1 page) into
// buf[:0] and returns it, ordered by ArgsKey. The byType map makes this
// O(instances of qt) rather than a scan of every registered instance, and
// buffer reuse makes it allocation-free at steady state.
func (r *Registry) InstancesOfInto(qt *QueryType, buf []*Instance) []*Instance {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := buf[:0]
	for inst := range r.byType[qt] {
		if len(inst.Pages) > 0 {
			out = append(out, inst)
		}
	}
	slices.SortFunc(out, func(a, b *Instance) int { return strings.Compare(a.ArgsKey, b.ArgsKey) })
	return out
}

// Types returns all registered types ordered by ID.
func (r *Registry) Types() []*QueryType {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryType, 0, len(r.types))
	for _, qt := range r.types {
		out = append(out, qt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Type returns the registered type for a canonical template key.
func (r *Registry) Type(key string) (*QueryType, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	qt, ok := r.types[strings.ToLower(key)]
	return qt, ok
}

// Pages returns every page currently linked to at least one instance or
// marked conservative.
func (r *Registry) Pages() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(r.pageLinks)+len(r.conservativePages))
	for k := range r.pageLinks {
		seen[k] = true
	}
	for k := range r.conservativePages {
		seen[k] = true
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HasPage reports whether the page is still known to the registry — linked
// to at least one instance or marked conservative. The eject retry path
// uses it to drop pending keys whose pages have since left the registry.
func (r *Registry) HasPage(cacheKey string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conservativePages[cacheKey] {
		return true
	}
	_, ok := r.pageLinks[cacheKey]
	return ok
}

// StatsOf returns a copy of the type's statistics.
func (r *Registry) StatsOf(qt *QueryType) TypeStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return qt.stats
}

// locked helpers used by the invalidator cycle (which coordinates its own
// larger critical sections).

func (r *Registry) withLock(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}
