package invalidator

import (
	"fmt"
	"testing"
)

// The per-delta enumeration APIs are on the cycle's hot path: every delta
// batch asks "which types touch this table" and "which instances of this
// type are live" once per (type × table) unit. These tests pin the
// allocation contract: with a reused buffer, steady-state enumeration
// allocates nothing.

// allocRegistry registers nTypes templates × nInsts bound instances
// against table t0.
func allocRegistry(tb testing.TB, nTypes, nInsts int) *Registry {
	tb.Helper()
	r := NewRegistry()
	for ty := 0; ty < nTypes; ty++ {
		for i := 0; i < nInsts; i++ {
			sql := fmt.Sprintf("SELECT c%d FROM t0 WHERE a = %d", ty, i)
			if _, _, err := r.ObserveInstance(sql, fmt.Sprintf("page-%d-%d", ty, i)); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return r
}

func TestTypesForTableIntoZeroAlloc(t *testing.T) {
	r := allocRegistry(t, 8, 4)
	buf := r.TypesForTableInto("t0", nil)
	if len(buf) != 8 {
		t.Fatalf("got %d types, want 8", len(buf))
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.TypesForTableInto("t0", buf)
	})
	if allocs != 0 {
		t.Fatalf("TypesForTableInto allocated %.1f objects/op with a warm buffer, want 0", allocs)
	}
}

func TestInstancesOfIntoZeroAlloc(t *testing.T) {
	r := allocRegistry(t, 2, 64)
	qt := r.TypesForTable("t0")[0]
	buf := r.InstancesOfInto(qt, nil)
	if len(buf) != 64 {
		t.Fatalf("got %d instances, want 64", len(buf))
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = r.InstancesOfInto(qt, buf)
	})
	if allocs != 0 {
		t.Fatalf("InstancesOfInto allocated %.1f objects/op with a warm buffer, want 0", allocs)
	}
}

// BenchmarkRegistryEnumeration measures the per-delta enumeration cost that
// Cycle pays for every (type × delta table) unit; the Into variants with a
// reused buffer are the ones the cycle actually uses.
func BenchmarkRegistryEnumeration(b *testing.B) {
	r := allocRegistry(b, 16, 64)
	qt := r.TypesForTable("t0")[0]
	b.Run("TypesForTable/alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.TypesForTable("t0")
		}
	})
	b.Run("TypesForTable/into", func(b *testing.B) {
		b.ReportAllocs()
		var buf []*QueryType
		for i := 0; i < b.N; i++ {
			buf = r.TypesForTableInto("t0", buf)
		}
	})
	b.Run("InstancesOf/alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = r.InstancesOf(qt)
		}
	})
	b.Run("InstancesOf/into", func(b *testing.B) {
		b.ReportAllocs()
		var buf []*Instance
		for i := 0; i < b.N; i++ {
			buf = r.InstancesOfInto(qt, buf)
		}
	})
}
