package faults

import (
	"fmt"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/invalidator"
	"repro/internal/trace"
)

// apply turns one decision into a pass/fail outcome for a logical
// (non-transport) operation: Delay stalls then proceeds; Error, Drop, and
// Blackhole all fail — for a logical operation there is no connection to
// sever, so Drop degrades to an error and Blackhole stalls for the hold
// time first (modeling a call stuck in a dead peer).
func apply(inj *Injector, op string) error {
	switch k, d := inj.Decide(); k {
	case Delay:
		sleep(d, nil)
	case Error, Drop:
		return fmt.Errorf("faults: %s: %w", op, ErrInjected)
	case Blackhole:
		sleep(inj.Hold(), nil)
		return fmt.Errorf("faults: %s black-holed: %w", op, ErrInjected)
	}
	return nil
}

// Ejector makes an invalidator.Ejector faulty. It always presents a
// BulkEjector face so the invalidator's truncation and breaker paths stay
// reachable; wrapping a non-bulk ejector makes EjectAll fail outright
// (there is nothing sound to delegate to).
type Ejector struct {
	Next invalidator.Ejector
	Inj  *Injector
}

// Eject implements invalidator.Ejector.
func (e Ejector) Eject(keys []string) error {
	if err := apply(e.Inj, "eject"); err != nil {
		return err
	}
	return e.Next.Eject(keys)
}

// EjectTraced implements invalidator.TracedEjector, forwarding the trace
// contexts when the wrapped ejector understands them. A faulted eject drops
// the contexts with the keys — exactly like a real eject failure, so the
// invalidator's Force/retry tracing sees the same thing it would in
// production.
func (e Ejector) EjectTraced(keys []string, ctxs map[string]trace.Context) error {
	if err := apply(e.Inj, "eject"); err != nil {
		return err
	}
	if te, ok := e.Next.(invalidator.TracedEjector); ok {
		return te.EjectTraced(keys, ctxs)
	}
	return e.Next.Eject(keys)
}

// EjectAll implements invalidator.BulkEjector.
func (e Ejector) EjectAll() error {
	if err := apply(e.Inj, "eject-all"); err != nil {
		return err
	}
	bulk, ok := e.Next.(invalidator.BulkEjector)
	if !ok {
		return fmt.Errorf("faults: eject-all: wrapped ejector %T is not bulk", e.Next)
	}
	return bulk.EjectAll()
}

// Puller makes an invalidator.LogPuller faulty: a faulted pull returns an
// error and no records, never a partial or reordered batch.
type Puller struct {
	Next invalidator.LogPuller
	Inj  *Injector
}

// PullSince implements invalidator.LogPuller.
func (p Puller) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	if err := apply(p.Inj, "log-pull"); err != nil {
		return nil, false, 0, err
	}
	return p.Next.PullSince(lsn)
}

// Mapper makes an invalidator.Mapper faulty. Run has no error path, so a
// faulted run is skipped entirely (the mapper machine being down for one
// cycle): unread log entries pile up and, if the outage outlasts the log
// capacity, surface as a genuine truncation — exactly the production
// failure mode. ForceTruncate additionally injects a spurious truncation
// signal for recovery tests.
type Mapper struct {
	Next invalidator.Mapper
	Inj  *Injector

	forced atomic.Bool
}

// Run implements invalidator.Mapper.
func (m *Mapper) Run() int {
	if err := apply(m.Inj, "mapper-run"); err != nil {
		return 0
	}
	return m.Next.Run()
}

// TakeTruncated implements invalidator.Mapper.
func (m *Mapper) TakeTruncated() bool {
	return m.forced.Swap(false) || m.Next.TakeTruncated()
}

// ForceTruncate makes the next TakeTruncated report a truncation even if
// the underlying mapper saw none.
func (m *Mapper) ForceTruncate() { m.forced.Store(true) }
