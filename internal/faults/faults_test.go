package faults

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/invalidator"
	"repro/internal/obs"
)

// decisions drains n decisions from inj, returning just the kinds.
func decisions(inj *Injector, n int) []Kind {
	out := make([]Kind, n)
	for i := range out {
		out[i], _ = inj.Decide()
	}
	return out
}

func TestDecideDeterministicFromSeed(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.2, DropRate: 0.2, BlackholeRate: 0.1, DelayRate: 0.2}
	a := decisions(New(cfg), 200)
	b := decisions(New(cfg), 200)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
		if a[i] != None {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("seeded injector with 70% combined rate injected nothing in 200 ops")
	}
	// A different seed must eventually diverge.
	c := decisions(New(Config{Seed: 43, ErrorRate: 0.2, DropRate: 0.2, BlackholeRate: 0.1, DelayRate: 0.2}), 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical 200-decision sequences")
	}
}

func TestFailNextScriptsExactSequence(t *testing.T) {
	inj := New(Config{})
	inj.Disable() // no random noise: only the script fires
	inj.FailNext(Error, Drop, Blackhole)
	want := []Kind{Error, Drop, Blackhole, None, None}
	for i, w := range want {
		if k, _ := inj.Decide(); k != w {
			t.Fatalf("decision %d = %v, want %v", i, k, w)
		}
	}
}

func TestHealDiscardsScriptAndRandomness(t *testing.T) {
	inj := New(Config{ErrorRate: 1})
	inj.FailNext(Drop, Drop)
	inj.Heal()
	for i := 0; i < 50; i++ {
		if k, _ := inj.Decide(); k != None {
			t.Fatalf("decision %d after Heal = %v, want None", i, k)
		}
	}
}

func TestInstrumentCountsByKind(t *testing.T) {
	reg := obs.NewRegistry()
	inj := New(Config{})
	inj.Instrument(reg, "")
	inj.Disable()
	inj.FailNext(Error, Error, Drop, Blackhole, Delay)
	decisions(inj, 10)
	checks := map[string]int64{
		"faults.injected_total":   5,
		"faults.errors_total":     2,
		"faults.drops_total":      1,
		"faults.blackholes_total": 1,
		"faults.delays_total":     1,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestConnWrapperErrorAndDrop(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	inj := New(Config{})
	inj.Disable()
	fc := WrapConn(a, inj)

	// Error: the call fails, the connection survives.
	inj.FailNext(Error)
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Write under Error fault: err = %v, want ErrInjected", err)
	}

	// A clean write still goes through to the peer.
	go func() {
		buf := make([]byte, 1)
		b.Read(buf)
	}()
	if _, err := fc.Write([]byte("y")); err != nil {
		t.Fatalf("clean Write failed: %v", err)
	}

	// Drop: the call fails AND the underlying connection is severed.
	inj.FailNext(Drop)
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("Read under Drop fault: err = %v, want ErrInjected", err)
	}
	if _, err := a.Write([]byte("z")); err == nil {
		t.Fatal("underlying conn still writable after Drop")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(Config{})
	inj.Disable()
	fln := WrapListener(ln, inj)
	defer fln.Close()

	done := make(chan error, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = c.Read(make([]byte, 1))
		done <- err
	}()

	inj.FailNext(Error) // consumed by the server side's first Read
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	if err := <-done; !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn Read err = %v, want ErrInjected", err)
	}
}

func TestTransportWrapper(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	inj := New(Config{BlackholeHold: 5 * time.Second})
	inj.Disable()
	client := &http.Client{Transport: WrapTransport(nil, inj)}

	inj.FailNext(Error)
	if _, err := client.Get(srv.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("GET under Error fault: err = %v, want ErrInjected", err)
	}

	// Healthy request goes through.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("clean GET failed: %v", err)
	}
	resp.Body.Close()

	// Blackhole respects the request context: with a 50ms deadline the call
	// must return long before the 5s hold.
	inj.FailNext(Blackhole)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatal("black-holed request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("black-holed request ignored its context: took %s", elapsed)
	}
}

// stubEjector records ejects and can act as a BulkEjector.
type stubEjector struct {
	ejected [][]string
	flushes int
}

func (s *stubEjector) Eject(keys []string) error { s.ejected = append(s.ejected, keys); return nil }
func (s *stubEjector) EjectAll() error           { s.flushes++; return nil }

// keysOnlyEjector has no EjectAll.
type keysOnlyEjector struct{}

func (keysOnlyEjector) Eject([]string) error { return nil }

func TestEjectorDecorator(t *testing.T) {
	next := &stubEjector{}
	inj := New(Config{})
	inj.Disable()
	e := Ejector{Next: next, Inj: inj}

	inj.FailNext(Error)
	if err := e.Eject([]string{"a"}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Eject under fault: err = %v, want ErrInjected", err)
	}
	if len(next.ejected) != 0 {
		t.Fatal("faulted Eject reached the wrapped ejector")
	}
	if err := e.Eject([]string{"a"}); err != nil || len(next.ejected) != 1 {
		t.Fatalf("clean Eject: err=%v forwarded=%d", err, len(next.ejected))
	}
	if err := e.EjectAll(); err != nil || next.flushes != 1 {
		t.Fatalf("clean EjectAll: err=%v flushes=%d", err, next.flushes)
	}

	// The decorator is always a BulkEjector, but over a keys-only ejector
	// EjectAll must fail rather than silently no-op.
	var asBulk invalidator.Ejector = Ejector{Next: keysOnlyEjector{}, Inj: inj}
	bulk, ok := asBulk.(invalidator.BulkEjector)
	if !ok {
		t.Fatal("faults.Ejector does not satisfy BulkEjector")
	}
	if err := bulk.EjectAll(); err == nil {
		t.Fatal("EjectAll over keys-only ejector reported success")
	}
}

// stubPuller returns a fixed record batch.
type stubPuller struct{ calls int }

func (s *stubPuller) PullSince(lsn int64) ([]engine.UpdateRecord, bool, int64, error) {
	s.calls++
	return []engine.UpdateRecord{{LSN: lsn}}, false, lsn + 1, nil
}

func TestPullerDecorator(t *testing.T) {
	next := &stubPuller{}
	inj := New(Config{})
	inj.Disable()
	p := Puller{Next: next, Inj: inj}

	inj.FailNext(Drop)
	if _, _, _, err := p.PullSince(7); !errors.Is(err, ErrInjected) {
		t.Fatalf("PullSince under fault: err = %v, want ErrInjected", err)
	}
	if next.calls != 0 {
		t.Fatal("faulted pull reached the wrapped puller")
	}
	recs, trunc, next2, err := p.PullSince(7)
	if err != nil || trunc || next2 != 8 || len(recs) != 1 {
		t.Fatalf("clean pull: recs=%d trunc=%v next=%d err=%v", len(recs), trunc, next2, err)
	}
}

// stubMapper counts runs and reports a scripted truncation once.
type stubMapper struct {
	runs      int
	truncated bool
}

func (s *stubMapper) Run() int { s.runs++; return 3 }
func (s *stubMapper) TakeTruncated() bool {
	t := s.truncated
	s.truncated = false
	return t
}

func TestMapperDecorator(t *testing.T) {
	next := &stubMapper{}
	inj := New(Config{})
	inj.Disable()
	m := &Mapper{Next: next, Inj: inj}

	inj.FailNext(Error)
	if n := m.Run(); n != 0 || next.runs != 0 {
		t.Fatalf("faulted Run: n=%d underlying runs=%d, want 0/0", n, next.runs)
	}
	if n := m.Run(); n != 3 || next.runs != 1 {
		t.Fatalf("clean Run: n=%d underlying runs=%d, want 3/1", n, next.runs)
	}

	// ForceTruncate surfaces once, then defers to the wrapped mapper.
	m.ForceTruncate()
	if !m.TakeTruncated() {
		t.Fatal("TakeTruncated missed the forced truncation")
	}
	if m.TakeTruncated() {
		t.Fatal("forced truncation reported twice")
	}
	next.truncated = true
	if !m.TakeTruncated() {
		t.Fatal("TakeTruncated hid the wrapped mapper's truncation")
	}
}
