// Package faults is CachePortal's deterministic fault-injection layer. An
// Injector is a seedable source of fault decisions — delay, error, dropped
// connection, or black-hole — that wrappers apply to the pipeline's I/O
// edges: net.Conn / net.Listener (the wire protocol), http.RoundTripper
// (log mirror, ejector, proxy), and decorators for the invalidator's
// Ejector, LogPuller, and Mapper. Tests use scripted faults (FailNext) for
// exact scenarios; the chaos mode of cmd/experiment and the chaos
// integration test use seeded random rates, so every chaos run is
// reproducible from its seed.
//
// The injector never fabricates partial data: a faulted operation either
// completes untouched (after an injected delay) or fails outright, matching
// the crash/omission fault model of DESIGN.md §7.
package faults

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/obs"
)

// Kind classifies one injected fault.
type Kind int

// Fault kinds.
const (
	// None means the operation proceeds untouched.
	None Kind = iota
	// Delay stalls the operation for up to Config.Delay, then lets it
	// proceed (slow network / overloaded peer).
	Delay
	// Error fails the operation immediately with ErrInjected (refused
	// connection, 5xx, serialization failure).
	Error
	// Drop severs the underlying transport mid-operation: connections are
	// closed, requests aborted (peer crash, connection reset).
	Drop
	// Blackhole makes the operation hang — until the caller's context or
	// deadline fires, or Config.BlackholeHold elapses — and then fail. This
	// is the fault that distinguishes deadline-bearing code from code that
	// blocks forever.
	Blackhole
)

// String names the kind for metrics and logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Drop:
		return "drop"
	case Blackhole:
		return "blackhole"
	default:
		return "unknown"
	}
}

// ErrInjected marks every failure the injector fabricates; test assertions
// and retry policies can identify synthetic faults with errors.Is.
var ErrInjected = errors.New("faults: injected failure")

// Config parameterizes an Injector. Rates are independent probabilities per
// operation, evaluated in order Error, Drop, Blackhole, Delay (first match
// wins), so at most one fault is injected per operation.
type Config struct {
	// Seed makes the fault sequence reproducible; 1 is used when zero.
	Seed int64
	// ErrorRate / DropRate / BlackholeRate / DelayRate are per-operation
	// probabilities in [0, 1].
	ErrorRate     float64
	DropRate      float64
	BlackholeRate float64
	DelayRate     float64
	// Delay is the maximum injected delay (uniform in (0, Delay]); default
	// 10ms when a DelayRate is set.
	Delay time.Duration
	// BlackholeHold bounds how long a black-holed operation hangs when the
	// caller brings no context or deadline of its own; default 1s. It keeps
	// chaos tests finite even against code with missing deadlines.
	BlackholeHold time.Duration
}

// Injector decides, operation by operation, which fault (if any) to inject.
// It is safe for concurrent use. A disabled injector (Disable/Heal) decides
// None for everything, so "faults heal" is one call.
type Injector struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	enabled bool
	forced  []Kind // scripted decisions, consumed before the random ones

	met *metrics
}

// metrics are the injector's obs handles (nil until Instrument).
type metrics struct {
	injected   *obs.Counter
	delays     *obs.Counter
	errs       *obs.Counter
	drops      *obs.Counter
	blackholes *obs.Counter
}

// New creates an enabled Injector from cfg.
func New(cfg Config) *Injector {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 10 * time.Millisecond
	}
	if cfg.BlackholeHold <= 0 {
		cfg.BlackholeHold = time.Second
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), enabled: true}
}

// Instrument registers the injector's counters with reg ("faults.*" when
// prefix is empty): total injected faults plus one counter per kind.
func (i *Injector) Instrument(reg *obs.Registry, prefix string) {
	if prefix == "" {
		prefix = "faults"
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.met = &metrics{
		injected:   reg.Counter(prefix + ".injected_total"),
		delays:     reg.Counter(prefix + ".delays_total"),
		errs:       reg.Counter(prefix + ".errors_total"),
		drops:      reg.Counter(prefix + ".drops_total"),
		blackholes: reg.Counter(prefix + ".blackholes_total"),
	}
}

// Enable turns random fault injection on (the state New returns).
func (i *Injector) Enable() {
	i.mu.Lock()
	i.enabled = true
	i.mu.Unlock()
}

// Disable stops random injection; scripted faults (FailNext) still fire.
func (i *Injector) Disable() {
	i.mu.Lock()
	i.enabled = false
	i.mu.Unlock()
}

// Heal disables random injection and discards any scripted faults: from the
// next operation on, everything succeeds.
func (i *Injector) Heal() {
	i.mu.Lock()
	i.enabled = false
	i.forced = nil
	i.mu.Unlock()
}

// Enabled reports whether random injection is on.
func (i *Injector) Enabled() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.enabled
}

// FailNext scripts the next decisions exactly: each listed kind is consumed
// by one upcoming operation, before any random decision applies.
func (i *Injector) FailNext(kinds ...Kind) {
	i.mu.Lock()
	i.forced = append(i.forced, kinds...)
	i.mu.Unlock()
}

// Decide picks the fault for one operation and counts it. Wrappers call it
// once per operation; the sampled delay accompanies Delay decisions.
func (i *Injector) Decide() (Kind, time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	k := None
	if len(i.forced) > 0 {
		k = i.forced[0]
		i.forced = i.forced[1:]
	} else if i.enabled {
		p := i.rng.Float64()
		switch {
		case p < i.cfg.ErrorRate:
			k = Error
		case p < i.cfg.ErrorRate+i.cfg.DropRate:
			k = Drop
		case p < i.cfg.ErrorRate+i.cfg.DropRate+i.cfg.BlackholeRate:
			k = Blackhole
		case p < i.cfg.ErrorRate+i.cfg.DropRate+i.cfg.BlackholeRate+i.cfg.DelayRate:
			k = Delay
		}
	}
	var d time.Duration
	if k == Delay {
		d = time.Duration(i.rng.Int63n(int64(i.cfg.Delay))) + 1
	}
	i.countLocked(k)
	return k, d
}

func (i *Injector) countLocked(k Kind) {
	if i.met == nil || k == None {
		return
	}
	i.met.injected.Inc()
	switch k {
	case Delay:
		i.met.delays.Inc()
	case Error:
		i.met.errs.Inc()
	case Drop:
		i.met.drops.Inc()
	case Blackhole:
		i.met.blackholes.Inc()
	}
}

// Hold returns the configured black-hole hold time.
func (i *Injector) Hold() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg.BlackholeHold
}

// sleep blocks for d or until done closes (done may be nil).
func sleep(d time.Duration, done <-chan struct{}) {
	if d <= 0 {
		return
	}
	if done == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}
