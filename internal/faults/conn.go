package faults

import (
	"fmt"
	"net"
)

// WrapConn wraps c so every Read and Write consults inj first: Delay stalls
// the call, Error fails it, Drop closes the underlying connection and fails
// the call (the peer sees a reset), and Blackhole stalls for the injector's
// hold time and then fails. The wrapper never corrupts bytes — the fault
// model is crash/omission, not Byzantine.
func WrapConn(c net.Conn, inj *Injector) net.Conn {
	return &conn{Conn: c, inj: inj}
}

type conn struct {
	net.Conn
	inj *Injector
}

// fault applies one decision to the named operation; a non-nil error means
// the operation must not proceed.
func (c *conn) fault(op string) error {
	switch k, d := c.inj.Decide(); k {
	case Delay:
		sleep(d, nil)
	case Error:
		return fmt.Errorf("faults: conn %s: %w", op, ErrInjected)
	case Drop:
		c.Conn.Close()
		return fmt.Errorf("faults: conn %s dropped: %w", op, ErrInjected)
	case Blackhole:
		sleep(c.inj.Hold(), nil)
		return fmt.Errorf("faults: conn %s black-holed: %w", op, ErrInjected)
	}
	return nil
}

func (c *conn) Read(p []byte) (int, error) {
	if err := c.fault("read"); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if err := c.fault("write"); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

// WrapListener wraps ln so every accepted connection is wrapped with
// WrapConn(…, inj): a one-line way to make an entire server's traffic
// faulty without touching the server.
func WrapListener(ln net.Listener, inj *Injector) net.Listener {
	return &listener{Listener: ln, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}
