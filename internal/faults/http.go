package faults

import (
	"fmt"
	"net/http"
	"time"
)

// WrapTransport wraps rt (http.DefaultTransport when nil) so every
// round trip consults inj: Delay stalls the request (respecting its
// context), Error and Drop abort it, and Blackhole hangs until the
// request's context fires — or the injector's hold time elapses — and then
// fails. Install it as the Transport of any *http.Client to make that
// client's edge faulty: the log mirror, the ejector, or the caching proxy.
func WrapTransport(rt http.RoundTripper, inj *Injector) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &transport{rt: rt, inj: inj}
}

type transport struct {
	rt  http.RoundTripper
	inj *Injector
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	switch k, d := t.inj.Decide(); k {
	case Delay:
		sleep(d, req.Context().Done())
		if err := req.Context().Err(); err != nil {
			return nil, err
		}
	case Error:
		return nil, fmt.Errorf("faults: http %s %s: %w", req.Method, req.URL, ErrInjected)
	case Drop:
		return nil, fmt.Errorf("faults: http %s %s dropped: %w", req.Method, req.URL, ErrInjected)
	case Blackhole:
		hold := time.NewTimer(t.inj.Hold())
		defer hold.Stop()
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-hold.C:
			return nil, fmt.Errorf("faults: http %s %s black-holed: %w", req.Method, req.URL, ErrInjected)
		}
	}
	return t.rt.RoundTrip(req)
}
