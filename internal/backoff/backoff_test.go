package backoff

import (
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	base := 100 * time.Millisecond
	max := time.Second
	prevHi := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		ideal := base << (attempt - 1)
		if ideal > max {
			ideal = max
		}
		lo, hi := ideal-ideal/4, ideal+ideal/4
		for i := 0; i < 50; i++ {
			d := Delay(base, attempt, max)
			if d < lo || d > hi {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
		}
		if hi < prevHi {
			t.Fatalf("attempt %d: upper bound shrank", attempt)
		}
		prevHi = hi
	}
	// The cap holds no matter how large the attempt count gets.
	if d := Delay(base, 1_000_000, max); d > max+max/4 {
		t.Fatalf("capped delay %v exceeds max", d)
	}
}

func TestDelayEdgeCases(t *testing.T) {
	if d := Delay(0, 3, time.Second); d != 0 {
		t.Fatalf("zero base: %v", d)
	}
	if d := Delay(time.Second, 0, 0); d < 750*time.Millisecond || d > 1250*time.Millisecond {
		t.Fatalf("attempt 0 should behave like attempt 1: %v", d)
	}
}
