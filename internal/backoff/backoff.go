// Package backoff computes capped exponential backoff with jitter. It is
// the one retry policy shared by every component that reconnects or retries
// on a cadence — the wire client, the invalidator's cycle loop, the portal,
// and the daemons — so their degradation behaviour is uniform: double the
// wait on each consecutive failure, cap it, and spread retries with ±25%
// jitter so a farm of failing components does not retry in lockstep.
package backoff

import (
	"math/rand"
	"time"
)

// Delay returns how long to wait before retry number attempt (1 = first
// retry after the first failure): base·2^(attempt-1) with ±25% jitter,
// capped at max (0 = uncapped). attempt < 1 is treated as 1; base <= 0
// returns 0 (no waiting policy configured).
func Delay(base time.Duration, attempt int, max time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base
	// 31 doublings from any sane base already exceeds every cap in use;
	// bounding the loop keeps huge attempt counts overflow-free.
	for i := 1; i < attempt && i < 32; i++ {
		d *= 2
		if max > 0 && d >= max {
			d = max
			break
		}
	}
	if max > 0 && d > max {
		d = max
	}
	if j := d / 4; j > 0 {
		d = d - j + time.Duration(rand.Int63n(int64(2*j)))
	}
	return d
}
