package sqlparser

import (
	"reflect"
	"testing"
)

// FuzzParseRoundTrip checks the printer/parser pair: any statement the
// parser accepts must print to text the parser accepts again, and the
// re-parsed tree must print identically (print is a fixed point after one
// round). Canonicalization of both trees must also agree, since the whole
// invalidation pipeline keys on canonical fingerprints of printed text.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"SELECT a FROM t",
		"SELECT t.a, u.b FROM t, u WHERE t.a = u.a AND t.b > 5",
		"SELECT * FROM Car WHERE maker = 'Toyota' AND price >= 15000.5",
		"SELECT COUNT(*) FROM items",
		"SELECT a FROM t WHERE b = $1 AND c < $2",
		"SELECT a FROM t WHERE b IN (1, 2, 3) OR NOT (c = 'x')",
		"INSERT INTO t VALUES (1, 'two', 3.0)",
		"INSERT INTO t (a, b) VALUES (-1, 'it''s')",
		"UPDATE t SET a = 1, b = 'x' WHERE c <> 2",
		"DELETE FROM t WHERE a = 1.5e3",
		"CREATE TABLE t (a INT PRIMARY KEY, b TEXT, c FLOAT)",
		"SELECT a FROM t WHERE b BETWEEN 1 AND 2",
		"SELECT a FROM t WHERE s LIKE '%x_'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed text does not re-parse\ninput: %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		if got := again.String(); got != printed {
			t.Fatalf("print is not a fixed point\ninput: %q\nfirst: %q\nsecond: %q", src, printed, got)
		}
		canon1, lits1 := Canonicalize(stmt)
		canon2, lits2 := Canonicalize(again)
		if FingerprintStmt(canon1) != FingerprintStmt(canon2) {
			t.Fatalf("canonical fingerprints diverge\ninput: %q\nfirst: %q\nsecond: %q",
				src, FingerprintStmt(canon1), FingerprintStmt(canon2))
		}
		if len(lits1) != len(lits2) {
			t.Fatalf("literal counts diverge: %d vs %d for %q", len(lits1), len(lits2), src)
		}
		for i := range lits1 {
			if (lits1[i] == nil) != (lits2[i] == nil) {
				t.Fatalf("placeholder slot %d diverges for %q", i, src)
			}
			if lits1[i] != nil && !reflect.DeepEqual(lits1[i], lits2[i]) {
				t.Fatalf("literal %d diverges for %q: %#v vs %#v", i, src, lits1[i], lits2[i])
			}
		}
	})
}
