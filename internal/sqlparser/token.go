// Package sqlparser implements a lexer, parser, AST, and printer for the SQL
// subset used throughout the CachePortal reproduction: CREATE TABLE / CREATE
// INDEX / DROP TABLE for DDL, SELECT (with joins, aggregation, ORDER BY and
// LIMIT), INSERT, UPDATE and DELETE for DML, plus positional ($1), anonymous
// (?) and named (:name) placeholders so that parameterized query types
// (section 2.3.2 of the paper) can be represented directly.
//
// The printer produces a canonical rendering of every AST node; parsing the
// printed form yields an equal AST, a property the package's quick tests
// verify. Canonical printing is what the invalidator uses to group query
// instances into query types.
package sqlparser

import "fmt"

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds. Keywords are folded into KindKeyword with the upper-cased
// keyword text in Token.Text; operators get their own kinds.
const (
	KindEOF TokenKind = iota
	KindIdent
	KindKeyword
	KindNumber
	KindString
	KindPlaceholder // $1, ?, :name
	KindLParen
	KindRParen
	KindComma
	KindDot
	KindSemicolon
	KindStar
	KindPlus
	KindMinus
	KindSlash
	KindPercent
	KindEq
	KindNotEq
	KindLt
	KindLtEq
	KindGt
	KindGtEq
	KindConcat // ||
)

// String names the token kind for diagnostics.
func (k TokenKind) String() string {
	switch k {
	case KindEOF:
		return "EOF"
	case KindIdent:
		return "identifier"
	case KindKeyword:
		return "keyword"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindPlaceholder:
		return "placeholder"
	case KindLParen:
		return "("
	case KindRParen:
		return ")"
	case KindComma:
		return ","
	case KindDot:
		return "."
	case KindSemicolon:
		return ";"
	case KindStar:
		return "*"
	case KindPlus:
		return "+"
	case KindMinus:
		return "-"
	case KindSlash:
		return "/"
	case KindPercent:
		return "%"
	case KindEq:
		return "="
	case KindNotEq:
		return "<>"
	case KindLt:
		return "<"
	case KindLtEq:
		return "<="
	case KindGt:
		return ">"
	case KindGtEq:
		return ">="
	case KindConcat:
		return "||"
	default:
		return fmt.Sprintf("TokenKind(%d)", int(k))
	}
}

// Pos is a byte offset plus 1-based line/column within the input.
type Pos struct {
	Offset int
	Line   int
	Column int
}

// String renders the position as line:column.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	// Text is the token's canonical text. For keywords it is upper-cased;
	// for identifiers the original case is preserved; for strings it is the
	// unquoted, unescaped value.
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case KindIdent, KindKeyword, KindNumber, KindPlaceholder:
		return t.Text
	case KindString:
		return "'" + t.Text + "'"
	default:
		return t.Kind.String()
	}
}

// keywords is the set of reserved words recognised by the lexer. Identifiers
// matching these (case-insensitively) lex as KindKeyword.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "OFFSET": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "INDEX": true,
	"UNIQUE": true, "PRIMARY": true, "KEY": true, "ON": true,
	"AND": true, "OR": true, "NOT": true, "NULL": true,
	"TRUE": true, "FALSE": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "IS": true, "AS": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "CROSS": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "FLOAT": true,
	"REAL": true, "DOUBLE": true, "TEXT": true, "VARCHAR": true,
	"CHAR": true, "BOOL": true, "BOOLEAN": true, "PRECISION": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"IF": true, "EXISTS": true, "DEFAULT": true,
}

// IsKeyword reports whether s (case-insensitively) is a reserved word.
func IsKeyword(s string) bool { return keywords[upper(s)] }

// upper is an ASCII-only strings.ToUpper, sufficient for SQL keywords and
// cheaper than the Unicode-aware version on the hot lexing path.
func upper(s string) string {
	hasLower := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'a' <= c && c <= 'z' {
			hasLower = true
			break
		}
	}
	if !hasLower {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
