package sqlparser

import (
	"fmt"
	"strings"
)

// LexError describes a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *LexError) Error() string { return fmt.Sprintf("sql: lex error at %s: %s", e.Pos, e.Msg) }

// Lexer tokenizes SQL text. It is a simple single-pass scanner; callers
// normally use the Parser, which embeds a Lexer, rather than this type
// directly.
type Lexer struct {
	src    string
	off    int
	line   int
	col    int
	peeked *Token
	err    error
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first error encountered, if any.
func (l *Lexer) Err() error { return l.err }

func (l *Lexer) pos() Pos { return Pos{Offset: l.off, Line: l.line, Column: l.col} }

func (l *Lexer) errorf(p Pos, format string, args ...any) Token {
	if l.err == nil {
		l.err = &LexError{Pos: p, Msg: fmt.Sprintf(format, args...)}
	}
	return Token{Kind: KindEOF, Pos: p}
}

// advance consumes n bytes, maintaining line/column bookkeeping.
func (l *Lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

// Peek returns the next token without consuming it.
func (l *Lexer) Peek() Token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

// Next returns the next token, consuming it.
func (l *Lexer) Next() Token {
	if l.peeked != nil {
		t := *l.peeked
		l.peeked = nil
		return t
	}
	return l.scan()
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// skipSpaceAndComments advances past whitespace, -- line comments and
// /* block */ comments.
func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case isSpace(c):
			l.advance(1)
		case c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] == '-':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		case c == '/' && l.off+1 < len(l.src) && l.src[l.off+1] == '*':
			start := l.pos()
			l.advance(2)
			closed := false
			for l.off+1 < len(l.src) {
				if l.src[l.off] == '*' && l.src[l.off+1] == '/' {
					l.advance(2)
					closed = true
					break
				}
				l.advance(1)
			}
			if !closed {
				l.off = len(l.src)
				l.errorf(start, "unterminated block comment")
				return
			}
		default:
			return
		}
	}
}

func (l *Lexer) scan() Token {
	l.skipSpaceAndComments()
	if l.err != nil || l.off >= len(l.src) {
		return Token{Kind: KindEOF, Pos: l.pos()}
	}
	p := l.pos()
	c := l.src[l.off]
	switch {
	case isIdentStart(c):
		return l.scanIdent(p)
	case isDigit(c):
		return l.scanNumber(p)
	case c == '.':
		// Could be ".5" (a number) or a dot operator.
		if l.off+1 < len(l.src) && isDigit(l.src[l.off+1]) {
			return l.scanNumber(p)
		}
		l.advance(1)
		return Token{Kind: KindDot, Pos: p}
	case c == '\'':
		return l.scanString(p)
	case c == '"':
		return l.scanQuotedIdent(p)
	case c == '$':
		return l.scanDollarPlaceholder(p)
	case c == ':':
		return l.scanNamedPlaceholder(p)
	case c == '?':
		l.advance(1)
		return Token{Kind: KindPlaceholder, Text: "?", Pos: p}
	}
	// Operators and punctuation.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	switch two {
	case "<>", "!=":
		l.advance(2)
		return Token{Kind: KindNotEq, Text: "<>", Pos: p}
	case "<=":
		l.advance(2)
		return Token{Kind: KindLtEq, Text: "<=", Pos: p}
	case ">=":
		l.advance(2)
		return Token{Kind: KindGtEq, Text: ">=", Pos: p}
	case "||":
		l.advance(2)
		return Token{Kind: KindConcat, Text: "||", Pos: p}
	}
	l.advance(1)
	switch c {
	case '(':
		return Token{Kind: KindLParen, Pos: p}
	case ')':
		return Token{Kind: KindRParen, Pos: p}
	case ',':
		return Token{Kind: KindComma, Pos: p}
	case ';':
		return Token{Kind: KindSemicolon, Pos: p}
	case '*':
		return Token{Kind: KindStar, Text: "*", Pos: p}
	case '+':
		return Token{Kind: KindPlus, Text: "+", Pos: p}
	case '-':
		return Token{Kind: KindMinus, Text: "-", Pos: p}
	case '/':
		return Token{Kind: KindSlash, Text: "/", Pos: p}
	case '%':
		return Token{Kind: KindPercent, Text: "%", Pos: p}
	case '=':
		return Token{Kind: KindEq, Text: "=", Pos: p}
	case '<':
		return Token{Kind: KindLt, Text: "<", Pos: p}
	case '>':
		return Token{Kind: KindGt, Text: ">", Pos: p}
	}
	return l.errorf(p, "unexpected character %q", c)
}

func (l *Lexer) scanIdent(p Pos) Token {
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
		l.advance(1)
	}
	text := l.src[start:l.off]
	if IsKeyword(text) {
		return Token{Kind: KindKeyword, Text: upper(text), Pos: p}
	}
	return Token{Kind: KindIdent, Text: text, Pos: p}
}

// scanQuotedIdent scans a "double quoted" identifier; "" escapes a quote.
func (l *Lexer) scanQuotedIdent(p Pos) Token {
	l.advance(1) // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '"' {
			if l.off+1 < len(l.src) && l.src[l.off+1] == '"' {
				b.WriteByte('"')
				l.advance(2)
				continue
			}
			l.advance(1)
			return Token{Kind: KindIdent, Text: b.String(), Pos: p}
		}
		b.WriteByte(c)
		l.advance(1)
	}
	return l.errorf(p, "unterminated quoted identifier")
}

func (l *Lexer) scanNumber(p Pos) Token {
	start := l.off
	seenDot := false
	seenExp := false
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case isDigit(c):
			l.advance(1)
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance(1)
		case (c == 'e' || c == 'E') && !seenExp && l.off > start:
			// Exponent must be followed by digits (optionally signed).
			j := l.off + 1
			if j < len(l.src) && (l.src[j] == '+' || l.src[j] == '-') {
				j++
			}
			if j < len(l.src) && isDigit(l.src[j]) {
				seenExp = true
				l.advance(j - l.off)
			} else {
				return Token{Kind: KindNumber, Text: l.src[start:l.off], Pos: p}
			}
		default:
			return Token{Kind: KindNumber, Text: l.src[start:l.off], Pos: p}
		}
	}
	return Token{Kind: KindNumber, Text: l.src[start:l.off], Pos: p}
}

// scanString scans a 'single quoted' SQL string; ” escapes a quote.
func (l *Lexer) scanString(p Pos) Token {
	l.advance(1) // opening quote
	var b strings.Builder
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == '\'' {
			if l.off+1 < len(l.src) && l.src[l.off+1] == '\'' {
				b.WriteByte('\'')
				l.advance(2)
				continue
			}
			l.advance(1)
			return Token{Kind: KindString, Text: b.String(), Pos: p}
		}
		b.WriteByte(c)
		l.advance(1)
	}
	return l.errorf(p, "unterminated string literal")
}

// scanDollarPlaceholder scans $1, $2, ... or $name (the paper's $V1 style).
func (l *Lexer) scanDollarPlaceholder(p Pos) Token {
	l.advance(1) // '$'
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
		l.advance(1)
	}
	if l.off == start {
		return l.errorf(p, "bare '$' is not a valid placeholder")
	}
	return Token{Kind: KindPlaceholder, Text: "$" + l.src[start:l.off], Pos: p}
}

// scanNamedPlaceholder scans :name.
func (l *Lexer) scanNamedPlaceholder(p Pos) Token {
	l.advance(1) // ':'
	start := l.off
	for l.off < len(l.src) && isIdentPart(l.src[l.off]) {
		l.advance(1)
	}
	if l.off == start {
		return l.errorf(p, "bare ':' is not a valid placeholder")
	}
	return Token{Kind: KindPlaceholder, Text: ":" + l.src[start:l.off], Pos: p}
}
