package sqlparser

import (
	"fmt"
	"strings"
)

// Node is implemented by every AST node. String returns the canonical SQL
// rendering (see printer.go).
type Node interface {
	fmt.Stringer
	node()
}

// Stmt is a SQL statement.
type Stmt interface {
	Node
	stmt()
}

// Expr is a SQL scalar expression.
type Expr interface {
	Node
	expr()
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// ColumnRef names a column, optionally qualified by table (or alias).
type ColumnRef struct {
	Table  string // optional
	Column string
}

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ Value float64 }

// StringLit is a string literal.
type StringLit struct{ Value string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

// NullLit is the NULL literal.
type NullLit struct{}

// Placeholder is a query parameter: positional ($1, ?) or named (:x, $Vx).
// Ordinal is the 1-based position among the statement's placeholders in
// lexical order, assigned by the parser; it is what binding uses.
type Placeholder struct {
	Name    string // canonical text as written: "$1", "?", ":id", "$V1"
	Ordinal int
}

// BinaryOp identifies a binary operator.
type BinaryOp int

// Binary operators in increasing precedence groups (see parser.go).
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNotEq
	OpLt
	OpLtEq
	OpGt
	OpGtEq
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

// String renders the operator in canonical SQL form.
func (op BinaryOp) String() string {
	switch op {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNotEq:
		return "<>"
	case OpLt:
		return "<"
	case OpLtEq:
		return "<="
	case OpGt:
		return ">"
	case OpGtEq:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpConcat:
		return "||"
	default:
		return fmt.Sprintf("BinaryOp(%d)", int(op))
	}
}

// IsComparison reports whether op is a comparison operator.
func (op BinaryOp) IsComparison() bool {
	switch op {
	case OpEq, OpNotEq, OpLt, OpLtEq, OpGt, OpGtEq:
		return true
	}
	return false
}

// Flip returns the comparison with operand order reversed (a op b ⇔ b Flip(op) a).
func (op BinaryOp) Flip() BinaryOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLtEq:
		return OpGtEq
	case OpGt:
		return OpLt
	case OpGtEq:
		return OpLtEq
	default:
		return op
	}
}

// BinaryExpr is Left Op Right.
type BinaryExpr struct {
	Op    BinaryOp
	Left  Expr
	Right Expr
}

// UnaryExpr is NOT X or -X.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// ParenExpr preserves explicit grouping for exact round-tripping.
type ParenExpr struct{ X Expr }

// InExpr is X [NOT] IN (e1, e2, ...).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr
}

// BetweenExpr is X [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	X   Expr
	Not bool
	Lo  Expr
	Hi  Expr
}

// LikeExpr is X [NOT] LIKE Pattern. Patterns support % and _.
type LikeExpr struct {
	X       Expr
	Not     bool
	Pattern Expr
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// FuncExpr is an aggregate or scalar function call. Star is true for
// COUNT(*).
type FuncExpr struct {
	Name     string // upper-cased: COUNT, SUM, AVG, MIN, MAX, ...
	Distinct bool
	Star     bool
	Args     []Expr
}

// IsAggregate reports whether the function is one of the five standard
// aggregates.
func (f *FuncExpr) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

func (*ColumnRef) expr()   {}
func (*IntLit) expr()      {}
func (*FloatLit) expr()    {}
func (*StringLit) expr()   {}
func (*BoolLit) expr()     {}
func (*NullLit) expr()     {}
func (*Placeholder) expr() {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*ParenExpr) expr()   {}
func (*InExpr) expr()      {}
func (*BetweenExpr) expr() {}
func (*LikeExpr) expr()    {}
func (*IsNullExpr) expr()  {}
func (*FuncExpr) expr()    {}

func (*ColumnRef) node()   {}
func (*IntLit) node()      {}
func (*FloatLit) node()    {}
func (*StringLit) node()   {}
func (*BoolLit) node()     {}
func (*NullLit) node()     {}
func (*Placeholder) node() {}
func (*BinaryExpr) node()  {}
func (*UnaryExpr) node()   {}
func (*ParenExpr) node()   {}
func (*InExpr) node()      {}
func (*BetweenExpr) node() {}
func (*LikeExpr) node()    {}
func (*IsNullExpr) node()  {}
func (*FuncExpr) node()    {}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

// SelectItem is one entry of a select list: expression with optional alias,
// or a star (possibly table-qualified).
type SelectItem struct {
	Star      bool
	StarTable string // for "t.*"
	Expr      Expr   // nil when Star
	Alias     string
}

// TableRef names a base table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// EffectiveName returns the alias if present, else the table name. It is the
// name by which columns reference this table in the query.
func (t TableRef) EffectiveName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an explicit "JOIN t ON cond" attached to the FROM list.
type JoinClause struct {
	Type  string // "INNER", "LEFT", "CROSS"
	Table TableRef
	On    Expr // nil for CROSS
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a SELECT statement over a flat (possibly joined) FROM list.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Joins    []JoinClause
	Where    Expr // nil when absent
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil when absent
	Offset   Expr // nil when absent
}

// Tables returns every table referenced in FROM and JOIN clauses, in order.
func (s *SelectStmt) Tables() []TableRef {
	out := make([]TableRef, 0, len(s.From)+len(s.Joins))
	out = append(out, s.From...)
	for _, j := range s.Joins {
		out = append(out, j.Table)
	}
	return out
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string // empty means "all columns in schema order"
	Rows    [][]Expr
}

// Assignment is one "col = expr" in an UPDATE SET list.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is UPDATE t SET ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// ColumnType enumerates the storage types of the engine.
type ColumnType int

// Column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
	TypeBool
)

// String renders the type in canonical SQL form.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       ColumnType
	NotNull    bool
	PrimaryKey bool
}

// CreateTableStmt is CREATE TABLE [IF NOT EXISTS] t (cols...).
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

// DropTableStmt is DROP TABLE [IF EXISTS] t.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON t (col).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
	Unique bool
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}
func (*DropTableStmt) stmt()   {}
func (*CreateIndexStmt) stmt() {}

func (*SelectStmt) node()      {}
func (*InsertStmt) node()      {}
func (*UpdateStmt) node()      {}
func (*DeleteStmt) node()      {}
func (*CreateTableStmt) node() {}
func (*DropTableStmt) node()   {}
func (*CreateIndexStmt) node() {}

// ---------------------------------------------------------------------------
// Traversal helpers
// ---------------------------------------------------------------------------

// WalkExpr calls fn for e and every sub-expression, pre-order. fn returning
// false prunes the subtree.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.Left, fn)
		WalkExpr(x.Right, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *ParenExpr:
		WalkExpr(x.X, fn)
	case *InExpr:
		WalkExpr(x.X, fn)
		for _, it := range x.List {
			WalkExpr(it, fn)
		}
	case *BetweenExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Lo, fn)
		WalkExpr(x.Hi, fn)
	case *LikeExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Pattern, fn)
	case *IsNullExpr:
		WalkExpr(x.X, fn)
	case *FuncExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	}
}

// Placeholders returns every placeholder in the statement in ordinal order.
func Placeholders(s Stmt) []*Placeholder {
	var out []*Placeholder
	collect := func(e Expr) bool {
		if p, ok := e.(*Placeholder); ok {
			out = append(out, p)
		}
		return true
	}
	walkStmtExprs(s, func(e Expr) { WalkExpr(e, collect) })
	return out
}

// walkStmtExprs invokes fn on every top-level expression of the statement.
func walkStmtExprs(s Stmt, fn func(Expr)) {
	switch st := s.(type) {
	case *SelectStmt:
		for _, it := range st.Items {
			if it.Expr != nil {
				fn(it.Expr)
			}
		}
		for _, j := range st.Joins {
			if j.On != nil {
				fn(j.On)
			}
		}
		if st.Where != nil {
			fn(st.Where)
		}
		for _, g := range st.GroupBy {
			fn(g)
		}
		if st.Having != nil {
			fn(st.Having)
		}
		for _, o := range st.OrderBy {
			fn(o.Expr)
		}
		if st.Limit != nil {
			fn(st.Limit)
		}
		if st.Offset != nil {
			fn(st.Offset)
		}
	case *InsertStmt:
		for _, row := range st.Rows {
			for _, e := range row {
				fn(e)
			}
		}
	case *UpdateStmt:
		for _, a := range st.Set {
			fn(a.Value)
		}
		if st.Where != nil {
			fn(st.Where)
		}
	case *DeleteStmt:
		if st.Where != nil {
			fn(st.Where)
		}
	}
}

// ColumnsReferenced returns the distinct column references in e, in first-
// appearance order.
func ColumnsReferenced(e Expr) []*ColumnRef {
	var out []*ColumnRef
	seen := map[string]bool{}
	WalkExpr(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			key := strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
			if !seen[key] {
				seen[key] = true
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// Conjuncts flattens a conjunction: a AND (b AND c) → [a, b, c]. Parentheses
// are looked through. A nil expression yields nil.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ParenExpr:
		return Conjuncts(x.X)
	case *BinaryExpr:
		if x.Op == OpAnd {
			return append(Conjuncts(x.Left), Conjuncts(x.Right)...)
		}
	}
	return []Expr{e}
}

// Disjuncts flattens a disjunction: a OR (b OR c) → [a, b, c].
func Disjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ParenExpr:
		return Disjuncts(x.X)
	case *BinaryExpr:
		if x.Op == OpOr {
			return append(Disjuncts(x.Left), Disjuncts(x.Right)...)
		}
	}
	return []Expr{e}
}
