package sqlparser

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	l := NewLexer(src)
	var out []Token
	for {
		tok := l.Next()
		if tok.Kind == KindEOF {
			break
		}
		out = append(out, tok)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexAll(t, "SELECT a, b FROM t WHERE a >= 10")
	kinds := []TokenKind{KindKeyword, KindIdent, KindComma, KindIdent, KindKeyword,
		KindIdent, KindKeyword, KindIdent, KindGtEq, KindNumber}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	for _, src := range []string{"select", "SELECT", "SeLeCt"} {
		toks := lexAll(t, src)
		if len(toks) != 1 || toks[0].Kind != KindKeyword || toks[0].Text != "SELECT" {
			t.Errorf("lex %q: got %v", src, toks)
		}
	}
}

func TestLexIdentifierPreservesCase(t *testing.T) {
	toks := lexAll(t, "MyTable")
	if toks[0].Kind != KindIdent || toks[0].Text != "MyTable" {
		t.Fatalf("got %v", toks[0])
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":     "42",
		"3.14":   "3.14",
		".5":     ".5",
		"1e10":   "1e10",
		"2.5E-3": "2.5E-3",
		"7e+2":   "7e+2",
		"100.":   "100.",
		"0":      "0",
		"987654": "987654",
		"1.0e0":  "1.0e0",
		"123e":   "123", // trailing 'e' is not part of the number
	}
	for src, want := range cases {
		l := NewLexer(src)
		tok := l.Next()
		if tok.Kind != KindNumber || tok.Text != want {
			t.Errorf("lex %q: got %v %q, want number %q", src, tok.Kind, tok.Text, want)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexAll(t, `'hello' 'it''s' ''`)
	want := []string{"hello", "it's", ""}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, w := range want {
		if toks[i].Kind != KindString || toks[i].Text != w {
			t.Errorf("token %d: got %v %q, want string %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestLexUnterminatedString(t *testing.T) {
	l := NewLexer("'abc")
	l.Next()
	if l.Err() == nil {
		t.Fatal("want error for unterminated string")
	}
}

func TestLexUnterminatedBlockComment(t *testing.T) {
	l := NewLexer("SELECT /* never closed")
	l.Next() // SELECT
	l.Next()
	if l.Err() == nil {
		t.Fatal("want error for unterminated block comment")
	}
}

func TestLexPlaceholders(t *testing.T) {
	toks := lexAll(t, "$1 $V1 ? :name")
	want := []string{"$1", "$V1", "?", ":name"}
	for i, w := range want {
		if toks[i].Kind != KindPlaceholder || toks[i].Text != w {
			t.Errorf("token %d: got %v %q, want placeholder %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestLexBareDollarIsError(t *testing.T) {
	l := NewLexer("$ ")
	l.Next()
	if l.Err() == nil {
		t.Fatal("want error for bare $")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexAll(t, "<> != <= >= < > = || + - * / %")
	kinds := []TokenKind{KindNotEq, KindNotEq, KindLtEq, KindGtEq, KindLt, KindGt,
		KindEq, KindConcat, KindPlus, KindMinus, KindStar, KindSlash, KindPercent}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "SELECT -- line comment\n a /* block\ncomment */ FROM t")
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.String())
	}
	got := strings.Join(texts, " ")
	if got != "SELECT a FROM t" {
		t.Fatalf("got %q", got)
	}
}

func TestLexQuotedIdent(t *testing.T) {
	toks := lexAll(t, `"weird name" "with""quote"`)
	if toks[0].Kind != KindIdent || toks[0].Text != "weird name" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != KindIdent || toks[1].Text != `with"quote` {
		t.Errorf("got %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestLexPositions(t *testing.T) {
	l := NewLexer("SELECT\n  a")
	tok := l.Next()
	if tok.Pos.Line != 1 || tok.Pos.Column != 1 {
		t.Errorf("SELECT at %v", tok.Pos)
	}
	tok = l.Next()
	if tok.Pos.Line != 2 || tok.Pos.Column != 3 {
		t.Errorf("a at %v, want 2:3", tok.Pos)
	}
}

func TestLexDotNumberVsDotOperator(t *testing.T) {
	toks := lexAll(t, "t.a .5")
	if toks[0].Kind != KindIdent || toks[1].Kind != KindDot || toks[2].Kind != KindIdent {
		t.Fatalf("t.a lexed as %v", toks[:3])
	}
	if toks[3].Kind != KindNumber || toks[3].Text != ".5" {
		t.Fatalf(".5 lexed as %v %q", toks[3].Kind, toks[3].Text)
	}
}

func TestLexUnexpectedChar(t *testing.T) {
	l := NewLexer("a @ b")
	l.Next()
	l.Next()
	if l.Err() == nil {
		t.Fatal("want error for @")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	l := NewLexer("SELECT a")
	p1 := l.Peek()
	p2 := l.Peek()
	if p1 != p2 {
		t.Fatalf("peek not stable: %v vs %v", p1, p2)
	}
	n := l.Next()
	if n != p1 {
		t.Fatalf("next %v != peek %v", n, p1)
	}
}
