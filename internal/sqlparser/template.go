package sqlparser

import (
	"fmt"
	"strings"
)

// This file implements the transformations between query instances and query
// types (paper §2.3.2, §4.1.2):
//
//   - Canonicalize turns a bound query instance into its query type by
//     replacing every literal with a positional placeholder and recording the
//     extracted literals. Two instances of the same type canonicalize to the
//     same template string.
//   - Bind performs the inverse: it substitutes literal expressions for the
//     placeholders of a query type, producing a bound instance.
//
// Both operate on deep copies; input ASTs are never mutated.

// RewriteExpr returns a deep copy of e with fn applied bottom-up: children
// are rewritten first, then fn is offered the rebuilt node. fn returning nil
// keeps the rebuilt node.
func RewriteExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	var out Expr
	switch x := e.(type) {
	case *ColumnRef:
		c := *x
		out = &c
	case *IntLit:
		c := *x
		out = &c
	case *FloatLit:
		c := *x
		out = &c
	case *StringLit:
		c := *x
		out = &c
	case *BoolLit:
		c := *x
		out = &c
	case *NullLit:
		out = &NullLit{}
	case *Placeholder:
		c := *x
		out = &c
	case *BinaryExpr:
		out = &BinaryExpr{Op: x.Op, Left: RewriteExpr(x.Left, fn), Right: RewriteExpr(x.Right, fn)}
	case *UnaryExpr:
		out = &UnaryExpr{Op: x.Op, X: RewriteExpr(x.X, fn)}
	case *ParenExpr:
		out = &ParenExpr{X: RewriteExpr(x.X, fn)}
	case *InExpr:
		n := &InExpr{X: RewriteExpr(x.X, fn), Not: x.Not}
		for _, it := range x.List {
			n.List = append(n.List, RewriteExpr(it, fn))
		}
		out = n
	case *BetweenExpr:
		out = &BetweenExpr{X: RewriteExpr(x.X, fn), Not: x.Not, Lo: RewriteExpr(x.Lo, fn), Hi: RewriteExpr(x.Hi, fn)}
	case *LikeExpr:
		out = &LikeExpr{X: RewriteExpr(x.X, fn), Not: x.Not, Pattern: RewriteExpr(x.Pattern, fn)}
	case *IsNullExpr:
		out = &IsNullExpr{X: RewriteExpr(x.X, fn), Not: x.Not}
	case *FuncExpr:
		n := &FuncExpr{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
		for _, a := range x.Args {
			n.Args = append(n.Args, RewriteExpr(a, fn))
		}
		out = n
	default:
		panic(fmt.Sprintf("sqlparser: RewriteExpr: unknown node %T", e))
	}
	if r := fn(out); r != nil {
		return r
	}
	return out
}

// CopyExpr returns a deep copy of e.
func CopyExpr(e Expr) Expr { return RewriteExpr(e, func(Expr) Expr { return nil }) }

// RewriteStmt returns a deep copy of s with fn applied to every expression
// (bottom-up, as RewriteExpr).
func RewriteStmt(s Stmt, fn func(Expr) Expr) Stmt {
	rw := func(e Expr) Expr {
		if e == nil {
			return nil
		}
		return RewriteExpr(e, fn)
	}
	switch st := s.(type) {
	case *SelectStmt:
		n := &SelectStmt{Distinct: st.Distinct}
		for _, it := range st.Items {
			n.Items = append(n.Items, SelectItem{Star: it.Star, StarTable: it.StarTable, Expr: rw(it.Expr), Alias: it.Alias})
		}
		n.From = append(n.From, st.From...)
		for _, j := range st.Joins {
			n.Joins = append(n.Joins, JoinClause{Type: j.Type, Table: j.Table, On: rw(j.On)})
		}
		n.Where = rw(st.Where)
		for _, g := range st.GroupBy {
			n.GroupBy = append(n.GroupBy, rw(g))
		}
		n.Having = rw(st.Having)
		for _, o := range st.OrderBy {
			n.OrderBy = append(n.OrderBy, OrderItem{Expr: rw(o.Expr), Desc: o.Desc})
		}
		n.Limit = rw(st.Limit)
		n.Offset = rw(st.Offset)
		return n
	case *InsertStmt:
		n := &InsertStmt{Table: st.Table}
		n.Columns = append(n.Columns, st.Columns...)
		for _, row := range st.Rows {
			var nr []Expr
			for _, e := range row {
				nr = append(nr, rw(e))
			}
			n.Rows = append(n.Rows, nr)
		}
		return n
	case *UpdateStmt:
		// Set before Where: traversal must match lexical order, or
		// Canonicalize/Bind would renumber an UPDATE's placeholders against
		// their $N ordinals.
		n := &UpdateStmt{Table: st.Table}
		for _, a := range st.Set {
			n.Set = append(n.Set, Assignment{Column: a.Column, Value: rw(a.Value)})
		}
		n.Where = rw(st.Where)
		return n
	case *DeleteStmt:
		return &DeleteStmt{Table: st.Table, Where: rw(st.Where)}
	case *CreateTableStmt:
		n := &CreateTableStmt{Table: st.Table, IfNotExists: st.IfNotExists}
		n.Columns = append(n.Columns, st.Columns...)
		return n
	case *DropTableStmt:
		c := *st
		return &c
	case *CreateIndexStmt:
		c := *st
		return &c
	default:
		panic(fmt.Sprintf("sqlparser: RewriteStmt: unknown statement %T", s))
	}
}

// CopyStmt returns a deep copy of s.
func CopyStmt(s Stmt) Stmt { return RewriteStmt(s, func(Expr) Expr { return nil }) }

// IsLiteral reports whether e is a scalar literal (int, float, string, bool;
// NULL is excluded because "x IS NULL" shape matters to invalidation).
func IsLiteral(e Expr) bool {
	switch e.(type) {
	case *IntLit, *FloatLit, *StringLit, *BoolLit:
		return true
	}
	return false
}

// Canonicalize converts a (typically bound) statement into its query type:
// a deep copy in which every literal has been replaced by a positional
// placeholder $1, $2, ... in left-to-right order, plus the list of extracted
// literal expressions. Placeholders already present are preserved and also
// re-numbered into the same positional sequence (their prior bound value is
// unknown, so they stay placeholders and contribute nil to args).
//
// The canonical template string (Canonicalize(...).String()) is the identity
// of a query type: instances of the same type yield byte-identical templates.
func Canonicalize(s Stmt) (Stmt, []Expr) {
	var args []Expr
	n := 0
	out := RewriteStmt(s, func(e Expr) Expr {
		switch x := e.(type) {
		case *IntLit, *FloatLit, *StringLit, *BoolLit:
			n++
			args = append(args, e)
			return &Placeholder{Name: fmt.Sprintf("$%d", n), Ordinal: n}
		case *Placeholder:
			n++
			args = append(args, nil)
			return &Placeholder{Name: fmt.Sprintf("$%d", n), Ordinal: n}
		default:
			_ = x
			return nil
		}
	})
	return out, args
}

// Bind substitutes args for the placeholders of s, by ordinal: the i-th
// placeholder in lexical order receives args[i]. It returns a deep copy and
// an error if the count does not match or an arg is nil.
func Bind(s Stmt, args []Expr) (Stmt, error) {
	want := len(Placeholders(s))
	if want != len(args) {
		return nil, fmt.Errorf("sql: bind: statement has %d placeholders, got %d args", want, len(args))
	}
	i := 0
	var bindErr error
	out := RewriteStmt(s, func(e Expr) Expr {
		if _, ok := e.(*Placeholder); ok {
			if i < len(args) {
				a := args[i]
				i++
				if a == nil {
					if bindErr == nil {
						bindErr = fmt.Errorf("sql: bind: arg %d is nil", i)
					}
					return nil
				}
				return CopyExpr(a)
			}
		}
		return nil
	})
	if bindErr != nil {
		return nil, bindErr
	}
	return out, nil
}

// TemplateKey returns the canonical template string for a statement,
// lower-casing identifiers so that instances differing only in identifier
// case map to the same query type.
func TemplateKey(s Stmt) string {
	t, _ := Canonicalize(s)
	return FingerprintStmt(t)
}

// FingerprintStmt returns the fingerprint of an already canonicalized
// statement: its printed form, lower-cased. Equal to TemplateKey for
// statements that have been through Canonicalize; cheaper because it skips
// the re-canonicalizing copy.
func FingerprintStmt(s Stmt) string {
	return strings.ToLower(s.String())
}
