package sqlparser

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError describes a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: parse error at %s: %s", e.Pos, e.Msg)
}

// Parser is a recursive-descent parser for the supported SQL subset.
type Parser struct {
	lex          *Lexer
	placeholders int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// consumed) and verifies the entire input was consumed.
func Parse(src string) (Stmt, error) {
	p := &Parser{lex: NewLexer(src)}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if t := p.lex.Peek(); t.Kind == KindSemicolon {
		p.lex.Next()
	}
	if t := p.lex.Peek(); t.Kind != KindEOF {
		return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s after statement", t)}
	}
	if err := p.lex.Err(); err != nil {
		return nil, err
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Stmt, error) {
	p := &Parser{lex: NewLexer(src)}
	var stmts []Stmt
	for {
		for p.lex.Peek().Kind == KindSemicolon {
			p.lex.Next()
		}
		if p.lex.Peek().Kind == KindEOF {
			break
		}
		p.placeholders = 0
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		switch t := p.lex.Peek(); t.Kind {
		case KindSemicolon, KindEOF:
		default:
			return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s after statement", t)}
		}
	}
	if err := p.lex.Err(); err != nil {
		return nil, err
	}
	return stmts, nil
}

// ParseExpr parses a standalone scalar expression.
func ParseExpr(src string) (Expr, error) {
	p := &Parser{lex: NewLexer(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.lex.Peek(); t.Kind != KindEOF {
		return nil, &ParseError{Pos: t.Pos, Msg: fmt.Sprintf("unexpected %s after expression", t)}
	}
	if err := p.lex.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and static SQL.
func MustParse(src string) Stmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *Parser) errf(t Token, format string, args ...any) error {
	return &ParseError{Pos: t.Pos, Msg: fmt.Sprintf(format, args...)}
}

// expectKeyword consumes the given keyword or fails.
func (p *Parser) expectKeyword(kw string) error {
	t := p.lex.Next()
	if t.Kind != KindKeyword || t.Text != kw {
		return p.errf(t, "expected %s, found %s", kw, t)
	}
	return nil
}

// peekKeyword reports whether the next token is the given keyword.
func (p *Parser) peekKeyword(kw string) bool {
	t := p.lex.Peek()
	return t.Kind == KindKeyword && t.Text == kw
}

// acceptKeyword consumes the keyword if it is next and reports whether it did.
func (p *Parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.lex.Next()
		return true
	}
	return false
}

// expectIdent consumes an identifier (or non-reserved keyword used as a
// name) and returns its text.
func (p *Parser) expectIdent(what string) (string, error) {
	t := p.lex.Next()
	if t.Kind == KindIdent {
		return t.Text, nil
	}
	return "", p.errf(t, "expected %s, found %s", what, t)
}

func (p *Parser) expect(k TokenKind) error {
	t := p.lex.Next()
	if t.Kind != k {
		return p.errf(t, "expected %s, found %s", k, t)
	}
	return nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.lex.Peek()
	if t.Kind != KindKeyword {
		return nil, p.errf(t, "expected statement, found %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, p.errf(t, "unsupported statement %s", t.Text)
	}
}

// ---------------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	s.Distinct = p.acceptKeyword("DISTINCT")

	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if p.lex.Peek().Kind != KindComma {
			break
		}
		p.lex.Next()
	}

	if p.acceptKeyword("FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if p.lex.Peek().Kind != KindComma {
				break
			}
			p.lex.Next()
		}
		// Explicit joins.
		for {
			jt := ""
			switch {
			case p.peekKeyword("JOIN"):
				jt = "INNER"
				p.lex.Next()
			case p.peekKeyword("INNER"):
				p.lex.Next()
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt = "INNER"
			case p.peekKeyword("LEFT"):
				p.lex.Next()
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt = "LEFT"
			case p.peekKeyword("CROSS"):
				p.lex.Next()
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				jt = "CROSS"
			}
			if jt == "" {
				break
			}
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			jc := JoinClause{Type: jt, Table: ref}
			if jt != "CROSS" {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				jc.On = on
			}
			s.Joins = append(s.Joins, jc)
		}
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if p.lex.Peek().Kind != KindComma {
				break
			}
			p.lex.Next()
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if p.lex.Peek().Kind != KindComma {
				break
			}
			p.lex.Next()
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	t := p.lex.Peek()
	if t.Kind == KindStar {
		p.lex.Next()
		return SelectItem{Star: true}, nil
	}
	// "table.*"
	if t.Kind == KindIdent {
		// Need two-token lookahead for "ident . *"; the lexer only peeks one,
		// so parse the expression and recognise the pattern structurally via
		// a dedicated path: try ident '.' '*' by cloning position logic.
		// Simpler: consume ident, check '.', then check '*'.
		name := p.lex.Next().Text
		if p.lex.Peek().Kind == KindLParen {
			// Function call in the select list, e.g. UPPER(x).
			call, err := p.parseFuncCall(upper(name))
			if err != nil {
				return SelectItem{}, err
			}
			e, err := p.parseExprFrom(call)
			if err != nil {
				return SelectItem{}, err
			}
			return p.finishSelectItem(e)
		}
		if p.lex.Peek().Kind == KindDot {
			p.lex.Next()
			if p.lex.Peek().Kind == KindStar {
				p.lex.Next()
				return SelectItem{Star: true, StarTable: name}, nil
			}
			col, err := p.expectIdent("column name")
			if err != nil {
				return SelectItem{}, err
			}
			e, err := p.parseExprFrom(&ColumnRef{Table: name, Column: col})
			if err != nil {
				return SelectItem{}, err
			}
			return p.finishSelectItem(e)
		}
		e, err := p.parseExprFrom(&ColumnRef{Column: name})
		if err != nil {
			return SelectItem{}, err
		}
		return p.finishSelectItem(e)
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return p.finishSelectItem(e)
}

func (p *Parser) finishSelectItem(e Expr) (SelectItem, error) {
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent("alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.lex.Peek(); t.Kind == KindIdent {
		item.Alias = t.Text
		p.lex.Next()
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent("table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent("table alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a
	} else if t := p.lex.Peek(); t.Kind == KindIdent {
		ref.Alias = t.Text
		p.lex.Next()
	}
	return ref, nil
}

// ---------------------------------------------------------------------------
// INSERT / UPDATE / DELETE
// ---------------------------------------------------------------------------

func (p *Parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	s := &InsertStmt{Table: table}
	if p.lex.Peek().Kind == KindLParen {
		p.lex.Next()
		for {
			c, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c)
			if p.lex.Peek().Kind == KindComma {
				p.lex.Next()
				continue
			}
			break
		}
		if err := p.expect(KindRParen); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expect(KindLParen); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.lex.Peek().Kind == KindComma {
				p.lex.Next()
				continue
			}
			break
		}
		if err := p.expect(KindRParen); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if p.lex.Peek().Kind == KindComma {
			p.lex.Next()
			continue
		}
		break
	}
	return s, nil
}

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expect(KindEq); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, Assignment{Column: col, Value: v})
		if p.lex.Peek().Kind == KindComma {
			p.lex.Next()
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

func (p *Parser) parseCreate() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKeyword("UNIQUE")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique {
			return nil, p.errf(p.lex.Peek(), "UNIQUE is not valid before TABLE")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique)
	default:
		return nil, p.errf(p.lex.Peek(), "expected TABLE or INDEX after CREATE")
	}
}

func (p *Parser) parseCreateTable() (*CreateTableStmt, error) {
	s := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		s.IfNotExists = true
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	s.Table = name
	if err := p.expect(KindLParen); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseColumnDef()
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, col)
		if p.lex.Peek().Kind == KindComma {
			p.lex.Next()
			continue
		}
		break
	}
	if err := p.expect(KindRParen); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *Parser) parseColumnDef() (ColumnDef, error) {
	name, err := p.expectIdent("column name")
	if err != nil {
		return ColumnDef{}, err
	}
	t := p.lex.Next()
	if t.Kind != KindKeyword {
		return ColumnDef{}, p.errf(t, "expected column type, found %s", t)
	}
	def := ColumnDef{Name: name}
	switch t.Text {
	case "INT", "INTEGER", "BIGINT":
		def.Type = TypeInt
	case "FLOAT", "REAL":
		def.Type = TypeFloat
	case "DOUBLE":
		def.Type = TypeFloat
		p.acceptKeyword("PRECISION")
	case "TEXT":
		def.Type = TypeString
	case "VARCHAR", "CHAR":
		def.Type = TypeString
		if p.lex.Peek().Kind == KindLParen { // length is parsed and ignored
			p.lex.Next()
			if err := p.expect(KindNumber); err != nil {
				return ColumnDef{}, err
			}
			if err := p.expect(KindRParen); err != nil {
				return ColumnDef{}, err
			}
		}
	case "BOOL", "BOOLEAN":
		def.Type = TypeBool
	default:
		return ColumnDef{}, p.errf(t, "unsupported column type %s", t.Text)
	}
	for {
		switch {
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return ColumnDef{}, err
			}
			def.NotNull = true
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return ColumnDef{}, err
			}
			def.PrimaryKey = true
			def.NotNull = true
		default:
			return def, nil
		}
	}
}

func (p *Parser) parseCreateIndex(unique bool) (*CreateIndexStmt, error) {
	name, err := p.expectIdent("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expect(KindLParen); err != nil {
		return nil, err
	}
	col, err := p.expectIdent("column name")
	if err != nil {
		return nil, err
	}
	if err := p.expect(KindRParen); err != nil {
		return nil, err
	}
	return &CreateIndexStmt{Name: name, Table: table, Column: col, Unique: unique}, nil
}

func (p *Parser) parseDrop() (*DropTableStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	s := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		s.IfExists = true
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	s.Table = name
	return s, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

// parseExpr parses a full boolean expression (lowest precedence: OR).
func (p *Parser) parseExpr() (Expr, error) {
	return p.parseOr()
}

// parseExprFrom continues expression parsing with an already-parsed primary
// operand (used by parseSelectItem, which needs two-token lookahead).
func (p *Parser) parseExprFrom(primary Expr) (Expr, error) {
	e, err := p.parsePostfixFrom(primary)
	if err != nil {
		return nil, err
	}
	e, err = p.parseMulRest(e)
	if err != nil {
		return nil, err
	}
	e, err = p.parseAddRest(e)
	if err != nil {
		return nil, err
	}
	e, err = p.parseCmpRest(e)
	if err != nil {
		return nil, err
	}
	e, err = p.parseAndRest(e)
	if err != nil {
		return nil, err
	}
	return p.parseOrRest(e)
}

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	return p.parseOrRest(left)
}

func (p *Parser) parseOrRest(left Expr) (Expr, error) {
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	return p.parseAndRest(left)
}

func (p *Parser) parseAndRest(left Expr) (Expr, error) {
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return p.parseCmpRest(left)
}

// parseCmpRest parses comparison operators plus IN / BETWEEN / LIKE / IS.
func (p *Parser) parseCmpRest(left Expr) (Expr, error) {
	for {
		t := p.lex.Peek()
		var op BinaryOp
		switch t.Kind {
		case KindEq:
			op = OpEq
		case KindNotEq:
			op = OpNotEq
		case KindLt:
			op = OpLt
		case KindLtEq:
			op = OpLtEq
		case KindGt:
			op = OpGt
		case KindGtEq:
			op = OpGtEq
		case KindKeyword:
			switch t.Text {
			case "IN":
				p.lex.Next()
				return p.parseInTail(left, false)
			case "BETWEEN":
				p.lex.Next()
				return p.parseBetweenTail(left, false)
			case "LIKE":
				p.lex.Next()
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{X: left, Pattern: pat}
				continue
			case "IS":
				p.lex.Next()
				not := p.acceptKeyword("NOT")
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				left = &IsNullExpr{X: left, Not: not}
				continue
			case "NOT":
				// X NOT IN / NOT BETWEEN / NOT LIKE
				p.lex.Next()
				switch {
				case p.acceptKeyword("IN"):
					return p.parseInTail(left, true)
				case p.acceptKeyword("BETWEEN"):
					return p.parseBetweenTail(left, true)
				case p.acceptKeyword("LIKE"):
					pat, err := p.parseAdditive()
					if err != nil {
						return nil, err
					}
					left = &LikeExpr{X: left, Pattern: pat, Not: true}
					continue
				default:
					return nil, p.errf(p.lex.Peek(), "expected IN, BETWEEN or LIKE after NOT")
				}
			default:
				return left, nil
			}
		default:
			return left, nil
		}
		p.lex.Next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseInTail(x Expr, not bool) (Expr, error) {
	if err := p.expect(KindLParen); err != nil {
		return nil, err
	}
	in := &InExpr{X: x, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.lex.Peek().Kind == KindComma {
			p.lex.Next()
			continue
		}
		break
	}
	if err := p.expect(KindRParen); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *Parser) parseBetweenTail(x Expr, not bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: x, Not: not, Lo: lo, Hi: hi}, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	return p.parseAddRest(left)
}

func (p *Parser) parseAddRest(left Expr) (Expr, error) {
	for {
		var op BinaryOp
		switch p.lex.Peek().Kind {
		case KindPlus:
			op = OpAdd
		case KindMinus:
			op = OpSub
		case KindConcat:
			op = OpConcat
		default:
			return left, nil
		}
		p.lex.Next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseMulRest(left)
}

func (p *Parser) parseMulRest(left Expr) (Expr, error) {
	for {
		var op BinaryOp
		switch p.lex.Peek().Kind {
		case KindStar:
			op = OpMul
		case KindSlash:
			op = OpDiv
		case KindPercent:
			op = OpMod
		default:
			return left, nil
		}
		p.lex.Next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.lex.Peek()
	if t.Kind == KindMinus {
		p.lex.Next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately so canonical form is stable.
		switch lit := x.(type) {
		case *IntLit:
			return &IntLit{Value: -lit.Value}, nil
		case *FloatLit:
			return &FloatLit{Value: -lit.Value}, nil
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if t.Kind == KindPlus {
		p.lex.Next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix parses a primary expression. (No true postfix operators in
// this subset; the name marks the precedence level.)
func (p *Parser) parsePostfix() (Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	return prim, nil
}

func (p *Parser) parsePostfixFrom(prim Expr) (Expr, error) { return prim, nil }

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.lex.Next()
	switch t.Kind {
	case KindNumber:
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf(t, "bad numeric literal %q: %v", t.Text, err)
			}
			return &FloatLit{Value: f}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			// Overflowing integers degrade to float, like most SQL engines.
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errf(t, "bad numeric literal %q: %v", t.Text, err)
			}
			return &FloatLit{Value: f}, nil
		}
		return &IntLit{Value: n}, nil
	case KindString:
		return &StringLit{Value: t.Text}, nil
	case KindPlaceholder:
		p.placeholders++
		return &Placeholder{Name: t.Text, Ordinal: p.placeholders}, nil
	case KindLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(KindRParen); err != nil {
			return nil, err
		}
		return &ParenExpr{X: e}, nil
	case KindKeyword:
		switch t.Text {
		case "NULL":
			return &NullLit{}, nil
		case "TRUE":
			return &BoolLit{Value: true}, nil
		case "FALSE":
			return &BoolLit{Value: false}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			return p.parseFuncCall(t.Text)
		case "NOT":
			x, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: "NOT", X: x}, nil
		}
		return nil, p.errf(t, "unexpected keyword %s in expression", t.Text)
	case KindIdent:
		// Column reference (possibly qualified) or function call.
		if p.lex.Peek().Kind == KindLParen {
			return p.parseFuncCall(upper(t.Text))
		}
		if p.lex.Peek().Kind == KindDot {
			p.lex.Next()
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Column: col}, nil
		}
		return &ColumnRef{Column: t.Text}, nil
	default:
		return nil, p.errf(t, "unexpected %s in expression", t)
	}
}

func (p *Parser) parseFuncCall(name string) (Expr, error) {
	if err := p.expect(KindLParen); err != nil {
		return nil, err
	}
	f := &FuncExpr{Name: name}
	if p.lex.Peek().Kind == KindStar {
		p.lex.Next()
		f.Star = true
		if err := p.expect(KindRParen); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.lex.Peek().Kind == KindRParen {
		p.lex.Next()
		return f, nil
	}
	f.Distinct = p.acceptKeyword("DISTINCT")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if p.lex.Peek().Kind == KindComma {
			p.lex.Next()
			continue
		}
		break
	}
	if err := p.expect(KindRParen); err != nil {
		return nil, err
	}
	return f, nil
}
