package sqlparser

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics throws random byte soup and random mutations of
// valid SQL at the parser: it must return an error or a statement, never
// panic or hang.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []byte("SELECTFROMWHEREINSERTVALUES()*,.;'\"=<>$?:ab01 \n\t%_-+/")
	for i := 0; i < 3000; i++ {
		n := rng.Intn(60)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		src := string(b)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			Parse(src)
			ParseScript(src)
			ParseExpr(src)
		}()
	}
}

// TestParseMutatedValidSQL mutates valid statements (drop/duplicate/replace
// a token region) — the parser must survive and still accept the original.
func TestParseMutatedValidSQL(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	valid := []string{
		"SELECT a, b FROM t WHERE a = 1 AND b < 'x' ORDER BY a DESC LIMIT 3",
		"INSERT INTO t (a, b) VALUES (1, 'z'), (2, NULL)",
		"UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3)",
		"DELETE FROM t WHERE a BETWEEN 1 AND 9",
		"CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10) NOT NULL)",
		"SELECT COUNT(*), maker FROM Car GROUP BY maker HAVING COUNT(*) > 1",
	}
	for _, src := range valid {
		if _, err := Parse(src); err != nil {
			t.Fatalf("valid SQL rejected: %s: %v", src, err)
		}
		for m := 0; m < 200; m++ {
			b := []byte(src)
			switch rng.Intn(3) {
			case 0: // delete a span
				if len(b) > 2 {
					i := rng.Intn(len(b) - 1)
					j := i + 1 + rng.Intn(len(b)-i-1)
					b = append(b[:i], b[j:]...)
				}
			case 1: // duplicate a span
				i := rng.Intn(len(b))
				j := i + rng.Intn(len(b)-i)
				b = append(b[:j], append(append([]byte{}, b[i:j]...), b[j:]...)...)
			default: // replace a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on mutation %q: %v", b, r)
					}
				}()
				Parse(string(b))
			}()
		}
	}
}

// TestDeepNestingNoStackBlowup parses pathologically nested expressions.
func TestDeepNestingNoStackBlowup(t *testing.T) {
	depth := 2000
	src := "SELECT " + strings.Repeat("(", depth) + "1" + strings.Repeat(")", depth)
	if _, err := Parse(src); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
	// Unbalanced variant must error, not hang.
	src = "SELECT " + strings.Repeat("(", depth) + "1"
	if _, err := Parse(src); err == nil {
		t.Fatal("unbalanced parens accepted")
	}
}
