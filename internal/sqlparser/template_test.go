package sqlparser

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCanonicalizeExtractsLiterals(t *testing.T) {
	s := MustParse("SELECT * FROM Car WHERE maker = 'Toyota' AND price < 25000")
	tmpl, args := Canonicalize(s)
	want := "SELECT * FROM Car WHERE maker = $1 AND price < $2"
	if got := tmpl.String(); got != want {
		t.Fatalf("template = %q, want %q", got, want)
	}
	if len(args) != 2 {
		t.Fatalf("args: %v", args)
	}
	if v, ok := args[0].(*StringLit); !ok || v.Value != "Toyota" {
		t.Fatalf("arg 0: %v", args[0])
	}
	if v, ok := args[1].(*IntLit); !ok || v.Value != 25000 {
		t.Fatalf("arg 1: %v", args[1])
	}
}

func TestCanonicalizeSameTypeSameTemplate(t *testing.T) {
	a := MustParse("SELECT * FROM t WHERE x = 1 AND y = 'a'")
	b := MustParse("SELECT * FROM t WHERE x = 99 AND y = 'zzz'")
	ta, _ := Canonicalize(a)
	tb, _ := Canonicalize(b)
	if ta.String() != tb.String() {
		t.Fatalf("%q != %q", ta.String(), tb.String())
	}
}

func TestCanonicalizeDifferentTypesDiffer(t *testing.T) {
	a := MustParse("SELECT * FROM t WHERE x = 1")
	b := MustParse("SELECT * FROM t WHERE x < 1")
	ta, _ := Canonicalize(a)
	tb, _ := Canonicalize(b)
	if ta.String() == tb.String() {
		t.Fatal("different operators should give different templates")
	}
}

func TestCanonicalizePreservesExistingPlaceholders(t *testing.T) {
	s := MustParse("SELECT * FROM t WHERE a = $V1 AND b = 5")
	tmpl, args := Canonicalize(s)
	if got := tmpl.String(); got != "SELECT * FROM t WHERE a = $1 AND b = $2" {
		t.Fatalf("template: %q", got)
	}
	if args[0] != nil {
		t.Fatalf("placeholder arg should be nil, got %v", args[0])
	}
	if v, ok := args[1].(*IntLit); !ok || v.Value != 5 {
		t.Fatalf("arg 1: %v", args[1])
	}
}

func TestBindRoundtrip(t *testing.T) {
	orig := MustParse("SELECT * FROM Car WHERE maker = 'Honda' AND price < 30000")
	tmpl, args := Canonicalize(orig)
	bound, err := Bind(tmpl, args)
	if err != nil {
		t.Fatal(err)
	}
	if bound.String() != orig.String() {
		t.Fatalf("bind(canonicalize(s)) = %q, want %q", bound.String(), orig.String())
	}
}

func TestBindErrors(t *testing.T) {
	tmpl := MustParse("SELECT * FROM t WHERE a = $1 AND b = $2")
	if _, err := Bind(tmpl, []Expr{&IntLit{Value: 1}}); err == nil {
		t.Fatal("want arity error")
	}
	if _, err := Bind(tmpl, []Expr{&IntLit{Value: 1}, nil}); err == nil {
		t.Fatal("want nil-arg error")
	}
}

func TestBindDoesNotMutateTemplate(t *testing.T) {
	tmpl := MustParse("SELECT * FROM t WHERE a = $1")
	before := tmpl.String()
	if _, err := Bind(tmpl, []Expr{&IntLit{Value: 7}}); err != nil {
		t.Fatal(err)
	}
	if tmpl.String() != before {
		t.Fatalf("template mutated: %q", tmpl.String())
	}
}

func TestTemplateKeyCaseInsensitive(t *testing.T) {
	a := MustParse("SELECT * FROM CAR WHERE PRICE < 10")
	b := MustParse("select * from car where price < 20")
	if TemplateKey(a) != TemplateKey(b) {
		t.Fatalf("%q != %q", TemplateKey(a), TemplateKey(b))
	}
}

func TestCopyStmtIsDeep(t *testing.T) {
	s := MustParse("UPDATE t SET a = 1 WHERE b = 2").(*UpdateStmt)
	c := CopyStmt(s).(*UpdateStmt)
	c.Set[0].Value = &IntLit{Value: 42}
	if s.Set[0].Value.(*IntLit).Value != 1 {
		t.Fatal("copy shares Set values with original")
	}
	c.Where.(*BinaryExpr).Right = &IntLit{Value: 9}
	if s.Where.(*BinaryExpr).Right.(*IntLit).Value != 2 {
		t.Fatal("copy shares Where with original")
	}
}

// --- property-based tests -------------------------------------------------

// randExpr builds a random boolean expression of bounded depth over the
// given column names.
func randExpr(r *rand.Rand, depth int, cols []string) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		// Leaf comparison.
		col := &ColumnRef{Column: cols[r.Intn(len(cols))]}
		ops := []BinaryOp{OpEq, OpNotEq, OpLt, OpLtEq, OpGt, OpGtEq}
		op := ops[r.Intn(len(ops))]
		var lit Expr
		switch r.Intn(4) {
		case 0:
			lit = &IntLit{Value: int64(r.Intn(2000) - 1000)}
		case 1:
			lit = &FloatLit{Value: float64(r.Intn(1000)) / 4}
		case 2:
			lit = &StringLit{Value: string(rune('a' + r.Intn(26)))}
		default:
			lit = &BoolLit{Value: r.Intn(2) == 0}
		}
		return &BinaryExpr{Op: op, Left: col, Right: lit}
	}
	switch r.Intn(4) {
	case 0:
		return &BinaryExpr{Op: OpAnd, Left: randExpr(r, depth-1, cols), Right: randExpr(r, depth-1, cols)}
	case 1:
		return &BinaryExpr{Op: OpOr, Left: randExpr(r, depth-1, cols), Right: randExpr(r, depth-1, cols)}
	case 2:
		return &UnaryExpr{Op: "NOT", X: &ParenExpr{X: randExpr(r, depth-1, cols)}}
	default:
		return &ParenExpr{X: randExpr(r, depth-1, cols)}
	}
}

// RandSelect builds a random SELECT statement for property tests.
func randSelect(r *rand.Rand) *SelectStmt {
	cols := []string{"a", "b", "c", "d"}
	s := &SelectStmt{From: []TableRef{{Name: "t"}}}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		s.Items = append(s.Items, SelectItem{Expr: &ColumnRef{Column: cols[r.Intn(len(cols))]}})
	}
	if r.Intn(5) > 0 {
		s.Where = randExpr(r, 3, cols)
	}
	if r.Intn(3) == 0 {
		s.OrderBy = append(s.OrderBy, OrderItem{Expr: &ColumnRef{Column: cols[r.Intn(len(cols))]}, Desc: r.Intn(2) == 0})
	}
	if r.Intn(4) == 0 {
		s.Limit = &IntLit{Value: int64(1 + r.Intn(100))}
	}
	return s
}

// TestQuickPrintParseRoundtrip: for random ASTs, Parse(String(ast)) must
// re-render to the identical string (print∘parse is the identity on
// canonical output).
func TestQuickPrintParseRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(randSelect(r))
		},
	}
	prop := func(s *SelectStmt) bool {
		src := s.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("Parse(%q): %v", src, err)
			return false
		}
		return parsed.String() == src
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalizeBindInverse: Bind(Canonicalize(s)) == s for random
// fully-literal statements.
func TestQuickCanonicalizeBindInverse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(randSelect(r))
		},
	}
	prop := func(s *SelectStmt) bool {
		tmpl, args := Canonicalize(s)
		bound, err := Bind(tmpl, args)
		if err != nil {
			t.Logf("bind: %v", err)
			return false
		}
		return bound.String() == s.String()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalizeIdempotent: canonicalizing a template again changes
// nothing (templates contain no literals).
func TestQuickCanonicalizeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, _ *rand.Rand) {
			vals[0] = reflect.ValueOf(randSelect(r))
		},
	}
	prop := func(s *SelectStmt) bool {
		t1, _ := Canonicalize(s)
		t2, _ := Canonicalize(t1)
		return t1.String() == t2.String()
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateTraversalIsLexical pins the traversal-order contract for UPDATE:
// Canonicalize and Bind must visit SET assignments before the WHERE clause,
// matching the printed $N ordinals and Placeholders(). A swapped order binds
// prepared arguments to the wrong slots (caught live: "UPDATE t SET val = $1
// WHERE id = $2" compared id against the SET string).
func TestUpdateTraversalIsLexical(t *testing.T) {
	s := MustParse("UPDATE t SET val = $1 WHERE id = $2")
	canon, lits := Canonicalize(s)
	want := "UPDATE t SET val = $1 WHERE id = $2"
	if got := canon.String(); got != want {
		t.Fatalf("canonical = %q, want %q", got, want)
	}
	if len(lits) != 2 || lits[0] != nil || lits[1] != nil {
		t.Fatalf("lits: %v", lits)
	}
	bound, err := Bind(canon, []Expr{&StringLit{Value: "x"}, &IntLit{Value: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bound.String(), "UPDATE t SET val = 'x' WHERE id = 7"; got != want {
		t.Fatalf("bound = %q, want %q", got, want)
	}

	// The literal form must extract in the same order.
	_, args := Canonicalize(MustParse("UPDATE t SET val = 'x' WHERE id = 7"))
	if v, ok := args[0].(*StringLit); !ok || v.Value != "x" {
		t.Fatalf("arg 0: %#v", args[0])
	}
	if v, ok := args[1].(*IntLit); !ok || v.Value != 7 {
		t.Fatalf("arg 1: %#v", args[1])
	}
}
