package sqlparser

import (
	"reflect"
	"strings"
	"testing"
)

// roundtrip asserts Parse(src).String() == want (or src when want == "").
func roundtrip(t *testing.T, src, want string) Stmt {
	t.Helper()
	if want == "" {
		want = src
	}
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if got := s.String(); got != want {
		t.Fatalf("Parse(%q).String() = %q, want %q", src, got, want)
	}
	return s
}

func TestParseSelectStar(t *testing.T) {
	s := roundtrip(t, "SELECT * FROM Car", "").(*SelectStmt)
	if !s.Items[0].Star || len(s.From) != 1 || s.From[0].Name != "Car" {
		t.Fatalf("bad AST: %+v", s)
	}
}

func TestParsePaperQuery1(t *testing.T) {
	// Example 4.1's query, reformatted.
	src := "select * from Car, Mileage where Car.model = Mileage.model and Car.price < 20000"
	s := roundtrip(t, src,
		"SELECT * FROM Car, Mileage WHERE Car.model = Mileage.model AND Car.price < 20000").(*SelectStmt)
	if len(s.From) != 2 {
		t.Fatalf("want 2 FROM tables, got %d", len(s.From))
	}
	conj := Conjuncts(s.Where)
	if len(conj) != 2 {
		t.Fatalf("want 2 conjuncts, got %d", len(conj))
	}
}

func TestParsePaperQueryType(t *testing.T) {
	// §2.3.2's example query type with a $V1 parameter.
	src := "SELECT * FROM R WHERE R.A > $V1 AND R.B < 200"
	s := roundtrip(t, src, "")
	ph := Placeholders(s)
	if len(ph) != 1 || ph[0].Name != "$V1" || ph[0].Ordinal != 1 {
		t.Fatalf("placeholders: %+v", ph)
	}
}

func TestParseSelectFull(t *testing.T) {
	roundtrip(t, "SELECT DISTINCT a, t.b AS x, COUNT(*) FROM t AS u, v WHERE a = 1 AND b <> 'z' GROUP BY a, t.b HAVING COUNT(*) > 2 ORDER BY a DESC, b LIMIT 10 OFFSET 5", "")
}

func TestParseExplicitJoin(t *testing.T) {
	s := roundtrip(t, "SELECT * FROM a JOIN b ON a.id = b.id", "").(*SelectStmt)
	if len(s.Joins) != 1 || s.Joins[0].Type != "INNER" {
		t.Fatalf("joins: %+v", s.Joins)
	}
	tabs := s.Tables()
	if len(tabs) != 2 || tabs[1].Name != "b" {
		t.Fatalf("tables: %+v", tabs)
	}
}

func TestParseLeftAndCrossJoin(t *testing.T) {
	roundtrip(t, "SELECT * FROM a LEFT JOIN b ON a.id = b.id CROSS JOIN c", "")
	roundtrip(t, "SELECT * FROM a LEFT OUTER JOIN b ON a.id = b.id",
		"SELECT * FROM a LEFT JOIN b ON a.id = b.id")
	roundtrip(t, "SELECT * FROM a INNER JOIN b ON a.x = b.x",
		"SELECT * FROM a JOIN b ON a.x = b.x")
}

func TestParseTableDotStar(t *testing.T) {
	s := roundtrip(t, "SELECT t.*, u.a FROM t, u", "").(*SelectStmt)
	if !s.Items[0].Star || s.Items[0].StarTable != "t" {
		t.Fatalf("items: %+v", s.Items)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	s := roundtrip(t, "SELECT a x FROM t u", "SELECT a AS x FROM t AS u").(*SelectStmt)
	if s.Items[0].Alias != "x" || s.From[0].Alias != "u" {
		t.Fatalf("aliases: %+v", s)
	}
	if s.From[0].EffectiveName() != "u" {
		t.Fatalf("effective name: %q", s.From[0].EffectiveName())
	}
}

func TestParseInsert(t *testing.T) {
	s := roundtrip(t, "INSERT INTO Car (maker, model, price) VALUES ('Toyota', 'Avalon', 25000)", "").(*InsertStmt)
	if s.Table != "Car" || len(s.Columns) != 3 || len(s.Rows) != 1 || len(s.Rows[0]) != 3 {
		t.Fatalf("insert: %+v", s)
	}
}

func TestParseInsertMultiRowNoColumns(t *testing.T) {
	s := roundtrip(t, "INSERT INTO t VALUES (1, 'a'), (2, 'b')", "").(*InsertStmt)
	if len(s.Columns) != 0 || len(s.Rows) != 2 {
		t.Fatalf("insert: %+v", s)
	}
}

func TestParseUpdate(t *testing.T) {
	s := roundtrip(t, "UPDATE Car SET price = 19000, model = 'X' WHERE maker = 'Mitsubishi'", "").(*UpdateStmt)
	if s.Table != "Car" || len(s.Set) != 2 || s.Where == nil {
		t.Fatalf("update: %+v", s)
	}
}

func TestParseDelete(t *testing.T) {
	s := roundtrip(t, "DELETE FROM Car WHERE price > 30000", "").(*DeleteStmt)
	if s.Table != "Car" || s.Where == nil {
		t.Fatalf("delete: %+v", s)
	}
	s2 := roundtrip(t, "DELETE FROM Car", "").(*DeleteStmt)
	if s2.Where != nil {
		t.Fatalf("delete without where: %+v", s2)
	}
}

func TestParseCreateTable(t *testing.T) {
	s := roundtrip(t,
		"CREATE TABLE Car (id INT PRIMARY KEY, maker TEXT NOT NULL, price FLOAT, sold BOOL)", "").(*CreateTableStmt)
	if len(s.Columns) != 4 {
		t.Fatalf("columns: %+v", s.Columns)
	}
	if !s.Columns[0].PrimaryKey || !s.Columns[0].NotNull {
		t.Fatalf("pk column: %+v", s.Columns[0])
	}
	if s.Columns[1].Type != TypeString || !s.Columns[1].NotNull {
		t.Fatalf("maker column: %+v", s.Columns[1])
	}
}

func TestParseCreateTableTypeAliases(t *testing.T) {
	s := roundtrip(t,
		"CREATE TABLE t (a INTEGER, b BIGINT, c REAL, d DOUBLE PRECISION, e VARCHAR(32), f CHAR(1), g BOOLEAN)",
		"CREATE TABLE t (a INT, b INT, c FLOAT, d FLOAT, e TEXT, f TEXT, g BOOL)").(*CreateTableStmt)
	want := []ColumnType{TypeInt, TypeInt, TypeFloat, TypeFloat, TypeString, TypeString, TypeBool}
	for i, w := range want {
		if s.Columns[i].Type != w {
			t.Errorf("column %d: got %v, want %v", i, s.Columns[i].Type, w)
		}
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	s := roundtrip(t, "CREATE TABLE IF NOT EXISTS t (a INT)", "").(*CreateTableStmt)
	if !s.IfNotExists {
		t.Fatal("IfNotExists not set")
	}
}

func TestParseDropTable(t *testing.T) {
	roundtrip(t, "DROP TABLE t", "")
	s := roundtrip(t, "DROP TABLE IF EXISTS t", "").(*DropTableStmt)
	if !s.IfExists {
		t.Fatal("IfExists not set")
	}
}

func TestParseCreateIndex(t *testing.T) {
	s := roundtrip(t, "CREATE UNIQUE INDEX idx ON t (a)", "").(*CreateIndexStmt)
	if !s.Unique || s.Table != "t" || s.Column != "a" {
		t.Fatalf("index: %+v", s)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c = d OR e AND NOT f")
	if err != nil {
		t.Fatal(err)
	}
	// Expect: ((a + (b*c)) = d) OR (e AND (NOT f))
	or, ok := e.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top is %v", e)
	}
	cmp, ok := or.Left.(*BinaryExpr)
	if !ok || cmp.Op != OpEq {
		t.Fatalf("left of OR: %v", or.Left)
	}
	add, ok := cmp.Left.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("left of =: %v", cmp.Left)
	}
	if mul, ok := add.Right.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Fatalf("right of +: %v", add.Right)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR: %v", or.Right)
	}
	if not, ok := and.Right.(*UnaryExpr); !ok || not.Op != "NOT" {
		t.Fatalf("right of AND: %v", and.Right)
	}
}

func TestParseInBetweenLikeIsNull(t *testing.T) {
	roundtrip(t, "SELECT * FROM t WHERE a IN (1, 2, 3)", "")
	roundtrip(t, "SELECT * FROM t WHERE a NOT IN ('x')", "")
	roundtrip(t, "SELECT * FROM t WHERE a BETWEEN 1 AND 10", "")
	roundtrip(t, "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10", "")
	roundtrip(t, "SELECT * FROM t WHERE name LIKE 'To%'", "")
	roundtrip(t, "SELECT * FROM t WHERE name NOT LIKE '_x'", "")
	roundtrip(t, "SELECT * FROM t WHERE a IS NULL", "")
	roundtrip(t, "SELECT * FROM t WHERE a IS NOT NULL", "")
}

func TestParseNegativeNumberFolding(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*IntLit)
	if !ok || lit.Value != -5 {
		t.Fatalf("got %v", e)
	}
	e2, _ := ParseExpr("-2.5")
	if f, ok := e2.(*FloatLit); !ok || f.Value != -2.5 {
		t.Fatalf("got %v", e2)
	}
}

func TestParseAggregates(t *testing.T) {
	s := roundtrip(t, "SELECT COUNT(*), SUM(a), AVG(b), MIN(c), MAX(d), COUNT(DISTINCT e) FROM t", "").(*SelectStmt)
	f := s.Items[0].Expr.(*FuncExpr)
	if !f.Star || !f.IsAggregate() {
		t.Fatalf("count(*): %+v", f)
	}
	f6 := s.Items[5].Expr.(*FuncExpr)
	if !f6.Distinct {
		t.Fatalf("count distinct: %+v", f6)
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseScriptPlaceholderOrdinalsResetPerStatement(t *testing.T) {
	stmts, err := ParseScript("SELECT * FROM t WHERE a = ?; SELECT * FROM u WHERE b = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range stmts {
		ph := Placeholders(s)
		if len(ph) != 1 || ph[0].Ordinal != 1 {
			t.Fatalf("stmt %d placeholders: %+v", i, ph)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO VALUES (1)",
		"INSERT INTO t (a VALUES (1)",
		"UPDATE t SET",
		"UPDATE t SET a 5",
		"DELETE t",
		"CREATE TABLE t",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a INT", // unclosed paren
		"SELECT * FROM t extra garbage ;;",
		"SELECT * FROM t WHERE a = 'unclosed",
		"SELECT a b c FROM t",
		"SELECT * FROM t WHERE a NOT 5",
		"CREATE UNIQUE TABLE t (a INT)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error, got nil", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("SELECT *\nFROM t WHERE ???")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error lacks line 2 position: %v", err)
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	e, _ := ParseExpr("a = 1 AND (b = 2 AND c = 3) AND d = 4")
	if got := len(Conjuncts(e)); got != 4 {
		t.Fatalf("conjuncts: %d", got)
	}
	e2, _ := ParseExpr("a = 1 OR (b = 2 OR c = 3)")
	if got := len(Disjuncts(e2)); got != 3 {
		t.Fatalf("disjuncts: %d", got)
	}
	if Conjuncts(nil) != nil || Disjuncts(nil) != nil {
		t.Fatal("nil input should give nil")
	}
}

func TestColumnsReferenced(t *testing.T) {
	e, _ := ParseExpr("t.a = u.b AND t.a > 5 AND c IS NULL")
	cols := ColumnsReferenced(e)
	if len(cols) != 3 {
		t.Fatalf("got %d cols: %v", len(cols), cols)
	}
	if cols[0].Table != "t" || cols[0].Column != "a" {
		t.Fatalf("first col: %+v", cols[0])
	}
}

func TestWalkExprPrune(t *testing.T) {
	e, _ := ParseExpr("(a + b) * c")
	var visited []string
	WalkExpr(e, func(x Expr) bool {
		visited = append(visited, x.String())
		_, isParen := x.(*ParenExpr)
		return !isParen // prune inside parens
	})
	for _, v := range visited {
		if v == "a" {
			t.Fatal("prune did not work; visited inside parens")
		}
	}
}

func TestBinaryOpFlip(t *testing.T) {
	cases := map[BinaryOp]BinaryOp{
		OpLt: OpGt, OpGt: OpLt, OpLtEq: OpGtEq, OpGtEq: OpLtEq, OpEq: OpEq, OpNotEq: OpNotEq,
	}
	for op, want := range cases {
		if got := op.Flip(); got != want {
			t.Errorf("%v.Flip() = %v, want %v", op, got, want)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad SQL")
		}
	}()
	MustParse("NOT SQL AT ALL")
}

func TestParseStatementKinds(t *testing.T) {
	cases := map[string]reflect.Type{
		"SELECT 1":                 reflect.TypeOf(&SelectStmt{}),
		"INSERT INTO t VALUES (1)": reflect.TypeOf(&InsertStmt{}),
		"UPDATE t SET a = 1":       reflect.TypeOf(&UpdateStmt{}),
		"DELETE FROM t":            reflect.TypeOf(&DeleteStmt{}),
		"CREATE TABLE t (a INT)":   reflect.TypeOf(&CreateTableStmt{}),
		"DROP TABLE t":             reflect.TypeOf(&DropTableStmt{}),
		"CREATE INDEX i ON t (a)":  reflect.TypeOf(&CreateIndexStmt{}),
	}
	for src, want := range cases {
		s, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if reflect.TypeOf(s) != want {
			t.Errorf("Parse(%q) = %T, want %v", src, s, want)
		}
	}
}

func TestSelectNoFrom(t *testing.T) {
	s := roundtrip(t, "SELECT 1 + 2", "").(*SelectStmt)
	if len(s.From) != 0 {
		t.Fatalf("from: %+v", s.From)
	}
}
