package sqlparser

import (
	"strconv"
	"strings"
)

// String renders the canonical SQL for each node type. Canonical means:
// upper-case keywords, single spaces, identifiers as written, strings
// single-quoted with '' escaping. Parse(String(x)) yields an AST equal to x
// (modulo placeholder ordinals, which are re-assigned positionally — the
// printer emits placeholders in their original spelling, so ordinals are
// preserved for statements whose placeholders were in lexical order, which
// the parser guarantees).

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

func (l *IntLit) String() string { return strconv.FormatInt(l.Value, 10) }

func (l *FloatLit) String() string {
	s := strconv.FormatFloat(l.Value, 'g', -1, 64)
	// Ensure a float literal re-parses as a float, not an int.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	// strconv renders +Inf etc.; those never appear from the parser but keep
	// output lossless for programmatically built ASTs.
	return s
}

// QuoteString renders s as a SQL string literal.
func QuoteString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func (l *StringLit) String() string { return QuoteString(l.Value) }

func (l *BoolLit) String() string {
	if l.Value {
		return "TRUE"
	}
	return "FALSE"
}

func (*NullLit) String() string { return "NULL" }

func (p *Placeholder) String() string { return p.Name }

// needsParens reports whether child must be parenthesised when printed as an
// operand of parent. The printer relies on explicit ParenExpr nodes for
// round-tripping; this handles programmatically built ASTs where nesting
// violates precedence.
func needsParens(parentOp BinaryOp, child Expr, right bool) bool {
	b, ok := child.(*BinaryExpr)
	if !ok {
		return false
	}
	pp := precOf(parentOp)
	cp := precOf(b.Op)
	if cp < pp {
		return true
	}
	if cp == pp && right {
		// Left-associative operators: parenthesise right-nested same level.
		return true
	}
	return false
}

func precOf(op BinaryOp) int {
	switch op {
	case OpOr:
		return 1
	case OpAnd:
		return 2
	case OpEq, OpNotEq, OpLt, OpLtEq, OpGt, OpGtEq:
		return 3
	case OpAdd, OpSub, OpConcat:
		return 4
	case OpMul, OpDiv, OpMod:
		return 5
	default:
		return 6
	}
}

func operand(parentOp BinaryOp, e Expr, right bool) string {
	if needsParens(parentOp, e, right) {
		return "(" + e.String() + ")"
	}
	return e.String()
}

func (b *BinaryExpr) String() string {
	return operand(b.Op, b.Left, false) + " " + b.Op.String() + " " + operand(b.Op, b.Right, true)
}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		if _, ok := u.X.(*BinaryExpr); ok {
			return "NOT (" + u.X.String() + ")"
		}
		return "NOT " + u.X.String()
	}
	return u.Op + u.X.String()
}

func (p *ParenExpr) String() string { return "(" + p.X.String() + ")" }

func (i *InExpr) String() string {
	var b strings.Builder
	b.WriteString(i.X.String())
	if i.Not {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for k, e := range i.List {
		if k > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString(")")
	return b.String()
}

func (x *BetweenExpr) String() string {
	not := ""
	if x.Not {
		not = "NOT "
	}
	return x.X.String() + " " + not + "BETWEEN " + x.Lo.String() + " AND " + x.Hi.String()
}

func (l *LikeExpr) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return l.X.String() + " " + not + "LIKE " + l.Pattern.String()
}

func (n *IsNullExpr) String() string {
	if n.Not {
		return n.X.String() + " IS NOT NULL"
	}
	return n.X.String() + " IS NULL"
}

func (f *FuncExpr) String() string {
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteString("(")
	if f.Star {
		b.WriteString("*")
	} else {
		if f.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range f.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
	}
	b.WriteString(")")
	return b.String()
}

func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star && it.StarTable != "":
			b.WriteString(it.StarTable + ".*")
		case it.Star:
			b.WriteString("*")
		default:
			b.WriteString(it.Expr.String())
			if it.Alias != "" {
				b.WriteString(" AS " + it.Alias)
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(t.String())
		}
	}
	for _, j := range s.Joins {
		switch j.Type {
		case "CROSS":
			b.WriteString(" CROSS JOIN " + j.Table.String())
		case "LEFT":
			b.WriteString(" LEFT JOIN " + j.Table.String() + " ON " + j.On.String())
		default:
			b.WriteString(" JOIN " + j.Table.String() + " ON " + j.On.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		b.WriteString(" LIMIT " + s.Limit.String())
	}
	if s.Offset != nil {
		b.WriteString(" OFFSET " + s.Offset.String())
	}
	return b.String()
}

// String renders "name" or "name AS alias".
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " AS " + t.Alias
	}
	return t.Name
}

func (s *InsertStmt) String() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + s.Table)
	if len(s.Columns) > 0 {
		b.WriteString(" (" + strings.Join(s.Columns, ", ") + ")")
	}
	b.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("(")
		for j, e := range row {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteString(")")
	}
	return b.String()
}

func (s *UpdateStmt) String() string {
	var b strings.Builder
	b.WriteString("UPDATE " + s.Table + " SET ")
	for i, a := range s.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Column + " = " + a.Value.String())
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	return b.String()
}

func (s *DeleteStmt) String() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.String()
	}
	return out
}

func (s *CreateTableStmt) String() string {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		b.WriteString("IF NOT EXISTS ")
	}
	b.WriteString(s.Table + " (")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name + " " + c.Type.String())
		if c.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		} else if c.NotNull {
			b.WriteString(" NOT NULL")
		}
	}
	b.WriteString(")")
	return b.String()
}

func (s *DropTableStmt) String() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Table
	}
	return "DROP TABLE " + s.Table
}

func (s *CreateIndexStmt) String() string {
	u := ""
	if s.Unique {
		u = "UNIQUE "
	}
	return "CREATE " + u + "INDEX " + s.Name + " ON " + s.Table + " (" + s.Column + ")"
}
