// Package sniffer implements CachePortal's sniffer (paper §3): it consumes
// the HTTP request log (from the servlet-wrapper request logger) and the
// query log (from the JDBC-wrapper query logger) and produces the QI/URL
// map — the association between each cached page and the query instances
// that generated it — which the invalidator interprets.
package sniffer

import (
	"sync"
	"time"
)

// QueryInstance is one logged query attributed to a page.
type QueryInstance struct {
	SQL     string
	LogID   int64 // ID in the driver query log
	Receive time.Time
	Deliver time.Time
}

// PageMapping is one QI/URL map row set: a page (identified by its cache
// key) together with the query instances of its latest generation. Fields
// follow §2.4: a unique ID, the SQL text to be processed by the invalidator,
// and the URL information.
type PageMapping struct {
	ID         int64 // unique row ID
	CacheKey   string
	Servlet    string
	RequestID  int64
	Queries    []QueryInstance
	Generation int64     // bumps every time the page is regenerated
	MappedAt   time.Time // when the mapping was (re)recorded
}

// QIURLMap is the QI/URL map: cache key → the page's current mapping.
// A page regenerated after invalidation replaces its previous mapping and
// bumps Generation. Readers poll with Changes.
type QIURLMap struct {
	mu      sync.Mutex
	byKey   map[string]*PageMapping
	nextID  int64
	version int64
	changed []string // cache keys in change order since the beginning
	changeV []int64  // version at which each change happened
}

// NewQIURLMap creates an empty map.
func NewQIURLMap() *QIURLMap {
	return &QIURLMap{byKey: make(map[string]*PageMapping), nextID: 1}
}

// Record stores (or replaces) the mapping for a page.
func (m *QIURLMap) Record(key, servlet string, requestID int64, queries []QueryInstance) *PageMapping {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.version++
	pm, ok := m.byKey[key]
	if !ok {
		pm = &PageMapping{ID: m.nextID, CacheKey: key, Servlet: servlet}
		m.nextID++
		m.byKey[key] = pm
	}
	pm.Servlet = servlet
	pm.RequestID = requestID
	pm.Queries = append([]QueryInstance(nil), queries...)
	pm.Generation++
	pm.MappedAt = time.Now()
	m.changed = append(m.changed, key)
	m.changeV = append(m.changeV, m.version)
	// Bound the change journal: drop entries older than the map size
	// several times over (readers that far behind resynchronize via
	// Snapshot).
	if len(m.changed) > 4*len(m.byKey)+1024 {
		cut := len(m.changed) / 2
		m.changed = append(m.changed[:0:0], m.changed[cut:]...)
		m.changeV = append(m.changeV[:0:0], m.changeV[cut:]...)
	}
	return pm
}

// Remove deletes a page's mapping (after its cache entry is invalidated).
func (m *QIURLMap) Remove(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.byKey, key)
}

// Get returns a copy of the mapping for key.
func (m *QIURLMap) Get(key string) (PageMapping, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pm, ok := m.byKey[key]
	if !ok {
		return PageMapping{}, false
	}
	return *pm, true
}

// Len returns the number of mapped pages.
func (m *QIURLMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byKey)
}

// Version returns the current change version.
func (m *QIURLMap) Version() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// Changes returns copies of mappings changed after version since, plus the
// new version, plus resync=true when the journal no longer reaches back to
// since (the caller should Snapshot instead).
func (m *QIURLMap) Changes(since int64) (changed []PageMapping, version int64, resync bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	version = m.version
	if since >= version {
		return nil, version, false
	}
	if len(m.changeV) == 0 || m.changeV[0] > since+1 {
		// Journal may have been trimmed; if the first retained change is
		// newer than since+1 the caller could have missed entries.
		if since != 0 || len(m.changeV) == 0 || m.changeV[0] != 1 {
			return nil, version, true
		}
	}
	seen := map[string]bool{}
	for i := len(m.changeV) - 1; i >= 0; i-- {
		if m.changeV[i] <= since {
			break
		}
		key := m.changed[i]
		if seen[key] {
			continue
		}
		seen[key] = true
		if pm, ok := m.byKey[key]; ok {
			changed = append(changed, *pm)
		}
	}
	// Reverse to change order.
	for i, j := 0, len(changed)-1; i < j; i, j = i+1, j-1 {
		changed[i], changed[j] = changed[j], changed[i]
	}
	return changed, version, false
}

// Snapshot returns copies of every mapping plus the current version.
func (m *QIURLMap) Snapshot() ([]PageMapping, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PageMapping, 0, len(m.byKey))
	for _, pm := range m.byKey {
		out = append(out, *pm)
	}
	return out, m.version
}
