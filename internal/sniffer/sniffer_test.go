package sniffer

import (
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
)

func TestQIURLMapRecordAndGet(t *testing.T) {
	m := NewQIURLMap()
	pm := m.Record("site/p?id=1", "p", 10, []QueryInstance{{SQL: "SELECT 1", LogID: 5}})
	if pm.ID != 1 || pm.Generation != 1 {
		t.Fatalf("pm: %+v", pm)
	}
	got, ok := m.Get("site/p?id=1")
	if !ok || got.Servlet != "p" || len(got.Queries) != 1 {
		t.Fatalf("got: %+v ok=%v", got, ok)
	}
	// Re-record bumps generation, keeps ID.
	pm2 := m.Record("site/p?id=1", "p", 11, []QueryInstance{{SQL: "SELECT 2"}})
	if pm2.ID != 1 || pm2.Generation != 2 {
		t.Fatalf("pm2: %+v", pm2)
	}
	if m.Len() != 1 {
		t.Fatalf("len: %d", m.Len())
	}
}

func TestQIURLMapChanges(t *testing.T) {
	m := NewQIURLMap()
	m.Record("a", "s", 1, nil)
	m.Record("b", "s", 2, nil)
	changed, v, resync := m.Changes(0)
	if resync || len(changed) != 2 || v != 2 {
		t.Fatalf("changes: %+v v=%d resync=%v", changed, v, resync)
	}
	if changed[0].CacheKey != "a" || changed[1].CacheKey != "b" {
		t.Fatalf("order: %+v", changed)
	}
	// No new changes.
	changed, v2, _ := m.Changes(v)
	if len(changed) != 0 || v2 != v {
		t.Fatalf("idle changes: %+v", changed)
	}
	// Re-record dedupes to one change entry for the key.
	m.Record("a", "s", 3, nil)
	m.Record("a", "s", 4, nil)
	changed, _, _ = m.Changes(v)
	if len(changed) != 1 || changed[0].Generation != 3 {
		t.Fatalf("dedup: %+v", changed)
	}
}

func TestQIURLMapRemove(t *testing.T) {
	m := NewQIURLMap()
	m.Record("a", "s", 1, nil)
	m.Remove("a")
	if _, ok := m.Get("a"); ok {
		t.Fatal("still present")
	}
	// Changes for removed keys just skip them.
	changed, _, _ := m.Changes(0)
	if len(changed) != 0 {
		t.Fatalf("changes: %+v", changed)
	}
}

func TestQIURLMapSnapshot(t *testing.T) {
	m := NewQIURLMap()
	m.Record("a", "s", 1, nil)
	m.Record("b", "s", 2, nil)
	snap, v := m.Snapshot()
	if len(snap) != 2 || v != 2 {
		t.Fatalf("snapshot: %+v v=%d", snap, v)
	}
}

// buildLogs fabricates one request with nested queries plus one unrelated
// concurrent query.
func buildLogs(t *testing.T, mode MapperMode) (*Mapper, *QIURLMap) {
	t.Helper()
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	m := NewQIURLMap()
	mp := NewMapper(rlog, qlog, m)
	mp.Mode = mode

	base := time.Now()
	// Queries logged first (as in reality: queries complete before the
	// request is delivered and logged).
	qlog.Append(driver.QueryLogEntry{
		LeaseID: 100, SQL: "SELECT * FROM Car WHERE price < 20000",
		Receive: base.Add(10 * time.Millisecond), Deliver: base.Add(20 * time.Millisecond),
	})
	qlog.Append(driver.QueryLogEntry{ // concurrent query of another request
		LeaseID: 200, SQL: "SELECT * FROM Mileage",
		Receive: base.Add(12 * time.Millisecond), Deliver: base.Add(18 * time.Millisecond),
	})
	qlog.Append(driver.QueryLogEntry{ // failed query: never attributed
		LeaseID: 100, SQL: "SELECT * FROM nope", Err: "no table",
		Receive: base.Add(13 * time.Millisecond), Deliver: base.Add(14 * time.Millisecond),
	})
	rlog.Append(appserver.RequestLogEntry{
		Servlet: "car", CacheKey: "site/car?g:max=20000", Cached: true,
		Receive: base, Deliver: base.Add(30 * time.Millisecond),
		LeaseIDs: []int64{100},
	})
	return mp, m
}

func TestMapperLeaseAffine(t *testing.T) {
	mp, m := buildLogs(t, LeaseAffine)
	if n := mp.Run(); n != 1 {
		t.Fatalf("mapped %d", n)
	}
	pm, ok := m.Get("site/car?g:max=20000")
	if !ok {
		t.Fatal("mapping missing")
	}
	if len(pm.Queries) != 1 || pm.Queries[0].SQL != "SELECT * FROM Car WHERE price < 20000" {
		t.Fatalf("queries: %+v", pm.Queries)
	}
}

func TestMapperIntervalOnlyIsConservative(t *testing.T) {
	mp, m := buildLogs(t, IntervalOnly)
	mp.Run()
	pm, _ := m.Get("site/car?g:max=20000")
	// Interval-only attributes both successful overlapping queries.
	if len(pm.Queries) != 2 {
		t.Fatalf("queries: %+v", pm.Queries)
	}
}

func TestMapperSkipsNonCacheable(t *testing.T) {
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	m := NewQIURLMap()
	mp := NewMapper(rlog, qlog, m)
	rlog.Append(appserver.RequestLogEntry{Servlet: "s", CacheKey: "k", Cached: false,
		Receive: time.Now(), Deliver: time.Now()})
	if n := mp.Run(); n != 0 {
		t.Fatalf("mapped %d", n)
	}
	if m.Len() != 0 {
		t.Fatal("non-cacheable page mapped")
	}
	mp.OnlyCacheable = false
	rlog.Append(appserver.RequestLogEntry{Servlet: "s", CacheKey: "k2", Cached: false,
		Receive: time.Now(), Deliver: time.Now()})
	if n := mp.Run(); n != 1 {
		t.Fatalf("mapped %d", n)
	}
}

func TestMapperIncrementalAcrossRuns(t *testing.T) {
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	m := NewQIURLMap()
	mp := NewMapper(rlog, qlog, m)

	base := time.Now()
	// First pass: only the query arrives.
	qlog.Append(driver.QueryLogEntry{SQL: "SELECT 1",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(2 * time.Millisecond)})
	if n := mp.Run(); n != 0 {
		t.Fatalf("mapped %d", n)
	}
	// Second pass: the request arrives; the buffered query must match.
	rlog.Append(appserver.RequestLogEntry{Servlet: "s", CacheKey: "k", Cached: true,
		Receive: base, Deliver: base.Add(3 * time.Millisecond)})
	if n := mp.Run(); n != 1 {
		t.Fatalf("mapped %d", n)
	}
	pm, _ := m.Get("k")
	if len(pm.Queries) != 1 {
		t.Fatalf("queries: %+v", pm.Queries)
	}
}

func TestMapperBufferRetention(t *testing.T) {
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	mp := NewMapper(rlog, qlog, NewQIURLMap())
	mp.Retention = time.Millisecond

	old := time.Now().Add(-time.Hour)
	qlog.Append(driver.QueryLogEntry{SQL: "SELECT 1", Receive: old, Deliver: old})
	mp.Run()
	if len(mp.buffer) != 0 {
		t.Fatalf("stale query retained: %+v", mp.buffer)
	}
}

func TestMapperQueryOutsideInterval(t *testing.T) {
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	m := NewQIURLMap()
	mp := NewMapper(rlog, qlog, m)

	base := time.Now()
	qlog.Append(driver.QueryLogEntry{SQL: "EARLY",
		Receive: base.Add(-time.Second), Deliver: base.Add(-time.Second)})
	qlog.Append(driver.QueryLogEntry{SQL: "LATE",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(time.Hour)})
	rlog.Append(appserver.RequestLogEntry{Servlet: "s", CacheKey: "k", Cached: true,
		Receive: base, Deliver: base.Add(10 * time.Millisecond)})
	mp.Run()
	pm, _ := m.Get("k")
	if len(pm.Queries) != 0 {
		t.Fatalf("queries: %+v", pm.Queries)
	}
}

func TestQIURLMapJournalTrimForcesResync(t *testing.T) {
	m := NewQIURLMap()
	m.Record("base", "s", 1, nil)
	_, v0, _ := m.Changes(0)
	// Hammer one key so the journal trims.
	for i := 0; i < 10000; i++ {
		m.Record("hot", "s", int64(i), nil)
	}
	changed, v, resync := m.Changes(v0)
	if resync {
		// Acceptable: the reader must snapshot.
		snap, sv := m.Snapshot()
		if len(snap) != 2 || sv != v {
			t.Fatalf("snapshot: %d entries v=%d", len(snap), sv)
		}
		return
	}
	// If no resync, the changes must include the hot key exactly once at
	// its final generation.
	found := false
	for _, pm := range changed {
		if pm.CacheKey == "hot" {
			found = true
			if pm.Generation != 10000 {
				t.Fatalf("generation: %d", pm.Generation)
			}
		}
	}
	if !found {
		t.Fatal("hot key missing from changes")
	}
}

func TestQIURLMapReaderFarBehindResyncs(t *testing.T) {
	m := NewQIURLMap()
	for i := 0; i < 100; i++ {
		m.Record("k"+string(rune('a'+i%26)), "s", int64(i), nil)
	}
	// Force heavy churn to trim the journal, then ask from version 1.
	for i := 0; i < 20000; i++ {
		m.Record("churn", "s", int64(i), nil)
	}
	_, _, resync := m.Changes(1)
	if !resync {
		// The journal may still reach back; then correctness is covered by
		// the previous test. But a reader from 0 with a trimmed journal
		// must get either everything or a resync signal.
		changed, _, rs2 := m.Changes(0)
		if !rs2 && len(changed) == 0 {
			t.Fatal("reader from 0 got nothing and no resync")
		}
	}
}
