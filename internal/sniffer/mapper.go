package sniffer

import (
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/feed"
	"repro/internal/obs"
)

// MapperMode selects how queries are attributed to requests.
type MapperMode int

// Mapper modes. LeaseAffine is the zero value so configurations default to
// the precise mode.
const (
	// LeaseAffine requires, besides interval containment, that the query's
	// pool lease is one of the leases the request used, which removes the
	// ambiguity when the application goes through connection pools (the
	// recommended BEA deployment).
	LeaseAffine MapperMode = iota
	// IntervalOnly reproduces the paper's §3.3 rule exactly: a query belongs
	// to a request when the query's [receive, delivery] interval is
	// contained in the request's interval. Under concurrency this can
	// attribute a query to several overlapping requests; the result is
	// conservative (extra mappings cause extra invalidations, never stale
	// pages).
	IntervalOnly
)

// Mapper is the request-to-query mapper (§3.3): it incrementally reads the
// request log and the query log and writes the QI/URL map.
type Mapper struct {
	Requests *appserver.RequestLog
	Queries  *driver.QueryLog
	Map      *QIURLMap
	Mode     MapperMode
	// Retention bounds how long unmatched query entries are buffered while
	// waiting for their request entry (requests are logged at delivery
	// time, after their queries). Default 30s.
	Retention time.Duration
	// OnlyCacheable skips requests whose responses were not cacheable
	// (their pages are never stored, so no invalidation is needed). On by
	// default via NewMapper.
	OnlyCacheable bool
	// Obs, when set, receives the mapper's build metrics: pages mapped,
	// queries attributed, run latency, buffered-query depth, truncations.
	// Set it before the first Run; handles are resolved lazily once.
	Obs *obs.Registry
	// UseFeeds switches Run from re-polling the two logs to draining feed
	// subscriptions: block-free incremental reads with truncation in-band.
	// Set before the first Run.
	UseFeeds bool
	// FeedBuffer bounds each subscription's batch buffering (feed defaults
	// when <= 0).
	FeedBuffer int

	lastReq   int64
	lastQuery int64
	buffer    []driver.QueryLogEntry // unmatched queries, oldest first
	truncated bool                   // a log was truncated before we read it

	// Feed-mode subscriptions, opened lazily on the first Run.
	reqSub *feed.Subscription[appserver.RequestLogEntry]
	qSub   *feed.Subscription[driver.QueryLogEntry]

	met *mapperMetrics
}

// mapperMetrics are the mapper's cached obs handles.
type mapperMetrics struct {
	runs       *obs.Counter
	pages      *obs.Counter
	queries    *obs.Counter
	truncs     *obs.Counter
	runSeconds *obs.Histogram
	buffered   *obs.Gauge
}

// TakeTruncated reports whether a source log was truncated since the last
// call (entries were lost before the mapper read them) and clears the flag.
// Lost request entries mean cached pages may exist with no QI/URL mapping;
// the invalidator reacts by flushing the caches entirely — the only sound
// recovery, since an unmapped page can never be invalidated precisely.
func (mp *Mapper) TakeTruncated() bool {
	t := mp.truncated
	mp.truncated = false
	return t
}

// NewMapper wires a mapper over the two logs.
func NewMapper(requests *appserver.RequestLog, queries *driver.QueryLog, m *QIURLMap) *Mapper {
	return &Mapper{
		Requests:      requests,
		Queries:       queries,
		Map:           m,
		Mode:          LeaseAffine,
		Retention:     30 * time.Second,
		OnlyCacheable: true,
		lastReq:       1,
		lastQuery:     1,
	}
}

// metrics lazily resolves the obs handles (the mapper is single-flight, so
// no lock is needed).
func (mp *Mapper) metrics() *mapperMetrics {
	if mp.met == nil && mp.Obs != nil {
		mp.met = &mapperMetrics{
			runs:       mp.Obs.Counter("sniffer.map_runs_total"),
			pages:      mp.Obs.Counter("sniffer.pages_mapped_total"),
			queries:    mp.Obs.Counter("sniffer.queries_attributed_total"),
			truncs:     mp.Obs.Counter("sniffer.truncations_total"),
			runSeconds: mp.Obs.Histogram("sniffer.map_run_seconds"),
			buffered:   mp.Obs.Gauge("sniffer.queries_buffered"),
		}
	}
	return mp.met
}

// Run performs one mapping pass and returns how many request entries were
// mapped. Call it periodically (the invalidator's cycle does).
func (mp *Mapper) Run() int {
	met := mp.metrics()
	var runStart time.Time
	if met != nil {
		runStart = time.Now()
	}
	mapped, attributed := mp.run()
	if met != nil {
		met.runs.Inc()
		met.pages.Add(int64(mapped))
		met.queries.Add(int64(attributed))
		met.buffered.Set(int64(len(mp.buffer)))
		met.runSeconds.ObserveDuration(time.Since(runStart))
	}
	return mapped
}

// Close releases the mapper's feed subscriptions (no-op in polling mode or
// before the first feed-mode Run).
func (mp *Mapper) Close() {
	if mp.reqSub != nil {
		mp.reqSub.Close()
	}
	if mp.qSub != nil {
		mp.qSub.Close()
	}
}

// run is the mapping pass proper; it returns mapped request entries and
// attributed query instances.
func (mp *Mapper) run() (mapped, attributed int) {
	var reqs []appserver.RequestLogEntry
	var qs []driver.QueryLogEntry
	var reqTrunc, qTrunc bool
	if mp.UseFeeds {
		if mp.reqSub == nil {
			mp.reqSub = mp.Requests.Subscribe(mp.lastReq, mp.FeedBuffer)
		}
		if mp.qSub == nil {
			mp.qSub = mp.Queries.Subscribe(mp.lastQuery, mp.FeedBuffer)
		}
		// Feed pumps deliver asynchronously, but a mapping pass must observe
		// every entry logged before it started: the invalidator consumes
		// update records right after this runs, and an update analyzed while
		// its page is still unmapped leaves that page stale forever. So each
		// drain is topped up synchronously to its log's current head —
		// requests before queries, preserving the polling invariant that a
		// mapped request's queries are always visible. When the pump has
		// caught up the top-up is an empty read; the drained prefix is never
		// re-read (Drain skips below its cursor on later runs).
		reqs, reqTrunc, mp.lastReq = feed.Drain(mp.reqSub, mp.lastReq)
		if tail, tTrunc, next, _ := mp.Requests.SinceNext(mp.lastReq); len(tail) > 0 || tTrunc {
			reqs = append(reqs, tail...)
			reqTrunc = reqTrunc || tTrunc
			mp.lastReq = next
		}
		qs, qTrunc, mp.lastQuery = feed.Drain(mp.qSub, mp.lastQuery)
		if tail, tTrunc, next, _ := mp.Queries.SinceNext(mp.lastQuery); len(tail) > 0 || tTrunc {
			qs = append(qs, tail...)
			qTrunc = qTrunc || tTrunc
			mp.lastQuery = next
		}
	} else {
		// Pull requests first: any query belonging to a pulled request was
		// logged before the request's delivery-time log append, so pulling
		// queries second cannot miss them.
		reqs, reqTrunc = mp.Requests.Since(mp.lastReq)
		if len(reqs) > 0 {
			mp.lastReq = reqs[len(reqs)-1].ID + 1
		}
		qs, qTrunc = mp.Queries.Since(mp.lastQuery)
		if len(qs) > 0 {
			mp.lastQuery = qs[len(qs)-1].ID + 1
		}
	}
	if reqTrunc || qTrunc {
		mp.truncated = true
		if mp.met != nil {
			mp.met.truncs.Inc()
		}
	}
	mp.buffer = append(mp.buffer, qs...)

	for _, req := range reqs {
		if mp.OnlyCacheable && !req.Cached {
			continue
		}
		var queries []QueryInstance
		for _, q := range mp.buffer {
			if !mp.attributable(req, q) {
				continue
			}
			queries = append(queries, QueryInstance{
				SQL:     q.SQL,
				LogID:   q.ID,
				Receive: q.Receive,
				Deliver: q.Deliver,
			})
		}
		mp.Map.Record(req.CacheKey, req.Servlet, req.ID, queries)
		mapped++
		attributed += len(queries)
	}

	// Drop buffered queries that no future request can claim.
	retention := mp.Retention
	if retention <= 0 {
		retention = 30 * time.Second
	}
	cutoff := time.Now().Add(-retention)
	kept := mp.buffer[:0]
	for _, q := range mp.buffer {
		if q.Deliver.After(cutoff) {
			kept = append(kept, q)
		}
	}
	mp.buffer = kept
	return mapped, attributed
}

// attributable implements the §3.3 containment rule, optionally narrowed by
// lease affinity. Failed queries are never attributed: they produced no
// page content.
func (mp *Mapper) attributable(req appserver.RequestLogEntry, q driver.QueryLogEntry) bool {
	if q.Err != "" {
		return false
	}
	if q.Receive.Before(req.Receive) || q.Deliver.After(req.Deliver) {
		return false
	}
	if mp.Mode == LeaseAffine && q.LeaseID != 0 && len(req.LeaseIDs) > 0 {
		for _, id := range req.LeaseIDs {
			if id == q.LeaseID {
				return true
			}
		}
		return false
	}
	return true
}
