package sniffer

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
)

// waitMapped loops Run until the map holds key or the deadline passes (feed
// pumps deliver asynchronously, so the first Run may see nothing yet).
func waitMapped(t *testing.T, mp *Mapper, m *QIURLMap, key string) PageMapping {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mp.Run()
		if pm, ok := m.Get(key); ok {
			return pm
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("feed-mode mapper never mapped %q", key)
	return PageMapping{}
}

// TestMapperFeedModeMatchesPolling: the same workload through a feed-mode
// mapper must produce the same mapping a polling mapper does — the feed is a
// transport change, not a semantic one.
func TestMapperFeedModeMatchesPolling(t *testing.T) {
	build := func(useFeeds bool) (*Mapper, *QIURLMap) {
		rlog := appserver.NewRequestLog(0)
		qlog := driver.NewQueryLog(0)
		m := NewQIURLMap()
		mp := NewMapper(rlog, qlog, m)
		mp.UseFeeds = useFeeds

		base := time.Now()
		qlog.Append(driver.QueryLogEntry{
			LeaseID: 100, SQL: "SELECT * FROM Car WHERE price < 20000",
			Receive: base.Add(10 * time.Millisecond), Deliver: base.Add(20 * time.Millisecond),
		})
		qlog.Append(driver.QueryLogEntry{ // concurrent query of another request
			LeaseID: 200, SQL: "SELECT * FROM Mileage",
			Receive: base.Add(12 * time.Millisecond), Deliver: base.Add(18 * time.Millisecond),
		})
		rlog.Append(appserver.RequestLogEntry{
			Servlet: "car", CacheKey: "k", Cached: true,
			Receive: base, Deliver: base.Add(30 * time.Millisecond),
			LeaseIDs: []int64{100},
		})
		return mp, m
	}

	pollMp, pollMap := build(false)
	if n := pollMp.Run(); n != 1 {
		t.Fatalf("polling mapped %d", n)
	}
	pollPM, _ := pollMap.Get("k")

	feedMp, feedMap := build(true)
	defer feedMp.Close()
	feedPM := waitMapped(t, feedMp, feedMap, "k")

	if len(feedPM.Queries) != len(pollPM.Queries) {
		t.Fatalf("feed attributed %d queries, polling %d", len(feedPM.Queries), len(pollPM.Queries))
	}
	for i := range feedPM.Queries {
		if feedPM.Queries[i].SQL != pollPM.Queries[i].SQL {
			t.Fatalf("query %d: feed %q, polling %q", i, feedPM.Queries[i].SQL, pollPM.Queries[i].SQL)
		}
	}
}

// TestMapperFeedModeIncremental: entries appended after the subscriptions
// open are delivered and mapped on later runs, from the feed cursor — no
// re-reads, no skips.
func TestMapperFeedModeIncremental(t *testing.T) {
	rlog := appserver.NewRequestLog(0)
	qlog := driver.NewQueryLog(0)
	m := NewQIURLMap()
	mp := NewMapper(rlog, qlog, m)
	mp.UseFeeds = true
	defer mp.Close()
	mp.Run() // opens subscriptions at the heads

	base := time.Now()
	for i := 0; i < 3; i++ {
		qlog.Append(driver.QueryLogEntry{
			LeaseID: 1, SQL: fmt.Sprintf("SELECT %d", i),
			Receive: base.Add(time.Duration(i) * time.Millisecond),
			Deliver: base.Add(time.Duration(i+1) * time.Millisecond),
		})
		rlog.Append(appserver.RequestLogEntry{
			Servlet: "s", CacheKey: fmt.Sprintf("k%d", i), Cached: true,
			Receive:  base.Add(time.Duration(i) * time.Millisecond),
			Deliver:  base.Add(time.Duration(i+2) * time.Millisecond),
			LeaseIDs: []int64{1},
		})
	}
	for i := 0; i < 3; i++ {
		pm := waitMapped(t, mp, m, fmt.Sprintf("k%d", i))
		if len(pm.Queries) == 0 {
			t.Fatalf("k%d mapped without its query", i)
		}
	}
}

// TestMapperFeedModeTruncation: a subscription that starts below the log's
// retained window reports truncation in-band, and the mapper surfaces it via
// TakeTruncated exactly like the polling path.
func TestMapperFeedModeTruncation(t *testing.T) {
	rlog := appserver.NewRequestLog(4)
	qlog := driver.NewQueryLog(0)
	mp := NewMapper(rlog, qlog, NewQIURLMap())
	mp.UseFeeds = true
	defer mp.Close()

	// Overflow the request log before the first Run: the cursor-1
	// subscription lands below firstID.
	for i := 0; i < 10; i++ {
		rlog.Append(appserver.RequestLogEntry{Servlet: "s", CacheKey: "k", Cached: true,
			Receive: time.Now(), Deliver: time.Now()})
	}
	deadline := time.Now().Add(5 * time.Second)
	for !mp.truncated {
		if time.Now().After(deadline) {
			t.Fatal("feed truncation never surfaced")
		}
		mp.Run()
		time.Sleep(2 * time.Millisecond)
	}
	if !mp.TakeTruncated() {
		t.Fatal("TakeTruncated")
	}
	if mp.TakeTruncated() {
		t.Fatal("truncation not cleared")
	}
}
