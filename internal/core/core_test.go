package core

import (
	"testing"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/engine"
	"repro/internal/invalidator"
)

func validOptions(t *testing.T) (Options, *engine.Database) {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	return Options{
		RequestLog: appserver.NewRequestLog(0),
		QueryLog:   driver.NewQueryLog(0),
		Puller:     invalidator.EngineLogPuller{Log: db.Log()},
		Ejector:    invalidator.FuncEjector(func([]string) error { return nil }),
	}, db
}

func TestNewValidation(t *testing.T) {
	opts, _ := validOptions(t)
	cases := []func(*Options){
		func(o *Options) { o.RequestLog = nil },
		func(o *Options) { o.QueryLog = nil },
		func(o *Options) { o.Puller = nil },
		func(o *Options) { o.Ejector = nil },
	}
	for i, mutate := range cases {
		bad := opts
		mutate(&bad)
		if _, err := New(bad); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := New(opts); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultInterval(t *testing.T) {
	opts, _ := validOptions(t)
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Interval() != time.Second {
		t.Fatalf("interval: %v", p.Interval())
	}
	opts.Interval = 50 * time.Millisecond
	p2, _ := New(opts)
	if p2.Interval() != 50*time.Millisecond {
		t.Fatalf("interval: %v", p2.Interval())
	}
}

func TestRulesInstalled(t *testing.T) {
	opts, _ := validOptions(t)
	opts.Rules = []invalidator.Rule{{Servlet: "private", Action: invalidator.ActionNeverCache}}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheableServlet("private") {
		t.Fatal("rule not applied")
	}
	if !p.CacheableServlet("public") {
		t.Fatal("wrong servlet blocked")
	}
}

func TestCustomThresholds(t *testing.T) {
	opts, _ := validOptions(t)
	opts.Thresholds = invalidator.DiscoveryThresholds{MaxInvalidationRatio: 0.1, MinBatchesBeforeJudging: 1}
	if _, err := New(opts); err != nil {
		t.Fatal(err)
	}
}

func TestCycleCountsAndLastReport(t *testing.T) {
	opts, db := validOptions(t)
	p, _ := New(opts)
	if _, err := p.Cycle(); err != nil {
		t.Fatal(err)
	}
	db.ExecSQL("INSERT INTO t VALUES (2)")
	rep, err := p.Cycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.UpdateRecords != 1 {
		t.Fatalf("report: %+v", rep)
	}
	last, lastErr, cycles := p.LastReport()
	if lastErr != nil || cycles != 2 || last.UpdateRecords != 1 {
		t.Fatalf("last: %+v %v %d", last, lastErr, cycles)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	opts, db := validOptions(t)
	opts.Interval = 5 * time.Millisecond
	p, _ := New(opts)
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		t.Fatal("double start must fail")
	}
	db.ExecSQL("INSERT INTO t VALUES (3)")
	deadline := time.After(2 * time.Second)
	for {
		_, _, cycles := p.LastReport()
		if cycles >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background loop not running")
		case <-time.After(5 * time.Millisecond):
		}
	}
	p.Stop()
	_, _, after := p.LastReport()
	time.Sleep(20 * time.Millisecond)
	_, _, still := p.LastReport()
	if still != after {
		t.Fatal("cycles continued after Stop")
	}
	p.Stop() // idempotent
	if err := p.Start(); err != nil {
		t.Fatal("restart after stop should work")
	}
	p.Stop()
}

// TestSnifferInvalidatorIndependence checks the architectural property of
// §2.2: the mapper only writes the QI/URL map; the invalidator only reads
// it. Running the mapper standalone must not invalidate anything.
func TestSnifferInvalidatorIndependence(t *testing.T) {
	opts, _ := validOptions(t)
	p, _ := New(opts)
	base := time.Now()
	opts.QueryLog.Append(driver.QueryLogEntry{SQL: "SELECT * FROM t",
		Receive: base.Add(time.Millisecond), Deliver: base.Add(2 * time.Millisecond)})
	opts.RequestLog.Append(appserver.RequestLogEntry{
		Servlet: "s", CacheKey: "k", Cached: true,
		Receive: base, Deliver: base.Add(3 * time.Millisecond)})
	if n := p.Mapper.Run(); n != 1 {
		t.Fatalf("mapped %d", n)
	}
	if _, ok := p.Map.Get("k"); !ok {
		t.Fatal("map not written")
	}
	// The invalidator hasn't run; registry is untouched.
	if pages := p.Invalidator.Registry().Pages(); len(pages) != 0 {
		t.Fatalf("registry touched: %v", pages)
	}
}
