// Package core ties CachePortal together: given the application server's
// request log, the driver's query log, the database's update log, a polling
// connection and the caches to notify, it runs the sniffer (request-to-
// query mapper) and the invalidator on a shared cadence — the architecture
// of the paper's Figure 7. The two components stay independent: the sniffer
// only writes the QI/URL map, the invalidator only reads it.
package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/feed"
	"repro/internal/invalidator"
	"repro/internal/obs"
	"repro/internal/sniffer"
	"repro/internal/trace"
)

// Options configures a CachePortal deployment.
type Options struct {
	// RequestLog is the application server's request log (required).
	RequestLog *appserver.RequestLog
	// QueryLog is the logging driver's query log (required).
	QueryLog *driver.QueryLog
	// Puller reads the database update log (required).
	Puller invalidator.LogPuller
	// Poller executes polling queries (optional; nil degrades to
	// conservative invalidation).
	Poller invalidator.Poller
	// Ejector delivers invalidation messages to caches (required).
	Ejector invalidator.Ejector

	// Interval is the sniff/invalidate cadence (default 1s, the paper's
	// synchronization interval).
	Interval time.Duration
	// PollBudget bounds per-cycle polling time (0 = unbounded).
	PollBudget time.Duration
	// Workers bounds the invalidator's evaluation parallelism (0 =
	// GOMAXPROCS, 1 = sequential).
	Workers int
	// MapperMode selects query attribution (default LeaseAffine).
	MapperMode sniffer.MapperMode
	// Rules are administrator invalidation policies.
	Rules []invalidator.Rule
	// Thresholds drive policy discovery; zero value uses defaults.
	Thresholds invalidator.DiscoveryThresholds
	// Obs receives the sniffer's and invalidator's metrics and the
	// freshness-trace histograms. Nil allocates a private registry, so
	// instrumentation is always on; reach it via Portal.Obs.
	Obs *obs.Registry
	// Tracer, when set, records pipeline spans in the invalidator (phase
	// spans, staleness exemplars, force-sampling of failed ejects). The
	// engine and feed ends of the pipeline attach their own tracer
	// (Database.SetTracer, LogFeed.SetTracer); this one covers the
	// sniff/invalidate hops. nil = tracing off.
	Tracer *trace.Tracer

	// EventDriven switches the background loop from the pure interval timer
	// to event-driven cycles: a cycle runs as soon as the Notifier signals
	// new update-log records, with the interval timer kept as fallback
	// cadence. Invalidation outcomes are identical to pull mode; only
	// commit-to-eject staleness changes.
	EventDriven bool
	// Notifier supplies the change signal when EventDriven. When nil, New
	// uses the Puller if it also implements invalidator.LogNotifier
	// (invalidator.EngineLogPuller and *wire.LogFeed both do).
	Notifier invalidator.LogNotifier
	// MinEventGap is the burst-coalescing window of event-driven cycles
	// (invalidator.DefaultMinEventGap when 0).
	MinEventGap time.Duration
	// UseFeeds switches the sniffer's mapper from re-polling the request and
	// query logs to feed subscriptions.
	UseFeeds bool
	// FeedBuffer bounds the mapper's feed subscription buffering (feed
	// defaults when 0).
	FeedBuffer int
	// DisablePredIndex turns off the invalidator's predicate index and
	// restores the per-instance registry scan. Invalidation outcomes are
	// identical either way; the switch exists for A/B measurement and as an
	// escape hatch.
	DisablePredIndex bool
}

// Portal is a running CachePortal: the sniffer + invalidator pair.
type Portal struct {
	Map         *sniffer.QIURLMap
	Mapper      *sniffer.Mapper
	Invalidator *invalidator.Invalidator
	// Obs is the registry every pipeline stage reports into (the one from
	// Options.Obs, or the private registry New allocated).
	Obs *obs.Registry

	interval time.Duration
	notifier invalidator.LogNotifier
	minGap   time.Duration

	// cycleMu serializes invalidation cycles: the background loop and
	// synchronous Cycle callers may overlap, and the invalidator's cycle
	// (like the mapper it drives) is single-flight by design.
	cycleMu sync.Mutex

	mu      sync.Mutex
	stopCh  chan struct{}
	stopped chan struct{}
	lastRep invalidator.Report
	lastErr error
	cycles  int64
}

// New validates opts and builds a Portal (not yet running).
func New(opts Options) (*Portal, error) {
	if opts.RequestLog == nil || opts.QueryLog == nil {
		return nil, errors.New("cacheportal: RequestLog and QueryLog are required")
	}
	if opts.Puller == nil {
		return nil, errors.New("cacheportal: Puller is required")
	}
	if opts.Ejector == nil {
		return nil, errors.New("cacheportal: Ejector is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	var notifier invalidator.LogNotifier
	if opts.EventDriven {
		notifier = opts.Notifier
		if notifier == nil {
			n, ok := opts.Puller.(invalidator.LogNotifier)
			if !ok {
				return nil, errors.New("cacheportal: EventDriven requires a Notifier (or a Puller that provides Changed)")
			}
			notifier = n
		}
	}
	minGap := opts.MinEventGap
	if minGap <= 0 {
		minGap = invalidator.DefaultMinEventGap
	}
	m := sniffer.NewQIURLMap()
	mp := sniffer.NewMapper(opts.RequestLog, opts.QueryLog, m)
	mp.Mode = opts.MapperMode
	mp.Obs = opts.Obs
	mp.UseFeeds = opts.UseFeeds
	mp.FeedBuffer = opts.FeedBuffer
	if opts.UseFeeds {
		instrumentHub(opts.Obs, "feed.requests", opts.RequestLog.Hub())
		instrumentHub(opts.Obs, "feed.queries", opts.QueryLog.Hub())
	}

	var pol *invalidator.Policies
	if opts.Thresholds == (invalidator.DiscoveryThresholds{}) {
		pol = invalidator.NewPolicies(invalidator.DefaultThresholds())
	} else {
		pol = invalidator.NewPolicies(opts.Thresholds)
	}
	for _, r := range opts.Rules {
		pol.AddRule(r)
	}

	inv := invalidator.New(invalidator.Config{
		Map:        m,
		Mapper:     mp,
		Puller:     opts.Puller,
		Poller:     opts.Poller,
		Ejector:    opts.Ejector,
		Policies:   pol,
		PollBudget: opts.PollBudget,
		Workers:    opts.Workers,
		Obs:        opts.Obs,
		Tracer:     opts.Tracer,

		DisablePredIndex: opts.DisablePredIndex,
	})
	if cp, ok := opts.Poller.(*invalidator.ConcurrentPoller); ok {
		cp.Instrument(opts.Obs, "poller")
	}
	return &Portal{
		Map: m, Mapper: mp, Invalidator: inv, Obs: opts.Obs,
		interval: opts.Interval, notifier: notifier, minGap: minGap,
	}, nil
}

// instrumentHub registers pull-style gauges for one log hub under
// "<prefix>.": live subscribers, worst-case subscriber lag in records,
// batches buffered in subscriber channels, and delivery totals (records over
// batches is the mean coalesced-burst size).
func instrumentHub[T any](reg *obs.Registry, prefix string, h *feed.Hub[T]) {
	reg.GaugeFunc(prefix+".subscribers", func() int64 { return int64(h.Stats().Subscribers) })
	reg.GaugeFunc(prefix+".lag", h.Lag)
	reg.GaugeFunc(prefix+".buffered", func() int64 { return int64(h.Stats().Buffered) })
	reg.GaugeFunc(prefix+".batches_total", func() int64 { return h.Stats().Batches })
	reg.GaugeFunc(prefix+".records_total", func() int64 { return h.Stats().Records })
	reg.GaugeFunc(prefix+".truncations_total", func() int64 { return h.Stats().Truncations })
}

// Interval returns the configured cycle cadence; the application server's
// MinSensitivity should be at least this.
func (p *Portal) Interval() time.Duration { return p.interval }

// CacheableServlet is the feedback hook to install as
// appserver.Server.Cacheable.
func (p *Portal) CacheableServlet(name string) bool {
	return p.Invalidator.CacheableServlet(name)
}

// Cycle runs one synchronous sniff+invalidate round. Safe to call while
// the background loop runs; overlapping cycles are serialized.
func (p *Portal) Cycle() (invalidator.Report, error) {
	p.cycleMu.Lock()
	rep, err := p.Invalidator.Cycle()
	p.cycleMu.Unlock()
	p.mu.Lock()
	p.lastRep, p.lastErr = rep, err
	p.cycles++
	p.mu.Unlock()
	return rep, err
}

// Start launches the background loop. Calling Start twice is an error.
// The cadence is invalidator.RunLoop: pure interval ticking by default, and
// with Options.EventDriven a cycle also runs as soon as the notifier signals
// new log records (bursts coalesced within MinEventGap, the interval timer
// kept as fallback). Either way, consecutive cycle errors stretch the
// cadence with capped exponential backoff (invalidator.NextCycleDelay)
// instead of silently ticking against a failing dependency; one success
// restores the configured interval.
func (p *Portal) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopCh != nil {
		return errors.New("cacheportal: already started")
	}
	p.stopCh = make(chan struct{})
	p.stopped = make(chan struct{})
	var onBurst func(int)
	if p.notifier != nil {
		eventCycles := p.Obs.Counter("invalidator.event_cycles_total")
		burstWakes := p.Obs.Histogram("invalidator.event_burst_wakes")
		onBurst = func(wakes int) {
			eventCycles.Inc()
			burstWakes.Observe(float64(wakes))
		}
	}
	go func(stop <-chan struct{}, done chan<- struct{}) {
		defer close(done)
		invalidator.RunLoop(p.interval, p.minGap, p.notifier, stop, func() error {
			_, err := p.Cycle()
			return err
		}, onBurst)
	}(p.stopCh, p.stopped)
	return nil
}

// Stop halts the background loop and waits for it to exit. Safe to call
// without Start or twice.
func (p *Portal) Stop() {
	p.mu.Lock()
	stopCh, stopped := p.stopCh, p.stopped
	p.stopCh, p.stopped = nil, nil
	p.mu.Unlock()
	if stopCh == nil {
		return
	}
	close(stopCh)
	<-stopped
}

// Close stops the background loop and releases the mapper's feed
// subscriptions. Use it instead of Stop when the portal is done for good.
func (p *Portal) Close() {
	p.Stop()
	p.Mapper.Close()
}

// LastReport returns the most recent cycle's report, its error, and how
// many cycles have run.
func (p *Portal) LastReport() (invalidator.Report, error, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastRep, p.lastErr, p.cycles
}
