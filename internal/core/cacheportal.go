// Package core ties CachePortal together: given the application server's
// request log, the driver's query log, the database's update log, a polling
// connection and the caches to notify, it runs the sniffer (request-to-
// query mapper) and the invalidator on a shared cadence — the architecture
// of the paper's Figure 7. The two components stay independent: the sniffer
// only writes the QI/URL map, the invalidator only reads it.
package core

import (
	"errors"
	"sync"
	"time"

	"repro/internal/appserver"
	"repro/internal/driver"
	"repro/internal/invalidator"
	"repro/internal/obs"
	"repro/internal/sniffer"
)

// Options configures a CachePortal deployment.
type Options struct {
	// RequestLog is the application server's request log (required).
	RequestLog *appserver.RequestLog
	// QueryLog is the logging driver's query log (required).
	QueryLog *driver.QueryLog
	// Puller reads the database update log (required).
	Puller invalidator.LogPuller
	// Poller executes polling queries (optional; nil degrades to
	// conservative invalidation).
	Poller invalidator.Poller
	// Ejector delivers invalidation messages to caches (required).
	Ejector invalidator.Ejector

	// Interval is the sniff/invalidate cadence (default 1s, the paper's
	// synchronization interval).
	Interval time.Duration
	// PollBudget bounds per-cycle polling time (0 = unbounded).
	PollBudget time.Duration
	// Workers bounds the invalidator's evaluation parallelism (0 =
	// GOMAXPROCS, 1 = sequential).
	Workers int
	// MapperMode selects query attribution (default LeaseAffine).
	MapperMode sniffer.MapperMode
	// Rules are administrator invalidation policies.
	Rules []invalidator.Rule
	// Thresholds drive policy discovery; zero value uses defaults.
	Thresholds invalidator.DiscoveryThresholds
	// Obs receives the sniffer's and invalidator's metrics and the
	// freshness-trace histograms. Nil allocates a private registry, so
	// instrumentation is always on; reach it via Portal.Obs.
	Obs *obs.Registry
}

// Portal is a running CachePortal: the sniffer + invalidator pair.
type Portal struct {
	Map         *sniffer.QIURLMap
	Mapper      *sniffer.Mapper
	Invalidator *invalidator.Invalidator
	// Obs is the registry every pipeline stage reports into (the one from
	// Options.Obs, or the private registry New allocated).
	Obs *obs.Registry

	interval time.Duration

	// cycleMu serializes invalidation cycles: the background loop and
	// synchronous Cycle callers may overlap, and the invalidator's cycle
	// (like the mapper it drives) is single-flight by design.
	cycleMu sync.Mutex

	mu      sync.Mutex
	stopCh  chan struct{}
	stopped chan struct{}
	lastRep invalidator.Report
	lastErr error
	cycles  int64
}

// New validates opts and builds a Portal (not yet running).
func New(opts Options) (*Portal, error) {
	if opts.RequestLog == nil || opts.QueryLog == nil {
		return nil, errors.New("cacheportal: RequestLog and QueryLog are required")
	}
	if opts.Puller == nil {
		return nil, errors.New("cacheportal: Puller is required")
	}
	if opts.Ejector == nil {
		return nil, errors.New("cacheportal: Ejector is required")
	}
	if opts.Interval <= 0 {
		opts.Interval = time.Second
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	m := sniffer.NewQIURLMap()
	mp := sniffer.NewMapper(opts.RequestLog, opts.QueryLog, m)
	mp.Mode = opts.MapperMode
	mp.Obs = opts.Obs

	var pol *invalidator.Policies
	if opts.Thresholds == (invalidator.DiscoveryThresholds{}) {
		pol = invalidator.NewPolicies(invalidator.DefaultThresholds())
	} else {
		pol = invalidator.NewPolicies(opts.Thresholds)
	}
	for _, r := range opts.Rules {
		pol.AddRule(r)
	}

	inv := invalidator.New(invalidator.Config{
		Map:        m,
		Mapper:     mp,
		Puller:     opts.Puller,
		Poller:     opts.Poller,
		Ejector:    opts.Ejector,
		Policies:   pol,
		PollBudget: opts.PollBudget,
		Workers:    opts.Workers,
		Obs:        opts.Obs,
	})
	if cp, ok := opts.Poller.(*invalidator.ConcurrentPoller); ok {
		cp.Instrument(opts.Obs, "poller")
	}
	return &Portal{Map: m, Mapper: mp, Invalidator: inv, Obs: opts.Obs, interval: opts.Interval}, nil
}

// Interval returns the configured cycle cadence; the application server's
// MinSensitivity should be at least this.
func (p *Portal) Interval() time.Duration { return p.interval }

// CacheableServlet is the feedback hook to install as
// appserver.Server.Cacheable.
func (p *Portal) CacheableServlet(name string) bool {
	return p.Invalidator.CacheableServlet(name)
}

// Cycle runs one synchronous sniff+invalidate round. Safe to call while
// the background loop runs; overlapping cycles are serialized.
func (p *Portal) Cycle() (invalidator.Report, error) {
	p.cycleMu.Lock()
	rep, err := p.Invalidator.Cycle()
	p.cycleMu.Unlock()
	p.mu.Lock()
	p.lastRep, p.lastErr = rep, err
	p.cycles++
	p.mu.Unlock()
	return rep, err
}

// Start launches the background loop. Calling Start twice is an error.
// Consecutive cycle errors stretch the cadence with capped exponential
// backoff (invalidator.NextCycleDelay) instead of silently ticking against
// a failing dependency; one success restores the configured interval.
func (p *Portal) Start() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopCh != nil {
		return errors.New("cacheportal: already started")
	}
	p.stopCh = make(chan struct{})
	p.stopped = make(chan struct{})
	go func(stop <-chan struct{}, done chan<- struct{}) {
		defer close(done)
		failures := 0
		timer := time.NewTimer(p.interval)
		defer timer.Stop()
		for {
			select {
			case <-stop:
				return
			case <-timer.C:
				if _, err := p.Cycle(); err != nil {
					failures++
				} else {
					failures = 0
				}
				timer.Reset(invalidator.NextCycleDelay(p.interval, failures))
			}
		}
	}(p.stopCh, p.stopped)
	return nil
}

// Stop halts the background loop and waits for it to exit. Safe to call
// without Start or twice.
func (p *Portal) Stop() {
	p.mu.Lock()
	stopCh, stopped := p.stopCh, p.stopped
	p.stopCh, p.stopped = nil, nil
	p.mu.Unlock()
	if stopCh == nil {
		return
	}
	close(stopCh)
	<-stopped
}

// LastReport returns the most recent cycle's report, its error, and how
// many cycles have run.
func (p *Portal) LastReport() (invalidator.Report, error, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastRep, p.lastErr, p.cycles
}
