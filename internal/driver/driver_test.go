package driver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

func newTestDB(t testing.TB) *engine.Database {
	t.Helper()
	db := engine.NewDatabase()
	if _, err := db.ExecScript(`
		CREATE TABLE items (id INT PRIMARY KEY, name TEXT);
		INSERT INTO items VALUES (1, 'one'), (2, 'two');
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestDirectDriver(t *testing.T) {
	db := newTestDB(t)
	c, err := DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("SELECT name FROM items WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "two" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT 1"); err == nil {
		t.Fatal("closed conn must error")
	}
}

func TestDirectDriverNilDB(t *testing.T) {
	if _, err := (DirectDriver{}).Connect(""); err == nil {
		t.Fatal("want error")
	}
}

func TestNetDriver(t *testing.T) {
	db := newTestDB(t)
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, url := range []string{addr, "net://" + addr} {
		c, err := NetDriver{}.Connect(url)
		if err != nil {
			t.Fatalf("%s: %v", url, err)
		}
		res, err := c.Query("SELECT COUNT(*) FROM items")
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != 2 {
			t.Fatalf("count: %v", res.Rows[0][0])
		}
		c.Close()
	}
}

func TestLoggingDriverRecordsQueries(t *testing.T) {
	db := newTestDB(t)
	qlog := NewQueryLog(0)
	d := NewLoggingDriver(DirectDriver{DB: db}, qlog)
	c, err := d.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	before := time.Now()
	if _, err := c.Query("SELECT * FROM items"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT * FROM nonexistent"); err == nil {
		t.Fatal("want error")
	}
	entries, _ := qlog.Since(1)
	if len(entries) != 2 {
		t.Fatalf("entries: %+v", entries)
	}
	e := entries[0]
	if e.SQL != "SELECT * FROM items" || e.Err != "" {
		t.Fatalf("entry: %+v", e)
	}
	if e.Receive.Before(before) || e.Deliver.Before(e.Receive) {
		t.Fatalf("timestamps: %v %v", e.Receive, e.Deliver)
	}
	if entries[1].Err == "" {
		t.Fatal("failed query should record error")
	}
}

func TestQueryLogSinceAndTruncation(t *testing.T) {
	l := NewQueryLog(2)
	for i := 0; i < 5; i++ {
		l.Append(QueryLogEntry{SQL: fmt.Sprintf("q%d", i)})
	}
	// Amortized trimming: between 2 and 3 newest entries retained.
	if l.Len() < 2 || l.Len() > 3 {
		t.Fatalf("len: %d", l.Len())
	}
	entries, trunc := l.Since(1)
	if !trunc || len(entries) == 0 || entries[len(entries)-1].SQL != "q4" {
		t.Fatalf("since: %+v trunc=%v", entries, trunc)
	}
	if l.NextID() != 6 {
		t.Fatalf("next: %d", l.NextID())
	}
	none, _ := l.Since(100)
	if len(none) != 0 {
		t.Fatalf("beyond end: %+v", none)
	}
}

func TestPoolReuseAndLimit(t *testing.T) {
	db := newTestDB(t)
	p, err := NewPool(DirectDriver{DB: db}, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	l1, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	total, idle := p.Stats()
	if total != 2 || idle != 0 {
		t.Fatalf("stats: %d %d", total, idle)
	}
	// Third Get blocks until a release.
	got := make(chan *Lease)
	go func() {
		l, err := p.Get()
		if err != nil {
			t.Error(err)
		}
		got <- l
	}()
	select {
	case <-got:
		t.Fatal("Get should block while pool exhausted")
	case <-time.After(30 * time.Millisecond):
	}
	l1.Release()
	select {
	case l3 := <-got:
		l3.Release()
	case <-time.After(time.Second):
		t.Fatal("Get did not unblock")
	}
	l2.Release()
	total, idle = p.Stats()
	if total != 2 || idle != 2 {
		t.Fatalf("stats after release: %d %d", total, idle)
	}
}

func TestPoolLeaseTagsLoggingConns(t *testing.T) {
	db := newTestDB(t)
	qlog := NewQueryLog(0)
	d := NewLoggingDriver(DirectDriver{DB: db}, qlog)
	p, err := NewPool(d, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	l1, _ := p.Get()
	l1.Query("SELECT 1")
	id1 := l1.ID
	l1.Release()
	l2, _ := p.Get()
	l2.Query("SELECT 2")
	id2 := l2.ID
	l2.Release()

	if id1 == id2 {
		t.Fatal("lease IDs must differ")
	}
	entries, _ := qlog.Since(1)
	if len(entries) != 2 {
		t.Fatalf("entries: %+v", entries)
	}
	if entries[0].LeaseID != id1 || entries[1].LeaseID != id2 {
		t.Fatalf("lease attribution: %+v", entries)
	}
}

func TestPoolDoubleReleaseIsNoop(t *testing.T) {
	db := newTestDB(t)
	p, _ := NewPool(DirectDriver{DB: db}, "", 1)
	defer p.Close()
	l, _ := p.Get()
	l.Release()
	l.Release() // second release must not duplicate the conn
	_, idle := p.Stats()
	if idle != 1 {
		t.Fatalf("idle: %d", idle)
	}
}

func TestPoolClose(t *testing.T) {
	db := newTestDB(t)
	p, _ := NewPool(DirectDriver{DB: db}, "", 1)
	l, _ := p.Get()
	p.Close()
	if _, err := p.Get(); err == nil {
		t.Fatal("Get after Close must fail")
	}
	l.Release() // releasing a lease after close closes the conn
	total, idle := p.Stats()
	if total != 0 || idle != 0 {
		t.Fatalf("stats: %d %d", total, idle)
	}
}

func TestPoolBadSize(t *testing.T) {
	if _, err := NewPool(DirectDriver{}, "", 0); err == nil {
		t.Fatal("want error")
	}
}

func TestPoolConcurrentStress(t *testing.T) {
	db := newTestDB(t)
	qlog := NewQueryLog(0)
	p, _ := NewPool(NewLoggingDriver(DirectDriver{DB: db}, qlog), "", 4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				l, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := l.Query("SELECT COUNT(*) FROM items"); err != nil {
					t.Error(err)
				}
				l.Release()
			}
		}()
	}
	wg.Wait()
	if qlog.Len() != 400 {
		t.Fatalf("logged %d queries", qlog.Len())
	}
	total, idle := p.Stats()
	if total > 4 || idle != total {
		t.Fatalf("stats: %d %d", total, idle)
	}
}

func TestRegistry(t *testing.T) {
	db := newTestDB(t)
	r := NewRegistry()
	p, _ := NewPool(DirectDriver{DB: db}, "", 1)
	r.Bind("main", p)
	got, err := r.Lookup("main")
	if err != nil || got != p {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if _, err := r.Lookup("missing"); err == nil {
		t.Fatal("want error")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "main" {
		t.Fatalf("names: %v", names)
	}
}
