package driver

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/feed"
)

// QueryLogEntry is one record of the query log: the exact SQL text the
// application sent plus the two timestamps the paper's query logger records
// (§3.2: "the query string and the two timestamps, query receive time and
// result delivery").
type QueryLogEntry struct {
	ID      int64 // unique, monotonically increasing
	LeaseID int64 // pool lease that issued the query; 0 when unpooled
	SQL     string
	Receive time.Time // when the driver received the query
	Deliver time.Time // when the result was delivered back
	Err     string    // non-empty when the query failed
}

// QueryLog is a bounded, thread-safe log of executed queries. The sniffer's
// request-to-query mapper reads it either by polling (Since) or as a feed
// (Subscribe / Changed).
type QueryLog struct {
	mu      sync.Mutex
	entries []QueryLogEntry
	firstID int64
	nextID  int64
	cap     int
	// changed is closed on every append and then replaced (close-and-replace
	// broadcast; see Changed).
	changed chan struct{}

	hubOnce sync.Once
	hub     *feed.Hub[QueryLogEntry]
}

// DefaultQueryLogCapacity bounds query-log memory when no capacity is given.
const DefaultQueryLogCapacity = 1 << 16

// NewQueryLog creates a log holding at most capacity entries
// (DefaultQueryLogCapacity if capacity <= 0).
func NewQueryLog(capacity int) *QueryLog {
	if capacity <= 0 {
		capacity = DefaultQueryLogCapacity
	}
	return &QueryLog{firstID: 1, nextID: 1, cap: capacity, changed: make(chan struct{})}
}

// Append adds an entry, assigning its ID.
func (l *QueryLog) Append(e QueryLogEntry) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.ID = l.nextID
	l.nextID++
	l.entries = append(l.entries, e)
	// Amortized trimming: drop down to capacity only once the log exceeds
	// 1.5× capacity, so appends stay O(1).
	if len(l.entries) > l.cap*3/2 {
		drop := len(l.entries) - l.cap
		l.entries = append(l.entries[:0:0], l.entries[drop:]...)
		l.firstID += int64(drop)
	}
	close(l.changed)
	l.changed = make(chan struct{})
	return e.ID
}

// Since returns a copy of entries with ID >= id and whether older entries
// were discarded.
func (l *QueryLog) Since(id int64) (entries []QueryLogEntry, truncated bool) {
	entries, truncated, _, _ = l.SinceNext(id)
	return entries, truncated
}

// SinceNext is Since plus the resume cursor and truncation context, observed
// atomically: next is one past the last returned entry, first is the oldest
// retained ID.
func (l *QueryLog) SinceNext(id int64) (entries []QueryLogEntry, truncated bool, next, first int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if id < 1 {
		id = 1
	}
	truncated = id < l.firstID
	next = l.nextID
	first = l.firstID
	start := id - l.firstID
	if start < 0 {
		start = 0
	}
	if start >= int64(len(l.entries)) {
		return nil, truncated, next, first
	}
	out := make([]QueryLogEntry, int64(len(l.entries))-start)
	copy(out, l.entries[start:])
	return out, truncated, next, first
}

// Changed returns a channel closed when an entry may have been appended since
// the call; re-obtain it after each wakeup.
func (l *QueryLog) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.changed
}

// Subscribe opens a feed subscription at cursor with bounded buffering (feed
// defaults when buffer <= 0).
func (l *QueryLog) Subscribe(cursor int64, buffer int) *feed.Subscription[QueryLogEntry] {
	return l.Hub().Subscribe(cursor, buffer)
}

// Hub exposes the log's fan-out feed hub (created on first use).
func (l *QueryLog) Hub() *feed.Hub[QueryLogEntry] {
	l.hubOnce.Do(func() {
		l.hub = feed.NewHub(func(cursor int64) ([]QueryLogEntry, bool, int64, int64) {
			return l.SinceNext(cursor)
		}, l.Changed)
	})
	return l.hub
}

// NextID returns the ID the next entry will receive.
func (l *QueryLog) NextID() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextID
}

// Len returns the number of retained entries.
func (l *QueryLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// ---------------------------------------------------------------------------
// LoggingDriver: the JDBC wrapper (paper §3.2)
// ---------------------------------------------------------------------------

// LoggingDriver wraps another Driver so every connection it opens records
// its queries into a shared QueryLog. This is the paper's JDBC-wrapper
// query logger: it interposes at the driver layer, so explicit connections,
// pool connections and data-source connections are all captured without
// application changes.
type LoggingDriver struct {
	Inner Driver
	Log   *QueryLog
}

// NewLoggingDriver wraps inner, logging to log.
func NewLoggingDriver(inner Driver, log *QueryLog) *LoggingDriver {
	return &LoggingDriver{Inner: inner, Log: log}
}

// Connect opens a logged connection via the inner driver.
func (d *LoggingDriver) Connect(url string) (Conn, error) {
	c, err := d.Inner.Connect(url)
	if err != nil {
		return nil, err
	}
	return &LoggingConn{inner: c, log: d.Log}, nil
}

// LoggingConn wraps a Conn, recording every query.
type LoggingConn struct {
	inner Conn
	log   *QueryLog
	tag   atomic.Int64 // current lease ID, set by Pool on Get
}

// SetTag attaches a lease ID to subsequent queries on this connection.
// Pool.Get calls it automatically for pooled logging connections.
func (c *LoggingConn) SetTag(id int64) { c.tag.Store(id) }

// Query executes sql on the wrapped connection, logging text and both
// timestamps.
func (c *LoggingConn) Query(sql string) (*engine.Result, error) {
	recv := time.Now()
	res, err := c.inner.Query(sql)
	entry := QueryLogEntry{
		LeaseID: c.tag.Load(),
		SQL:     sql,
		Receive: recv,
		Deliver: time.Now(),
	}
	if err != nil {
		entry.Err = err.Error()
	}
	c.log.Append(entry)
	return res, err
}

// Close closes the wrapped connection.
func (c *LoggingConn) Close() error { return c.inner.Close() }

// Taggable is implemented by connections that can carry a lease tag.
type Taggable interface{ SetTag(id int64) }
