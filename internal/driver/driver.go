// Package driver is the reproduction's JDBC analog: a uniform connection
// interface over the wire protocol (or an in-process database), connection
// pools and named data sources (the three access styles of paper §3.2), and
// — centrally — LoggingDriver, the non-invasive query-logger wrapper that
// records every query's text and receive/delivery timestamps for the
// sniffer, no matter how the application obtained its connection.
package driver

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/lru"
	"repro/internal/wire"
)

// Conn is one logical database connection.
type Conn interface {
	// Query executes one SQL statement.
	Query(sql string) (*engine.Result, error)
	// Close releases the connection.
	Close() error
}

// Driver opens connections to a database identified by a URL. URLs take the
// form "net://host:port" or "direct://" (in-process, see DirectDriver).
type Driver interface {
	Connect(url string) (Conn, error)
}

// ---------------------------------------------------------------------------
// Network driver
// ---------------------------------------------------------------------------

// NetDriver connects over the wire protocol.
type NetDriver struct {
	// DisableBinary keeps connections on JSON framing. By default every
	// connection offers the binary upgrade on its first roundtrip; an old
	// server declines harmlessly and the connection stays on JSON.
	DisableBinary bool
}

// Connect dials url, which must look like "net://host:port" (the scheme is
// optional).
func (d NetDriver) Connect(url string) (Conn, error) {
	addr := trimScheme(url, "net")
	c, err := wire.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.Binary = !d.DisableBinary
	return &netConn{c: c, stmts: lru.New[string, *wire.Stmt](stmtCacheCapacity)}, nil
}

// stmtCacheCapacity bounds each network connection's fingerprint→statement
// cache (QueryStmt's prepared handles). Eviction costs one re-PREPARE.
const stmtCacheCapacity = 256

type netConn struct {
	c     *wire.Client
	stmts *lru.Cache[string, *wire.Stmt]
}

func (n *netConn) Query(sql string) (*engine.Result, error) { return n.c.Query(sql) }
func (n *netConn) Close() error                             { return n.c.Close() }

// Wire returns the underlying wire client (for LogSince etc.).
func (n *netConn) Wire() *wire.Client { return n.c }

func trimScheme(url, scheme string) string {
	prefix := scheme + "://"
	if len(url) >= len(prefix) && url[:len(prefix)] == prefix {
		return url[len(prefix):]
	}
	return url
}

// ---------------------------------------------------------------------------
// Direct (in-process) driver
// ---------------------------------------------------------------------------

// DirectDriver serves connections straight from an in-process Database;
// used by unit tests and single-process examples.
type DirectDriver struct {
	DB *engine.Database
	// Delay, when non-nil, adds artificial per-query service time.
	Delay func(sql string) time.Duration
}

// Connect ignores the URL and returns a connection to the wrapped database.
func (d DirectDriver) Connect(string) (Conn, error) {
	if d.DB == nil {
		return nil, errors.New("driver: DirectDriver has no database")
	}
	return &directConn{d: d}, nil
}

type directConn struct {
	d      DirectDriver
	closed bool
	mu     sync.Mutex
}

func (c *directConn) Query(sql string) (*engine.Result, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("driver: connection closed")
	}
	c.delay(sql)
	return c.d.DB.ExecSQL(sql)
}

func (c *directConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

// ---------------------------------------------------------------------------
// Connection pool (paper: "JDBC pools provided by the server")
// ---------------------------------------------------------------------------

// Pool is a fixed-capacity connection pool. Get blocks until a connection
// is free; Put returns it. Each Get/Put pair is a lease, identified by a
// unique lease ID that the logging layer attaches to queries so that the
// sniffer can attribute queries to requests even under concurrency.
type Pool struct {
	url    string
	driver Driver

	mu     sync.Mutex
	cond   *sync.Cond
	idle   []Conn
	total  int
	max    int
	closed bool
}

// leaseCounter issues process-wide unique lease IDs. Uniqueness across
// pools matters: a deployment runs one pool per application server, and the
// sniffer disambiguates concurrent requests by lease ID — colliding IDs
// would leak queries across servers' requests.
var leaseCounter atomic.Int64

// NewPool creates a pool of up to max connections opened via d at url.
// Connections are opened lazily.
func NewPool(d Driver, url string, max int) (*Pool, error) {
	if max <= 0 {
		return nil, fmt.Errorf("driver: pool size must be positive, got %d", max)
	}
	p := &Pool{url: url, driver: d, max: max}
	p.cond = sync.NewCond(&p.mu)
	return p, nil
}

// Lease is a pooled connection plus its lease identity.
type Lease struct {
	Conn
	ID   int64
	pool *Pool
	done bool
}

// Release returns the connection to the pool. Using the Lease afterwards
// is an error.
func (l *Lease) Release() {
	if l.done {
		return
	}
	l.done = true
	l.pool.put(l.Conn)
}

// Get leases a connection, blocking while the pool is exhausted.
func (p *Pool) Get() (*Lease, error) {
	p.mu.Lock()
	for {
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("driver: pool closed")
		}
		if len(p.idle) > 0 {
			c := p.idle[len(p.idle)-1]
			p.idle = p.idle[:len(p.idle)-1]
			id := leaseCounter.Add(1)
			p.mu.Unlock()
			if t, ok := c.(Taggable); ok {
				t.SetTag(id)
			}
			return &Lease{Conn: c, ID: id, pool: p}, nil
		}
		if p.total < p.max {
			p.total++
			id := leaseCounter.Add(1)
			p.mu.Unlock()
			c, err := p.driver.Connect(p.url)
			if err != nil {
				p.mu.Lock()
				p.total--
				p.cond.Signal()
				p.mu.Unlock()
				return nil, err
			}
			if t, ok := c.(Taggable); ok {
				t.SetTag(id)
			}
			return &Lease{Conn: c, ID: id, pool: p}, nil
		}
		p.cond.Wait()
	}
}

func (p *Pool) put(c Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		p.total--
		return
	}
	p.idle = append(p.idle, c)
	p.cond.Signal()
}

// Close closes idle connections and fails pending and future Gets.
// Connections currently leased are closed when released.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	p.closed = true
	for _, c := range p.idle {
		c.Close()
		p.total--
	}
	p.idle = nil
	p.cond.Broadcast()
	return nil
}

// Stats reports pool occupancy: total opened and currently idle.
func (p *Pool) Stats() (total, idle int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total, len(p.idle)
}

// ---------------------------------------------------------------------------
// DataSource registry (paper: "DataSources provided by the server",
// the JNDI-tree analog)
// ---------------------------------------------------------------------------

// Registry is a name → pool map, the analog of binding JDBC resource
// factories into the server's JNDI tree.
type Registry struct {
	mu      sync.RWMutex
	sources map[string]*Pool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{sources: make(map[string]*Pool)}
}

// Bind registers pool under name, replacing any previous binding.
func (r *Registry) Bind(name string, pool *Pool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources[name] = pool
}

// Lookup returns the pool bound to name.
func (r *Registry) Lookup(name string) (*Pool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.sources[name]
	if !ok {
		return nil, fmt.Errorf("driver: no data source %q", name)
	}
	return p, nil
}

// Names returns the bound names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.sources))
	for n := range r.sources {
		out = append(out, n)
	}
	return out
}
