package driver

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/mem"
	"repro/internal/sqlparser"
	"repro/internal/wire"
)

// bareConn hides directConn's Preparer implementation so the Prepare helper
// must fall back to text emulation.
type bareConn struct{ inner Conn }

func (b bareConn) Query(sql string) (*engine.Result, error) { return b.inner.Query(sql) }
func (b bareConn) Close() error                             { return b.inner.Close() }

func TestPrepareTextEmulation(t *testing.T) {
	db := newTestDB(t)
	c, err := DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Prepare(bareConn{inner: c}, "SELECT name FROM items WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*textStmt); !ok {
		t.Fatalf("want textStmt for a bare Conn, got %T", st)
	}
	if st.NumArgs() != 1 {
		t.Fatalf("NumArgs = %d", st.NumArgs())
	}
	res, err := st.Exec([]mem.Value{mem.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "two" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if _, err := st.Exec(nil); err == nil {
		t.Fatal("arity mismatch must error")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPrepareDirectConn(t *testing.T) {
	db := newTestDB(t)
	c, err := DirectDriver{DB: db}.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Prepare(c, "SELECT name FROM items WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	for want, id := range map[string]int64{"one": 1, "two": 2} {
		res, err := st.Exec([]mem.Value{mem.Int(id)})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].S != want {
			t.Fatalf("id %d: rows %v", id, res.Rows)
		}
	}
	if got := db.StmtCacheStats().PreparedExecs; got != 2 {
		t.Fatalf("PreparedExecs = %d, want 2", got)
	}
	c.Close()
	if _, err := st.Exec([]mem.Value{mem.Int(1)}); err == nil {
		t.Fatal("Exec on closed conn must error")
	}
}

func TestPrepareNetConn(t *testing.T) {
	db := newTestDB(t)
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NetDriver{}.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := Prepare(c, "SELECT name FROM items WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	res, err := st.Exec([]mem.Value{mem.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "one" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if srv.Prepares() != 1 || srv.Executes() != 1 {
		t.Fatalf("prepares=%d executes=%d", srv.Prepares(), srv.Executes())
	}
}

func TestNetConnQueryStmtCachesHandles(t *testing.T) {
	db := newTestDB(t)
	srv := wire.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := NetDriver{}.Connect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := c.(*netConn)
	parsed, err := sqlparser.Parse("SELECT name FROM items WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	tmpl := parsed.(*sqlparser.SelectStmt)
	fp := sqlparser.FingerprintStmt(tmpl)
	for i := int64(1); i <= 3; i++ {
		if _, err := n.QueryStmt(fp, tmpl, []mem.Value{mem.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Prepares() != 1 {
		t.Fatalf("Prepares = %d, want 1 (handle should be cached)", srv.Prepares())
	}
	if srv.Executes() != 3 {
		t.Fatalf("Executes = %d, want 3", srv.Executes())
	}
}

func TestLoggingStmtRecordsBoundText(t *testing.T) {
	db := newTestDB(t)
	qlog := NewQueryLog(0)
	d := NewLoggingDriver(DirectDriver{DB: db}, qlog)
	pool, err := NewPool(d, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	lease, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	st, err := lease.Prepare("SELECT name FROM items WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec([]mem.Value{mem.Int(2)}); err != nil {
		t.Fatal(err)
	}
	entries, _ := qlog.Since(1)
	if len(entries) != 1 {
		t.Fatalf("entries: %+v", entries)
	}
	e := entries[0]
	// The sniffer maps requests to queries via text, so the log must carry
	// the bound instance, not the template.
	if !strings.Contains(e.SQL, "= 2") || strings.Contains(e.SQL, "$1") {
		t.Fatalf("logged SQL not bound: %q", e.SQL)
	}
	if e.LeaseID != lease.ID {
		t.Fatalf("lease id %d, want %d", e.LeaseID, lease.ID)
	}
	lease.Release()
	if _, err := lease.Prepare("SELECT 1"); err == nil {
		t.Fatal("Prepare on a released lease must error")
	}
}

func TestLoggingStmtRecordsError(t *testing.T) {
	db := newTestDB(t)
	qlog := NewQueryLog(0)
	d := NewLoggingDriver(DirectDriver{DB: db}, qlog)
	c, err := d.Connect("")
	if err != nil {
		t.Fatal(err)
	}
	st, err := Prepare(c, "SELECT name FROM nonexistent WHERE id = $1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Exec([]mem.Value{mem.Int(1)}); err == nil {
		t.Fatal("want error")
	}
	entries, _ := qlog.Since(1)
	if len(entries) != 1 || entries[0].Err == "" {
		t.Fatalf("failed prepared exec should log its error: %+v", entries)
	}
}
